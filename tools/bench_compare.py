#!/usr/bin/env python3
"""Compare two substrate_wallclock builds, or gate CI on the committed one.

Two subcommands:

  compare   Run a baseline and a current bench binary interleaved
            (B C B C ...) N times each on the same host, merge each
            side best-of-N per metric, and emit an
            `ombx-substrate-wallclock-comparison-v1` document — the
            format committed as BENCH_substrate.json.  Interleaving
            means both sides sample the same background-load profile,
            so the speedup column survives a noisy host.

  check     Run the current bench once and soft-compare its eager
            msgs/sec against the `current` entry of the committed
            BENCH_substrate.json.  Prints a GitHub `::warning::`
            annotation for any eager size that regressed more than
            --threshold (default 10%) and ALWAYS exits 0: committed
            numbers come from a different host, so this is a tripwire,
            not a gate.

Usage:
  python3 tools/bench_compare.py compare \
      --baseline ./head/substrate_wallclock --current ./build/bench/substrate_wallclock \
      [--runs 3] [--quick] [--baseline-label pre-PR@abc123] [--current-label this-PR] \
      [--out BENCH_substrate.json]
  python3 tools/bench_compare.py check \
      --bench ./build/bench/substrate_wallclock --committed BENCH_substrate.json \
      [--threshold 0.10] [--quick]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Metric paths inside a per-run document, and whether bigger is better.
# eager_selfsend is handled separately (it is a list keyed by bytes).
SCALARS = [
    (("pingpong_2rank_8B", "msgs_per_sec"), True),
    (("rendezvous_2rank_256KiB", "msgs_per_sec"), True),
    (("rendezvous_2rank_256KiB", "mb_per_sec"), True),
    (("matching_stress_64src", "wildcard_ns_per_match"), False),
    (("matching_stress_64src", "exact_ns_per_match"), False),
    (("matching_stress_64src", "overall_ns_per_match"), False),
    # pool_512B is absent from pre-fast-path baselines; merged when present.
    (("pool_512B", "single_mops"), True),
    (("pool_512B", "multi4_mops"), True),
    (("pool_512B", "memcpy_mops"), True),
]


def run_bench(binary, label, quick):
    """Run one bench invocation, return its parsed JSON document."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as f:
        path = f.name
    try:
        cmd = [binary, "--json", path, "--label", label]
        if quick:
            cmd.append("--quick")
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(path) as f:
            return json.load(f)
    finally:
        os.unlink(path)


def get_path(doc, path):
    cur = doc
    for key in path:
        if not isinstance(cur, dict) or key not in cur:
            return None
        cur = cur[key]
    return cur


def set_path(doc, path, value):
    cur = doc
    for key in path[:-1]:
        cur = cur.setdefault(key, {})
    cur[path[-1]] = value


def merge_best(runs):
    """Merge N per-run documents into one best-of-N document.

    Throughput metrics take the max across runs, latency metrics the min.
    Each eager point's fast-path counters travel with whichever run won
    that point (they describe the winning run, not an aggregate).
    """
    best = json.loads(json.dumps(runs[0]))  # deep copy
    for run in runs[1:]:
        for path, bigger in SCALARS:
            a, b = get_path(best, path), get_path(run, path)
            if b is None:
                continue
            if a is None or (b > a if bigger else b < a):
                set_path(best, path, b)
        for i, pt in enumerate(run.get("eager_selfsend", [])):
            if pt["msgs_per_sec"] > best["eager_selfsend"][i]["msgs_per_sec"]:
                best["eager_selfsend"][i] = dict(pt)
    return best


def eager_by_bytes(doc):
    return {pt["bytes"]: pt["msgs_per_sec"] for pt in doc["eager_selfsend"]}


def speedups(baseline, current):
    out = {}
    base_eager = eager_by_bytes(baseline)
    for pt in current["eager_selfsend"]:
        b = base_eager.get(pt["bytes"])
        if b:
            out["eager_selfsend_%dB" % pt["bytes"]] = round(
                pt["msgs_per_sec"] / b, 2)
    pairs = [
        ("pingpong_2rank_8B", ("pingpong_2rank_8B", "msgs_per_sec"), True),
        ("rendezvous_2rank_256KiB",
         ("rendezvous_2rank_256KiB", "msgs_per_sec"), True),
        ("matching_wildcard",
         ("matching_stress_64src", "wildcard_ns_per_match"), False),
        ("matching_exact",
         ("matching_stress_64src", "exact_ns_per_match"), False),
        ("matching_overall",
         ("matching_stress_64src", "overall_ns_per_match"), False),
        ("pool_512B_single", ("pool_512B", "single_mops"), True),
        ("pool_512B_multi4", ("pool_512B", "multi4_mops"), True),
    ]
    for name, path, bigger in pairs:
        b, c = get_path(baseline, path), get_path(current, path)
        if b and c:
            out[name] = round(c / b if bigger else b / c, 2)
    return out


def cmd_compare(args):
    base_runs, cur_runs = [], []
    for i in range(args.runs):
        print("run %d/%d: baseline..." % (i + 1, args.runs), flush=True)
        base_runs.append(
            run_bench(args.baseline, args.baseline_label, args.quick))
        print("run %d/%d: current..." % (i + 1, args.runs), flush=True)
        cur_runs.append(
            run_bench(args.current, args.current_label, args.quick))
    baseline = merge_best(base_runs)
    current = merge_best(cur_runs)
    doc = {
        "schema": "ombx-substrate-wallclock-comparison-v1",
        "note": "Best-of-%d interleaved runs of bench/substrate_wallclock, "
                "identical workload parameters built against both trees on "
                "the same host. See README 'Substrate wall-clock bench' for "
                "the per-run JSON schema." % args.runs,
        "baseline": baseline,
        "current": current,
        "speedups": speedups(baseline, current),
    }
    text = json.dumps(doc, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print("wrote %s" % args.out)
    for k, v in doc["speedups"].items():
        print("  %-28s %.2fx" % (k, v))
    return 0


def cmd_check(args):
    with open(args.committed) as f:
        committed = json.load(f)
    reference = committed.get("current")
    if not isinstance(reference, dict):
        print("error: %s has no 'current' entry — not an "
              "ombx-substrate-wallclock-comparison-v1 document; re-baseline "
              "with tools/bench_compare.py compare" % args.committed,
              file=sys.stderr)
        return 2
    fresh = run_bench(args.bench, "ci-perf-smoke", args.quick)
    if args.out:
        with open(args.out, "w") as f:
            json.dump(fresh, f, indent=2)
            f.write("\n")
    if "eager_selfsend" not in reference or "eager_selfsend" not in fresh:
        side = args.committed if "eager_selfsend" not in reference else "fresh run"
        print("error: %s has no 'eager_selfsend' cases; re-baseline with "
              "tools/bench_compare.py compare" % side, file=sys.stderr)
        return 2
    ref_eager = eager_by_bytes(reference)
    fresh_bytes = {pt["bytes"] for pt in fresh["eager_selfsend"]}
    # A case present on only one side means the committed doc and the bench
    # binary disagree about the workload — say so instead of silently
    # skipping (or crashing on) the hole.
    one_sided = sorted(set(ref_eager) ^ fresh_bytes)
    if one_sided:
        detail = ", ".join(
            "%dB (only in %s)" % (b, args.committed if b in ref_eager
                                  else "the fresh run")
            for b in one_sided)
        print("error: eager case(s) present on one side only: %s; the "
              "committed document is stale for this binary — re-baseline "
              "with tools/bench_compare.py compare" % detail,
              file=sys.stderr)
        return 2
    worst = None
    for pt in fresh["eager_selfsend"]:
        ref = ref_eager.get(pt["bytes"])
        if not ref:
            continue
        ratio = pt["msgs_per_sec"] / ref
        print("eager %5d B: %12.0f msgs/s vs committed %12.0f (%.2fx)" %
              (pt["bytes"], pt["msgs_per_sec"], ref, ratio))
        if worst is None or ratio < worst[1]:
            worst = (pt["bytes"], ratio)
    if worst and worst[1] < 1.0 - args.threshold:
        # Soft failure: annotate, never break the build — the committed
        # numbers were measured on a different host class than CI runners.
        print("::warning::substrate perf smoke: eager %d B is %.0f%% below "
              "the committed BENCH_substrate.json current entry "
              "(%.2fx); re-baseline with tools/bench_compare.py compare "
              "if this persists" %
              (worst[0], (1.0 - worst[1]) * 100.0, worst[1]))
    else:
        print("perf smoke ok (worst eager ratio %.2fx)" %
              (worst[1] if worst else float("nan")))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    c = sub.add_parser("compare", help="interleaved baseline-vs-current")
    c.add_argument("--baseline", required=True, help="baseline bench binary")
    c.add_argument("--current", required=True, help="current bench binary")
    c.add_argument("--runs", type=int, default=3, help="runs per side")
    c.add_argument("--quick", action="store_true", help="pass --quick")
    c.add_argument("--baseline-label", default="baseline")
    c.add_argument("--current-label", default="current")
    c.add_argument("--out", default="", help="write comparison JSON here")
    c.set_defaults(fn=cmd_compare)

    k = sub.add_parser("check", help="CI tripwire vs committed numbers")
    k.add_argument("--bench", required=True, help="bench binary to run")
    k.add_argument("--committed", default="BENCH_substrate.json")
    k.add_argument("--threshold", type=float, default=0.10,
                   help="warn when eager drops more than this fraction")
    k.add_argument("--quick", action="store_true", help="pass --quick")
    k.add_argument("--out", default="", help="also write the fresh run JSON")
    k.set_defaults(fn=cmd_check)

    args = ap.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
