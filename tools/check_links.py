#!/usr/bin/env python3
"""Check that relative Markdown links in the repo resolve to real files.

Scans every tracked-ish *.md file (skipping build/ and hidden dirs) for
inline links `[text](target)`, resolves each relative target against the
file's directory, and fails listing every broken link.  External links
(http/https/mailto) and pure in-page anchors (#...) are skipped; an
anchor suffix on a relative link is stripped before the existence check.

Usage: python3 tools/check_links.py [repo_root]
Exit:  0 if all links resolve, 1 otherwise.
"""

import os
import re
import sys

# Inline Markdown link: [text](target).  The target group stops at the
# first closing paren or whitespace, which is enough for this repo's
# style (no nested parens or <...> targets in use).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_DIRS = {"build", ".git", ".github"}


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if target.startswith("#"):  # in-page anchor
                    continue
                bare = target.split("#", 1)[0]
                if not bare:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), bare)
                )
                if not os.path.exists(resolved):
                    broken.append(
                        (os.path.relpath(path, root), lineno, target)
                    )
    return broken


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    broken = []
    n_files = 0
    for md in markdown_files(root):
        n_files += 1
        broken.extend(check_file(md, root))
    if broken:
        for path, lineno, target in broken:
            print(f"{path}:{lineno}: broken link -> {target}")
        print(f"\n{len(broken)} broken link(s) across {n_files} file(s)")
        return 1
    print(f"all relative links resolve ({n_files} markdown file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
