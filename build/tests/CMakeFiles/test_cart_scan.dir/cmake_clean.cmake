file(REMOVE_RECURSE
  "CMakeFiles/test_cart_scan.dir/test_cart_scan.cpp.o"
  "CMakeFiles/test_cart_scan.dir/test_cart_scan.cpp.o.d"
  "test_cart_scan"
  "test_cart_scan.pdb"
  "test_cart_scan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cart_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
