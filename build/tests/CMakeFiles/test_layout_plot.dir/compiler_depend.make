# Empty compiler generated dependencies file for test_layout_plot.
# This may be replaced when dependencies are built.
