file(REMOVE_RECURSE
  "CMakeFiles/test_layout_plot.dir/test_layout_plot.cpp.o"
  "CMakeFiles/test_layout_plot.dir/test_layout_plot.cpp.o.d"
  "test_layout_plot"
  "test_layout_plot.pdb"
  "test_layout_plot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
