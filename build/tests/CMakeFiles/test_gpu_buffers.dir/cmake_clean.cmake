file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_buffers.dir/test_gpu_buffers.cpp.o"
  "CMakeFiles/test_gpu_buffers.dir/test_gpu_buffers.cpp.o.d"
  "test_gpu_buffers"
  "test_gpu_buffers.pdb"
  "test_gpu_buffers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
