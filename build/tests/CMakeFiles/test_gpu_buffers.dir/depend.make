# Empty dependencies file for test_gpu_buffers.
# This may be replaced when dependencies are built.
