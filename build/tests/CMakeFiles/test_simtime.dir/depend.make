# Empty dependencies file for test_simtime.
# This may be replaced when dependencies are built.
