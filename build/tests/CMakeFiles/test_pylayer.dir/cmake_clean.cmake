file(REMOVE_RECURSE
  "CMakeFiles/test_pylayer.dir/test_pylayer.cpp.o"
  "CMakeFiles/test_pylayer.dir/test_pylayer.cpp.o.d"
  "test_pylayer"
  "test_pylayer.pdb"
  "test_pylayer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pylayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
