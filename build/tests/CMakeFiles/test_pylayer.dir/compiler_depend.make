# Empty compiler generated dependencies file for test_pylayer.
# This may be replaced when dependencies are built.
