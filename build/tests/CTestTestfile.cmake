# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simtime[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_p2p[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_rma[1]_include.cmake")
include("/root/repo/build/tests/test_pylayer[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_buffers[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_bench_suite[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_layout_plot[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_cart_scan[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
