# Empty dependencies file for fig37_kmeans.
# This may be replaced when dependencies are built.
