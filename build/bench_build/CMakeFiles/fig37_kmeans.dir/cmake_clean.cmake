file(REMOVE_RECURSE
  "../bench/fig37_kmeans"
  "../bench/fig37_kmeans.pdb"
  "CMakeFiles/fig37_kmeans.dir/fig37_kmeans.cpp.o"
  "CMakeFiles/fig37_kmeans.dir/fig37_kmeans.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig37_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
