# Empty compiler generated dependencies file for fig32_35_pickle.
# This may be replaced when dependencies are built.
