file(REMOVE_RECURSE
  "../bench/fig32_35_pickle"
  "../bench/fig32_35_pickle.pdb"
  "CMakeFiles/fig32_35_pickle.dir/fig32_35_pickle.cpp.o"
  "CMakeFiles/fig32_35_pickle.dir/fig32_35_pickle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig32_35_pickle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
