# Empty dependencies file for fig22_23_gpu_latency.
# This may be replaced when dependencies are built.
