file(REMOVE_RECURSE
  "../bench/fig22_23_gpu_latency"
  "../bench/fig22_23_gpu_latency.pdb"
  "CMakeFiles/fig22_23_gpu_latency.dir/fig22_23_gpu_latency.cpp.o"
  "CMakeFiles/fig22_23_gpu_latency.dir/fig22_23_gpu_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_23_gpu_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
