file(REMOVE_RECURSE
  "../bench/fig04_09_intranode_latency"
  "../bench/fig04_09_intranode_latency.pdb"
  "CMakeFiles/fig04_09_intranode_latency.dir/fig04_09_intranode_latency.cpp.o"
  "CMakeFiles/fig04_09_intranode_latency.dir/fig04_09_intranode_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_09_intranode_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
