# Empty compiler generated dependencies file for fig04_09_intranode_latency.
# This may be replaced when dependencies are built.
