# Empty compiler generated dependencies file for ablation_collective_algos.
# This may be replaced when dependencies are built.
