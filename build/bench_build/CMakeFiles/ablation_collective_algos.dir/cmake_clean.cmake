file(REMOVE_RECURSE
  "../bench/ablation_collective_algos"
  "../bench/ablation_collective_algos.pdb"
  "CMakeFiles/ablation_collective_algos.dir/ablation_collective_algos.cpp.o"
  "CMakeFiles/ablation_collective_algos.dir/ablation_collective_algos.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collective_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
