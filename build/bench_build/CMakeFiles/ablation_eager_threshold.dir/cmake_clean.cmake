file(REMOVE_RECURSE
  "../bench/ablation_eager_threshold"
  "../bench/ablation_eager_threshold.pdb"
  "CMakeFiles/ablation_eager_threshold.dir/ablation_eager_threshold.cpp.o"
  "CMakeFiles/ablation_eager_threshold.dir/ablation_eager_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eager_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
