# Empty dependencies file for fig18_21_allgather_cpu.
# This may be replaced when dependencies are built.
