file(REMOVE_RECURSE
  "../bench/fig18_21_allgather_cpu"
  "../bench/fig18_21_allgather_cpu.pdb"
  "CMakeFiles/fig18_21_allgather_cpu.dir/fig18_21_allgather_cpu.cpp.o"
  "CMakeFiles/fig18_21_allgather_cpu.dir/fig18_21_allgather_cpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_21_allgather_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
