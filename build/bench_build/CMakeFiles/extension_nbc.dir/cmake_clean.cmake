file(REMOVE_RECURSE
  "../bench/extension_nbc"
  "../bench/extension_nbc.pdb"
  "CMakeFiles/extension_nbc.dir/extension_nbc.cpp.o"
  "CMakeFiles/extension_nbc.dir/extension_nbc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_nbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
