# Empty dependencies file for extension_nbc.
# This may be replaced when dependencies are built.
