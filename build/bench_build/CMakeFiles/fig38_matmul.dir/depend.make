# Empty dependencies file for fig38_matmul.
# This may be replaced when dependencies are built.
