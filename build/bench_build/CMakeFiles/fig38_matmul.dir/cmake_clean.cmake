file(REMOVE_RECURSE
  "../bench/fig38_matmul"
  "../bench/fig38_matmul.pdb"
  "CMakeFiles/fig38_matmul.dir/fig38_matmul.cpp.o"
  "CMakeFiles/fig38_matmul.dir/fig38_matmul.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig38_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
