
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig24_27_gpu_collectives.cpp" "bench_build/CMakeFiles/fig24_27_gpu_collectives.dir/fig24_27_gpu_collectives.cpp.o" "gcc" "bench_build/CMakeFiles/fig24_27_gpu_collectives.dir/fig24_27_gpu_collectives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ombx_bench_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_pylayer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_buffers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
