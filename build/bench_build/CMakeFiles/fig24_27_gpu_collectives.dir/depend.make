# Empty dependencies file for fig24_27_gpu_collectives.
# This may be replaced when dependencies are built.
