file(REMOVE_RECURSE
  "../bench/fig24_27_gpu_collectives"
  "../bench/fig24_27_gpu_collectives.pdb"
  "CMakeFiles/fig24_27_gpu_collectives.dir/fig24_27_gpu_collectives.cpp.o"
  "CMakeFiles/fig24_27_gpu_collectives.dir/fig24_27_gpu_collectives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_27_gpu_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
