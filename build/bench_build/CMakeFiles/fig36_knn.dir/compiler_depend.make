# Empty compiler generated dependencies file for fig36_knn.
# This may be replaced when dependencies are built.
