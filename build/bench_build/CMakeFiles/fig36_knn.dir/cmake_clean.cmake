file(REMOVE_RECURSE
  "../bench/fig36_knn"
  "../bench/fig36_knn.pdb"
  "CMakeFiles/fig36_knn.dir/fig36_knn.cpp.o"
  "CMakeFiles/fig36_knn.dir/fig36_knn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig36_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
