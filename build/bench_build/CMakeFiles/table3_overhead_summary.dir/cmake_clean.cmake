file(REMOVE_RECURSE
  "../bench/table3_overhead_summary"
  "../bench/table3_overhead_summary.pdb"
  "CMakeFiles/table3_overhead_summary.dir/table3_overhead_summary.cpp.o"
  "CMakeFiles/table3_overhead_summary.dir/table3_overhead_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_overhead_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
