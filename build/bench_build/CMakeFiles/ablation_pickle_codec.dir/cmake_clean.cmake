file(REMOVE_RECURSE
  "../bench/ablation_pickle_codec"
  "../bench/ablation_pickle_codec.pdb"
  "CMakeFiles/ablation_pickle_codec.dir/ablation_pickle_codec.cpp.o"
  "CMakeFiles/ablation_pickle_codec.dir/ablation_pickle_codec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pickle_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
