# Empty dependencies file for ablation_gpu_staging.
# This may be replaced when dependencies are built.
