file(REMOVE_RECURSE
  "../bench/ablation_gpu_staging"
  "../bench/ablation_gpu_staging.pdb"
  "CMakeFiles/ablation_gpu_staging.dir/ablation_gpu_staging.cpp.o"
  "CMakeFiles/ablation_gpu_staging.dir/ablation_gpu_staging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gpu_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
