file(REMOVE_RECURSE
  "../bench/fig10_11_internode_latency"
  "../bench/fig10_11_internode_latency.pdb"
  "CMakeFiles/fig10_11_internode_latency.dir/fig10_11_internode_latency.cpp.o"
  "CMakeFiles/fig10_11_internode_latency.dir/fig10_11_internode_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_11_internode_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
