# Empty dependencies file for fig10_11_internode_latency.
# This may be replaced when dependencies are built.
