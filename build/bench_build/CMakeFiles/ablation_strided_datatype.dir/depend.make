# Empty dependencies file for ablation_strided_datatype.
# This may be replaced when dependencies are built.
