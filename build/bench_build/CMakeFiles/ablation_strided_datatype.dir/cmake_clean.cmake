file(REMOVE_RECURSE
  "../bench/ablation_strided_datatype"
  "../bench/ablation_strided_datatype.pdb"
  "CMakeFiles/ablation_strided_datatype.dir/ablation_strided_datatype.cpp.o"
  "CMakeFiles/ablation_strided_datatype.dir/ablation_strided_datatype.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strided_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
