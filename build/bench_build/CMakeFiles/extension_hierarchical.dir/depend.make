# Empty dependencies file for extension_hierarchical.
# This may be replaced when dependencies are built.
