file(REMOVE_RECURSE
  "../bench/extension_hierarchical"
  "../bench/extension_hierarchical.pdb"
  "CMakeFiles/extension_hierarchical.dir/extension_hierarchical.cpp.o"
  "CMakeFiles/extension_hierarchical.dir/extension_hierarchical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
