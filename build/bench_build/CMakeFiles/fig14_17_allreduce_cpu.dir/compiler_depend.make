# Empty compiler generated dependencies file for fig14_17_allreduce_cpu.
# This may be replaced when dependencies are built.
