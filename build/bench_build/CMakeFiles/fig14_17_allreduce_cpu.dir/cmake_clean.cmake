file(REMOVE_RECURSE
  "../bench/fig14_17_allreduce_cpu"
  "../bench/fig14_17_allreduce_cpu.pdb"
  "CMakeFiles/fig14_17_allreduce_cpu.dir/fig14_17_allreduce_cpu.cpp.o"
  "CMakeFiles/fig14_17_allreduce_cpu.dir/fig14_17_allreduce_cpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_17_allreduce_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
