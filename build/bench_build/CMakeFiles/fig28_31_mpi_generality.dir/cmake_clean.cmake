file(REMOVE_RECURSE
  "../bench/fig28_31_mpi_generality"
  "../bench/fig28_31_mpi_generality.pdb"
  "CMakeFiles/fig28_31_mpi_generality.dir/fig28_31_mpi_generality.cpp.o"
  "CMakeFiles/fig28_31_mpi_generality.dir/fig28_31_mpi_generality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig28_31_mpi_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
