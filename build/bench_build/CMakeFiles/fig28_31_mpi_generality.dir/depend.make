# Empty dependencies file for fig28_31_mpi_generality.
# This may be replaced when dependencies are built.
