file(REMOVE_RECURSE
  "../bench/fig12_13_internode_bw"
  "../bench/fig12_13_internode_bw.pdb"
  "CMakeFiles/fig12_13_internode_bw.dir/fig12_13_internode_bw.cpp.o"
  "CMakeFiles/fig12_13_internode_bw.dir/fig12_13_internode_bw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_13_internode_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
