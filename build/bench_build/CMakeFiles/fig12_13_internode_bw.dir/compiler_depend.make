# Empty compiler generated dependencies file for fig12_13_internode_bw.
# This may be replaced when dependencies are built.
