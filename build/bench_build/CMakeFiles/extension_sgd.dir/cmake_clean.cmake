file(REMOVE_RECURSE
  "../bench/extension_sgd"
  "../bench/extension_sgd.pdb"
  "CMakeFiles/extension_sgd.dir/extension_sgd.cpp.o"
  "CMakeFiles/extension_sgd.dir/extension_sgd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_sgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
