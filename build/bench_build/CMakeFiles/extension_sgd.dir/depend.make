# Empty dependencies file for extension_sgd.
# This may be replaced when dependencies are built.
