# Empty dependencies file for omb_run.
# This may be replaced when dependencies are built.
