# Empty compiler generated dependencies file for omb_run.
# This may be replaced when dependencies are built.
