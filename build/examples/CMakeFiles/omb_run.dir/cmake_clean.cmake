file(REMOVE_RECURSE
  "CMakeFiles/omb_run.dir/omb_run.cpp.o"
  "CMakeFiles/omb_run.dir/omb_run.cpp.o.d"
  "omb_run"
  "omb_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omb_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
