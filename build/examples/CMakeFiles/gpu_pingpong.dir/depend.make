# Empty dependencies file for gpu_pingpong.
# This may be replaced when dependencies are built.
