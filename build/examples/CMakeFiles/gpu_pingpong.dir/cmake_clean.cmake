file(REMOVE_RECURSE
  "CMakeFiles/gpu_pingpong.dir/gpu_pingpong.cpp.o"
  "CMakeFiles/gpu_pingpong.dir/gpu_pingpong.cpp.o.d"
  "gpu_pingpong"
  "gpu_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
