# Empty dependencies file for ombx_bench_suite.
# This may be replaced when dependencies are built.
