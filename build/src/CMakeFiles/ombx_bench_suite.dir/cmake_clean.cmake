file(REMOVE_RECURSE
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/coll_bench.cpp.o"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/coll_bench.cpp.o.d"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/nbc_bench.cpp.o"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/nbc_bench.cpp.o.d"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_bandwidth.cpp.o"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_bandwidth.cpp.o.d"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_bibw.cpp.o"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_bibw.cpp.o.d"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_latency.cpp.o"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_latency.cpp.o.d"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_mbw_mr.cpp.o"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_mbw_mr.cpp.o.d"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_multi_lat.cpp.o"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_multi_lat.cpp.o.d"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/rma_bench.cpp.o"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/rma_bench.cpp.o.d"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/suite.cpp.o"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/suite.cpp.o.d"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/vector_bench.cpp.o"
  "CMakeFiles/ombx_bench_suite.dir/bench_suite/vector_bench.cpp.o.d"
  "libombx_bench_suite.a"
  "libombx_bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ombx_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
