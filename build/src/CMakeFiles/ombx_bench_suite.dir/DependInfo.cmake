
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_suite/coll_bench.cpp" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/coll_bench.cpp.o" "gcc" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/coll_bench.cpp.o.d"
  "/root/repo/src/bench_suite/nbc_bench.cpp" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/nbc_bench.cpp.o" "gcc" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/nbc_bench.cpp.o.d"
  "/root/repo/src/bench_suite/p2p_bandwidth.cpp" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_bandwidth.cpp.o" "gcc" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_bandwidth.cpp.o.d"
  "/root/repo/src/bench_suite/p2p_bibw.cpp" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_bibw.cpp.o" "gcc" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_bibw.cpp.o.d"
  "/root/repo/src/bench_suite/p2p_latency.cpp" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_latency.cpp.o" "gcc" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_latency.cpp.o.d"
  "/root/repo/src/bench_suite/p2p_mbw_mr.cpp" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_mbw_mr.cpp.o" "gcc" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_mbw_mr.cpp.o.d"
  "/root/repo/src/bench_suite/p2p_multi_lat.cpp" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_multi_lat.cpp.o" "gcc" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/p2p_multi_lat.cpp.o.d"
  "/root/repo/src/bench_suite/rma_bench.cpp" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/rma_bench.cpp.o" "gcc" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/rma_bench.cpp.o.d"
  "/root/repo/src/bench_suite/suite.cpp" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/suite.cpp.o" "gcc" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/suite.cpp.o.d"
  "/root/repo/src/bench_suite/vector_bench.cpp" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/vector_bench.cpp.o" "gcc" "src/CMakeFiles/ombx_bench_suite.dir/bench_suite/vector_bench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ombx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_pylayer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_buffers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
