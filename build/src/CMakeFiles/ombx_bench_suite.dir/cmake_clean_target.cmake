file(REMOVE_RECURSE
  "libombx_bench_suite.a"
)
