# Empty dependencies file for ombx_pylayer.
# This may be replaced when dependencies are built.
