file(REMOVE_RECURSE
  "libombx_pylayer.a"
)
