
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pylayer/costs.cpp" "src/CMakeFiles/ombx_pylayer.dir/pylayer/costs.cpp.o" "gcc" "src/CMakeFiles/ombx_pylayer.dir/pylayer/costs.cpp.o.d"
  "/root/repo/src/pylayer/pickle.cpp" "src/CMakeFiles/ombx_pylayer.dir/pylayer/pickle.cpp.o" "gcc" "src/CMakeFiles/ombx_pylayer.dir/pylayer/pickle.cpp.o.d"
  "/root/repo/src/pylayer/pycomm.cpp" "src/CMakeFiles/ombx_pylayer.dir/pylayer/pycomm.cpp.o" "gcc" "src/CMakeFiles/ombx_pylayer.dir/pylayer/pycomm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ombx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_buffers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
