file(REMOVE_RECURSE
  "CMakeFiles/ombx_pylayer.dir/pylayer/costs.cpp.o"
  "CMakeFiles/ombx_pylayer.dir/pylayer/costs.cpp.o.d"
  "CMakeFiles/ombx_pylayer.dir/pylayer/pickle.cpp.o"
  "CMakeFiles/ombx_pylayer.dir/pylayer/pickle.cpp.o.d"
  "CMakeFiles/ombx_pylayer.dir/pylayer/pycomm.cpp.o"
  "CMakeFiles/ombx_pylayer.dir/pylayer/pycomm.cpp.o.d"
  "libombx_pylayer.a"
  "libombx_pylayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ombx_pylayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
