file(REMOVE_RECURSE
  "libombx_net.a"
)
