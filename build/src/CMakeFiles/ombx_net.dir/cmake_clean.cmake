file(REMOVE_RECURSE
  "CMakeFiles/ombx_net.dir/net/cluster.cpp.o"
  "CMakeFiles/ombx_net.dir/net/cluster.cpp.o.d"
  "CMakeFiles/ombx_net.dir/net/link_model.cpp.o"
  "CMakeFiles/ombx_net.dir/net/link_model.cpp.o.d"
  "CMakeFiles/ombx_net.dir/net/network.cpp.o"
  "CMakeFiles/ombx_net.dir/net/network.cpp.o.d"
  "CMakeFiles/ombx_net.dir/net/topology.cpp.o"
  "CMakeFiles/ombx_net.dir/net/topology.cpp.o.d"
  "CMakeFiles/ombx_net.dir/net/tuning.cpp.o"
  "CMakeFiles/ombx_net.dir/net/tuning.cpp.o.d"
  "libombx_net.a"
  "libombx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ombx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
