# Empty dependencies file for ombx_net.
# This may be replaced when dependencies are built.
