file(REMOVE_RECURSE
  "libombx_ml.a"
)
