
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/ombx_ml.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/ombx_ml.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/distributed.cpp" "src/CMakeFiles/ombx_ml.dir/ml/distributed.cpp.o" "gcc" "src/CMakeFiles/ombx_ml.dir/ml/distributed.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/CMakeFiles/ombx_ml.dir/ml/kmeans.cpp.o" "gcc" "src/CMakeFiles/ombx_ml.dir/ml/kmeans.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/CMakeFiles/ombx_ml.dir/ml/knn.cpp.o" "gcc" "src/CMakeFiles/ombx_ml.dir/ml/knn.cpp.o.d"
  "/root/repo/src/ml/logreg.cpp" "src/CMakeFiles/ombx_ml.dir/ml/logreg.cpp.o" "gcc" "src/CMakeFiles/ombx_ml.dir/ml/logreg.cpp.o.d"
  "/root/repo/src/ml/matmul.cpp" "src/CMakeFiles/ombx_ml.dir/ml/matmul.cpp.o" "gcc" "src/CMakeFiles/ombx_ml.dir/ml/matmul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ombx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_pylayer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_buffers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
