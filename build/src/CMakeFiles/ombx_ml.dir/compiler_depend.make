# Empty compiler generated dependencies file for ombx_ml.
# This may be replaced when dependencies are built.
