file(REMOVE_RECURSE
  "CMakeFiles/ombx_ml.dir/ml/dataset.cpp.o"
  "CMakeFiles/ombx_ml.dir/ml/dataset.cpp.o.d"
  "CMakeFiles/ombx_ml.dir/ml/distributed.cpp.o"
  "CMakeFiles/ombx_ml.dir/ml/distributed.cpp.o.d"
  "CMakeFiles/ombx_ml.dir/ml/kmeans.cpp.o"
  "CMakeFiles/ombx_ml.dir/ml/kmeans.cpp.o.d"
  "CMakeFiles/ombx_ml.dir/ml/knn.cpp.o"
  "CMakeFiles/ombx_ml.dir/ml/knn.cpp.o.d"
  "CMakeFiles/ombx_ml.dir/ml/logreg.cpp.o"
  "CMakeFiles/ombx_ml.dir/ml/logreg.cpp.o.d"
  "CMakeFiles/ombx_ml.dir/ml/matmul.cpp.o"
  "CMakeFiles/ombx_ml.dir/ml/matmul.cpp.o.d"
  "libombx_ml.a"
  "libombx_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ombx_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
