
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/options.cpp" "src/CMakeFiles/ombx_core.dir/core/options.cpp.o" "gcc" "src/CMakeFiles/ombx_core.dir/core/options.cpp.o.d"
  "/root/repo/src/core/plot.cpp" "src/CMakeFiles/ombx_core.dir/core/plot.cpp.o" "gcc" "src/CMakeFiles/ombx_core.dir/core/plot.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/ombx_core.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/ombx_core.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/ombx_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/ombx_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/ombx_core.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/ombx_core.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/ombx_core.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/ombx_core.dir/core/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ombx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_buffers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_pylayer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
