file(REMOVE_RECURSE
  "CMakeFiles/ombx_core.dir/core/options.cpp.o"
  "CMakeFiles/ombx_core.dir/core/options.cpp.o.d"
  "CMakeFiles/ombx_core.dir/core/plot.cpp.o"
  "CMakeFiles/ombx_core.dir/core/plot.cpp.o.d"
  "CMakeFiles/ombx_core.dir/core/registry.cpp.o"
  "CMakeFiles/ombx_core.dir/core/registry.cpp.o.d"
  "CMakeFiles/ombx_core.dir/core/report.cpp.o"
  "CMakeFiles/ombx_core.dir/core/report.cpp.o.d"
  "CMakeFiles/ombx_core.dir/core/runner.cpp.o"
  "CMakeFiles/ombx_core.dir/core/runner.cpp.o.d"
  "CMakeFiles/ombx_core.dir/core/stats.cpp.o"
  "CMakeFiles/ombx_core.dir/core/stats.cpp.o.d"
  "libombx_core.a"
  "libombx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ombx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
