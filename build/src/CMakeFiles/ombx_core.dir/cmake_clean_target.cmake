file(REMOVE_RECURSE
  "libombx_core.a"
)
