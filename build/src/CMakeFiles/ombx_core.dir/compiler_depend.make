# Empty compiler generated dependencies file for ombx_core.
# This may be replaced when dependencies are built.
