# Empty compiler generated dependencies file for ombx_mpi.
# This may be replaced when dependencies are built.
