
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/cart.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/cart.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/cart.cpp.o.d"
  "/root/repo/src/mpi/coll_allgather.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_allgather.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_allgather.cpp.o.d"
  "/root/repo/src/mpi/coll_allreduce.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_allreduce.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_allreduce.cpp.o.d"
  "/root/repo/src/mpi/coll_alltoall.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_alltoall.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_alltoall.cpp.o.d"
  "/root/repo/src/mpi/coll_barrier.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_barrier.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_barrier.cpp.o.d"
  "/root/repo/src/mpi/coll_bcast.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_bcast.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_bcast.cpp.o.d"
  "/root/repo/src/mpi/coll_gather.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_gather.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_gather.cpp.o.d"
  "/root/repo/src/mpi/coll_reduce.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_reduce.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_reduce.cpp.o.d"
  "/root/repo/src/mpi/coll_reduce_scatter.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_reduce_scatter.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_reduce_scatter.cpp.o.d"
  "/root/repo/src/mpi/coll_scan.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_scan.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_scan.cpp.o.d"
  "/root/repo/src/mpi/coll_scatter.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_scatter.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_scatter.cpp.o.d"
  "/root/repo/src/mpi/coll_vector.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_vector.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/coll_vector.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/datatype.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/datatype.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/datatype.cpp.o.d"
  "/root/repo/src/mpi/engine.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/engine.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/engine.cpp.o.d"
  "/root/repo/src/mpi/hierarchical.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/hierarchical.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/hierarchical.cpp.o.d"
  "/root/repo/src/mpi/layout.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/layout.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/layout.cpp.o.d"
  "/root/repo/src/mpi/mailbox.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/mailbox.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/mailbox.cpp.o.d"
  "/root/repo/src/mpi/nbc.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/nbc.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/nbc.cpp.o.d"
  "/root/repo/src/mpi/op.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/op.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/op.cpp.o.d"
  "/root/repo/src/mpi/request.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/request.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/request.cpp.o.d"
  "/root/repo/src/mpi/rma.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/rma.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/rma.cpp.o.d"
  "/root/repo/src/mpi/trace.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/trace.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/trace.cpp.o.d"
  "/root/repo/src/mpi/world.cpp" "src/CMakeFiles/ombx_mpi.dir/mpi/world.cpp.o" "gcc" "src/CMakeFiles/ombx_mpi.dir/mpi/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ombx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ombx_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
