file(REMOVE_RECURSE
  "libombx_mpi.a"
)
