file(REMOVE_RECURSE
  "CMakeFiles/ombx_buffers.dir/buffers/buffer.cpp.o"
  "CMakeFiles/ombx_buffers.dir/buffers/buffer.cpp.o.d"
  "CMakeFiles/ombx_buffers.dir/buffers/factory.cpp.o"
  "CMakeFiles/ombx_buffers.dir/buffers/factory.cpp.o.d"
  "libombx_buffers.a"
  "libombx_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ombx_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
