file(REMOVE_RECURSE
  "libombx_buffers.a"
)
