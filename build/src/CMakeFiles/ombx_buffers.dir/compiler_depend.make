# Empty compiler generated dependencies file for ombx_buffers.
# This may be replaced when dependencies are built.
