# Empty dependencies file for ombx_simtime.
# This may be replaced when dependencies are built.
