file(REMOVE_RECURSE
  "libombx_simtime.a"
)
