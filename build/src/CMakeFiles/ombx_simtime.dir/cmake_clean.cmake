file(REMOVE_RECURSE
  "CMakeFiles/ombx_simtime.dir/simtime/clock.cpp.o"
  "CMakeFiles/ombx_simtime.dir/simtime/clock.cpp.o.d"
  "CMakeFiles/ombx_simtime.dir/simtime/rng.cpp.o"
  "CMakeFiles/ombx_simtime.dir/simtime/rng.cpp.o.d"
  "CMakeFiles/ombx_simtime.dir/simtime/work.cpp.o"
  "CMakeFiles/ombx_simtime.dir/simtime/work.cpp.o.d"
  "libombx_simtime.a"
  "libombx_simtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ombx_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
