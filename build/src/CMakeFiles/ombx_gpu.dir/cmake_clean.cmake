file(REMOVE_RECURSE
  "CMakeFiles/ombx_gpu.dir/gpu/device.cpp.o"
  "CMakeFiles/ombx_gpu.dir/gpu/device.cpp.o.d"
  "CMakeFiles/ombx_gpu.dir/gpu/libs.cpp.o"
  "CMakeFiles/ombx_gpu.dir/gpu/libs.cpp.o.d"
  "libombx_gpu.a"
  "libombx_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ombx_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
