
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/device.cpp" "src/CMakeFiles/ombx_gpu.dir/gpu/device.cpp.o" "gcc" "src/CMakeFiles/ombx_gpu.dir/gpu/device.cpp.o.d"
  "/root/repo/src/gpu/libs.cpp" "src/CMakeFiles/ombx_gpu.dir/gpu/libs.cpp.o" "gcc" "src/CMakeFiles/ombx_gpu.dir/gpu/libs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ombx_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
