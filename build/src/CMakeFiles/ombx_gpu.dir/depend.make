# Empty dependencies file for ombx_gpu.
# This may be replaced when dependencies are built.
