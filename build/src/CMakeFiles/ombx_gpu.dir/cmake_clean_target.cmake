file(REMOVE_RECURSE
  "libombx_gpu.a"
)
