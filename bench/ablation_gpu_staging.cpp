// Ablation: CUDA-aware (GPUDirect) transfers vs host staging.
// MVAPICH2-GDR sends device buffers straight through the NIC; a
// non-GPU-aware MPI must stage D2H, send host memory, and copy H2D on the
// receiver.  This quantifies what "built against CUDA" buys the paper's
// GPU figures.
#include <benchmark/benchmark.h>

#include "gpu/device.hpp"
#include "mpi/collectives.hpp"
#include "mpi/world.hpp"

using namespace ombx;

namespace {

double gpu_pingpong_us(std::size_t bytes, bool staged) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::ri2_gpu();
  wc.tuning = net::MpiTuning::mvapich2_gdr();
  wc.nranks = 2;
  wc.ppn = 1;
  mpi::World w(wc);
  double lat = 0.0;
  w.run([&](mpi::Comm& c) {
    gpu::Device dev(c.rank(), *wc.cluster.gpu);
    auto dbuf = dev.allocate(bytes);
    std::vector<std::byte> hbuf(staged ? bytes : 0);
    const int peer = 1 - c.rank();
    constexpr int kIters = 4;

    mpi::barrier(c);
    const double t0 = c.now();
    for (int i = 0; i < kIters; ++i) {
      const auto one_way_send = [&] {
        if (staged) {
          c.clock().advance(dev.d2h_time(bytes));  // device -> host
          c.send(mpi::ConstView{hbuf.data(), bytes}, peer, 1);
        } else {
          c.send(mpi::ConstView{dbuf.data(), bytes,
                                net::MemSpace::kDevice},
                 peer, 1);
        }
      };
      const auto one_way_recv = [&] {
        if (staged) {
          (void)c.recv(mpi::MutView{hbuf.data(), bytes}, peer, 1);
          c.clock().advance(dev.h2d_time(bytes));  // host -> device
        } else {
          (void)c.recv(mpi::MutView{dbuf.data(), bytes,
                                    net::MemSpace::kDevice},
                       peer, 1);
        }
      };
      if (c.rank() == 0) {
        one_way_send();
        one_way_recv();
      } else {
        one_way_recv();
        one_way_send();
      }
    }
    if (c.rank() == 0) lat = (c.now() - t0) / (2.0 * kIters);
  });
  return lat;
}

void BM_GpuDirectVsStaged(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const bool staged = state.range(1) != 0;
  double lat = 0.0;
  for (auto _ : state) {
    lat = gpu_pingpong_us(bytes, staged);
    benchmark::DoNotOptimize(lat);
  }
  state.counters["virtual_us"] = lat;
  state.SetLabel(staged ? "host-staged" : "gpudirect");
}

}  // namespace

BENCHMARK(BM_GpuDirectVsStaged)
    ->Iterations(30)
    ->ArgsProduct({{1024, 65536, 1 << 20}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
