// Ablation: collective algorithm choice (DESIGN.md items 2-3).
// Measures the virtual-time latency of each Allreduce / Allgather / Bcast
// algorithm across message sizes, exposing the latency/bandwidth
// crossovers the auto-selection heuristics rely on.
#include <benchmark/benchmark.h>

#include "bench_suite/suite.hpp"
#include "core/runner.hpp"

using namespace ombx;

namespace {

core::SuiteConfig coll_cfg() {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.nranks = 16;
  cfg.ppn = 1;
  cfg.mode = core::Mode::kNativeC;
  cfg.opts.iterations = 2;
  cfg.opts.warmup = 1;
  cfg.opts.iterations_large = 2;
  cfg.opts.warmup_large = 1;
  return cfg;
}

double coll_latency_us(core::SuiteConfig cfg, bench_suite::CollBench which,
                       std::size_t size) {
  cfg.opts.min_size = size;
  cfg.opts.max_size = size;
  return bench_suite::run_collective(cfg, which).front().stats.avg;
}

void BM_AllreduceAlgo(benchmark::State& state) {
  const auto algo = static_cast<net::AllreduceAlgo>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  core::SuiteConfig cfg = coll_cfg();
  cfg.tuning.allreduce = algo;
  double lat = 0.0;
  for (auto _ : state) {
    lat = coll_latency_us(cfg, bench_suite::CollBench::kAllreduce, size);
    benchmark::DoNotOptimize(lat);
  }
  state.counters["virtual_us"] = lat;
}

void BM_AllgatherAlgo(benchmark::State& state) {
  const auto algo = static_cast<net::AllgatherAlgo>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  core::SuiteConfig cfg = coll_cfg();
  cfg.tuning.allgather = algo;
  double lat = 0.0;
  for (auto _ : state) {
    lat = coll_latency_us(cfg, bench_suite::CollBench::kAllgather, size);
    benchmark::DoNotOptimize(lat);
  }
  state.counters["virtual_us"] = lat;
}

void BM_BcastAlgo(benchmark::State& state) {
  const auto algo = static_cast<net::BcastAlgo>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  core::SuiteConfig cfg = coll_cfg();
  cfg.tuning.bcast = algo;
  double lat = 0.0;
  for (auto _ : state) {
    lat = coll_latency_us(cfg, bench_suite::CollBench::kBcast, size);
    benchmark::DoNotOptimize(lat);
  }
  state.counters["virtual_us"] = lat;
}

}  // namespace

BENCHMARK(BM_AllreduceAlgo)
    ->Iterations(30)
    ->ArgsProduct({{static_cast<long>(net::AllreduceAlgo::kRecursiveDoubling),
                    static_cast<long>(net::AllreduceAlgo::kRing),
                    static_cast<long>(net::AllreduceAlgo::kReduceBcast)},
                   {64, 65536, 1 << 20}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_AllgatherAlgo)
    ->Iterations(30)
    ->ArgsProduct({{static_cast<long>(net::AllgatherAlgo::kRing),
                    static_cast<long>(net::AllgatherAlgo::kBruck),
                    static_cast<long>(net::AllgatherAlgo::kRecursiveDoubling)},
                   {64, 65536}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_BcastAlgo)
    ->Iterations(30)
    ->ArgsProduct({{static_cast<long>(net::BcastAlgo::kBinomial),
                    static_cast<long>(net::BcastAlgo::kScatterAllgather),
                    static_cast<long>(net::BcastAlgo::kLinear)},
                   {64, 1 << 20}})
    ->Unit(benchmark::kMillisecond);
