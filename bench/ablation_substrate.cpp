// Ablation: host-side cost of the simulation substrate itself — mailbox
// matching throughput, p2p message rate through the engine, contention
// factor sweep (DESIGN.md item 5).  These bound how large a virtual job
// the simulator can run per wall-second.
#include <benchmark/benchmark.h>

#include "bench_suite/suite.hpp"
#include "core/runner.hpp"
#include "mpi/mailbox.hpp"
#include "mpi/world.hpp"

using namespace ombx;

namespace {

void BM_MailboxEnqueueDequeue(benchmark::State& state) {
  mpi::Mailbox box;
  std::int64_t n = 0;
  for (auto _ : state) {
    mpi::Message m;
    m.context = 0;
    m.src = 0;
    m.tag = 1;
    box.enqueue(std::move(m));
    auto got = box.try_dequeue_match(0, 0, 1);
    benchmark::DoNotOptimize(got.has_value());
    ++n;
  }
  state.SetItemsProcessed(n);
}

void BM_MailboxDeepScan(benchmark::State& state) {
  // Worst-case matching: the wanted message sits behind `depth` strangers.
  const auto depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    mpi::Mailbox box;
    for (int i = 0; i < depth; ++i) {
      mpi::Message m;
      m.context = 0;
      m.src = 1;
      m.tag = 99;  // non-matching
      box.enqueue(std::move(m));
    }
    mpi::Message wanted;
    wanted.context = 0;
    wanted.src = 0;
    wanted.tag = 1;
    box.enqueue(std::move(wanted));
    state.ResumeTiming();
    auto got = box.try_dequeue_match(0, 0, 1);
    benchmark::DoNotOptimize(got.has_value());
  }
}

void BM_EnginePingPongRate(benchmark::State& state) {
  // Wall-clock rate of simulated messages (2 ranks, threads + condvars).
  const auto iters = static_cast<int>(state.range(0));
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 2;
  wc.ppn = 2;
  for (auto _ : state) {
    mpi::World w(wc);
    w.run([iters](mpi::Comm& c) {
      std::vector<std::byte> buf(8);
      for (int i = 0; i < iters; ++i) {
        if (c.rank() == 0) {
          c.send(mpi::ConstView{buf.data(), buf.size()}, 1, 1);
          (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 1, 1);
        } else {
          (void)c.recv(mpi::MutView{buf.data(), buf.size()}, 0, 1);
          c.send(mpi::ConstView{buf.data(), buf.size()}, 0, 1);
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          iters * 2);
}

void BM_ContentionFactorSweep(benchmark::State& state) {
  // Virtual-time effect of node subscription on a fabric transfer.
  const auto ppn = static_cast<int>(state.range(0));
  const net::NetworkModel nm(net::ClusterSpec::frontera(),
                             net::MpiTuning::mvapich2(), ppn);
  double t = 0.0;
  for (auto _ : state) {
    t = nm.transfer_us(0, ppn, 1 << 20, net::MemSpace::kHost);
    benchmark::DoNotOptimize(t);
  }
  state.counters["virtual_us_1MB"] = t;
}

}  // namespace

BENCHMARK(BM_MailboxEnqueueDequeue);
BENCHMARK(BM_MailboxDeepScan)->Iterations(2000)->Arg(1)->Arg(64)->Arg(1024);
BENCHMARK(BM_EnginePingPongRate)->Iterations(10)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ContentionFactorSweep)->Arg(1)->Arg(8)->Arg(28)->Arg(56);
