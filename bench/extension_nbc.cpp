// OMB-X extension: non-blocking collective benchmarks (OMB's osu_i<coll>
// suite).  Reports pure latency, total time with an overlap-candidate
// compute phase, and the achieved overlap percentage — near zero here,
// faithfully modelling NBC implementations that only progress inside MPI
// calls (LibNBC without an async progress thread).
#include "fig_common.hpp"

using namespace ombx;

int main() {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.nranks = 8;
  cfg.ppn = 1;
  cfg.mode = core::Mode::kNativeC;
  cfg.opts.min_size = 4;
  cfg.opts.max_size = 1 << 18;
  cfg.opts.iterations = 3;
  cfg.opts.warmup = 1;
  cfg.opts.iterations_large = 2;
  cfg.opts.warmup_large = 1;

  for (const auto which :
       {bench_suite::NbcBench::kIallreduce, bench_suite::NbcBench::kIbcast,
        bench_suite::NbcBench::kIallgather,
        bench_suite::NbcBench::kIbarrier}) {
    const auto rows = bench_suite::run_nbc(cfg, which);
    core::Table t("osu_" + bench_suite::to_string(which) +
                      " (8 nodes, frontera)",
                  {"Size", "Pure (us)", "Post+Compute+Wait (us)",
                   "Overlap (%)"});
    for (const auto& r : rows) {
      t.add_row(r.size, {r.t_pure_us, r.t_total_us, r.overlap_pct});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Overlap stays near 0%: without an asynchronous progress\n"
               "engine the schedule only advances inside wait(), exactly\n"
               "like non-offloaded NBC in production MPI libraries.\n";
  return 0;
}
