// Ablation: eager -> rendezvous protocol threshold (DESIGN.md item 1).
// Sweeps the inter-node threshold and reports ping-pong latency around the
// switch point: too low forces handshakes on mid-size messages, too high
// keeps copying through the eager path.
#include <benchmark/benchmark.h>

#include "bench_suite/suite.hpp"
#include "core/runner.hpp"

using namespace ombx;

namespace {

void BM_EagerThreshold(benchmark::State& state) {
  const auto threshold = static_cast<std::size_t>(state.range(0));
  const auto msg = static_cast<std::size_t>(state.range(1));

  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.tuning.eager_threshold_inter = threshold;
  cfg.nranks = 2;
  cfg.ppn = 1;
  cfg.mode = core::Mode::kNativeC;
  cfg.opts.min_size = msg;
  cfg.opts.max_size = msg;
  cfg.opts.iterations = 3;
  cfg.opts.warmup = 1;
  cfg.opts.iterations_large = 3;
  cfg.opts.warmup_large = 1;

  double lat = 0.0;
  for (auto _ : state) {
    lat = bench_suite::run_latency(cfg).front().stats.avg;
    benchmark::DoNotOptimize(lat);
  }
  state.counters["virtual_us"] = lat;
}

}  // namespace

BENCHMARK(BM_EagerThreshold)
    ->Iterations(30)
    ->ArgsProduct({{4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024},
                   {8 * 1024, 32 * 1024, 128 * 1024}})
    ->Unit(benchmark::kMillisecond);
