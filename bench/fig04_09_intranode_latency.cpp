// Figures 4-9: intra-node CPU latency, small and large message ranges,
// OMB (C) vs OMB-Py, on Frontera, Stampede2 and RI2.
#include "fig_common.hpp"

using namespace ombx;

namespace {

// Paper-reported mean OMB-Py overheads per (cluster, range).
struct PaperNumbers {
  double small_us;
  double large_us;
};

void run_cluster(const net::ClusterSpec& cluster, PaperNumbers paper) {
  core::SuiteConfig cfg;
  cfg.cluster = cluster;
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.nranks = 2;
  cfg.ppn = 2;  // same node

  for (const auto& range : {fig::kSmall, fig::kLarge}) {
    cfg.mode = core::Mode::kNativeC;
    const auto c_rows = fig::sweep(cfg, range, bench_suite::run_latency);
    cfg.mode = core::Mode::kPythonDirect;
    const auto py_rows = fig::sweep(cfg, range, bench_suite::run_latency);

    fig::print_figure("Intra-node CPU latency, " + cluster.name + ", " +
                          range.label,
                      {{"OMB", c_rows}, {"OMB-Py", py_rows}});
    const bool small = range.min == fig::kSmall.min;
    fig::report_vs_paper(
        cluster.name + " intra-node overhead, " + range.label,
        small ? paper.small_us : paper.large_us,
        fig::mean_gap(c_rows, py_rows));
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "== Figures 4-5: Frontera ==\n";
  run_cluster(net::ClusterSpec::frontera(), {0.44, 2.31});
  std::cout << "== Figures 6-7: Stampede2 ==\n";
  run_cluster(net::ClusterSpec::stampede2(), {0.41, 4.13});
  std::cout << "== Figures 8-9: RI2 ==\n";
  run_cluster(net::ClusterSpec::ri2(), {0.41, 1.76});
  return 0;
}
