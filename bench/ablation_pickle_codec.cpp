// Ablation: real host-side throughput of the pickle codec (DESIGN.md item
// 4).  Unlike the figure benches (virtual time), this measures the actual
// encode/decode work the simulator executes.
#include <benchmark/benchmark.h>

#include <vector>

#include "pylayer/pickle.hpp"

using namespace ombx;

namespace {

void BM_PickleEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(n, std::byte{0x5A});
  for (auto _ : state) {
    auto s = pylayer::encode(mpi::ConstView{payload.data(), n},
                             mpi::Datatype::kByte);
    benchmark::DoNotOptimize(s.bytes.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_PickleDecode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(n, std::byte{0x5A});
  const auto s = pylayer::encode(mpi::ConstView{payload.data(), n},
                                 mpi::Datatype::kByte);
  std::vector<std::byte> out(n);
  for (auto _ : state) {
    const std::size_t got =
        pylayer::decode(s.bytes, s.logical_bytes,
                        mpi::MutView{out.data(), n}, mpi::Datatype::kByte);
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_PickleRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(n, std::byte{0x33});
  std::vector<std::byte> out(n);
  for (auto _ : state) {
    const auto s = pylayer::encode(mpi::ConstView{payload.data(), n},
                                   mpi::Datatype::kFloat);
    const std::size_t got =
        pylayer::decode(s.bytes, s.logical_bytes,
                        mpi::MutView{out.data(), n}, mpi::Datatype::kFloat);
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 2);
}

}  // namespace

BENCHMARK(BM_PickleEncode)->Range(64, 1 << 22);
BENCHMARK(BM_PickleDecode)->Range(64, 1 << 22);
BENCHMARK(BM_PickleRoundTrip)->Range(64, 1 << 20);
