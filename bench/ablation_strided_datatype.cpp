// Ablation: contiguous vs strided (derived-datatype) transfers.
// Non-contiguous layouts pay a pack on the sender and an unpack on the
// receiver; small blocks also waste cache lines.  This measures the
// penalty across block sizes at fixed payload.
#include <benchmark/benchmark.h>

#include "mpi/layout.hpp"
#include "mpi/collectives.hpp"
#include "mpi/world.hpp"

using namespace ombx;

namespace {

double strided_pingpong_us(std::size_t payload, std::size_t block,
                           bool strided) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 2;
  wc.ppn = 2;
  mpi::World w(wc);
  double lat = 0.0;
  w.run([&](mpi::Comm& c) {
    const mpi::VectorLayout layout{payload / block, block,
                                   strided ? 2 * block : block};
    std::vector<std::byte> buf(layout.extent_bytes());
    const int peer = 1 - c.rank();
    constexpr int kIters = 4;

    mpi::barrier(c);
    const double t0 = c.now();
    for (int i = 0; i < kIters; ++i) {
      if (c.rank() == 0) {
        mpi::send_strided(c, layout,
                          mpi::ConstView{buf.data(), buf.size()}, peer, 1);
        (void)mpi::recv_strided(c, layout,
                                mpi::MutView{buf.data(), buf.size()}, peer,
                                1);
      } else {
        (void)mpi::recv_strided(c, layout,
                                mpi::MutView{buf.data(), buf.size()}, peer,
                                1);
        mpi::send_strided(c, layout,
                          mpi::ConstView{buf.data(), buf.size()}, peer, 1);
      }
    }
    if (c.rank() == 0) lat = (c.now() - t0) / (2.0 * kIters);
  });
  return lat;
}

void BM_StridedVsContiguous(benchmark::State& state) {
  const auto block = static_cast<std::size_t>(state.range(0));
  const bool strided = state.range(1) != 0;
  constexpr std::size_t kPayload = 1 << 20;
  double lat = 0.0;
  for (auto _ : state) {
    lat = strided_pingpong_us(kPayload, block, strided);
    benchmark::DoNotOptimize(lat);
  }
  state.counters["virtual_us"] = lat;
  state.SetLabel(strided ? "strided" : "contiguous");
}

}  // namespace

BENCHMARK(BM_StridedVsContiguous)
    ->Iterations(30)
    ->ArgsProduct({{16, 256, 4096, 65536}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
