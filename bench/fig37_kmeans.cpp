// Figure 37: distributed hyper-parameter optimization for k-means,
// 1-224 processes on RI2 (7,000-point 2-D synthetic set, k = 1..200
// balanced with the paper's small+large-k scheduling).
#include "fig_common.hpp"
#include "ml/distributed.hpp"

using namespace ombx;

int main() {
  const auto curve = ml::kmeans_scaling(
      net::ClusterSpec::ri2(), net::MpiTuning::mvapich2(),
      ml::KmeansBenchConfig{}, ml::MlTimingModel{}, ml::paper_proc_counts());

  core::Table t("Distributed k-means hyperparameter sweep, RI2",
                {"Procs", "Time (s)", "Speedup"});
  for (const auto& p : curve.points) {
    t.add_row(static_cast<std::size_t>(p.procs), {p.time_s, p.speedup});
  }
  t.print(std::cout);
  std::cout << "\n";
  fig::report_vs_paper("sequential time", 1059.45, curve.sequential_s, "s");
  fig::report_vs_paper("time at 224 procs", 11.15,
                       curve.points.back().time_s, "s");
  fig::report_vs_paper("speedup at 224 procs", 95.0,
                       curve.points.back().speedup, "x");
  return 0;
}
