// Figures 28-31: OMB-Py generality across MPI libraries — inter-node
// latency (28-29) and bandwidth (30-31) on Frontera under MVAPICH2 vs
// Intel MPI, both through the Python binding.
#include "fig_common.hpp"

using namespace ombx;

int main() {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.nranks = 2;
  cfg.ppn = 1;
  cfg.mode = core::Mode::kPythonDirect;

  std::cout << "== Figures 28-29: latency ==\n";
  std::vector<double> lat_gaps;
  for (const auto& range : {fig::kSmall, fig::kLarge}) {
    cfg.tuning = net::MpiTuning::mvapich2();
    const auto mv = fig::sweep(cfg, range, bench_suite::run_latency);
    cfg.tuning = net::MpiTuning::intelmpi();
    const auto im = fig::sweep(cfg, range, bench_suite::run_latency);
    fig::print_figure(
        std::string("OMB-Py inter-node latency, frontera, ") + range.label,
        {{"MVAPICH2", mv}, {"Intel MPI", im}});
    lat_gaps.push_back(fig::mean_gap(mv, im));
  }
  fig::report_vs_paper("mean |MVAPICH2 - IntelMPI| latency gap", 0.36,
                       (lat_gaps[0] + lat_gaps[1]) / 2.0);
  std::cout << "\n== Figures 30-31: bandwidth ==\n";

  const fig::SizeRange bw_small{1, 8 * 1024, "small (1B-8KB)"};
  const fig::SizeRange bw_large{16 * 1024, 1024 * 1024, "large (16KB-1MB)"};
  std::vector<double> bw_gaps;
  for (const auto& range : {bw_small, bw_large}) {
    cfg.tuning = net::MpiTuning::mvapich2();
    const auto mv = fig::sweep(cfg, range, bench_suite::run_bandwidth);
    cfg.tuning = net::MpiTuning::intelmpi();
    const auto im = fig::sweep(cfg, range, bench_suite::run_bandwidth);
    fig::print_figure(
        std::string("OMB-Py inter-node bandwidth, frontera, ") + range.label,
        {{"MVAPICH2", mv}, {"Intel MPI", im}}, "MB/s");
    bw_gaps.push_back(-fig::mean_gap(mv, im));  // MVAPICH2 lead
  }
  fig::report_vs_paper("mean bandwidth gap", 856.0,
                       (bw_gaps[0] + bw_gaps[1]) / 2.0, "MB/s");
  return 0;
}
