// Figures 32-35: mpi4py's pickle (lowercase) API vs direct buffers on
// Frontera — latency (32-33) and bandwidth (34-35).  The curves diverge
// hard past 64 KB because pickling adds full serialize/deserialize passes
// over the payload.
#include "fig_common.hpp"

using namespace ombx;

int main() {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.nranks = 2;
  cfg.ppn = 1;

  std::cout << "== Figures 32-33: latency ==\n";
  for (const auto& range : {fig::kSmall, fig::kLarge}) {
    cfg.mode = core::Mode::kPythonDirect;
    const auto direct = fig::sweep(cfg, range, bench_suite::run_latency);
    cfg.mode = core::Mode::kPythonPickle;
    const auto pickle = fig::sweep(cfg, range, bench_suite::run_latency);
    fig::print_figure(
        std::string("Pickle vs direct buffer latency, frontera, ") +
            range.label,
        {{"direct", direct}, {"pickle", pickle}});
    if (range.min == fig::kSmall.min) {
      fig::report_vs_paper("pickle overhead, small", 1.07,
                           fig::mean_gap(direct, pickle));
    } else {
      fig::report_vs_paper(
          "pickle overhead at the top size (paper: up to 1510 us)", 1510.0,
          pickle.back().stats.avg - direct.back().stats.avg);
    }
    std::cout << "\n";
  }

  std::cout << "== Figures 34-35: bandwidth ==\n";
  const fig::SizeRange bw_small{1, 8 * 1024, "small (1B-8KB)"};
  const fig::SizeRange bw_large{16 * 1024, 1024 * 1024, "large (16KB-1MB)"};
  for (const auto& range : {bw_small, bw_large}) {
    cfg.mode = core::Mode::kPythonDirect;
    const auto direct = fig::sweep(cfg, range, bench_suite::run_bandwidth);
    cfg.mode = core::Mode::kPythonPickle;
    const auto pickle = fig::sweep(cfg, range, bench_suite::run_bandwidth);
    fig::print_figure(
        std::string("Pickle vs direct buffer bandwidth, frontera, ") +
            range.label,
        {{"direct", direct}, {"pickle", pickle}}, "MB/s");
    if (range.min == bw_small.min) {
      fig::report_vs_paper("pickle bandwidth deficit at 8KB", 2400.0,
                           direct.back().stats.avg - pickle.back().stats.avg,
                           "MB/s");
    }
    std::cout << "\n";
  }
  return 0;
}
