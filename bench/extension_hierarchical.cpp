// OMB-X extension / DESIGN.md ablation 5: flat vs two-level
// (leader-based) collectives at high ppn.  The two-level scheme keeps the
// fabric traffic to one rank per node — the optimization MVAPICH2 applies
// on exactly the full-subscription geometries of Figs 16-21.
#include "fig_common.hpp"
#include "mpi/hierarchical.hpp"
#include "mpi/world.hpp"

using namespace ombx;

namespace {

struct Point {
  double flat_us;
  double two_level_us;
};

Point measure(int nodes, int ppn, std::size_t bytes) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nodes * ppn;
  wc.ppn = ppn;
  wc.payload = mpi::PayloadMode::kSynthetic;

  Point out{0.0, 0.0};
  constexpr int kIters = 3;

  mpi::World w(wc);
  w.run([&](mpi::Comm& c) {
    mpi::HierarchicalComm hier(c);
    const mpi::ConstView send{nullptr, bytes};
    const mpi::MutView recv{nullptr, bytes};

    mpi::barrier(c);
    double t0 = c.now();
    for (int i = 0; i < kIters; ++i) {
      mpi::allreduce(c, send, recv, mpi::Datatype::kFloat, mpi::Op::kSum);
    }
    const double flat = (c.now() - t0) / kIters;

    mpi::barrier(c);
    t0 = c.now();
    for (int i = 0; i < kIters; ++i) {
      hier.allreduce(send, recv, mpi::Datatype::kFloat, mpi::Op::kSum);
    }
    const double two = (c.now() - t0) / kIters;
    if (c.rank() == 0) out = Point{flat, two};
  });
  return out;
}

}  // namespace

int main() {
  core::Table t("Flat vs two-level Allreduce, frontera, 8 nodes",
                {"ppn", "Size", "Flat (us)", "Two-level (us)", "Speedup"});
  for (const int ppn : {4, 16, 56}) {
    for (const std::size_t bytes : {4096UL, 262144UL, 1048576UL}) {
      const Point p = measure(8, ppn, bytes);
      t.add_row({std::to_string(ppn), std::to_string(bytes),
                 std::to_string(p.flat_us), std::to_string(p.two_level_us),
                 std::to_string(p.flat_us / p.two_level_us)});
    }
  }
  t.print(std::cout);
  std::cout << "\nThe leader-based scheme pulls ahead as ppn grows: only\n"
               "one rank per node touches the contended NIC.\n";
  return 0;
}
