// Table III: the paper's summary of average OMB-Py overheads —
// point-to-point (intra/inter) and Allreduce on CPU, and point-to-point
// per GPU buffer library — for small and large message ranges.
#include "fig_common.hpp"

using namespace ombx;

namespace {

double latency_overhead(core::SuiteConfig cfg, const fig::SizeRange& range) {
  cfg.mode = core::Mode::kNativeC;
  const auto base = fig::sweep(cfg, range, bench_suite::run_latency);
  cfg.mode = core::Mode::kPythonDirect;
  const auto py = fig::sweep(cfg, range, bench_suite::run_latency);
  return fig::mean_gap(base, py);
}

double allreduce_overhead(core::SuiteConfig cfg,
                          const fig::SizeRange& range) {
  const auto run = [](const core::SuiteConfig& c) {
    return bench_suite::run_collective(c,
                                       bench_suite::CollBench::kAllreduce);
  };
  cfg.mode = core::Mode::kNativeC;
  const auto base = fig::sweep(cfg, range, run);
  cfg.mode = core::Mode::kPythonDirect;
  const auto py = fig::sweep(cfg, range, run);
  return fig::mean_gap(base, py);
}

}  // namespace

int main(int argc, char** argv) {
  const core::ObsOptions obs = fig::parse_obs_flags(argc, argv);
  const core::CheckOptions check = fig::parse_check_flags(argc, argv);
  const sched::Mode sched = fig::parse_sched_flag(argc, argv);
  const fig::SizeRange small{4, 8 * 1024, "small"};
  const fig::SizeRange large{16 * 1024, 1024 * 1024, "large"};
  const fig::SizeRange p2p_large{16 * 1024, 4 * 1024 * 1024, "large"};

  core::SuiteConfig intra;
  intra.cluster = net::ClusterSpec::frontera();
  intra.nranks = 2;
  intra.ppn = 2;
  intra.obs = obs;
  intra.check = check;
  intra.sched = sched;

  core::SuiteConfig inter = intra;
  inter.ppn = 1;

  core::SuiteConfig ar;
  ar.cluster = net::ClusterSpec::frontera();
  ar.nranks = 16;
  ar.ppn = 1;
  ar.obs = obs;
  ar.check = check;
  ar.sched = sched;

  core::SuiteConfig gpu;
  gpu.cluster = net::ClusterSpec::ri2_gpu();
  gpu.tuning = net::MpiTuning::mvapich2_gdr();
  gpu.nranks = 2;
  gpu.ppn = 1;
  gpu.obs = obs;
  gpu.check = check;
  gpu.sched = sched;

  const auto gpu_overhead = [&](buffers::BufferKind k,
                                const fig::SizeRange& r) {
    core::SuiteConfig c = gpu;
    c.buffer = k;
    return latency_overhead(c, r);
  };

  const std::vector<double> small_row{
      latency_overhead(intra, {1, 8192, "s"}),
      latency_overhead(inter, {1, 8192, "s"}),
      allreduce_overhead(ar, small),
      gpu_overhead(buffers::BufferKind::kCupy, {1, 8192, "s"}),
      gpu_overhead(buffers::BufferKind::kPycuda, {1, 8192, "s"}),
      gpu_overhead(buffers::BufferKind::kNumba, {1, 8192, "s"})};
  const std::vector<double> large_row{
      latency_overhead(intra, p2p_large),
      latency_overhead(inter, p2p_large),
      allreduce_overhead(ar, large),
      gpu_overhead(buffers::BufferKind::kCupy, p2p_large),
      gpu_overhead(buffers::BufferKind::kPycuda, p2p_large),
      gpu_overhead(buffers::BufferKind::kNumba, p2p_large)};

  // Print measured vs paper side by side.
  const double paper_small[] = {0.44, 0.43, 0.93, 3.54, 3.44, 5.85};
  const double paper_large[] = {2.31, 0.63, 14.13, 8.35, 7.92, 11.40};
  const char* cols[] = {"Intra", "Inter", "Allreduce", "CuPy", "PyCUDA",
                        "Numba"};

  core::Table cmp("Table III reproduction: paper vs measured (us)",
                  {"Cell", "Paper", "Measured"});
  for (int i = 0; i < 6; ++i) {
    cmp.add_row({std::string(cols[i]) + " / small",
                 std::to_string(paper_small[i]),
                 std::to_string(small_row[static_cast<std::size_t>(i)])});
  }
  for (int i = 0; i < 6; ++i) {
    cmp.add_row({std::string(cols[i]) + " / large",
                 std::to_string(paper_large[i]),
                 std::to_string(large_row[static_cast<std::size_t>(i)])});
  }
  cmp.print(std::cout);
  return 0;
}
