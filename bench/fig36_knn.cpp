// Figure 36: distributed k-NN execution time and speedup, 1-224 processes
// on RI2 (Dota2-shaped dataset: 102,944 instances x 116 features).
#include "fig_common.hpp"
#include "ml/distributed.hpp"

using namespace ombx;

int main() {
  const auto curve = ml::knn_scaling(
      net::ClusterSpec::ri2(), net::MpiTuning::mvapich2(),
      ml::KnnBenchConfig{}, ml::MlTimingModel{}, ml::paper_proc_counts());

  core::Table t("Distributed k-NN, RI2, Dota2-shaped dataset",
                {"Procs", "Time (s)", "Speedup"});
  for (const auto& p : curve.points) {
    t.add_row(static_cast<std::size_t>(p.procs), {p.time_s, p.speedup});
  }
  t.print(std::cout);
  std::cout << "\n";
  fig::report_vs_paper("sequential time", 112.9, curve.sequential_s, "s");
  fig::report_vs_paper("time at 224 procs", 1.07, curve.points.back().time_s,
                       "s");
  fig::report_vs_paper("speedup at 224 procs", 105.6,
                       curve.points.back().speedup, "x");
  return 0;
}
