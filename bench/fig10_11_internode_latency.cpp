// Figures 10-11: inter-node CPU latency on Frontera, OMB vs OMB-Py.
#include "fig_common.hpp"

using namespace ombx;

int main(int argc, char** argv) {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.nranks = 2;
  cfg.ppn = 1;  // one rank per node -> the HDR fabric
  cfg.obs = fig::parse_obs_flags(argc, argv);
  cfg.check = fig::parse_check_flags(argc, argv);
  cfg.sched = fig::parse_sched_flag(argc, argv);

  const double paper[] = {0.43, 0.63};
  int i = 0;
  for (const auto& range : {fig::kSmall, fig::kLarge}) {
    cfg.mode = core::Mode::kNativeC;
    const auto c_rows = fig::sweep(cfg, range, bench_suite::run_latency);
    cfg.mode = core::Mode::kPythonDirect;
    const auto py_rows = fig::sweep(cfg, range, bench_suite::run_latency);

    fig::print_figure(
        std::string("Inter-node CPU latency, frontera, ") + range.label,
        {{"OMB", c_rows}, {"OMB-Py", py_rows}});
    fig::report_vs_paper(std::string("frontera inter-node overhead, ") +
                             range.label,
                         paper[i++], fig::mean_gap(c_rows, py_rows));
    std::cout << "\n";
  }
  return 0;
}
