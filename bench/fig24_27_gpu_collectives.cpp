// Figures 24-27: GPU Allreduce (24-25) and Allgather (26-27) on 8 RI2
// nodes (1 V100 each), OMB vs the three OMB-Py device buffer libraries.
#include "fig_common.hpp"

using namespace ombx;

namespace {

void run_collective(bench_suite::CollBench which, const double* paper_small,
                    const double* paper_large) {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::ri2_gpu();
  cfg.tuning = net::MpiTuning::mvapich2_gdr();
  cfg.nranks = 8;
  cfg.ppn = 1;

  const fig::SizeRange small{4, 8 * 1024, "small (4B-8KB)"};
  const fig::SizeRange large{16 * 1024, 1024 * 1024, "large (16KB-1MB)"};

  for (const auto& range : {small, large}) {
    const auto run_as = [&](core::Mode mode, buffers::BufferKind kind) {
      core::SuiteConfig c = cfg;
      c.mode = mode;
      c.buffer = kind;
      return fig::sweep(c, range, [which](const auto& sc) {
        return bench_suite::run_collective(sc, which);
      });
    };
    const auto base = run_as(core::Mode::kNativeC,
                             buffers::BufferKind::kCupy);
    const auto cupy = run_as(core::Mode::kPythonDirect,
                             buffers::BufferKind::kCupy);
    const auto pycuda = run_as(core::Mode::kPythonDirect,
                               buffers::BufferKind::kPycuda);
    const auto numba = run_as(core::Mode::kPythonDirect,
                              buffers::BufferKind::kNumba);

    fig::print_figure("GPU " + bench_suite::to_string(which) +
                          " latency, ri2, 8 nodes, " + range.label,
                      {{"OMB", base},
                       {"OMB-Py CuPy", cupy},
                       {"OMB-Py PyCUDA", pycuda},
                       {"OMB-Py Numba", numba}});
    const bool is_small = range.min == small.min;
    const double* paper = is_small ? paper_small : paper_large;
    fig::report_vs_paper("CuPy overhead, " + std::string(range.label),
                         paper[0], fig::mean_gap(base, cupy));
    fig::report_vs_paper("PyCUDA overhead, " + std::string(range.label),
                         paper[1], fig::mean_gap(base, pycuda));
    fig::report_vs_paper("Numba overhead, " + std::string(range.label),
                         paper[2], fig::mean_gap(base, numba));
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "== Figures 24-25: GPU Allreduce ==\n";
  const double ar_small[] = {18.64, 17.63, 23.10};
  const double ar_large[] = {20.67, 21.74, 25.01};
  run_collective(bench_suite::CollBench::kAllreduce, ar_small, ar_large);

  std::cout << "== Figures 26-27: GPU Allgather ==\n";
  const double ag_small[] = {12.139, 11.94, 17.24};
  const double ag_large[] = {15.28, 16.54, 19.72};
  run_collective(bench_suite::CollBench::kAllgather, ag_small, ag_large);
  return 0;
}
