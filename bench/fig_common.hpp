// Shared scaffolding for the paper-figure benches: standard size ranges,
// sweep runners, comparison tables and paper-vs-measured summaries.
#pragma once

#include <algorithm>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/plot.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"

namespace ombx::fig {

/// The paper's "small" and "large" message-size ranges.
struct SizeRange {
  std::size_t min;
  std::size_t max;
  const char* label;
};

inline constexpr SizeRange kSmall{1, 8 * 1024, "small (1B-8KB)"};
inline constexpr SizeRange kLarge{16 * 1024, 4 * 1024 * 1024,
                                  "large (16KB-4MB)"};
inline constexpr SizeRange kLargeCollective{16 * 1024, 1024 * 1024,
                                            "large (16KB-1MB)"};

/// One labelled latency/bandwidth series (one curve of a figure).
struct Series {
  std::string label;
  std::vector<core::Row> rows;
};

/// Run `fn` for a size range with the shared quick-iteration schedule.
inline std::vector<core::Row> sweep(
    core::SuiteConfig cfg, const SizeRange& range,
    const std::function<std::vector<core::Row>(const core::SuiteConfig&)>&
        fn) {
  cfg.opts.min_size = range.min;
  cfg.opts.max_size = range.max;
  cfg.opts.iterations = 5;
  cfg.opts.warmup = 1;
  cfg.opts.iterations_large = 2;
  cfg.opts.warmup_large = 1;
  return fn(cfg);
}

/// Print one figure: the data table plus an ASCII rendering of the curves
/// (log-x, log-y when the values span decades — the paper's axes).
inline void print_figure(const std::string& title,
                         const std::vector<Series>& series,
                         const char* metric = "us") {
  std::vector<std::string> headers{"Size"};
  for (const auto& s : series) {
    headers.push_back(s.label + " (" + metric + ")");
  }
  core::Table t(title, headers);
  double vmin = 1e300;
  double vmax = 0.0;
  for (std::size_t i = 0; i < series.front().rows.size(); ++i) {
    std::vector<double> vals;
    for (const auto& s : series) {
      vals.push_back(s.rows[i].stats.avg);
      vmin = std::min(vmin, s.rows[i].stats.avg);
      vmax = std::max(vmax, s.rows[i].stats.avg);
    }
    t.add_row(series.front().rows[i].size, vals, 3);
  }
  t.print(std::cout);

  core::AsciiPlot plot(title, metric);
  plot.log_y(vmin > 0.0 && vmax / std::max(vmin, 1e-12) > 50.0);
  constexpr char kGlyphs[] = {'*', 'o', 'x', '#', '@', '%'};
  for (std::size_t si = 0; si < series.size(); ++si) {
    core::PlotSeries ps;
    ps.label = series[si].label;
    ps.glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& row : series[si].rows) {
      ps.points.emplace_back(static_cast<double>(row.size),
                             row.stats.avg);
    }
    plot.add(std::move(ps));
  }
  plot.render(std::cout);
  std::cout << "\n";
}

/// Parse the shared observability flags (--metrics <file>,
/// --trace-json <file>) from a figure binary's argv.  Unknown arguments
/// are ignored so figure-specific flags can coexist.  The returned
/// options feed straight into SuiteConfig::obs; exports never perturb the
/// figures themselves (virtual time is independent of observability).
inline core::ObsOptions parse_obs_flags(int argc, char** argv) {
  core::ObsOptions obs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics" && i + 1 < argc) {
      obs.metrics_csv = argv[++i];
    } else if (arg == "--trace-json" && i + 1 < argc) {
      obs.trace_json = argv[++i];
    }
  }
  return obs;
}

/// Parse the shared correctness-checker flags (--check, --check-strict,
/// --strict, --check-report <file>) from a figure binary's argv.  Like
/// parse_obs_flags, unknown arguments are ignored, and a clean checked
/// run leaves the figure output byte-identical (violations go to stderr
/// and the report CSV, never stdout).
inline core::CheckOptions parse_check_flags(int argc, char** argv) {
  core::CheckOptions check;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check.enabled = true;
    } else if (arg == "--check-strict" || arg == "--strict") {
      check.enabled = true;
      check.strict = true;
    } else if (arg == "--check-report" && i + 1 < argc) {
      check.enabled = true;
      check.report_csv = argv[++i];
    }
  }
  return check;
}

/// Parse the shared scheduler flag (--sched auto|threads|fibers) from a
/// figure binary's argv.  Unknown arguments are ignored; a bad mode name
/// throws (figures should fail loudly rather than silently fall back).
/// The two backends produce byte-identical figures — the flag exists for
/// sanitizer runs and fibers-vs-threads regression diffs.
inline sched::Mode parse_sched_flag(int argc, char** argv) {
  sched::Mode mode = sched::Mode::kAuto;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--sched" && i + 1 < argc) {
      mode = sched::mode_by_name(argv[++i]);
    }
  }
  return mode;
}

/// Mean difference between two series (curve B minus curve A).
inline double mean_gap(const std::vector<core::Row>& a,
                       const std::vector<core::Row>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += b[i].stats.avg - a[i].stats.avg;
  }
  return acc / static_cast<double>(a.size());
}

/// Paper-vs-measured summary line (collected into EXPERIMENTS.md).
inline void report_vs_paper(const std::string& what, double paper,
                            double measured, const char* unit = "us") {
  std::cout << "  [paper-check] " << what << ": paper " << paper << " "
            << unit << ", measured " << measured << " " << unit << "\n";
}

}  // namespace ombx::fig
