// Figures 22-23: GPU point-to-point latency on RI2, OMB (CUDA-aware C)
// vs OMB-Py with CuPy / PyCUDA / Numba device buffers.
#include "fig_common.hpp"

using namespace ombx;

int main() {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::ri2_gpu();
  cfg.tuning = net::MpiTuning::mvapich2_gdr();
  cfg.nranks = 2;
  cfg.ppn = 1;  // 1 GPU per node -> GPUDirect inter-node path

  // Paper means per range: {CuPy, PyCUDA, Numba}.
  const double paper_small[] = {3.54, 3.44, 5.85};
  const double paper_large[] = {8.35, 7.92, 11.4};

  for (const auto& range : {fig::kSmall, fig::kLarge}) {
    const auto run_as = [&](core::Mode mode, buffers::BufferKind kind) {
      core::SuiteConfig c = cfg;
      c.mode = mode;
      c.buffer = kind;
      return fig::sweep(c, range, bench_suite::run_latency);
    };
    const auto base = run_as(core::Mode::kNativeC,
                             buffers::BufferKind::kCupy);
    const auto cupy = run_as(core::Mode::kPythonDirect,
                             buffers::BufferKind::kCupy);
    const auto pycuda = run_as(core::Mode::kPythonDirect,
                               buffers::BufferKind::kPycuda);
    const auto numba = run_as(core::Mode::kPythonDirect,
                              buffers::BufferKind::kNumba);

    fig::print_figure(std::string("GPU latency, ri2, ") + range.label,
                      {{"OMB", base},
                       {"OMB-Py CuPy", cupy},
                       {"OMB-Py PyCUDA", pycuda},
                       {"OMB-Py Numba", numba}});
    const bool small = range.min == fig::kSmall.min;
    const double* paper = small ? paper_small : paper_large;
    fig::report_vs_paper("CuPy overhead, " + std::string(range.label),
                         paper[0], fig::mean_gap(base, cupy));
    fig::report_vs_paper("PyCUDA overhead, " + std::string(range.label),
                         paper[1], fig::mean_gap(base, pycuda));
    fig::report_vs_paper("Numba overhead, " + std::string(range.label),
                         paper[2], fig::mean_gap(base, numba));
    std::cout << "\n";
  }
  return 0;
}
