// Figures 14-17: Allreduce latency on Frontera, 16 nodes.
//   Figs 14-15: 1 process per node (16 ranks).
//   Figs 16-17: 56 processes per node, full subscription (896 ranks) —
//   where mpi4py's THREAD_MULTIPLE initialization degrades OMB-Py.
#include "fig_common.hpp"

using namespace ombx;

namespace {

void run_geometry(int nranks, int ppn, double paper_small,
                  double paper_large, const core::ObsOptions& obs,
                  const core::CheckOptions& check, sched::Mode sched) {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.nranks = nranks;
  cfg.ppn = ppn;
  cfg.obs = obs;
  cfg.check = check;
  cfg.sched = sched;
  // At 896 ranks the aggregate buffers would be enormous; synthetic
  // payloads keep the virtual time identical while moving no bytes.
  cfg.payload = nranks > 64 ? mpi::PayloadMode::kSynthetic
                            : mpi::PayloadMode::kReal;

  const fig::SizeRange small{4, 8 * 1024, "small (4B-8KB)"};
  const fig::SizeRange large{16 * 1024, 1024 * 1024, "large (16KB-1MB)"};

  const double papers[] = {paper_small, paper_large};
  int i = 0;
  for (const auto& range : {small, large}) {
    cfg.mode = core::Mode::kNativeC;
    const auto c_rows = fig::sweep(cfg, range, [](const auto& c) {
      return bench_suite::run_collective(c,
                                         bench_suite::CollBench::kAllreduce);
    });
    cfg.mode = core::Mode::kPythonDirect;
    const auto py_rows = fig::sweep(cfg, range, [](const auto& c) {
      return bench_suite::run_collective(c,
                                         bench_suite::CollBench::kAllreduce);
    });

    fig::print_figure("Allreduce CPU latency, frontera, 16 nodes x " +
                          std::to_string(ppn) + " ppn, " + range.label,
                      {{"OMB", c_rows}, {"OMB-Py", py_rows}});
    fig::report_vs_paper("allreduce overhead, " + std::to_string(ppn) +
                             " ppn, " + range.label,
                         papers[i++], fig::mean_gap(c_rows, py_rows));
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const core::ObsOptions obs = fig::parse_obs_flags(argc, argv);
  const core::CheckOptions check = fig::parse_check_flags(argc, argv);
  const sched::Mode sched = fig::parse_sched_flag(argc, argv);
  std::cout << "== Figures 14-15: 16 nodes, 1 ppn ==\n";
  run_geometry(16, 1, 0.93, 14.13, obs, check, sched);
  std::cout << "== Figures 16-17: 16 nodes, 56 ppn (full subscription) ==\n";
  // The paper reports +4.21 us small and a large-message degradation it
  // attributes to THREAD_MULTIPLE oversubscription (no single average is
  // given for the large range; the gap grows with size).
  run_geometry(896, 56, 4.21, 0.0, obs, check, sched);
  return 0;
}
