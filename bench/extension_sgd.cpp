// OMB-X extension: synchronous data-parallel SGD (logistic regression with
// a gradient Allreduce per epoch) — the distributed-DL communication
// pattern the paper's introduction motivates, scaled 1-224 ranks on RI2.
#include "fig_common.hpp"
#include "ml/logreg.hpp"

using namespace ombx;

int main() {
  const ml::SgdBenchConfig cfg;
  const auto curve =
      ml::sgd_scaling(net::ClusterSpec::ri2(), net::MpiTuning::mvapich2(),
                      cfg, ml::paper_proc_counts());

  core::Table t("Distributed synchronous SGD (logistic regression), RI2",
                {"Procs", "Time (s)", "Speedup"});
  for (const auto& p : curve.points) {
    t.add_row(static_cast<std::size_t>(p.procs), {p.time_s, p.speedup}, 4);
  }
  t.print(std::cout);
  std::cout << "\nsequential: " << curve.sequential_s << " s — "
            << cfg.epochs << " epochs over " << cfg.n << "x" << cfg.d
            << " synthetic rows; each epoch allreduces a "
            << (cfg.d + 1) * 8
            << "-byte gradient, so scaling bends where the per-epoch\n"
               "Allreduce latency meets the shrinking compute shard.\n";
  return 0;
}
