// Self-timing harness for the *host-side* cost of the simulated-MPI
// substrate (wall-clock, not virtual time).  The virtual-time results of
// every figure binary are invariant under transport changes; this harness
// measures how many simulated messages per wall-second the transport can
// sustain, which bounds how many configurations the fig/ablation sweeps
// can afford.
//
// Workloads:
//   eager      self-send round trips at 8 B .. 4 KiB (alloc/copy/match
//              path with no cross-thread blocking); also reports the
//              mailbox fast-path counters so the lock-free eager split
//              is observable (hits should be ~100% here)
//   pool512    payload-pool acquire/recycle round trips at 512 B, single
//              and multi-threaded, next to a raw-memcpy reference — the
//              512 B eager point is pool+copy bound, so this isolates
//              whether a regression is freelist contention or memcpy
//   pingpong   2-rank 8 B ping-pong (end-to-end, condvar/scheduler bound)
//   rendezvous 2-rank 256 KiB ping-pong (large-message copy path)
//   matching   64-source mailbox stress: wildcard-source receives that
//              must skip a deep bulk backlog, plus exact-match receives
//              that sit behind 63 other sources' traffic
//   sched      rank-scheduler comparison, threads vs fibers: np=256
//              world spin-up+teardown (the cost that gates paper-scale
//              np) and a 2-rank 8 B ping-pong (one blocking handoff per
//              message: OS context switch vs fiber park/unpark)
//
// Emits a JSON document (see README "Substrate wall-clock bench") so the
// perf trajectory across PRs is recorded in BENCH_substrate.json.
//
// Usage: substrate_wallclock [--json PATH] [--label NAME] [--quick]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/mailbox.hpp"
#include "mpi/payload_pool.hpp"
#include "mpi/world.hpp"
#include "sched/sched.hpp"

using namespace ombx;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

mpi::WorldConfig base_config(int nranks, int ppn) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = ppn;
  wc.enable_watchdog = false;  // host-side timing, not failure testing
  return wc;
}

struct EagerPoint {
  std::size_t bytes = 0;
  double msgs_per_sec = 0.0;
  // Mailbox fast-path counter deltas across the timed loop.  A healthy
  // eager self-send run has fast_hits ~= iters and fast_fallbacks == 0;
  // anything else means the lock-free split is not engaging.
  std::uint64_t fast_hits = 0;
  std::uint64_t fast_fallbacks = 0;
  std::uint64_t ring_depth_hwm = 0;
};

/// Self-send loop: one rank, send-to-self then receive.  Every iteration
/// exercises post_send -> enqueue -> match -> dequeue -> copy-out without
/// any cross-thread wakeup, so the number isolates transport overhead.
EagerPoint eager_selfsend(std::size_t bytes, int iters) {
  mpi::WorldConfig wc = base_config(1, 1);
  EagerPoint out;
  out.bytes = bytes;
  mpi::World w(wc);
  double elapsed = 0.0;
  mpi::Engine::FastPathTotals before{};
  mpi::Engine::FastPathTotals after{};
  w.run([&](mpi::Comm& c) {
    std::vector<std::byte> sbuf(bytes, std::byte{0x5a});
    std::vector<std::byte> rbuf(bytes);
    // Warm up allocator/pool state before timing.
    for (int i = 0; i < 1000; ++i) {
      c.send(mpi::ConstView{sbuf.data(), sbuf.size()}, 0, 1);
      (void)c.recv(mpi::MutView{rbuf.data(), rbuf.size()}, 0, 1);
    }
    before = w.engine().fast_path_totals();
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      c.send(mpi::ConstView{sbuf.data(), sbuf.size()}, 0, 1);
      (void)c.recv(mpi::MutView{rbuf.data(), rbuf.size()}, 0, 1);
    }
    elapsed = seconds_since(t0);
    after = w.engine().fast_path_totals();
  });
  out.msgs_per_sec = static_cast<double>(iters) / elapsed;
  out.fast_hits = after.fast_hits - before.fast_hits;
  out.fast_fallbacks = after.fast_fallbacks - before.fast_fallbacks;
  out.ring_depth_hwm = after.ring_depth_hwm;
  return out;
}

struct Pool512 {
  double single_mops = 0.0;   ///< 1-thread acquire_copy+recycle Mops/s
  double multi_mops = 0.0;    ///< 4-thread aggregate Mops/s
  double memcpy_mops = 0.0;   ///< raw 512 B memcpy reference Mops/s
};

/// Payload-pool round trips at 512 B.  Before the lock-free freelists a
/// single spinlocked bucket serialized every acquire/recycle pair; this
/// workload shows both the uncontended cost (single) and the scaling
/// under producer/consumer pressure (multi), with memcpy as the floor.
Pool512 pool512_stress(int iters) {
  constexpr std::size_t kBytes = 512;
  std::vector<std::byte> src(kBytes, std::byte{0x7e});
  Pool512 out;

  {
    mpi::PayloadPool pool;
    // Warm the bucket so the timed loop measures recycle->acquire reuse
    // (a PooledPayload recycles its block back to the pool on destruction).
    for (int i = 0; i < 64; ++i) {
      auto p = pool.acquire_copy(src.data(), kBytes);
    }
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      auto p = pool.acquire_copy(src.data(), kBytes);
    }
    out.single_mops = static_cast<double>(iters) / seconds_since(t0) / 1e6;
  }

  {
    mpi::PayloadPool pool;
    constexpr int kThreads = 4;
    const int per = iters / kThreads;
    const auto t0 = Clock::now();
    std::vector<std::thread> ts;
    ts.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&pool, &src, per] {
        for (int i = 0; i < per; ++i) {
          auto p = pool.acquire_copy(src.data(), kBytes);
        }
      });
    }
    for (auto& t : ts) t.join();
    out.multi_mops =
        static_cast<double>(per * kThreads) / seconds_since(t0) / 1e6;
  }

  {
    std::vector<std::byte> dst(kBytes);
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      std::memcpy(dst.data(), src.data(), kBytes);
      // Keep the copy observable so the loop is not optimized away.
      src[0] = dst[static_cast<std::size_t>(i) % kBytes];
    }
    out.memcpy_mops = static_cast<double>(iters) / seconds_since(t0) / 1e6;
  }
  return out;
}

/// Classic 2-rank ping-pong; wall time includes thread wakeups, so this is
/// the end-to-end (scheduler-bound) message rate.
double pingpong_rate(std::size_t bytes, int iters, int ppn,
                     sched::Mode mode = sched::Mode::kAuto) {
  mpi::WorldConfig wc = base_config(2, ppn);
  wc.sched = mode;
  mpi::World w(wc);
  const auto t0 = Clock::now();
  w.run([&](mpi::Comm& c) {
    std::vector<std::byte> sbuf(bytes, std::byte{0x11});
    std::vector<std::byte> rbuf(bytes);
    for (int i = 0; i < iters; ++i) {
      if (c.rank() == 0) {
        c.send(mpi::ConstView{sbuf.data(), sbuf.size()}, 1, 7);
        (void)c.recv(mpi::MutView{rbuf.data(), rbuf.size()}, 1, 7);
      } else {
        (void)c.recv(mpi::MutView{rbuf.data(), rbuf.size()}, 0, 7);
        c.send(mpi::ConstView{sbuf.data(), sbuf.size()}, 0, 7);
      }
    }
  });
  const double elapsed = seconds_since(t0);
  return static_cast<double>(2 * iters) / elapsed;
}

struct MatchStress {
  double wildcard_ns_per_match = 0.0;  ///< any-source receives over backlog
  double exact_ns_per_match = 0.0;     ///< exact receives behind strangers
  double overall_ns_per_match = 0.0;
};

/// 64-source mailbox matching stress, driven directly (single thread) so
/// the number is pure match cost.  Each round enqueues `kBulk` tag-1
/// messages per source (round-robin arrival, modelling 64 ranks streaming
/// data) plus one tag-2 "request" per source.  The receiver then
///   (a) drains the 64 requests with (kAnySource, tag=2) — a wildcard
///       receive that must not pay for the 64*kBulk bulk backlog, and
///   (b) drains the bulk with exact (src, tag=1) receives, sources in
///       descending order — each match sits behind the other sources'
///       messages in global arrival order.
MatchStress matching_stress(int rounds) {
  constexpr int kSrcs = 64;
  constexpr int kBulk = 64;  // bulk messages per source per round
  mpi::Mailbox box(/*capacity=*/static_cast<std::size_t>(kSrcs) *
                   (kBulk + 2));
  double wild_s = 0.0;
  double exact_s = 0.0;
  std::int64_t wild_n = 0;
  std::int64_t exact_n = 0;

  for (int round = 0; round < rounds; ++round) {
    for (int k = 0; k < kBulk; ++k) {
      for (int s = 0; s < kSrcs; ++s) {
        mpi::Message m;
        m.context = 0;
        m.src = s;
        m.tag = 1;
        box.enqueue(std::move(m));
      }
    }
    for (int s = 0; s < kSrcs; ++s) {
      mpi::Message m;
      m.context = 0;
      m.src = s;
      m.tag = 2;
      box.enqueue(std::move(m));
    }

    auto t0 = Clock::now();
    for (int s = 0; s < kSrcs; ++s) {
      auto got = box.try_dequeue_match(0, mpi::kAnySource, 2);
      if (!got) {
        std::fprintf(stderr, "matching_stress: lost a request message\n");
        std::exit(2);
      }
    }
    wild_s += seconds_since(t0);
    wild_n += kSrcs;

    t0 = Clock::now();
    for (int k = 0; k < kBulk; ++k) {
      for (int s = kSrcs - 1; s >= 0; --s) {
        auto got = box.try_dequeue_match(0, s, 1);
        if (!got) {
          std::fprintf(stderr, "matching_stress: lost a bulk message\n");
          std::exit(2);
        }
      }
    }
    exact_s += seconds_since(t0);
    exact_n += kSrcs * kBulk;
  }

  MatchStress out;
  out.wildcard_ns_per_match = 1e9 * wild_s / static_cast<double>(wild_n);
  out.exact_ns_per_match = 1e9 * exact_s / static_cast<double>(exact_n);
  out.overall_ns_per_match = 1e9 * (wild_s + exact_s) /
                             static_cast<double>(wild_n + exact_n);
  return out;
}

struct SchedBench {
  double spinup_np256_ms_threads = 0.0;  ///< world spin-up+teardown, np=256
  double spinup_np256_ms_fibers = 0.0;
  double pingpong_8b_threads = 0.0;      ///< msgs/s, one handoff per msg
  double pingpong_8b_fibers = 0.0;
};

/// Spin up and tear down an np-rank world whose ranks do one allreduce
/// (so every rank genuinely starts, synchronizes, and exits), and report
/// milliseconds per world.  Under threads this is np thread spawns/joins;
/// under fibers it is np stack mmaps on a fixed worker pool — the number
/// that decides whether np=224 ML figures and np>=1024 campaign cells are
/// affordable.
double world_spinup_ms(int np, int reps, sched::Mode mode) {
  mpi::WorldConfig wc = base_config(np, /*ppn=*/56);
  wc.sched = mode;
  wc.payload = mpi::PayloadMode::kSynthetic;
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    mpi::World w(wc);
    w.run([](mpi::Comm& c) {
      double one = 1.0;
      double sum = 0.0;
      mpi::allreduce(
          c, mpi::ConstView{reinterpret_cast<const std::byte*>(&one),
                            sizeof(double)},
          mpi::MutView{reinterpret_cast<std::byte*>(&sum), sizeof(double)},
          mpi::Datatype::kDouble, mpi::Op::kSum);
    });
  }
  return 1e3 * seconds_since(t0) / static_cast<double>(reps);
}

SchedBench sched_compare(int spinup_reps, int pp_iters) {
  SchedBench out;
  out.spinup_np256_ms_threads =
      world_spinup_ms(256, spinup_reps, sched::Mode::kThreads);
  out.spinup_np256_ms_fibers =
      world_spinup_ms(256, spinup_reps, sched::Mode::kFibers);
  out.pingpong_8b_threads =
      pingpong_rate(8, pp_iters, /*ppn=*/2, sched::Mode::kThreads);
  out.pingpong_8b_fibers =
      pingpong_rate(8, pp_iters, /*ppn=*/2, sched::Mode::kFibers);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string label = "current";
  int scale = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (a == "--quick") {
      scale = 8;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--label NAME] [--quick]\n",
                   argv[0]);
      return 1;
    }
  }

  const int eager_iters = 400000 / scale;
  const int pp_iters = 40000 / scale;
  const int rndv_iters = 2000 / scale;
  const int stress_rounds = 64 / scale;

  std::vector<EagerPoint> eager;
  for (std::size_t bytes : {8UL, 64UL, 512UL, 4096UL}) {
    eager.push_back(eager_selfsend(bytes, eager_iters));
    const EagerPoint& p = eager.back();
    std::printf("eager self-send  %6zu B : %12.0f msgs/s  "
                "(fast hits %llu, fallbacks %llu, ring hwm %llu)\n",
                p.bytes, p.msgs_per_sec,
                static_cast<unsigned long long>(p.fast_hits),
                static_cast<unsigned long long>(p.fast_fallbacks),
                static_cast<unsigned long long>(p.ring_depth_hwm));
  }
  const Pool512 pool = pool512_stress(eager_iters);
  std::printf("pool 512 B round trips    : %8.2f Mops/s single, "
              "%8.2f Mops/s 4-thread, %8.2f Mops/s memcpy ref\n",
              pool.single_mops, pool.multi_mops, pool.memcpy_mops);
  const double pp = pingpong_rate(8, pp_iters, /*ppn=*/2);
  std::printf("pingpong 2-rank       8 B : %12.0f msgs/s\n", pp);
  const double rndv = pingpong_rate(256 * 1024, rndv_iters, /*ppn=*/1);
  std::printf("rendezvous 2-rank 256 KiB : %12.0f msgs/s (%.0f MB/s)\n",
              rndv, rndv * 256.0 * 1024.0 / 1e6);
  const MatchStress ms = matching_stress(stress_rounds);
  std::printf("matching: wildcard %8.1f ns/match, exact %8.1f ns/match, "
              "overall %8.1f ns/match\n",
              ms.wildcard_ns_per_match, ms.exact_ns_per_match,
              ms.overall_ns_per_match);
  const SchedBench sb = sched_compare(/*spinup_reps=*/16 / scale + 1,
                                      /*pp_iters=*/pp_iters);
  std::printf("sched: np=256 spinup %8.2f ms threads, %8.2f ms fibers; "
              "pingpong 8 B %10.0f msgs/s threads, %10.0f msgs/s fibers\n",
              sb.spinup_np256_ms_threads, sb.spinup_np256_ms_fibers,
              sb.pingpong_8b_threads, sb.pingpong_8b_fibers);

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    f << "{\n"
      << "  \"schema\": \"ombx-substrate-wallclock-v2\",\n"
      << "  \"label\": \"" << label << "\",\n"
      << "  \"eager_selfsend\": [\n";
    for (std::size_t i = 0; i < eager.size(); ++i) {
      f << "    {\"bytes\": " << eager[i].bytes << ", \"msgs_per_sec\": "
        << static_cast<long long>(eager[i].msgs_per_sec)
        << ", \"fast_hits\": " << eager[i].fast_hits
        << ", \"fast_fallbacks\": " << eager[i].fast_fallbacks
        << ", \"ring_depth_hwm\": " << eager[i].ring_depth_hwm << "}"
        << (i + 1 < eager.size() ? "," : "") << "\n";
    }
    f << "  ],\n"
      << "  \"pool_512B\": {\"single_mops\": " << pool.single_mops
      << ", \"multi4_mops\": " << pool.multi_mops
      << ", \"memcpy_mops\": " << pool.memcpy_mops << "},\n"
      << "  \"pingpong_2rank_8B\": {\"msgs_per_sec\": "
      << static_cast<long long>(pp) << "},\n"
      << "  \"rendezvous_2rank_256KiB\": {\"msgs_per_sec\": "
      << static_cast<long long>(rndv) << ", \"mb_per_sec\": "
      << static_cast<long long>(rndv * 256.0 * 1024.0 / 1e6) << "},\n"
      << "  \"matching_stress_64src\": {\"wildcard_ns_per_match\": "
      << ms.wildcard_ns_per_match << ", \"exact_ns_per_match\": "
      << ms.exact_ns_per_match << ", \"overall_ns_per_match\": "
      << ms.overall_ns_per_match << "},\n"
      << "  \"sched\": {\"spinup_np256_ms_threads\": "
      << sb.spinup_np256_ms_threads << ", \"spinup_np256_ms_fibers\": "
      << sb.spinup_np256_ms_fibers
      << ", \"pingpong_8B_msgs_per_sec_threads\": "
      << static_cast<long long>(sb.pingpong_8b_threads)
      << ", \"pingpong_8B_msgs_per_sec_fibers\": "
      << static_cast<long long>(sb.pingpong_8b_fibers) << "}\n"
      << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
