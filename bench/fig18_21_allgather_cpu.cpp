// Figures 18-21: Allgather latency on Frontera, 16 nodes, at 1 ppn
// (16 ranks) and full subscription (896 ranks).
#include "fig_common.hpp"

using namespace ombx;

namespace {

void run_geometry(int nranks, int ppn, double paper_small,
                  double paper_large) {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.nranks = nranks;
  cfg.ppn = ppn;
  cfg.payload = nranks > 64 ? mpi::PayloadMode::kSynthetic
                            : mpi::PayloadMode::kReal;

  // Allgather's receive buffer is nranks * size, so the paper sweeps a
  // smaller per-rank size range than the p2p tests.
  const fig::SizeRange small{1, 8 * 1024, "small (1B-8KB)"};
  const fig::SizeRange large{
      16 * 1024,
      nranks > 64 ? std::size_t{128 * 1024} : std::size_t{512 * 1024},
      "large (16KB+)"};

  const double papers[] = {paper_small, paper_large};
  int i = 0;
  for (const auto& range : {small, large}) {
    cfg.mode = core::Mode::kNativeC;
    const auto c_rows = fig::sweep(cfg, range, [](const auto& c) {
      return bench_suite::run_collective(c,
                                         bench_suite::CollBench::kAllgather);
    });
    cfg.mode = core::Mode::kPythonDirect;
    const auto py_rows = fig::sweep(cfg, range, [](const auto& c) {
      return bench_suite::run_collective(c,
                                         bench_suite::CollBench::kAllgather);
    });

    fig::print_figure("Allgather CPU latency, frontera, 16 nodes x " +
                          std::to_string(ppn) + " ppn, " + range.label,
                      {{"OMB", c_rows}, {"OMB-Py", py_rows}});
    fig::report_vs_paper("allgather overhead, " + std::to_string(ppn) +
                             " ppn, " + range.label,
                         papers[i++], fig::mean_gap(c_rows, py_rows));
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "== Figures 18-19: 16 nodes, 1 ppn ==\n";
  run_geometry(16, 1, 0.92, 23.4);
  std::cout << "== Figures 20-21: 16 nodes, 56 ppn (full subscription) ==\n";
  // Paper: the overhead grows with size (8 us at 1B up to 345 us at 8KB;
  // tens of milliseconds beyond 32KB).  The growth, not one mean, is the
  // reproduction target.
  run_geometry(896, 56, 0.0, 0.0);
  return 0;
}
