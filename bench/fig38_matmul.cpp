// Figure 38: distributed matrix multiplication (4704 x 4704), 1-224
// processes on RI2.
#include "fig_common.hpp"
#include "ml/distributed.hpp"

using namespace ombx;

int main() {
  const auto curve = ml::matmul_scaling(
      net::ClusterSpec::ri2(), net::MpiTuning::mvapich2(),
      ml::MatmulBenchConfig{}, ml::MlTimingModel{}, ml::paper_proc_counts());

  core::Table t("Distributed matmul (4704x4704), RI2",
                {"Procs", "Time (s)", "Speedup"});
  for (const auto& p : curve.points) {
    t.add_row(static_cast<std::size_t>(p.procs), {p.time_s, p.speedup});
  }
  t.print(std::cout);
  std::cout << "\n";
  fig::report_vs_paper("sequential time", 79.63, curve.sequential_s, "s");
  fig::report_vs_paper("time at 224 procs", 0.614,
                       curve.points.back().time_s, "s");
  fig::report_vs_paper("speedup at 224 procs", 129.8,
                       curve.points.back().speedup, "x");
  return 0;
}
