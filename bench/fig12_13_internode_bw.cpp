// Figures 12-13: inter-node CPU bandwidth on Frontera, OMB vs OMB-Py.
// The paper reports OMB-Py trailing by ~1.05 GB/s in the 512B-8KB band and
// only ~331 MB/s on average for large messages (~6% overall).
#include "fig_common.hpp"

using namespace ombx;

int main() {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.nranks = 2;
  cfg.ppn = 1;
  cfg.opts.window_size = 64;

  // Cap the sweep at 1 MB: the bandwidth window keeps 64 messages in
  // flight, so larger payloads only replay the saturated plateau.
  const fig::SizeRange small{1, 8 * 1024, "small (1B-8KB)"};
  const fig::SizeRange large{16 * 1024, 1024 * 1024, "large (16KB-1MB)"};

  for (const auto& range : {small, large}) {
    cfg.mode = core::Mode::kNativeC;
    const auto c_rows = fig::sweep(cfg, range, bench_suite::run_bandwidth);
    cfg.mode = core::Mode::kPythonDirect;
    const auto py_rows = fig::sweep(cfg, range, bench_suite::run_bandwidth);

    fig::print_figure(
        std::string("Inter-node CPU bandwidth, frontera, ") + range.label,
        {{"OMB", c_rows}, {"OMB-Py", py_rows}}, "MB/s");
    const double gap = -fig::mean_gap(c_rows, py_rows);  // OMB minus OMB-Py
    if (range.min == small.min) {
      fig::report_vs_paper("bandwidth deficit, 512B-8KB band (paper ~1.05 "
                           "GB/s on its mid band)",
                           1050.0, gap, "MB/s");
    } else {
      fig::report_vs_paper("bandwidth deficit, large band", 331.0, gap,
                           "MB/s");
    }
    std::cout << "\n";
  }
  return 0;
}
