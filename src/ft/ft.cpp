#include "ft/ft.hpp"

#include <algorithm>

namespace ombx::ft {

namespace {

/// Rounds of a binomial tree over n participants (>= 1 round).
int tree_rounds(std::size_t n) {
  int rounds = 0;
  std::size_t reach = 1;
  const std::size_t target = std::max<std::size_t>(2, n);
  while (reach < target) {
    reach <<= 1;
    ++rounds;
  }
  return rounds;
}

}  // namespace

FailureState::FailureState(int nranks, FtConfig cfg)
    : cfg_(cfg), nranks_(nranks) {}

void FailureState::register_comm(int context,
                                 const std::vector<int>& members) {
  std::lock_guard<std::mutex> lk(m_);
  members_.try_emplace(context, members);
}

void FailureState::mark_dead(int world_rank, usec_t at_time_us) {
  std::lock_guard<std::mutex> lk(m_);
  dead_.try_emplace(world_rank, at_time_us);
  // A death can complete a recovery barrier: wake every waiter so one of
  // them re-evaluates the arrived-or-dead condition.
  for (auto& [key, barrier] : barriers_) barrier->cv.notify_all();
}

bool FailureState::is_dead(int world_rank) const {
  std::lock_guard<std::mutex> lk(m_);
  return dead_.count(world_rank) != 0;
}

std::vector<int> FailureState::dead_ranks() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<int> out;
  out.reserve(dead_.size());
  for (const auto& [rank, t] : dead_) out.push_back(rank);
  return out;  // std::map keeps it sorted
}

void FailureState::mark_exit(int context, int world_rank, usec_t at_time_us) {
  std::lock_guard<std::mutex> lk(m_);
  exited_.try_emplace({context, world_rank}, at_time_us);
}

bool FailureState::revoke(int context, int world_rank, usec_t at_time_us) {
  std::lock_guard<std::mutex> lk(m_);
  exited_.try_emplace({context, world_rank}, at_time_us);
  return revoked_.try_emplace(context, at_time_us).second;
}

bool FailureState::is_revoked(int context) const {
  std::lock_guard<std::mutex> lk(m_);
  return revoked_.count(context) != 0;
}

std::optional<FailureState::Interrupt> FailureState::wait_interrupt(
    int context, int src_comm_rank, int owner_world_rank) const {
  std::lock_guard<std::mutex> lk(m_);
  return wait_interrupt_locked(context, src_comm_rank, owner_world_rank);
}

std::optional<FailureState::Interrupt> FailureState::wait_interrupt_locked(
    int context, int src_comm_rank, int owner_world_rank) const {
  const auto mit = members_.find(context);
  if (mit == members_.end()) return std::nullopt;
  const std::vector<int>& members = mit->second;

  if (src_comm_rank >= 0) {
    if (static_cast<std::size_t>(src_comm_rank) >= members.size()) {
      return std::nullopt;
    }
    const int w = members[static_cast<std::size_t>(src_comm_rank)];
    // When both a death mark and an exit mark exist for the source, the
    // virtually *earliest* event wins (ties go to the death, for
    // attribution) — never whichever mark happened to be published first
    // in host time.
    const auto dit = dead_.find(w);
    const auto eit = exited_.find({context, w});
    const bool both = dit != dead_.end() && eit != exited_.end();
    if (dit != dead_.end() &&
        (eit == exited_.end() || dit->second <= eit->second)) {
      return Interrupt{true, w, dit->second, both};
    }
    if (eit != exited_.end()) {
      return Interrupt{false, -1, eit->second, both};
    }
    return std::nullopt;
  }

  // Any-source: interrupt only when *no* other member can ever send again
  // on this context — all dead (ProcFailed, naming the lowest dead rank)
  // or all dead-or-exited (Revoked).
  bool all_dead = true;
  bool all_gone = true;
  int lowest_dead = -1;
  usec_t latest = 0.0;
  for (const int w : members) {
    if (w == owner_world_rank) continue;
    if (const auto dit = dead_.find(w); dit != dead_.end()) {
      if (lowest_dead < 0) lowest_dead = w;
      latest = std::max(latest, dit->second);
      continue;
    }
    all_dead = false;
    if (const auto eit = exited_.find({context, w}); eit != exited_.end()) {
      latest = std::max(latest, eit->second);
      continue;
    }
    all_gone = false;
  }
  if (lowest_dead < 0 && all_dead) return std::nullopt;  // singleton comm
  if (all_dead) return Interrupt{true, lowest_dead, latest};
  // Revoked wake with deaths present: death and exit marks coexist.
  if (all_gone) return Interrupt{false, -1, latest, lowest_dead >= 0};
  return std::nullopt;
}

std::optional<FailureState::Interrupt> FailureState::enqueue_interrupt(
    int owner_world_rank) const {
  std::lock_guard<std::mutex> lk(m_);
  if (const auto dit = dead_.find(owner_world_rank); dit != dead_.end()) {
    return Interrupt{true, owner_world_rank, dit->second};
  }
  return std::nullopt;
}

std::optional<FailureState::Interrupt> FailureState::sender_interrupt(
    int context, int peer_world) const {
  std::lock_guard<std::mutex> lk(m_);
  const auto dit = dead_.find(peer_world);
  const auto eit = exited_.find({context, peer_world});
  const bool both = dit != dead_.end() && eit != exited_.end();
  if (dit != dead_.end() &&
      (eit == exited_.end() || dit->second <= eit->second)) {
    return Interrupt{true, peer_world, dit->second, both};
  }
  if (eit != exited_.end()) {
    return Interrupt{false, -1, eit->second, both};
  }
  return std::nullopt;
}

bool FailureState::try_complete(int context, BarrierKind kind, Barrier& b,
                                const std::function<int()>& alloc_context) {
  if (b.done) return true;
  const auto mit = members_.find(context);
  if (mit == members_.end()) return false;
  const std::vector<int>& members = mit->second;
  for (const int w : members) {
    if (b.arrived.count(w) == 0 && dead_.count(w) == 0) return false;
  }

  // Every member arrived or died: price the protocol.  Base time is the
  // latest participant entry, pushed past any dead member's detected
  // death; on top, a tree of rounds over the participants.
  usec_t base = 0.0;
  for (const auto& [w, clock] : b.arrived) base = std::max(base, clock);
  for (const int w : members) {
    if (const auto dit = dead_.find(w); dit != dead_.end()) {
      base = std::max(base, dit->second + cfg_.detect_timeout_us);
    }
  }
  const int rounds = tree_rounds(b.arrived.size());
  const double hop =
      kind == BarrierKind::kShrink ? cfg_.shrink_hop_us : cfg_.agree_hop_us;
  const usec_t completion = base + rounds * hop;

  if (kind == BarrierKind::kShrink) {
    b.shrink_result.survivors.clear();
    for (const int w : members) {
      if (b.arrived.count(w) != 0) b.shrink_result.survivors.push_back(w);
    }
    b.shrink_result.context = alloc_context();
    b.shrink_result.completion_us = completion;
  } else {
    std::uint32_t bits = ~std::uint32_t{0};
    for (const auto& [w, contribution] : b.bits) bits &= contribution;
    bool died = false;
    for (const int w : members) died = died || dead_.count(w) != 0;
    b.agree_result = AgreeResult{bits, died, completion,
                                 b.arrived.begin()->first};
  }
  b.done = true;
  b.cv.notify_all();
  if (registry_ != nullptr) registry_->note_progress();
  return true;
}

ShrinkResult FailureState::shrink(int context, int world_rank, usec_t now,
                                  const std::function<int()>& alloc_context) {
  std::unique_lock<std::mutex> lk(m_);
  auto& slot = barriers_[{context, static_cast<int>(BarrierKind::kShrink)}];
  if (!slot) slot = std::make_unique<Barrier>();
  Barrier& b = *slot;
  while (b.done) {  // wait out a previous generation being consumed
    if (poison_) mpi::throw_aborted(*poison_);
    b.cv.wait(lk);
  }
  b.arrived.emplace(world_rank, now);
  if (registry_ != nullptr) registry_->note_progress();
  try_complete(context, BarrierKind::kShrink, b, alloc_context);
  while (!b.done) {
    if (poison_) mpi::throw_aborted(*poison_);
    b.cv.wait(lk);
    try_complete(context, BarrierKind::kShrink, b, alloc_context);
  }
  ShrinkResult out = b.shrink_result;
  if (++b.consumed == static_cast<int>(b.arrived.size())) {
    b.done = false;
    b.consumed = 0;
    b.arrived.clear();
    b.cv.notify_all();
  }
  return out;
}

AgreeResult FailureState::agree(int context, int world_rank, usec_t now,
                                std::uint32_t bits) {
  std::unique_lock<std::mutex> lk(m_);
  auto& slot = barriers_[{context, static_cast<int>(BarrierKind::kAgree)}];
  if (!slot) slot = std::make_unique<Barrier>();
  Barrier& b = *slot;
  while (b.done) {
    if (poison_) mpi::throw_aborted(*poison_);
    b.cv.wait(lk);
  }
  b.arrived.emplace(world_rank, now);
  b.bits.emplace(world_rank, bits);
  if (registry_ != nullptr) registry_->note_progress();
  const std::function<int()> no_alloc;
  try_complete(context, BarrierKind::kAgree, b, no_alloc);
  while (!b.done) {
    if (poison_) mpi::throw_aborted(*poison_);
    b.cv.wait(lk);
    try_complete(context, BarrierKind::kAgree, b, no_alloc);
  }
  AgreeResult out = b.agree_result;
  // new_failures is caller-local: a failure the caller already
  // acknowledged (failure_ack) is not news.
  if (out.new_failures) {
    const auto ack = acked_.find({context, world_rank});
    const auto mit = members_.find(context);
    bool unacked = false;
    if (mit != members_.end()) {
      for (const int w : mit->second) {
        if (dead_.count(w) != 0 &&
            (ack == acked_.end() || ack->second.count(w) == 0)) {
          unacked = true;
        }
      }
    }
    out.new_failures = unacked;
  }
  if (++b.consumed == static_cast<int>(b.arrived.size())) {
    b.done = false;
    b.consumed = 0;
    b.arrived.clear();
    b.bits.clear();
    b.cv.notify_all();
  }
  return out;
}

int FailureState::failure_ack(int context, int world_rank) {
  std::lock_guard<std::mutex> lk(m_);
  const auto mit = members_.find(context);
  if (mit == members_.end()) return 0;
  std::set<int>& acked = acked_[{context, world_rank}];
  int fresh = 0;
  for (const int w : mit->second) {
    if (dead_.count(w) != 0 && acked.insert(w).second) ++fresh;
  }
  return fresh;
}

std::vector<int> FailureState::get_failed(int context) const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<int> out;
  const auto mit = members_.find(context);
  if (mit == members_.end()) return out;
  for (const int w : mit->second) {
    if (dead_.count(w) != 0) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FailureState::poison(std::shared_ptr<const fault::AbortInfo> info) {
  std::lock_guard<std::mutex> lk(m_);
  if (!poison_) poison_ = std::move(info);
  for (auto& [key, barrier] : barriers_) barrier->cv.notify_all();
}

void FailureState::reset() {
  std::lock_guard<std::mutex> lk(m_);
  members_.clear();
  dead_.clear();
  revoked_.clear();
  exited_.clear();
  acked_.clear();
  barriers_.clear();
  poison_.reset();
}

}  // namespace ombx::ft
