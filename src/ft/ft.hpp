// ULFM-style fault tolerance for the simulated substrate (ombx::ft).
//
// PR 1's fault plan turns a KillSpec into a whole-world abort; this layer
// scopes the failure instead.  When `FtConfig::enabled` is set on the
// world, a killed rank is *dead-marked* rather than poisoning every
// mailbox, and operations involving it raise a rank-attributed
// ProcFailedError at the caller — the MPI_ERR_PROC_FAILED contract.  On
// top of the death/exit marks sit the ULFM recovery verbs exposed on
// mpi::Comm: revoke() (RevokedError at in-flight waits on that
// communicator), shrink() (deterministic survivor renumbering onto a
// fresh context), agree() (fault-tolerant bitmask agreement that
// tolerates failures during the agreement) and failure_ack()/get_failed().
//
// Determinism contract (docs/fault-model.md "ULFM semantics"): failure
// state may influence execution only through
//   (a) wake rules on *blocked* waits keyed on death/exit marks — and a
//       queued matching message always wins over an interruption, which is
//       well-defined because a rank's sends happen-before its own death or
//       exit mark (same thread, program order);
//   (b) the static fault plan (a send to a rank whose scheduled kill time
//       is already past raises ProcFailedError from the sender's own
//       clock); and
//   (c) the explicit engine-level barriers shrink()/agree(), which
//       complete exactly when every registered member has arrived or
//       died.
// Entry-time reads of cross-thread failure state are forbidden — they
// would make virtual time depend on host scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fault/abort.hpp"
#include "fault/watchdog.hpp"
#include "mpi/error.hpp"
#include "sched/sched.hpp"
#include "simtime/clock.hpp"

namespace ombx::ft {

using simtime::usec_t;

/// Opt-in ULFM mode plus the virtual-time cost model of the recovery
/// machinery.  All costs are deterministic functions of plan kill times
/// and participant clocks.
struct FtConfig {
  bool enabled = false;
  /// Virtual delay between a failure event and the ProcFailedError raised
  /// at a blocked or subsequently-posted operation (models the failure
  /// detector's timeout).
  double detect_timeout_us = 100.0;
  /// Virtual delay before a revocation is observed by an interrupted wait
  /// (models the revoke broadcast).
  double revoke_latency_us = 25.0;
  /// Per-tree-round cost of the agreement protocol.
  double agree_hop_us = 5.0;
  /// Per-tree-round cost of the shrink (survivor renumbering) protocol.
  double shrink_hop_us = 10.0;
};

/// Raised when an operation involves a process the fault plan killed.
/// `failed_rank()` is the dead world rank, `at_time_us()` its virtual
/// death time (the caller's clock is advanced past it by the detection
/// timeout before the throw).
class ProcFailedError : public mpi::Error {
 public:
  ProcFailedError(int failed_rank, usec_t at_time_us, int here, int context)
      : mpi::Error("peer process failed: world rank " +
                       std::to_string(failed_rank) + " died at t=" +
                       std::to_string(at_time_us) + "us",
                   here, context),
        failed_rank_(failed_rank),
        at_time_us_(at_time_us) {}

  [[nodiscard]] int failed_rank() const noexcept { return failed_rank_; }
  [[nodiscard]] usec_t at_time_us() const noexcept { return at_time_us_; }

 private:
  int failed_rank_;
  usec_t at_time_us_;
};

/// Raised at a blocked wait on a communicator a peer has revoked (or
/// abandoned by entering shrink()).  Carries the revocation's virtual
/// timestamp.
class RevokedError : public mpi::Error {
 public:
  RevokedError(usec_t at_time_us, int here, int context)
      : mpi::Error("communicator revoked", here, context),
        at_time_us_(at_time_us) {}

  [[nodiscard]] usec_t at_time_us() const noexcept { return at_time_us_; }

 private:
  usec_t at_time_us_;
};

/// Result of Comm::shrink(): the fresh context, the surviving world ranks
/// in old-rank order (the new comm rank is the index), and the barrier's
/// deterministic completion time.
struct ShrinkResult {
  int context = -1;
  std::vector<int> survivors;  ///< world ranks, old-comm-rank order
  usec_t completion_us = 0.0;
};

/// Result of Comm::agree(): the AND of every contributor's bitmask, plus
/// whether members died that the caller had not acknowledged.
struct AgreeResult {
  std::uint32_t bits = 0;
  bool new_failures = false;
  usec_t completion_us = 0.0;
  /// Lowest arrived world rank — a deterministic "count this agreement
  /// once" owner for the outcome counters.
  int coordinator = -1;
};

/// Shared failure/revocation state for one World.  One instance per
/// engine, mutated only under its mutex; mailboxes consult it (under
/// their own lock, lock order mailbox.m_ -> FailureState.m_) to decide
/// whether a blocked wait should be interrupted.
class FailureState {
 public:
  FailureState(int nranks, FtConfig cfg);

  [[nodiscard]] const FtConfig& config() const noexcept { return cfg_; }

  /// Record a communicator's membership (world ranks in comm-rank order).
  /// Idempotent: every rank constructing the Comm registers; first wins.
  void register_comm(int context, const std::vector<int>& members);

  /// Dead-mark `world_rank` (called by World::run when the rank's kill
  /// fires) and wake any recovery barrier so it can re-evaluate.  The
  /// caller (engine) is responsible for waking mailboxes and poisoning
  /// rendezvous cells afterwards — never under this mutex.
  void mark_dead(int world_rank, usec_t at_time_us);

  [[nodiscard]] bool is_dead(int world_rank) const;
  [[nodiscard]] std::vector<int> dead_ranks() const;  ///< sorted snapshot

  /// Exit-mark: `world_rank` will never send on `context` again (it
  /// called revoke() or entered shrink()).  Waits on it become revocable.
  void mark_exit(int context, int world_rank, usec_t at_time_us);

  /// Revoke `context` (first call wins and stamps the revocation time).
  /// Also exit-marks the caller.  Returns true for the initiating call.
  bool revoke(int context, int world_rank, usec_t at_time_us);
  [[nodiscard]] bool is_revoked(int context) const;

  /// Why a blocked wait should stop waiting, if at all.  `src_comm_rank`
  /// may be mpi::kAnySource (-1).  Called with the mailbox lock held.
  struct Interrupt {
    bool proc_failed = false;  ///< else: revoked
    int failed_rank = -1;      ///< dead world rank (proc_failed only)
    usec_t at_time_us = 0.0;   ///< death / revocation virtual time
    /// Death AND exit marks coexisted when the wake fired — the outcome is
    /// still deterministic (earliest virtual event wins) but the state was
    /// genuinely racy; the scheduling oracle logs these for attribution.
    bool tie = false;
  };
  [[nodiscard]] std::optional<Interrupt> wait_interrupt(
      int context, int src_comm_rank, int owner_world_rank) const;

  /// Interrupt for a sender capacity-blocked on a dead owner's mailbox.
  [[nodiscard]] std::optional<Interrupt> enqueue_interrupt(
      int owner_world_rank) const;

  /// Pending interrupt for a rendezvous sender parked on `peer_world` in
  /// `context`: the peer's death or exit mark, virtually earliest first
  /// (ties to the death, matching wait_interrupt).  Engine::post_send
  /// consults this right after registering a sync cell, closing the race
  /// with a mark whose wake sweep ran before the cell existed.
  [[nodiscard]] std::optional<Interrupt> sender_interrupt(
      int context, int peer_world) const;

  /// Fault-tolerant barriers.  Both block until every registered member
  /// of `context` has arrived or is dead-marked, then price a tree of
  /// ceil(log2(survivors)) rounds on top of the latest participant clock
  /// (and past any dead member's detected death).  `alloc_context` is
  /// invoked exactly once per shrink, by the completing thread.
  ShrinkResult shrink(int context, int world_rank, usec_t now,
                      const std::function<int()>& alloc_context);
  AgreeResult agree(int context, int world_rank, usec_t now,
                    std::uint32_t bits);

  /// ULFM failure_ack/get_failed: acknowledge the currently-known dead
  /// members of `context` for `world_rank` (returns how many were newly
  /// acknowledged); list the known dead members, sorted.  Local
  /// knowledge — deterministic when called after a synchronizing event
  /// (a caught ProcFailedError, agree(), shrink()).
  int failure_ack(int context, int world_rank);
  [[nodiscard]] std::vector<int> get_failed(int context) const;

  /// Abort integration: wake every barrier waiter with the abort info so
  /// the no-hang guarantee survives FT mode.
  void poison(std::shared_ptr<const fault::AbortInfo> info);

  /// Observability hook (set by the engine): barriers report progress so
  /// the deadlock watchdog never sees a recovering world as stuck.
  void set_wait_registry(fault::WaitRegistry* reg) noexcept {
    registry_ = reg;
  }

  void reset();

 private:
  struct Barrier {
    sched::WaitQueue cv;  ///< fiber-aware; cv semantics (see sched.hpp)
    std::map<int, usec_t> arrived;        ///< world rank -> entry clock
    std::map<int, std::uint32_t> bits;    ///< agree contributions
    bool done = false;
    int consumed = 0;
    ShrinkResult shrink_result;
    AgreeResult agree_result;
  };
  enum class BarrierKind { kShrink, kAgree };

  /// Completes `b` if every member of `context` arrived or died; the
  /// caller holds m_.  Returns true when the barrier is (now) done.
  bool try_complete(int context, BarrierKind kind, Barrier& b,
                    const std::function<int()>& alloc_context);
  [[nodiscard]] std::optional<Interrupt> wait_interrupt_locked(
      int context, int src_comm_rank, int owner_world_rank) const;

  FtConfig cfg_;
  int nranks_;
  mutable std::mutex m_;
  std::map<int, std::vector<int>> members_;         ///< context -> world ranks
  std::map<int, usec_t> dead_;                      ///< world rank -> t_kill
  std::map<int, usec_t> revoked_;                   ///< context -> t_revoke
  std::map<std::pair<int, int>, usec_t> exited_;    ///< (ctx, rank) -> t_exit
  std::map<std::pair<int, int>, std::set<int>> acked_;  ///< (ctx, rank)
  std::map<std::pair<int, int>, std::unique_ptr<Barrier>> barriers_;
  std::shared_ptr<const fault::AbortInfo> poison_;
  fault::WaitRegistry* registry_ = nullptr;
};

/// Throw the error form matching a wait interruption, attributed to the
/// interrupted world rank and context.
[[noreturn]] inline void throw_interrupt(const FailureState::Interrupt& it,
                                         int here, int context) {
  if (it.proc_failed) {
    throw ProcFailedError(it.failed_rank, it.at_time_us, here, context);
  }
  throw RevokedError(it.at_time_us, here, context);
}

}  // namespace ombx::ft
