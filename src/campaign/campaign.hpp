// Campaign engine: statistically sound parameter sweeps over the
// simulated substrate.
//
// A campaign spec (key = value lines, comma-separated axis values)
// declares a cartesian product of cluster preset x MPI library x np x ppn
// x software mode x benchmark x message range x fault plan.  Each cell of
// the product is an independent configuration, executed as repeated
// virtual-world runs (one World per repetition, nothing shared but the
// read-only registry), and summarized per message size with mean, median,
// unbiased variance and a Student-t 95% confidence interval on the mean
// (core::summarize).
//
// Experimental design follows Hunold & Carpen-Amarie, "MPI Benchmarking
// Revisited" (see PAPERS.md / DESIGN.md): single-shot numbers are
// reported only with dispersion, and repetitions are governed by a
// sequential stopping rule — after `reps-min` repetitions a cell keeps
// running only while its worst relative CI half-width exceeds `ci-rel`,
// up to the `reps-max` budget.  On the deterministic substrate a cell
// with no fault plan converges at reps-min with zero variance; fault
// plans derive per-repetition seeds (base seed + rep index) so dispersion
// reflects the seeded randomness, reproducibly.
//
// Reproducibility manifest: every output row carries the cell's base
// fault seed, its config hash (FNV-1a over the canonical cell key — all
// axes plus the measurement scalars iters/warmup/check/reps/ci-rel — and
// the binary's git sha) and the git sha itself.  Results are cached per
// config hash (`cache = <dir>`), so re-running a campaign re-executes
// only cells whose configuration — or binary — changed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/stats.hpp"
#include "obs/metrics.hpp"

namespace ombx::campaign {

/// Declarative campaign description (see docs/running-benchmarks.md for
/// the file format).  Every axis is a non-empty list; scalars apply to
/// all cells.
struct Spec {
  std::vector<std::string> benches{{"latency"}};
  std::vector<std::string> clusters{{"frontera"}};
  std::vector<std::string> tunings{{"mvapich2"}};
  std::vector<std::string> modes{{"omb-py"}};
  std::vector<int> nps{{2}};
  std::vector<int> ppns{{1}};
  std::vector<double> drops{{0.0}};  ///< eager drop probability axis
  /// Checkpoint-interval axis (us of virtual time between coordinated
  /// checkpoints; 0 = checkpointing off).  Nonzero values only apply to
  /// blocking-collective benches (expand() rejects other categories).
  std::vector<double> ckpt_intervals{{0.0}};

  std::size_t min_size = 1;
  std::size_t max_size = 4096;
  int iterations = 10;
  int warmup = 2;

  int reps_min = 3;    ///< repetitions before the stopping rule applies
  int reps_max = 10;   ///< hard per-cell repetition budget
  double ci_rel = 0.05;  ///< stop once worst rel. CI half-width <= this

  std::uint64_t seed = 42;  ///< base fault seed; rep r uses seed + r
  int workers = 4;          ///< worker threads (cells run concurrently)
  bool strict_check = false;  ///< run every world with --check-strict
  std::string cache_dir;      ///< per-cell result cache; empty disables
  /// Rank execution backend for every cell's worlds ("auto", "threads",
  /// "fibers"; see sched/sched.hpp).  Deliberately NOT part of the cell
  /// cache identity: the two backends produce byte-identical results (the
  /// determinism contract), so a cached cell is valid under either.  In
  /// fiber mode all concurrent cells share the process-wide pool, so host
  /// threads stay bounded by the pool size instead of workers x np.
  std::string sched = "auto";
};

/// Parse a spec from `key = value` lines ('#' comments, blank lines ok).
/// Throws std::invalid_argument naming the offending line.
[[nodiscard]] Spec parse_spec(std::istream& in);
[[nodiscard]] Spec load_spec(const std::string& path);

/// One fully determined configuration (a cell of the cartesian product).
struct Cell {
  std::string bench;
  std::string cluster;
  std::string tuning;
  std::string mode;
  int np = 2;
  int ppn = 1;
  double drop = 0.0;
  double ckpt_interval = 0.0;  ///< us between checkpoints; 0 = off
  std::size_t min_size = 1;
  std::size_t max_size = 4096;
  std::uint64_t base_seed = 0;
  // Measurement scalars copied from the spec.  They shape the measured
  // numbers (iterations/warmup/strict feed every world; the repetition
  // controls govern how many reps are aggregated), so they are part of
  // the cache identity: editing any of them must read as a cache miss.
  int iterations = 10;
  int warmup = 2;
  bool strict_check = false;
  int reps_min = 3;
  int reps_max = 10;
  double ci_rel = 0.05;
  std::uint64_t config_hash = 0;  ///< FNV-1a(key() + git sha)

  /// Canonical key — the hash input and the cache identity.  Covers every
  /// field above that can change the aggregated result.
  [[nodiscard]] std::string key() const;
};

/// Expand the spec into cells, in deterministic axis order (bench
/// outermost, ckpt-interval innermost).  Throws on unknown bench/cluster/
/// tuning/mode names — and on a nonzero ckpt-interval combined with a
/// non-blocking-collective bench — so a bad spec fails before any world
/// is built.
[[nodiscard]] std::vector<Cell> expand(const Spec& spec);

/// Aggregated result of one cell: per-size repetition summaries.
struct CellResult {
  Cell cell;
  bool from_cache = false;
  int reps = 0;           ///< successful repetitions aggregated
  int reps_failed = 0;    ///< repetitions that errored (excluded)
  struct SizeRow {
    std::size_t bytes = 0;
    core::Summary summary;  ///< over per-rep cross-rank averages
  };
  std::vector<SizeRow> rows;
};

/// Whole-campaign outcome: results in expansion order plus the campaign
/// observability counters (obs::CampaignCounters snapshot).
struct Outcome {
  std::vector<CellResult> results;
  obs::CampaignCounters::Snapshot counters;
  std::string git_sha;
};

/// Execute the campaign across spec.workers threads (>= 1; one cell per
/// worker at a time, repetitions sequential within a cell so the stopping
/// rule is deterministic).  Never throws for per-cell failures — a cell
/// whose every repetition fails yields a NaN row with reps == 0.
[[nodiscard]] Outcome run(const Spec& spec);

/// Render the aggregated results as the campaign table (one row per cell
/// x size, manifest columns included).  Byte-identical across repeated
/// runs of the same spec and binary.
[[nodiscard]] core::Table to_table(const Outcome& out);

/// Render the campaign counters (cells run/cached, reps executed/saved).
[[nodiscard]] core::Table counters_table(
    const obs::CampaignCounters::Snapshot& snap);

/// The git sha baked into this binary at configure time ("unknown" when
/// the build tree had no git).
[[nodiscard]] std::string git_sha();

}  // namespace ombx::campaign
