#include "campaign/campaign.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "bench_suite/cli.hpp"
#include "core/options.hpp"
#include "core/registry.hpp"
#include "sched/sched.hpp"

#ifndef OMBX_GIT_SHA
#define OMBX_GIT_SHA "unknown"
#endif

namespace ombx::campaign {

namespace {

// ---- spec parsing ---------------------------------------------------------

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream is(s);
  while (std::getline(is, cur, ',')) {
    cur = trim(cur);
    if (!cur.empty()) out.push_back(cur);
  }
  return out;
}

int to_int(const std::string& key, const std::string& s, int min) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("campaign spec: " + key +
                                " expects an integer, got: " + s);
  }
  if (pos != s.size() || v < min) {
    throw std::invalid_argument("campaign spec: " + key + " expects an integer >= " +
                                std::to_string(min) + ", got: " + s);
  }
  return v;
}

std::uint64_t to_u64(const std::string& key, const std::string& s) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("campaign spec: " + key +
                                " expects a non-negative integer, got: " + s);
  }
  if (pos != s.size()) {
    throw std::invalid_argument("campaign spec: " + key +
                                " expects a non-negative integer, got: " + s);
  }
  return static_cast<std::uint64_t>(v);
}

double to_prob(const std::string& key, const std::string& s) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("campaign spec: " + key +
                                " expects a number, got: " + s);
  }
  if (pos != s.size() || !std::isfinite(v) || v < 0.0 || v > 1.0) {
    throw std::invalid_argument("campaign spec: " + key +
                                " expects a finite value in [0, 1], got: " + s);
  }
  return v;
}

// Non-negative finite time in microseconds (the ckpt-interval axis; 0
// means "off" and is a legal axis value).
double to_time_us(const std::string& key, const std::string& s) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("campaign spec: " + key +
                                " expects a number, got: " + s);
  }
  if (pos != s.size() || !std::isfinite(v) || v < 0.0) {
    throw std::invalid_argument("campaign spec: " + key +
                                " expects a finite time >= 0 us, got: " + s);
  }
  return v;
}

// ---- manifest -------------------------------------------------------------

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hash_hex(std::uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

// Exact round-trip formatting for cached doubles (shortest repr that
// restores the identical bit pattern is overkill; %.17g is sufficient).
std::string dbl_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Fixed display formatting (the table contract: byte-identical across
// runs because the virtual-time inputs are deterministic).
std::string dbl_disp(double v) {
  if (std::isnan(v)) return "nan";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

// ---- per-cell execution ---------------------------------------------------

core::SuiteConfig cell_config(const Cell& cell, std::uint64_t rep,
                              sched::Mode sched_mode) {
  core::SuiteConfig cfg;
  cfg.cluster = bench_suite::cluster_by_name(cell.cluster);
  cfg.tuning = bench_suite::tuning_by_name(cell.tuning);
  cfg.mode = bench_suite::mode_by_name(cell.mode);
  cfg.nranks = cell.np;
  cfg.ppn = cell.ppn;
  cfg.opts.min_size = cell.min_size;
  cfg.opts.max_size = cell.max_size;
  cfg.opts.iterations = cell.iterations;
  cfg.opts.warmup = cell.warmup;
  cfg.fault.drop.probability = cell.drop;
  if (cell.ckpt_interval > 0.0) {
    cfg.ckpt.enabled = true;
    cfg.ckpt.interval_us = cell.ckpt_interval;
  }
  // The manifest seed is the base; each repetition derives its own stream
  // so dispersion across reps reflects the seeded fault randomness.
  cfg.fault.seed = cell.base_seed + rep;
  if (cell.strict_check) {
    cfg.check.enabled = true;
    cfg.check.strict = true;
  }
  // Not part of Cell::key(): both backends produce byte-identical
  // results, so the scheduler choice must not invalidate cached cells.
  cfg.sched = sched_mode;
  return cfg;
}

// Sample per size for one repetition: the cross-rank average of the
// benchmark's metric (latency us or bandwidth MB/s).
std::map<std::size_t, double> run_rep(const core::BenchmarkInfo& info,
                                      const core::SuiteConfig& cfg) {
  std::map<std::size_t, double> out;
  for (const core::Row& r : info.fn(cfg)) out[r.size] = r.stats.avg;
  return out;
}

CellResult aggregate(const Cell& cell,
                     const std::map<std::size_t, std::vector<double>>& samples,
                     int reps_ok, int reps_failed) {
  CellResult res;
  res.cell = cell;
  res.reps = reps_ok;
  res.reps_failed = reps_failed;
  for (const auto& [bytes, vals] : samples) {
    res.rows.push_back({bytes, core::summarize(vals)});
  }
  return res;
}

// ---- cache ----------------------------------------------------------------

std::filesystem::path cache_file(const Spec& spec, const Cell& cell) {
  return std::filesystem::path(spec.cache_dir) /
         (hash_hex(cell.config_hash) + ".campaign");
}

// Parse one double token with strtod: istream operator>> rejects the
// literal "nan" that dbl_exact emits for undefined variance/CI fields
// (any cell aggregating fewer than 2 reps), which would turn such cells
// into permanent cache misses.
bool read_dbl(std::istringstream& is, double& v) {
  std::string tok;
  if (!(is >> tok)) return false;
  char* end = nullptr;
  v = std::strtod(tok.c_str(), &end);
  return end != tok.c_str() && *end == '\0';
}

bool load_cached(const Spec& spec, const Cell& cell, CellResult& out) {
  std::ifstream in(cache_file(spec, cell));
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != "ombx-campaign-cell-v2") return false;
  out = CellResult{};
  out.cell = cell;
  out.from_cache = true;
  bool have_rows = false;
  std::size_t rows_expected = 0;
  while (std::getline(in, line)) {
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "reps") {
      is >> out.reps >> out.reps_failed;
      if (!is) return false;
    } else if (tag == "rows") {
      is >> rows_expected;
      if (!is) return false;
      have_rows = true;
    } else if (tag == "row") {
      CellResult::SizeRow r;
      is >> r.bytes >> r.summary.n;
      if (!is) return false;
      if (!read_dbl(is, r.summary.mean) || !read_dbl(is, r.summary.median) ||
          !read_dbl(is, r.summary.variance) ||
          !read_dbl(is, r.summary.ci_low) ||
          !read_dbl(is, r.summary.ci_high) || !read_dbl(is, r.summary.min) ||
          !read_dbl(is, r.summary.max)) {
        return false;
      }
      out.rows.push_back(r);
    }
  }
  // The row count seals the file: a truncated write is a well-formed
  // prefix, which must read as a miss, never as a partial result.
  return have_rows && out.rows.size() == rows_expected;
}

void store_cached(const Spec& spec, const Cell& cell, const CellResult& res) {
  std::error_code ec;
  std::filesystem::create_directories(spec.cache_dir, ec);
  const std::filesystem::path dest = cache_file(spec, cell);
  // Temp-file + atomic rename: a crash mid-write, or a second campaign
  // process sharing the cache dir, never exposes a truncated file.
  std::filesystem::path tmp = dest;
  tmp += ".tmp." + std::to_string(::getpid());
  {
    std::ofstream o(tmp);
    if (!o) return;  // cache is best-effort; the run's results still stand
    o << "ombx-campaign-cell-v2\n";
    o << "reps " << res.reps << ' ' << res.reps_failed << '\n';
    o << "rows " << res.rows.size() << '\n';
    for (const auto& r : res.rows) {
      o << "row " << r.bytes << ' ' << r.summary.n << ' '
        << dbl_exact(r.summary.mean) << ' ' << dbl_exact(r.summary.median)
        << ' ' << dbl_exact(r.summary.variance) << ' '
        << dbl_exact(r.summary.ci_low) << ' ' << dbl_exact(r.summary.ci_high)
        << ' ' << dbl_exact(r.summary.min) << ' ' << dbl_exact(r.summary.max)
        << '\n';
    }
    o.flush();
    if (!o) {
      o.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, dest, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

CellResult run_cell(const Cell& cell, obs::CampaignCounters& ctr,
                    sched::Mode sched_mode) {
  const core::BenchmarkInfo* info = core::Registry::instance().find(cell.bench);
  // expand() validated the name; a missing entry here would be a registry
  // bug, surfaced as an empty (NaN) result rather than a crash.
  std::map<std::size_t, std::vector<double>> samples;
  int reps_ok = 0;
  int reps_failed = 0;
  int rep = 0;
  for (; rep < cell.reps_max; ++rep) {
    if (info == nullptr) break;
    try {
      const auto one = run_rep(
          *info,
          cell_config(cell, static_cast<std::uint64_t>(rep), sched_mode));
      for (const auto& [bytes, v] : one) samples[bytes].push_back(v);
      ++reps_ok;
    } catch (const std::exception& e) {
      // Failed repetitions are aggregated (NaN cells), but the cause must
      // stay visible: one line per failure on stderr.
      std::fprintf(stderr, "campaign: %s np=%d ppn=%d rep=%d failed: %s\n",
                   cell.bench.c_str(), cell.np, cell.ppn, rep, e.what());
      ++reps_failed;
    }
    ctr.add(ctr.reps_run);
    if (rep + 1 < cell.reps_min || reps_ok < 2) continue;
    // Sequential stopping rule: stop once every size's relative CI
    // half-width is within target.  Deterministic because repetitions of
    // a cell run sequentially on one worker.
    double worst = 0.0;
    for (const auto& [bytes, vals] : samples) {
      const double rel = core::summarize(vals).ci_rel();
      if (std::isnan(rel)) {
        worst = rel;
        break;
      }
      worst = std::max(worst, rel);
    }
    if (!std::isnan(worst) && worst <= cell.ci_rel) {
      ++rep;  // count this repetition before leaving the loop
      break;
    }
  }
  ctr.add(ctr.reps_saved, static_cast<std::uint64_t>(cell.reps_max - rep));
  ctr.add(ctr.reps_failed, static_cast<std::uint64_t>(reps_failed));
  return aggregate(cell, samples, reps_ok, reps_failed);
}

}  // namespace

std::string git_sha() { return OMBX_GIT_SHA; }

std::string Cell::key() const {
  std::ostringstream os;
  os << "bench=" << bench << "|cluster=" << cluster << "|tuning=" << tuning
     << "|mode=" << mode << "|np=" << np << "|ppn=" << ppn
     << "|drop=" << dbl_exact(drop) << "|ckpt=" << dbl_exact(ckpt_interval)
     << "|min=" << min_size
     << "|max=" << max_size << "|seed=" << base_seed
     << "|iters=" << iterations << "|warmup=" << warmup
     << "|strict=" << (strict_check ? 1 : 0) << "|reps=" << reps_min << '-'
     << reps_max << "|ci=" << dbl_exact(ci_rel);
  return os.str();
}

Spec parse_spec(std::istream& in) {
  Spec spec;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("campaign spec line " +
                                  std::to_string(lineno) +
                                  ": expected key = value, got: " + line);
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    if (val.empty()) {
      throw std::invalid_argument("campaign spec: " + key + " has no value");
    }
    if (key == "bench") {
      spec.benches = split_list(val);
    } else if (key == "cluster") {
      spec.clusters = split_list(val);
    } else if (key == "mpi") {
      spec.tunings = split_list(val);
    } else if (key == "mode") {
      spec.modes = split_list(val);
    } else if (key == "np") {
      spec.nps.clear();
      for (const auto& s : split_list(val)) {
        spec.nps.push_back(to_int(key, s, 1));
      }
    } else if (key == "ppn") {
      spec.ppns.clear();
      for (const auto& s : split_list(val)) {
        spec.ppns.push_back(to_int(key, s, 1));
      }
    } else if (key == "drop") {
      spec.drops.clear();
      for (const auto& s : split_list(val)) {
        spec.drops.push_back(to_prob(key, s));
      }
    } else if (key == "ckpt-interval") {
      spec.ckpt_intervals.clear();
      for (const auto& s : split_list(val)) {
        spec.ckpt_intervals.push_back(to_time_us(key, s));
      }
    } else if (key == "min") {
      spec.min_size = static_cast<std::size_t>(to_u64(key, val));
    } else if (key == "max") {
      spec.max_size = static_cast<std::size_t>(to_u64(key, val));
    } else if (key == "iters") {
      spec.iterations = to_int(key, val, 1);
    } else if (key == "warmup") {
      spec.warmup = to_int(key, val, 0);
    } else if (key == "reps-min") {
      spec.reps_min = to_int(key, val, 1);
    } else if (key == "reps-max") {
      spec.reps_max = to_int(key, val, 1);
    } else if (key == "ci-rel") {
      spec.ci_rel = to_prob(key, val);
    } else if (key == "seed") {
      spec.seed = to_u64(key, val);
    } else if (key == "workers") {
      spec.workers = to_int(key, val, 1);
    } else if (key == "check") {
      if (val != "strict" && val != "off") {
        throw std::invalid_argument(
            "campaign spec: check expects strict or off, got: " + val);
      }
      spec.strict_check = (val == "strict");
    } else if (key == "cache") {
      spec.cache_dir = val;
    } else if (key == "sched") {
      (void)sched::mode_by_name(val);  // validate; throws on bad names
      spec.sched = val;
    } else {
      throw std::invalid_argument("campaign spec: unknown key: " + key);
    }
  }
  if (spec.benches.empty() || spec.clusters.empty() || spec.tunings.empty() ||
      spec.modes.empty() || spec.nps.empty() || spec.ppns.empty() ||
      spec.drops.empty() || spec.ckpt_intervals.empty()) {
    throw std::invalid_argument("campaign spec: every axis needs a value");
  }
  if (spec.reps_max < spec.reps_min) {
    throw std::invalid_argument("campaign spec: reps-max < reps-min");
  }
  if (spec.min_size == 0 || spec.max_size < spec.min_size) {
    throw std::invalid_argument("campaign spec: need 0 < min <= max");
  }
  return spec;
}

Spec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("campaign spec not readable: " + path);
  }
  return parse_spec(in);
}

std::vector<Cell> expand(const Spec& spec) {
  core::register_suite();
  // Fail fast on any unknown axis value before a single world is built.
  const bool ckpt_axis_live = std::any_of(
      spec.ckpt_intervals.begin(), spec.ckpt_intervals.end(),
      [](double v) { return v > 0.0; });
  for (const auto& b : spec.benches) {
    const core::BenchmarkInfo* info = core::Registry::instance().find(b);
    if (info == nullptr) {
      throw std::invalid_argument("campaign spec: unknown benchmark: " + b);
    }
    // Only the blocking collectives thread the coordinated checkpoint
    // trigger through their iteration loop; a live ckpt axis on any other
    // category would silently measure nothing.
    if (ckpt_axis_live &&
        info->category != core::Category::kBlockingCollective) {
      throw std::invalid_argument(
          "campaign spec: ckpt-interval > 0 requires blocking-collective "
          "benches; '" + b + "' is not one");
    }
  }
  for (const auto& c : spec.clusters) (void)bench_suite::cluster_by_name(c);
  for (const auto& t : spec.tunings) (void)bench_suite::tuning_by_name(t);
  for (const auto& m : spec.modes) (void)bench_suite::mode_by_name(m);

  std::vector<Cell> cells;
  for (const auto& b : spec.benches) {
    for (const auto& c : spec.clusters) {
      for (const auto& t : spec.tunings) {
        for (const auto& m : spec.modes) {
          for (const int np : spec.nps) {
            for (const int ppn : spec.ppns) {
              for (const double drop : spec.drops) {
                for (const double ckpt : spec.ckpt_intervals) {
                  Cell cell;
                  cell.bench = b;
                  cell.cluster = c;
                  cell.tuning = t;
                  cell.mode = m;
                  cell.np = np;
                  cell.ppn = ppn;
                  cell.drop = drop;
                  cell.ckpt_interval = ckpt;
                  cell.min_size = spec.min_size;
                  cell.max_size = spec.max_size;
                  cell.base_seed = spec.seed;
                  cell.iterations = spec.iterations;
                  cell.warmup = spec.warmup;
                  cell.strict_check = spec.strict_check;
                  cell.reps_min = spec.reps_min;
                  cell.reps_max = spec.reps_max;
                  cell.ci_rel = spec.ci_rel;
                  // Binding the binary's sha into the hash means a code
                  // change invalidates every cached cell — results may
                  // legitimately differ across code versions.
                  cell.config_hash =
                      fnv1a64(cell.key() + "|sha=" + git_sha());
                  cells.push_back(std::move(cell));
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

Outcome run(const Spec& spec) {
  const std::vector<Cell> cells = expand(spec);
  Outcome out;
  out.git_sha = git_sha();
  out.results.resize(cells.size());

  obs::CampaignCounters ctr;
  ctr.add(ctr.cells_total, cells.size());

  const sched::Mode sched_mode = sched::mode_by_name(spec.sched);

  // One atomic cursor; each worker claims the next unprocessed cell and
  // writes its private results slot, so no locking is needed and the
  // output order is the expansion order regardless of scheduling.
  std::atomic<std::size_t> cursor{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) return;
      CellResult res;
      if (!spec.cache_dir.empty() && load_cached(spec, cells[i], res)) {
        ctr.add(ctr.cells_cached);
      } else {
        res = run_cell(cells[i], ctr, sched_mode);
        ctr.add(ctr.cells_run);
        if (!spec.cache_dir.empty()) store_cached(spec, cells[i], res);
      }
      ctr.add(ctr.rows_emitted, res.rows.size());
      out.results[i] = std::move(res);
    }
  };

  const int nworkers = std::max(1, std::min<int>(spec.workers,
                                                 static_cast<int>(cells.size())));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  out.counters = ctr.snapshot();
  return out;
}

core::Table to_table(const Outcome& out) {
  core::Table t("OMB-X Campaign",
                {"Bench", "Cluster", "MPI", "Mode", "NP", "PPN", "Drop",
                 "Ckpt", "Size", "Reps", "Mean", "Median", "Variance",
                 "CI95-Low", "CI95-High", "Min", "Max", "Seed", "Config",
                 "SHA"});
  for (const CellResult& res : out.results) {
    const Cell& c = res.cell;
    const auto manifest_seed = std::to_string(c.base_seed);
    const auto manifest_hash = hash_hex(c.config_hash);
    if (res.rows.empty()) {
      // Explicitly skipped (every repetition failed or the cell produced
      // no rows): a visible nan row, never a fake zero.
      t.add_row({c.bench, c.cluster, c.tuning, c.mode, std::to_string(c.np),
                 std::to_string(c.ppn), dbl_disp(c.drop),
                 dbl_disp(c.ckpt_interval), "-", "0", "nan", "nan", "nan",
                 "nan", "nan", "nan", "nan", manifest_seed, manifest_hash,
                 out.git_sha});
      continue;
    }
    for (const auto& r : res.rows) {
      const core::Summary& s = r.summary;
      t.add_row({c.bench, c.cluster, c.tuning, c.mode, std::to_string(c.np),
                 std::to_string(c.ppn), dbl_disp(c.drop),
                 dbl_disp(c.ckpt_interval), std::to_string(r.bytes),
                 std::to_string(res.reps),
                 dbl_disp(s.mean), dbl_disp(s.median), dbl_disp(s.variance),
                 dbl_disp(s.ci_low), dbl_disp(s.ci_high), dbl_disp(s.min),
                 dbl_disp(s.max), manifest_seed, manifest_hash,
                 out.git_sha});
    }
  }
  return t;
}

core::Table counters_table(const obs::CampaignCounters::Snapshot& snap) {
  core::Table t("OMB-X Campaign Counters", {"Counter", "Value"});
  const auto row = [&](const char* name, std::uint64_t v) {
    t.add_row({name, std::to_string(v)});
  };
  row("cells_total", snap.cells_total);
  row("cells_run", snap.cells_run);
  row("cells_cached", snap.cells_cached);
  row("reps_run", snap.reps_run);
  row("reps_saved", snap.reps_saved);
  row("reps_failed", snap.reps_failed);
  row("rows_emitted", snap.rows_emitted);
  return t;
}

}  // namespace ombx::campaign
