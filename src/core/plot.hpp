// ASCII line plots for the figure benches: log-x (message size), linear or
// log y, multiple series distinguished by glyphs — so `build/bench/fig*`
// binaries render the paper's figures directly in the terminal.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ombx::core {

struct PlotSeries {
  std::string label;
  char glyph = '*';
  /// (x, y) points; x is typically the message size in bytes.
  std::vector<std::pair<double, double>> points;
};

class AsciiPlot {
 public:
  AsciiPlot(std::string title, std::string y_label, int width = 72,
            int height = 18);

  void add(PlotSeries series);

  /// Log-scale the x axis (message sizes) — default on.
  void log_x(bool on) noexcept { log_x_ = on; }
  /// Log-scale the y axis (latency spanning decades).
  void log_y(bool on) noexcept { log_y_ = on; }

  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::string y_label_;
  int width_;
  int height_;
  bool log_x_ = true;
  bool log_y_ = false;
  std::vector<PlotSeries> series_;
};

}  // namespace ombx::core
