// Benchmark registry: every test OMB-X supports, addressable by name
// (latency, bw, bibw, multi_lat, allgather, ..., alltoallv).  Mirrors the
// paper's Table II and powers the omb_run example CLI.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/stats.hpp"

namespace ombx::core {

enum class Category {
  kPointToPoint,
  kBlockingCollective,
  kVectorCollective,
  kOneSided,  ///< OMB-X extension beyond the paper's v1 scope
};

[[nodiscard]] std::string to_string(Category c);

/// One sweep row: message size plus the metric statistics across ranks.
struct Row {
  std::size_t size = 0;
  Stats stats;  ///< latency in us, or bandwidth in MB/s for the bw tests
};

using BenchFn = std::function<std::vector<Row>(const SuiteConfig&)>;

struct BenchmarkInfo {
  std::string name;
  Category category = Category::kPointToPoint;
  std::string metric;  ///< "latency_us" or "bandwidth_mbps"
  std::string description;
  BenchFn fn;
};

class Registry {
 public:
  static Registry& instance();

  void add(BenchmarkInfo info);

  [[nodiscard]] const BenchmarkInfo* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::vector<const BenchmarkInfo*> by_category(
      Category c) const;
  [[nodiscard]] std::size_t count() const noexcept { return by_name_.size(); }

 private:
  std::map<std::string, BenchmarkInfo> by_name_;
};

/// Registers the full OMB-X suite into the registry (idempotent).
/// Implemented in bench_suite/suite.cpp.
void register_suite();

}  // namespace ombx::core
