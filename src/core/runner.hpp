// Glue between SuiteConfig and the substrate: world construction (with the
// right thread level per mode), per-node simulated GPUs, and the buffer +
// PyComm environment each rank program needs.
#pragma once

#include <memory>
#include <vector>

#include "core/options.hpp"
#include "gpu/device.hpp"
#include "mpi/world.hpp"
#include "pylayer/pycomm.hpp"

namespace ombx::core {

/// Build a WorldConfig for a benchmark run.  mpi4py initializes MPI with
/// THREAD_MULTIPLE (OMB's C binaries use THREAD_SINGLE), which is the
/// paper's explanation for the full-subscription Allreduce degradation.
/// Carries the suite's fault-injection config into the world.
[[nodiscard]] mpi::WorldConfig make_world_config(const SuiteConfig& cfg);

/// Export the run's observability artifacts as configured in `cfg`:
/// append the metrics counter table (long-form CSV, header written once
/// per file) under `label`, write the Chrome trace JSON (last run wins
/// when several benchmarks share the path), and — when checking is on —
/// summarize any violations on stderr and append them to the check
/// report CSV.  A no-op for outputs whose path is empty or whose
/// subsystem is disabled on the world; never writes to stdout, so
/// benchmark output stays byte-identical.
void export_observability(mpi::World& world, const SuiteConfig& cfg,
                          const std::string& label);

/// Retry policy for running a program under transient faults: each failed
/// repetition (AbortedError / DeadlockError / RankKilledError / Error from
/// the substrate) is retried after an exponentially growing host-side
/// backoff, up to `max_attempts` total attempts.
struct RetryPolicy {
  int max_attempts = 3;
  double backoff_ms = 0.0;          ///< host sleep before the 2nd attempt
  double backoff_multiplier = 2.0;  ///< growth per subsequent attempt
};

/// Result of run_with_retry: how many attempts ran, whether one
/// succeeded, and the last failure's what() when none did.
struct RunOutcome {
  int attempts = 0;
  bool succeeded = false;
  std::string last_error;
};

/// Execute `rank_main` on `world` with per-repetition retry-with-backoff.
/// Clocks reset between attempts (World::run semantics), so a successful
/// retry yields exactly the virtual times a clean run would.  Bumps the
/// world's fault-plan `retries` counter per retry.  Throws nothing: the
/// outcome reports failure after the final attempt instead, leaving the
/// caller free to degrade gracefully (skip the repetition, keep the run).
[[nodiscard]] RunOutcome run_with_retry(
    mpi::World& world, const std::function<void(mpi::Comm&)>& rank_main,
    const RetryPolicy& policy = {});

/// One simulated GPU per node (the RI2 GPU partition layout).  Ranks map
/// to their node's device.  Empty when the cluster has no GPUs.
class DevicePool {
 public:
  explicit DevicePool(const SuiteConfig& cfg);

  /// Device for a world rank; nullptr on CPU-only clusters.
  [[nodiscard]] gpu::Device* for_rank(int world_rank);

  [[nodiscard]] bool empty() const noexcept { return devices_.empty(); }

 private:
  net::RankMapper mapper_;
  std::vector<std::unique_ptr<gpu::Device>> devices_;
};

/// Per-rank benchmark environment: buffers of the configured kind plus a
/// PyComm in the configured mode.  Construct inside rank_main.
class RankEnv {
 public:
  RankEnv(mpi::Comm& comm, const SuiteConfig& cfg, DevicePool& pool);

  [[nodiscard]] pylayer::PyComm& py() noexcept { return py_; }
  [[nodiscard]] mpi::Comm& comm() noexcept { return *comm_; }
  [[nodiscard]] const SuiteConfig& cfg() const noexcept { return *cfg_; }

  /// Allocate a buffer of the configured kind.  Respects the payload mode
  /// (synthetic buffers at scale).
  [[nodiscard]] std::unique_ptr<buffers::Buffer> make(std::size_t bytes);

 private:
  mpi::Comm* comm_;
  const SuiteConfig* cfg_;
  gpu::Device* device_;
  pylayer::PyComm py_;
};

}  // namespace ombx::core
