#include "core/report.hpp"

#include <cstdio>
#include <iomanip>
#include <numeric>
#include <ostream>
#include <sstream>

namespace ombx::core {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::add_row(std::size_t size, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(format_size(size));
  for (double v : values) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    cells.push_back(os.str());
  }
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  os << "# " << title_ << "\n";
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  os << "# ";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << std::left << std::setw(static_cast<int>(widths[i]) + 4)
       << headers_[i];
  }
  os << "\n";
  for (const auto& row : rows_) {
    os << "  ";
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::size_t w = i < widths.size() ? widths[i] : row[i].size();
      os << std::left << std::setw(static_cast<int>(w) + 4) << row[i];
    }
    os << "\n";
  }
}

namespace {
// RFC 4180: a field containing a comma, quote, CR or LF must be quoted
// (not just commas — an unquoted newline splits the record).
void csv_field(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (const char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i > 0) os << ',';
    csv_field(os, headers_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      csv_field(os, row[i]);
    }
    os << '\n';
  }
}

namespace {
void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}
}  // namespace

void Table::write_json(std::ostream& os) const {
  os << "{\n  ";
  json_string(os, "title");
  os << ": ";
  json_string(os, title_);
  os << ",\n  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "\n    {" : ",\n    {");
    const auto& row = rows_[r];
    for (std::size_t i = 0; i < row.size() && i < headers_.size(); ++i) {
      if (i > 0) os << ", ";
      json_string(os, headers_[i]);
      os << ": ";
      json_string(os, row[i]);
    }
    os << '}';
  }
  os << "\n  ]\n}\n";
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_size(std::size_t bytes) {
  return std::to_string(bytes);
}

Table resilience_table(const fault::FaultPlan& plan) {
  const auto& c = plan.counters();
  Table t("OMB-X Resilience Summary", {"Event", "Count"});
  const auto row = [&](const char* name,
                       const std::atomic<std::uint64_t>& v) {
    t.add_row({name, std::to_string(v.load(std::memory_order_relaxed))});
  };
  row("messages examined", c.messages_examined);
  row("eager drops", c.drops);
  row("retransmits", c.retransmits);
  row("payload corruptions", c.corruptions);
  row("messages lost", c.messages_lost);
  row("degraded-window messages", c.degraded_messages);
  row("rank kills", c.kills);
  row("abort propagations", c.aborts);
  row("watchdog deadlock detections", c.watchdog_fires);
  row("runner retries", c.retries);
  row("failure detections", c.detections);
  row("comm revocations", c.revokes);
  row("comm shrinks", c.shrinks);
  row("ft agreements", c.agreements);
  return t;
}

Table ft_resilience_table(const FtReport& r) {
  Table t("OMB-X FT Recovery Summary", {"Metric", "Value"});
  std::string failed;
  for (const int w : r.failed) {
    if (!failed.empty()) failed += " ";
    failed += std::to_string(w);
  }
  const auto us = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  };
  t.add_row({"ranks (initial)", std::to_string(r.nranks)});
  t.add_row({"ranks (survivors)", std::to_string(r.survivors)});
  t.add_row({"failed world ranks", failed.empty() ? "-" : failed});
  t.add_row({"failure detection latency (us)", us(r.detect_latency_us)});
  t.add_row({"agreement cost (us)", us(r.agree_cost_us)});
  t.add_row({"shrink cost (us)", us(r.shrink_cost_us)});
  t.add_row({"healthy collective latency (us)", us(r.healthy_latency_us)});
  t.add_row({"post-shrink collective latency (us)",
             us(r.recovered_latency_us)});
  // Checkpoint/restart breakdown — gated so plain FT output is untouched
  // by the ckpt subsystem merely being compiled in (zero perturbation).
  if (r.ckpt_enabled) {
    t.add_row({"checkpoints taken", std::to_string(r.ckpt_count)});
    t.add_row({"checkpoint interval (us)", us(r.ckpt_interval_us)});
    t.add_row({"checkpoint cost (us)", us(r.ckpt_cost_us)});
    t.add_row({"restored generation", std::to_string(r.ckpt_generation)});
    t.add_row({"restore cost (us)", us(r.restore_cost_us)});
    t.add_row({"rolled-back iterations", std::to_string(r.rolled_back_iters)});
    t.add_row({"recompute cost (us)", us(r.recompute_cost_us)});
  }
  return t;
}

Table metrics_table(const obs::Metrics::Snapshot& snap) {
  Table t("OMB-X Substrate Metrics", {"Counter", "Rank", "Value"});
  for (std::size_t c = 0; c < snap.names.size(); ++c) {
    for (std::size_t r = 0; r < snap.values[c].size(); ++r) {
      t.add_row({snap.names[c], std::to_string(r),
                 std::to_string(snap.values[c][r])});
    }
  }
  return t;
}

Table pool_table(const mpi::PayloadPool::Stats& stats) {
  Table t("OMB-X Payload Pool", {"Event", "Count"});
  const auto row = [&](const char* name,
                       const std::atomic<std::uint64_t>& v) {
    t.add_row({name, std::to_string(v.load(std::memory_order_relaxed))});
  };
  row("inline grabs", stats.inline_grabs);
  row("freelist reuses", stats.reuses);
  row("heap allocations", stats.allocs);
  row("buffers recycled", stats.recycled);
  row("buffers dropped (bucket full)", stats.dropped);
  return t;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

}  // namespace ombx::core
