#include "core/stats.hpp"

#include <algorithm>

namespace ombx::core {

namespace {
mpi::ConstView dview(const double& d) {
  return mpi::ConstView{reinterpret_cast<const std::byte*>(&d),
                        sizeof(double), net::MemSpace::kHost};
}
mpi::MutView dview(double& d) {
  return mpi::MutView{reinterpret_cast<std::byte*>(&d), sizeof(double),
                      net::MemSpace::kHost};
}
}  // namespace

Stats StatsBoard::compute() const {
  Stats s;
  if (values_.empty()) return s;
  s.min = values_.front();
  s.max = values_.front();
  double sum = 0.0;
  for (const double v : values_) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.avg = sum / static_cast<double>(values_.size());
  return s;
}

Stats reduce_stats(mpi::Comm& c, double local, int root) {
  const double& loc = local;
  double sum = 0.0;
  double mn = 0.0;
  double mx = 0.0;
  mpi::reduce(c, dview(loc), dview(sum), mpi::Datatype::kDouble,
              mpi::Op::kSum, root);
  mpi::reduce(c, dview(loc), dview(mn), mpi::Datatype::kDouble,
              mpi::Op::kMin, root);
  mpi::reduce(c, dview(loc), dview(mx), mpi::Datatype::kDouble,
              mpi::Op::kMax, root);
  Stats s;
  if (c.rank() == root) {
    s.avg = sum / static_cast<double>(c.size());
    s.min = mn;
    s.max = mx;
  }
  return s;
}

}  // namespace ombx::core
