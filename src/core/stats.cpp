#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ombx::core {

namespace {
mpi::ConstView dview(const double& d) {
  return mpi::ConstView{reinterpret_cast<const std::byte*>(&d),
                        sizeof(double), net::MemSpace::kHost};
}
mpi::MutView dview(double& d) {
  return mpi::MutView{reinterpret_cast<std::byte*>(&d), sizeof(double),
                      net::MemSpace::kHost};
}
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

bool stats_valid(const Stats& s) noexcept {
  return std::isfinite(s.avg) && std::isfinite(s.min) && std::isfinite(s.max);
}

Stats StatsBoard::compute() const {
  if (ndeposited_ == 0) return Stats{kNaN, kNaN, kNaN};
  Stats s;
  s.min = values_.front();
  s.max = values_.front();
  double sum = 0.0;
  for (const double v : values_) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.avg = sum / static_cast<double>(values_.size());
  return s;
}

Stats reduce_stats(mpi::Comm& c, double local, int root) {
  const double& loc = local;
  double sum = 0.0;
  double mn = 0.0;
  double mx = 0.0;
  mpi::reduce(c, dview(loc), dview(sum), mpi::Datatype::kDouble,
              mpi::Op::kSum, root);
  mpi::reduce(c, dview(loc), dview(mn), mpi::Datatype::kDouble,
              mpi::Op::kMin, root);
  mpi::reduce(c, dview(loc), dview(mx), mpi::Datatype::kDouble,
              mpi::Op::kMax, root);
  if (c.rank() != root) return Stats{kNaN, kNaN, kNaN};
  Stats s;
  s.avg = sum / static_cast<double>(c.size());
  s.min = mn;
  s.max = mx;
  return s;
}

double Summary::ci_rel() const noexcept {
  const double half = ci_half();
  if (std::isnan(half)) return kNaN;
  if (mean == 0.0) {
    // Zero mean with dispersion: the relative width is unbounded — +inf
    // ("never converged"), not NaN ("undefined"), so the campaign
    // stopping rule sees an ordinary too-wide interval.
    return half == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return half / std::fabs(mean);
}

double t_critical_95(std::size_t dof) noexcept {
  // Two-sided alpha = 0.05.  Exact through dof 30; the classic table
  // brackets (40, 60, 120) above that; 1.960 is the normal asymptote.
  static constexpr double kTable[31] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return kNaN;
  if (dof <= 30) return kTable[dof];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.n = samples.size();
  if (s.n == 0) {
    s.mean = s.median = s.variance = s.ci_low = s.ci_high = kNaN;
    s.min = s.max = kNaN;
    return s;
  }
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  s.median = (s.n % 2 == 1)
                 ? samples[s.n / 2]
                 : (samples[s.n / 2 - 1] + samples[s.n / 2]) / 2.0;
  if (s.n < 2) {
    s.variance = s.ci_low = s.ci_high = kNaN;
    return s;
  }
  double ss = 0.0;
  for (const double v : samples) {
    const double d = v - s.mean;
    ss += d * d;
  }
  s.variance = ss / static_cast<double>(s.n - 1);
  const double sem = std::sqrt(s.variance / static_cast<double>(s.n));
  const double half = t_critical_95(s.n - 1) * sem;
  s.ci_low = s.mean - half;
  s.ci_high = s.mean + half;
  return s;
}

}  // namespace ombx::core
