// Cross-rank latency statistics, computed the way the paper describes:
// per-rank values are combined with MPI_Reduce (avg via SUM, plus MIN and
// MAX) at the root.  On top of that, `Summary`/`summarize` provide the
// repetition-level statistics (median, variance, 95% CI) that the
// campaign engine's experimental design needs — single-shot numbers are
// meaningless without them (Hunold & Carpen-Amarie, "MPI Benchmarking
// Revisited", see DESIGN.md).
#pragma once

#include <cstddef>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/comm.hpp"

namespace ombx::core {

struct Stats {
  double avg = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// True iff `s` carries real data.  Empty-input paths (a StatsBoard no
/// rank deposited into, a non-root rank after reduce_stats) report NaN —
/// never a fake 0.0 that renders as a legitimate row.
[[nodiscard]] bool stats_valid(const Stats& s) noexcept;

/// Combine one double per rank into avg/min/max at `root`.
/// Collective: every rank must call it.  Non-root ranks receive NaN
/// (explicitly "not computed here" — rendering it is a caller bug that
/// shows up as `nan`, not as a plausible zero).
/// Note: requires real payloads — in PayloadMode::kSynthetic no data rides
/// the simulated wire, so use StatsBoard instead.
[[nodiscard]] Stats reduce_stats(mpi::Comm& c, double local, int root = 0);

/// Host-side cross-rank statistics for simulation benches: every rank
/// deposits its value, then (after a barrier, which the engine's physical
/// synchronization makes a true rendezvous) any rank may compute.  Works
/// in synthetic payload mode, where reduce_stats cannot.
class StatsBoard {
 public:
  explicit StatsBoard(int nranks)
      : values_(static_cast<std::size_t>(nranks), 0.0),
        touched_(static_cast<std::size_t>(nranks), 0) {}

  void deposit(int rank, double v) {
    const auto i = static_cast<std::size_t>(rank);
    values_[i] = v;
    if (!touched_[i]) {
      touched_[i] = 1;
      ++ndeposited_;
    }
  }

  /// Ranks that have deposited at least once since construction.
  [[nodiscard]] int deposited() const noexcept { return ndeposited_; }

  /// Call only after a barrier following the deposits of interest.
  /// A board no rank ever deposited into yields NaN stats (see
  /// stats_valid) instead of silently averaging the zero-initialised
  /// slots into a fake 0.0 row.
  [[nodiscard]] Stats compute() const;

 private:
  std::vector<double> values_;
  std::vector<char> touched_;  ///< not vector<bool>: plain byte flags
  int ndeposited_ = 0;
};

/// Repetition-level summary over n samples of one configuration.
/// All fields are NaN when n == 0; variance and the CI are NaN when
/// n < 2 (a single sample has no dispersion estimate).
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double median = 0.0;
  double variance = 0.0;  ///< unbiased sample variance (n-1 denominator)
  double ci_low = 0.0;    ///< 95% Student-t confidence interval on the mean
  double ci_high = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// CI half-width; NaN when the CI is undefined.
  [[nodiscard]] double ci_half() const noexcept {
    return (ci_high - ci_low) / 2.0;
  }
  /// Relative CI half-width (the campaign stopping-rule metric);
  /// NaN when undefined, +inf when mean == 0 with nonzero dispersion.
  [[nodiscard]] double ci_rel() const noexcept;
};

/// Two-sided 95% Student-t critical value for `dof` degrees of freedom
/// (exact table through 30, bracketed at 40/60/120, 1.960 asymptote).
[[nodiscard]] double t_critical_95(std::size_t dof) noexcept;

/// Summarize samples: mean, median, unbiased variance, t-based 95% CI.
/// Takes the vector by value because the median requires a sort.
[[nodiscard]] Summary summarize(std::vector<double> samples);

}  // namespace ombx::core
