// Cross-rank latency statistics, computed the way the paper describes:
// per-rank values are combined with MPI_Reduce (avg via SUM, plus MIN and
// MAX) at the root.
#pragma once

#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/comm.hpp"

namespace ombx::core {

struct Stats {
  double avg = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Combine one double per rank into avg/min/max at `root`.
/// Collective: every rank must call it.  Non-root ranks receive zeros.
/// Note: requires real payloads — in PayloadMode::kSynthetic no data rides
/// the simulated wire, so use StatsBoard instead.
[[nodiscard]] Stats reduce_stats(mpi::Comm& c, double local, int root = 0);

/// Host-side cross-rank statistics for simulation benches: every rank
/// deposits its value, then (after a barrier, which the engine's physical
/// synchronization makes a true rendezvous) any rank may compute.  Works
/// in synthetic payload mode, where reduce_stats cannot.
class StatsBoard {
 public:
  explicit StatsBoard(int nranks)
      : values_(static_cast<std::size_t>(nranks), 0.0) {}

  void deposit(int rank, double v) {
    values_[static_cast<std::size_t>(rank)] = v;
  }

  /// Call only after a barrier following the deposits of interest.
  [[nodiscard]] Stats compute() const;

 private:
  std::vector<double> values_;
};

}  // namespace ombx::core
