#include "core/runner.hpp"

#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "mpi/error.hpp"
#include "sched/sched.hpp"

namespace ombx::core {

mpi::WorldConfig make_world_config(const SuiteConfig& cfg) {
  mpi::WorldConfig wc;
  wc.cluster = cfg.cluster;
  wc.tuning = cfg.tuning;
  wc.nranks = cfg.nranks;
  wc.ppn = cfg.ppn;
  wc.payload = cfg.payload;
  wc.thread_level = cfg.mode == Mode::kNativeC
                        ? net::ThreadLevel::kSingle
                        : net::ThreadLevel::kMultiple;
  wc.fault = cfg.fault;
  wc.ft = cfg.ft;
  wc.enable_metrics = cfg.obs.metrics_enabled();
  wc.enable_trace = wc.enable_trace || cfg.obs.trace_enabled();
  wc.check.enabled = cfg.check.enabled || cfg.check.strict ||
                     !cfg.check.report_csv.empty();
  wc.check.mode = cfg.check.strict ? check::Mode::kStrict
                                   : check::Mode::kReport;
  wc.oracle = cfg.oracle;
  wc.sched = cfg.sched;
  return wc;
}

void export_observability(mpi::World& world, const SuiteConfig& cfg,
                          const std::string& label) {
  const ObsOptions& opts = cfg.obs;
  if (opts.metrics_enabled()) {
    if (const ombx::obs::Metrics* m = world.engine().metrics()) {
      const ombx::obs::Metrics::Snapshot snap = m->snapshot();
      // Long form, appended per run so a figure binary sweeping many
      // configurations lands in one file; the header is written once.
      const bool fresh = [&] {
        std::ifstream probe(opts.metrics_csv);
        return !probe.good() ||
               probe.peek() == std::ifstream::traits_type::eof();
      }();
      std::ofstream os(opts.metrics_csv, std::ios::app);
      if (os) {
        if (fresh) os << "label,counter,rank,value\n";
        for (std::size_t c = 0; c < snap.names.size(); ++c) {
          for (std::size_t r = 0; r < snap.values[c].size(); ++r) {
            os << label << ',' << snap.names[c] << ',' << r << ','
               << snap.values[c][r] << '\n';
          }
        }
        // Fault-plan outcome totals ride the same CSV (rank -1 = global),
        // so one file carries both per-rank counters and injection totals.
        if (const fault::FaultPlan* plan = world.fault_plan()) {
          const auto& c = plan->counters();
          const auto plan_row = [&](const char* name,
                                    const std::atomic<std::uint64_t>& v) {
            os << label << ",fault_" << name << ",-1,"
               << v.load(std::memory_order_relaxed) << '\n';
          };
          plan_row("drops", c.drops);
          plan_row("retransmits", c.retransmits);
          plan_row("corruptions", c.corruptions);
          plan_row("messages_lost", c.messages_lost);
          plan_row("kills", c.kills);
          plan_row("retries", c.retries);
          plan_row("detections", c.detections);
          plan_row("revokes", c.revokes);
          plan_row("shrinks", c.shrinks);
          plan_row("agreements", c.agreements);
        }
      }
    }
  }
  if (opts.trace_enabled()) {
    if (const mpi::Tracer* t = world.engine().tracer()) {
      std::ofstream os(opts.trace_json);
      if (os) t->write_chrome_json(os);
    }
  }
  if (const check::Checker* chk = world.engine().checker()) {
    const auto vs = chk->violations();
    if (!vs.empty()) {
      // stderr only: stdout carries the benchmark tables and must stay
      // byte-identical with checking on or off.
      std::cerr << "[ombx::check] " << label << ": " << vs.size()
                << " violation(s)\n";
      for (const auto& v : vs) {
        std::cerr << "[ombx::check]   " << v.to_string() << '\n';
      }
    }
    if (!cfg.check.report_csv.empty()) {
      const bool fresh = [&] {
        std::ifstream probe(cfg.check.report_csv);
        return !probe.good() ||
               probe.peek() == std::ifstream::traits_type::eof();
      }();
      std::ofstream os(cfg.check.report_csv, std::ios::app);
      if (os) {
        if (fresh) os << "label,code,rank,context,op,detail\n";
        chk->write_report(os, label);
      }
    }
  }
}

RunOutcome run_with_retry(mpi::World& world,
                          const std::function<void(mpi::Comm&)>& rank_main,
                          const RetryPolicy& policy) {
  RunOutcome out;
  double backoff = policy.backoff_ms;
  for (int attempt = 0; attempt < std::max(1, policy.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      if (backoff > 0.0) {
        // Fiber-aware: under the fiber backend a plain sleep_for would
        // host-sleep a pool worker and starve concurrent worlds (e.g.
        // parallel campaign cells); backoff_sleep parks/yields instead.
        sched::backoff_sleep(backoff);
        backoff *= policy.backoff_multiplier;
      }
      if (fault::FaultPlan* plan = world.fault_plan()) {
        plan->counters().retries.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ++out.attempts;
    try {
      world.run(rank_main);
      out.succeeded = true;
      out.last_error.clear();
      return out;
    } catch (const std::exception& e) {
      out.last_error = e.what();
    }
  }
  return out;
}

DevicePool::DevicePool(const SuiteConfig& cfg)
    : mapper_(cfg.cluster.topo, cfg.ppn) {
  if (cfg.cluster.gpu.has_value()) {
    devices_.reserve(static_cast<std::size_t>(cfg.cluster.topo.nodes));
    for (int n = 0; n < cfg.cluster.topo.nodes; ++n) {
      devices_.push_back(
          std::make_unique<gpu::Device>(n, *cfg.cluster.gpu));
    }
  }
}

gpu::Device* DevicePool::for_rank(int world_rank) {
  if (devices_.empty()) return nullptr;
  const int node = mapper_.place(world_rank).node;
  return devices_[static_cast<std::size_t>(node)].get();
}

RankEnv::RankEnv(mpi::Comm& comm, const SuiteConfig& cfg, DevicePool& pool)
    : comm_(&comm),
      cfg_(&cfg),
      device_(pool.for_rank(comm.world_rank(comm.rank()))),
      py_(comm, pylayer::PyCosts::for_cluster(cfg.cluster.name),
          cfg.mode != Mode::kNativeC) {
  if (buffers::is_gpu(cfg.buffer)) {
    OMBX_REQUIRE(device_ != nullptr,
                 "GPU buffer kind on a cluster without GPUs");
  }
}

std::unique_ptr<buffers::Buffer> RankEnv::make(std::size_t bytes) {
  const bool synthetic = cfg_->payload == mpi::PayloadMode::kSynthetic;
  return buffers::make_buffer(cfg_->buffer, bytes, device_, synthetic);
}

}  // namespace ombx::core
