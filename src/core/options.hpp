// Benchmark options — the user-visible knobs OMB-Py documents:
// device, buffer type, message-size range, iteration/warm-up counts.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "buffers/buffer.hpp"
#include "ckpt/ckpt.hpp"
#include "fault/fault.hpp"
#include "ft/ft.hpp"
#include "mpi/engine.hpp"
#include "net/cluster.hpp"
#include "net/tuning.hpp"
#include "sched/sched.hpp"

namespace ombx::explore {
class ScheduleOracle;
}  // namespace ombx::explore

namespace ombx::core {

/// Which software stack issues the MPI calls.
enum class Mode {
  kNativeC,       ///< OMB baseline: C calls straight into MPI
  kPythonDirect,  ///< OMB-Py uppercase API (buffer protocol / CAI)
  kPythonPickle,  ///< OMB-Py lowercase API (pickle serialization)
};

[[nodiscard]] std::string to_string(Mode m);

/// Per-benchmark options (OMB flag equivalents).
struct Options {
  std::size_t min_size = 1;
  std::size_t max_size = 1 << 22;  // 4 MiB, OSU default for p2p

  /// Iteration counts.  The virtual-time engine is deterministic, so small
  /// counts already give exact numbers; OSU-scale defaults remain available
  /// for the real-transport paths.
  int iterations = 10;
  int warmup = 2;
  int iterations_large = 4;
  int warmup_large = 1;
  std::size_t large_threshold = 8192;  ///< switch to the *_large counts

  int window_size = 64;  ///< outstanding messages in the bandwidth tests
  int pairs = 1;         ///< communicating pairs in multi-latency

  bool validate = false;  ///< verify payload patterns after each size

  [[nodiscard]] int iters_for(std::size_t size) const noexcept {
    return size > large_threshold ? iterations_large : iterations;
  }
  [[nodiscard]] int warmup_for(std::size_t size) const noexcept {
    return size > large_threshold ? warmup_large : warmup;
  }

  /// Power-of-two sweep [min_size, max_size] (OSU convention; 0 excluded).
  [[nodiscard]] std::vector<std::size_t> sizes() const;
};

/// Observability exports (--metrics / --trace-json).  Off by default, and
/// counting/tracing never touches virtual clocks, so benchmark output is
/// byte-identical whether these are set or not.
struct ObsOptions {
  /// Append per-rank substrate counters (long-form CSV, one header per
  /// file) after each benchmark run; empty disables metrics entirely.
  std::string metrics_csv;
  /// Write the run's event trace as Chrome trace-event JSON (loadable in
  /// chrome://tracing / Perfetto); empty disables tracing.  When several
  /// benchmarks share the path the last run wins.
  std::string trace_json;

  [[nodiscard]] bool metrics_enabled() const noexcept {
    return !metrics_csv.empty();
  }
  [[nodiscard]] bool trace_enabled() const noexcept {
    return !trace_json.empty();
  }
};

/// Correctness checking (--check / --check-strict / --check-report).  The
/// same zero-perturbation contract as ObsOptions: a clean checked run
/// produces byte-identical benchmark output to an unchecked one.
struct CheckOptions {
  bool enabled = false;
  /// Escalate the first violation to a rank-attributed error (nonzero
  /// exit) instead of collecting a report.  Implies enabled.
  bool strict = false;
  /// Append the end-of-run violation report as long-form CSV
  /// "label,code,rank,context,op,detail"; empty keeps it on stderr only.
  std::string report_csv;
};

/// Everything a benchmark needs to run: machine, library, job geometry,
/// software mode, buffer type and options.
struct SuiteConfig {
  net::ClusterSpec cluster = net::ClusterSpec::frontera();
  net::MpiTuning tuning = net::MpiTuning::mvapich2();
  int nranks = 2;
  int ppn = 1;
  Mode mode = Mode::kPythonDirect;
  buffers::BufferKind buffer = buffers::BufferKind::kNumpy;
  mpi::PayloadMode payload = mpi::PayloadMode::kReal;
  Options opts;
  /// Seeded fault injection (drops, corruption, degraded links,
  /// stragglers, kills); the all-defaults config injects nothing.
  fault::FaultConfig fault;
  /// ULFM-style fault tolerance (--ft): a kill dead-marks the rank and
  /// the benchmark recovers via revoke/shrink/agree instead of aborting.
  ft::FtConfig ft;
  /// Coordinated checkpoint/restart (--ckpt-interval); layered on FT so
  /// recovery becomes revoke/agree/shrink/restore/recompute.  Disabled by
  /// default and fully absent from the run when disabled.
  ckpt::CkptConfig ckpt;
  /// Metrics / trace exports (off unless paths are set).
  ObsOptions obs;
  /// MPI-usage verification (off by default).
  CheckOptions check;
  /// Scheduling oracle for record/replay/exploration (--explore /
  /// --replay-schedule); null leaves the match paths untouched.
  std::shared_ptr<explore::ScheduleOracle> oracle;
  /// Rank execution backend (--sched auto|threads|fibers).  Results are
  /// byte-identical either way; see sched/sched.hpp.
  sched::Mode sched = sched::Mode::kAuto;
};

}  // namespace ombx::core
