#include "core/registry.hpp"

#include "mpi/error.hpp"

namespace ombx::core {

std::string to_string(Category c) {
  switch (c) {
    case Category::kPointToPoint: return "point-to-point";
    case Category::kBlockingCollective: return "blocking-collective";
    case Category::kVectorCollective: return "vector-collective";
    case Category::kOneSided: return "one-sided";
  }
  return "unknown";
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::add(BenchmarkInfo info) {
  OMBX_REQUIRE(!info.name.empty(), "benchmark must have a name");
  by_name_[info.name] = std::move(info);
}

const BenchmarkInfo* Registry::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [name, info] : by_name_) out.push_back(name);
  return out;
}

std::vector<const BenchmarkInfo*> Registry::by_category(Category c) const {
  std::vector<const BenchmarkInfo*> out;
  for (const auto& [name, info] : by_name_) {
    if (info.category == c) out.push_back(&info);
  }
  return out;
}

}  // namespace ombx::core
