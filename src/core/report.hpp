// OSU-style fixed-width report tables plus comparison helpers used by the
// paper-figure benches ("size, OMB, OMB-Py, overhead" rows).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "mpi/payload_pool.hpp"
#include "obs/metrics.hpp"

namespace ombx::core {

/// A simple fixed-width text table, printed in the OSU banner style:
///   # OMB-X Latency Test
///   # Size       Latency (us)
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void add_row(std::size_t size, const std::vector<double>& values,
               int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  void print(std::ostream& os) const;

  /// Machine-readable dump: a header row then one line per row, fields
  /// quoted per RFC 4180 (when they contain a comma, quote, CR or LF;
  /// embedded quotes doubled).
  void write_csv(std::ostream& os) const;

  /// Render to a string (handy in tests).
  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a byte count the way OSU prints sizes (plain integer).
[[nodiscard]] std::string format_size(std::size_t bytes);

/// Resilience section for fault-injected runs: injection totals from the
/// plan's counters (messages examined, drops/retransmits, corruptions,
/// degraded-window messages, kills, aborts, watchdog fires, runner
/// retries).  Counter order is fixed so same-seed runs produce
/// byte-identical tables.
[[nodiscard]] Table resilience_table(const fault::FaultPlan& plan);

/// Per-rank substrate counters in long form (counter, rank, value), rows
/// ordered by the snapshot's fixed counter order then by rank — every
/// counter is a program-order quantity, so same-seed runs produce
/// byte-identical tables (see obs/metrics.hpp).
[[nodiscard]] Table metrics_table(const obs::Metrics::Snapshot& snap);

/// Payload-pool diagnostics (global, host-timing-dependent: freelist hits
/// vs heap allocations vary run to run — intentionally kept out of
/// metrics_table's determinism contract).
[[nodiscard]] Table pool_table(const mpi::PayloadPool::Stats& stats);

/// Mean of a vector (0 for empty).
[[nodiscard]] double mean(const std::vector<double>& v);

}  // namespace ombx::core
