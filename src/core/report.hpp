// OSU-style fixed-width report tables plus comparison helpers used by the
// paper-figure benches ("size, OMB, OMB-Py, overhead" rows).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "mpi/payload_pool.hpp"
#include "obs/metrics.hpp"

namespace ombx::core {

/// A simple fixed-width text table, printed in the OSU banner style:
///   # OMB-X Latency Test
///   # Size       Latency (us)
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void add_row(std::size_t size, const std::vector<double>& values,
               int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  void print(std::ostream& os) const;

  /// Machine-readable dump: a header row then one line per row, fields
  /// quoted per RFC 4180 (when they contain a comma, quote, CR or LF;
  /// embedded quotes doubled).
  void write_csv(std::ostream& os) const;

  /// JSON dump: {"title": ..., "rows": [{header: cell, ...}, ...]}.
  /// Cells stay the strings the table renders (no numeric re-parsing), so
  /// CSV and JSON of the same table always agree field-for-field.
  void write_json(std::ostream& os) const;

  /// Render to a string (handy in tests).
  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a byte count the way OSU prints sizes (plain integer).
[[nodiscard]] std::string format_size(std::size_t bytes);

/// Resilience section for fault-injected runs: injection totals from the
/// plan's counters (messages examined, drops/retransmits, corruptions,
/// degraded-window messages, kills, aborts, watchdog fires, runner
/// retries).  Counter order is fixed so same-seed runs produce
/// byte-identical tables.
[[nodiscard]] Table resilience_table(const fault::FaultPlan& plan);

/// Outcome of one resilient-mode benchmark (bench_suite's
/// run_ft_collective): what failed, what the recovery protocols cost in
/// virtual time, and how the post-shrink collective compares with the
/// healthy baseline.  All quantities are deterministic for a fixed seed.
struct FtReport {
  int nranks = 0;     ///< initial communicator size
  int survivors = 0;  ///< size after recovery
  std::vector<int> failed;  ///< killed world ranks, sorted
  double detect_latency_us = 0.0;  ///< min over ranks: detection - death
  double agree_cost_us = 0.0;      ///< agreement completion - entry
  double shrink_cost_us = 0.0;     ///< shrink completion - entry
  double healthy_latency_us = 0.0;    ///< per-iteration, before the kill
  double recovered_latency_us = 0.0;  ///< per-iteration, on the survivors

  // Checkpoint/restart extension (--ckpt-interval; ckpt/ckpt.hpp).  The
  // rows below only appear when ckpt_enabled, so plain FT output stays
  // byte-identical with the ckpt subsystem compiled in but off.
  bool ckpt_enabled = false;
  int ckpt_count = 0;          ///< checkpoints taken before the failure
  int ckpt_generation = -1;    ///< generation the world rolled back to
  int rolled_back_iters = 0;   ///< iterations redone after restore
  double ckpt_interval_us = 0.0;  ///< resolved interval (daly included)
  double ckpt_cost_us = 0.0;      ///< mean per-checkpoint cost
  double restore_cost_us = 0.0;   ///< restore barrier + fetch, max rank
  double recompute_cost_us = 0.0; ///< re-running rolled-back iterations
};

/// Fixed-row table over an FtReport ("resilience_table extension" in the
/// docs); byte-identical across same-seed runs.
[[nodiscard]] Table ft_resilience_table(const FtReport& r);

/// Per-rank substrate counters in long form (counter, rank, value), rows
/// ordered by the snapshot's fixed counter order then by rank — every
/// counter is a program-order quantity, so same-seed runs produce
/// byte-identical tables (see obs/metrics.hpp).
[[nodiscard]] Table metrics_table(const obs::Metrics::Snapshot& snap);

/// Payload-pool diagnostics (global, host-timing-dependent: freelist hits
/// vs heap allocations vary run to run — intentionally kept out of
/// metrics_table's determinism contract).
[[nodiscard]] Table pool_table(const mpi::PayloadPool::Stats& stats);

/// Mean of a vector (0 for empty).
[[nodiscard]] double mean(const std::vector<double>& v);

}  // namespace ombx::core
