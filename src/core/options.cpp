#include "core/options.hpp"

namespace ombx::core {

std::string to_string(Mode m) {
  switch (m) {
    case Mode::kNativeC: return "omb-c";
    case Mode::kPythonDirect: return "omb-py";
    case Mode::kPythonPickle: return "omb-py-pickle";
  }
  return "unknown";
}

std::vector<std::size_t> Options::sizes() const {
  std::vector<std::size_t> out;
  for (std::size_t s = std::max<std::size_t>(1, min_size); s <= max_size;
       s *= 2) {
    out.push_back(s);
    if (s > max_size / 2) break;  // avoid overflow on huge max_size
  }
  return out;
}

}  // namespace ombx::core
