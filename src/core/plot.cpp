#include "core/plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

namespace ombx::core {

AsciiPlot::AsciiPlot(std::string title, std::string y_label, int width,
                     int height)
    : title_(std::move(title)),
      y_label_(std::move(y_label)),
      width_(std::max(16, width)),
      height_(std::max(4, height)) {}

void AsciiPlot::add(PlotSeries series) {
  series_.push_back(std::move(series));
}

void AsciiPlot::render(std::ostream& os) const {
  os << "# " << title_ << "\n";
  if (series_.empty()) {
    os << "  (no data)\n";
    return;
  }

  const auto xform = [&](double v, bool log_axis) {
    return log_axis ? std::log2(std::max(v, 1e-12)) : v;
  };

  double xmin = std::numeric_limits<double>::max();
  double xmax = std::numeric_limits<double>::lowest();
  double ymin = std::numeric_limits<double>::max();
  double ymax = std::numeric_limits<double>::lowest();
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      xmin = std::min(xmin, xform(x, log_x_));
      xmax = std::max(xmax, xform(x, log_x_));
      ymin = std::min(ymin, xform(y, log_y_));
      ymax = std::max(ymax, xform(y, log_y_));
    }
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(
      static_cast<std::size_t>(height_),
      std::string(static_cast<std::size_t>(width_), ' '));

  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      const double fx = (xform(x, log_x_) - xmin) / (xmax - xmin);
      const double fy = (xform(y, log_y_) - ymin) / (ymax - ymin);
      const int col = static_cast<int>(std::lround(fx * (width_ - 1)));
      const int row =
          height_ - 1 - static_cast<int>(std::lround(fy * (height_ - 1)));
      char& cell = grid[static_cast<std::size_t>(row)]
                       [static_cast<std::size_t>(col)];
      // Overlapping series show as '+' so collisions stay visible.
      cell = (cell == ' ' || cell == s.glyph) ? s.glyph : '+';
    }
  }

  const auto unform = [&](double v, bool log_axis) {
    return log_axis ? std::exp2(v) : v;
  };
  for (int r = 0; r < height_; ++r) {
    const double fy = 1.0 - static_cast<double>(r) / (height_ - 1);
    const double y = unform(ymin + fy * (ymax - ymin), log_y_);
    os << std::setw(11) << std::setprecision(4) << std::defaultfloat << y
       << " |" << grid[static_cast<std::size_t>(r)] << "\n";
  }
  os << std::string(12, ' ') << '+' << std::string(
        static_cast<std::size_t>(width_), '-') << "\n";
  os << std::string(12, ' ') << std::left << std::setw(width_ / 2)
     << unform(xmin, log_x_) << std::right
     << std::setw(width_ / 2) << unform(xmax, log_x_) << "\n";
  os << "  y: " << y_label_ << ";  x: message size (bytes"
     << (log_x_ ? ", log scale" : "") << ")\n";
  for (const auto& s : series_) {
    os << "  '" << s.glyph << "' " << s.label << "\n";
  }
}

std::string AsciiPlot::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace ombx::core
