// Violation records produced by the dynamic MPI-usage verifier
// (check/checker.hpp).  Each violation is attributed to a world rank and
// the operation that raised it, so a multi-rank misuse is diagnosable
// from the report alone — the property PARCOACH-style tools provide for
// real MPI programs.
#pragma once

#include <string>

namespace ombx::check {

/// Stable identifiers for everything the checker can detect.  The
/// kebab-case names (code_name) appear in reports, strict-mode error
/// messages and docs/correctness.md; tests and CI grep for them.
enum class Code {
  /// Ranks entered different collectives at the same epoch of a
  /// communicator (e.g. rank 0 called barrier while rank 1 called bcast).
  kCollectiveOrderMismatch,
  /// Same collective, incompatible signature: divergent root, byte count,
  /// datatype or reduction op.
  kCollectiveSignatureMismatch,
  /// A collective epoch never completed: some ranks entered, others never
  /// arrived (reported by the finalize audit).
  kCollectiveIncomplete,
  /// An isend/irecv Request was destroyed without wait()/test()
  /// completing it.
  kRequestLeak,
  /// A non-blocking collective (CollRequest) was posted but never waited
  /// — the misuse that otherwise strands peers inside the collective.
  kCollRequestLeak,
  /// A buffer range with a pending non-blocking operation was touched
  /// hazardously (read under a pending irecv, write under a pending
  /// isend).
  kBufferOverlap,
  /// Finalize audit: messages were still queued in a rank's mailbox at
  /// World teardown (sends that no receive ever matched).
  kUnmatchedSend,
  /// An RMA window was destroyed with an open epoch (operations issued
  /// but never fenced).
  kRmaEpochOpen,
  /// Internal transport invariant: a zero-copy rendezvous source buffer
  /// was reclaimed while a receiver still expected to read it, or pooled
  /// payload buffers were still held at teardown.
  kPayloadClaim,
};

[[nodiscard]] inline const char* code_name(Code c) noexcept {
  switch (c) {
    case Code::kCollectiveOrderMismatch: return "collective-order-mismatch";
    case Code::kCollectiveSignatureMismatch:
      return "collective-signature-mismatch";
    case Code::kCollectiveIncomplete: return "collective-incomplete";
    case Code::kRequestLeak: return "request-leak";
    case Code::kCollRequestLeak: return "coll-request-leak";
    case Code::kBufferOverlap: return "buffer-overlap";
    case Code::kUnmatchedSend: return "unmatched-send";
    case Code::kRmaEpochOpen: return "rma-epoch-open";
    case Code::kPayloadClaim: return "payload-claim";
  }
  return "unknown";
}

struct Violation {
  Code code{};
  int rank = -1;     ///< world rank the violation is attributed to
  int context = -1;  ///< communicator context id (-1 when not applicable)
  std::string op;    ///< the offending operation, e.g. "send 8B (in bcast)"
  std::string detail;

  [[nodiscard]] std::string to_string() const {
    std::string s = "[";
    s += code_name(code);
    s += "] rank ";
    s += std::to_string(rank);
    if (context >= 0) {
      s += " ctx ";
      s += std::to_string(context);
    }
    s += ": ";
    s += op;
    if (!detail.empty()) {
      s += ": ";
      s += detail;
    }
    return s;
  }
};

}  // namespace ombx::check
