#include "check/checker.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <tuple>

#include "mpi/error.hpp"

namespace ombx::check {

namespace {

[[noreturn]] void throw_violation(const Violation& v) {
  throw mpi::Error("check: " + v.to_string(), v.rank, v.context);
}

}  // namespace

Checker::Checker(int nranks, Mode mode) : mode_(mode) {
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_.push_back(std::make_unique<RankCheck>());
  }
}

Checker::RankCheck& Checker::rank(int world_rank) {
  return *ranks_[static_cast<std::size_t>(world_rank)];
}

const Checker::RankCheck& Checker::rank(int world_rank) const {
  return *ranks_[static_cast<std::size_t>(world_rank)];
}

// ---- Collective matching ---------------------------------------------------

std::vector<Violation> Checker::compare_epoch(int ctx, std::uint64_t epoch,
                                              const EpochState& st) {
  std::vector<Violation> bad;
  // The lowest comm rank is the deterministic reference; every present
  // rank is compared against it, so attribution never depends on which
  // host thread happened to arrive first.
  const CollRecord* ref = nullptr;
  for (const auto& r : st.recs) {
    if (r.present) {
      ref = &r;
      break;
    }
  }
  if (ref == nullptr) return bad;

  const std::string where =
      "epoch " + std::to_string(epoch) + " of context " + std::to_string(ctx);
  for (std::size_t cr = 0; cr < st.recs.size(); ++cr) {
    const CollRecord& r = st.recs[cr];
    if (!r.present || &r == ref) continue;
    if (std::strcmp(r.kind, ref->kind) != 0) {
      bad.push_back(Violation{
          Code::kCollectiveOrderMismatch, r.world, ctx, r.kind,
          "comm rank " + std::to_string(cr) + " called " + r.kind +
              " while comm rank 0 called " + ref->kind + " (" + where + ")"});
      continue;  // signatures of different collectives are incomparable
    }
    std::string diverged;
    const auto differs = [&](const char* field, long long mine,
                             long long refv) {
      if (mine < 0 || refv < 0 || mine == refv) return;
      if (!diverged.empty()) diverged += ", ";
      diverged += field;
      diverged += " ";
      diverged += std::to_string(mine);
      diverged += " vs ";
      diverged += std::to_string(refv);
    };
    differs("root", r.root, ref->root);
    differs("bytes", r.bytes, ref->bytes);
    differs("datatype", r.datatype, ref->datatype);
    differs("op", r.op, ref->op);
    if (!diverged.empty()) {
      bad.push_back(Violation{Code::kCollectiveSignatureMismatch, r.world,
                              ctx, r.kind,
                              "comm rank " + std::to_string(cr) +
                                  " diverges from comm rank 0: " + diverged +
                                  " (" + where + ")"});
    }
  }
  return bad;
}

void Checker::on_collective(int ctx, int comm_rank, int comm_size,
                            int world_rank, const CollSignature& sig) {
  std::vector<Violation> bad;
  {
    std::lock_guard<std::mutex> lk(coll_mutex_);
    const std::uint64_t epoch = next_epoch_[{ctx, world_rank}]++;
    EpochState& st = epochs_[{ctx, epoch}];
    if (st.recs.empty()) {
      st.expected = comm_size;
      st.recs.resize(static_cast<std::size_t>(comm_size));
    }
    if (comm_rank < 0 ||
        static_cast<std::size_t>(comm_rank) >= st.recs.size()) {
      return;  // inconsistent communicator views; nothing safe to record
    }
    CollRecord& rec = st.recs[static_cast<std::size_t>(comm_rank)];
    rec.present = true;
    rec.kind = sig.kind;
    rec.root = sig.root;
    rec.bytes = sig.bytes;
    rec.datatype = sig.datatype;
    rec.op = sig.op;
    rec.world = world_rank;
    if (++st.arrived >= st.expected) {
      bad = compare_epoch(ctx, epoch, st);
      epochs_.erase({ctx, epoch});
    }
  }
  for (auto& v : bad) collect(v);
  if (strict() && !bad.empty()) throw_violation(bad.front());
}

void Checker::excuse_context(int ctx) {
  std::lock_guard<std::mutex> lk(coll_mutex_);
  excused_.insert(ctx);
}

bool Checker::context_excused(int ctx) const {
  std::lock_guard<std::mutex> lk(coll_mutex_);
  return excused_.count(ctx) != 0;
}

void Checker::audit_epochs() {
  std::vector<Violation> bad;
  {
    std::lock_guard<std::mutex> lk(coll_mutex_);
    for (const auto& [key, st] : epochs_) {
      if (excused_.count(key.first) != 0) continue;
      const char* kind = "";
      int entered = 0;
      for (const auto& r : st.recs) {
        if (r.present) {
          kind = r.kind;
          ++entered;
        }
      }
      for (std::size_t cr = 0; cr < st.recs.size(); ++cr) {
        if (st.recs[cr].present) continue;
        bad.push_back(Violation{
            Code::kCollectiveIncomplete, /*rank=*/-1, key.first, kind,
            "comm rank " + std::to_string(cr) + " never entered " + kind +
                " (epoch " + std::to_string(key.second) + "; " +
                std::to_string(entered) + " of " +
                std::to_string(st.expected) + " ranks arrived)"});
      }
    }
    epochs_.clear();
  }
  for (auto& v : bad) collect(std::move(v));
}

// ---- Operation-scope attribution -------------------------------------------

void Checker::push_scope(int world_rank, const char* name) {
  rank(world_rank).scope.push_back(name);
}

void Checker::pop_scope(int world_rank) noexcept {
  auto& s = rank(world_rank).scope;
  if (!s.empty()) s.pop_back();
}

std::string Checker::describe(int world_rank,
                              const std::string& base) const {
  const auto& s = rank(world_rank).scope;
  if (s.empty()) return base;
  return base + " (in " + s.back() + ")";
}

// ---- Buffer lifetime -------------------------------------------------------

void Checker::on_touch(int world_rank, int ctx, const void* data,
                       std::size_t bytes, Access access, const char* what) {
  if (data == nullptr || bytes == 0) return;
  if (rank(world_rank).internal > 0) return;
  const auto* lo = static_cast<const std::byte*>(data);
  const auto* hi = lo + bytes;
  for (const Pin& p : rank(world_rank).pins) {
    if (lo >= p.hi || hi <= p.lo) continue;  // disjoint
    // Hazard matrix: read-under-pending-write and write-under-pending-read
    // are flagged; write-write (the OSU window idiom: many irecvs into one
    // buffer) and read-read are tolerated.
    const bool hazard =
        (access == Access::kRead && p.access == Access::kWrite) ||
        (access == Access::kWrite && p.access == Access::kRead);
    if (!hazard) continue;
    report(Violation{Code::kBufferOverlap, world_rank, ctx,
                     describe(world_rank, what),
                     "buffer range overlaps in-flight " + p.op});
    return;  // one report per touch is enough
  }
}

std::uint64_t Checker::pin(int world_rank, int ctx, const void* data,
                           std::size_t bytes, Access access,
                           const std::string& op) {
  if (data == nullptr || bytes == 0) return 0;
  if (rank(world_rank).internal > 0) return 0;
  // A new pending op is itself a "touch": pinning a read range under a
  // pending write (isend from a buffer an irecv may rewrite) or vice
  // versa is the hazard; overlapping same-direction pins are tolerated.
  on_touch(world_rank, ctx, data, bytes, access, op.c_str());
  RankCheck& rc = rank(world_rank);
  const std::uint64_t id = rc.next_pin++;
  const auto* lo = static_cast<const std::byte*>(data);
  rc.pins.push_back(Pin{id, lo, lo + bytes, access, op});
  return id;
}

void Checker::unpin(int world_rank, std::uint64_t id) noexcept {
  if (id == 0) return;
  auto& pins = rank(world_rank).pins;
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].id == id) {
      pins[i] = std::move(pins.back());
      pins.pop_back();
      return;
    }
  }
}

// ---- Violation sink --------------------------------------------------------

void Checker::collect(Violation v) noexcept {
  try {
    std::lock_guard<std::mutex> lk(viol_mutex_);
    violations_.push_back(std::move(v));
  } catch (...) {
    // Allocation failure while recording a diagnostic: drop it.
  }
}

void Checker::report(Violation v) {
  const bool escalate = strict();
  Violation copy = escalate ? v : Violation{};
  collect(std::move(v));
  if (escalate) throw_violation(copy);
}

void Checker::report_noexcept(Violation v) noexcept { collect(std::move(v)); }

// ---- Results ---------------------------------------------------------------

bool Checker::empty() const {
  std::lock_guard<std::mutex> lk(viol_mutex_);
  return violations_.empty();
}

std::vector<Violation> Checker::violations() const {
  std::vector<Violation> out;
  {
    std::lock_guard<std::mutex> lk(viol_mutex_);
    out = violations_;
  }
  // Collection order depends on host scheduling; the sorted report does
  // not (the violation *set* is a function of the program alone).
  std::sort(out.begin(), out.end(), [](const Violation& a,
                                       const Violation& b) {
    return std::tie(a.code, a.context, a.rank, a.op, a.detail) <
           std::tie(b.code, b.context, b.rank, b.op, b.detail);
  });
  return out;
}

void Checker::write_report(std::ostream& os,
                           const std::string& label) const {
  for (const Violation& v : violations()) {
    os << label << ',' << code_name(v.code) << ',' << v.rank << ','
       << v.context << ',' << v.op << ',' << v.detail << '\n';
  }
}

void Checker::reset() {
  for (auto& rc : ranks_) {
    rc->pins.clear();
    rc->scope.clear();
    rc->next_pin = 1;
    rc->internal = 0;
  }
  {
    std::lock_guard<std::mutex> lk(coll_mutex_);
    excused_.clear();
    epochs_.clear();
    next_epoch_.clear();
  }
  {
    std::lock_guard<std::mutex> lk(viol_mutex_);
    violations_.clear();
  }
  suppress_.store(false, std::memory_order_release);
}

// ---- OpTicket --------------------------------------------------------------

OpTicket::OpTicket(Checker& chk, int world_rank, int context,
                   std::uint64_t pin_id, std::string desc)
    : chk_(&chk),
      rank_(world_rank),
      ctx_(context),
      pin_(pin_id),
      desc_(std::move(desc)) {}

void OpTicket::complete() noexcept {
  if (completed_) return;
  completed_ = true;
  chk_->unpin(rank_, pin_);
}

OpTicket::~OpTicket() {
  if (completed_) return;
  chk_->unpin(rank_, pin_);
  // Requests destroyed while an exception unwinds the rank (or after an
  // abort poisoned the world) are casualties, not the root cause.
  if (std::uncaught_exceptions() > 0 || chk_->leaks_suppressed()) return;
  chk_->report_noexcept(Violation{
      Code::kRequestLeak, rank_, ctx_, desc_,
      "request destroyed without wait()/test() completing it"});
}

}  // namespace ombx::check
