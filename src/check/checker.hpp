// Dynamic verifier for the simulated MPI substrate (PARCOACH-style).
//
// The Checker is owned by the Engine and is null unless
// WorldConfig::check.enabled is set, so a disabled checker costs one
// pointer test per hook — the same zero-perturbation contract the tracer
// and metrics follow: virtual time is never touched, and benchmark output
// is byte-identical with checking on (and violation-free) or off.
//
// Four check families:
//
//   1. Collective matching — every collective entry point logs a
//      (communicator epoch, op kind, signature) record via CollSpan; when
//      all ranks of the communicator have entered an epoch, the records
//      are compared against the lowest comm rank's.  Divergent kinds are
//      order mismatches, divergent root/count/datatype/op are signature
//      mismatches.  Comparison happens only on epoch completion, so
//      attribution is deterministic regardless of host scheduling.
//
//   2. Request hygiene — Comm::isend/irecv attach an OpTicket to the
//      Request (shared across copies); destroying the last copy without
//      wait()/test() reports a request leak with the creation
//      description.  An abandoned CollRequest is diagnosed likewise (see
//      nbc.hpp), naming the collective and rank instead of leaving peers
//      to the watchdog.
//
//   3. Buffer lifetime — pending non-blocking operations pin their byte
//      ranges (isend pins as a read, irecv as a write).  A read of a
//      pinned-write range (e.g. send from a buffer a pending irecv may
//      rewrite) or a write to a pinned-read range (overwriting a buffer
//      a pending isend conceptually still reads) is a violation.
//      Write-write overlap is deliberately tolerated: OSU's bandwidth
//      benchmarks post a whole window of irecvs into one buffer, and
//      under OMB-X's FIFO matching the result is deterministic.
//
//   4. Finalize audit — on a clean World::run the engine reports
//      unreceived mailbox residue, collective epochs some ranks never
//      entered, and payload buffers still held by undelivered messages.
//      Win/Request/CollRequest destructors feed the same sink.
//
// Modes: kReport collects violations into a deterministic, sorted
// end-of-run report (exported next to the obs CSV); kStrict escalates
// the first violation raised on a rank thread to a rank-attributed
// mpi::Error, which rides the existing abort machinery so peers wake
// instead of hanging.  Destructor-raised violations never throw; strict
// runs surface them through World::run's end-of-run audit (or, for an
// abandoned CollRequest, an engine abort naming the collective).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/violation.hpp"

namespace ombx::check {

enum class Mode {
  kReport,  ///< collect violations; report after the run
  kStrict,  ///< first violation throws a rank-attributed mpi::Error
};

/// WorldConfig-level switch for the verifier.
struct Config {
  bool enabled = false;
  Mode mode = Mode::kReport;
};

/// What a collective entry point logs for cross-rank matching.  Fields
/// set to -1 are excluded from comparison (rootless collectives, the
/// non-uniform byte counts of v-collectives, reduction-free ops).
struct CollSignature {
  const char* kind = "";  ///< "barrier", "bcast", "allreduce", ...
  int root = -1;
  long long bytes = -1;
  int datatype = -1;
  int op = -1;
};

class Checker {
 public:
  Checker(int nranks, Mode mode);

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] bool strict() const noexcept { return mode_ == Mode::kStrict; }

  // ---- Collective matching -------------------------------------------------

  /// Log one collective entry for (comm context, calling rank).  When the
  /// call completes the communicator's current epoch, all records are
  /// compared; in strict mode a mismatch throws on the completing thread,
  /// attributed to the divergent rank.
  void on_collective(int ctx, int comm_rank, int comm_size, int world_rank,
                     const CollSignature& sig);

  // ---- Operation-scope attribution ----------------------------------------

  /// Push/pop the named operation (collective kind) on a rank's scope
  /// stack; violations raised inside carry "(in <scope>)".
  void push_scope(int world_rank, const char* name);
  void pop_scope(int world_rank) noexcept;

  // ---- Buffer lifetime -----------------------------------------------------

  enum class Access { kRead, kWrite };

  /// Check a blocking operation's buffer against this rank's pinned
  /// ranges (see class comment for the hazard matrix).
  void on_touch(int world_rank, int ctx, const void* data, std::size_t bytes,
                Access access, const char* what);

  /// Register a pending non-blocking operation's byte range (checking it
  /// for hazards first).  Returns a pin id for unpin(); 0 for empty or
  /// synthetic (null-data) buffers, which are never pinned.
  [[nodiscard]] std::uint64_t pin(int world_rank, int ctx, const void* data,
                                  std::size_t bytes, Access access,
                                  const std::string& op);
  void unpin(int world_rank, std::uint64_t id) noexcept;

  /// Substrate-internal bracket (see InternalOp): while a rank's depth is
  /// nonzero, on_touch is a no-op and pin returns 0.  RMA wire traffic
  /// stages operations through short-lived buffers the engine copies at
  /// post time; pinning those would leave dangling ranges that falsely
  /// collide with later heap reuse.
  void begin_internal(int world_rank) { ++rank(world_rank).internal; }
  void end_internal(int world_rank) noexcept {
    --rank(world_rank).internal;
  }
  [[nodiscard]] bool in_internal(int world_rank) const {
    return rank(world_rank).internal > 0;
  }

  // ---- Violation sink ------------------------------------------------------

  /// Record a violation; in strict mode additionally throw a
  /// rank-attributed mpi::Error for it.
  void report(Violation v);
  /// Record only — safe from destructors and audit paths.
  void report_noexcept(Violation v) noexcept;

  /// Engine::abort sets this so leak diagnostics raised while the world
  /// unwinds from a failure do not drown the root cause.
  void suppress_leaks() noexcept {
    suppress_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool leaks_suppressed() const noexcept {
    return suppress_.load(std::memory_order_acquire);
  }

  // ---- Finalize audit ------------------------------------------------------

  /// Report collective epochs that some ranks entered but others never
  /// completed (called by Engine::run_check_audit after a clean join).
  void audit_epochs();

  /// ULFM recovery excuses a context from the finalize audit: a revoked
  /// (or shrink-abandoned) communicator legitimately leaves unreceived
  /// messages and half-entered epochs behind.  Idempotent; cleared by
  /// reset().
  void excuse_context(int ctx);
  [[nodiscard]] bool context_excused(int ctx) const;

  // ---- Results -------------------------------------------------------------

  [[nodiscard]] bool empty() const;
  /// All collected violations, sorted into a deterministic order
  /// (code, context, rank, op, detail).
  [[nodiscard]] std::vector<Violation> violations() const;
  /// Append the report as long-form CSV rows "label,code,rank,context,
  /// op,detail" (no header; callers manage it like the metrics CSV).
  void write_report(std::ostream& os, const std::string& label) const;

  /// Fresh check scope for the next run: clears violations, pins, scopes,
  /// epochs and the leak-suppression flag (Engine::reset_clocks).
  void reset();

  /// Compose "<base> (in <scope>)" from the rank's current scope stack.
  [[nodiscard]] std::string describe(int world_rank,
                                     const std::string& base) const;

 private:
  struct Pin {
    std::uint64_t id;
    const std::byte* lo;
    const std::byte* hi;  ///< one past the end
    Access access;
    std::string op;
  };

  /// Per-rank mutable state, touched only by the owning rank thread
  /// (cache-line aligned so neighbouring ranks never false-share).
  struct alignas(64) RankCheck {
    std::vector<Pin> pins;
    std::vector<const char*> scope;
    std::uint64_t next_pin = 1;
    int internal = 0;  ///< substrate-internal nesting depth
  };

  struct CollRecord {
    bool present = false;
    const char* kind = "";
    int root = -1;
    long long bytes = -1;
    int datatype = -1;
    int op = -1;
    int world = -1;
  };

  struct EpochState {
    int expected = 0;
    int arrived = 0;
    std::vector<CollRecord> recs;  ///< indexed by comm rank
  };

  [[nodiscard]] RankCheck& rank(int world_rank);
  [[nodiscard]] const RankCheck& rank(int world_rank) const;

  /// Compare a completed epoch's records against the lowest comm rank's.
  [[nodiscard]] static std::vector<Violation> compare_epoch(
      int ctx, std::uint64_t epoch, const EpochState& st);

  void collect(Violation v) noexcept;

  const Mode mode_;
  std::vector<std::unique_ptr<RankCheck>> ranks_;
  std::atomic<bool> suppress_{false};

  mutable std::mutex coll_mutex_;
  /// Contexts abandoned by ULFM recovery (revoke/shrink); their residue
  /// and incomplete epochs are skipped by the finalize audit.
  std::set<int> excused_;
  /// (ctx, epoch) -> arrival records; erased on completion.
  std::map<std::pair<int, std::uint64_t>, EpochState> epochs_;
  /// (ctx, world rank) -> this rank's next epoch index on that context.
  std::map<std::pair<int, int>, std::uint64_t> next_epoch_;

  mutable std::mutex viol_mutex_;
  std::vector<Violation> violations_;
};

/// Lifetime ticket for one user-visible non-blocking point-to-point
/// operation, created by Comm::isend/irecv when checking is enabled and
/// shared (via shared_ptr) across Request copies.  complete() releases
/// the buffer pin and marks the op waited; destroying the last copy
/// without completion reports a request leak carrying the creation
/// description.  Leak reports never throw and are suppressed while the
/// world is unwinding from an abort.
/// RAII bracket for Checker::begin_internal/end_internal.  Tolerates a
/// null checker so call sites need no enabled-test of their own.
class InternalOp {
 public:
  InternalOp(Checker* chk, int world_rank) : chk_(chk), rank_(world_rank) {
    if (chk_ != nullptr) chk_->begin_internal(rank_);
  }
  ~InternalOp() {
    if (chk_ != nullptr) chk_->end_internal(rank_);
  }

  InternalOp(const InternalOp&) = delete;
  InternalOp& operator=(const InternalOp&) = delete;

 private:
  Checker* chk_;
  int rank_;
};

class OpTicket {
 public:
  OpTicket(Checker& chk, int world_rank, int context, std::uint64_t pin_id,
           std::string desc);
  ~OpTicket();

  OpTicket(const OpTicket&) = delete;
  OpTicket& operator=(const OpTicket&) = delete;

  void complete() noexcept;

 private:
  Checker* chk_;
  int rank_;
  int ctx_;
  std::uint64_t pin_;
  std::string desc_;
  bool completed_ = false;
};

}  // namespace ombx::check
