// Abort descriptor shared by the poison/propagation machinery.
//
// When one rank fails, the engine stamps an AbortInfo and poisons every
// blocking primitive (mailboxes, rendezvous sync cells) with a shared
// pointer to it, so peers wake up knowing *who* failed and *why* — the
// MPI_Abort contract, minus the process kill.
#pragma once

#include <string>

namespace ombx::fault {

/// Origin rank used when the abort was raised by the watchdog rather than
/// by a rank thread.
inline constexpr int kWatchdogOrigin = -1;

struct AbortInfo {
  int origin_rank = kWatchdogOrigin;  ///< world rank that failed first
  std::string reason;                 ///< human-readable cause
  bool deadlock = false;  ///< true when raised by the deadlock watchdog
};

}  // namespace ombx::fault
