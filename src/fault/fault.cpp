#include "fault/fault.hpp"

#include <algorithm>

#include "simtime/rng.hpp"

namespace ombx::fault {

namespace {

/// Uniform double in [0, 1) from a raw 64-bit draw.
double to_unit(std::uint64_t x) noexcept {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Stream key for message (src -> dst, seq): mixes the coordinates into
/// the seed so adjacent pairs/sequences decorrelate.
std::uint64_t stream_key(std::uint64_t seed, int src, int dst,
                         std::uint64_t seq) noexcept {
  std::uint64_t k = seed;
  k ^= 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(src);
  k *= 0xbf58476d1ce4e5b9ULL;
  k ^= 0x94d049bb133111ebULL + static_cast<std::uint64_t>(dst);
  k *= 0x2545f4914f6cdd1dULL;
  k ^= seq;
  return k;
}

}  // namespace

FaultPlan::FaultPlan(FaultConfig cfg, int nranks)
    : cfg_(std::move(cfg)),
      nranks_(nranks),
      seq_(static_cast<std::size_t>(nranks) *
           static_cast<std::size_t>(nranks)),
      straggler_(static_cast<std::size_t>(nranks), 1.0),
      kill_(static_cast<std::size_t>(nranks)) {
  for (const StragglerSpec& s : cfg_.stragglers) {
    if (s.rank >= 0 && s.rank < nranks_) {
      straggler_[static_cast<std::size_t>(s.rank)] = s.slowdown;
    }
  }
  for (const KillSpec& k : cfg_.kills) {
    if (k.rank >= 0 && k.rank < nranks_) {
      auto& slot = kill_[static_cast<std::size_t>(k.rank)];
      // Earliest kill wins if several target the same rank.
      if (!slot || k.at_time_us < *slot) slot = k.at_time_us;
    }
  }
}

MessageFaults FaultPlan::draw_message(int src, int dst, std::size_t bytes,
                                      bool droppable) {
  MessageFaults out;
  counters_.messages_examined.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.drop.probability <= 0.0 && cfg_.corrupt.probability <= 0.0) {
    return out;
  }
  const std::size_t idx = static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(nranks_) +
                          static_cast<std::size_t>(dst);
  const std::uint64_t seq =
      seq_[idx].fetch_add(1, std::memory_order_relaxed);
  simtime::SplitMix64 sm(stream_key(cfg_.seed, src, dst, seq));

  if (droppable && cfg_.drop.probability > 0.0) {
    while (out.retransmits < cfg_.drop.max_retries &&
           to_unit(sm.next()) < cfg_.drop.probability) {
      ++out.retransmits;
    }
    if (out.retransmits > 0) {
      const auto n = static_cast<std::uint64_t>(out.retransmits);
      counters_.drops.fetch_add(n, std::memory_order_relaxed);
      counters_.retransmits.fetch_add(n, std::memory_order_relaxed);
    }
    // The loop exits either because a transmission landed or because the
    // cap was hit (short-circuit: no draw is consumed on the cap exit, so
    // the stream is identical under both exhaustion policies).  Hitting
    // the cap is a lost message when the config says exhaustion is real.
    if (out.retransmits >= cfg_.drop.max_retries &&
        cfg_.drop.fail_on_exhaustion) {
      out.lost = true;
      counters_.messages_lost.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (cfg_.corrupt.probability > 0.0 &&
      to_unit(sm.next()) < cfg_.corrupt.probability) {
    out.corrupt = true;
    // Always consume the offset draw so the per-message stream advances
    // identically whether or not bytes physically travel (payload-mode
    // independence of the fault schedule).
    out.corrupt_offset = sm.next() % std::max<std::size_t>(bytes, 1);
    counters_.corruptions.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

double FaultPlan::alpha_factor(net::LinkClass c, usec_t t) const {
  double f = 1.0;
  for (const DegradeWindow& w : cfg_.degrade) {
    if (w.link == c && t >= w.t_begin_us && t < w.t_end_us) {
      f *= w.alpha_factor;
    }
  }
  return f;
}

double FaultPlan::beta_factor(net::LinkClass c, usec_t t) const {
  double f = 1.0;
  for (const DegradeWindow& w : cfg_.degrade) {
    if (w.link == c && t >= w.t_begin_us && t < w.t_end_us) {
      f *= w.beta_factor;
    }
  }
  return f;
}

bool FaultPlan::degrades(net::LinkClass c, usec_t t) const {
  for (const DegradeWindow& w : cfg_.degrade) {
    if (w.link == c && t >= w.t_begin_us && t < w.t_end_us &&
        (w.alpha_factor != 1.0 || w.beta_factor != 1.0)) {
      return true;
    }
  }
  return false;
}

double FaultPlan::straggler_factor(int rank) const {
  if (rank < 0 || rank >= nranks_) return 1.0;
  return straggler_[static_cast<std::size_t>(rank)];
}

std::optional<usec_t> FaultPlan::kill_time(int rank) const {
  if (rank < 0 || rank >= nranks_) return std::nullopt;
  return kill_[static_cast<std::size_t>(rank)];
}

}  // namespace ombx::fault
