// Deadlock watchdog: per-rank blocked-wait bookkeeping plus a monitor
// thread that detects global no-progress states.
//
// Every blocking primitive in the substrate (matched receive, blocking
// probe, capacity-blocked enqueue, rendezvous completion wait) registers
// what it is waiting on in the WaitRegistry before sleeping and clears it
// on wake.  Because the simulation is closed — messages only originate
// from ranks — "every unfinished rank is blocked, the progress counter
// has not moved between polls, and the fiber pool has no runnable or
// executing fiber" is a sound deadlock criterion: a rank that has been
// notified but not yet rescheduled still counts as blocked, so the pool
// check is what separates "deadlocked" from "parked behind a busy run
// queue" when several worlds share the scheduler (campaign cells).  On
// detection the watchdog produces a PARCOACH-style per-rank dump of the
// (context, src, tag) each rank is stuck on.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace ombx::fault {

enum class WaitKind {
  kRecv,          ///< blocked in a matched receive
  kProbe,         ///< blocked in MPI_Probe
  kSendCapacity,  ///< blocked pushing into a full mailbox
  kRendezvous,    ///< blocked awaiting rendezvous completion
  kRecovery,      ///< blocked in a ULFM shrink()/agree() barrier
};

[[nodiscard]] std::string to_string(WaitKind k);

/// What a blocked rank is waiting on.  For receives/probes `peer` is the
/// match source (kAnySource = -1) and `context`/`tag` the match keys; for
/// sends `peer` is the destination rank.
struct WaitInfo {
  WaitKind kind = WaitKind::kRecv;
  int context = 0;
  int peer = -1;
  int tag = -1;
};

class WaitRegistry {
 public:
  explicit WaitRegistry(int nranks);

  WaitRegistry(const WaitRegistry&) = delete;
  WaitRegistry& operator=(const WaitRegistry&) = delete;

  void begin_wait(int rank, const WaitInfo& info);
  void end_wait(int rank);

  /// Any state change that can unblock a waiter (enqueue, dequeue,
  /// rendezvous completion).  Lock-free — and free unless a Watchdog is
  /// actually polling: the counter exists solely to break the monitor's
  /// no-progress streak, so with no observer attached (the default, and
  /// every benchmark configuration) the RMW is skipped entirely.  This
  /// keeps a multi-writer lock-prefixed add out of the per-message hot
  /// path; the relaxed flag read is a plain load.
  void note_progress() noexcept {
    if (observed_.load(std::memory_order_relaxed) != 0) {
      progress_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t progress() const noexcept {
    return progress_.load(std::memory_order_relaxed);
  }

  /// Observer attach/detach (Watchdog lifecycle).  Counted so overlapping
  /// observers compose; progress increments may lag an attach by the
  /// flag's propagation delay, which the watchdog's multi-poll streak
  /// already absorbs.
  void add_observer() noexcept {
    observed_.fetch_add(1, std::memory_order_relaxed);
  }
  void remove_observer() noexcept {
    observed_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Rank thread lifecycle (per run).
  void mark_finished(int rank);
  void reset();

  struct Snapshot {
    int nranks = 0;
    int finished = 0;
    int blocked = 0;
    std::uint64_t progress = 0;
    std::vector<std::optional<WaitInfo>> waits;  ///< per rank
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Per-rank "rank R: blocked in recv (ctx=0, src=1, tag=5)" dump.
  [[nodiscard]] static std::string describe(const Snapshot& snap);

 private:
  mutable std::mutex m_;
  std::vector<std::optional<WaitInfo>> waits_;
  std::vector<bool> finished_;
  int finished_count_ = 0;
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<int> observed_{0};  ///< attached Watchdogs (see note_progress)
};

/// RAII wait registration; tolerates a null registry.
class ScopedWait {
 public:
  ScopedWait(WaitRegistry* reg, int rank, const WaitInfo& info)
      : reg_(reg), rank_(rank) {
    if (reg_) reg_->begin_wait(rank_, info);
  }
  ~ScopedWait() {
    if (reg_) reg_->end_wait(rank_);
  }
  ScopedWait(const ScopedWait&) = delete;
  ScopedWait& operator=(const ScopedWait&) = delete;

 private:
  WaitRegistry* reg_;
  int rank_;
};

/// Polls a WaitRegistry and fires `on_deadlock(dump)` (once) when two
/// consecutive polls observe every unfinished rank blocked with no
/// progress in between.  The callback runs on the watchdog thread and
/// must not block on the registry.
class Watchdog {
 public:
  Watchdog(WaitRegistry& registry, double poll_ms,
           std::function<void(const std::string&)> on_deadlock);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// True once a deadlock has been reported.
  [[nodiscard]] bool fired() const noexcept {
    return fired_.load(std::memory_order_acquire);
  }

  /// Stop polling and join the monitor thread (idempotent).
  void stop();

 private:
  void loop(double poll_ms);

  WaitRegistry& registry_;
  std::function<void(const std::string&)> on_deadlock_;
  std::mutex m_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<bool> fired_{false};
  std::thread thread_;
};

}  // namespace ombx::fault
