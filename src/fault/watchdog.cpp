#include "fault/watchdog.hpp"

#include <chrono>
#include <sstream>

#include "sched/sched.hpp"

namespace ombx::fault {

std::string to_string(WaitKind k) {
  switch (k) {
    case WaitKind::kRecv:
      return "recv";
    case WaitKind::kProbe:
      return "probe";
    case WaitKind::kSendCapacity:
      return "send (mailbox full)";
    case WaitKind::kRendezvous:
      return "rendezvous wait";
    case WaitKind::kRecovery:
      return "ft recovery barrier";
  }
  return "?";
}

WaitRegistry::WaitRegistry(int nranks)
    : waits_(static_cast<std::size_t>(nranks)),
      finished_(static_cast<std::size_t>(nranks), false) {}

void WaitRegistry::begin_wait(int rank, const WaitInfo& info) {
  std::lock_guard<std::mutex> lk(m_);
  waits_[static_cast<std::size_t>(rank)] = info;
}

void WaitRegistry::end_wait(int rank) {
  std::lock_guard<std::mutex> lk(m_);
  waits_[static_cast<std::size_t>(rank)].reset();
}

void WaitRegistry::mark_finished(int rank) {
  std::lock_guard<std::mutex> lk(m_);
  auto idx = static_cast<std::size_t>(rank);
  if (!finished_[idx]) {
    finished_[idx] = true;
    ++finished_count_;
  }
  waits_[idx].reset();
}

void WaitRegistry::reset() {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& w : waits_) w.reset();
  finished_.assign(finished_.size(), false);
  finished_count_ = 0;
  progress_.store(0, std::memory_order_relaxed);
}

WaitRegistry::Snapshot WaitRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(m_);
  Snapshot s;
  s.nranks = static_cast<int>(waits_.size());
  s.finished = finished_count_;
  s.waits = waits_;
  for (const auto& w : waits_) {
    if (w.has_value()) ++s.blocked;
  }
  s.progress = progress_.load(std::memory_order_relaxed);
  return s;
}

std::string WaitRegistry::describe(const Snapshot& snap) {
  std::ostringstream os;
  for (int r = 0; r < snap.nranks; ++r) {
    const auto& w = snap.waits[static_cast<std::size_t>(r)];
    os << "rank " << r << ": ";
    if (w.has_value()) {
      os << "blocked in " << to_string(w->kind) << " (ctx=" << w->context
         << ", " << (w->kind == WaitKind::kSendCapacity ? "dst" : "src")
         << "=" << w->peer << ", tag=" << w->tag << ")";
    } else {
      os << "not blocked";
    }
    if (r + 1 < snap.nranks) os << "\n";
  }
  return os.str();
}

Watchdog::Watchdog(WaitRegistry& registry, double poll_ms,
                   std::function<void(const std::string&)> on_deadlock)
    : registry_(registry), on_deadlock_(std::move(on_deadlock)) {
  registry_.add_observer();  // turn the progress counter on
  thread_ = std::thread([this, poll_ms] { loop(poll_ms); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (stop_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  registry_.remove_observer();
}

void Watchdog::loop(double poll_ms) {
  // Three consecutive all-blocked/no-progress observations before firing:
  // a single sample can catch a notified-but-not-yet-scheduled waiter, so
  // the streak buys robustness against host scheduling hiccups without
  // weakening soundness (a true deadlock stays stalled forever).
  constexpr int kStreakToFire = 3;
  const auto poll = std::chrono::duration<double, std::milli>(poll_ms);
  int streak = 0;
  std::uint64_t last_progress = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      if (cv_.wait_for(lk, poll, [&] { return stop_; })) return;
    }
    const WaitRegistry::Snapshot snap = registry_.snapshot();
    const int active = snap.nranks - snap.finished;
    // All-blocked is only meaningful if the fiber pool is idle too: under
    // the fiber backend a notified rank clears its wait entry only after
    // it is rescheduled, so with concurrent worlds sharing the pool this
    // world can look fully blocked for many polls while its wakeup sits
    // in the run queue behind another world's fibers.  A true deadlock
    // has every fiber parked (pool idle); a busy pool merely delays
    // detection until the co-resident work drains.  Thread-backend-only
    // processes see 0 here and behave exactly as before.
    const bool stalled = active > 0 && snap.blocked == active &&
                         sched::FiberPool::instance().active() == 0;
    if (stalled && (streak == 0 || snap.progress == last_progress)) {
      ++streak;
    } else {
      streak = stalled ? 1 : 0;
    }
    last_progress = snap.progress;
    if (streak >= kStreakToFire) {
      fired_.store(true, std::memory_order_release);
      on_deadlock_(WaitRegistry::describe(snap));
      return;  // one shot; the abort wakes everyone
    }
  }
}

}  // namespace ombx::fault
