// Deterministic, seeded fault injection for the simulated MPI substrate.
//
// A FaultPlan is the single decision authority for "what goes wrong when":
// eager-message drops (modeled as timeout + retransmit in virtual time),
// payload corruption, link degradation windows (inflated alpha/beta on a
// link class during a virtual-time interval), per-rank stragglers, and
// rank kills at a virtual time.
//
// Determinism contract: every per-message decision is drawn from a
// SplitMix64 stream keyed by (seed, src, dst, per-pair sequence number).
// The per-pair sequence advances in the sender's program order, which the
// engine already guarantees is deterministic, so the same seed yields a
// byte-identical fault schedule regardless of host thread scheduling —
// and a different seed yields a different one.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/link_model.hpp"
#include "simtime/clock.hpp"

namespace ombx::fault {

using simtime::usec_t;

/// Randomly drop eager messages; each drop costs one retransmit timeout of
/// virtual time before the payload finally arrives (go-back-N flavoured:
/// the sender's NIC stays busy re-injecting).
struct DropSpec {
  double probability = 0.0;  ///< per-transmission-attempt drop chance
  usec_t retransmit_timeout_us = 50.0;
  int max_retries = 16;  ///< retransmission cap (see fail_on_exhaustion)
  /// What retry exhaustion means.  Default false: the attempt after the
  /// cap always lands (the historical "arrival always happens" model —
  /// drops only cost virtual time).  True: exhausting the cap loses the
  /// message for real and the sender unwinds with a rank-attributed
  /// mpi::MessageLostError (--drop-lost).  The drawn random stream is
  /// identical either way, so flipping this flag never perturbs the fault
  /// schedule of messages that do arrive.
  bool fail_on_exhaustion = false;
};

/// Randomly corrupt message payloads (single deterministic byte flip).
struct CorruptSpec {
  double probability = 0.0;
};

/// Inflate link cost parameters on one link class during a virtual-time
/// window: alpha (startup) and beta (per-byte) components are scaled
/// independently.  Models a congested or renegotiated-down link.
struct DegradeWindow {
  net::LinkClass link = net::LinkClass::kInterNode;
  usec_t t_begin_us = 0.0;
  usec_t t_end_us = 0.0;
  double alpha_factor = 1.0;
  double beta_factor = 1.0;
};

/// Slow one rank's local work (compute, copies, send injection) by a
/// constant factor — a thermally-throttled or noisy-neighbour node.
struct StragglerSpec {
  int rank = 0;
  double slowdown = 1.0;
};

/// Kill a rank once its virtual clock reaches `at_time_us`: its next
/// substrate call throws RankKilledError, which World turns into an abort.
struct KillSpec {
  int rank = 0;
  usec_t at_time_us = 0.0;
};

struct FaultConfig {
  std::uint64_t seed = 0;
  DropSpec drop;
  CorruptSpec corrupt;
  std::vector<DegradeWindow> degrade;
  std::vector<StragglerSpec> stragglers;
  std::vector<KillSpec> kills;

  [[nodiscard]] bool enabled() const noexcept {
    return drop.probability > 0.0 || corrupt.probability > 0.0 ||
           !degrade.empty() || !stragglers.empty() || !kills.empty();
  }
};

/// Per-message fault decisions, drawn once at send time on the sender's
/// thread (hence deterministic).
struct MessageFaults {
  int retransmits = 0;  ///< dropped attempts before the one that lands
  bool corrupt = false;
  std::size_t corrupt_offset = 0;  ///< byte to flip when corrupting
  /// Retry cap exhausted under DropSpec::fail_on_exhaustion: the message
  /// never arrives and the sender must raise MessageLostError.
  bool lost = false;
};

class FaultPlan {
 public:
  /// Injection totals, for the resilience report.  Atomics because rank
  /// threads bump them concurrently; totals are still deterministic
  /// because every increment is decided by the seeded streams.
  struct Counters {
    std::atomic<std::uint64_t> messages_examined{0};
    std::atomic<std::uint64_t> drops{0};         ///< dropped transmissions
    std::atomic<std::uint64_t> retransmits{0};   ///< == drops (re-sent)
    std::atomic<std::uint64_t> corruptions{0};
    /// Messages lost to retry exhaustion (fail_on_exhaustion only).
    std::atomic<std::uint64_t> messages_lost{0};
    std::atomic<std::uint64_t> degraded_messages{0};
    std::atomic<std::uint64_t> kills{0};
    std::atomic<std::uint64_t> aborts{0};          ///< abort propagations
    std::atomic<std::uint64_t> watchdog_fires{0};  ///< deadlocks detected
    std::atomic<std::uint64_t> retries{0};         ///< runner-level retries
    // ULFM outcomes (FT mode; see ft/ft.hpp).  detections counts every
    // ProcFailedError raised; revokes/shrinks/agreements count each
    // revocation / completed barrier exactly once.
    std::atomic<std::uint64_t> detections{0};
    std::atomic<std::uint64_t> revokes{0};
    std::atomic<std::uint64_t> shrinks{0};
    std::atomic<std::uint64_t> agreements{0};
  };

  FaultPlan(FaultConfig cfg, int nranks);

  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }

  /// Draw the fault decisions for the next message src -> dst.  Advances
  /// the per-pair stream; call exactly once per posted message.  Drops are
  /// only drawn when `droppable` (eager protocol; rendezvous traffic is
  /// handshake-protected), so counters reflect faults actually applied.
  [[nodiscard]] MessageFaults draw_message(int src, int dst,
                                           std::size_t bytes,
                                           bool droppable);

  /// Combined alpha/beta scale factors from every degradation window
  /// covering virtual time `t` on link class `c` (1.0 outside windows).
  [[nodiscard]] double alpha_factor(net::LinkClass c, usec_t t) const;
  [[nodiscard]] double beta_factor(net::LinkClass c, usec_t t) const;
  [[nodiscard]] bool degrades(net::LinkClass c, usec_t t) const;

  /// Local-work slowdown for `rank` (1.0 when not a straggler).
  [[nodiscard]] double straggler_factor(int rank) const;

  /// Virtual time at which `rank` dies, if a kill is scheduled for it.
  [[nodiscard]] std::optional<usec_t> kill_time(int rank) const;

  [[nodiscard]] Counters& counters() noexcept { return counters_; }
  [[nodiscard]] const Counters& counters() const noexcept {
    return counters_;
  }

 private:
  FaultConfig cfg_;
  int nranks_;
  /// Per-(src,dst) message sequence numbers; row-major.  Each entry is
  /// only advanced by the sending rank's thread, but kept atomic so the
  /// plan is safe under any caller.
  std::vector<std::atomic<std::uint64_t>> seq_;
  std::vector<double> straggler_;            ///< per-rank factor
  std::vector<std::optional<usec_t>> kill_;  ///< per-rank kill time
  Counters counters_;
};

}  // namespace ombx::fault
