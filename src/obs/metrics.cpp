#include "obs/metrics.hpp"

namespace ombx::obs {

namespace {

// Fixed export order; append-only so existing CSV consumers never see
// columns move.
struct Field {
  const char* name;
  std::atomic<std::uint64_t> RankCounters::* member;
};

constexpr Field kFields[] = {
    {"eager_msgs", &RankCounters::eager_msgs},
    {"eager_bytes", &RankCounters::eager_bytes},
    {"rendezvous_msgs", &RankCounters::rendezvous_msgs},
    {"rendezvous_bytes", &RankCounters::rendezvous_bytes},
    {"self_msgs", &RankCounters::self_msgs},
    {"self_bytes", &RankCounters::self_bytes},
    {"payload_inline", &RankCounters::payload_inline},
    {"payload_pooled", &RankCounters::payload_pooled},
    {"payload_heap", &RankCounters::payload_heap},
    {"mailbox_exact_hits", &RankCounters::mailbox_exact_hits},
    {"mailbox_mru_hits", &RankCounters::mailbox_mru_hits},
    {"mailbox_wildcard_scans", &RankCounters::mailbox_wildcard_scans},
    {"recvs_posted", &RankCounters::recvs_posted},
    {"probes_posted", &RankCounters::probes_posted},
    {"rendezvous_waits", &RankCounters::rendezvous_waits},
    {"poisoned_waits", &RankCounters::poisoned_waits},
    {"retransmits", &RankCounters::retransmits},
    {"ft_detections", &RankCounters::ft_detections},
    {"ft_revokes", &RankCounters::ft_revokes},
    {"ft_shrinks", &RankCounters::ft_shrinks},
    {"ft_agreements", &RankCounters::ft_agreements},
    {"sched_wildcard_decisions", &RankCounters::sched_wildcard_decisions},
    {"sched_forced_divergences", &RankCounters::sched_forced_divergences},
    {"sched_ft_wake_ties", &RankCounters::sched_ft_wake_ties},
    {"sched_rendezvous_claims", &RankCounters::sched_rendezvous_claims},
    {"ckpt_checkpoints", &RankCounters::ckpt_checkpoints},
    {"ckpt_bytes_replicated", &RankCounters::ckpt_bytes_replicated},
    {"ckpt_restores", &RankCounters::ckpt_restores},
    {"ckpt_rolled_back_us", &RankCounters::ckpt_rolled_back_us},
};

}  // namespace

Metrics::Metrics(int nranks)
    : ranks_(static_cast<std::size_t>(nranks > 0 ? nranks : 0)) {}

void Metrics::reset() {
  for (RankCounters& r : ranks_) {
    for (const Field& f : kFields) {
      (r.*f.member).store(0, std::memory_order_relaxed);
    }
  }
}

Metrics::Snapshot Metrics::snapshot() const {
  Snapshot s;
  s.names.reserve(std::size(kFields));
  s.values.reserve(std::size(kFields));
  for (const Field& f : kFields) {
    s.names.emplace_back(f.name);
    std::vector<std::uint64_t> row;
    row.reserve(ranks_.size());
    for (const RankCounters& r : ranks_) {
      row.push_back((r.*f.member).load(std::memory_order_relaxed));
    }
    s.values.push_back(std::move(row));
  }
  return s;
}

}  // namespace ombx::obs
