// Per-rank substrate metrics: lock-free counter blocks for the simulated
// MPI hot path.
//
// Each rank owns one cache-line-aligned RankCounters block; the owning
// rank thread (or, for mailbox counters, the mailbox owner's matching
// path) bumps relaxed atomics, so enabling metrics never adds a lock or a
// syscall to the hot path — and, critically, never touches a virtual
// clock.  The zero-perturbation invariant (benchmark outputs are
// byte-identical with metrics on or off) holds by construction: counters
// are observed, never consulted, by the timing model.
//
// Determinism contract: every counter in this block is a *program-order*
// quantity — a pure function of the (seeded) rank programs, independent of
// host thread scheduling.  Quantities that depend on cross-thread timing
// (did the receiver block? did the pool freelist have a buffer?) are
// deliberately excluded; they live in the PayloadPool/WaitRegistry
// diagnostics instead.  This is what lets `core::metrics_table` promise
// byte-identical tables across same-seed runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ombx::obs {

/// Single-writer counter increment.  Every RankCounters field is written
/// only by its own rank's thread (aggregation reads happen after the rank
/// threads join), so a plain load+store bump is race-free and avoids the
/// lock-prefixed RMW a fetch_add would emit — roughly 20x cheaper on the
/// substrate hot path.  Do NOT use for counters with concurrent writers
/// (PayloadPool::Stats, fault counters, WaitRegistry progress).
inline void bump(std::atomic<std::uint64_t>& c,
                 std::uint64_t n = 1) noexcept {
  c.store(c.load(std::memory_order_relaxed) + n,
          std::memory_order_relaxed);
}

/// One rank's counters.  Alignment keeps neighbouring ranks' blocks off
/// each other's cache lines (each block is written by one thread).
struct alignas(64) RankCounters {
  // Sends by protocol, as decided by the engine's eager/rendezvous switch
  // (self-sends are always eager but counted separately: they never touch
  // the fabric).
  std::atomic<std::uint64_t> eager_msgs{0};
  std::atomic<std::uint64_t> eager_bytes{0};
  std::atomic<std::uint64_t> rendezvous_msgs{0};
  std::atomic<std::uint64_t> rendezvous_bytes{0};
  std::atomic<std::uint64_t> self_msgs{0};
  std::atomic<std::uint64_t> self_bytes{0};

  // Payload storage tier chosen for this rank's posted sends (a pure
  // function of message size — see PayloadPool).  Pool freelist hit/miss
  // totals are host-timing-dependent and therefore live in
  // PayloadPool::Stats, not here.
  std::atomic<std::uint64_t> payload_inline{0};
  std::atomic<std::uint64_t> payload_pooled{0};
  std::atomic<std::uint64_t> payload_heap{0};

  // Mailbox matching on this rank's mailbox (receiver side).  An MRU hit
  // is a successful exact-match dequeue from the same bin as this
  // mailbox's previous successful dequeue — the steady-traffic locality
  // the matching cache exploits, counted in receiver program order so the
  // split is deterministic.
  std::atomic<std::uint64_t> mailbox_exact_hits{0};
  std::atomic<std::uint64_t> mailbox_mru_hits{0};
  std::atomic<std::uint64_t> mailbox_wildcard_scans{0};

  // Blocking substrate operations posted by this rank (program-order
  // counts; whether an individual call actually parked the thread is a
  // host-scheduling artifact and is not recorded here).  Non-blocking
  // probes (MPI_Iprobe) are excluded for the same reason: poll loops spin
  // a host-timing-dependent number of times.
  std::atomic<std::uint64_t> recvs_posted{0};
  std::atomic<std::uint64_t> probes_posted{0};
  std::atomic<std::uint64_t> rendezvous_waits{0};

  // Failure-path events: waits woken by abort poison, and eager
  // retransmits charged by the fault layer.  Nonzero only under fault
  // injection; poisoned-wait counts on racing ranks are as-observed.
  std::atomic<std::uint64_t> poisoned_waits{0};
  std::atomic<std::uint64_t> retransmits{0};

  // ULFM fault-tolerance events observed by this rank (FT mode only —
  // see ft/ft.hpp): ProcFailedError raises at this rank's call sites, and
  // revoke()/shrink()/agree() calls this rank issued.  Program-order
  // quantities under the FT determinism contract.
  std::atomic<std::uint64_t> ft_detections{0};
  std::atomic<std::uint64_t> ft_revokes{0};
  std::atomic<std::uint64_t> ft_shrinks{0};
  std::atomic<std::uint64_t> ft_agreements{0};

  // Scheduling-oracle events (explore/explore.hpp): wildcard match
  // decisions recorded, decisions where a pin forced a non-default choice
  // or diverged from the recorded prefix, FT wake-order ties, and
  // rendezvous claim races observed.  Nonzero only when an oracle is
  // attached (explore/replay mode); like poisoned_waits these are
  // as-observed under the active schedule, not default-schedule
  // program-order quantities.
  std::atomic<std::uint64_t> sched_wildcard_decisions{0};
  std::atomic<std::uint64_t> sched_forced_divergences{0};
  std::atomic<std::uint64_t> sched_ft_wake_ties{0};
  std::atomic<std::uint64_t> sched_rendezvous_claims{0};

  // Checkpoint/restart events (ckpt/ckpt.hpp; nonzero only when
  // checkpointing is enabled).  ckpt_rolled_back_us is the whole
  // microseconds of virtual-time work discarded by rollbacks this rank
  // observed; all four are program-order quantities under the ckpt
  // determinism contract.
  std::atomic<std::uint64_t> ckpt_checkpoints{0};
  std::atomic<std::uint64_t> ckpt_bytes_replicated{0};
  std::atomic<std::uint64_t> ckpt_restores{0};
  std::atomic<std::uint64_t> ckpt_rolled_back_us{0};
};

/// The per-rank counter table.  One block per world rank, fixed at
/// construction; reset() re-zeros between benchmark repetitions.
class Metrics {
 public:
  explicit Metrics(int nranks);

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(ranks_.size());
  }

  [[nodiscard]] RankCounters& rank(int world_rank) {
    return ranks_[static_cast<std::size_t>(world_rank)];
  }
  [[nodiscard]] const RankCounters& rank(int world_rank) const {
    return ranks_[static_cast<std::size_t>(world_rank)];
  }

  void reset();

  /// Plain-value snapshot in a fixed counter order (rows are counters,
  /// columns are ranks) — the deterministic form every exporter consumes.
  struct Snapshot {
    std::vector<std::string> names;                       ///< counter names
    std::vector<std::vector<std::uint64_t>> values;       ///< [counter][rank]
    [[nodiscard]] int nranks() const noexcept {
      return values.empty() ? 0 : static_cast<int>(values.front().size());
    }
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::vector<RankCounters> ranks_;
};

/// Campaign-level counters (src/campaign): unlike RankCounters these have
/// concurrent writers (worker threads completing cells), so increments
/// use real fetch_add RMWs — campaign bookkeeping is nowhere near the
/// substrate hot path, so the lock prefix is irrelevant.  Snapshot after
/// the workers join for a deterministic (program-order) view: every
/// quantity is a pure function of the spec, the cache state and the
/// binary, not of worker scheduling.
struct CampaignCounters {
  std::atomic<std::uint64_t> cells_total{0};    ///< expanded configurations
  std::atomic<std::uint64_t> cells_run{0};      ///< executed this run
  std::atomic<std::uint64_t> cells_cached{0};   ///< served from the cache
  std::atomic<std::uint64_t> reps_run{0};       ///< worlds actually built
  std::atomic<std::uint64_t> reps_saved{0};     ///< budget minus executed
  std::atomic<std::uint64_t> reps_failed{0};    ///< repetitions that errored
  std::atomic<std::uint64_t> rows_emitted{0};   ///< result rows aggregated

  void add(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) noexcept {
    c.fetch_add(n, std::memory_order_relaxed);
  }

  /// Plain-value copy, in declaration order (the exporters' fixed order).
  struct Snapshot {
    std::uint64_t cells_total = 0;
    std::uint64_t cells_run = 0;
    std::uint64_t cells_cached = 0;
    std::uint64_t reps_run = 0;
    std::uint64_t reps_saved = 0;
    std::uint64_t reps_failed = 0;
    std::uint64_t rows_emitted = 0;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot s;
    s.cells_total = cells_total.load(std::memory_order_relaxed);
    s.cells_run = cells_run.load(std::memory_order_relaxed);
    s.cells_cached = cells_cached.load(std::memory_order_relaxed);
    s.reps_run = reps_run.load(std::memory_order_relaxed);
    s.reps_saved = reps_saved.load(std::memory_order_relaxed);
    s.reps_failed = reps_failed.load(std::memory_order_relaxed);
    s.rows_emitted = rows_emitted.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace ombx::obs
