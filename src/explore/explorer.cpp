#include "explore/explorer.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "mpi/error.hpp"

namespace ombx::explore {

namespace {

std::pair<int, std::uint64_t> key_of(const Pin& p) {
  return {p.rank, p.index};
}

void sort_pins(Schedule& s) {
  std::sort(s.pins.begin(), s.pins.end(), [](const Pin& a, const Pin& b) {
    return key_of(a) < key_of(b);
  });
}

bool has_pin(const Schedule& s, int rank, std::uint64_t index) {
  for (const Pin& p : s.pins) {
    if (p.rank == rank && p.index == index) return true;
  }
  return false;
}

std::string canon_key(const Schedule& s) {
  std::string k;
  for (const Pin& p : s.pins) {
    k += std::to_string(p.rank) + ":" + std::to_string(p.index) + "->" +
         std::to_string(p.src) + "/" + std::to_string(p.tag) + ";";
  }
  return k;
}

/// Wildcard decisions only, (rank, index)-ascending — the branch order.
std::vector<Decision> wildcards_sorted(const std::vector<Decision>& log) {
  std::vector<Decision> ds;
  for (const Decision& d : log) {
    if (d.kind == DecisionKind::kWildcard) ds.push_back(d);
  }
  std::sort(ds.begin(), ds.end(), [](const Decision& a, const Decision& b) {
    return std::make_pair(a.rank, a.index) < std::make_pair(b.rank, b.index);
  });
  return ds;
}

std::string first_line(const std::string& s) {
  const std::size_t nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

Finding make_finding(const RunFn& run, const SearchConfig& cfg,
                     const RunResult& rr, const Schedule& failing_sched,
                     SearchResult& res) {
  Finding f;
  f.what = rr.what;
  f.deadlock = rr.deadlock;
  const std::string what_norm = strip_schedule_line(rr.what);

  // Seed divergence list: the pins that produced the failure — or, for a
  // fuzz run (whose schedule is a seed, not a pin list), the decisions the
  // fuzzer flipped away from the min-seq default.
  Schedule seed;
  if (failing_sched.randomize) {
    for (const Decision& d : rr.log) {
      if (d.kind == DecisionKind::kWildcard && d.divergent) {
        seed.pins.push_back(Pin{d.rank, d.index, d.src, d.tag});
      }
    }
  } else {
    seed.pins = failing_sched.pins;
  }
  sort_pins(seed);

  RunResult best = run(seed);
  ++res.shrink_runs;
  if (!best.failed || strip_schedule_line(best.what) != what_norm) {
    // The divergence list alone does not reproduce (the failure depended
    // on choices the defaults no longer make): pin the complete recorded
    // log instead.
    seed = pin_everything(rr.log);
    best = run(seed);
    ++res.shrink_runs;
    if (!best.failed || strip_schedule_line(best.what) != what_norm) {
      f.schedule = seed;
      f.schedule.note = "unstable: failure did not reproduce under pinning";
      return f;
    }
  }

  Schedule minimal = seed;
  if (cfg.shrink) {
    minimal = shrink_divergences(run, seed, what_norm, res.shrink_runs, &best);
  }

  // The minimal schedule's own (failing) run is the recording: pin every
  // decision it made so the committed reproducer is host-independent.
  f.schedule = pin_everything(best.log);
  f.schedule.note = "minimal divergences: " +
                    std::to_string(minimal.pins.size()) + "; " +
                    first_line(best.what);
  f.what = best.what;
  f.deadlock = best.deadlock;
  return f;
}

}  // namespace

std::string strip_schedule_line(const std::string& what) {
  const std::size_t at = what.find("\nschedule: ");
  if (at == std::string::npos) return what;
  const std::size_t end = what.find('\n', at + 1);
  return what.substr(0, at) +
         (end == std::string::npos ? "" : what.substr(end));
}

Schedule pin_everything(const std::vector<Decision>& log) {
  Schedule s;
  for (const Decision& d : log) {
    if (d.kind == DecisionKind::kWildcard) {
      s.pins.push_back(Pin{d.rank, d.index, d.src, d.tag});
    }
  }
  sort_pins(s);
  return s;
}

Schedule shrink_divergences(const RunFn& run, const Schedule& failing,
                            const std::string& what_norm, int& runs_used,
                            RunResult* last_fail) {
  Schedule cur = failing;
  bool progress = true;
  while (progress && !cur.pins.empty()) {
    progress = false;
    for (std::size_t i = 0; i < cur.pins.size(); ++i) {
      Schedule trial = cur;
      trial.pins.erase(trial.pins.begin() + static_cast<std::ptrdiff_t>(i));
      RunResult rr = run(trial);
      ++runs_used;
      if (rr.failed && strip_schedule_line(rr.what) == what_norm) {
        cur = std::move(trial);
        if (last_fail != nullptr) *last_fail = std::move(rr);
        progress = true;
        break;
      }
    }
  }
  return cur;
}

SearchResult search(const RunFn& run, const SearchConfig& cfg) {
  SearchResult res;

  if (cfg.mode == SearchMode::kFuzz) {
    for (int i = 0; i < cfg.budget; ++i) {
      Schedule s;
      if (i > 0) {
        // Run 0 is the default schedule (the bug must also be checked
        // there); later runs perturb with consecutive seeds.
        s.randomize = true;
        s.fuzz_seed = cfg.fuzz_seed + static_cast<std::uint64_t>(i) - 1;
      }
      RunResult rr = run(s);
      ++res.runs;
      if (rr.failed) {
        res.findings.push_back(make_finding(run, cfg, rr, s, res));
        if (cfg.stop_at_first) return res;
      }
    }
    return res;  // fuzzing never proves exhaustion
  }

  struct Node {
    Schedule sched;
    bool has_frontier = false;
    int frontier_rank = 0;
    std::uint64_t frontier_index = 0;
  };
  std::vector<Node> stack;
  stack.push_back(Node{});
  std::set<std::string> seen;
  bool budget_hit = false;

  while (!stack.empty()) {
    if (res.runs >= cfg.budget) {
      budget_hit = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    if (cfg.mode == SearchMode::kDpor &&
        !seen.insert(canon_key(node.sched)).second) {
      ++res.pruned;
      continue;
    }

    RunResult rr = run(node.sched);
    ++res.runs;
    if (rr.failed) {
      res.findings.push_back(make_finding(run, cfg, rr, node.sched, res));
      if (cfg.stop_at_first) return res;
      continue;  // a failed run's suffix is not a schedule to branch from
    }

    const std::vector<Decision> ds = wildcards_sorted(rr.log);
    for (std::size_t di = 0; di < ds.size(); ++di) {
      const Decision& d = ds[di];
      if (d.candidates.size() < 2) continue;
      if (has_pin(node.sched, d.rank, d.index)) continue;
      if (cfg.mode == SearchMode::kDpor && node.has_frontier &&
          std::make_pair(d.rank, d.index) <=
              std::make_pair(node.frontier_rank, node.frontier_index)) {
        // Sleep rule: alternates at or before this node's own branch
        // point belong to an ancestor's sibling subtrees.
        continue;
      }
      for (const Candidate& a : d.candidates) {
        if (a.src == d.src && a.tag == d.tag) continue;
        Node child;
        child.sched = node.sched;
        if (cfg.mode == SearchMode::kDpor) {
          // Freeze the prefix: every decision before the branch point
          // keeps its recorded choice, so the child explores exactly one
          // divergence (plus its downstream consequences).
          for (std::size_t pj = 0; pj < di; ++pj) {
            const Decision& p = ds[pj];
            if (!has_pin(child.sched, p.rank, p.index)) {
              child.sched.pins.push_back(Pin{p.rank, p.index, p.src, p.tag});
            }
          }
        }
        child.sched.pins.push_back(Pin{d.rank, d.index, a.src, a.tag});
        sort_pins(child.sched);
        child.has_frontier = true;
        child.frontier_rank = d.rank;
        child.frontier_index = d.index;
        stack.push_back(std::move(child));
      }
    }
  }

  res.exhausted = !budget_hit && stack.empty();
  return res;
}

RunFn make_world_runner(mpi::WorldConfig base,
                        std::function<void(mpi::Comm&)> program) {
  // The violation oracle: strict checking (first violation throws a
  // rank-attributed error) plus the always-on deadlock watchdog.
  base.check.enabled = true;
  base.check.mode = check::Mode::kStrict;
  auto oracle = std::make_shared<ScheduleOracle>(base.nranks);
  base.oracle = oracle;
  auto world = std::make_shared<mpi::World>(base);
  return [world, oracle,
          program = std::move(program)](const Schedule& s) -> RunResult {
    RunResult rr;
    oracle->arm(s);
    try {
      world->run(program);
    } catch (const mpi::DeadlockError& e) {
      rr.failed = true;
      rr.deadlock = true;
      rr.what = e.what();
    } catch (const std::exception& e) {
      rr.failed = true;
      rr.what = e.what();
    }
    rr.log = oracle->log();
    rr.diverged = oracle->diverged();
    return rr;
  };
}

}  // namespace ombx::explore
