// Schedule-space search over a ScheduleOracle-instrumented program.
//
// search() drives repeated runs of a program (each under a different
// Schedule) looking for a run that fails the violation oracle — a strict
// checker error or a watchdog DeadlockError.  Two systematic modes and a
// fuzzing fallback:
//
//   kDpor   depth-first over forced alternates with sleep-set-style
//           pruning: a child branching at decision d re-pins every
//           decision before d (in (rank, index) order) to its recorded
//           choice and only branches *after* d, so the subtree rooted at
//           an alternate never re-derives interleavings an ancestor's
//           earlier siblings already cover; a canonical-pin-list seen-set
//           catches the remainder.  Exhausts small spaces.
//
//   kNaive  brute force: every child pins only its own alternate and
//           re-branches everywhere.  Exists as the baseline DPOR is
//           measured against (tests assert strictly fewer kDpor runs on
//           the same space with the same outcome coverage).
//
//   kFuzz   budgeted seeded schedule fuzzing (hash-picked wildcard
//           choices) for spaces too large to enumerate.
//
// On a failing run the shrinker delta-debugs the divergence pin list to a
// minimal set that still fails with the same violation, then re-records
// that minimal schedule and emits the *complete* pin list of the
// re-recorded run as the reproducer: unpinned decisions would fall back to
// the min-seq default, which is host-arrival-order dependent — pinning
// everything is what makes the committed file replay byte-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "mpi/world.hpp"

namespace ombx::explore {

enum class SearchMode { kDpor, kNaive, kFuzz };

struct SearchConfig {
  SearchMode mode = SearchMode::kDpor;
  /// Exploration run cap (shrinking/re-recording runs are counted
  /// separately in SearchResult::shrink_runs).
  int budget = 256;
  std::uint64_t fuzz_seed = 1;
  bool shrink = true;
  bool stop_at_first = true;
};

/// Outcome of one schedule's run.
struct RunResult {
  bool failed = false;
  bool deadlock = false;
  bool diverged = false;
  std::string what;
  std::vector<Decision> log;
};

/// Runs the program once under `schedule` and reports what happened.  The
/// runner owns arming the oracle and catching the violation oracle's
/// exceptions.
using RunFn = std::function<RunResult(const Schedule&)>;

struct Finding {
  Schedule schedule;  ///< full-pin reproducer (see header comment)
  std::string what;   ///< the violation, as replayed under the reproducer
  bool deadlock = false;
};

struct SearchResult {
  int runs = 0;         ///< exploration runs executed
  int shrink_runs = 0;  ///< extra runs spent shrinking / re-recording
  int pruned = 0;       ///< schedules skipped by the DPOR seen-set
  bool exhausted = false;  ///< the whole space was enumerated under budget
  std::vector<Finding> findings;
};

[[nodiscard]] SearchResult search(const RunFn& run, const SearchConfig& cfg);

/// `what` with the trailing "schedule: ..." identity line removed, so
/// failures can be compared across schedules (the identity names the pin
/// count, which shrinking changes by design).
[[nodiscard]] std::string strip_schedule_line(const std::string& what);

/// Pin list covering every wildcard decision in `log` at its recorded
/// choice.
[[nodiscard]] Schedule pin_everything(const std::vector<Decision>& log);

/// Delta-debug `failing`'s pin list to a minimal subset that still fails
/// with the same (schedule-line-stripped) violation.  `last_fail`, when
/// non-null, receives the minimal schedule's own run result.
[[nodiscard]] Schedule shrink_divergences(const RunFn& run,
                                          const Schedule& failing,
                                          const std::string& what_norm,
                                          int& runs_used,
                                          RunResult* last_fail = nullptr);

/// Standard runner: one World (strict checking forced on, oracle
/// attached) reused across schedules; each call arms the oracle, runs
/// `program`, and maps strict-checker errors and watchdog deadlocks to a
/// failed RunResult.
[[nodiscard]] RunFn make_world_runner(
    mpi::WorldConfig base, std::function<void(mpi::Comm&)> program);

}  // namespace ombx::explore
