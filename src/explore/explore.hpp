// Schedule-space exploration: the scheduling oracle (ombx::explore).
//
// The substrate is deterministic in virtual time, but three classes of
// decision are resolved by *arrival order*, which the host scheduler
// controls: which candidate a wildcard (ANY_SOURCE / ANY_TAG) receive
// matches, which side wins a zero-copy rendezvous claim during an abort,
// and which mark (death vs exit) interrupts an FT wait when both exist.
// The checker (PR 4) and the FT recovery paths (PR 5) have only ever been
// exercised on the single interleaving the default scheduler produces.
//
// A ScheduleOracle attached to a World records every such decision into a
// per-rank log, and can *force* wildcard choices on a later run: a Pin
// (rank, decision index) -> (src, tag) makes that rank's index-th wildcard
// match wait for the pinned bin and take its head, regardless of what else
// is queued.  Decision indices count a rank's *successful* wildcard
// observations in its own program order (blocking matches, successful
// try_* and probes), so they are identical across hosts for an unchanged
// prefix — which is what makes a committed pin list a byte-identical
// reproducer.  Rendezvous claims and FT wake-order ties are record-only:
// they are logged for attribution but cannot be forced.
//
// The oracle is wired in behind a null check on the wildcard commit path
// only; a world without an oracle attached executes the exact same
// instructions as before this subsystem existed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ombx::explore {

/// Force rank `rank`'s `index`-th wildcard decision to match the
/// (src, tag) bin (comm-local source, actual tag — never wildcards).
struct Pin {
  int rank = 0;
  std::uint64_t index = 0;
  int src = 0;
  int tag = 0;
};

/// One run's scheduling directive: a pin list (deterministic forcing) or a
/// seeded fuzz pass (every multi-candidate wildcard match picks a
/// hash(seed, rank, index)-selected candidate instead of the min-seq one).
struct Schedule {
  std::vector<Pin> pins;
  bool randomize = false;
  std::uint64_t fuzz_seed = 0;
  /// World size the schedule was recorded for (0 = unspecified); replay
  /// refuses a mismatched world instead of silently diverging.
  int nranks = 0;
  /// Free-form single-line provenance carried into the reproducer file.
  std::string note;
};

/// One matchable bin at a wildcard decision point: its key and the global
/// arrival stamp of its head (the message a pin on this key would take).
struct Candidate {
  int src = 0;
  int tag = 0;
  std::uint64_t seq = 0;
};

enum class DecisionKind {
  kWildcard,  ///< wildcard receive/probe match (forcible)
  kFtTie,     ///< FT wait interrupted while death AND exit marks coexist
  kClaim,     ///< zero-copy rendezvous claim attempt (won or lost)
};

/// One recorded nondeterministic decision.  `index` is the owner rank's
/// wildcard-decision counter at the time (kFtTie/kClaim entries do not
/// consume indices; theirs records the counter's current value so the log
/// interleaves in program order).
struct Decision {
  DecisionKind kind = DecisionKind::kWildcard;
  int rank = -1;
  std::uint64_t index = 0;
  int ctx = 0;
  int src = -1;  ///< chosen source (kWildcard only)
  int tag = -1;  ///< chosen tag (kWildcard only)
  bool forced = false;     ///< a pin dictated this choice
  bool divergent = false;  ///< choice differs from the min-seq default
  bool claim_won = false;  ///< kClaim only
  std::vector<Candidate> candidates;  ///< kWildcard only, seq-ascending
};

/// The oracle one World (or a sequence of runs on one World) consults.
/// Thread safety: all of rank r's record/peek calls happen on r's own
/// thread (mailbox matching runs under r's mailbox lock, claims in r's
/// Engine::recv), so per-rank state needs no lock; arm() and log() must
/// only be called while no run is in flight.
class ScheduleOracle {
 public:
  explicit ScheduleOracle(int nranks);

  ScheduleOracle(const ScheduleOracle&) = delete;
  ScheduleOracle& operator=(const ScheduleOracle&) = delete;

  /// Install a schedule and reset every per-rank log/cursor.  Throws
  /// std::invalid_argument on an out-of-range pin rank or a duplicate
  /// (rank, index) pin.
  void arm(const Schedule& schedule);

  [[nodiscard]] const Schedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(ranks_.size());
  }

  // ---- Owner-thread hooks (called from mailbox/engine) ---------------------

  /// The pin governing `rank`'s next wildcard decision, or null.  Skips
  /// (and flags as divergence) stale pins whose index was passed without
  /// being consumed — a pin recorded under a receive pattern the replayed
  /// program no longer issues.
  [[nodiscard]] const Pin* peek_pin(int rank);

  /// Note that the replayed prefix no longer matches the recording.
  void mark_divergence() noexcept {
    diverged_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool randomize() const noexcept { return schedule_.randomize; }

  /// Fuzz mode: deterministic candidate pick for `rank`'s next decision —
  /// a pure function of (fuzz seed, rank, decision index), so a fixed
  /// candidate set always yields the same pick.
  [[nodiscard]] std::size_t fuzz_pick(int rank, std::size_t n) const;

  /// Record a committed wildcard match (consumes the rank's decision
  /// index, and its pending pin when `forced`).
  void record_wildcard(int rank, int ctx, int chosen_src, int chosen_tag,
                       bool forced, bool divergent,
                       std::vector<Candidate> candidates);

  void record_ft_tie(int rank, int ctx);
  void record_claim(int rank, int ctx, bool won);

  // ---- Post-join observers -------------------------------------------------

  /// All decisions, rank-major, per-rank program order.
  [[nodiscard]] std::vector<Decision> log() const;
  [[nodiscard]] std::uint64_t decision_count(int rank) const;
  [[nodiscard]] bool diverged() const noexcept {
    return diverged_.load(std::memory_order_relaxed);
  }

  /// Single-line schedule identity for diagnostics ("schedule=default",
  /// "schedule=pinned pins=4", "schedule=fuzz seed=17").  A pure function
  /// of the armed schedule, so it is safe to capture before threads start.
  [[nodiscard]] std::string identity() const;

 private:
  struct PerRank {
    std::vector<Decision> log;
    std::vector<Pin> pins;  ///< this rank's pins, index-ascending
    std::size_t next_pin = 0;
    std::uint64_t next_index = 0;
  };

  std::vector<PerRank> ranks_;
  Schedule schedule_;
  std::atomic<bool> diverged_{false};
};

// ---- Reproducer files -------------------------------------------------------
//
// Text format (one decision pin per line, '#' comments ignored):
//
//   # omb-x schedule reproducer v1
//   meta nranks 3
//   meta note wildcard message race
//   pin 1 0 2 5
//
// parse_schedule/load_schedule throw std::invalid_argument on anything
// malformed (wrong header, unknown directive, non-numeric field).

void write_schedule(std::ostream& os, const Schedule& s);
[[nodiscard]] Schedule parse_schedule(std::istream& is);
void save_schedule(const Schedule& s, const std::string& path);
[[nodiscard]] Schedule load_schedule(const std::string& path);

}  // namespace ombx::explore
