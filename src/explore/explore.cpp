#include "explore/explore.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ombx::explore {

namespace {

bool pin_order(const Pin& a, const Pin& b) {
  return std::make_pair(a.rank, a.index) < std::make_pair(b.rank, b.index);
}

std::uint64_t splitmix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

ScheduleOracle::ScheduleOracle(int nranks)
    : ranks_(static_cast<std::size_t>(nranks > 0 ? nranks : 0)) {}

void ScheduleOracle::arm(const Schedule& schedule) {
  for (const Pin& p : schedule.pins) {
    if (p.rank < 0 || p.rank >= nranks()) {
      throw std::invalid_argument("schedule pin rank " +
                                  std::to_string(p.rank) +
                                  " out of range for a " +
                                  std::to_string(nranks()) + "-rank world");
    }
  }
  schedule_ = schedule;
  diverged_.store(false, std::memory_order_relaxed);
  for (PerRank& pr : ranks_) {
    pr.log.clear();
    pr.pins.clear();
    pr.next_pin = 0;
    pr.next_index = 0;
  }
  for (const Pin& p : schedule_.pins) {
    ranks_[static_cast<std::size_t>(p.rank)].pins.push_back(p);
  }
  for (PerRank& pr : ranks_) {
    std::sort(pr.pins.begin(), pr.pins.end(), pin_order);
    for (std::size_t i = 1; i < pr.pins.size(); ++i) {
      if (pr.pins[i].index == pr.pins[i - 1].index) {
        throw std::invalid_argument(
            "duplicate schedule pin for rank " +
            std::to_string(pr.pins[i].rank) + " decision " +
            std::to_string(pr.pins[i].index));
      }
    }
  }
}

const Pin* ScheduleOracle::peek_pin(int rank) {
  PerRank& pr = ranks_[static_cast<std::size_t>(rank)];
  // Drop pins the replay ran past without consuming: the recorded decision
  // no longer exists at this index, so the prefix has diverged.
  while (pr.next_pin < pr.pins.size() &&
         pr.pins[pr.next_pin].index < pr.next_index) {
    mark_divergence();
    ++pr.next_pin;
  }
  if (pr.next_pin < pr.pins.size() &&
      pr.pins[pr.next_pin].index == pr.next_index) {
    return &pr.pins[pr.next_pin];
  }
  return nullptr;
}

std::size_t ScheduleOracle::fuzz_pick(int rank, std::size_t n) const {
  if (n <= 1) return 0;
  const PerRank& pr = ranks_[static_cast<std::size_t>(rank)];
  std::uint64_t x = schedule_.fuzz_seed;
  x ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) + 1) *
       0x9e3779b97f4a7c15ULL;
  x ^= (pr.next_index + 1) * 0xff51afd7ed558ccdULL;
  return static_cast<std::size_t>(splitmix64(x) % n);
}

void ScheduleOracle::record_wildcard(int rank, int ctx, int chosen_src,
                                     int chosen_tag, bool forced,
                                     bool divergent,
                                     std::vector<Candidate> candidates) {
  PerRank& pr = ranks_[static_cast<std::size_t>(rank)];
  Decision d;
  d.kind = DecisionKind::kWildcard;
  d.rank = rank;
  d.index = pr.next_index;
  d.ctx = ctx;
  d.src = chosen_src;
  d.tag = chosen_tag;
  d.forced = forced;
  d.divergent = divergent;
  d.candidates = std::move(candidates);
  pr.log.push_back(std::move(d));
  // `divergent` here means "forced away from the min-seq default" — an
  // intentional exploration choice, not a replay mismatch. The oracle-level
  // diverged flag is reserved for prefix divergence (stale or incompatible
  // pins), so it is NOT set here.
  if (forced) ++pr.next_pin;
  ++pr.next_index;
}

void ScheduleOracle::record_ft_tie(int rank, int ctx) {
  PerRank& pr = ranks_[static_cast<std::size_t>(rank)];
  Decision d;
  d.kind = DecisionKind::kFtTie;
  d.rank = rank;
  d.index = pr.next_index;
  d.ctx = ctx;
  pr.log.push_back(std::move(d));
}

void ScheduleOracle::record_claim(int rank, int ctx, bool won) {
  PerRank& pr = ranks_[static_cast<std::size_t>(rank)];
  Decision d;
  d.kind = DecisionKind::kClaim;
  d.rank = rank;
  d.index = pr.next_index;
  d.ctx = ctx;
  d.claim_won = won;
  pr.log.push_back(std::move(d));
}

std::vector<Decision> ScheduleOracle::log() const {
  std::vector<Decision> out;
  for (const PerRank& pr : ranks_) {
    out.insert(out.end(), pr.log.begin(), pr.log.end());
  }
  return out;
}

std::uint64_t ScheduleOracle::decision_count(int rank) const {
  return ranks_[static_cast<std::size_t>(rank)].next_index;
}

std::string ScheduleOracle::identity() const {
  if (schedule_.randomize) {
    return "schedule=fuzz seed=" + std::to_string(schedule_.fuzz_seed);
  }
  if (schedule_.pins.empty()) return "schedule=default";
  return "schedule=pinned pins=" + std::to_string(schedule_.pins.size());
}

// ---- Reproducer files -------------------------------------------------------

namespace {

constexpr const char* kHeader = "# omb-x schedule reproducer v1";

std::uint64_t parse_u64_field(const std::string& what, const std::string& s) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("schedule file: bad " + what + " '" + s +
                                "'");
  }
  try {
    return std::stoull(s);
  } catch (const std::exception&) {
    throw std::invalid_argument("schedule file: bad " + what + " '" + s +
                                "'");
  }
}

int parse_int_field(const std::string& what, const std::string& s) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("schedule file: bad " + what + " '" + s +
                                "'");
  }
  if (pos != s.size()) {
    throw std::invalid_argument("schedule file: bad " + what + " '" + s +
                                "'");
  }
  return v;
}

}  // namespace

void write_schedule(std::ostream& os, const Schedule& s) {
  os << kHeader << "\n";
  if (s.nranks > 0) os << "meta nranks " << s.nranks << "\n";
  if (s.randomize) os << "meta randomize 1\n";
  if (s.fuzz_seed != 0) os << "meta fuzz-seed " << s.fuzz_seed << "\n";
  if (!s.note.empty()) os << "meta note " << s.note << "\n";
  for (const Pin& p : s.pins) {
    os << "pin " << p.rank << " " << p.index << " " << p.src << " " << p.tag
       << "\n";
  }
}

Schedule parse_schedule(std::istream& is) {
  Schedule s;
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::invalid_argument(
        "schedule file: missing header '" + std::string(kHeader) + "'");
  }
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "meta") {
      std::string key;
      ls >> key;
      if (key == "nranks") {
        std::string v;
        ls >> v;
        s.nranks = parse_int_field("nranks", v);
        if (s.nranks < 0) {
          throw std::invalid_argument("schedule file: bad nranks '" + v + "'");
        }
      } else if (key == "randomize") {
        std::string v;
        ls >> v;
        s.randomize = parse_int_field("randomize", v) != 0;
      } else if (key == "fuzz-seed") {
        std::string v;
        ls >> v;
        s.fuzz_seed = parse_u64_field("fuzz-seed", v);
      } else if (key == "note") {
        std::getline(ls, s.note);
        const std::size_t first = s.note.find_first_not_of(' ');
        s.note = first == std::string::npos ? "" : s.note.substr(first);
      } else {
        throw std::invalid_argument("schedule file: unknown meta key '" +
                                    key + "'");
      }
    } else if (kw == "pin") {
      std::string r, i, src, tag;
      ls >> r >> i >> src >> tag;
      Pin p;
      p.rank = parse_int_field("pin rank", r);
      p.index = parse_u64_field("pin index", i);
      p.src = parse_int_field("pin src", src);
      p.tag = parse_int_field("pin tag", tag);
      s.pins.push_back(p);
    } else {
      throw std::invalid_argument("schedule file: unknown directive '" + kw +
                                  "'");
    }
  }
  std::sort(s.pins.begin(), s.pins.end(), pin_order);
  return s;
}

void save_schedule(const Schedule& s, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write schedule file: " + path);
  write_schedule(os, s);
}

Schedule load_schedule(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::invalid_argument("cannot read schedule file: " + path);
  return parse_schedule(is);
}

}  // namespace ombx::explore
