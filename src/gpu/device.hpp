// Simulated CUDA device.
//
// The paper's GPU experiments need V100s; this machine has none.  We model
// the device as (a) a bounded memory allocator whose buffers are backed by
// host memory (so payloads remain real and verifiable), and (b) a cost
// model for kernel launches, stream synchronization and PCIe copies.  The
// CUDA-aware MPI wire path itself (GPUDirect) is priced by the cluster's
// gpu_inter_node link model in ombx::net.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "net/cluster.hpp"
#include "simtime/clock.hpp"

namespace ombx::gpu {

using simtime::usec_t;

class Device;

/// RAII device allocation.  Backed by host memory; data() is the simulated
/// device pointer (it participates in the CUDA Array Interface).
/// A synthetic DeviceBuffer (see Device::allocate) reserves logical device
/// memory but no host backing — used for at-scale runs.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  ~DeviceBuffer();

  DeviceBuffer(DeviceBuffer&&) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&&) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  [[nodiscard]] std::byte* data() noexcept {
    return backing_.empty() ? nullptr : backing_.data();
  }
  [[nodiscard]] const std::byte* data() const noexcept {
    return backing_.empty() ? nullptr : backing_.data();
  }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] bool valid() const noexcept { return device_ != nullptr; }

 private:
  friend class Device;
  DeviceBuffer(Device* d, std::size_t bytes, bool synthetic);

  Device* device_ = nullptr;
  std::size_t bytes_ = 0;
  std::vector<std::byte> backing_;
};

/// Out-of-device-memory condition (the V100 has 32 GB).
class OutOfDeviceMemory : public std::bad_alloc {
 public:
  const char* what() const noexcept override {
    return "simulated GPU out of device memory";
  }
};

class Device {
 public:
  Device(int id, net::GpuModel model) : id_(id), model_(std::move(model)) {}

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] const net::GpuModel& model() const noexcept { return model_; }

  /// Allocate device memory; throws OutOfDeviceMemory beyond capacity.
  /// `synthetic` buffers consume logical capacity but no host RAM.
  [[nodiscard]] DeviceBuffer allocate(std::size_t bytes,
                                      bool synthetic = false);

  [[nodiscard]] std::size_t used_bytes() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return model_.device_memory_bytes;
  }

  // ---- Cost model ----------------------------------------------------------

  [[nodiscard]] usec_t h2d_time(std::size_t bytes) const {
    return model_.h2d.transfer_us(bytes);
  }
  [[nodiscard]] usec_t d2h_time(std::size_t bytes) const {
    return model_.d2h.transfer_us(bytes);
  }
  [[nodiscard]] usec_t d2d_time(std::size_t bytes) const {
    return model_.d2d.transfer_us(bytes);
  }
  [[nodiscard]] usec_t kernel_launch_time() const noexcept {
    return model_.kernel_launch_us;
  }
  [[nodiscard]] usec_t event_sync_time() const noexcept {
    return model_.event_sync_us;
  }

 private:
  friend class DeviceBuffer;
  void release(std::size_t bytes) noexcept {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int id_;
  net::GpuModel model_;
  std::atomic<std::size_t> used_{0};
};

}  // namespace ombx::gpu
