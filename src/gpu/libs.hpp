// Simulated GPU array libraries: CuPy, PyCUDA, Numba.
//
// All three expose the CUDA Array Interface (CAI) — the protocol mpi4py
// uses to discover device pointers.  The libraries differ in how much
// Python-side work the CAI export costs (attribute lookup depth, dict
// construction, stream handling); the paper measures Numba at roughly 2x
// the overhead of CuPy/PyCUDA.  Per-call cost *values* live with the other
// calibrated constants in pylayer::PyCosts; here we model the structure.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gpu/device.hpp"

namespace ombx::gpu {

/// Which simulated Python GPU library owns an array.
enum class GpuLib { kCupy, kPycuda, kNumba };

[[nodiscard]] std::string to_string(GpuLib lib);

/// The __cuda_array_interface__ dict, as defined by Numba's CAI v3.
struct CudaArrayInterface {
  const void* ptr = nullptr;
  bool read_only = false;
  std::vector<std::size_t> shape;
  std::string typestr;  ///< e.g. "|u1", "<f4", "<f8"
  int version = 3;
};

/// A device array owned by one of the simulated libraries.
/// Mirrors the small API surface OMB-Py touches: allocation, fill,
/// element access for validation, and the CAI export.
class GpuArray {
 public:
  GpuArray(GpuLib lib, Device& dev, std::size_t bytes, std::string typestr,
           bool synthetic = false)
      : lib_(lib),
        buf_(dev.allocate(bytes, synthetic)),
        typestr_(std::move(typestr)) {}

  [[nodiscard]] GpuLib lib() const noexcept { return lib_; }
  [[nodiscard]] std::byte* data() noexcept { return buf_.data(); }
  [[nodiscard]] const std::byte* data() const noexcept { return buf_.data(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return buf_.bytes(); }

  /// Export the CUDA Array Interface (what mpi4py reads on every call).
  [[nodiscard]] CudaArrayInterface cuda_array_interface() const;

 private:
  GpuLib lib_;
  DeviceBuffer buf_;
  std::string typestr_;
};

/// Factory helpers mirroring each library's allocation idiom.
[[nodiscard]] GpuArray cupy_empty(Device& dev, std::size_t bytes,
                                  bool synthetic = false);
[[nodiscard]] GpuArray pycuda_empty(Device& dev, std::size_t bytes,
                                    bool synthetic = false);
[[nodiscard]] GpuArray numba_device_array(Device& dev, std::size_t bytes,
                                          bool synthetic = false);

}  // namespace ombx::gpu
