#include "gpu/libs.hpp"

namespace ombx::gpu {

std::string to_string(GpuLib lib) {
  switch (lib) {
    case GpuLib::kCupy: return "cupy";
    case GpuLib::kPycuda: return "pycuda";
    case GpuLib::kNumba: return "numba";
  }
  return "unknown";
}

CudaArrayInterface GpuArray::cuda_array_interface() const {
  CudaArrayInterface cai;
  cai.ptr = static_cast<const void*>(data());
  cai.read_only = false;
  cai.shape = {bytes()};
  cai.typestr = typestr_;
  cai.version = 3;
  return cai;
}

GpuArray cupy_empty(Device& dev, std::size_t bytes, bool synthetic) {
  return GpuArray(GpuLib::kCupy, dev, bytes, "|u1", synthetic);
}

GpuArray pycuda_empty(Device& dev, std::size_t bytes, bool synthetic) {
  return GpuArray(GpuLib::kPycuda, dev, bytes, "|u1", synthetic);
}

GpuArray numba_device_array(Device& dev, std::size_t bytes, bool synthetic) {
  return GpuArray(GpuLib::kNumba, dev, bytes, "|u1", synthetic);
}

}  // namespace ombx::gpu
