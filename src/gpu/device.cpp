#include "gpu/device.hpp"

#include <utility>

namespace ombx::gpu {

DeviceBuffer::DeviceBuffer(Device* d, std::size_t bytes, bool synthetic)
    : device_(d), bytes_(bytes) {
  if (!synthetic && bytes > 0) backing_.resize(bytes);
}

DeviceBuffer::~DeviceBuffer() {
  if (device_ != nullptr) device_->release(bytes_);
}

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : device_(std::exchange(other.device_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      backing_(std::move(other.backing_)) {}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    if (device_ != nullptr) device_->release(bytes_);
    device_ = std::exchange(other.device_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    backing_ = std::move(other.backing_);
  }
  return *this;
}

DeviceBuffer Device::allocate(std::size_t bytes, bool synthetic) {
  // Reserve capacity first; roll back on overflow.
  const std::size_t prev = used_.fetch_add(bytes, std::memory_order_relaxed);
  if (prev + bytes > capacity_bytes()) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    throw OutOfDeviceMemory();
  }
  return DeviceBuffer(this, bytes, synthetic);
}

}  // namespace ombx::gpu
