#include "bench_suite/suite.hpp"
#include "core/runner.hpp"
#include "mpi/error.hpp"
#include "mpi/request.hpp"

namespace ombx::bench_suite {

std::vector<core::Row> run_bandwidth(const core::SuiteConfig& cfg) {
  OMBX_REQUIRE(cfg.nranks == 2, "osu_bw runs on exactly 2 ranks");
  mpi::World world(core::make_world_config(cfg));
  core::DevicePool pool(cfg);
  std::vector<core::Row> rows;

  world.run([&](mpi::Comm& comm) {
    core::RankEnv env(comm, cfg, pool);
    pylayer::PyComm& py = env.py();
    auto sbuf = env.make(cfg.opts.max_size);
    auto rbuf = env.make(cfg.opts.max_size);
    auto ack = env.make(4);
    sbuf->fill(0x22);

    const bool pickle = cfg.mode == core::Mode::kPythonPickle;
    const int me = comm.rank();
    const int peer = 1 - me;
    const int window = cfg.opts.window_size;
    constexpr int kTag = 2;
    constexpr int kAckTag = 3;

    for (const std::size_t size : cfg.opts.sizes()) {
      const int iters = cfg.opts.iters_for(size);
      const int warmup = cfg.opts.warmup_for(size);
      mpi::barrier(comm);

      simtime::usec_t t0 = 0.0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) {
          mpi::barrier(comm);
          t0 = comm.now();
        }
        if (me == 0) {
          if (pickle) {
            // mpi4py's lowercase API serializes per call; blocking sends
            // model its stream (this is what caps pickle bandwidth).
            for (int w = 0; w < window; ++w) {
              py.send_pickled(*sbuf, size, peer, kTag);
            }
          } else {
            std::vector<mpi::Request> reqs;
            reqs.reserve(static_cast<std::size_t>(window));
            for (int w = 0; w < window; ++w) {
              reqs.push_back(py.Isend(*sbuf, size, peer, kTag));
            }
            (void)mpi::Request::wait_all(reqs);
          }
          (void)py.Recv(*ack, 4, peer, kAckTag);
        } else {
          if (pickle) {
            for (int w = 0; w < window; ++w) {
              (void)py.recv_pickled(*rbuf, peer, kTag);
            }
          } else {
            std::vector<mpi::Request> reqs;
            reqs.reserve(static_cast<std::size_t>(window));
            for (int w = 0; w < window; ++w) {
              reqs.push_back(py.Irecv(*rbuf, size, peer, kTag));
            }
            (void)mpi::Request::wait_all(reqs);
          }
          py.Send(*ack, 4, peer, kAckTag);
        }
      }
      const double elapsed = comm.now() - t0;
      // MB/s with the OSU convention (1 MB = 1e6 bytes; B/us == MB/s).
      const double bw = static_cast<double>(size) *
                        static_cast<double>(window) *
                        static_cast<double>(iters) / elapsed;
      if (me == 0) {
        rows.push_back(core::Row{size, core::Stats{bw, bw, bw}});
      }
    }
  });
  core::export_observability(world, cfg, "bandwidth");
  return rows;
}

}  // namespace ombx::bench_suite
