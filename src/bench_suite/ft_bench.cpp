// Resilient benchmark mode (omb_run --ft): run a collective while the
// fault plan kills ranks mid-run, recover via ULFM revoke + agree +
// shrink, and time the post-shrink collective against the healthy
// baseline.  Everything reported is virtual time, so the resilience
// table is byte-identical across same-seed runs.
//
// With --ckpt-interval the same run additionally takes coordinated
// buddy-replicated checkpoints during the spin phase (ckpt/ckpt.hpp) and
// recovery extends to the full detect -> agree -> shrink -> restore ->
// recompute breakdown: survivors roll back to the last complete
// generation, adopt the dead ranks' buddy copies, and re-run the
// iterations the rollback discarded.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bench_suite/suite.hpp"
#include "ckpt/ckpt.hpp"
#include "core/runner.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"

namespace ombx::bench_suite {

namespace {

/// One iteration of the benchmarked collective on `comm`.  The FT suite
/// sticks to the rootless/root-0 collectives the recovery story needs;
/// buffers are sized for the largest case (allgather) up front.
void run_once(mpi::Comm& comm, CollBench which, std::size_t size,
              std::byte* send, std::byte* recv) {
  const mpi::ConstView sv{send, size, net::MemSpace::kHost};
  const mpi::MutView rv{recv, size * static_cast<std::size_t>(comm.size()),
                        net::MemSpace::kHost};
  switch (which) {
    case CollBench::kAllreduce:
      mpi::allreduce(comm, sv, mpi::MutView{recv, size, net::MemSpace::kHost},
                     mpi::Datatype::kFloat, mpi::Op::kSum);
      break;
    case CollBench::kBcast:
      mpi::bcast(comm, mpi::MutView{recv, size, net::MemSpace::kHost},
                 /*root=*/0);
      break;
    case CollBench::kBarrier:
      mpi::barrier(comm);
      break;
    case CollBench::kAllgather:
      mpi::allgather(comm, sv, rv);
      break;
    default:
      OMBX_REQUIRE(false,
                   "--ft supports allreduce, bcast, barrier and allgather");
  }
}

/// Survivor-side reduction helper: allreduce one double over `comm`.
double reduce_double(mpi::Comm& comm, double v, mpi::Op op) {
  double out = 0.0;
  mpi::allreduce(comm,
                 mpi::ConstView{reinterpret_cast<const std::byte*>(&v),
                                sizeof(v), net::MemSpace::kHost},
                 mpi::MutView{reinterpret_cast<std::byte*>(&out), sizeof(out),
                              net::MemSpace::kHost},
                 mpi::Datatype::kDouble, op);
  return out;
}

}  // namespace

core::FtReport run_ft_collective(const core::SuiteConfig& cfg,
                                 CollBench which) {
  OMBX_REQUIRE(cfg.nranks >= 3,
               "resilient mode needs at least 3 ranks (2 must survive)");
  OMBX_REQUIRE(cfg.ft.enabled, "run_ft_collective requires cfg.ft.enabled");
  OMBX_REQUIRE(!cfg.fault.kills.empty(),
               "resilient mode needs at least one --kill in the fault plan");

  mpi::World world(core::make_world_config(cfg));
  core::FtReport report;
  report.nranks = cfg.nranks;
  report.ckpt_enabled = cfg.ckpt.enabled;
  std::mutex report_mutex;

  const std::size_t size = cfg.opts.max_size;
  const int iters = std::max(1, cfg.opts.iterations);
  // The spin phase runs until the failure surfaces; kills are clock-driven
  // so this terminates, but keep a generous bound as a programming-error
  // backstop (the watchdog covers genuine hangs).
  constexpr int kMaxSpins = 1 << 20;

  // World-shared snapshot store (primary copies + buddy replicas), built
  // only when checkpointing is on — zero perturbation otherwise.
  std::unique_ptr<ckpt::Store> store;
  if (cfg.ckpt.enabled) store = std::make_unique<ckpt::Store>(cfg.nranks);

  world.run([&](mpi::Comm& comm) {
    std::vector<std::byte> send(size, std::byte{0x55});
    std::vector<std::byte> recv(size *
                                static_cast<std::size_t>(comm.size()));

    // Checkpointed application state: the iteration cursor plus the send
    // buffer (the "model" a real application would protect).  A restore
    // rewinds both to the snapshot cut.
    std::uint64_t iter_done = 0;
    std::unique_ptr<ckpt::Checkpointer> ck;
    if (store) {
      ck = std::make_unique<ckpt::Checkpointer>(comm, *store, cfg.ckpt);
      ck->register_region("iter_done", &iter_done, sizeof(iter_done));
      ck->register_region("send_buffer", send.data(), send.size());
    }

    double healthy = 0.0;
    double detect_local = -1.0;
    try {
      // Healthy baseline at max size (pre-failure).
      mpi::barrier(comm);
      const simtime::usec_t t0 = comm.now();
      for (int i = 0; i < iters; ++i) {
        run_once(comm, which, size, send.data(), recv.data());
      }
      healthy = (comm.now() - t0) / static_cast<double>(iters);

      // Spin until the planned kill surfaces as a ProcFailedError (or, on
      // ranks that detect it second-hand, a RevokedError from the first
      // detector's revoke()).  Under --ckpt-interval every iteration also
      // offers the coordinated trigger a chance to checkpoint; a rank that
      // dies mid-checkpoint leaves that generation incomplete and restore
      // falls back to the previous one.
      for (int i = 0; i < kMaxSpins; ++i) {
        run_once(comm, which, size, send.data(), recv.data());
        ++iter_done;
        if (ck) (void)ck->maybe_checkpoint();
      }
      OMBX_REQUIRE(false, "fault plan never killed a rank during the spin");
    } catch (const ft::ProcFailedError& e) {
      detect_local = comm.now() - e.at_time_us();
    } catch (const ft::RevokedError&) {
      // Second-hand detection; this rank contributes no latency sample.
    }
    const std::uint64_t iter_at_failure = iter_done;

    // ULFM recovery: revoke the broken communicator so every still-blocked
    // peer unwinds, agree on continuing, acknowledge the failures, and
    // shrink onto the survivors.  The ack comes after agree() on purpose:
    // the agreement completes only once every member arrived or died, so
    // the failure snapshot below is complete and deterministic.
    comm.revoke();

    const simtime::usec_t agree_t0 = comm.now();
    const mpi::Comm::AgreeOutcome agreed = comm.agree(1u);
    const double agree_cost = comm.now() - agree_t0;
    OMBX_REQUIRE(agreed.bits == 1u, "survivors failed to agree on recovery");

    comm.failure_ack();
    const std::vector<int> failed = comm.get_failed();

    const simtime::usec_t shrink_t0 = comm.now();
    mpi::Comm alive = comm.shrink();
    const double shrink_cost = alive.now() - shrink_t0;

    // Checkpoint restore: survivors agree on the last complete generation,
    // rewind their own regions, and adopt the dead ranks' buddy copies;
    // then re-run the iterations the rollback discarded (recompute).
    double restore_cost = 0.0;
    double recompute_cost = 0.0;
    double rolled_back = 0.0;
    int restored_gen = -1;
    if (ck) {
      const simtime::usec_t restore_t0 = alive.now();
      const ckpt::Checkpointer::RestoreResult rr = ck->restore(alive, failed);
      restore_cost = alive.now() - restore_t0;
      restored_gen = rr.generation;

      // The frontier is the furthest any survivor got before the failure;
      // after rollback every survivor re-runs up to it so the world state
      // is back where the failure interrupted it.  Recompute only runs
      // after a successful rollback: the rewind is what equalizes the
      // survivors' iteration cursors (a coordinated checkpoint commits the
      // same cursor on every rank), so the loop below issues the same
      // number of collectives everywhere.  With no complete generation
      // the cursors still differ by up to one and recompute is skipped
      // (cold restart is the caller's policy).
      if (restored_gen >= 0) {
        const double frontier = reduce_double(
            alive, static_cast<double>(iter_at_failure), mpi::Op::kMax);
        rolled_back =
            std::max(0.0, frontier - static_cast<double>(iter_done));
        const simtime::usec_t recompute_t0 = alive.now();
        while (static_cast<double>(iter_done) < frontier) {
          run_once(alive, which, size, send.data(), recv.data());
          ++iter_done;
        }
        recompute_cost = alive.now() - recompute_t0;
      }
    }

    // Post-shrink timed phase on the survivor communicator.
    std::vector<std::byte> recv2(size *
                                 static_cast<std::size_t>(alive.size()));
    mpi::barrier(alive);
    const simtime::usec_t t1 = alive.now();
    for (int i = 0; i < iters; ++i) {
      run_once(alive, which, size, send.data(), recv2.data());
    }
    const double recovered = (alive.now() - t1) / static_cast<double>(iters);

    // Deterministic cross-rank reductions: detection latency is the
    // earliest first-hand observation; costs and latencies are the
    // slowest participant's (the completion the user would see).
    const double detect =
        reduce_double(alive, detect_local >= 0.0 ? detect_local : 1e300,
                      mpi::Op::kMin);
    const double agree_max = reduce_double(alive, agree_cost, mpi::Op::kMax);
    const double shrink_max = reduce_double(alive, shrink_cost, mpi::Op::kMax);
    const double healthy_max = reduce_double(alive, healthy, mpi::Op::kMax);
    const double recovered_max = reduce_double(alive, recovered, mpi::Op::kMax);

    double ckpt_cost_max = 0.0;
    double restore_max = 0.0;
    double recompute_max = 0.0;
    if (ck) {
      ckpt_cost_max = reduce_double(alive, ck->mean_cost_us(), mpi::Op::kMax);
      restore_max = reduce_double(alive, restore_cost, mpi::Op::kMax);
      recompute_max = reduce_double(alive, recompute_cost, mpi::Op::kMax);
    }

    if (alive.rank() == 0) {
      std::lock_guard<std::mutex> lk(report_mutex);
      report.survivors = alive.size();
      report.failed = failed;
      report.detect_latency_us = detect < 1e300 ? detect : 0.0;
      report.agree_cost_us = agree_max;
      report.shrink_cost_us = shrink_max;
      report.healthy_latency_us = healthy_max;
      report.recovered_latency_us = recovered_max;
      if (ck) {
        report.ckpt_count = ck->checkpoints();
        report.ckpt_generation = restored_gen;
        report.rolled_back_iters = static_cast<int>(rolled_back);
        report.ckpt_interval_us = ck->resolved_interval_us();
        report.ckpt_cost_us = ckpt_cost_max;
        report.restore_cost_us = restore_max;
        report.recompute_cost_us = recompute_max;
      }
    }
  });

  core::export_observability(world, cfg, "ft_" + to_string(which));
  return report;
}

}  // namespace ombx::bench_suite
