// Resilient benchmark mode (omb_run --ft): run a collective while the
// fault plan kills ranks mid-run, recover via ULFM revoke + agree +
// shrink, and time the post-shrink collective against the healthy
// baseline.  Everything reported is virtual time, so the resilience
// table is byte-identical across same-seed runs.
#include <algorithm>
#include <mutex>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/runner.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"

namespace ombx::bench_suite {

namespace {

/// One iteration of the benchmarked collective on `comm`.  The FT suite
/// sticks to the rootless/root-0 collectives the recovery story needs;
/// buffers are sized for the largest case (allgather) up front.
void run_once(mpi::Comm& comm, CollBench which, std::size_t size,
              std::byte* send, std::byte* recv) {
  const mpi::ConstView sv{send, size, net::MemSpace::kHost};
  const mpi::MutView rv{recv, size * static_cast<std::size_t>(comm.size()),
                        net::MemSpace::kHost};
  switch (which) {
    case CollBench::kAllreduce:
      mpi::allreduce(comm, sv, mpi::MutView{recv, size, net::MemSpace::kHost},
                     mpi::Datatype::kFloat, mpi::Op::kSum);
      break;
    case CollBench::kBcast:
      mpi::bcast(comm, mpi::MutView{recv, size, net::MemSpace::kHost},
                 /*root=*/0);
      break;
    case CollBench::kBarrier:
      mpi::barrier(comm);
      break;
    case CollBench::kAllgather:
      mpi::allgather(comm, sv, rv);
      break;
    default:
      OMBX_REQUIRE(false,
                   "--ft supports allreduce, bcast, barrier and allgather");
  }
}

/// Survivor-side reduction helper: allreduce one double over `comm`.
double reduce_double(mpi::Comm& comm, double v, mpi::Op op) {
  double out = 0.0;
  mpi::allreduce(comm,
                 mpi::ConstView{reinterpret_cast<const std::byte*>(&v),
                                sizeof(v), net::MemSpace::kHost},
                 mpi::MutView{reinterpret_cast<std::byte*>(&out), sizeof(out),
                              net::MemSpace::kHost},
                 mpi::Datatype::kDouble, op);
  return out;
}

}  // namespace

core::FtReport run_ft_collective(const core::SuiteConfig& cfg,
                                 CollBench which) {
  OMBX_REQUIRE(cfg.nranks >= 3,
               "resilient mode needs at least 3 ranks (2 must survive)");
  OMBX_REQUIRE(cfg.ft.enabled, "run_ft_collective requires cfg.ft.enabled");
  OMBX_REQUIRE(!cfg.fault.kills.empty(),
               "resilient mode needs at least one --kill in the fault plan");

  mpi::World world(core::make_world_config(cfg));
  core::FtReport report;
  report.nranks = cfg.nranks;
  std::mutex report_mutex;

  const std::size_t size = cfg.opts.max_size;
  const int iters = std::max(1, cfg.opts.iterations);
  // The spin phase runs until the failure surfaces; kills are clock-driven
  // so this terminates, but keep a generous bound as a programming-error
  // backstop (the watchdog covers genuine hangs).
  constexpr int kMaxSpins = 1 << 20;

  world.run([&](mpi::Comm& comm) {
    std::vector<std::byte> send(size, std::byte{0x55});
    std::vector<std::byte> recv(size *
                                static_cast<std::size_t>(comm.size()));

    double healthy = 0.0;
    double detect_local = -1.0;
    try {
      // Healthy baseline at max size (pre-failure).
      mpi::barrier(comm);
      const simtime::usec_t t0 = comm.now();
      for (int i = 0; i < iters; ++i) {
        run_once(comm, which, size, send.data(), recv.data());
      }
      healthy = (comm.now() - t0) / static_cast<double>(iters);

      // Spin until the planned kill surfaces as a ProcFailedError (or, on
      // ranks that detect it second-hand, a RevokedError from the first
      // detector's revoke()).
      for (int i = 0; i < kMaxSpins; ++i) {
        run_once(comm, which, size, send.data(), recv.data());
      }
      OMBX_REQUIRE(false, "fault plan never killed a rank during the spin");
    } catch (const ft::ProcFailedError& e) {
      detect_local = comm.now() - e.at_time_us();
    } catch (const ft::RevokedError&) {
      // Second-hand detection; this rank contributes no latency sample.
    }

    // ULFM recovery: revoke the broken communicator so every still-blocked
    // peer unwinds, agree on continuing, acknowledge the failures, and
    // shrink onto the survivors.  The ack comes after agree() on purpose:
    // the agreement completes only once every member arrived or died, so
    // the failure snapshot below is complete and deterministic.
    comm.revoke();

    const simtime::usec_t agree_t0 = comm.now();
    const mpi::Comm::AgreeOutcome agreed = comm.agree(1u);
    const double agree_cost = comm.now() - agree_t0;
    OMBX_REQUIRE(agreed.bits == 1u, "survivors failed to agree on recovery");

    comm.failure_ack();
    const std::vector<int> failed = comm.get_failed();

    const simtime::usec_t shrink_t0 = comm.now();
    mpi::Comm alive = comm.shrink();
    const double shrink_cost = alive.now() - shrink_t0;

    // Post-shrink timed phase on the survivor communicator.
    std::vector<std::byte> recv2(size *
                                 static_cast<std::size_t>(alive.size()));
    mpi::barrier(alive);
    const simtime::usec_t t1 = alive.now();
    for (int i = 0; i < iters; ++i) {
      run_once(alive, which, size, send.data(), recv2.data());
    }
    const double recovered = (alive.now() - t1) / static_cast<double>(iters);

    // Deterministic cross-rank reductions: detection latency is the
    // earliest first-hand observation; costs and latencies are the
    // slowest participant's (the completion the user would see).
    const double detect =
        reduce_double(alive, detect_local >= 0.0 ? detect_local : 1e300,
                      mpi::Op::kMin);
    const double agree_max = reduce_double(alive, agree_cost, mpi::Op::kMax);
    const double shrink_max = reduce_double(alive, shrink_cost, mpi::Op::kMax);
    const double healthy_max = reduce_double(alive, healthy, mpi::Op::kMax);
    const double recovered_max = reduce_double(alive, recovered, mpi::Op::kMax);

    if (alive.rank() == 0) {
      std::lock_guard<std::mutex> lk(report_mutex);
      report.survivors = alive.size();
      report.failed = failed;
      report.detect_latency_us = detect < 1e300 ? detect : 0.0;
      report.agree_cost_us = agree_max;
      report.shrink_cost_us = shrink_max;
      report.healthy_latency_us = healthy_max;
      report.recovered_latency_us = recovered_max;
    }
  });

  core::export_observability(world, cfg, "ft_" + to_string(which));
  return report;
}

}  // namespace ombx::bench_suite
