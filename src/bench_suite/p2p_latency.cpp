#include "bench_suite/suite.hpp"
#include "core/runner.hpp"
#include "mpi/error.hpp"

namespace ombx::bench_suite {

std::vector<core::Row> run_latency(const core::SuiteConfig& cfg) {
  OMBX_REQUIRE(cfg.nranks == 2, "osu_latency runs on exactly 2 ranks");
  mpi::World world(core::make_world_config(cfg));
  core::DevicePool pool(cfg);
  std::vector<core::Row> rows;

  world.run([&](mpi::Comm& comm) {
    core::RankEnv env(comm, cfg, pool);
    pylayer::PyComm& py = env.py();
    auto sbuf = env.make(cfg.opts.max_size);
    auto rbuf = env.make(cfg.opts.max_size);
    sbuf->fill(0x11);

    const bool pickle = cfg.mode == core::Mode::kPythonPickle;
    const int me = comm.rank();
    const int peer = 1 - me;
    constexpr int kTag = 1;

    for (const std::size_t size : cfg.opts.sizes()) {
      const int iters = cfg.opts.iters_for(size);
      const int warmup = cfg.opts.warmup_for(size);
      mpi::barrier(comm);

      simtime::usec_t t0 = 0.0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) {
          mpi::barrier(comm);
          t0 = comm.now();
        }
        if (me == 0) {
          if (pickle) {
            py.send_pickled(*sbuf, size, peer, kTag);
            (void)py.recv_pickled(*rbuf, peer, kTag);
          } else {
            py.Send(*sbuf, size, peer, kTag);
            (void)py.Recv(*rbuf, size, peer, kTag);
          }
        } else {
          if (pickle) {
            (void)py.recv_pickled(*rbuf, peer, kTag);
            py.send_pickled(*sbuf, size, peer, kTag);
          } else {
            (void)py.Recv(*rbuf, size, peer, kTag);
            py.Send(*sbuf, size, peer, kTag);
          }
        }
      }
      // Half round-trip, as osu_latency reports.
      const double lat = (comm.now() - t0) / (2.0 * iters);
      if (cfg.opts.validate) {
        OMBX_REQUIRE(rbuf->verify(0x11, size), "latency payload corrupted");
      }
      if (me == 0) {
        rows.push_back(core::Row{size, core::Stats{lat, lat, lat}});
      }
    }
  });
  core::export_observability(world, cfg, "latency");
  return rows;
}

}  // namespace ombx::bench_suite
