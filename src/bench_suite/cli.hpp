// Command-line parsing for the omb_run driver, extracted so malformed
// input is rejected in one hardened place (and unit-testable without
// spawning the binary).
//
// Every numeric flag is parsed with full-consumption checks: "3x" is not
// an int, "-1" is not a seed, "1e" is not a time.  parse_cli throws
// std::invalid_argument with a message naming the offending flag; the
// driver prints it and exits nonzero.
#pragma once

#include <iosfwd>
#include <string>

#include "bench_suite/suite.hpp"
#include "core/options.hpp"

namespace ombx::bench_suite {

/// Everything omb_run's main() needs, fully validated.
struct CliOptions {
  core::SuiteConfig cfg;
  std::string bench;  ///< positional benchmark name (empty for --list/--help)
  bool list = false;
  bool help = false;
  bool csv = false;
  bool json = false;  ///< --json: machine-readable JSON via Table::write_json
  bool ft_mode = false;

  // Campaign mode (src/campaign): drives a spec file instead of one
  // benchmark; the positional benchmark name is absent.
  std::string campaign_spec;  ///< --campaign <file>
  int campaign_workers = 0;   ///< --campaign-workers <n>; 0 = spec's value

  // Schedule-space exploration (explore/explorer.hpp).
  bool explore = false;            ///< --explore: search wildcard schedules
  int explore_budget = 64;         ///< --explore-budget <n>
  std::string explore_mode = "dpor";  ///< --explore-mode <dpor|fuzz>
  std::string explore_out;         ///< --explore-out <file>: reproducer path
  std::string replay_schedule;     ///< --replay-schedule <file>
};

/// Parse omb_run's argv (argv[0] is the program name).  Throws
/// std::invalid_argument on any malformed flag, unknown option, or
/// inconsistent combination (e.g. --kill rank >= --nranks).
[[nodiscard]] CliOptions parse_cli(int argc, const char* const* argv);

/// The omb_run usage text (shared by --help and the no-args path).
void print_usage(std::ostream& os);

/// Benchmark-name lookup for --ft mode (allreduce/bcast/barrier/allgather).
/// Throws std::invalid_argument for unsupported names.
[[nodiscard]] CollBench ft_bench_by_name(const std::string& s);

/// Name -> preset lookups, shared with the campaign engine so a spec file
/// and the command line accept exactly the same vocabulary.  All throw
/// std::invalid_argument for unknown names.
[[nodiscard]] net::ClusterSpec cluster_by_name(const std::string& s);
[[nodiscard]] net::MpiTuning tuning_by_name(const std::string& s);
[[nodiscard]] core::Mode mode_by_name(const std::string& s);
[[nodiscard]] buffers::BufferKind buffer_by_name(const std::string& s);

}  // namespace ombx::bench_suite
