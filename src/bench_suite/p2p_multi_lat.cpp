#include "bench_suite/suite.hpp"
#include "core/runner.hpp"
#include "core/stats.hpp"
#include "mpi/error.hpp"

namespace ombx::bench_suite {

std::vector<core::Row> run_multi_lat(const core::SuiteConfig& cfg) {
  OMBX_REQUIRE(cfg.nranks >= 2 && cfg.nranks % 2 == 0,
               "osu_multi_lat needs an even rank count");
  mpi::World world(core::make_world_config(cfg));
  core::DevicePool pool(cfg);
  std::vector<core::Row> rows;
  core::StatsBoard board(cfg.nranks);

  world.run([&](mpi::Comm& comm) {
    core::RankEnv env(comm, cfg, pool);
    pylayer::PyComm& py = env.py();
    auto sbuf = env.make(cfg.opts.max_size);
    auto rbuf = env.make(cfg.opts.max_size);
    sbuf->fill(0x44);

    // Pair layout as in osu_multi_lat: rank r of the lower half talks to
    // r + nranks/2.
    const int half = comm.size() / 2;
    const int me = comm.rank();
    const bool lower = me < half;
    const int peer = lower ? me + half : me - half;
    constexpr int kTag = 6;

    for (const std::size_t size : cfg.opts.sizes()) {
      const int iters = cfg.opts.iters_for(size);
      const int warmup = cfg.opts.warmup_for(size);
      mpi::barrier(comm);

      simtime::usec_t t0 = 0.0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) {
          mpi::barrier(comm);
          t0 = comm.now();
        }
        if (lower) {
          py.Send(*sbuf, size, peer, kTag);
          (void)py.Recv(*rbuf, size, peer, kTag);
        } else {
          (void)py.Recv(*rbuf, size, peer, kTag);
          py.Send(*sbuf, size, peer, kTag);
        }
      }
      const double lat = (comm.now() - t0) / (2.0 * iters);
      board.deposit(me, lat);
      mpi::barrier(comm);  // physical rendezvous: all deposits visible
      if (me == 0) {
        rows.push_back(core::Row{size, board.compute()});
      }
    }
  });
  core::export_observability(world, cfg, "multi_lat");
  return rows;
}

}  // namespace ombx::bench_suite
