#include "bench_suite/suite.hpp"
#include "core/runner.hpp"
#include "mpi/error.hpp"
#include "mpi/nbc.hpp"

namespace ombx::bench_suite {

std::string to_string(NbcBench b) {
  switch (b) {
    case NbcBench::kIallreduce: return "iallreduce";
    case NbcBench::kIallgather: return "iallgather";
    case NbcBench::kIbcast: return "ibcast";
    case NbcBench::kIalltoall: return "ialltoall";
    case NbcBench::kIbarrier: return "ibarrier";
  }
  return "unknown";
}

namespace {

mpi::CollRequest post(NbcBench which, pylayer::PyComm& py,
                      mpi::Comm& comm, buffers::Buffer& sbuf,
                      buffers::Buffer& rbuf, std::size_t size,
                      mpi::Datatype dt) {
  (void)py;  // NBC is exercised at the substrate level (no mpi4py path yet)
  switch (which) {
    case NbcBench::kIallreduce:
      return mpi::iallreduce(comm, mpi::ConstView{sbuf.data(), size},
                             mpi::MutView{rbuf.data(), size}, dt,
                             mpi::Op::kSum);
    case NbcBench::kIallgather:
      return mpi::iallgather(
          comm, mpi::ConstView{sbuf.data(), size},
          mpi::MutView{rbuf.data(),
                       size * static_cast<std::size_t>(comm.size())});
    case NbcBench::kIbcast:
      return mpi::ibcast(comm, mpi::MutView{sbuf.data(), size}, 0);
    case NbcBench::kIalltoall:
      return mpi::ialltoall(
          comm,
          mpi::ConstView{sbuf.data(),
                         size * static_cast<std::size_t>(comm.size())},
          mpi::MutView{rbuf.data(),
                       size * static_cast<std::size_t>(comm.size())});
    case NbcBench::kIbarrier:
      return mpi::ibarrier(comm);
  }
  throw mpi::Error("unknown NBC benchmark");
}

}  // namespace

std::vector<NbcRow> run_nbc(const core::SuiteConfig& cfg, NbcBench which) {
  OMBX_REQUIRE(cfg.nranks >= 2, "NBC benchmarks need at least 2 ranks");
  mpi::World world(core::make_world_config(cfg));
  core::DevicePool pool(cfg);
  std::vector<NbcRow> rows;
  core::StatsBoard pure_board(cfg.nranks);
  core::StatsBoard total_board(cfg.nranks);

  world.run([&](mpi::Comm& comm) {
    core::RankEnv env(comm, cfg, pool);
    const auto n = static_cast<std::size_t>(comm.size());
    auto sbuf = env.make(n * cfg.opts.max_size);
    auto rbuf = env.make(n * cfg.opts.max_size);
    sbuf->fill(0x42);

    const auto sizes = which == NbcBench::kIbarrier
                           ? std::vector<std::size_t>{0}
                           : cfg.opts.sizes();
    for (const std::size_t size : sizes) {
      const int iters = cfg.opts.iters_for(size);
      const int warmup = cfg.opts.warmup_for(size);
      const mpi::Datatype dt =
          size % 4 == 0 ? mpi::Datatype::kFloat : mpi::Datatype::kByte;

      // Phase 1: pure (post + immediate wait) latency.
      mpi::barrier(comm);
      simtime::usec_t t0 = 0.0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) {
          mpi::barrier(comm);
          t0 = comm.now();
        }
        post(which, env.py(), comm, *sbuf, *rbuf, size, dt).wait();
      }
      const double t_pure = (comm.now() - t0) / iters;
      pure_board.deposit(comm.rank(), t_pure);
      mpi::barrier(comm);

      // Phase 2: post, overlap-candidate compute of ~t_pure, then wait —
      // OSU's osu_i<coll> overlap methodology.
      const double flops_for_pure =
          t_pure * comm.net().cluster().compute.flops_per_us;
      mpi::barrier(comm);
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) {
          mpi::barrier(comm);
          t0 = comm.now();
        }
        mpi::CollRequest req =
            post(which, env.py(), comm, *sbuf, *rbuf, size, dt);
        comm.charge_flops(flops_for_pure);  // "application compute"
        req.wait();
      }
      const double t_total = (comm.now() - t0) / iters;
      total_board.deposit(comm.rank(), t_total);
      mpi::barrier(comm);

      if (comm.rank() == 0) {
        const double pure = pure_board.compute().avg;
        const double total = total_board.compute().avg;
        const double t_cpu = flops_for_pure /
                             comm.net().cluster().compute.flops_per_us;
        const double overlap =
            std::max(0.0, 100.0 * (1.0 - (total - t_cpu) / pure));
        rows.push_back(NbcRow{size, pure, total, overlap});
      }
    }
  });
  core::export_observability(world, cfg, "nbc/" + to_string(which));
  return rows;
}

}  // namespace ombx::bench_suite
