#include <memory>

#include "bench_suite/suite.hpp"
#include "ckpt/ckpt.hpp"
#include "core/runner.hpp"
#include "core/stats.hpp"
#include "mpi/error.hpp"

namespace ombx::bench_suite {

std::string to_string(CollBench b) {
  switch (b) {
    case CollBench::kAllgather: return "allgather";
    case CollBench::kAllreduce: return "allreduce";
    case CollBench::kAlltoall: return "alltoall";
    case CollBench::kBarrier: return "barrier";
    case CollBench::kBcast: return "bcast";
    case CollBench::kGather: return "gather";
    case CollBench::kReduce: return "reduce";
    case CollBench::kReduceScatter: return "reduce_scatter";
    case CollBench::kScatter: return "scatter";
  }
  return "unknown";
}

namespace {

/// Buffer sizes each collective needs, as multiples of the max message
/// size (n = comm size).
struct BufPlan {
  std::size_t send_factor = 1;  ///< 0 means "no send buffer"
  std::size_t recv_factor = 1;
};

BufPlan plan_for(CollBench b, int n) {
  const auto un = static_cast<std::size_t>(n);
  switch (b) {
    case CollBench::kAllgather: return {1, un};
    case CollBench::kAllreduce: return {1, 1};
    case CollBench::kAlltoall: return {un, un};
    case CollBench::kBarrier: return {0, 0};
    case CollBench::kBcast: return {1, 0};
    case CollBench::kGather: return {1, un};
    case CollBench::kReduce: return {1, 1};
    case CollBench::kReduceScatter: return {un, 1};
    case CollBench::kScatter: return {un, 1};
  }
  return {1, 1};
}

}  // namespace

std::vector<core::Row> run_collective(const core::SuiteConfig& cfg,
                                      CollBench which) {
  OMBX_REQUIRE(cfg.nranks >= 2, "collectives need at least 2 ranks");
  OMBX_REQUIRE(cfg.mode != core::Mode::kPythonPickle,
               "collective pickle benchmarking is not part of OMB-Py v1");
  mpi::World world(core::make_world_config(cfg));
  core::DevicePool pool(cfg);
  std::vector<core::Row> rows;
  core::StatsBoard board(cfg.nranks);

  // Checkpoint overhead mode (--ckpt-interval without --ft, or the
  // campaign's ckpt-interval axis): the latency sweep runs with the
  // coordinated trigger live, so checkpoint cost lands in the measured
  // numbers.  Null — and therefore byte-identical output — when off.
  std::unique_ptr<ckpt::Store> store;
  if (cfg.ckpt.enabled) store = std::make_unique<ckpt::Store>(cfg.nranks);

  world.run([&](mpi::Comm& comm) {
    core::RankEnv env(comm, cfg, pool);
    pylayer::PyComm& py = env.py();
    const BufPlan plan = plan_for(which, comm.size());
    auto sbuf = env.make(plan.send_factor * cfg.opts.max_size);
    auto rbuf = env.make(plan.recv_factor * cfg.opts.max_size);
    sbuf->fill(0x55);

    // One scratch region stands in for protected application state; its
    // size tracks the largest message so replication volume scales with
    // the sweep.
    std::vector<std::byte> ckpt_state(cfg.opts.max_size, std::byte{0x5a});
    std::unique_ptr<ckpt::Checkpointer> ck;
    if (store) {
      ck = std::make_unique<ckpt::Checkpointer>(comm, *store, cfg.ckpt);
      ck->register_region("state", ckpt_state.data(), ckpt_state.size());
    }

    const mpi::Op op = mpi::Op::kSum;
    constexpr int kRoot = 0;

    const auto sizes = which == CollBench::kBarrier
                           ? std::vector<std::size_t>{0}
                           : cfg.opts.sizes();
    for (const std::size_t size : sizes) {
      const int iters = cfg.opts.iters_for(size);
      const int warmup = cfg.opts.warmup_for(size);
      // OSU runs the reducing collectives on MPI_FLOAT buffers; sizes below
      // one float element fall back to byte arithmetic.
      const mpi::Datatype dt =
          size % 4 == 0 ? mpi::Datatype::kFloat : mpi::Datatype::kByte;
      mpi::barrier(comm);

      simtime::usec_t t0 = 0.0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) {
          mpi::barrier(comm);
          t0 = comm.now();
        }
        switch (which) {
          case CollBench::kAllgather:
            py.Allgather(*sbuf, *rbuf, size);
            break;
          case CollBench::kAllreduce:
            py.Allreduce(*sbuf, *rbuf, size, dt, op);
            break;
          case CollBench::kAlltoall:
            py.Alltoall(*sbuf, *rbuf, size);
            break;
          case CollBench::kBarrier:
            py.Barrier();
            break;
          case CollBench::kBcast:
            py.Bcast(*sbuf, size, kRoot);
            break;
          case CollBench::kGather:
            py.Gather(*sbuf, comm.rank() == kRoot ? rbuf.get() : nullptr,
                      size, kRoot);
            break;
          case CollBench::kReduce:
            py.Reduce(*sbuf, comm.rank() == kRoot ? rbuf.get() : nullptr,
                      size, dt, op, kRoot);
            break;
          case CollBench::kReduceScatter:
            py.ReduceScatter(*sbuf, *rbuf, size, dt, op);
            break;
          case CollBench::kScatter:
            py.Scatter(comm.rank() == kRoot ? sbuf.get() : nullptr, *rbuf,
                       size, kRoot);
            break;
        }
        if (ck) (void)ck->maybe_checkpoint();
      }
      const double lat = (comm.now() - t0) / static_cast<double>(iters);
      board.deposit(comm.rank(), lat);
      mpi::barrier(comm);  // physical rendezvous: all deposits visible
      if (comm.rank() == 0) {
        rows.push_back(core::Row{size, board.compute()});
      }
    }
  });
  core::export_observability(world, cfg, to_string(which));
  return rows;
}

}  // namespace ombx::bench_suite
