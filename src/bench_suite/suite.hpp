// The OMB-X benchmark suite: every test from the paper's Table II.
//
//   Point-to-point:        latency, bandwidth, bi-directional bandwidth,
//                          multi-latency
//   Blocking collectives:  allgather, allreduce, alltoall, barrier, bcast,
//                          gather, reduce, reduce_scatter, scatter
//   Vector variants:       allgatherv, alltoallv, gatherv, scatterv
//
// Each function runs one benchmark under a SuiteConfig (cluster, MPI
// library, job geometry, software mode, buffer kind) and returns one Row
// per message size.  Latency rows are in microseconds; bandwidth rows in
// MB/s (OSU convention, 1 MB = 1e6 bytes).
#pragma once

#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"

namespace ombx::bench_suite {

/// osu_latency: blocking ping-pong between ranks 0 and 1; reports the
/// half-round-trip time measured at rank 0.
[[nodiscard]] std::vector<core::Row> run_latency(
    const core::SuiteConfig& cfg);

/// osu_bw: rank 0 streams a window of non-blocking sends per iteration;
/// rank 1 acknowledges each window.
[[nodiscard]] std::vector<core::Row> run_bandwidth(
    const core::SuiteConfig& cfg);

/// osu_bibw: both ranks stream windows simultaneously.
[[nodiscard]] std::vector<core::Row> run_bibw(const core::SuiteConfig& cfg);

/// osu_multi_lat: nranks/2 concurrent ping-pong pairs; reports the average
/// pair latency.
[[nodiscard]] std::vector<core::Row> run_multi_lat(
    const core::SuiteConfig& cfg);

enum class CollBench {
  kAllgather,
  kAllreduce,
  kAlltoall,
  kBarrier,
  kBcast,
  kGather,
  kReduce,
  kReduceScatter,
  kScatter,
};

[[nodiscard]] std::string to_string(CollBench b);

/// osu_<collective>: per-iteration latency averaged over iterations, then
/// avg/min/max across ranks via Reduce (as the paper describes).
[[nodiscard]] std::vector<core::Row> run_collective(
    const core::SuiteConfig& cfg, CollBench which);

/// Resilient mode (omb_run --ft): run `which` while the fault plan kills
/// ranks mid-iteration, recover via revoke/failure_ack/agree/shrink, and
/// re-time the collective on the survivors.  Requires cfg.ft.enabled and
/// a non-empty kill plan; supports allreduce, bcast, barrier, allgather.
/// With cfg.ckpt.enabled the run also takes coordinated buddy-replicated
/// checkpoints (ckpt/ckpt.hpp) and recovery extends to restore (rollback
/// to the last complete generation, buddy fetch for dead ranks) plus
/// recompute of the rolled-back iterations — reported in the extra
/// FtReport fields / resilience-table rows.
[[nodiscard]] core::FtReport run_ft_collective(const core::SuiteConfig& cfg,
                                               CollBench which);

enum class VecBench { kAllgatherv, kAlltoallv, kGatherv, kScatterv };

[[nodiscard]] std::string to_string(VecBench b);

/// osu_<collective>v with uniform counts (the OSU vector tests' shape).
[[nodiscard]] std::vector<core::Row> run_vector(const core::SuiteConfig& cfg,
                                                VecBench which);

/// One-sided benchmarks (OMB's osu_put_latency / osu_get_latency /
/// osu_put_bw) — an OMB-X extension beyond the paper's v1 scope.
enum class RmaBench { kPutLatency, kGetLatency, kPutBw };

[[nodiscard]] std::string to_string(RmaBench b);

[[nodiscard]] std::vector<core::Row> run_rma(const core::SuiteConfig& cfg,
                                             RmaBench which);

/// osu_mbw_mr: multi-pair aggregate bandwidth and message rate.  Returns
/// bandwidth rows (MB/s, summed over pairs); message rate is bandwidth
/// divided by message size.
[[nodiscard]] std::vector<core::Row> run_mbw_mr(const core::SuiteConfig& cfg);

/// Non-blocking collective benchmarks (OMB's osu_i<coll> suite, an OMB-X
/// extension): pure latency, total time with overlap-candidate compute,
/// and the achieved communication/computation overlap percentage.
enum class NbcBench {
  kIallreduce,
  kIallgather,
  kIbcast,
  kIalltoall,
  kIbarrier,
};

[[nodiscard]] std::string to_string(NbcBench b);

struct NbcRow {
  std::size_t size = 0;
  double t_pure_us = 0.0;     ///< post + immediate wait
  double t_total_us = 0.0;    ///< post + compute + wait
  double overlap_pct = 0.0;   ///< OSU overlap formula
};

[[nodiscard]] std::vector<NbcRow> run_nbc(const core::SuiteConfig& cfg,
                                          NbcBench which);

}  // namespace ombx::bench_suite
