// osu_mbw_mr: multiple concurrent pairs stream windows of messages; the
// reported number is the aggregate bandwidth (and, implicitly, message
// rate = bandwidth / size).  Exercises NIC serialization & contention in a
// way single-pair osu_bw cannot.
#include "bench_suite/suite.hpp"
#include "core/runner.hpp"
#include "mpi/error.hpp"
#include "mpi/request.hpp"

namespace ombx::bench_suite {

std::vector<core::Row> run_mbw_mr(const core::SuiteConfig& cfg) {
  OMBX_REQUIRE(cfg.nranks >= 2 && cfg.nranks % 2 == 0,
               "osu_mbw_mr needs an even rank count");
  mpi::World world(core::make_world_config(cfg));
  core::DevicePool pool(cfg);
  std::vector<core::Row> rows;
  core::StatsBoard board(cfg.nranks);
  const int pairs = cfg.nranks / 2;

  world.run([&](mpi::Comm& comm) {
    core::RankEnv env(comm, cfg, pool);
    pylayer::PyComm& py = env.py();
    auto sbuf = env.make(cfg.opts.max_size);
    auto rbuf = env.make(cfg.opts.max_size);
    auto ack = env.make(4);
    sbuf->fill(0x77);

    // Senders are the lower half (as in osu_mbw_mr's default layout).
    const int half = comm.size() / 2;
    const int me = comm.rank();
    const bool sender = me < half;
    const int peer = sender ? me + half : me - half;
    const int window = cfg.opts.window_size;
    constexpr int kTag = 12;
    constexpr int kAckTag = 13;

    for (const std::size_t size : cfg.opts.sizes()) {
      const int iters = cfg.opts.iters_for(size);
      const int warmup = cfg.opts.warmup_for(size);
      mpi::barrier(comm);

      simtime::usec_t t0 = 0.0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) {
          mpi::barrier(comm);
          t0 = comm.now();
        }
        std::vector<mpi::Request> reqs;
        reqs.reserve(static_cast<std::size_t>(window));
        if (sender) {
          for (int w = 0; w < window; ++w) {
            reqs.push_back(py.Isend(*sbuf, size, peer, kTag));
          }
          (void)mpi::Request::wait_all(reqs);
          (void)py.Recv(*ack, 4, peer, kAckTag);
        } else {
          for (int w = 0; w < window; ++w) {
            reqs.push_back(py.Irecv(*rbuf, size, peer, kTag));
          }
          (void)mpi::Request::wait_all(reqs);
          py.Send(*ack, 4, peer, kAckTag);
        }
      }
      // Aggregate: every pair moved size*window*iters bytes in parallel;
      // the slowest pair's elapsed time bounds the aggregate rate.
      board.deposit(me, comm.now() - t0);
      mpi::barrier(comm);  // physical rendezvous: all deposits visible
      if (me == 0) {
        const core::Stats elapsed = board.compute();
        const double bytes_total = static_cast<double>(size) * window *
                                   iters * pairs;
        const double bw = bytes_total / elapsed.max;
        rows.push_back(core::Row{size, core::Stats{bw, bw, bw}});
      }
    }
  });
  core::export_observability(world, cfg, "mbw_mr");
  return rows;
}

}  // namespace ombx::bench_suite
