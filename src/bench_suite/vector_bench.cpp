#include "bench_suite/suite.hpp"
#include "core/runner.hpp"
#include "core/stats.hpp"
#include "mpi/error.hpp"

namespace ombx::bench_suite {

std::string to_string(VecBench b) {
  switch (b) {
    case VecBench::kAllgatherv: return "allgatherv";
    case VecBench::kAlltoallv: return "alltoallv";
    case VecBench::kGatherv: return "gatherv";
    case VecBench::kScatterv: return "scatterv";
  }
  return "unknown";
}

std::vector<core::Row> run_vector(const core::SuiteConfig& cfg,
                                  VecBench which) {
  OMBX_REQUIRE(cfg.nranks >= 2, "vector collectives need at least 2 ranks");
  OMBX_REQUIRE(cfg.mode != core::Mode::kPythonPickle,
               "vector pickle benchmarking is not part of OMB-Py v1");
  mpi::World world(core::make_world_config(cfg));
  core::DevicePool pool(cfg);
  std::vector<core::Row> rows;
  core::StatsBoard board(cfg.nranks);

  world.run([&](mpi::Comm& comm) {
    core::RankEnv env(comm, cfg, pool);
    pylayer::PyComm& py = env.py();
    const auto n = static_cast<std::size_t>(comm.size());
    auto sbuf = env.make(n * cfg.opts.max_size);
    auto rbuf = env.make(n * cfg.opts.max_size);
    sbuf->fill(0x66);
    constexpr int kRoot = 0;

    for (const std::size_t size : cfg.opts.sizes()) {
      const int iters = cfg.opts.iters_for(size);
      const int warmup = cfg.opts.warmup_for(size);
      // Uniform tables, the shape the OSU v-benchmarks use.
      std::vector<std::size_t> counts(n, size);
      std::vector<std::size_t> displs(n);
      for (std::size_t r = 0; r < n; ++r) displs[r] = r * size;
      mpi::barrier(comm);

      simtime::usec_t t0 = 0.0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) {
          mpi::barrier(comm);
          t0 = comm.now();
        }
        switch (which) {
          case VecBench::kAllgatherv:
            py.Allgatherv(*sbuf, *rbuf, counts, displs);
            break;
          case VecBench::kAlltoallv:
            py.Alltoallv(*sbuf, counts, displs, *rbuf, counts, displs);
            break;
          case VecBench::kGatherv:
            py.Gatherv(*sbuf, size,
                       comm.rank() == kRoot ? rbuf.get() : nullptr, counts,
                       displs, kRoot);
            break;
          case VecBench::kScatterv:
            py.Scatterv(comm.rank() == kRoot ? sbuf.get() : nullptr, counts,
                        displs, *rbuf, size, kRoot);
            break;
        }
      }
      const double lat = (comm.now() - t0) / static_cast<double>(iters);
      board.deposit(comm.rank(), lat);
      mpi::barrier(comm);  // physical rendezvous: all deposits visible
      if (comm.rank() == 0) {
        rows.push_back(core::Row{size, board.compute()});
      }
    }
  });
  core::export_observability(world, cfg, to_string(which));
  return rows;
}

}  // namespace ombx::bench_suite
