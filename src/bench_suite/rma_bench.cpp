#include "bench_suite/suite.hpp"
#include "core/runner.hpp"
#include "mpi/error.hpp"
#include "mpi/rma.hpp"

namespace ombx::bench_suite {

std::string to_string(RmaBench b) {
  switch (b) {
    case RmaBench::kPutLatency: return "put_latency";
    case RmaBench::kGetLatency: return "get_latency";
    case RmaBench::kPutBw: return "put_bw";
  }
  return "unknown";
}

std::vector<core::Row> run_rma(const core::SuiteConfig& cfg, RmaBench which) {
  OMBX_REQUIRE(cfg.nranks == 2, "RMA benchmarks run on exactly 2 ranks");
  OMBX_REQUIRE(cfg.payload == mpi::PayloadMode::kReal,
               "RMA requires real payloads");
  mpi::World world(core::make_world_config(cfg));
  core::DevicePool pool(cfg);
  std::vector<core::Row> rows;

  world.run([&](mpi::Comm& comm) {
    core::RankEnv env(comm, cfg, pool);
    auto local = env.make(cfg.opts.max_size);   // origin-side buffer
    auto window = env.make(cfg.opts.max_size);  // exposed memory
    local->fill(0x5A);
    mpi::Win win(comm, window->mview());

    const int me = comm.rank();
    const int peer = 1 - me;
    const int bw_window = cfg.opts.window_size;

    for (const std::size_t size : cfg.opts.sizes()) {
      const int iters = cfg.opts.iters_for(size);
      const int warmup = cfg.opts.warmup_for(size);
      mpi::barrier(comm);

      simtime::usec_t t0 = 0.0;
      for (int i = 0; i < warmup + iters; ++i) {
        if (i == warmup) {
          mpi::barrier(comm);
          t0 = comm.now();
        }
        switch (which) {
          case RmaBench::kPutLatency:
            // osu_put_latency: origin puts, both fence (one epoch per op).
            if (me == 0) {
              win.put(mpi::ConstView{local->data(), size, local->space()},
                      peer, 0);
            }
            win.fence();
            break;
          case RmaBench::kGetLatency:
            if (me == 0) {
              win.get(mpi::MutView{local->data(), size, local->space()},
                      peer, 0);
            }
            win.fence();
            break;
          case RmaBench::kPutBw:
            // osu_put_bw: a window of puts per fence epoch.
            if (me == 0) {
              for (int w = 0; w < bw_window; ++w) {
                win.put(mpi::ConstView{local->data(), size, local->space()},
                        peer, 0);
              }
            }
            win.fence();
            break;
        }
      }
      const double elapsed = comm.now() - t0;
      double value = 0.0;
      if (which == RmaBench::kPutBw) {
        value = static_cast<double>(size) * bw_window * iters / elapsed;
      } else {
        value = elapsed / static_cast<double>(iters);
      }
      if (cfg.opts.validate && which == RmaBench::kPutLatency && me == 1) {
        OMBX_REQUIRE(window->verify(0x5A, size),
                     "put payload corrupted in the window");
      }
      if (me == 0) {
        rows.push_back(core::Row{size, core::Stats{value, value, value}});
      }
    }
  });
  core::export_observability(world, cfg, "rma/" + to_string(which));
  return rows;
}

}  // namespace ombx::bench_suite
