// Registers the full OMB-X suite (the paper's Table II) in the registry.
#include "bench_suite/suite.hpp"

#include <mutex>

#include "core/registry.hpp"

namespace ombx::core {

namespace {

void add_p2p(Registry& r, const std::string& name,
             const std::string& metric, const std::string& desc,
             BenchFn fn) {
  r.add(BenchmarkInfo{name, Category::kPointToPoint, metric, desc,
                      std::move(fn)});
}

void add_coll(Registry& r, bench_suite::CollBench which,
              const std::string& desc) {
  r.add(BenchmarkInfo{
      bench_suite::to_string(which), Category::kBlockingCollective,
      "latency_us", desc, [which](const SuiteConfig& cfg) {
        return bench_suite::run_collective(cfg, which);
      }});
}

void add_vector(Registry& r, bench_suite::VecBench which,
                const std::string& desc) {
  r.add(BenchmarkInfo{
      bench_suite::to_string(which), Category::kVectorCollective,
      "latency_us", desc, [which](const SuiteConfig& cfg) {
        return bench_suite::run_vector(cfg, which);
      }});
}

void add_rma(Registry& r, bench_suite::RmaBench which,
             const std::string& metric, const std::string& desc) {
  r.add(BenchmarkInfo{bench_suite::to_string(which), Category::kOneSided,
                      metric, desc, [which](const SuiteConfig& cfg) {
                        return bench_suite::run_rma(cfg, which);
                      }});
}

}  // namespace

void register_suite() {
  static std::once_flag once;
  std::call_once(once, [] {
    Registry& r = Registry::instance();

    add_p2p(r, "latency", "latency_us",
            "blocking send/recv ping-pong latency",
            bench_suite::run_latency);
    add_p2p(r, "bw", "bandwidth_mbps",
            "uni-directional windowed bandwidth",
            bench_suite::run_bandwidth);
    add_p2p(r, "bibw", "bandwidth_mbps",
            "bi-directional windowed bandwidth", bench_suite::run_bibw);
    add_p2p(r, "multi_lat", "latency_us",
            "concurrent multi-pair ping-pong latency",
            bench_suite::run_multi_lat);
    add_p2p(r, "mbw_mr", "bandwidth_mbps",
            "multi-pair aggregate bandwidth / message rate",
            bench_suite::run_mbw_mr);

    add_coll(r, bench_suite::CollBench::kAllgather, "MPI_Allgather latency");
    add_coll(r, bench_suite::CollBench::kAllreduce, "MPI_Allreduce latency");
    add_coll(r, bench_suite::CollBench::kAlltoall, "MPI_Alltoall latency");
    add_coll(r, bench_suite::CollBench::kBarrier, "MPI_Barrier latency");
    add_coll(r, bench_suite::CollBench::kBcast, "MPI_Bcast latency");
    add_coll(r, bench_suite::CollBench::kGather, "MPI_Gather latency");
    add_coll(r, bench_suite::CollBench::kReduce, "MPI_Reduce latency");
    add_coll(r, bench_suite::CollBench::kReduceScatter,
             "MPI_Reduce_scatter latency");
    add_coll(r, bench_suite::CollBench::kScatter, "MPI_Scatter latency");

    add_vector(r, bench_suite::VecBench::kAllgatherv,
               "MPI_Allgatherv latency");
    add_vector(r, bench_suite::VecBench::kAlltoallv,
               "MPI_Alltoallv latency");
    add_vector(r, bench_suite::VecBench::kGatherv, "MPI_Gatherv latency");
    add_vector(r, bench_suite::VecBench::kScatterv, "MPI_Scatterv latency");

    add_rma(r, bench_suite::RmaBench::kPutLatency, "latency_us",
            "MPI_Put latency (fence epochs)");
    add_rma(r, bench_suite::RmaBench::kGetLatency, "latency_us",
            "MPI_Get latency (fence epochs)");
    add_rma(r, bench_suite::RmaBench::kPutBw, "bandwidth_mbps",
            "MPI_Put windowed bandwidth");
  });
}

}  // namespace ombx::core
