#include "bench_suite/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

namespace ombx::bench_suite {

namespace {

// Full-consumption numeric parsing: the whole token must be the number,
// and it must fit.  std::stoi-style prefix parsing ("3x@100" -> 3) is
// exactly the failure mode these replace.

long long parse_ll(const std::string& flag, const std::string& s) {
  if (s.empty()) throw std::invalid_argument(flag + " needs a number");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    throw std::invalid_argument(flag + " expects an integer, got: " + s);
  }
  return v;
}

int parse_int_min(const std::string& flag, const std::string& s, int min) {
  const long long v = parse_ll(flag, s);
  if (v < min || v > 2147483647LL) {
    throw std::invalid_argument(flag + " expects an integer >= " +
                                std::to_string(min) + ", got: " + s);
  }
  return static_cast<int>(v);
}

std::uint64_t parse_u64(const std::string& flag, const std::string& s) {
  if (s.empty()) throw std::invalid_argument(flag + " needs a number");
  // strtoull silently accepts "-1" (wrapping); reject any sign up front.
  if (s[0] == '-' || s[0] == '+') {
    throw std::invalid_argument(flag + " expects a non-negative integer, got: " +
                                s);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    throw std::invalid_argument(flag + " expects a non-negative integer, got: " +
                                s);
  }
  return static_cast<std::uint64_t>(v);
}

double parse_dbl(const std::string& flag, const std::string& s) {
  if (s.empty()) throw std::invalid_argument(flag + " needs a number");
  // strtod is more liberal than any flag here wants: it accepts "nan",
  // "inf"/"infinity" and C99 hex-floats ("0x1p4").  Every double-valued
  // flag is a finite decimal quantity (a probability, a time), so
  // pre-screen the token to decimal syntax and reject non-finite results.
  for (const char c : s) {
    const bool ok = (c >= '0' && c <= '9') || c == '.' || c == '+' ||
                    c == '-' || c == 'e' || c == 'E';
    if (!ok) {
      throw std::invalid_argument(flag + " expects a finite decimal number, got: " +
                                  s);
    }
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE || !std::isfinite(v)) {
    throw std::invalid_argument(flag + " expects a finite decimal number, got: " +
                                s);
  }
  return v;
}

}  // namespace

net::ClusterSpec cluster_by_name(const std::string& s) {
  if (s == "frontera") return net::ClusterSpec::frontera();
  if (s == "frontera-large") return net::ClusterSpec::frontera_large();
  if (s == "stampede2") return net::ClusterSpec::stampede2();
  if (s == "ri2") return net::ClusterSpec::ri2();
  if (s == "ri2-gpu") return net::ClusterSpec::ri2_gpu();
  throw std::invalid_argument("unknown cluster: " + s);
}

net::MpiTuning tuning_by_name(const std::string& s) {
  if (s == "mvapich2") return net::MpiTuning::mvapich2();
  if (s == "intelmpi") return net::MpiTuning::intelmpi();
  if (s == "mvapich2-gdr") return net::MpiTuning::mvapich2_gdr();
  throw std::invalid_argument("unknown MPI library: " + s);
}

core::Mode mode_by_name(const std::string& s) {
  if (s == "omb-c") return core::Mode::kNativeC;
  if (s == "omb-py") return core::Mode::kPythonDirect;
  if (s == "omb-py-pickle") return core::Mode::kPythonPickle;
  throw std::invalid_argument("unknown mode: " + s);
}

buffers::BufferKind buffer_by_name(const std::string& s) {
  if (s == "bytearray") return buffers::BufferKind::kByteArray;
  if (s == "numpy") return buffers::BufferKind::kNumpy;
  if (s == "cupy") return buffers::BufferKind::kCupy;
  if (s == "pycuda") return buffers::BufferKind::kPycuda;
  if (s == "numba") return buffers::BufferKind::kNumba;
  throw std::invalid_argument("unknown buffer: " + s);
}

namespace {

// "--kill 3@1500" -> kill world rank 3 at virtual time 1500 us.  Rank
// bounds against --nranks are checked after the full line is parsed.
fault::KillSpec parse_kill(const std::string& s) {
  const std::size_t at = s.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= s.size()) {
    throw std::invalid_argument("--kill expects <rank>@<us>, got: " + s);
  }
  fault::KillSpec k;
  k.rank = parse_int_min("--kill rank", s.substr(0, at), 0);
  k.at_time_us = parse_dbl("--kill time", s.substr(at + 1));
  if (k.at_time_us < 0.0) {
    throw std::invalid_argument("--kill time must be >= 0, got: " + s);
  }
  return k;
}

}  // namespace

CollBench ft_bench_by_name(const std::string& s) {
  if (s == "allreduce") return CollBench::kAllreduce;
  if (s == "bcast") return CollBench::kBcast;
  if (s == "barrier") return CollBench::kBarrier;
  if (s == "allgather") return CollBench::kAllgather;
  throw std::invalid_argument(
      "--ft supports allreduce, bcast, barrier or allgather, not " + s);
}

void print_usage(std::ostream& os) {
  os <<
      "usage: omb_run <benchmark> [options]\n"
      "       omb_run --campaign <spec> [--campaign-workers <n>] [--csv|--json]\n"
      "       omb_run --list\n\n"
      "options:\n"
      "  --cluster <frontera|frontera-large|stampede2|ri2|ri2-gpu>"
      "   (default frontera)\n"
      "  --mpi <mvapich2|intelmpi|mvapich2-gdr>       (default mvapich2)\n"
      "  --mode <omb-c|omb-py|omb-py-pickle>          (default omb-py)\n"
      "  --buffer <bytearray|numpy|cupy|pycuda|numba> (default numpy)\n"
      "  --nranks <n>      (default 2)\n"
      "  --ppn <n>         (default 1)\n"
      "  --min <bytes>     (default 1)\n"
      "  --max <bytes>     (default 4194304)\n"
      "  --iters <n>       (default 10)\n"
      "  --warmup <n>      (default 2)\n"
      "  --window <n>      (default 64, bandwidth tests)\n"
      "  --validate        (verify payload patterns)\n"
      "  --synthetic       (logical payloads only; for large scale)\n"
      "  --sched <auto|threads|fibers> (rank execution backend, default\n"
      "                     auto: fibers on a worker pool, except threads\n"
      "                     under sanitizer builds; output is identical\n"
      "                     either way — see docs/execution-model.md)\n"
      "  --csv             (machine-readable output)\n"
      "  --json            (machine-readable JSON output)\n"
      "  --campaign <spec> (run a campaign sweep from a spec file: cluster\n"
      "                     x np x mode x benchmark x fault plan, repeated\n"
      "                     until the 95% CI is tight; see docs/\n"
      "                     running-benchmarks.md for the format)\n"
      "  --campaign-workers <n> (override the spec's worker-thread count)\n"
      "  --metrics <file>  (append per-rank substrate counters as CSV)\n"
      "  --trace-json <file> (write Chrome trace-event JSON; view in\n"
      "                       chrome://tracing or ui.perfetto.dev)\n"
      "  --check           (verify MPI usage: collective matching,\n"
      "                     request hygiene, buffer overlap; report on\n"
      "                     stderr after the run)\n"
      "  --check-strict    (escalate the first violation to an error and\n"
      "                     exit nonzero; implies --check)\n"
      "  --check-report <file> (append violations as CSV; implies --check)\n"
      "  --fault-seed <n>  (seed the fault-injection streams)\n"
      "  --kill <rank>@<us> (kill a rank at a virtual time; repeatable)\n"
      "  --drop <rate>     (eager-message drop probability, 0..1)\n"
      "  --ft              (fault-tolerant mode: recover from --kill via\n"
      "                     revoke/agree/shrink instead of aborting;\n"
      "                     allreduce, bcast, barrier or allgather)\n"
      "  --ckpt-interval <us>|daly (coordinated buddy-replicated\n"
      "                     checkpoints every ~<us> of virtual time, or at\n"
      "                     the Young/Daly optimum; with --ft, recovery\n"
      "                     adds restore + recompute to the breakdown)\n"
      "  --ckpt-mtbf <us>  (MTBF for the Daly formula; defaults to the\n"
      "                     fault plan's earliest kill time)\n"
      "  --drop-lost       (retry exhaustion under --drop loses the\n"
      "                     message: the sender raises MessageLostError\n"
      "                     instead of always delivering after the cap)\n"
      "  --explore         (search wildcard-receive schedules for bugs the\n"
      "                     default interleaving hides; implies\n"
      "                     --check-strict; exit 3 when a schedule fails)\n"
      "  --explore-budget <n>   (max schedules to try, default 64)\n"
      "  --explore-mode <dpor|fuzz> (systematic search or seeded fuzzing)\n"
      "  --explore-out <file>   (write the first failing schedule as a\n"
      "                          reproducer; replay with --replay-schedule)\n"
      "  --replay-schedule <file> (re-run pinning every recorded wildcard\n"
      "                            decision from a reproducer file)\n";
}

CliOptions parse_cli(int argc, const char* const* argv) {
  CliOptions out;
  out.cfg.ppn = 1;
  if (argc < 2) {
    out.help = true;
    return out;
  }
  const std::string first = argv[1];
  if (first == "--list") {
    out.list = true;
    return out;
  }
  if (first == "--help" || first == "-h") {
    out.help = true;
    return out;
  }
  // Campaign mode has no positional benchmark: a leading flag means the
  // whole line is options (validated below to actually carry --campaign).
  int start = 2;
  if (first.rfind("--", 0) == 0) {
    start = 1;
  } else {
    out.bench = first;
  }

  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--cluster") {
      out.cfg.cluster = cluster_by_name(next());
    } else if (arg == "--mpi") {
      out.cfg.tuning = tuning_by_name(next());
    } else if (arg == "--mode") {
      out.cfg.mode = mode_by_name(next());
    } else if (arg == "--buffer") {
      out.cfg.buffer = buffer_by_name(next());
    } else if (arg == "--nranks") {
      out.cfg.nranks = parse_int_min(arg, next(), 1);
    } else if (arg == "--ppn") {
      out.cfg.ppn = parse_int_min(arg, next(), 1);
    } else if (arg == "--min") {
      out.cfg.opts.min_size =
          static_cast<std::size_t>(parse_u64(arg, next()));
    } else if (arg == "--max") {
      out.cfg.opts.max_size =
          static_cast<std::size_t>(parse_u64(arg, next()));
    } else if (arg == "--iters") {
      out.cfg.opts.iterations = parse_int_min(arg, next(), 1);
    } else if (arg == "--warmup") {
      out.cfg.opts.warmup = parse_int_min(arg, next(), 0);
    } else if (arg == "--window") {
      out.cfg.opts.window_size = parse_int_min(arg, next(), 1);
    } else if (arg == "--validate") {
      out.cfg.opts.validate = true;
    } else if (arg == "--synthetic") {
      out.cfg.payload = mpi::PayloadMode::kSynthetic;
    } else if (arg == "--csv") {
      out.csv = true;
    } else if (arg == "--json") {
      out.json = true;
    } else if (arg == "--campaign") {
      out.campaign_spec = next();
    } else if (arg == "--campaign-workers") {
      out.campaign_workers = parse_int_min(arg, next(), 1);
    } else if (arg == "--metrics") {
      out.cfg.obs.metrics_csv = next();
    } else if (arg == "--trace-json") {
      out.cfg.obs.trace_json = next();
    } else if (arg == "--sched") {
      try {
        out.cfg.sched = sched::mode_by_name(next());
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(std::string("--sched: ") + e.what());
      }
    } else if (arg == "--check") {
      out.cfg.check.enabled = true;
    } else if (arg == "--check-strict") {
      out.cfg.check.enabled = true;
      out.cfg.check.strict = true;
    } else if (arg == "--check-report") {
      out.cfg.check.enabled = true;
      out.cfg.check.report_csv = next();
    } else if (arg == "--fault-seed") {
      out.cfg.fault.seed = parse_u64(arg, next());
    } else if (arg == "--kill") {
      out.cfg.fault.kills.push_back(parse_kill(next()));
    } else if (arg == "--drop") {
      out.cfg.fault.drop.probability = parse_dbl(arg, next());
      if (out.cfg.fault.drop.probability < 0.0 ||
          out.cfg.fault.drop.probability > 1.0) {
        throw std::invalid_argument("--drop expects a rate in [0, 1]");
      }
    } else if (arg == "--ft") {
      out.ft_mode = true;
      out.cfg.ft.enabled = true;
    } else if (arg == "--ckpt-interval") {
      const std::string v = next();
      out.cfg.ckpt.enabled = true;
      if (v == "daly") {
        out.cfg.ckpt.daly = true;
      } else {
        out.cfg.ckpt.interval_us = parse_dbl(arg, v);
        if (out.cfg.ckpt.interval_us <= 0.0) {
          throw std::invalid_argument(
              "--ckpt-interval expects a time > 0 us or 'daly', got: " + v);
        }
      }
    } else if (arg == "--ckpt-mtbf") {
      out.cfg.ckpt.mtbf_us = parse_dbl(arg, next());
      if (out.cfg.ckpt.mtbf_us <= 0.0) {
        throw std::invalid_argument("--ckpt-mtbf expects a time > 0 us");
      }
    } else if (arg == "--drop-lost") {
      out.cfg.fault.drop.fail_on_exhaustion = true;
    } else if (arg == "--explore") {
      out.explore = true;
    } else if (arg == "--explore-budget") {
      out.explore_budget = parse_int_min(arg, next(), 1);
    } else if (arg == "--explore-mode") {
      out.explore_mode = next();
      if (out.explore_mode != "dpor" && out.explore_mode != "fuzz") {
        throw std::invalid_argument("--explore-mode expects dpor or fuzz, got: " +
                                    out.explore_mode);
      }
    } else if (arg == "--explore-out") {
      out.explore_out = next();
    } else if (arg == "--replay-schedule") {
      out.replay_schedule = next();
    } else if (arg == "--help" || arg == "-h") {
      out.help = true;
      return out;
    } else {
      throw std::invalid_argument("unknown option: " + arg);
    }
  }

  // Cross-flag validation, once the whole line is known.
  for (const fault::KillSpec& k : out.cfg.fault.kills) {
    if (k.rank >= out.cfg.nranks) {
      throw std::invalid_argument(
          "--kill rank " + std::to_string(k.rank) + " out of range for --nranks " +
          std::to_string(out.cfg.nranks));
    }
  }
  if (out.cfg.ckpt.enabled && out.cfg.nranks < 2) {
    throw std::invalid_argument(
        "--ckpt-interval needs --nranks >= 2 (buddy replication)");
  }
  if (out.explore && !out.replay_schedule.empty()) {
    throw std::invalid_argument(
        "--explore and --replay-schedule are mutually exclusive");
  }
  if (out.bench.empty() && out.campaign_spec.empty()) {
    throw std::invalid_argument(
        "expected a benchmark name or --campaign <spec>; try --list");
  }
  if (!out.bench.empty() && !out.campaign_spec.empty()) {
    throw std::invalid_argument(
        "--campaign drives a spec file; drop the benchmark name '" +
        out.bench + "'");
  }
  return out;
}

}  // namespace ombx::bench_suite
