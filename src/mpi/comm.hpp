// Communicator: the user-facing handle for point-to-point communication.
//
// A Comm is a lightweight view (engine pointer + context id + rank table);
// collectives are free functions in collectives.hpp.  The API mirrors the
// MPI operations OMB exercises: Send/Recv/Isend/Irecv/Sendrecv/Probe plus
// communicator management (dup/split).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "mpi/engine.hpp"
#include "mpi/message.hpp"

namespace ombx::mpi {

class Request;

class Comm {
 public:
  /// COMM_WORLD constructor (used by World): identity rank mapping.
  Comm(Engine& engine, int context, std::vector<int> world_ranks,
       int my_comm_rank);

  [[nodiscard]] int rank() const noexcept { return my_rank_; }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(world_ranks_.size());
  }
  [[nodiscard]] int context() const noexcept { return context_; }

  /// Physical (world) rank of a communicator rank.
  [[nodiscard]] int world_rank(int comm_rank) const;

  [[nodiscard]] Engine& engine() const noexcept { return *engine_; }
  [[nodiscard]] const net::NetworkModel& net() const noexcept {
    return engine_->net();
  }
  [[nodiscard]] simtime::SimClock& clock() const;
  [[nodiscard]] usec_t now() const { return clock().now(); }

  // ---- Blocking point-to-point -------------------------------------------

  void send(ConstView v, int dst, int tag) const;
  Status recv(MutView v, int src, int tag) const;
  Status sendrecv(ConstView s, int dst, int stag, MutView r, int src,
                  int rtag) const;

  // ---- Non-blocking point-to-point ---------------------------------------

  [[nodiscard]] Request isend(ConstView v, int dst, int tag) const;
  [[nodiscard]] Request irecv(MutView v, int src, int tag) const;

  // ---- Probes --------------------------------------------------------------

  [[nodiscard]] Status probe(int src, int tag) const;
  [[nodiscard]] std::optional<Status> iprobe(int src, int tag) const;

  // ---- Communicator management ---------------------------------------------

  /// Collective over all members: partition by `color`, order by (key,
  /// rank).  Every member must call it.  Negative color = do not join any
  /// new communicator (returns an empty optional).
  [[nodiscard]] std::optional<Comm> split(int color, int key) const;

  /// Collective: duplicate this communicator with a fresh context.
  [[nodiscard]] Comm dup() const;

  // ---- ULFM fault tolerance (WorldConfig::ft; see ft/ft.hpp) ---------------

  /// MPI_Comm_revoke: mark this communicator dead for every member.  Peers
  /// blocked (or later blocking) on it unwind with ft::RevokedError once
  /// no queued match can satisfy them.  Non-collective; first call wins.
  void revoke() const;

  /// MPI_Comm_shrink: collective over the surviving members — every live
  /// member must call it (dead members are excused).  Returns a working
  /// communicator over the survivors, renumbered in old-rank order, on a
  /// fresh context.
  [[nodiscard]] Comm shrink() const;

  /// MPIX_Comm_agree: fault-tolerant agreement on the AND of `bits`
  /// across the surviving members.  Tolerates failures during the
  /// agreement itself.
  struct AgreeOutcome {
    std::uint32_t bits = 0;
    /// A member died that this caller had not failure_ack()ed.
    bool new_failures = false;
  };
  [[nodiscard]] AgreeOutcome agree(std::uint32_t bits) const;

  /// MPI_Comm_failure_ack: acknowledge the currently-known failures on
  /// this communicator; returns how many were newly acknowledged.
  int failure_ack() const;

  /// MPI_Comm_get_failed: the known-dead members (world ranks, sorted).
  [[nodiscard]] std::vector<int> get_failed() const;

  // ---- Local compute charging ----------------------------------------------

  /// Charge priced floating-point work to this rank's virtual clock.
  void charge_flops(double flops) const {
    engine_->charge_flops(my_world_, flops);
  }
  /// Charge priced streaming-byte work to this rank's virtual clock.
  void charge_bytes(double bytes) const {
    engine_->charge_bytes(my_world_, bytes);
  }

 private:
  Engine* engine_;
  int context_;
  std::vector<int> world_ranks_;  ///< comm rank -> world rank
  int my_rank_;
  int my_world_;
};

}  // namespace ombx::mpi
