#include "mpi/datatype.hpp"

namespace ombx::mpi {

std::size_t size_of(Datatype dt) noexcept {
  switch (dt) {
    case Datatype::kByte:
    case Datatype::kChar:
      return 1;
    case Datatype::kInt32:
    case Datatype::kFloat:
      return 4;
    case Datatype::kInt64:
    case Datatype::kUint64:
    case Datatype::kDouble:
      return 8;
  }
  return 1;
}

std::string to_string(Datatype dt) {
  switch (dt) {
    case Datatype::kByte: return "MPI_BYTE";
    case Datatype::kChar: return "MPI_CHAR";
    case Datatype::kInt32: return "MPI_INT";
    case Datatype::kInt64: return "MPI_LONG_LONG";
    case Datatype::kUint64: return "MPI_UNSIGNED_LONG_LONG";
    case Datatype::kFloat: return "MPI_FLOAT";
    case Datatype::kDouble: return "MPI_DOUBLE";
  }
  return "unknown";
}

}  // namespace ombx::mpi
