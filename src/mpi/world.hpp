// World: thread-per-rank launcher for simulated MPI programs.
//
// Usage:
//   mpi::World world({.cluster = net::ClusterSpec::frontera(),
//                     .tuning = net::MpiTuning::mvapich2(),
//                     .nranks = 2, .ppn = 1});
//   world.run([](mpi::Comm& comm) { ... rank program ... });
//
// run() blocks until every rank returns; the first exception thrown by any
// rank is rethrown on the caller thread.  A World can run several programs
// in sequence; clocks reset between runs.
#pragma once

#include <functional>
#include <memory>

#include "mpi/comm.hpp"
#include "mpi/engine.hpp"
#include "net/cluster.hpp"
#include "net/tuning.hpp"

namespace ombx::mpi {

struct WorldConfig {
  net::ClusterSpec cluster;
  net::MpiTuning tuning;
  int nranks = 2;
  int ppn = 1;
  PayloadMode payload = PayloadMode::kReal;
  /// THREAD_SINGLE models OMB's C binaries; mpi4py initializes
  /// THREAD_MULTIPLE (the paper's full-subscription Allreduce explanation).
  net::ThreadLevel thread_level = net::ThreadLevel::kSingle;
  /// Record every send/recv/compute with virtual timestamps (trace.hpp).
  bool enable_trace = false;
};

class World {
 public:
  explicit World(const WorldConfig& cfg);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Execute `rank_main` on every rank concurrently; returns when all have
  /// finished.  Clocks are reset first, so each run starts at t = 0.
  void run(const std::function<void(Comm&)>& rank_main);

  [[nodiscard]] Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] const WorldConfig& config() const noexcept { return cfg_; }

  /// Virtual time at which `world_rank` finished the last run.
  [[nodiscard]] usec_t finish_time(int world_rank) const;

 private:
  WorldConfig cfg_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace ombx::mpi
