// World: launcher for simulated MPI programs — ranks run as fibers on the
// process-wide scheduler pool (the default) or as one OS thread each
// (`sched = kThreads`, kept for sanitizer builds and differential
// testing).  See docs/execution-model.md and sched/sched.hpp; the two
// backends produce byte-identical results because every reported number
// is virtual-time arithmetic, independent of host scheduling.
//
// Usage:
//   mpi::World world({.cluster = net::ClusterSpec::frontera(),
//                     .tuning = net::MpiTuning::mvapich2(),
//                     .nranks = 2, .ppn = 1});
//   world.run([](mpi::Comm& comm) { ... rank program ... });
//
// run() blocks until every rank returns; the first exception thrown by any
// rank is rethrown on the caller thread.  A World can run several programs
// in sequence; clocks reset between runs.
//
// No-hang guarantee: when any rank throws, the engine aborts — every peer
// blocked in a mailbox, probe, or rendezvous wait wakes with AbortedError
// naming the origin rank — and run() rethrows the root cause instead of
// deadlocking on join.  A watchdog thread additionally detects silent
// deadlocks (e.g. mismatched tags) and aborts with a per-rank dump of the
// (context, src, tag) each rank is waiting on.
#pragma once

#include <functional>
#include <memory>

#include "fault/fault.hpp"
#include "ft/ft.hpp"
#include "mpi/comm.hpp"
#include "mpi/engine.hpp"
#include "net/cluster.hpp"
#include "net/tuning.hpp"
#include "sched/sched.hpp"

namespace ombx::mpi {

struct WorldConfig {
  net::ClusterSpec cluster;
  net::MpiTuning tuning;
  int nranks = 2;
  int ppn = 1;
  PayloadMode payload = PayloadMode::kReal;
  /// THREAD_SINGLE models OMB's C binaries; mpi4py initializes
  /// THREAD_MULTIPLE (the paper's full-subscription Allreduce explanation).
  net::ThreadLevel thread_level = net::ThreadLevel::kSingle;
  /// Record every send/recv/compute with virtual timestamps (trace.hpp).
  bool enable_trace = false;
  /// Count per-rank substrate events (obs/metrics.hpp).  Never perturbs
  /// virtual time: results are byte-identical with metrics on or off.
  bool enable_metrics = false;
  /// Per-rank mailbox depth; senders block (with abort wake-up) beyond it.
  std::size_t mailbox_capacity = 8192;
  /// Seeded fault-injection plan; an all-defaults config injects nothing.
  fault::FaultConfig fault;
  /// ULFM-style fault tolerance (ft/ft.hpp).  When enabled, a fault-plan
  /// kill dead-marks the rank instead of aborting the world; operations
  /// involving it raise ft::ProcFailedError at the caller and Comm gains
  /// revoke()/shrink()/agree().  Disabled (the default) leaves every code
  /// path byte-identical to a world without the subsystem.
  ft::FtConfig ft;
  /// Opt-in dynamic MPI-usage verifier (check/checker.hpp): collective
  /// matching, request hygiene, buffer-overlap pins and a finalize audit.
  /// Never perturbs virtual time; kStrict escalates the first violation
  /// to a rank-attributed Error, kReport collects an end-of-run report.
  check::Config check;
  /// Deadlock watchdog: detects all-ranks-blocked-no-progress states and
  /// aborts with a per-rank wait dump instead of hanging.
  bool enable_watchdog = true;
  double watchdog_poll_ms = 100.0;
  /// Scheduling oracle for record/replay/exploration (explore/explore.hpp);
  /// null (the default) leaves every match path untouched.  Shared so the
  /// driver that armed it can read the decision log after run().
  std::shared_ptr<explore::ScheduleOracle> oracle;
  /// Rank execution backend (sched/sched.hpp).  kAuto resolves to fibers
  /// except under sanitizer builds or an OMBX_SCHED override; results are
  /// byte-identical either way.
  sched::Mode sched = sched::Mode::kAuto;
};

class World {
 public:
  explicit World(const WorldConfig& cfg);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Execute `rank_main` on every rank concurrently; returns when all have
  /// finished.  Clocks are reset first, so each run starts at t = 0.
  ///
  /// Failure semantics: if any rank throws, all peers are woken with
  /// AbortedError and run() rethrows the root cause (the first non-abort
  /// exception); a watchdog-detected deadlock rethrows DeadlockError.
  void run(const std::function<void(Comm&)>& rank_main);

  [[nodiscard]] Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] const WorldConfig& config() const noexcept { return cfg_; }

  /// The fault plan attached to this world (null when cfg.fault injects
  /// nothing).  Exposes injection counters for resilience reporting.
  [[nodiscard]] fault::FaultPlan* fault_plan() const noexcept {
    return plan_.get();
  }

  /// Virtual time at which `world_rank` finished the last run.
  [[nodiscard]] usec_t finish_time(int world_rank) const;

 private:
  WorldConfig cfg_;
  std::unique_ptr<Engine> engine_;
  std::shared_ptr<fault::FaultPlan> plan_;
};

}  // namespace ombx::mpi
