// Recycled payload storage for the simulated-MPI hot path.
//
// Every eager message with a real payload used to heap-allocate a
// std::vector<std::byte> at post time and free it at delivery — two
// allocator round trips per message, millions of times per benchmark
// sweep.  PayloadPool removes them: buffers are recycled through
// size-bucketed freelists, and payloads small enough for the handle's
// inline storage never touch the heap (or an atomic) at all.
//
// Storage tiers, chosen by acquire_copy():
//   0 bytes      no storage, no atomics, no allocation (asserted by tests)
//   <= 64 bytes  inline in the PooledPayload handle itself
//   <= 4 MiB     pooled raw block from the power-of-two bucket freelist;
//                returned to the pool when the handle dies
//   >  4 MiB     plain heap vector (freed, not recycled — messages this
//                large ride the rendezvous path, which is zero-copy for
//                blocking sends anyway)
//
// Thread model: acquire and release run on different rank threads.  The
// buckets are fully lock-free: each one is a single-slot "hot" exchange
// cache (the steady-state self-send case is one uncontended XCHG) backed
// by a bounded MPMC ring of raw blocks (Vyukov-style tagged sequence
// cells, so recycled pointers cannot ABA a concurrent pop — the reason a
// plain Treiber stack was rejected).  Stats are relaxed atomics.  The
// pool must outlive every handle it issued (the Engine declares its pool
// before its mailboxes so destruction order guarantees this).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ombx::mpi {

class PayloadPool;

/// Move-only owning handle to a message payload.  Cheap to move (at most
/// a 64-byte inline copy; pooled/heap payloads move three pointers), so a
/// Message travels through mailbox deques without touching its bytes.
class PooledPayload {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  PooledPayload() noexcept = default;
  ~PooledPayload() { release(); }

  PooledPayload(PooledPayload&& o) noexcept
      : size_(o.size_), inline_(o.inline_), pool_(o.pool_),
        block_(o.block_), block_cap_(o.block_cap_),
        heap_(std::move(o.heap_)) {
    if (inline_) {
      for (std::size_t i = 0; i < size_; ++i) sbo_[i] = o.sbo_[i];
    }
    o.size_ = 0;
    o.inline_ = false;
    o.pool_ = nullptr;
    o.block_ = nullptr;
    o.block_cap_ = 0;
  }

  PooledPayload& operator=(PooledPayload&& o) noexcept {
    if (this != &o) {
      release();
      size_ = o.size_;
      inline_ = o.inline_;
      pool_ = o.pool_;
      block_ = o.block_;
      block_cap_ = o.block_cap_;
      heap_ = std::move(o.heap_);
      if (inline_) {
        for (std::size_t i = 0; i < size_; ++i) sbo_[i] = o.sbo_[i];
      }
      o.size_ = 0;
      o.inline_ = false;
      o.pool_ = nullptr;
      o.block_ = nullptr;
      o.block_cap_ = 0;
    }
    return *this;
  }

  PooledPayload(const PooledPayload&) = delete;
  PooledPayload& operator=(const PooledPayload&) = delete;

  [[nodiscard]] const std::byte* data() const noexcept {
    return inline_ ? sbo_.data() : block_ != nullptr ? block_ : heap_.data();
  }
  [[nodiscard]] std::byte* data() noexcept {
    return inline_ ? sbo_.data() : block_ != nullptr ? block_ : heap_.data();
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Storage-tier introspection (tests assert the 0-byte and inline paths
  /// stay allocation-free).
  [[nodiscard]] bool is_inline() const noexcept { return inline_; }
  [[nodiscard]] bool is_pooled() const noexcept { return pool_ != nullptr; }

  /// Return the storage (recycling pooled buffers) and become empty.
  void release() noexcept;

 private:
  friend class PayloadPool;

  std::size_t size_ = 0;
  bool inline_ = false;
  PayloadPool* pool_ = nullptr;   ///< non-null: block_ recycles on release
  std::byte* block_ = nullptr;    ///< pooled tier: raw bucket-sized block
  std::size_t block_cap_ = 0;     ///< block_'s bucket size in bytes
  std::vector<std::byte> heap_;   ///< > 4 MiB tier only
  std::array<std::byte, kInlineBytes> sbo_;
};

/// Size-bucketed lock-free freelist of recycled payload blocks.
class PayloadPool {
 public:
  static constexpr std::size_t kMinBucketBytes = 128;     ///< 2^7
  static constexpr std::size_t kMaxBucketBytes = 4 << 20; ///< 2^22
  static constexpr std::size_t kMaxFreePerBucket = 32;    ///< pow2 (ring)
  static constexpr std::size_t kNumBuckets = 16;          ///< 2^7 .. 2^22

  PayloadPool();
  ~PayloadPool();
  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  /// Counters for tests and the wall-clock bench (relaxed atomics; exact
  /// totals are only meaningful after all rank threads joined).
  struct Stats {
    std::atomic<std::uint64_t> inline_grabs{0};  ///< served from the handle
    std::atomic<std::uint64_t> reuses{0};        ///< bucket freelist hits
    std::atomic<std::uint64_t> allocs{0};        ///< heap allocations
    std::atomic<std::uint64_t> recycled{0};      ///< buffers returned
    std::atomic<std::uint64_t> dropped{0};       ///< returned but bucket full
    /// Of `allocs`, those on the un-recycled > kMaxBucketBytes tier.
    std::atomic<std::uint64_t> heap_grabs{0};
  };

  /// Copy `n` bytes from `src` into recycled (or inline) storage.  n == 0
  /// returns an empty handle without touching the pool.
  [[nodiscard]] PooledPayload acquire_copy(const std::byte* src,
                                           std::size_t n);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Freelist population across all buckets (test/diagnostic only; exact
  /// when the pool is quiescent).
  [[nodiscard]] std::size_t free_buffers() const;

  /// Pooled-tier handles currently alive (acquired but not yet released).
  /// Every pooled release passes through recycle(), so this is exact once
  /// all rank threads have joined — the finalize audit uses it to confirm
  /// no undelivered message still holds a buffer.  Inline and > 4 MiB
  /// heap handles are not tracked (they have no pool bookkeeping).
  [[nodiscard]] std::uint64_t outstanding() const noexcept {
    const std::uint64_t acquired =
        stats_.reuses.load(std::memory_order_relaxed) +
        stats_.allocs.load(std::memory_order_relaxed) -
        stats_.heap_grabs.load(std::memory_order_relaxed);
    const std::uint64_t returned =
        stats_.recycled.load(std::memory_order_relaxed) +
        stats_.dropped.load(std::memory_order_relaxed);
    return acquired > returned ? acquired - returned : 0;
  }

  /// Drop every cached buffer (outstanding handles are unaffected).
  void trim();

 private:
  friend class PooledPayload;

  /// Smallest bucket whose size is >= n (n > kInlineBytes).
  [[nodiscard]] static std::size_t bucket_for_acquire(std::size_t n) noexcept;
  /// Largest bucket whose size is <= capacity (recycle placement).
  [[nodiscard]] static std::size_t bucket_for_recycle(
      std::size_t capacity) noexcept;

  void recycle(std::byte* block, std::size_t capacity) noexcept;


  /// Bounded MPMC ring of free blocks (Vyukov sequence-tagged cells).
  /// push/pop are lock-free and ABA-safe: a cell is only touched by the
  /// thread whose CAS claimed its sequence number, and the sequence tag
  /// distinguishes a re-pushed pointer from the previous occupant.
  struct FreeRing {
    struct Cell {
      std::atomic<std::size_t> seq{0};
      std::byte* ptr = nullptr;
    };
    std::array<Cell, kMaxFreePerBucket> cells;
    alignas(64) std::atomic<std::size_t> enq{0};
    alignas(64) std::atomic<std::size_t> deq{0};

    bool push(std::byte* p) noexcept;
    [[nodiscard]] std::byte* pop() noexcept;
    [[nodiscard]] std::size_t size_approx() const noexcept;
  };

  struct Bucket {
    /// Single-slot exchange cache in front of the ring: the steady-state
    /// acquire/release pair is one uncontended XCHG each.
    alignas(64) std::atomic<std::byte*> hot{nullptr};
    FreeRing ring;
  };

  std::array<Bucket, kNumBuckets> buckets_;
  Stats stats_;
};

}  // namespace ombx::mpi
