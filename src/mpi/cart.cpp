#include "mpi/cart.hpp"

#include <algorithm>

#include "mpi/error.hpp"
#include "mpi/request.hpp"

namespace ombx::mpi {

std::vector<int> dims_create(int nranks, int ndims) {
  OMBX_REQUIRE(nranks > 0 && ndims > 0, "dims_create needs positive sizes");
  // Factorize, then assign primes largest-first onto the currently
  // smallest dimension — keeps the grid as square as possible
  // (MPI_Dims_create intent).
  std::vector<int> factors;
  int remaining = nranks;
  for (int f = 2; f * f <= remaining;) {
    if (remaining % f == 0) {
      factors.push_back(f);
      remaining /= f;
    } else {
      ++f;
    }
  }
  if (remaining > 1) factors.push_back(remaining);
  std::sort(factors.begin(), factors.end(), std::greater<>());

  std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
  for (const int f : factors) {
    auto it = std::min_element(dims.begin(), dims.end());
    *it *= f;
  }
  std::sort(dims.begin(), dims.end(), std::greater<>());
  return dims;
}

CartComm::CartComm(const Comm& comm, std::vector<int> dims,
                   std::vector<bool> periodic)
    : comm_(std::make_unique<Comm>(comm.dup())),
      dims_(std::move(dims)),
      periodic_(std::move(periodic)) {
  OMBX_REQUIRE(!dims_.empty(), "cartesian grid needs at least one dim");
  OMBX_REQUIRE(periodic_.size() == dims_.size(),
               "periodicity table must match the dims");
  long total = 1;
  for (const int d : dims_) {
    OMBX_REQUIRE(d > 0, "grid dims must be positive");
    total *= d;
  }
  OMBX_REQUIRE(total == comm.size(),
               "grid volume must equal the communicator size");
  strides_.assign(dims_.size(), 1);
  for (int d = static_cast<int>(dims_.size()) - 2; d >= 0; --d) {
    strides_[static_cast<std::size_t>(d)] =
        strides_[static_cast<std::size_t>(d) + 1] *
        dims_[static_cast<std::size_t>(d) + 1];
  }
}

std::vector<int> CartComm::coords(int rank) const {
  OMBX_REQUIRE(rank >= 0 && rank < comm_->size(), "rank outside the grid");
  std::vector<int> out(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    out[d] = (rank / strides_[d]) % dims_[d];
  }
  return out;
}

int CartComm::rank_at(const std::vector<int>& coords) const {
  OMBX_REQUIRE(coords.size() == dims_.size(), "coordinate arity mismatch");
  int rank = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    int c = coords[d];
    if (c < 0 || c >= dims_[d]) {
      if (!periodic_[d]) return kNull;
      c = ((c % dims_[d]) + dims_[d]) % dims_[d];
    }
    rank += c * strides_[d];
  }
  return rank;
}

CartComm::Shift CartComm::shift(int dim, int disp) const {
  OMBX_REQUIRE(dim >= 0 && dim < ndims(), "shift dim out of range");
  const std::vector<int> me = coords(comm_->rank());
  std::vector<int> up = me;
  std::vector<int> down = me;
  up[static_cast<std::size_t>(dim)] += disp;
  down[static_cast<std::size_t>(dim)] -= disp;
  return Shift{rank_at(down), rank_at(up)};
}

void CartComm::neighbor_sendrecv(ConstView send, int dest, MutView recv,
                                 int source, int tag) const {
  // MPI_PROC_NULL semantics: a null endpoint silently skips that side.
  Request sreq;
  if (dest != kNull) sreq = comm_->isend(send, dest, tag);
  if (source != kNull) (void)comm_->recv(recv, source, tag);
  sreq.wait();
}

}  // namespace ombx::mpi
