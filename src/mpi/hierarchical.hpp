// Topology-aware two-level collectives (MVAPICH2 / "leader-based" style).
//
// On multi-core nodes, flat algorithms push every rank onto the fabric.
// The two-level scheme reduces within each node over shared memory first,
// lets one leader per node run the inter-node phase, and fans results back
// out locally — usually a large win at high ppn.  This is the design
// choice behind DESIGN.md ablation item 5; `bench/extension_hierarchical`
// quantifies it against the flat algorithms.
#pragma once

#include <memory>
#include <optional>

#include "mpi/collectives.hpp"
#include "mpi/comm.hpp"

namespace ombx::mpi {

class HierarchicalComm {
 public:
  /// Collective over `comm`: derives a per-node communicator and a
  /// node-leader communicator (local rank 0 of each node).
  explicit HierarchicalComm(const Comm& comm);

  [[nodiscard]] const Comm& world() const noexcept { return *world_; }
  [[nodiscard]] const Comm& node() const noexcept { return *node_; }
  [[nodiscard]] bool is_leader() const noexcept {
    return leaders_.has_value();
  }
  [[nodiscard]] int nodes() const noexcept { return n_nodes_; }

  /// Two-level allreduce: shm reduce to the node leader, leader-level
  /// allreduce across the fabric, shm bcast back.
  void allreduce(ConstView send, MutView recv, Datatype dt, Op op);

  /// Two-level bcast from world rank 0 (leader of node 0).
  void bcast(MutView buf);

  /// Two-level barrier: node barrier, leader barrier, node barrier.
  void barrier();

 private:
  std::unique_ptr<Comm> world_;
  std::unique_ptr<Comm> node_;          ///< ranks sharing my node
  std::optional<Comm> leaders_;         ///< only on node-local rank 0
  int n_nodes_ = 1;
};

}  // namespace ombx::mpi
