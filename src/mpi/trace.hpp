// Virtual-time event tracing.
//
// When enabled on a World, every send, receive and compute charge is
// recorded with its virtual start/end time.  Per-rank buffers are owned by
// their rank thread (no locking on the hot path); merge() interleaves them
// into one global timeline for analysis or CSV export — the simulator's
// equivalent of an MPI tracing tool's OTF dump.
//
// Attribution: primitive events carry the protocol in play ("eager",
// "rendezvous", "self") in `attr`; collective entry points additionally
// record kSpan events labelled "<collective>/<algorithm>/<bytes>B" that
// bracket the primitives they issued — the layer that lets a latency
// curve be explained by the algorithm behind it, as the paper does.
//
// Exporters: write_csv (one line per event, RFC 4180-quoted), and
// write_chrome_json — the Chrome trace-event format, loadable directly in
// chrome://tracing or https://ui.perfetto.dev (one track per rank;
// virtual microseconds map 1:1 onto the viewer's `ts` unit).
//
// critical_path() reduces the event graph (per-rank program order +
// matched send->recv edges) to the longest dependency chain by summed
// event duration — "where did the microseconds go" in one number.
//
// Ranks and peers are always WORLD ranks, also for traffic on split or
// duplicated communicators (the engine records them from its physical
// addressing, never from communicator-local match keys).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "simtime/clock.hpp"

namespace ombx::mpi {

enum class TraceKind { kSend, kRecv, kCompute, kSpan };

[[nodiscard]] std::string to_string(TraceKind k);

struct TraceEvent {
  int rank = 0;  ///< world rank that recorded the event
  TraceKind kind = TraceKind::kSend;
  simtime::usec_t t_start = 0.0;
  simtime::usec_t t_end = 0.0;
  int peer = -1;  ///< other side of a transfer (world rank); -1 otherwise
  std::size_t bytes = 0;
  int tag = -1;
  /// Attribution: protocol for p2p events, "<coll>/<algo>/<bytes>B" for
  /// spans; empty for compute charges.
  std::string attr;
};

class Tracer {
 public:
  explicit Tracer(int nranks) : per_rank_(static_cast<std::size_t>(nranks)) {}

  /// Record an event for `ev.rank`.  Only that rank's thread may call this
  /// (per-rank buffers are unsynchronized by design).
  void record(TraceEvent ev) {
    per_rank_[static_cast<std::size_t>(ev.rank)].push_back(std::move(ev));
  }

  [[nodiscard]] const std::vector<TraceEvent>& events_of(int rank) const {
    return per_rank_[static_cast<std::size_t>(rank)];
  }

  [[nodiscard]] std::size_t total_events() const;

  /// All ranks' events interleaved, ordered by (t_start, rank); events of
  /// one rank with equal t_start keep their record order.  The tie-break
  /// on rank makes the merge deterministic for cross-rank simultaneity.
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  /// CSV dump: rank,kind,t_start_us,t_end_us,peer,bytes,tag,attr
  void write_csv(std::ostream& os) const;

  /// Chrome trace-event JSON ("X" complete events; one tid per rank).
  /// Includes the critical-path summary under "otherData".
  void write_chrome_json(std::ostream& os) const;

  /// Longest dependency chain through the primitive events: per-rank
  /// program order plus matched send->recv edges (FIFO per (src, dst,
  /// tag), MPI's non-overtaking order).  Span events are attribution
  /// overlays and are excluded.  `total_us` is the summed duration of the
  /// chain's events — idle gaps are not charged.
  struct CriticalPath {
    simtime::usec_t total_us = 0.0;
    std::vector<TraceEvent> chain;  ///< in dependency order
  };
  [[nodiscard]] CriticalPath critical_path() const;

  void clear();

 private:
  std::vector<std::vector<TraceEvent>> per_rank_;
};

}  // namespace ombx::mpi
