// Virtual-time event tracing.
//
// When enabled on a World, every send, receive and compute charge is
// recorded with its virtual start/end time.  Per-rank buffers are owned by
// their rank thread (no locking on the hot path); merge() interleaves them
// into one global timeline for analysis or CSV export — the simulator's
// equivalent of an MPI tracing tool's OTF dump.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "simtime/clock.hpp"

namespace ombx::mpi {

enum class TraceKind { kSend, kRecv, kCompute };

[[nodiscard]] std::string to_string(TraceKind k);

struct TraceEvent {
  int rank = 0;
  TraceKind kind = TraceKind::kSend;
  simtime::usec_t t_start = 0.0;
  simtime::usec_t t_end = 0.0;
  int peer = -1;  ///< other side of a transfer; -1 for compute
  std::size_t bytes = 0;
  int tag = -1;
};

class Tracer {
 public:
  explicit Tracer(int nranks) : per_rank_(static_cast<std::size_t>(nranks)) {}

  /// Record an event for `ev.rank`.  Only that rank's thread may call this
  /// (per-rank buffers are unsynchronized by design).
  void record(const TraceEvent& ev) {
    per_rank_[static_cast<std::size_t>(ev.rank)].push_back(ev);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events_of(int rank) const {
    return per_rank_[static_cast<std::size_t>(rank)];
  }

  [[nodiscard]] std::size_t total_events() const;

  /// All ranks' events interleaved, ordered by (t_start, rank).
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  /// CSV dump: rank,kind,t_start_us,t_end_us,peer,bytes,tag
  void write_csv(std::ostream& os) const;

  void clear();

 private:
  std::vector<std::vector<TraceEvent>> per_rank_;
};

}  // namespace ombx::mpi
