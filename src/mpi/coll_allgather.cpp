#include <algorithm>

#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"

namespace ombx::mpi {

namespace {

using detail::kTagAllgather;
using detail::Scratch;
using detail::slice;

void allgather_ring(Comm& c, ConstView send, MutView recv) {
  const int n = c.size();
  const int rank = c.rank();
  const std::size_t b = send.bytes;
  const int right = (rank + 1) % n;
  const int left = (rank - 1 + n) % n;

  detail::copy_bytes(slice(recv, static_cast<std::size_t>(rank) * b, b),
                     send, b);
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (rank - s + n) % n;
    const int recv_idx = (rank - s - 1 + n) % n;
    (void)c.sendrecv(
        slice(detail::as_const(recv), static_cast<std::size_t>(send_idx) * b,
              b),
        right, kTagAllgather,
        slice(recv, static_cast<std::size_t>(recv_idx) * b, b), left,
        kTagAllgather);
  }
}

/// Recursive doubling (power-of-two sizes): at step k each rank exchanges
/// its current 2^k-block range with its partner, doubling coverage.
void allgather_recursive_doubling(Comm& c, ConstView send, MutView recv) {
  const int n = c.size();
  const int rank = c.rank();
  const std::size_t b = send.bytes;

  detail::copy_bytes(slice(recv, static_cast<std::size_t>(rank) * b, b),
                     send, b);
  for (int mask = 1; mask < n; mask <<= 1) {
    const int partner = rank ^ mask;
    const int my_base = rank & ~(mask - 1);
    const int partner_base = partner & ~(mask - 1);
    (void)c.sendrecv(
        slice(detail::as_const(recv),
              static_cast<std::size_t>(my_base) * b,
              static_cast<std::size_t>(mask) * b),
        partner, kTagAllgather,
        slice(recv, static_cast<std::size_t>(partner_base) * b,
              static_cast<std::size_t>(mask) * b),
        partner, kTagAllgather);
  }
}

/// Bruck: works for any communicator size in ceil(log2 n) steps; blocks are
/// assembled in rotated order in a scratch buffer and un-rotated at the end.
void allgather_bruck(Comm& c, ConstView send, MutView recv) {
  const int n = c.size();
  const int rank = c.rank();
  const std::size_t b = send.bytes;
  const bool real = detail::real_payload(c, send);

  // tmp block i will hold the contribution of rank (rank + i) % n.
  Scratch tmp(static_cast<std::size_t>(n) * b, real, send.space);
  detail::copy_bytes(tmp.mview(0, b), send, b);

  int have = 1;
  for (int k = 1; k < n; k <<= 1) {
    const int count = std::min(k, n - k);
    const int to = (rank - k + n) % n;
    const int from = (rank + k) % n;
    (void)c.sendrecv(tmp.cview(0, static_cast<std::size_t>(count) * b), to,
                     kTagAllgather,
                     tmp.mview(static_cast<std::size_t>(k) * b,
                               static_cast<std::size_t>(count) * b),
                     from, kTagAllgather);
    have = std::min(n, have + count);
  }
  OMBX_REQUIRE(have == n, "bruck accounting broke");

  for (int i = 0; i < n; ++i) {
    const int r = (rank + i) % n;
    detail::copy_bytes(slice(recv, static_cast<std::size_t>(r) * b, b),
                       tmp.cview(static_cast<std::size_t>(i) * b, b), b);
  }
}

}  // namespace

void allgather(Comm& c, ConstView send, MutView recv,
               net::AllgatherAlgo algo) {
  OMBX_REQUIRE(recv.bytes >= static_cast<std::size_t>(c.size()) * send.bytes,
               "allgather recv buffer too small");
  if (c.size() == 1) {
    detail::copy_bytes(recv, send, send.bytes);
    return;
  }
  if (algo == net::AllgatherAlgo::kAuto) algo = c.net().tuning().allgather;
  if (algo == net::AllgatherAlgo::kAuto) {
    const std::size_t total = static_cast<std::size_t>(c.size()) * send.bytes;
    if (total <= 512 * 1024 && detail::is_pow2(c.size())) {
      algo = net::AllgatherAlgo::kRecursiveDoubling;
    } else if (total <= 512 * 1024 || c.size() > 64) {
      // The ring's n-1 steps dominate for big communicators; Bruck keeps
      // the step count logarithmic.
      algo = net::AllgatherAlgo::kBruck;
    } else {
      algo = net::AllgatherAlgo::kRing;
    }
  }
  detail::CollSpan span(
      c, "allgather", net::to_string(algo), send.bytes,
      detail::CollMeta{.bytes = static_cast<long long>(send.bytes)});
  switch (algo) {
    case net::AllgatherAlgo::kRecursiveDoubling:
      OMBX_REQUIRE(detail::is_pow2(c.size()),
                   "recursive-doubling allgather needs a power-of-two comm");
      allgather_recursive_doubling(c, send, recv);
      break;
    case net::AllgatherAlgo::kBruck:
      allgather_bruck(c, send, recv);
      break;
    case net::AllgatherAlgo::kAuto:
    case net::AllgatherAlgo::kRing:
      allgather_ring(c, send, recv);
      break;
  }
}

}  // namespace ombx::mpi
