#include <algorithm>

#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"

namespace ombx::mpi {

namespace {

using detail::kTagAllreduce;
using detail::Scratch;
using detail::slice;

/// Recursive doubling with the MPICH fold for non-power-of-two sizes.
/// Requires a commutative op (all built-in ops are).
void allreduce_recursive_doubling(Comm& c, ConstView send, MutView recv,
                                  Datatype dt, Op op) {
  const int n = c.size();
  const int rank = c.rank();
  const bool real = detail::real_payload(c, send);
  const std::size_t bytes = send.bytes;

  MutView acc = slice(recv, 0, bytes);
  detail::copy_bytes(acc, send, bytes);
  Scratch tmp(bytes, real, send.space);

  const int p2 = detail::pow2_below(n);
  const int rem = n - p2;

  // Phase 1: the first 2*rem ranks fold pairwise so p2 ranks remain.
  int newrank;
  if (rank < 2 * rem) {
    if (rank % 2 != 0) {
      c.send(detail::as_const(acc), rank - 1, kTagAllreduce);
      newrank = -1;
    } else {
      (void)c.recv(tmp.mview(), rank + 1, kTagAllreduce);
      detail::combine(c, dt, op, acc, tmp.cview(), bytes);
      newrank = rank / 2;
    }
  } else {
    newrank = rank - rem;
  }

  // Phase 2: recursive doubling among the p2 survivors.
  if (newrank >= 0) {
    for (int mask = 1; mask < p2; mask <<= 1) {
      const int partner_new = newrank ^ mask;
      const int partner =
          partner_new < rem ? partner_new * 2 : partner_new + rem;
      (void)c.sendrecv(detail::as_const(acc), partner, kTagAllreduce,
                       tmp.mview(), partner, kTagAllreduce);
      detail::combine(c, dt, op, acc, tmp.cview(), bytes);
    }
  }

  // Phase 3: survivors hand the result back to the folded ranks.
  if (rank < 2 * rem) {
    if (rank % 2 != 0) {
      (void)c.recv(acc, rank - 1, kTagAllreduce);
    } else {
      c.send(detail::as_const(acc), rank + 1, kTagAllreduce);
    }
  }
}

/// Chunk helpers shared with the ring algorithm.
struct Chunk {
  std::size_t off;
  std::size_t len;
};

Chunk chunk_of(std::size_t total, int n, int i) {
  const std::size_t base = total / static_cast<std::size_t>(n);
  const std::size_t rem = total % static_cast<std::size_t>(n);
  const auto ui = static_cast<std::size_t>(i);
  return {base * ui + std::min(ui, rem), base + (ui < rem ? 1 : 0)};
}

/// Ring allreduce (Rabenseifner-style reduce-scatter + allgather): two
/// passes of n-1 steps each, bandwidth-optimal for long vectors.
/// Chunk boundaries are element-aligned so partial reductions never split
/// a datatype element.
void allreduce_ring(Comm& c, ConstView send, MutView recv, Datatype dt,
                    Op op) {
  const int n = c.size();
  const int rank = c.rank();
  const bool real = detail::real_payload(c, send);
  const std::size_t bytes = send.bytes;
  const std::size_t esz = size_of(dt);
  OMBX_REQUIRE(bytes % esz == 0,
               "allreduce byte count not a multiple of the datatype size");
  const std::size_t elems = bytes / esz;

  MutView acc = slice(recv, 0, bytes);
  detail::copy_bytes(acc, send, bytes);

  const auto chunk_b = [&](int i) {
    const Chunk e = chunk_of(elems, n, i);
    return Chunk{e.off * esz, e.len * esz};
  };

  const Chunk largest = chunk_b(0);
  Scratch tmp(largest.len, real, send.space);

  const int right = (rank + 1) % n;
  const int left = (rank - 1 + n) % n;

  // Reduce-scatter pass: after step s, this rank holds the partial sum of
  // chunk (rank - s - 1); after n-1 steps it owns the fully reduced chunk
  // (rank + 1) % n.
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (rank - s + n) % n;
    const int recv_idx = (rank - s - 1 + n) % n;
    const Chunk sc = chunk_b(send_idx);
    const Chunk rc = chunk_b(recv_idx);
    (void)c.sendrecv(slice(detail::as_const(acc), sc.off, sc.len), right,
                     kTagAllreduce, tmp.mview(0, rc.len), left,
                     kTagAllreduce);
    detail::combine(c, dt, op, slice(acc, rc.off, rc.len),
                    tmp.cview(0, rc.len), rc.len);
  }

  // Allgather pass: circulate the reduced chunks.
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (rank + 1 - s + n) % n;
    const int recv_idx = (rank - s + n) % n;
    const Chunk sc = chunk_b(send_idx);
    const Chunk rc = chunk_b(recv_idx);
    (void)c.sendrecv(slice(detail::as_const(acc), sc.off, sc.len), right,
                     kTagAllreduce, slice(acc, rc.off, rc.len), left,
                     kTagAllreduce);
  }
}

void allreduce_reduce_bcast(Comm& c, ConstView send, MutView recv,
                            Datatype dt, Op op) {
  reduce(c, send, recv, dt, op, /*root=*/0);
  bcast(c, slice(recv, 0, send.bytes), /*root=*/0);
}

}  // namespace

void allreduce(Comm& c, ConstView send, MutView recv, Datatype dt, Op op,
               net::AllreduceAlgo algo) {
  OMBX_REQUIRE(recv.bytes >= send.bytes,
               "allreduce recv buffer smaller than contribution");
  if (c.size() == 1) {
    detail::copy_bytes(recv, send, send.bytes);
    return;
  }
  if (algo == net::AllreduceAlgo::kAuto) algo = c.net().tuning().allreduce;
  if (algo == net::AllreduceAlgo::kAuto) {
    // Recursive doubling is latency-optimal (short messages); the ring is
    // bandwidth-optimal but costs 2*(n-1) steps, so it only pays off for
    // long vectors on modest communicator sizes.
    const bool long_vector = send.bytes > 32768 && c.size() <= 64;
    algo = long_vector ? net::AllreduceAlgo::kRing
                       : net::AllreduceAlgo::kRecursiveDoubling;
  }
  detail::CollSpan span(
      c, "allreduce", net::to_string(algo), send.bytes,
      detail::CollMeta{.bytes = static_cast<long long>(send.bytes),
                       .datatype = static_cast<int>(dt),
                       .op = static_cast<int>(op)});
  switch (algo) {
    case net::AllreduceAlgo::kRing:
      allreduce_ring(c, send, recv, dt, op);
      break;
    case net::AllreduceAlgo::kReduceBcast:
      allreduce_reduce_bcast(c, send, recv, dt, op);
      break;
    case net::AllreduceAlgo::kAuto:
    case net::AllreduceAlgo::kRecursiveDoubling:
      allreduce_recursive_doubling(c, send, recv, dt, op);
      break;
  }
}

}  // namespace ombx::mpi
