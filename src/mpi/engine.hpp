// The message-passing engine: per-rank virtual clocks + mailboxes + the
// eager/rendezvous protocol state machine.
//
// Timing model (LogGP-flavoured, priced by net::NetworkModel):
//
//   eager send:    inject = max(clock, nic_free)
//                  sender clock   -> inject + sender_busy(bytes)
//                  sender nic_free-> inject + nic_gap(bytes)
//                  arrival at dst  = inject + transfer(bytes)
//                  recv completes  = max(recv clock, arrival)
//
//   rendezvous:    sender records send_time and blocks on a SyncCell;
//                  when the receiver matches:
//                  start    = max(send_time, recv clock) + handshake
//                  complete = start + transfer(bytes)
//                  both clocks advance to `complete` (synchronous send).
//
// All quantities are virtual microseconds; host thread scheduling cannot
// change any of them, which is what makes benchmark output deterministic.
//
// Failure propagation: abort() poisons every mailbox and pending
// rendezvous SyncCell so blocked peers wake with AbortedError instead of
// hanging (MPI_Abort semantics).  An attached fault::FaultPlan injects
// deterministic, seeded faults — eager-message drops priced as timeout +
// retransmit in virtual time, payload corruption, link-degradation
// windows, stragglers, and rank kills — without breaking determinism.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "check/checker.hpp"
#include "fault/fault.hpp"
#include "fault/watchdog.hpp"
#include "ft/ft.hpp"
#include "mpi/mailbox.hpp"
#include "mpi/message.hpp"
#include "mpi/trace.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "simtime/clock.hpp"
#include "simtime/work.hpp"

namespace ombx::mpi {

/// Whether messages physically carry their payload.  kSynthetic keeps all
/// virtual-time math identical but moves no bytes — required for at-scale
/// runs (e.g. 896-rank Allgather) whose aggregate buffers exceed host RAM.
enum class PayloadMode { kReal, kSynthetic };

/// What post_send may assume about the caller's buffer lifetime.
enum class SendBuffering {
  /// The buffer may die as soon as post_send returns (isend and internal
  /// staging): rendezvous payloads are copied into pooled storage at post
  /// time.
  kBuffered,
  /// The caller blocks on the returned SyncCell until it completes
  /// (blocking send): rendezvous goes zero-copy — the receiver reads the
  /// sender's buffer directly and only then releases the cell.
  kZeroCopy,
};

/// Mutable per-rank simulation state.  Only the owning rank thread touches
/// its own state; cross-thread communication goes through mailboxes.
struct RankState {
  simtime::SimClock clock;
  usec_t nic_free = 0.0;  ///< when this rank's NIC can inject the next msg
  simtime::WorkCounter work;

  /// The eager cost triple for the last (link, bytes) this rank sent.
  /// All three are pure functions of the key and the immutable network
  /// model, so replaying the cached doubles is bit-identical to
  /// recomputing them — and benchmark loops (fixed size, fixed peer) hit
  /// the memo on every iteration, skipping the float pipeline entirely.
  struct EagerPrices {
    bool valid = false;
    net::LinkClass link{};
    std::size_t bytes = 0;
    usec_t transfer = 0.0;
    usec_t busy = 0.0;
    usec_t gap = 0.0;
  } eager_prices;
};

class Engine {
 public:
  Engine(net::NetworkModel model, int nranks, PayloadMode payload,
         net::ThreadLevel thread_level, std::size_t mailbox_capacity = 8192);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] PayloadMode payload_mode() const noexcept { return payload_; }
  [[nodiscard]] const net::NetworkModel& net() const noexcept {
    return model_;
  }
  [[nodiscard]] net::ThreadLevel thread_level() const noexcept {
    return thread_level_;
  }

  /// Full-subscription THREAD_MULTIPLE slowdown multiplier for local work.
  [[nodiscard]] double oversub() const noexcept { return oversub_; }

  /// Slowdown applied to CPU-driven (shared-memory) transfers between this
  /// pair: under THREAD_MULTIPLE on a saturated node the library's progress
  /// threads steal cycles from the memcpy loops (the paper's explanation
  /// for the full-subscription degradation).  1.0 on fabric links and in
  /// THREAD_SINGLE mode.
  [[nodiscard]] double shm_slowdown(int src_world, int dst_world,
                                    net::MemSpace space) const;
  /// Same, with the link class already resolved (per-message hot path).
  [[nodiscard]] double shm_slowdown(net::LinkClass link) const;

  [[nodiscard]] RankState& state(int world_rank);

  /// Post a message.  Returns the rendezvous SyncCell when the protocol is
  /// rendezvous (caller decides whether to block now — blocking send — or
  /// at MPI_Wait — isend); returns nullptr for eager sends.
  ///
  /// `src_comm_rank` is the sender's rank *within the communicator* (the
  /// matching key receivers use); `src_world`/`dst_world` address physical
  /// ranks for routing and cost lookup.
  ///
  /// `force_payload` makes the bytes travel even in PayloadMode::kSynthetic
  /// — used by control-plane traffic (communicator management) whose
  /// *content* the receiver genuinely needs.
  ///
  /// `buffering` is kZeroCopy ONLY when the caller awaits the returned
  /// cell before reusing or freeing `v` (Comm::send does; isend must not).
  std::shared_ptr<SyncCell> post_send(int src_world, int dst_world, int ctx,
                                      int src_comm_rank, int tag,
                                      ConstView v,
                                      bool force_payload = false,
                                      SendBuffering buffering =
                                          SendBuffering::kBuffered);

  /// Blocking receive into `v`; returns completion Status.
  /// `src_world_hint` (optional) is the world rank behind `src_comm_rank`
  /// when the caller knows it (Comm::recv always does for exact sources);
  /// it enables the mailbox's lock-free exact-match pop.  -1 is always
  /// correct.
  Status recv(int self_world, int ctx, int src_comm_rank, int tag, MutView v,
              int src_world_hint = -1);

  /// Block on a rendezvous cell posted by `world_rank`, registering the
  /// wait with the watchdog; advances the rank's clock on completion.
  /// Throws AbortedError when the cell is poisoned by an abort.
  void await_cell(int world_rank, SyncCell& cell);

  /// Blocking probe (does not dequeue).  Charges no virtual time.
  [[nodiscard]] Status probe(int self_world, int ctx, int src, int tag);

  /// Non-blocking probe.
  [[nodiscard]] std::optional<Status> iprobe(int self_world, int ctx, int src,
                                             int tag);

  /// Allocate a fresh communicator context id (globally unique).
  [[nodiscard]] int allocate_context() noexcept {
    return next_context_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Reset all clocks/NIC state between benchmark repetitions.  Also
  /// clears any abort poison and re-arms the watchdog registry, so a
  /// World can run again after a failed program.
  void reset_clocks();

  /// Charge local compute to a rank's clock (priced flops, with the
  /// THREAD_MULTIPLE oversubscription factor applied).
  void charge_flops(int world_rank, double flops);
  /// Charge streaming byte work (copies, serialization) likewise.
  void charge_bytes(int world_rank, double bytes);

  // ---- Failure propagation -------------------------------------------------

  /// MPI_Abort analogue: records the first abort (origin rank + reason)
  /// and poisons every mailbox and pending rendezvous cell, so all blocked
  /// ranks wake with AbortedError.  Idempotent; later calls are ignored.
  void abort(int origin_rank, const std::string& reason,
             bool deadlock = false);

  /// Abort descriptor, null while no abort has been raised.
  [[nodiscard]] std::shared_ptr<const fault::AbortInfo> abort_info() const;

  /// Attach a fault-injection plan (null to detach).  The plan must
  /// outlive all runs that use it.
  void set_fault_plan(std::shared_ptr<fault::FaultPlan> plan);
  [[nodiscard]] fault::FaultPlan* fault_plan() const noexcept {
    return fault_.get();
  }

  /// Blocked-wait bookkeeping consumed by the deadlock watchdog.
  [[nodiscard]] fault::WaitRegistry& wait_registry() noexcept {
    return registry_;
  }

  // ---- ULFM fault tolerance (ft/ft.hpp) -----------------------------------

  /// Turn on ULFM-style fault tolerance: a fault-plan kill dead-marks the
  /// rank instead of aborting the world, operations involving it raise
  /// ft::ProcFailedError at the caller, and Comm gains revoke / shrink /
  /// agree.  Off (null failure_state) by default — the disabled path is
  /// byte-identical to a build without this subsystem.
  void enable_ft(const ft::FtConfig& cfg);
  [[nodiscard]] ft::FailureState* failure_state() noexcept {
    return ft_.get();
  }

  /// Record a communicator's membership for failure scoping (no-op when
  /// FT is disabled).  Every Comm constructor calls it; first rank wins.
  void ft_register_comm(int ctx, const std::vector<int>& members);

  /// FT mode: dead-mark a killed rank, wake every blocked wait so it can
  /// re-evaluate, and interrupt rendezvous cells waiting on the corpse.
  /// Called by World::run when a rank's RankKilledError surfaces.
  void mark_rank_failed(int world_rank, usec_t at_time_us);

  /// Comm::revoke backend: revoke `ctx` (first call wins), exit-mark the
  /// caller, excuse the context with the checker, and wake waiters.
  /// Returns true for the initiating call.
  bool ft_revoke(int ctx, int world_rank, usec_t at_time_us);

  /// Comm::shrink backend: exit-mark the caller on the old context and
  /// block in the survivor barrier (arrived-or-dead completion rule).
  ft::ShrinkResult ft_shrink(int ctx, int world_rank, usec_t now);

  /// Comm::agree backend: fault-tolerant bitmask agreement.
  ft::AgreeResult ft_agree(int ctx, int world_rank, usec_t now,
                           std::uint32_t bits);

  /// Turn on event tracing (records every send/recv/compute with virtual
  /// timestamps; see trace.hpp).  Traces are cleared by reset_clocks().
  void enable_tracing();
  [[nodiscard]] Tracer* tracer() noexcept { return tracer_.get(); }

  /// Attach a scheduling oracle (explore/explore.hpp) to every mailbox
  /// and to the rendezvous-claim path; null detaches.  NOT cleared by
  /// reset_clocks(): one oracle observes every run a driver executes, and
  /// exploration re-arms it per schedule.
  void set_oracle(explore::ScheduleOracle* oracle);
  [[nodiscard]] explore::ScheduleOracle* oracle() const noexcept {
    return oracle_;
  }

  /// Turn on per-rank metrics counters (obs/metrics.hpp).  Counting never
  /// touches virtual clocks — benchmark outputs are byte-identical with
  /// metrics on or off.  Counters are re-zeroed by reset_clocks().
  void enable_metrics();
  [[nodiscard]] obs::Metrics* metrics() noexcept { return metrics_.get(); }

  /// Turn on the dynamic MPI-usage verifier (check/checker.hpp).  Like
  /// tracing and metrics, checking never touches virtual clocks: results
  /// are byte-identical with the checker on (and violation-free) or off.
  void enable_checking(check::Mode mode);
  [[nodiscard]] check::Checker* checker() noexcept { return checker_.get(); }

  /// Finalize audit (checker enabled only): report unreceived mailbox
  /// residue, incomplete collective epochs and payload buffers still held
  /// by undelivered messages.  Called by World::run after a clean join.
  void run_check_audit();

  /// Recycled payload storage for eager / buffered-rendezvous messages
  /// (exposed for the wall-clock bench and pool tests).
  [[nodiscard]] PayloadPool& payload_pool() noexcept { return pool_; }

  /// Aggregated mailbox fast-/slow-path split across all ranks (see
  /// Mailbox::FastStats).  Host-timing-dependent by nature, so surfaced
  /// here for benches/diagnostics instead of the deterministic obs CSV.
  struct FastPathTotals {
    std::uint64_t fast_enqueues = 0;
    std::uint64_t slow_enqueues = 0;
    std::uint64_t fast_hits = 0;
    std::uint64_t fast_fallbacks = 0;
    std::uint64_t drained = 0;
    std::uint64_t ring_depth_hwm = 0;  ///< max over ranks
  };
  [[nodiscard]] FastPathTotals fast_path_totals() const noexcept;

 private:
  /// Throws AbortedError when an abort is pending and RankKilledError when
  /// the fault plan scheduled this rank's death before its current virtual
  /// time.  Called at the top of every substrate operation.
  void check_failures(int world_rank);

  /// Bookkeeping for an FT interruption raised at one of this rank's call
  /// sites: advance the clock past the event by the detection/revocation
  /// latency and bump the plan + metrics counters.
  void ft_observe_interrupt(int world_rank, usec_t event_time,
                            bool proc_failed);
  /// Wake blocked waits and interrupt cells targeting `world_rank` on
  /// `ctx` after an exit mark (revoke()/shrink() entry).
  void ft_wake_after_exit(int ctx, int world_rank, usec_t at_time_us);

  net::NetworkModel model_;
  PayloadMode payload_;
  net::ThreadLevel thread_level_;
  double oversub_ = 1.0;
  fault::WaitRegistry registry_;
  // pool_ must outlive mail_: destroying a mailbox destroys its queued
  // messages, whose payload handles recycle buffers into the pool.
  PayloadPool pool_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  std::vector<std::unique_ptr<Mailbox>> mail_;
  std::atomic<int> next_context_{1};  // 0 is COMM_WORLD
  std::unique_ptr<Tracer> tracer_;    // null unless tracing is enabled
  std::unique_ptr<obs::Metrics> metrics_;  // null unless metrics enabled
  std::unique_ptr<check::Checker> checker_;  // null unless checking enabled

  std::shared_ptr<fault::FaultPlan> fault_;
  std::unique_ptr<ft::FailureState> ft_;  // null unless FT is enabled
  explore::ScheduleOracle* oracle_ = nullptr;  // null unless exploring
  std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mutex_;
  std::shared_ptr<const fault::AbortInfo> abort_;
  std::mutex cells_mutex_;
  std::vector<std::weak_ptr<SyncCell>> pending_cells_;
};

}  // namespace ombx::mpi
