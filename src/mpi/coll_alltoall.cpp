#include <vector>

#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"
#include "mpi/request.hpp"

namespace ombx::mpi {

namespace {

using detail::kTagAlltoall;
using detail::slice;

/// Scattered non-blocking exchange: post every irecv, then isend to peers
/// in (rank + i) order to avoid hot-spotting a single destination.
void alltoall_linear(Comm& c, ConstView send, MutView recv) {
  const int n = c.size();
  const int rank = c.rank();
  const std::size_t b = send.bytes / static_cast<std::size_t>(n);

  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(2 * (n - 1)));
  for (int i = 1; i < n; ++i) {
    const int src = (rank - i + n) % n;
    reqs.push_back(c.irecv(
        slice(recv, static_cast<std::size_t>(src) * b, b), src,
        kTagAlltoall));
  }
  for (int i = 1; i < n; ++i) {
    const int dst = (rank + i) % n;
    reqs.push_back(c.isend(
        slice(send, static_cast<std::size_t>(dst) * b, b), dst,
        kTagAlltoall));
  }
  detail::copy_bytes(slice(recv, static_cast<std::size_t>(rank) * b, b),
                     slice(send, static_cast<std::size_t>(rank) * b, b), b);
  (void)Request::wait_all(reqs);
}

/// Pairwise exchange: n-1 synchronized steps; XOR pairing on power-of-two
/// communicators, shifted pairing otherwise.
void alltoall_pairwise(Comm& c, ConstView send, MutView recv) {
  const int n = c.size();
  const int rank = c.rank();
  const std::size_t b = send.bytes / static_cast<std::size_t>(n);

  detail::copy_bytes(slice(recv, static_cast<std::size_t>(rank) * b, b),
                     slice(send, static_cast<std::size_t>(rank) * b, b), b);
  for (int s = 1; s < n; ++s) {
    int to;
    int from;
    if (detail::is_pow2(n)) {
      to = from = rank ^ s;
    } else {
      to = (rank + s) % n;
      from = (rank - s + n) % n;
    }
    (void)c.sendrecv(slice(send, static_cast<std::size_t>(to) * b, b), to,
                     kTagAlltoall,
                     slice(recv, static_cast<std::size_t>(from) * b, b),
                     from, kTagAlltoall);
  }
}

}  // namespace

void alltoall(Comm& c, ConstView send, MutView recv,
              net::AlltoallAlgo algo) {
  const std::size_t n = static_cast<std::size_t>(c.size());
  OMBX_REQUIRE(send.bytes % n == 0,
               "alltoall send buffer not divisible into equal blocks");
  OMBX_REQUIRE(recv.bytes >= send.bytes, "alltoall recv buffer too small");
  if (c.size() == 1) {
    detail::copy_bytes(recv, send, send.bytes);
    return;
  }
  if (algo == net::AlltoallAlgo::kAuto) algo = c.net().tuning().alltoall;
  if (algo == net::AlltoallAlgo::kAuto) {
    // The scattered non-blocking exchange overlaps everything but posts
    // O(n) requests; pairwise bounds memory and self-throttles.
    algo = c.size() <= 32 ? net::AlltoallAlgo::kLinear
                          : net::AlltoallAlgo::kPairwise;
  }
  detail::CollSpan span(
      c, "alltoall", net::to_string(algo), send.bytes,
      detail::CollMeta{.bytes = static_cast<long long>(send.bytes)});
  switch (algo) {
    case net::AlltoallAlgo::kLinear:
      alltoall_linear(c, send, recv);
      break;
    case net::AlltoallAlgo::kAuto:
    case net::AlltoallAlgo::kPairwise:
      alltoall_pairwise(c, send, recv);
      break;
  }
}

}  // namespace ombx::mpi
