#include <algorithm>

#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"

namespace ombx::mpi {

namespace {

using detail::kTagGather;
using detail::Scratch;
using detail::slice;

void gather_linear(Comm& c, ConstView send, MutView recv, int root) {
  const int n = c.size();
  const std::size_t b = send.bytes;
  if (c.rank() != root) {
    c.send(send, root, kTagGather);
    return;
  }
  detail::copy_bytes(slice(recv, static_cast<std::size_t>(root) * b, b),
                     send, b);
  for (int r = 0; r < n; ++r) {
    if (r == root) continue;
    (void)c.recv(slice(recv, static_cast<std::size_t>(r) * b, b), r,
                 kTagGather);
  }
}

/// Binomial gather: node vrank accumulates the contiguous (in vrank space)
/// block range [vrank, vrank + held) and forwards it to its parent in one
/// message.  The root un-rotates from vrank order into rank order.
void gather_binomial(Comm& c, ConstView send, MutView recv, int root) {
  const int n = c.size();
  const int rank = c.rank();
  const int vrank = (rank - root + n) % n;
  const std::size_t b = send.bytes;
  const bool real = detail::real_payload(c, send);

  // Scratch sized for the largest range this node can hold.  The root
  // needs all n blocks; an interior node at most its subtree.
  const int max_held = vrank == 0 ? n : std::min(detail::pow2_below(n) * 2,
                                                 n - vrank);
  Scratch acc(static_cast<std::size_t>(max_held) * b, real, send.space);
  detail::copy_bytes(acc.mview(0, b), send, b);

  int held = 1;
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = ((vrank - mask) + root) % n;
      c.send(acc.cview(0, static_cast<std::size_t>(held) * b), parent,
             kTagGather);
      break;
    }
    const int child_v = vrank + mask;
    if (child_v < n) {
      const int child_held = std::min(mask, n - child_v);
      const int child = (child_v + root) % n;
      (void)c.recv(acc.mview(static_cast<std::size_t>(held) * b,
                             static_cast<std::size_t>(child_held) * b),
                   child, kTagGather);
      held += child_held;
    }
    mask <<= 1;
  }

  if (vrank == 0) {
    // acc holds block of vrank v at offset v*b; user layout wants block of
    // rank r at offset r*b, where r = (v + root) % n.
    for (int v = 0; v < n; ++v) {
      const int r = (v + root) % n;
      detail::copy_bytes(slice(recv, static_cast<std::size_t>(r) * b, b),
                         acc.cview(static_cast<std::size_t>(v) * b, b), b);
    }
  }
}

}  // namespace

void gather(Comm& c, ConstView send, MutView recv, int root,
            net::GatherAlgo algo) {
  OMBX_REQUIRE(root >= 0 && root < c.size(), "gather root out of range");
  if (c.rank() == root) {
    OMBX_REQUIRE(recv.bytes >=
                     static_cast<std::size_t>(c.size()) * send.bytes,
                 "gather recv buffer too small");
  }
  if (c.size() == 1) {
    detail::copy_bytes(recv, send, send.bytes);
    return;
  }
  if (algo == net::GatherAlgo::kAuto) algo = c.net().tuning().gather;
  if (algo == net::GatherAlgo::kAuto) algo = net::GatherAlgo::kBinomial;
  detail::CollSpan span(
      c, "gather", net::to_string(algo), send.bytes,
      detail::CollMeta{.root = root,
                       .bytes = static_cast<long long>(send.bytes)});
  switch (algo) {
    case net::GatherAlgo::kLinear:
      gather_linear(c, send, recv, root);
      break;
    case net::GatherAlgo::kAuto:
    case net::GatherAlgo::kBinomial:
      gather_binomial(c, send, recv, root);
      break;
  }
}

}  // namespace ombx::mpi
