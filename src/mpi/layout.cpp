#include "mpi/layout.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/error.hpp"

namespace ombx::mpi {

std::size_t IndexedLayout::packed_bytes() const noexcept {
  std::size_t n = 0;
  for (const std::size_t len : lengths) n += len;
  return n;
}

std::size_t IndexedLayout::extent_bytes() const noexcept {
  std::size_t end = 0;
  for (std::size_t i = 0; i < offsets.size() && i < lengths.size(); ++i) {
    end = std::max(end, offsets[i] + lengths[i]);
  }
  return end;
}

std::size_t pack(const VectorLayout& l, ConstView src, MutView dst) {
  OMBX_REQUIRE(l.stride_bytes >= l.block_bytes,
               "vector layout stride smaller than block");
  OMBX_REQUIRE(src.bytes >= l.extent_bytes(), "pack source too small");
  OMBX_REQUIRE(dst.bytes >= l.packed_bytes(), "pack destination too small");
  if (src.data != nullptr && dst.data != nullptr) {
    for (std::size_t b = 0; b < l.count; ++b) {
      std::memcpy(dst.data + b * l.block_bytes,
                  src.data + b * l.stride_bytes, l.block_bytes);
    }
  }
  return l.packed_bytes();
}

std::size_t unpack(const VectorLayout& l, ConstView src, MutView dst) {
  OMBX_REQUIRE(l.stride_bytes >= l.block_bytes,
               "vector layout stride smaller than block");
  OMBX_REQUIRE(src.bytes >= l.packed_bytes(), "unpack source too small");
  OMBX_REQUIRE(dst.bytes >= l.extent_bytes(),
               "unpack destination too small");
  if (src.data != nullptr && dst.data != nullptr) {
    for (std::size_t b = 0; b < l.count; ++b) {
      std::memcpy(dst.data + b * l.stride_bytes,
                  src.data + b * l.block_bytes, l.block_bytes);
    }
  }
  return l.packed_bytes();
}

std::size_t pack(const IndexedLayout& l, ConstView src, MutView dst) {
  OMBX_REQUIRE(l.offsets.size() == l.lengths.size(),
               "indexed layout offset/length mismatch");
  OMBX_REQUIRE(src.bytes >= l.extent_bytes(), "pack source too small");
  OMBX_REQUIRE(dst.bytes >= l.packed_bytes(), "pack destination too small");
  std::size_t out = 0;
  for (std::size_t i = 0; i < l.offsets.size(); ++i) {
    if (src.data != nullptr && dst.data != nullptr) {
      std::memcpy(dst.data + out, src.data + l.offsets[i], l.lengths[i]);
    }
    out += l.lengths[i];
  }
  return out;
}

std::size_t unpack(const IndexedLayout& l, ConstView src, MutView dst) {
  OMBX_REQUIRE(l.offsets.size() == l.lengths.size(),
               "indexed layout offset/length mismatch");
  OMBX_REQUIRE(src.bytes >= l.packed_bytes(), "unpack source too small");
  OMBX_REQUIRE(dst.bytes >= l.extent_bytes(),
               "unpack destination too small");
  std::size_t in = 0;
  for (std::size_t i = 0; i < l.offsets.size(); ++i) {
    if (src.data != nullptr && dst.data != nullptr) {
      std::memcpy(dst.data + l.offsets[i], src.data + in, l.lengths[i]);
    }
    in += l.lengths[i];
  }
  return in;
}

simtime::usec_t pack_cost_us(const Comm& c, std::size_t packed_bytes,
                             std::size_t block_bytes,
                             std::size_t stride_bytes) {
  // Blocks below a cache line waste most of each line they touch; the
  // penalty interpolates between streaming (contiguous) and ~4x (tiny
  // blocks over a large stride).
  constexpr double kLine = 64.0;
  double penalty = 1.0;
  if (stride_bytes > block_bytes && block_bytes > 0) {
    penalty = std::min(4.0, 1.0 + kLine / static_cast<double>(block_bytes));
  }
  return c.net().cluster().compute.byte_time(
             static_cast<double>(packed_bytes)) *
         penalty;
}

void send_strided(const Comm& c, const VectorLayout& l, ConstView src,
                  int dst, int tag) {
  std::vector<std::byte> staging;
  const bool real =
      c.engine().payload_mode() == PayloadMode::kReal && src.data != nullptr;
  if (real) staging.resize(l.packed_bytes());
  MutView stage{real ? staging.data() : nullptr, l.packed_bytes(),
                src.space};
  (void)pack(l, src, stage);
  c.clock().advance(
      pack_cost_us(c, l.packed_bytes(), l.block_bytes, l.stride_bytes));
  c.send(ConstView{stage.data, stage.bytes, src.space}, dst, tag);
}

Status recv_strided(const Comm& c, const VectorLayout& l, MutView dst,
                    int src, int tag) {
  std::vector<std::byte> staging;
  const bool real =
      c.engine().payload_mode() == PayloadMode::kReal && dst.data != nullptr;
  if (real) staging.resize(l.packed_bytes());
  MutView stage{real ? staging.data() : nullptr, l.packed_bytes(),
                dst.space};
  const Status st = c.recv(stage, src, tag);
  (void)unpack(l, ConstView{stage.data, stage.bytes, dst.space}, dst);
  c.clock().advance(
      pack_cost_us(c, l.packed_bytes(), l.block_bytes, l.stride_bytes));
  return st;
}

}  // namespace ombx::mpi
