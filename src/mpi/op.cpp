#include "mpi/op.hpp"

#include <algorithm>
#include <cstdint>

#include "mpi/error.hpp"

namespace ombx::mpi {

std::string to_string(Op op) {
  switch (op) {
    case Op::kSum: return "MPI_SUM";
    case Op::kProd: return "MPI_PROD";
    case Op::kMin: return "MPI_MIN";
    case Op::kMax: return "MPI_MAX";
    case Op::kLand: return "MPI_LAND";
    case Op::kLor: return "MPI_LOR";
    case Op::kBand: return "MPI_BAND";
    case Op::kBor: return "MPI_BOR";
  }
  return "unknown";
}

bool valid_for(Op op, Datatype dt) noexcept {
  const bool is_float = dt == Datatype::kFloat || dt == Datatype::kDouble;
  switch (op) {
    case Op::kBand:
    case Op::kBor:
      return !is_float;
    default:
      return true;
  }
}

namespace {

template <typename T>
void combine_arith(Op op, T* inout, const T* in, std::size_t count) {
  switch (op) {
    case Op::kSum:
      for (std::size_t i = 0; i < count; ++i) inout[i] += in[i];
      break;
    case Op::kProd:
      for (std::size_t i = 0; i < count; ++i) inout[i] *= in[i];
      break;
    case Op::kMin:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::min(inout[i], in[i]);
      break;
    case Op::kMax:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::max(inout[i], in[i]);
      break;
    case Op::kLand:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = static_cast<T>((inout[i] != T{}) && (in[i] != T{}));
      break;
    case Op::kLor:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = static_cast<T>((inout[i] != T{}) || (in[i] != T{}));
      break;
    default:
      throw Error("bitwise op applied to non-integer combine path");
  }
}

template <typename T>
void combine_bitwise(Op op, T* inout, const T* in, std::size_t count) {
  switch (op) {
    case Op::kBand:
      for (std::size_t i = 0; i < count; ++i) inout[i] &= in[i];
      break;
    case Op::kBor:
      for (std::size_t i = 0; i < count; ++i) inout[i] |= in[i];
      break;
    default:
      combine_arith(op, inout, in, count);
      break;
  }
}

}  // namespace

std::size_t apply(Op op, Datatype dt, void* inout, const void* in,
                  std::size_t count) {
  OMBX_REQUIRE(valid_for(op, dt),
               to_string(op) + " is not valid for " + to_string(dt));
  if (inout == nullptr || in == nullptr) return count;  // synthetic payloads
  switch (dt) {
    case Datatype::kByte:
    case Datatype::kChar:
      combine_bitwise(op, static_cast<std::uint8_t*>(inout),
                      static_cast<const std::uint8_t*>(in), count);
      break;
    case Datatype::kInt32:
      combine_bitwise(op, static_cast<std::int32_t*>(inout),
                      static_cast<const std::int32_t*>(in), count);
      break;
    case Datatype::kInt64:
      combine_bitwise(op, static_cast<std::int64_t*>(inout),
                      static_cast<const std::int64_t*>(in), count);
      break;
    case Datatype::kUint64:
      combine_bitwise(op, static_cast<std::uint64_t*>(inout),
                      static_cast<const std::uint64_t*>(in), count);
      break;
    case Datatype::kFloat:
      combine_arith(op, static_cast<float*>(inout),
                    static_cast<const float*>(in), count);
      break;
    case Datatype::kDouble:
      combine_arith(op, static_cast<double*>(inout),
                    static_cast<const double*>(in), count);
      break;
  }
  return count;
}

}  // namespace ombx::mpi
