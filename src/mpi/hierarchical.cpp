#include "mpi/hierarchical.hpp"

#include "mpi/coll_util.hpp"
#include "mpi/error.hpp"

namespace ombx::mpi {

HierarchicalComm::HierarchicalComm(const Comm& comm)
    : world_(std::make_unique<Comm>(comm)) {
  const auto& mapper = comm.net().mapper();
  const int my_node =
      mapper.place(comm.world_rank(comm.rank())).node;

  auto node = comm.split(my_node, comm.rank());
  OMBX_REQUIRE(node.has_value(), "node split must produce a communicator");
  node_ = std::make_unique<Comm>(*std::move(node));

  // Leaders: node-local rank 0.  Everyone participates in the split; the
  // non-leaders opt out with a negative color.
  leaders_ = comm.split(node_->rank() == 0 ? 0 : -1, comm.rank());

  // Node count follows from the block placement — no traffic needed
  // (and therefore valid in synthetic-payload worlds too).
  n_nodes_ = mapper.place(comm.world_rank(comm.size() - 1)).node + 1;
}

void HierarchicalComm::allreduce(ConstView send, MutView recv, Datatype dt,
                                 Op op) {
  // Phase 1: node-level reduce to the local leader over shared memory.
  reduce(*node_, send, recv, dt, op, /*root=*/0);

  // Phase 2: leaders combine across the fabric.
  if (leaders_.has_value()) {
    detail::Scratch tmp(send.bytes, detail::real_payload(*world_, send),
                        send.space);
    detail::copy_bytes(tmp.mview(), detail::as_const(recv), send.bytes);
    mpi::allreduce(*leaders_, tmp.cview(), recv, dt, op);
  }

  // Phase 3: leaders fan the result back out within their node.
  mpi::bcast(*node_, detail::slice(recv, 0, send.bytes), /*root=*/0);
}

void HierarchicalComm::bcast(MutView buf) {
  if (leaders_.has_value()) {
    mpi::bcast(*leaders_, buf, /*root=*/0);
  }
  mpi::bcast(*node_, buf, /*root=*/0);
}

void HierarchicalComm::barrier() {
  mpi::barrier(*node_);
  if (leaders_.has_value()) mpi::barrier(*leaders_);
  mpi::bcast(*node_, MutView{}, /*root=*/0);  // release
}

}  // namespace ombx::mpi
