// ULFM recovery verbs on Comm (WorldConfig::ft).  Thin wrappers over the
// engine's ft_* backends; every verb advances the caller's virtual clock
// to the protocol's deterministic completion time, so recovery costs show
// up in benchmark results exactly like communication costs do.
#include <algorithm>

#include "mpi/comm.hpp"
#include "mpi/error.hpp"

namespace ombx::mpi {

void Comm::revoke() const {
  engine_->ft_revoke(context_, my_world_, now());
  // The revoking rank pays one broadcast latency (interrupted waiters pay
  // it too, relative to the revocation time — see ft_observe_interrupt).
  clock().advance(engine_->failure_state()->config().revoke_latency_us);
}

Comm Comm::shrink() const {
  const ft::ShrinkResult res = engine_->ft_shrink(context_, my_world_, now());
  clock().advance_to(res.completion_us);
  const auto it =
      std::find(res.survivors.begin(), res.survivors.end(), my_world_);
  OMBX_REQUIRE_AT(it != res.survivors.end(),
                  "shrink caller missing from survivor set", my_world_,
                  context_);
  const int new_rank = static_cast<int>(it - res.survivors.begin());
  return Comm(*engine_, res.context, res.survivors, new_rank);
}

Comm::AgreeOutcome Comm::agree(std::uint32_t bits) const {
  const ft::AgreeResult res =
      engine_->ft_agree(context_, my_world_, now(), bits);
  clock().advance_to(res.completion_us);
  return AgreeOutcome{res.bits, res.new_failures};
}

int Comm::failure_ack() const {
  OMBX_REQUIRE_AT(engine_->failure_state() != nullptr,
                  "failure_ack() requires FT mode (WorldConfig::ft)",
                  my_world_, context_);
  return engine_->failure_state()->failure_ack(context_, my_world_);
}

std::vector<int> Comm::get_failed() const {
  OMBX_REQUIRE_AT(engine_->failure_state() != nullptr,
                  "get_failed() requires FT mode (WorldConfig::ft)",
                  my_world_, context_);
  return engine_->failure_state()->get_failed(context_);
}

}  // namespace ombx::mpi
