#include "mpi/payload_pool.hpp"

#include <bit>
#include <cstring>

namespace ombx::mpi {

namespace {
constexpr std::size_t kMinExp = 7;  // log2(PayloadPool::kMinBucketBytes)

std::size_t bucket_bytes(std::size_t b) noexcept {
  return PayloadPool::kMinBucketBytes << b;
}
}  // namespace

void PooledPayload::release() noexcept {
  if (pool_ != nullptr) {
    pool_->recycle(std::move(heap_));
    pool_ = nullptr;
  }
  heap_ = {};
  size_ = 0;
  inline_ = false;
}

std::size_t PayloadPool::bucket_for_acquire(std::size_t n) noexcept {
  // Smallest b with kMinBucketBytes << b >= n.
  const auto w = static_cast<std::size_t>(std::bit_width(n - 1));
  return w <= kMinExp ? 0 : w - kMinExp;
}

std::size_t PayloadPool::bucket_for_recycle(std::size_t capacity) noexcept {
  // Largest b with kMinBucketBytes << b <= capacity.
  const auto w = static_cast<std::size_t>(std::bit_width(capacity));
  const std::size_t b = w - 1 >= kMinExp ? w - 1 - kMinExp : 0;
  return b < kNumBuckets ? b : kNumBuckets - 1;
}

PooledPayload PayloadPool::acquire_copy(const std::byte* src,
                                        std::size_t n) {
  PooledPayload p;
  if (n == 0) return p;  // the 0-byte path: no lock, no allocation
  p.size_ = n;
  if (n <= PooledPayload::kInlineBytes) {
    p.inline_ = true;
    std::memcpy(p.sbo_.data(), src, n);
    stats_.inline_grabs.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  if (n > kMaxBucketBytes) {
    // Too large to be worth hoarding; plain heap storage.
    p.heap_.assign(src, src + n);
    stats_.allocs.fetch_add(1, std::memory_order_relaxed);
    stats_.heap_grabs.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  const std::size_t b = bucket_for_acquire(n);
  Bucket& bucket = buckets_[b];
  {
    std::lock_guard<SpinLock> lk(bucket.m);
    if (!bucket.free.empty()) {
      p.heap_ = std::move(bucket.free.back());
      bucket.free.pop_back();
    }
  }
  if (p.heap_.capacity() >= n) {
    stats_.reuses.fetch_add(1, std::memory_order_relaxed);
  } else {
    p.heap_.reserve(bucket_bytes(b));
    stats_.allocs.fetch_add(1, std::memory_order_relaxed);
  }
  // assign() copies without the zero-fill a resize() would pay, and cannot
  // reallocate: capacity >= bucket size >= n.
  p.heap_.assign(src, src + n);
  p.pool_ = this;
  return p;
}

void PayloadPool::recycle(std::vector<std::byte>&& v) noexcept {
  if (v.capacity() < kMinBucketBytes) {
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    return;  // v freed on scope exit
  }
  const std::size_t b = bucket_for_recycle(v.capacity());
  Bucket& bucket = buckets_[b];
  std::lock_guard<SpinLock> lk(bucket.m);
  if (bucket.free.size() >= kMaxFreePerBucket) {
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (bucket.free.capacity() == 0) bucket.free.reserve(kMaxFreePerBucket);
  bucket.free.push_back(std::move(v));
  stats_.recycled.fetch_add(1, std::memory_order_relaxed);
}

std::size_t PayloadPool::free_buffers() const {
  std::size_t n = 0;
  for (const Bucket& b : buckets_) {
    std::lock_guard<SpinLock> lk(b.m);
    n += b.free.size();
  }
  return n;
}

void PayloadPool::trim() {
  for (Bucket& b : buckets_) {
    std::lock_guard<SpinLock> lk(b.m);
    b.free.clear();
    b.free.shrink_to_fit();
  }
}

}  // namespace ombx::mpi
