#include "mpi/payload_pool.hpp"

#include <bit>
#include <cstring>
#include <new>

namespace ombx::mpi {

namespace {
constexpr std::size_t kMinExp = 7;  // log2(PayloadPool::kMinBucketBytes)

std::size_t bucket_bytes(std::size_t b) noexcept {
  return PayloadPool::kMinBucketBytes << b;
}

std::byte* alloc_block(std::size_t bytes) {
  return static_cast<std::byte*>(::operator new(bytes));
}

void free_block(std::byte* p) noexcept { ::operator delete(p); }
}  // namespace

void PooledPayload::release() noexcept {
  if (pool_ != nullptr) {
    pool_->recycle(block_, block_cap_);
    pool_ = nullptr;
    block_ = nullptr;
    block_cap_ = 0;
  }
  heap_ = {};
  size_ = 0;
  inline_ = false;
}

// ---- FreeRing (bounded MPMC, Vyukov sequence-tagged cells) ----------------

bool PayloadPool::FreeRing::push(std::byte* p) noexcept {
  constexpr std::size_t kMask = kMaxFreePerBucket - 1;
  std::size_t pos = enq.load(std::memory_order_relaxed);
  for (;;) {
    Cell& c = cells[pos & kMask];
    const std::size_t seq = c.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::intptr_t>(seq) -
                     static_cast<std::intptr_t>(pos);
    if (dif == 0) {
      if (enq.compare_exchange_weak(pos, pos + 1,
                                    std::memory_order_relaxed)) {
        c.ptr = p;
        c.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // full
    } else {
      pos = enq.load(std::memory_order_relaxed);
    }
  }
}

std::byte* PayloadPool::FreeRing::pop() noexcept {
  constexpr std::size_t kMask = kMaxFreePerBucket - 1;
  std::size_t pos = deq.load(std::memory_order_relaxed);
  for (;;) {
    Cell& c = cells[pos & kMask];
    const std::size_t seq = c.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::intptr_t>(seq) -
                     static_cast<std::intptr_t>(pos + 1);
    if (dif == 0) {
      if (deq.compare_exchange_weak(pos, pos + 1,
                                    std::memory_order_relaxed)) {
        std::byte* p = c.ptr;
        c.seq.store(pos + kMaxFreePerBucket, std::memory_order_release);
        return p;
      }
    } else if (dif < 0) {
      return nullptr;  // empty
    } else {
      pos = deq.load(std::memory_order_relaxed);
    }
  }
}

std::size_t PayloadPool::FreeRing::size_approx() const noexcept {
  const std::size_t e = enq.load(std::memory_order_relaxed);
  const std::size_t d = deq.load(std::memory_order_relaxed);
  return e > d ? e - d : 0;
}

// ---- PayloadPool ----------------------------------------------------------

PayloadPool::PayloadPool() {
  for (Bucket& bk : buckets_) {
    for (std::size_t i = 0; i < kMaxFreePerBucket; ++i) {
      bk.ring.cells[i].seq.store(i, std::memory_order_relaxed);
    }
  }
}

PayloadPool::~PayloadPool() { trim(); }

std::size_t PayloadPool::bucket_for_acquire(std::size_t n) noexcept {
  // Smallest b with kMinBucketBytes << b >= n.
  const auto w = static_cast<std::size_t>(std::bit_width(n - 1));
  return w <= kMinExp ? 0 : w - kMinExp;
}

std::size_t PayloadPool::bucket_for_recycle(std::size_t capacity) noexcept {
  // Largest b with kMinBucketBytes << b <= capacity.
  const auto w = static_cast<std::size_t>(std::bit_width(capacity));
  const std::size_t b = w - 1 >= kMinExp ? w - 1 - kMinExp : 0;
  return b < kNumBuckets ? b : kNumBuckets - 1;
}

PooledPayload PayloadPool::acquire_copy(const std::byte* src,
                                        std::size_t n) {
  PooledPayload p;
  if (n == 0) return p;  // the 0-byte path: no atomics, no allocation
  p.size_ = n;
  if (n <= PooledPayload::kInlineBytes) {
    p.inline_ = true;
    std::memcpy(p.sbo_.data(), src, n);
    stats_.inline_grabs.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  if (n > kMaxBucketBytes) {
    // Too large to be worth hoarding; plain heap storage.
    p.heap_.assign(src, src + n);
    stats_.allocs.fetch_add(1, std::memory_order_relaxed);
    stats_.heap_grabs.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  const std::size_t b = bucket_for_acquire(n);
  Bucket& bucket = buckets_[b];
  std::byte* block = bucket.hot.exchange(nullptr, std::memory_order_acquire);
  if (block == nullptr) block = bucket.ring.pop();
  if (block != nullptr) {
    stats_.reuses.fetch_add(1, std::memory_order_relaxed);
  } else {
    block = alloc_block(bucket_bytes(b));
    stats_.allocs.fetch_add(1, std::memory_order_relaxed);
  }
  std::memcpy(block, src, n);
  p.block_ = block;
  p.block_cap_ = bucket_bytes(b);
  p.pool_ = this;
  return p;
}

void PayloadPool::recycle(std::byte* block, std::size_t capacity) noexcept {
  // Exactly one of recycled/dropped per released block keeps
  // outstanding() exact.  The hot slot is only filled when empty, so a
  // block counted `recycled` is never silently displaced and freed.
  Bucket& bucket = buckets_[bucket_for_recycle(capacity)];
  std::byte* expected = nullptr;
  if (bucket.hot.compare_exchange_strong(expected, block,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
    stats_.recycled.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (bucket.ring.push(block)) {
    stats_.recycled.fetch_add(1, std::memory_order_relaxed);
  } else {
    free_block(block);
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t PayloadPool::free_buffers() const {
  std::size_t n = 0;
  for (const Bucket& b : buckets_) {
    if (b.hot.load(std::memory_order_relaxed) != nullptr) ++n;
    n += b.ring.size_approx();
  }
  return n;
}

void PayloadPool::trim() {
  for (Bucket& b : buckets_) {
    if (std::byte* p = b.hot.exchange(nullptr, std::memory_order_acquire)) {
      free_block(p);
    }
    while (std::byte* p = b.ring.pop()) free_block(p);
  }
}

}  // namespace ombx::mpi
