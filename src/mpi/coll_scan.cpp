// Scan / Exscan (inclusive and exclusive prefix reductions).
//
// Implemented with the standard log-step algorithm for commutative-and-
// associative ops over a linear rank order: at step k, rank r receives the
// partial prefix from r - 2^k and sends its running partial to r + 2^k.
#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"
#include "mpi/request.hpp"

namespace ombx::mpi {

namespace {

using detail::kTagVector;
using detail::Scratch;

constexpr int kTagScan = 0x7e00000b;

/// Shared core: computes the inclusive prefix into `acc`; also tracks the
/// prefix of *strictly preceding* ranks in `pre` (for exscan) when
/// `want_pre` is set.
void prefix_core(Comm& c, ConstView send, MutView acc, Scratch* pre,
                 Datatype dt, Op op) {
  const int n = c.size();
  const int rank = c.rank();
  const bool real = detail::real_payload(c, send);
  const std::size_t bytes = send.bytes;

  detail::copy_bytes(acc, send, bytes);
  Scratch incoming(bytes, real, send.space);
  bool pre_valid = false;

  for (int dist = 1; dist < n; dist <<= 1) {
    const int to = rank + dist;
    const int from = rank - dist;
    Request sreq;
    if (to < n) {
      sreq = c.isend(detail::slice(detail::as_const(acc), 0, bytes), to,
                     kTagScan);
    }
    if (from >= 0) {
      (void)c.recv(incoming.mview(), from, kTagScan);
      // The incoming block is the inclusive prefix of ranks
      // [from-2^k+1 ... from] — fold it in front of ours.
      detail::combine(c, dt, op, acc, incoming.cview(), bytes);
      if (pre != nullptr) {
        if (!pre_valid) {
          detail::copy_bytes(pre->mview(), incoming.cview(), bytes);
          pre_valid = true;
        } else {
          detail::combine(c, dt, op, pre->mview(), incoming.cview(), bytes);
        }
      }
    }
    sreq.wait();
  }
}

}  // namespace

void scan(Comm& c, ConstView send, MutView recv, Datatype dt, Op op) {
  OMBX_REQUIRE(recv.bytes >= send.bytes,
               "scan recv buffer smaller than contribution");
  if (c.size() == 1) {
    detail::copy_bytes(recv, send, send.bytes);
    return;
  }
  detail::CollSpan span(
      c, "scan", "log_step", send.bytes,
      detail::CollMeta{.bytes = static_cast<long long>(send.bytes),
                       .datatype = static_cast<int>(dt),
                       .op = static_cast<int>(op)});
  prefix_core(c, send, detail::slice(recv, 0, send.bytes), nullptr, dt, op);
}

void exscan(Comm& c, ConstView send, MutView recv, Datatype dt, Op op) {
  OMBX_REQUIRE(recv.bytes >= send.bytes,
               "exscan recv buffer smaller than contribution");
  if (c.size() == 1) return;  // rank 0's exscan result is undefined (MPI)
  detail::CollSpan span(
      c, "exscan", "log_step", send.bytes,
      detail::CollMeta{.bytes = static_cast<long long>(send.bytes),
                       .datatype = static_cast<int>(dt),
                       .op = static_cast<int>(op)});
  const bool real = detail::real_payload(c, send);
  Scratch acc(send.bytes, real, send.space);
  Scratch pre(send.bytes, real, send.space);
  prefix_core(c, send, acc.mview(), &pre, dt, op);
  if (c.rank() > 0) {
    detail::copy_bytes(detail::slice(recv, 0, send.bytes), pre.cview(),
                       send.bytes);
  }
}

}  // namespace ombx::mpi
