#include "mpi/message.hpp"

#include "mpi/error.hpp"

namespace ombx::mpi {

usec_t SyncCell::await() {
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&] { return done || poisoned != nullptr; });
  if (done) return release_time;
  auto info = *poisoned;
  lk.unlock();
  throw_aborted(info);
}

bool SyncCell::ready() {
  std::unique_lock<std::mutex> lk(m);
  if (done) return true;
  if (poisoned) {
    auto info = *poisoned;
    lk.unlock();
    throw_aborted(info);
  }
  return false;
}

}  // namespace ombx::mpi
