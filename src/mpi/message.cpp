#include "mpi/message.hpp"

#include "ft/ft.hpp"
#include "mpi/error.hpp"

namespace ombx::mpi {

bool SyncCell::begin_transfer() {
  std::lock_guard<std::mutex> lk(m);
  if (poisoned != nullptr) return false;
  in_transfer = true;
  return true;
}

usec_t SyncCell::await() {
  std::unique_lock<std::mutex> lk(m);
  // A poisoned cell whose transfer is claimed stays blocked: the receiver
  // is copying out of the sender's (this thread's) buffer and will call
  // complete() in bounded time; unwinding now would free memory under it.
  // The same claim rule applies to FT interruptions.
  cv.wait(lk, [&] {
    return done ||
           ((poisoned != nullptr || ft_failed_rank >= 0 || ft_revoked) &&
            !in_transfer);
  });
  if (done) return release_time;
  if (poisoned != nullptr) {
    auto info = *poisoned;
    lk.unlock();
    throw_aborted(info);
  }
  if (ft_failed_rank >= 0) {
    throw ft::ProcFailedError(ft_failed_rank, ft_time, -1, ctx);
  }
  throw ft::RevokedError(ft_time, -1, ctx);
}

bool SyncCell::ready() {
  std::unique_lock<std::mutex> lk(m);
  if (done) return true;
  if (in_transfer) return false;
  if (poisoned) {
    auto info = *poisoned;
    lk.unlock();
    throw_aborted(info);
  }
  if (ft_failed_rank >= 0) {
    throw ft::ProcFailedError(ft_failed_rank, ft_time, -1, ctx);
  }
  if (ft_revoked) throw ft::RevokedError(ft_time, -1, ctx);
  return false;
}

}  // namespace ombx::mpi
