#include "mpi/message.hpp"

#include "mpi/error.hpp"

namespace ombx::mpi {

bool SyncCell::begin_transfer() {
  std::lock_guard<std::mutex> lk(m);
  if (poisoned != nullptr) return false;
  in_transfer = true;
  return true;
}

usec_t SyncCell::await() {
  std::unique_lock<std::mutex> lk(m);
  // A poisoned cell whose transfer is claimed stays blocked: the receiver
  // is copying out of the sender's (this thread's) buffer and will call
  // complete() in bounded time; unwinding now would free memory under it.
  cv.wait(lk, [&] { return done || (poisoned != nullptr && !in_transfer); });
  if (done) return release_time;
  auto info = *poisoned;
  lk.unlock();
  throw_aborted(info);
}

bool SyncCell::ready() {
  std::unique_lock<std::mutex> lk(m);
  if (done) return true;
  if (poisoned && !in_transfer) {
    auto info = *poisoned;
    lk.unlock();
    throw_aborted(info);
  }
  return false;
}

}  // namespace ombx::mpi
