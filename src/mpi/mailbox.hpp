// Per-rank mailbox with MPI matching semantics.
//
// Senders enqueue under the destination's lock; receivers block until a
// message matching (context, source, tag) exists.  Per-(context,src,tag)
// FIFO ordering is inherited from the sender's program order, which is what
// makes virtual timestamps deterministic regardless of host scheduling.
//
// Every blocking path (matched receive, blocking probe, capacity-blocked
// enqueue) participates in the failure-propagation protocol: poison()
// wakes all waiters with an AbortedError, and waits are registered in the
// engine's WaitRegistry so the deadlock watchdog can dump what each rank
// is stuck on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "fault/abort.hpp"
#include "fault/watchdog.hpp"
#include "mpi/message.hpp"

namespace ombx::mpi {

class Mailbox {
 public:
  /// Upper bound on queued messages; enqueue blocks beyond it (models MPI
  /// eager flow control and bounds host memory at scale).  `registry` (may
  /// be null) receives blocked-wait registrations for `owner_rank`'s
  /// receives and for senders stuck on capacity.
  explicit Mailbox(std::size_t capacity = 8192,
                   fault::WaitRegistry* registry = nullptr,
                   int owner_rank = -1)
      : capacity_(capacity), registry_(registry), owner_(owner_rank) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message; blocks while the box is at capacity.  Throws
  /// AbortedError when the box is (or becomes) poisoned, so capacity-
  /// blocked senders wake instead of hanging on a dead receiver.
  void enqueue(Message&& msg);

  /// Remove and return the first message matching (ctx, src, tag); blocks
  /// until one arrives.  Throws AbortedError once poisoned.
  [[nodiscard]] Message dequeue_match(int ctx, int src, int tag);

  /// Like dequeue_match but does not block: returns nullopt if no match is
  /// currently queued.
  [[nodiscard]] std::optional<Message> try_dequeue_match(int ctx, int src,
                                                         int tag);

  /// Blocking probe: waits for a match and returns its envelope without
  /// removing it (MPI_Probe).  Throws AbortedError once poisoned.
  [[nodiscard]] Status probe(int ctx, int src, int tag);

  /// Non-blocking probe (MPI_Iprobe).
  [[nodiscard]] std::optional<Status> try_probe(int ctx, int src, int tag);

  /// Abort propagation: wake every waiter (senders and receivers); all
  /// current and future blocking calls throw AbortedError carrying `info`.
  void poison(std::shared_ptr<const fault::AbortInfo> info);

  /// Re-arm the mailbox for a fresh run (clears poison and queued mail).
  void reset();

  [[nodiscard]] std::size_t size() const;

 private:
  [[nodiscard]] std::deque<Message>::iterator find_locked(int ctx, int src,
                                                          int tag);
  [[noreturn]] void throw_poisoned_locked();

  mutable std::mutex m_;
  std::condition_variable arrived_;  ///< signalled on enqueue / poison
  std::condition_variable drained_;  ///< signalled on dequeue / poison
  std::deque<Message> q_;
  std::size_t capacity_;
  std::shared_ptr<const fault::AbortInfo> poison_;
  fault::WaitRegistry* registry_;
  int owner_;
};

}  // namespace ombx::mpi
