// Per-rank mailbox with MPI matching semantics.
//
// Senders enqueue into the destination's box; receivers block until a
// message matching (context, source, tag) exists.
//
// Two-path design (fast lock-free front, locked matching core):
//
//   FAST PATH.  Every sender owns a bounded SPSC ring in front of this
//   box (one per src world rank, created lazily).  While the box is in
//   fast mode — no ULFM failure state attached, no scheduling oracle
//   armed, not poisoned — a send is a lock-free ring push, and an
//   exact-pattern receive whose caller supplies the sender's world rank
//   (`src_world_hint`) pops the matching ring head without ever taking
//   `m_`, provided the locked core holds no messages at all.  This is
//   the eager hot path: exact-tag send matched by a posted exact
//   receive, which every benchmark loop hits millions of times.
//
//   SLOW PATH.  Everything else — wildcard receives, probes, hintless
//   receives, capacity-blocked sends, any receive while the locked core
//   is nonempty, and all traffic once FT / an oracle / poison pins the
//   box — takes `m_` exactly as before.  Every locked matching operation
//   first *drains* all rings into the per-(context, src, tag) bins
//   (seq-sorted, so per-sender FIFO and global arrival order survive the
//   move); this drain-on-transition protocol is what lets the two paths
//   coexist: once an operation needs the global view, the global view is
//   made complete before any matching decision.
//
// Matching structure (locked core): messages are binned into per-
// (context, src, tag) FIFO queues indexed by an open-addressing flat
// hash.  Every message is stamped with a global monotone sequence number
// at enqueue (an atomic counter, shared by both paths); a wildcard
// receive (kAnySource / kAnyTag / both) scans the bin directory —
// O(#bins), bounded by distinct (context, src, tag) triples in flight —
// and takes the candidate bin whose head has the smallest sequence
// number.  Since bin FIFO order equals per-key arrival order and
// sequence numbers equal global arrival order, every receive and probe
// observes exactly the order a single linear queue would produce
// (property-tested against a reference linear mailbox in
// tests/test_mailbox_matching.cpp, fast path included).
//
// Why the fast pop is safe: within one context, comm rank <-> world rank
// is bijective, so all messages matching an exact (ctx, src, tag)
// pattern come from the single ring named by the hint; ring order is
// that sender's program order; and the `locked core empty` gate plus the
// fact that only the owner thread ever drains rings means no older
// matching message can exist anywhere else.  Bin messages with the same
// key are either drained ring prefixes (gate refuses while they exist)
// or slow-path enqueues stamped after everything currently in the ring.
//
// Every blocking path (matched receive, blocking probe, capacity-blocked
// enqueue) participates in the failure-propagation protocol: poison()
// wakes all waiters with an AbortedError (whatever bin they wait on) and
// pins the slow path, reset() drains every ring and bin, and waits are
// registered in the engine's WaitRegistry so the deadlock watchdog can
// dump what each rank is stuck on.  Lost wakeups across the lock-free
// boundary are prevented Dekker-style: producers publish, fence, then
// read the waiter count; waiters bump the count, fence, then re-scan the
// rings — at least one side always sees the other.  Two refinements keep
// the handshake off the single-threaded hot path: a producer running IN
// the owner's execution context (sched::exec_id — fiber-aware) skips the
// fence and waiter check outright (the owner cannot be enqueueing and
// blocked in a receive at once — the self-send case), and the pop side
// needs no explicit fence because the seq_cst
// ring_msgs_ decrement after the pop already separates the head-slot
// release from the waiter-count read, while a capacity waiter's
// re-check reads ring_msgs_ seq_cst — the single total order over those
// accesses guarantees one side sees the other.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "fault/abort.hpp"
#include "fault/watchdog.hpp"
#include "ft/ft.hpp"
#include "mpi/message.hpp"
#include "obs/metrics.hpp"
#include "sched/sched.hpp"

namespace ombx::explore {
class ScheduleOracle;
struct Candidate;
}  // namespace ombx::explore

namespace ombx::mpi {

class Mailbox {
 public:
  /// Upper bound on queued messages (rings + bins); enqueue blocks beyond
  /// it (models MPI eager flow control and bounds host memory at scale).
  /// `registry` (may be null) receives blocked-wait registrations for
  /// `owner_rank`'s receives and for senders stuck on capacity.
  /// `max_src_world` bounds the sender world ranks eligible for a fast
  /// ring (sends from larger ranks are correct but always locked).
  explicit Mailbox(std::size_t capacity = 8192,
                   fault::WaitRegistry* registry = nullptr,
                   int owner_rank = -1, int max_src_world = 64)
      : rings_(max_src_world > 0 ? static_cast<std::size_t>(max_src_world)
                                 : 0),
        capacity_(capacity), registry_(registry), owner_(owner_rank) {
    table_.resize(kInitialSlots);
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message; blocks while the box is at capacity.  Throws
  /// AbortedError when the box is (or becomes) poisoned, so capacity-
  /// blocked senders wake instead of hanging on a dead receiver.  In fast
  /// mode this is a lock-free ring push (msg.src_world names the ring).
  void enqueue(Message&& msg);

  /// Remove and return the first message matching (ctx, src, tag); blocks
  /// until one arrives.  Throws AbortedError once poisoned.
  /// `src_world_hint` (optional) is the world rank behind comm rank `src`
  /// — it enables the lock-free pop for exact patterns; -1 always works.
  [[nodiscard]] Message dequeue_match(int ctx, int src, int tag,
                                      int src_world_hint = -1);

  /// Like dequeue_match but does not block: returns nullopt if no match is
  /// currently queued.
  [[nodiscard]] std::optional<Message> try_dequeue_match(
      int ctx, int src, int tag, int src_world_hint = -1);

  /// Blocking probe: waits for a match and returns its envelope without
  /// removing it (MPI_Probe).  Throws AbortedError once poisoned.
  [[nodiscard]] Status probe(int ctx, int src, int tag);

  /// Non-blocking probe (MPI_Iprobe).
  [[nodiscard]] std::optional<Status> try_probe(int ctx, int src, int tag);

  /// Abort propagation: wake every waiter (senders and receivers); all
  /// current and future blocking calls throw AbortedError carrying `info`.
  /// Also pins the slow path so no new message bypasses the poison check.
  void poison(std::shared_ptr<const fault::AbortInfo> info);

  /// Re-arm the mailbox for a fresh run (clears poison and drains every
  /// ring and bin, returning pooled payload buffers to their pool).  Only
  /// valid while no rank thread is using the box.
  void reset();

  [[nodiscard]] std::size_t size() const noexcept {
    return ring_msgs_.load(std::memory_order_relaxed) +
           locked_msgs_.load(std::memory_order_relaxed);
  }

  /// One entry per nonempty bin: the (context, src, tag) key and how many
  /// messages are still queued under it.  Sorted by (ctx, src, tag) so the
  /// finalize audit's unmatched-send report is deterministic.  Drains the
  /// rings first (call only from the owner thread or once quiescent).
  struct Pending {
    int ctx;
    int src;
    int tag;
    std::size_t count;
  };
  [[nodiscard]] std::vector<Pending> pending_summary();

  /// Attach the world's ULFM failure state (null when FT is disabled —
  /// the default, in which case no wait ever consults it).  Blocked waits
  /// then wake when the peer they depend on is dead- or exit-marked and
  /// no matching message is queued; a queued match always wins, which is
  /// deterministic because a rank's sends happen-before its own marks.
  /// A non-null failure state pins the slow path (FT wake rules must see
  /// every message under m_).
  void set_failure_state(const ft::FailureState* fs) noexcept {
    std::lock_guard<std::mutex> lk(m_);
    fs_ = fs;
    recompute_fast_ok_locked();
  }

  /// Wake every waiter so it re-evaluates the failure state (called after
  /// a death/exit/revoke mark; never with FailureState's mutex held).
  void ft_notify();

  /// Attach the owner rank's metrics block (null to detach).  Successful
  /// dequeues are classified as exact / MRU / wildcard in receiver
  /// program order on both paths, so the counts are deterministic (see
  /// obs/metrics.hpp).
  void set_counters(obs::RankCounters* counters) noexcept {
    counters_.store(counters, std::memory_order_release);
  }

  /// Attach a scheduling oracle (null to detach — the default; every
  /// match path then reduces to plain find_match).  With an oracle, each
  /// wildcard match records its candidate set, honours a pending pin
  /// (waiting for the pinned bin instead of taking the min-seq head), and
  /// consults fuzz picks (see explore/explore.hpp).  A non-null oracle
  /// pins the slow path so every decision is recorded under m_.
  void set_oracle(explore::ScheduleOracle* oracle) noexcept {
    std::lock_guard<std::mutex> lk(m_);
    oracle_ = oracle;
    recompute_fast_ok_locked();
  }

  /// Fast-/slow-path split diagnostics snapshot.  These counts depend on
  /// host timing — whether a receiver beats its sender to the rendezvous
  /// decides hit vs fallback — so they are deliberately NOT part of
  /// obs::RankCounters: the metrics CSV must stay byte-identical across
  /// same-seed runs (CI-enforced), exactly like PayloadPool::Stats.
  /// Internally each counter has a single writer (the ring's producer, the
  /// owner thread, or m_), so increments are plain load+store — an order
  /// of magnitude cheaper than a lock-prefixed RMW on the hot path.
  struct FastStats {
    std::uint64_t fast_enqueues = 0;   ///< lock-free ring pushes
    std::uint64_t slow_enqueues = 0;   ///< locked enqueues
    std::uint64_t fast_hits = 0;       ///< lock-free pops
    std::uint64_t fast_fallbacks = 0;  ///< hinted recvs gone slow
    std::uint64_t drained = 0;         ///< msgs moved ring->bins
    std::uint64_t ring_depth_hwm = 0;  ///< max ring-resident msgs
  };
  [[nodiscard]] FastStats fast_stats() const noexcept {
    FastStats out;
    for (const auto& rp : rings_) {  // fixed-size array of atomic pointers
      if (const SpscRing* r = rp.load(std::memory_order_acquire)) {
        out.fast_enqueues += r->pushed.load(std::memory_order_relaxed);
      }
    }
    out.slow_enqueues = slow_enqueues_.load(std::memory_order_relaxed);
    out.fast_hits = fast_hits_.load(std::memory_order_relaxed);
    out.fast_fallbacks = fast_fallbacks_.load(std::memory_order_relaxed);
    out.drained = drained_count_.load(std::memory_order_relaxed);
    out.ring_depth_hwm = ring_depth_hwm_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  /// Bounded single-producer single-consumer ring: the sender with world
  /// rank s is the sole pusher of ring s; the box's owner thread is the
  /// sole popper (lock-free pops and under-m_ drains are both owner-side,
  /// so they never race each other).
  struct SpscRing {
    static constexpr std::size_t kSlots = 64;  // power of two

    std::array<Message, kSlots> slot;
    alignas(64) std::atomic<std::uint64_t> tail{0};  ///< producer-advanced
    std::uint64_t head_cache = 0;                    ///< producer-local
    /// Lifetime push count (producer-owned single-writer: plain
    /// load+store, no RMW).  Feeds FastStats::fast_enqueues.
    std::atomic<std::uint64_t> pushed{0};
    alignas(64) std::atomic<std::uint64_t> head{0};  ///< consumer-advanced
    std::uint64_t tail_cache = 0;                    ///< consumer-local

    /// Producer side.  Returns false (msg untouched) when full.
    [[nodiscard]] bool try_push(Message&& msg) noexcept {
      const std::uint64_t t = tail.load(std::memory_order_relaxed);
      if (t - head_cache >= kSlots) {
        head_cache = head.load(std::memory_order_acquire);
        if (t - head_cache >= kSlots) return false;
      }
      slot[t & (kSlots - 1)] = std::move(msg);
      tail.store(t + 1, std::memory_order_release);
      return true;
    }

    /// Consumer side: the current head slot, or null when empty.
    [[nodiscard]] Message* peek() noexcept {
      const std::uint64_t h = head.load(std::memory_order_relaxed);
      if (h == tail_cache) {
        tail_cache = tail.load(std::memory_order_acquire);
        if (h == tail_cache) return nullptr;
      }
      return &slot[h & (kSlots - 1)];
    }

    /// Consumer side: free the head slot (after moving out of peek()).
    void pop() noexcept {
      const std::uint64_t h = head.load(std::memory_order_relaxed);
      head.store(h + 1, std::memory_order_release);
    }

  };

  /// One FIFO of messages sharing an exact (context, src, tag) key.  Bins
  /// are never deleted before reset(); an emptied bin stays registered so
  /// its next message skips the insert path.
  struct Bin {
    int ctx = 0;
    int src = 0;
    int tag = 0;
    /// q.front().seq, mirrored inline (valid while !q.empty()).  The
    /// wildcard scan walks every nonempty bin comparing head sequence
    /// numbers; with the mirror it reads only the contiguous bins_
    /// storage instead of chasing each deque's heap block — one cache
    /// line per few bins rather than one per bin, and immune to where
    /// the allocator happened to place those blocks.
    std::uint64_t front_seq = 0;
    std::deque<Message> q;
  };

  static constexpr std::size_t kInitialSlots = 64;  // power of two

  [[nodiscard]] static std::uint64_t hash_key(int ctx, int src,
                                              int tag) noexcept;

  /// Exact-key bin lookup; null when the triple has no bin yet.
  [[nodiscard]] Bin* find_bin(int ctx, int src, int tag) const noexcept;
  /// Exact-key bin lookup, creating (and indexing) the bin if absent.
  [[nodiscard]] Bin& obtain_bin(int ctx, int src, int tag);
  void rehash(std::size_t new_slots);

  /// The bin whose head is the first message (in global arrival order)
  /// matching the possibly-wildcarded pattern; null when none is queued.
  /// The match itself is always the returned bin's front().
  [[nodiscard]] Bin* find_match(int ctx, int src, int tag) const noexcept;

  /// Oracle-aware selection: find_match, except that for a wildcard
  /// pattern a pending pin restricts the match to the pinned bin (null
  /// until it has a message) and fuzz mode substitutes a seeded candidate
  /// pick.  Side-effect-free apart from stale-pin cursor advancement, so
  /// it is safe inside wait predicates that evaluate many times.
  [[nodiscard]] Bin* match_for(int ctx, int src, int tag);

  /// Record the decision a successful wildcard match just committed
  /// (candidate set + chosen bin); consumes the rank's decision index and
  /// any pin that forced it.  Must run under the same m_ hold as the
  /// match_for() that selected `bin`.  No-op without an oracle or for
  /// exact patterns.
  /// Record a wildcard decision with the oracle.  The no-oracle /
  /// exact-pattern early-out is inline so plain receives skip the call
  /// (and its argument setup) entirely.
  void commit_wildcard_locked(const Bin& bin, int ctx, int src, int tag) {
    if (oracle_ == nullptr || (src != kAnySource && tag != kAnyTag)) return;
    commit_wildcard_slow_locked(bin, ctx, src, tag);
  }
  void commit_wildcard_slow_locked(const Bin& bin, int ctx, int src, int tag);

  /// All nonempty bins matching the pattern, seq-ascending by head.
  void collect_candidates(int ctx, int src, int tag,
                          std::vector<explore::Candidate>& out) const;

  /// Pop the head of `bin`, maintaining counts and waking capacity-blocked
  /// senders.  `wildcard` says whether the pattern that selected the bin
  /// carried a wildcard (metrics classification).
  [[nodiscard]] Message take_locked(Bin& bin, bool wildcard);

  /// The lock-free exact pop.  nullopt means "take the slow path" (gate
  /// closed, ring empty, or head doesn't match) — never an error.
  [[nodiscard]] std::optional<Message> try_fast_pop(int ctx, int src, int tag,
                                                    int src_world_hint);

  /// Record the calling (receive-side) execution context in owner_exec_
  /// so self-send enqueues can skip the Dekker fence.  Called at every
  /// receive entry.  Keyed on sched::exec_id(), not std::thread::id:
  /// under the fiber scheduler two ranks can share one OS thread, and a
  /// thread id would falsely prove "the producer IS the consumer".
  void capture_owner_exec() noexcept;

  /// Move every ring-resident message into its bin (seq-sorted insert).
  /// Owner thread or quiescent only, with m_ held: this is the
  /// fast->slow transition, after which the locked core is complete.
  /// The gate is inline so steady-state locked receives on a quiet
  /// mailbox (bypass latched and rings drained, or no fast producer
  /// ever) pay two predictable tests instead of an out-of-line call.
  void drain_rings_locked() {
    if (rings_quiet_ || active_rings_.empty()) return;
    drain_rings_slow_locked();
  }
  void drain_rings_slow_locked();

  /// Entry checks shared by every non-blocking locked matching operation:
  /// poison propagation and the ring drain, folded behind one m_-guarded
  /// byte so the steady state (not poisoned, rings quiet or never
  /// created) pays a single predicted branch — the pre-ring slow path
  /// paid one load+branch for the poison check alone, so hintless
  /// consumers are back at (or under) their old instruction count.
  void entry_checks_locked() {
    if (!locked_attention_) return;
    if (poison_) throw_poisoned_locked();
    drain_rings_locked();
  }

  /// Recompute locked_attention_ from its inputs (m_ held).  Call after
  /// any change to poison_, active_rings_ or rings_quiet_.
  void recompute_attention_locked() noexcept {
    locked_attention_ =
        poison_ != nullptr || (!active_rings_.empty() && !rings_quiet_);
  }

  /// Insert preserving ascending seq order (O(1) for in-order arrivals).
  static void insert_sorted(Bin& bin, Message&& msg);

  /// Ring for sender `s`, created (and registered for draining) on first
  /// use.  Lock-free after creation.
  [[nodiscard]] SpscRing* obtain_ring(std::size_t s);

  /// Metrics classification + MRU bookkeeping shared by both paths: an
  /// MRU hit is a non-wildcard take whose key equals the previous
  /// successful take's key — receiver program order, so deterministic and
  /// identical whichever path served it.
  void note_take(int ctx, int src, int tag, bool wildcard) noexcept;

  /// Recompute the fast-path gate from fs_/oracle_/poison_ (m_ held).
  void recompute_fast_ok_locked() noexcept {
    fast_ok_.store(fs_ == nullptr && oracle_ == nullptr && !poison_,
                   std::memory_order_release);
  }

  [[nodiscard]] std::size_t total_queued_seq_cst() const noexcept {
    return ring_msgs_.load(std::memory_order_seq_cst) +
           locked_msgs_.load(std::memory_order_seq_cst);
  }

  [[noreturn]] void throw_poisoned_locked();

  /// Log an FT wake whose death/exit marks coexisted (a wake-order tie —
  /// resolved deterministically by virtual time, but worth attributing
  /// during exploration).  No-op without an oracle.
  void note_ft_interrupt_locked(const ft::FailureState::Interrupt& it,
                                int ctx);

  mutable std::mutex m_;
  sched::WaitQueue arrived_;  ///< signalled on enqueue / poison
  sched::WaitQueue drained_;  ///< signalled on dequeue / poison
  std::deque<Bin> bins_;             ///< stable storage + wildcard scan order
  std::vector<Bin*> table_;          ///< open-addressing index, pow2 slots
  mutable Bin* mru_ = nullptr;       ///< last bin touched (steady traffic)

  // ---- Lock-free front ----------------------------------------------------
  std::vector<std::atomic<SpscRing*>> rings_;  ///< per src world, lazy
  std::vector<std::unique_ptr<SpscRing>> ring_store_;  ///< guarded by m_
  std::vector<int> active_rings_;                      ///< guarded by m_
  std::atomic<bool> fast_ok_{true};  ///< no FT, no oracle, not poisoned
  /// Adaptive bypass: when the owner keeps draining ring messages into
  /// bins without a single fast pop (a hintless or wildcard-heavy
  /// consumer), routing sends through the rings only adds a move per
  /// message — so after kRingBypassAfterDrains consecutive drained
  /// messages the owner flips this and producers enqueue straight into
  /// the locked core.  Re-arming is hysteretic: a latched box only
  /// returns to ring mode after kRearmHintedPops consecutive hinted
  /// exact receives (each missing once on the slow path), so a stray
  /// hinted probe inside otherwise hintless traffic cannot flap the
  /// latch and re-trigger the 128-message drain detour.
  /// Which path a send takes is a pure heuristic (both are correct), but
  /// the latch doubles as a mutual-exclusion witness: writes happen only
  /// under m_, producers re-check it (seq_cst) after reserving ring_msgs_
  /// and back out if set — so a slow enqueue that holds m_, sees the
  /// latch set and sees ring_msgs_ == 0 owns next_seq_ outright and can
  /// stamp with a plain load+store instead of an RMW.
  static constexpr std::uint64_t kRingBypassAfterDrains = 128;
  static constexpr std::uint64_t kRearmHintedPops = 4;
  std::atomic<bool> ring_bypass_{false};   ///< written under m_ only
  std::uint64_t drains_since_hit_ = 0;     ///< owner side (under m_)
  std::uint64_t hinted_since_latch_ = 0;   ///< owner side (re-arm hysteresis)
  /// Latched-and-drained witness (m_ only): true once a drain pass ran
  /// with the bypass latched and left ring_msgs_ == 0.  From that point no
  /// producer can land a ring message (each re-checks the latch after its
  /// reservation and backs out), so every locked operation skips the ring
  /// machinery outright — no gate load, no fence, no stamp double-check —
  /// restoring the pre-ring slow-path instruction count for hintless
  /// consumers.  Cleared by the hysteretic re-arm and by reset().
  bool rings_quiet_ = false;
  /// Folded entry-check gate (m_ only): poisoned, or rings exist and are
  /// not known quiet.  See entry_checks_locked().
  bool locked_attention_ = false;
  /// Messages inside rings.  Producers fetch_add (reserve) BEFORE the ring
  /// push and give the reservation back on a full ring; the owner's
  /// fetch_sub after a fast pop doubles as the full barrier of the
  /// pop-side Dekker handshake (see try_fast_pop).  Always a seq_cst RMW.
  std::atomic<std::uint64_t> ring_msgs_{0};
  /// Messages inside bins.  Written only under m_ (single writer at a
  /// time), so increments are plain load+store; the lock-free reader in
  /// try_fast_pop is made safe by re-checking AFTER the ring peek — the
  /// producer's push/peek release-acquire edge carries any same-sender
  /// slow enqueue's increment across with it.
  std::atomic<std::uint64_t> locked_msgs_{0};
  std::atomic<std::uint64_t> next_seq_{0};  ///< global arrival stamp
  /// The owner execution context — fiber or thread, via sched::exec_id()
  /// — captured on every receive-side call: an enqueue running IN that
  /// context proves the owner is not blocked in a wait, so the
  /// producer-side Dekker fence + waiter check can be skipped — this is
  /// the self-send hot case.
  std::atomic<std::uintptr_t> owner_exec_{0};
  // Fast-stats counters (see FastStats): single-writer, plain load+store.
  std::atomic<std::uint64_t> slow_enqueues_{0};    ///< under m_
  std::atomic<std::uint64_t> fast_hits_{0};        ///< owner thread
  std::atomic<std::uint64_t> fast_fallbacks_{0};   ///< owner thread
  std::atomic<std::uint64_t> drained_count_{0};    ///< under m_
  std::atomic<std::uint64_t> ring_depth_hwm_{0};   ///< CAS-max (multi-writer)

  // Waiter counts (modified under m_, read lock-free by producers with
  // seq_cst so the Dekker handshake in enqueue/try_fast_pop cannot lose a
  // wakeup) let the hot path skip the kernel notify when nobody is
  // blocked — the overwhelmingly common case.
  std::atomic<int> arrival_waiters_{0};  ///< blocked receives + probes
  std::atomic<int> drain_waiters_{0};    ///< capacity-blocked senders

  std::size_t capacity_;
  std::atomic<obs::RankCounters*> counters_{nullptr};  ///< owner's metrics
  // Key of the previous successful take (owner thread only; reset() may
  // also touch it while quiescent).  Replaces the old Bin* comparison —
  // bins and keys are bijective within a run, so classification is
  // unchanged, but a key survives path switches where a pointer cannot.
  bool has_last_take_ = false;
  int last_take_ctx_ = 0;
  int last_take_src_ = 0;
  int last_take_tag_ = 0;

  std::shared_ptr<const fault::AbortInfo> poison_;
  fault::WaitRegistry* registry_;
  int owner_;
  const ft::FailureState* fs_ = nullptr;  ///< null unless FT mode
  explore::ScheduleOracle* oracle_ = nullptr;  ///< null unless exploring
};

}  // namespace ombx::mpi
