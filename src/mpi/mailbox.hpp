// Per-rank mailbox with MPI matching semantics.
//
// Senders enqueue under the destination's lock; receivers block until a
// message matching (context, source, tag) exists.  Per-(context,src,tag)
// FIFO ordering is inherited from the sender's program order, which is what
// makes virtual timestamps deterministic regardless of host scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "mpi/message.hpp"

namespace ombx::mpi {

class Mailbox {
 public:
  /// Upper bound on queued messages; enqueue blocks beyond it (models MPI
  /// eager flow control and bounds host memory at scale).
  explicit Mailbox(std::size_t capacity = 8192) : capacity_(capacity) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message; blocks while the box is at capacity.
  void enqueue(Message&& msg);

  /// Remove and return the first message matching (ctx, src, tag); blocks
  /// until one arrives.
  [[nodiscard]] Message dequeue_match(int ctx, int src, int tag);

  /// Like dequeue_match but does not block: returns nullopt if no match is
  /// currently queued.
  [[nodiscard]] std::optional<Message> try_dequeue_match(int ctx, int src,
                                                         int tag);

  /// Blocking probe: waits for a match and returns its envelope without
  /// removing it (MPI_Probe).
  [[nodiscard]] Status probe(int ctx, int src, int tag);

  /// Non-blocking probe (MPI_Iprobe).
  [[nodiscard]] std::optional<Status> try_probe(int ctx, int src, int tag);

  [[nodiscard]] std::size_t size() const;

 private:
  [[nodiscard]] std::deque<Message>::iterator find_locked(int ctx, int src,
                                                          int tag);

  mutable std::mutex m_;
  std::condition_variable arrived_;  ///< signalled on enqueue
  std::condition_variable drained_;  ///< signalled on dequeue
  std::deque<Message> q_;
  std::size_t capacity_;
};

}  // namespace ombx::mpi
