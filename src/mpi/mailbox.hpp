// Per-rank mailbox with MPI matching semantics.
//
// Senders enqueue under the destination's lock; receivers block until a
// message matching (context, source, tag) exists.
//
// Matching structure: messages are binned into per-(context, src, tag)
// FIFO queues indexed by an open-addressing flat hash, so the common
// exact-match receive is an O(1) hash hit + pop_front instead of the old
// O(queue-depth) linear scan.  Every message is stamped with a global
// monotone sequence number at enqueue; a wildcard receive (kAnySource /
// kAnyTag / both) scans the bin directory — O(#bins), which is bounded by
// the number of distinct (context, src, tag) triples in flight, not by
// the number of queued messages — and takes the candidate bin whose head
// has the smallest sequence number.  Since bin FIFO order equals per-key
// arrival order and sequence numbers equal global arrival order, every
// receive and probe observes exactly the order the old single-deque scan
// produced (property-tested against a reference linear mailbox in
// tests/test_mailbox_matching.cpp).
//
// Every blocking path (matched receive, blocking probe, capacity-blocked
// enqueue) participates in the failure-propagation protocol: poison()
// wakes all waiters with an AbortedError (whatever bin they wait on),
// reset() drains every bin, and waits are registered in the engine's
// WaitRegistry so the deadlock watchdog can dump what each rank is stuck
// on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "fault/abort.hpp"
#include "fault/watchdog.hpp"
#include "ft/ft.hpp"
#include "mpi/message.hpp"
#include "obs/metrics.hpp"

namespace ombx::explore {
class ScheduleOracle;
struct Candidate;
}  // namespace ombx::explore

namespace ombx::mpi {

class Mailbox {
 public:
  /// Upper bound on queued messages; enqueue blocks beyond it (models MPI
  /// eager flow control and bounds host memory at scale).  `registry` (may
  /// be null) receives blocked-wait registrations for `owner_rank`'s
  /// receives and for senders stuck on capacity.
  explicit Mailbox(std::size_t capacity = 8192,
                   fault::WaitRegistry* registry = nullptr,
                   int owner_rank = -1)
      : capacity_(capacity), registry_(registry), owner_(owner_rank) {
    table_.resize(kInitialSlots);
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message; blocks while the box is at capacity.  Throws
  /// AbortedError when the box is (or becomes) poisoned, so capacity-
  /// blocked senders wake instead of hanging on a dead receiver.
  void enqueue(Message&& msg);

  /// Remove and return the first message matching (ctx, src, tag); blocks
  /// until one arrives.  Throws AbortedError once poisoned.
  [[nodiscard]] Message dequeue_match(int ctx, int src, int tag);

  /// Like dequeue_match but does not block: returns nullopt if no match is
  /// currently queued.
  [[nodiscard]] std::optional<Message> try_dequeue_match(int ctx, int src,
                                                         int tag);

  /// Blocking probe: waits for a match and returns its envelope without
  /// removing it (MPI_Probe).  Throws AbortedError once poisoned.
  [[nodiscard]] Status probe(int ctx, int src, int tag);

  /// Non-blocking probe (MPI_Iprobe).
  [[nodiscard]] std::optional<Status> try_probe(int ctx, int src, int tag);

  /// Abort propagation: wake every waiter (senders and receivers); all
  /// current and future blocking calls throw AbortedError carrying `info`.
  void poison(std::shared_ptr<const fault::AbortInfo> info);

  /// Re-arm the mailbox for a fresh run (clears poison and drains every
  /// bin, returning pooled payload buffers to their pool).
  void reset();

  [[nodiscard]] std::size_t size() const;

  /// One entry per nonempty bin: the (context, src, tag) key and how many
  /// messages are still queued under it.  Sorted by (ctx, src, tag) so the
  /// finalize audit's unmatched-send report is deterministic.
  struct Pending {
    int ctx;
    int src;
    int tag;
    std::size_t count;
  };
  [[nodiscard]] std::vector<Pending> pending_summary() const;

  /// Attach the world's ULFM failure state (null when FT is disabled —
  /// the default, in which case no wait ever consults it).  Blocked waits
  /// then wake when the peer they depend on is dead- or exit-marked and
  /// no matching message is queued; a queued match always wins, which is
  /// deterministic because a rank's sends happen-before its own marks.
  void set_failure_state(const ft::FailureState* fs) noexcept {
    std::lock_guard<std::mutex> lk(m_);
    fs_ = fs;
  }

  /// Wake every waiter so it re-evaluates the failure state (called after
  /// a death/exit/revoke mark; never with FailureState's mutex held).
  void ft_notify();

  /// Attach the owner rank's metrics block (null to detach).  Successful
  /// dequeues are classified as exact / MRU / wildcard in receiver
  /// program order, so the counts are deterministic (see obs/metrics.hpp).
  void set_counters(obs::RankCounters* counters) noexcept {
    std::lock_guard<std::mutex> lk(m_);
    counters_ = counters;
  }

  /// Attach a scheduling oracle (null to detach — the default; every
  /// match path then reduces to plain find_match).  With an oracle, each
  /// wildcard match records its candidate set, honours a pending pin
  /// (waiting for the pinned bin instead of taking the min-seq head), and
  /// consults fuzz picks (see explore/explore.hpp).
  void set_oracle(explore::ScheduleOracle* oracle) noexcept {
    std::lock_guard<std::mutex> lk(m_);
    oracle_ = oracle;
  }

 private:
  /// One FIFO of messages sharing an exact (context, src, tag) key.  Bins
  /// are never deleted before reset(); an emptied bin stays registered so
  /// its next message skips the insert path.
  struct Bin {
    int ctx = 0;
    int src = 0;
    int tag = 0;
    std::deque<Message> q;
  };

  static constexpr std::size_t kInitialSlots = 64;  // power of two

  [[nodiscard]] static std::uint64_t hash_key(int ctx, int src,
                                              int tag) noexcept;

  /// Exact-key bin lookup; null when the triple has no bin yet.
  [[nodiscard]] Bin* find_bin(int ctx, int src, int tag) const noexcept;
  /// Exact-key bin lookup, creating (and indexing) the bin if absent.
  [[nodiscard]] Bin& obtain_bin(int ctx, int src, int tag);
  void rehash(std::size_t new_slots);

  /// The bin whose head is the first message (in global arrival order)
  /// matching the possibly-wildcarded pattern; null when none is queued.
  /// The match itself is always the returned bin's front().
  [[nodiscard]] Bin* find_match(int ctx, int src, int tag) const noexcept;

  /// Oracle-aware selection: find_match, except that for a wildcard
  /// pattern a pending pin restricts the match to the pinned bin (null
  /// until it has a message) and fuzz mode substitutes a seeded candidate
  /// pick.  Side-effect-free apart from stale-pin cursor advancement, so
  /// it is safe inside wait predicates that evaluate many times.
  [[nodiscard]] Bin* match_for(int ctx, int src, int tag);

  /// Record the decision a successful wildcard match just committed
  /// (candidate set + chosen bin); consumes the rank's decision index and
  /// any pin that forced it.  Must run under the same m_ hold as the
  /// match_for() that selected `bin`.  No-op without an oracle or for
  /// exact patterns.
  void commit_wildcard_locked(const Bin& bin, int ctx, int src, int tag);

  /// All nonempty bins matching the pattern, seq-ascending by head.
  void collect_candidates(int ctx, int src, int tag,
                          std::vector<explore::Candidate>& out) const;

  /// Pop the head of `bin`, maintaining counts and waking capacity-blocked
  /// senders.  `wildcard` says whether the pattern that selected the bin
  /// carried a wildcard (metrics classification).
  [[nodiscard]] Message take_locked(Bin& bin, bool wildcard);

  [[noreturn]] void throw_poisoned_locked();

  /// Log an FT wake whose death/exit marks coexisted (a wake-order tie —
  /// resolved deterministically by virtual time, but worth attributing
  /// during exploration).  No-op without an oracle.
  void note_ft_interrupt_locked(const ft::FailureState::Interrupt& it,
                                int ctx);

  mutable std::mutex m_;
  std::condition_variable arrived_;  ///< signalled on enqueue / poison
  std::condition_variable drained_;  ///< signalled on dequeue / poison
  std::deque<Bin> bins_;             ///< stable storage + wildcard scan order
  std::vector<Bin*> table_;          ///< open-addressing index, pow2 slots
  mutable Bin* mru_ = nullptr;       ///< last bin touched (steady traffic)
  std::size_t queued_ = 0;           ///< total messages across bins
  std::uint64_t next_seq_ = 0;       ///< global arrival stamp
  // Waiter counts (guarded by m_) let the hot path skip the kernel notify
  // when nobody is blocked — the overwhelmingly common case.
  int arrival_waiters_ = 0;  ///< blocked receives + probes
  int drain_waiters_ = 0;    ///< capacity-blocked senders
  std::size_t capacity_;
  obs::RankCounters* counters_ = nullptr;  ///< owner's metrics (may be null)
  Bin* last_dequeued_ = nullptr;  ///< bin of the previous successful dequeue
  std::shared_ptr<const fault::AbortInfo> poison_;
  fault::WaitRegistry* registry_;
  int owner_;
  const ft::FailureState* fs_ = nullptr;  ///< null unless FT mode
  explore::ScheduleOracle* oracle_ = nullptr;  ///< null unless exploring
};

}  // namespace ombx::mpi
