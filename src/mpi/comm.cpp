#include "mpi/comm.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>

#include "mpi/error.hpp"
#include "mpi/request.hpp"

namespace ombx::mpi {

namespace {
// Tags reserved for communicator-management traffic; user tags must be
// non-negative and below this band (checked in send/recv).
constexpr int kSplitGatherTag = 0x7ff00001;
constexpr int kSplitReplyTag = 0x7ff00002;

ConstView bytes_of(const std::vector<std::int32_t>& v) {
  return ConstView{reinterpret_cast<const std::byte*>(v.data()),
                   v.size() * sizeof(std::int32_t), net::MemSpace::kHost};
}

std::string rank_or_any(int r) {
  return r == kAnySource ? "any" : std::to_string(r);
}
std::string tag_or_any(int t) {
  return t == kAnyTag ? "any" : std::to_string(t);
}
}  // namespace

Comm::Comm(Engine& engine, int context, std::vector<int> world_ranks,
           int my_comm_rank)
    : engine_(&engine),
      context_(context),
      world_ranks_(std::move(world_ranks)),
      my_rank_(my_comm_rank) {
  OMBX_REQUIRE(!world_ranks_.empty(), "communicator must not be empty");
  OMBX_REQUIRE(my_rank_ >= 0 && my_rank_ < size(),
               "comm rank out of range");
  my_world_ = world_ranks_[static_cast<std::size_t>(my_rank_)];
  // FT mode tracks every communicator's membership for failure scoping
  // (no-op when FT is disabled; idempotent — first registering rank wins).
  engine_->ft_register_comm(context_, world_ranks_);
}

int Comm::world_rank(int comm_rank) const {
  OMBX_REQUIRE(comm_rank >= 0 && comm_rank < size(),
               "comm rank out of range");
  return world_ranks_[static_cast<std::size_t>(comm_rank)];
}

simtime::SimClock& Comm::clock() const {
  return engine_->state(my_world_).clock;
}

void Comm::send(ConstView v, int dst, int tag) const {
  OMBX_REQUIRE_AT(tag >= 0, "user tags must be non-negative", my_world_,
                  context_);
  if (auto* chk = engine_->checker()) {
    // Reading a range a pending irecv may still rewrite is the hazard;
    // reading alongside pending isends (OSU window sends) is legal.
    chk->on_touch(my_world_, context_, v.data, v.bytes,
                  check::Checker::Access::kRead, "send");
  }
  // Blocking send parks on the cell until the receiver is done with `v`,
  // which is what licenses the zero-copy rendezvous path.  isend (below)
  // must stay buffered: its caller may mutate or free `v` before wait().
  auto cell = engine_->post_send(my_world_, world_rank(dst), context_,
                                 my_rank_, tag, v, /*force_payload=*/false,
                                 SendBuffering::kZeroCopy);
  if (cell) engine_->await_cell(my_world_, *cell);
}

Status Comm::recv(MutView v, int src, int tag) const {
  if (auto* chk = engine_->checker()) {
    // Writing over a range a pending isend conceptually still reads is
    // the hazard (our isends copy at post time, but real MPI's need not).
    chk->on_touch(my_world_, context_, v.data, v.bytes,
                  check::Checker::Access::kWrite, "recv");
  }
  const int src_comm_filter = src;  // comm-local; engine matches on it
  // The world rank behind an exact source names the sender's SPSC ring,
  // enabling the mailbox's lock-free exact-match pop.
  const int src_world_hint = src == kAnySource ? -1 : world_rank(src);
  return engine_->recv(my_world_, context_, src_comm_filter, tag, v,
                       src_world_hint);
}

Status Comm::sendrecv(ConstView s, int dst, int stag, MutView r, int src,
                      int rtag) const {
  Request sreq = isend(s, dst, stag);
  Status st = recv(r, src, rtag);
  sreq.wait();
  return st;
}

Request Comm::isend(ConstView v, int dst, int tag) const {
  OMBX_REQUIRE_AT(tag >= 0, "user tags must be non-negative", my_world_,
                  context_);
  // Pin + ticket before posting so a hazardous isend is flagged before
  // its message is in flight (and so a failing post leaves nothing
  // half-registered: the ticket unwinds silently with the exception).
  std::shared_ptr<check::OpTicket> ticket;
  if (auto* chk = engine_->checker();
      chk != nullptr && !chk->in_internal(my_world_)) {
    const std::string desc = chk->describe(
        my_world_, "isend " + std::to_string(v.bytes) + "B to comm rank " +
                       std::to_string(dst) + " tag " + std::to_string(tag));
    const std::uint64_t pin =
        chk->pin(my_world_, context_, v.data, v.bytes,
                 check::Checker::Access::kRead, desc);
    ticket = std::make_shared<check::OpTicket>(*chk, my_world_, context_,
                                               pin, desc);
  }
  auto cell = engine_->post_send(my_world_, world_rank(dst), context_,
                                 my_rank_, tag, v);
  Request r = Request::make_send(*this, std::move(cell));
  r.ticket_ = std::move(ticket);
  return r;
}

Request Comm::irecv(MutView v, int src, int tag) const {
  Request r = Request::make_recv(*this, v, src, tag);
  if (auto* chk = engine_->checker();
      chk != nullptr && !chk->in_internal(my_world_)) {
    const std::string desc = chk->describe(
        my_world_, "irecv " + std::to_string(v.bytes) +
                       "B from comm rank " + rank_or_any(src) + " tag " +
                       tag_or_any(tag));
    const std::uint64_t pin =
        chk->pin(my_world_, context_, v.data, v.bytes,
                 check::Checker::Access::kWrite, desc);
    r.ticket_ = std::make_shared<check::OpTicket>(*chk, my_world_, context_,
                                                  pin, desc);
  }
  return r;
}

Status Comm::probe(int src, int tag) const {
  return engine_->probe(my_world_, context_, src, tag);
}

std::optional<Status> Comm::iprobe(int src, int tag) const {
  return engine_->iprobe(my_world_, context_, src, tag);
}

std::optional<Comm> Comm::split(int color, int key) const {
  // Linear gather of (color, key) at comm rank 0, which partitions, asks
  // the engine for one fresh context per group, and replies to each member
  // with [context, new_rank, group_size, world_ranks...].
  const int n = size();
  std::vector<std::int32_t> reply;

  if (my_rank_ == 0) {
    std::vector<std::pair<std::int32_t, std::int32_t>> entries(
        static_cast<std::size_t>(n));
    entries[0] = {color, key};
    for (int r = 1; r < n; ++r) {
      std::vector<std::int32_t> buf(2);
      MutView mv{reinterpret_cast<std::byte*>(buf.data()),
                 buf.size() * sizeof(std::int32_t), net::MemSpace::kHost};
      (void)engine_->recv(my_world_, context_, r, kSplitGatherTag, mv,
                          world_rank(r));
      entries[static_cast<std::size_t>(r)] = {buf[0], buf[1]};
    }

    // Group members by color; order inside a group by (key, parent rank).
    std::map<std::int32_t, std::vector<int>> groups;
    for (int r = 0; r < n; ++r) {
      if (entries[static_cast<std::size_t>(r)].first >= 0) {
        groups[entries[static_cast<std::size_t>(r)].first].push_back(r);
      }
    }
    std::map<std::int32_t, std::int32_t> contexts;
    for (auto& [c, members] : groups) {
      std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
        return entries[static_cast<std::size_t>(a)].second <
               entries[static_cast<std::size_t>(b)].second;
      });
      contexts[c] = engine_->allocate_context();
    }

    for (int r = n - 1; r >= 0; --r) {
      const std::int32_t c = entries[static_cast<std::size_t>(r)].first;
      std::vector<std::int32_t> out;
      if (c < 0) {
        out = {-1, -1, 0};
      } else {
        const auto& members = groups.at(c);
        const auto pos = std::find(members.begin(), members.end(), r);
        out.push_back(contexts.at(c));
        out.push_back(
            static_cast<std::int32_t>(pos - members.begin()));
        out.push_back(static_cast<std::int32_t>(members.size()));
        for (int m : members) {
          out.push_back(static_cast<std::int32_t>(world_rank(m)));
        }
      }
      if (r == 0) {
        reply = std::move(out);
      } else {
        auto cell = engine_->post_send(my_world_, world_rank(r), context_,
                                       my_rank_, kSplitReplyTag,
                                       bytes_of(out),
                                       /*force_payload=*/true);
        if (cell) engine_->await_cell(my_world_, *cell);
      }
    }
  } else {
    const std::vector<std::int32_t> mine = {color, key};
    auto cell = engine_->post_send(my_world_, world_rank(0), context_,
                                   my_rank_, kSplitGatherTag,
                                   bytes_of(mine),
                                   /*force_payload=*/true);
    if (cell) engine_->await_cell(my_world_, *cell);

    const Status st = engine_->probe(my_world_, context_, 0, kSplitReplyTag);
    reply.resize(st.bytes / sizeof(std::int32_t));
    MutView mv{reinterpret_cast<std::byte*>(reply.data()), st.bytes,
               net::MemSpace::kHost};
    (void)engine_->recv(my_world_, context_, 0, kSplitReplyTag, mv,
                        world_rank(0));
  }

  OMBX_REQUIRE(reply.size() >= 3, "malformed split reply");
  if (reply[0] < 0) return std::nullopt;
  const int new_ctx = reply[0];
  const int new_rank = reply[1];
  const int new_size = reply[2];
  OMBX_REQUIRE(reply.size() == 3 + static_cast<std::size_t>(new_size),
               "malformed split reply length");
  std::vector<int> worlds(reply.begin() + 3, reply.end());
  return Comm(*engine_, new_ctx, std::move(worlds), new_rank);
}

Comm Comm::dup() const {
  auto out = split(0, my_rank_);
  OMBX_REQUIRE(out.has_value(), "dup must produce a communicator");
  return *std::move(out);
}

}  // namespace ombx::mpi
