#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"
#include "mpi/request.hpp"

namespace ombx::mpi {

namespace {

using detail::kTagBarrier;

void barrier_dissemination(Comm& c) {
  const int n = c.size();
  const int r = c.rank();
  const ConstView empty_s{};
  MutView empty_r{};
  for (int k = 1; k < n; k <<= 1) {
    const int to = (r + k) % n;
    const int from = (r - k + n) % n;
    (void)c.sendrecv(empty_s, to, kTagBarrier, empty_r, from, kTagBarrier);
  }
}

void barrier_binomial(Comm& c) {
  // Fan-in to rank 0 over a binomial tree, then fan-out.
  const int n = c.size();
  const int r = c.rank();
  const ConstView empty_s{};
  MutView empty_r{};

  int mask = 1;
  while (mask < n) {
    if (r & mask) {
      c.send(empty_s, r - mask, kTagBarrier);
      break;
    }
    if (r + mask < n) (void)c.recv(empty_r, r + mask, kTagBarrier);
    mask <<= 1;
  }
  // Fan-out: receive the release from the parent, then forward it down.
  if (r != 0) {
    int parent_mask = 1;
    while (!(r & parent_mask)) parent_mask <<= 1;
    (void)c.recv(empty_r, r - parent_mask, kTagBarrier);
    mask = parent_mask >> 1;
  } else {
    mask = detail::pow2_below(n);
  }
  for (; mask > 0; mask >>= 1) {
    if (r + mask < n && !(r & mask)) c.send(empty_s, r + mask, kTagBarrier);
  }
}

}  // namespace

void barrier(Comm& c, net::BarrierAlgo algo) {
  if (c.size() == 1) return;
  if (algo == net::BarrierAlgo::kAuto) algo = c.net().tuning().barrier;
  if (algo == net::BarrierAlgo::kAuto) algo = net::BarrierAlgo::kDissemination;
  detail::CollSpan span(c, "barrier", net::to_string(algo), 0,
                        detail::CollMeta{});
  switch (algo) {
    case net::BarrierAlgo::kBinomial:
      barrier_binomial(c);
      break;
    case net::BarrierAlgo::kAuto:
    case net::BarrierAlgo::kDissemination:
      barrier_dissemination(c);
      break;
  }
}

}  // namespace ombx::mpi
