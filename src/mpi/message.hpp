// In-flight message representation and buffer views.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "net/network.hpp"
#include "simtime/clock.hpp"

namespace ombx::mpi {

using simtime::usec_t;

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Non-owning read view of a send buffer.  `data == nullptr` marks a
/// synthetic payload: the engine charges full virtual-time costs but moves
/// no bytes (used for at-scale runs whose aggregate buffers would not fit
/// in host memory).
struct ConstView {
  const std::byte* data = nullptr;
  std::size_t bytes = 0;
  net::MemSpace space = net::MemSpace::kHost;
};

/// Non-owning write view of a receive buffer.
struct MutView {
  std::byte* data = nullptr;
  std::size_t bytes = 0;
  net::MemSpace space = net::MemSpace::kHost;
};

/// Completion info, mirroring MPI_Status.
struct Status {
  int source = kAnySource;  ///< comm-local rank of the sender
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Rendezvous synchronization cell shared between sender and receiver: the
/// receiver fills in the transfer-completion time and signals; the sender
/// advances its clock to it.
struct SyncCell {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  usec_t release_time = 0.0;

  void complete(usec_t t) {
    {
      std::lock_guard<std::mutex> lk(m);
      release_time = t;
      done = true;
    }
    cv.notify_all();
  }

  usec_t await() {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done; });
    return release_time;
  }
};

/// One message in a mailbox.
struct Message {
  int context = 0;    ///< communicator context id (match key)
  int src = 0;        ///< comm-local source rank (match key)
  int tag = 0;        ///< (match key)
  int src_world = 0;  ///< physical source rank (cost-model lookups)
  std::size_t bytes = 0;
  std::vector<std::byte> payload;  ///< empty when synthetic
  net::MemSpace space = net::MemSpace::kHost;
  net::Protocol protocol = net::Protocol::kEager;
  usec_t send_time = 0.0;     ///< sender's virtual time at injection
  usec_t arrival_time = 0.0;  ///< eager: full-arrival time at receiver
  std::shared_ptr<SyncCell> sync;  ///< rendezvous only

  [[nodiscard]] bool matches(int want_ctx, int want_src,
                             int want_tag) const noexcept {
    return context == want_ctx &&
           (want_src == kAnySource || src == want_src) &&
           (want_tag == kAnyTag || tag == want_tag);
  }
};

}  // namespace ombx::mpi
