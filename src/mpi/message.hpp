// In-flight message representation and buffer views.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/abort.hpp"
#include "net/network.hpp"
#include "simtime/clock.hpp"

namespace ombx::mpi {

using simtime::usec_t;

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Non-owning read view of a send buffer.  `data == nullptr` marks a
/// synthetic payload: the engine charges full virtual-time costs but moves
/// no bytes (used for at-scale runs whose aggregate buffers would not fit
/// in host memory).
struct ConstView {
  const std::byte* data = nullptr;
  std::size_t bytes = 0;
  net::MemSpace space = net::MemSpace::kHost;
};

/// Non-owning write view of a receive buffer.
struct MutView {
  std::byte* data = nullptr;
  std::size_t bytes = 0;
  net::MemSpace space = net::MemSpace::kHost;
};

/// Completion info, mirroring MPI_Status.
struct Status {
  int source = kAnySource;  ///< comm-local rank of the sender
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Rendezvous synchronization cell shared between sender and receiver: the
/// receiver fills in the transfer-completion time and signals; the sender
/// advances its clock to it.  A cell can also be *poisoned* by an abort, in
/// which case await() throws (see error.hpp) instead of returning a time —
/// the wake path that keeps rendezvous senders from hanging when their
/// receiver dies.
struct SyncCell {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  usec_t release_time = 0.0;
  std::shared_ptr<const fault::AbortInfo> poisoned;
  // Wait-diagnostics envelope, written by the sender before the cell is
  // shared (read-only afterwards): who the sender is waiting on.
  int ctx = 0;
  int peer = -1;
  int tag = -1;

  void complete(usec_t t) {
    {
      std::lock_guard<std::mutex> lk(m);
      release_time = t;
      done = true;
    }
    cv.notify_all();
  }

  void poison(std::shared_ptr<const fault::AbortInfo> info) {
    {
      std::lock_guard<std::mutex> lk(m);
      poisoned = std::move(info);
    }
    cv.notify_all();
  }

  /// Blocks until completed or poisoned.  A completed cell returns its
  /// release time even under poison (the transfer genuinely finished; the
  /// abort is observed at the rank's next substrate call); an incomplete
  /// poisoned cell throws AbortedError/DeadlockError.
  usec_t await();

  /// Non-blocking completion check; throws when poisoned and incomplete.
  bool ready();
};

/// One message in a mailbox.
struct Message {
  int context = 0;    ///< communicator context id (match key)
  int src = 0;        ///< comm-local source rank (match key)
  int tag = 0;        ///< (match key)
  int src_world = 0;  ///< physical source rank (cost-model lookups)
  std::size_t bytes = 0;
  std::vector<std::byte> payload;  ///< empty when synthetic
  net::MemSpace space = net::MemSpace::kHost;
  net::Protocol protocol = net::Protocol::kEager;
  usec_t send_time = 0.0;     ///< sender's virtual time at injection
  usec_t arrival_time = 0.0;  ///< eager: full-arrival time at receiver
  std::shared_ptr<SyncCell> sync;  ///< rendezvous only

  [[nodiscard]] bool matches(int want_ctx, int want_src,
                             int want_tag) const noexcept {
    return context == want_ctx &&
           (want_src == kAnySource || src == want_src) &&
           (want_tag == kAnyTag || tag == want_tag);
  }
};

}  // namespace ombx::mpi
