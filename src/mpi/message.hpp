// In-flight message representation and buffer views.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>

#include "fault/abort.hpp"
#include "mpi/payload_pool.hpp"
#include "net/network.hpp"
#include "sched/sched.hpp"
#include "simtime/clock.hpp"

namespace ombx::mpi {

using simtime::usec_t;

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Non-owning read view of a send buffer.  `data == nullptr` marks a
/// synthetic payload: the engine charges full virtual-time costs but moves
/// no bytes (used for at-scale runs whose aggregate buffers would not fit
/// in host memory).
struct ConstView {
  const std::byte* data = nullptr;
  std::size_t bytes = 0;
  net::MemSpace space = net::MemSpace::kHost;
};

/// Non-owning write view of a receive buffer.
struct MutView {
  std::byte* data = nullptr;
  std::size_t bytes = 0;
  net::MemSpace space = net::MemSpace::kHost;
};

/// Completion info, mirroring MPI_Status.
struct Status {
  int source = kAnySource;  ///< comm-local rank of the sender
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Rendezvous synchronization cell shared between sender and receiver: the
/// receiver fills in the transfer-completion time and signals; the sender
/// advances its clock to it.  A cell can also be *poisoned* by an abort, in
/// which case await() throws (see error.hpp) instead of returning a time —
/// the wake path that keeps rendezvous senders from hanging when their
/// receiver dies.
struct SyncCell {
  std::mutex m;
  sched::WaitQueue cv;  ///< fiber-aware; cv semantics (see sched.hpp)
  bool done = false;
  /// Set by a zero-copy receiver (under `m`) just before it reads the
  /// sender's buffer.  A poisoned-but-in-transfer cell keeps the sender
  /// blocked until complete(): the receiver is in a bounded straight-line
  /// copy, and the sender's buffer must stay alive under it.
  bool in_transfer = false;
  usec_t release_time = 0.0;
  std::shared_ptr<const fault::AbortInfo> poisoned;
  /// ULFM interruption (FT mode only): the peer this cell waits on died
  /// (ft_failed_rank >= 0) or exited the communicator after a revoke
  /// (ft_revoked).  Like poison, but scoped: await() raises the matching
  /// ft:: error instead of AbortedError, and a completed cell still wins.
  int ft_failed_rank = -1;
  bool ft_revoked = false;
  usec_t ft_time = 0.0;
  // Wait-diagnostics envelope, written by the sender before the cell is
  // shared (read-only afterwards): who the sender is waiting on.
  int ctx = 0;
  int peer = -1;
  int tag = -1;

  void complete(usec_t t) {
    {
      std::lock_guard<std::mutex> lk(m);
      release_time = t;
      done = true;
    }
    cv.notify_all();
  }

  void poison(std::shared_ptr<const fault::AbortInfo> info) {
    {
      std::lock_guard<std::mutex> lk(m);
      poisoned = std::move(info);
    }
    cv.notify_all();
  }

  /// ULFM interruption (see the field comment).  `proc_failed` selects
  /// ProcFailedError (dead peer) vs RevokedError (peer exited the ctx).
  void ft_interrupt(bool proc_failed, int rank, usec_t t) {
    {
      std::lock_guard<std::mutex> lk(m);
      if (proc_failed) {
        ft_failed_rank = rank;
      } else {
        ft_revoked = true;
      }
      ft_time = t;
    }
    cv.notify_all();
  }

  /// Zero-copy receiver handshake: claim the right to read the sender's
  /// buffer.  Returns false when the cell is already poisoned — the sender
  /// may have unwound (freeing the buffer), so the caller must not touch
  /// it.  On true, the sender is pinned until complete() is called; the
  /// caller must reach complete() without executing anything that throws.
  [[nodiscard]] bool begin_transfer();

  /// Blocks until completed or poisoned.  A completed cell returns its
  /// release time even under poison (the transfer genuinely finished; the
  /// abort is observed at the rank's next substrate call); an incomplete
  /// poisoned cell throws AbortedError/DeadlockError — unless a receiver
  /// holds the transfer claim, in which case completion is imminent and we
  /// keep waiting for it (the sender's buffer is being read).
  usec_t await();

  /// Non-blocking completion check; throws when poisoned and incomplete
  /// (but reports "not yet" while a claimed transfer is draining).
  bool ready();
};

/// One message in a mailbox.  Payload bytes travel one of three ways:
///   - `payload` (pooled/inline copy) — eager sends and buffered
///     rendezvous (isend), whose staging buffer may die at post time;
///   - `zero_copy_src` — blocking-send rendezvous: the sender is blocked
///     on `sync` for the whole transfer, so the receiver copies straight
///     out of the sender's buffer and only then completes the cell;
///   - neither — synthetic payloads (virtual-time costs only).
struct Message {
  int context = 0;    ///< communicator context id (match key)
  int src = 0;        ///< comm-local source rank (match key)
  int tag = 0;        ///< (match key)
  int src_world = 0;  ///< physical source rank (cost-model lookups)
  std::size_t bytes = 0;
  PooledPayload payload;  ///< empty when synthetic or zero-copy
  /// Zero-copy rendezvous source; `data` is only dereferenceable before
  /// `sync->complete()` (the sender blocks until then).
  ConstView zero_copy_src;
  net::MemSpace space = net::MemSpace::kHost;
  net::Protocol protocol = net::Protocol::kEager;
  /// Fault injection: flip `payload`/`zero_copy_src` byte
  /// (corrupt_offset % bytes) into the receive buffer at delivery.
  /// Recorded here (not applied to the stored bytes) so corruption works
  /// identically on pooled, zero-copy, and synthetic payloads.
  bool corrupt = false;
  std::size_t corrupt_offset = 0;
  /// Global arrival order, stamped by the mailbox at enqueue; wildcard
  /// receives and probes use it to observe MPI arrival order across bins.
  std::uint64_t seq = 0;
  usec_t send_time = 0.0;     ///< sender's virtual time at injection
  usec_t arrival_time = 0.0;  ///< eager: full-arrival time at receiver
  std::shared_ptr<SyncCell> sync;  ///< rendezvous only

  /// True when bytes physically travelled with this message.
  [[nodiscard]] bool carries_data() const noexcept {
    return zero_copy_src.data != nullptr || !payload.empty();
  }

  [[nodiscard]] bool matches(int want_ctx, int want_src,
                             int want_tag) const noexcept {
    return context == want_ctx &&
           (want_src == kAnySource || src == want_src) &&
           (want_tag == kAnyTag || tag == want_tag);
  }
};

// dequeue_match returns Message by value; moves must stay cheap (at most
// PooledPayload's 64-byte inline copy) and never throw.
static_assert(std::is_nothrow_move_constructible_v<Message>);
static_assert(std::is_nothrow_move_assignable_v<Message>);

}  // namespace ombx::mpi
