// Derived-datatype layouts (MPI_Type_vector / MPI_Type_indexed analogues)
// with an explicit pack/unpack engine.
//
// Real MPI implementations transfer non-contiguous datatypes by packing
// them into a contiguous staging buffer (or pipelining segments); the pack
// cost is why strided transfers are slower than contiguous ones of the
// same payload.  OMB-X models exactly that: pack/unpack really move the
// bytes (validated by tests) and their cost is charged through the
// cluster's streaming-byte throughput with a strided-access penalty.
#pragma once

#include <cstddef>
#include <vector>

#include "mpi/message.hpp"

namespace ombx::mpi {

class Comm;

/// A strided layout: `count` blocks of `block_bytes`, consecutive block
/// starts separated by `stride_bytes` (>= block_bytes).
/// MPI_Type_vector with byte granularity.
struct VectorLayout {
  std::size_t count = 1;
  std::size_t block_bytes = 1;
  std::size_t stride_bytes = 1;

  [[nodiscard]] std::size_t packed_bytes() const noexcept {
    return count * block_bytes;
  }
  /// Extent from the first byte to one-past the last touched byte.
  [[nodiscard]] std::size_t extent_bytes() const noexcept {
    return count == 0 ? 0 : (count - 1) * stride_bytes + block_bytes;
  }
  [[nodiscard]] bool contiguous() const noexcept {
    return count <= 1 || stride_bytes == block_bytes;
  }
};

/// A fully general layout: arbitrary (offset, length) blocks.
/// MPI_Type_indexed with byte granularity.
struct IndexedLayout {
  std::vector<std::size_t> offsets;
  std::vector<std::size_t> lengths;

  [[nodiscard]] std::size_t packed_bytes() const noexcept;
  [[nodiscard]] std::size_t extent_bytes() const noexcept;
};

/// Gather the layout's blocks from `src` into contiguous `dst`.
/// `dst.bytes` must be >= packed_bytes(); `src.bytes` >= extent_bytes().
/// Null data (synthetic) skips the copy.  Returns the packed size.
std::size_t pack(const VectorLayout& l, ConstView src, MutView dst);
std::size_t pack(const IndexedLayout& l, ConstView src, MutView dst);

/// Scatter contiguous `src` back into the layout's blocks of `dst`.
std::size_t unpack(const VectorLayout& l, ConstView src, MutView dst);
std::size_t unpack(const IndexedLayout& l, ConstView src, MutView dst);

/// Virtual-time cost of one pack or unpack pass: the payload priced at the
/// cluster's streaming rate, stretched by a strided-access penalty when
/// blocks are small relative to the stride (cache-line waste).
[[nodiscard]] simtime::usec_t pack_cost_us(const Comm& c,
                                           std::size_t packed_bytes,
                                           std::size_t block_bytes,
                                           std::size_t stride_bytes);

/// Convenience: send `layout` of `src` to `dst` rank by packing into a
/// staging buffer (charged), sending, and letting the receiver unpack —
/// what MPI does internally for non-contiguous types.
void send_strided(const Comm& c, const VectorLayout& l, ConstView src,
                  int dst, int tag);
/// Receive into `layout` of `dst` (blocking).
Status recv_strided(const Comm& c, const VectorLayout& l, MutView dst,
                    int src, int tag);

}  // namespace ombx::mpi
