#include "mpi/rma.hpp"

#include <cstring>
#include <exception>
#include <numeric>

#include "mpi/error.hpp"

namespace ombx::mpi {

namespace {

constexpr int kTagRmaOp = 0x7d000001;
constexpr int kTagRmaResp = 0x7d000002;

// Wire header preceding each RMA operation message.
struct RmaHeader {
  std::uint8_t kind;
  std::uint8_t dtype;
  std::uint8_t op;
  std::uint64_t disp;
  std::uint64_t len;
};
constexpr std::size_t kHeaderBytes = 3 + 8 + 8;

void write_header(std::byte* out, const RmaHeader& h) {
  out[0] = static_cast<std::byte>(h.kind);
  out[1] = static_cast<std::byte>(h.dtype);
  out[2] = static_cast<std::byte>(h.op);
  std::memcpy(out + 3, &h.disp, 8);
  std::memcpy(out + 11, &h.len, 8);
}

RmaHeader read_header(const std::byte* in) {
  RmaHeader h;
  h.kind = static_cast<std::uint8_t>(in[0]);
  h.dtype = static_cast<std::uint8_t>(in[1]);
  h.op = static_cast<std::uint8_t>(in[2]);
  std::memcpy(&h.disp, in + 3, 8);
  std::memcpy(&h.len, in + 11, 8);
  return h;
}

}  // namespace

Win::Win(const Comm& comm, MutView window)
    : comm_(std::make_unique<Comm>(comm.dup())),
      window_(window),
      ops_to_target_(static_cast<std::size_t>(comm.size()), 0) {
  OMBX_REQUIRE(comm_->engine().payload_mode() == PayloadMode::kReal,
               "RMA windows require real payloads (headers ride the wire)");
}

Win::~Win() {
  check::Checker* chk = comm_->engine().checker();
  if (chk == nullptr) return;
  const std::int64_t issued = std::accumulate(
      ops_to_target_.begin(), ops_to_target_.end(), std::int64_t{0});
  if (issued == 0 && pending_sends_.empty() && pending_gets_.empty()) return;
  if (std::uncaught_exceptions() > 0 || chk->leaks_suppressed()) return;
  const int world = comm_->world_rank(comm_->rank());
  chk->report_noexcept(check::Violation{
      check::Code::kRmaEpochOpen, world, comm_->context(), "win",
      std::to_string(issued) + " operation(s) issued (" +
          std::to_string(pending_gets_.size()) +
          " get(s) pending) but the epoch was never closed with fence()"});
}

void Win::issue(OpKind kind, ConstView payload, int target,
                std::size_t target_disp, std::size_t len, Datatype dt,
                Op op) {
  OMBX_REQUIRE(target >= 0 && target < size(), "RMA target out of range");
  // Wire traffic stages through `msg`, which dies when issue() returns
  // (the engine copies at post time) — checker pins on it would dangle.
  check::InternalOp internal(comm_->engine().checker(),
                             comm_->world_rank(comm_->rank()));
  std::vector<std::byte> msg(kHeaderBytes + payload.bytes);
  write_header(msg.data(),
               RmaHeader{static_cast<std::uint8_t>(kind),
                         static_cast<std::uint8_t>(dt),
                         static_cast<std::uint8_t>(op),
                         static_cast<std::uint64_t>(target_disp),
                         static_cast<std::uint64_t>(len)});
  if (payload.data != nullptr && payload.bytes > 0) {
    std::memcpy(msg.data() + kHeaderBytes, payload.data, payload.bytes);
  }
  // The engine copies the payload at post time, so the staging buffer may
  // die as soon as isend returns.
  pending_sends_.push_back(comm_->isend(
      ConstView{msg.data(), msg.size(), payload.space}, target, kTagRmaOp));
  ++ops_to_target_[static_cast<std::size_t>(target)];
}

void Win::put(ConstView src, int target, std::size_t target_disp) {
  issue(OpKind::kPut, src, target, target_disp, src.bytes,
        Datatype::kByte, Op::kSum);
}

void Win::get(MutView dst, int target, std::size_t target_disp) {
  issue(OpKind::kGet, ConstView{nullptr, 0, dst.space}, target, target_disp,
        dst.bytes, Datatype::kByte, Op::kSum);
  pending_gets_.push_back(PendingGet{dst, target});
}

void Win::accumulate(ConstView src, int target, std::size_t target_disp,
                     Datatype dt, Op op) {
  issue(OpKind::kAccumulate, src, target, target_disp, src.bytes, dt, op);
}

void Win::service_incoming(int incoming_ops) {
  // Same wire-traffic bracket as issue(): the staging vector and the
  // window-slice responses are substrate-internal, not user buffers.
  check::InternalOp internal(comm_->engine().checker(),
                             comm_->world_rank(comm_->rank()));
  for (int i = 0; i < incoming_ops; ++i) {
    const Status st = comm_->probe(kAnySource, kTagRmaOp);
    std::vector<std::byte> msg(st.bytes);
    (void)comm_->recv(MutView{msg.data(), msg.size()}, st.source,
                      kTagRmaOp);
    OMBX_REQUIRE(msg.size() >= kHeaderBytes, "short RMA message");
    const RmaHeader h = read_header(msg.data());
    OMBX_REQUIRE(h.disp + h.len <= window_.bytes,
                 "RMA operation exceeds the target window");
    switch (static_cast<OpKind>(h.kind)) {
      case OpKind::kPut:
        OMBX_REQUIRE(msg.size() == kHeaderBytes + h.len,
                     "RMA put length mismatch");
        if (window_.data != nullptr && h.len > 0) {
          std::memcpy(window_.data + h.disp, msg.data() + kHeaderBytes,
                      h.len);
        }
        break;
      case OpKind::kGet:
        // Non-blocking: two ranks answering each other's gets must not
        // block in a rendezvous response simultaneously.
        pending_sends_.push_back(comm_->isend(
            ConstView{window_.data ? window_.data + h.disp : nullptr, h.len,
                      window_.space},
            st.source, kTagRmaResp));
        break;
      case OpKind::kAccumulate: {
        OMBX_REQUIRE(msg.size() == kHeaderBytes + h.len,
                     "RMA accumulate length mismatch");
        const auto dt = static_cast<Datatype>(h.dtype);
        const auto op = static_cast<Op>(h.op);
        const std::size_t elems = h.len / size_of(dt);
        OMBX_REQUIRE(elems * size_of(dt) == h.len,
                     "RMA accumulate length not a datatype multiple");
        const std::size_t flops =
            apply(op, dt,
                  window_.data ? window_.data + h.disp : nullptr,
                  window_.data ? msg.data() + kHeaderBytes : nullptr,
                  elems);
        comm_->charge_flops(static_cast<double>(flops));
        break;
      }
      default:
        throw Error("unknown RMA operation kind");
    }
  }
}

void Win::fence() {
  // Epoch close: counts exchange, drain, get responses, local waits.

  // 1. Everyone learns how many operations target it this epoch.
  std::vector<std::int64_t> incoming(1, 0);
  reduce_scatter(
      *comm_,
      ConstView{reinterpret_cast<const std::byte*>(ops_to_target_.data()),
                ops_to_target_.size() * sizeof(std::int64_t)},
      MutView{reinterpret_cast<std::byte*>(incoming.data()),
              sizeof(std::int64_t)},
      Datatype::kInt64, Op::kSum);

  // 2. Drain the operations that target this rank.
  service_incoming(static_cast<int>(incoming[0]));

  // 3. Collect responses for our gets (issued order per target; matching
  //    is FIFO per (source, tag), so per-target order is preserved).
  for (const PendingGet& g : pending_gets_) {
    (void)comm_->recv(g.dst, g.target, kTagRmaResp);
  }
  pending_gets_.clear();

  // 4. Local completion of our own issued sends, then close the epoch.
  (void)Request::wait_all(pending_sends_);
  pending_sends_.clear();
  std::fill(ops_to_target_.begin(), ops_to_target_.end(), 0);

  barrier(*comm_);
}

}  // namespace ombx::mpi
