#include "mpi/mailbox.hpp"

#include <algorithm>
#include <tuple>

#include "explore/explore.hpp"
#include "mpi/error.hpp"

namespace ombx::mpi {

void Mailbox::throw_poisoned_locked() {
  auto info = *poison_;
  throw_aborted(info);
}

std::uint64_t Mailbox::hash_key(int ctx, int src, int tag) noexcept {
  // SplitMix64-style finalizer over the packed triple.  Collisions are
  // resolved by comparing the bin's actual key during probing.
  std::uint64_t k = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                         ctx)) << 32) |
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                        src));
  k ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) *
       0x9e3779b97f4a7c15ULL;
  k ^= k >> 30;
  k *= 0xbf58476d1ce4e5b9ULL;
  k ^= k >> 27;
  k *= 0x94d049bb133111ebULL;
  k ^= k >> 31;
  return k;
}

Mailbox::Bin* Mailbox::find_bin(int ctx, int src, int tag) const noexcept {
  if (mru_ != nullptr && mru_->ctx == ctx && mru_->src == src &&
      mru_->tag == tag) {
    return mru_;
  }
  const std::size_t mask = table_.size() - 1;
  std::size_t i = hash_key(ctx, src, tag) & mask;
  while (Bin* b = table_[i]) {
    if (b->ctx == ctx && b->src == src && b->tag == tag) {
      mru_ = b;
      return b;
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

void Mailbox::rehash(std::size_t new_slots) {
  table_.assign(new_slots, nullptr);
  const std::size_t mask = new_slots - 1;
  for (Bin& b : bins_) {
    std::size_t i = hash_key(b.ctx, b.src, b.tag) & mask;
    while (table_[i] != nullptr) i = (i + 1) & mask;
    table_[i] = &b;
  }
}

Mailbox::Bin& Mailbox::obtain_bin(int ctx, int src, int tag) {
  if (Bin* b = find_bin(ctx, src, tag)) return *b;
  if ((bins_.size() + 1) * 2 > table_.size()) rehash(table_.size() * 2);
  bins_.push_back(Bin{ctx, src, tag, {}});
  Bin& b = bins_.back();
  const std::size_t mask = table_.size() - 1;
  std::size_t i = hash_key(ctx, src, tag) & mask;
  while (table_[i] != nullptr) i = (i + 1) & mask;
  table_[i] = &b;
  mru_ = &b;
  return b;
}

Mailbox::Bin* Mailbox::find_match(int ctx, int src, int tag) const noexcept {
  if (src != kAnySource && tag != kAnyTag) {
    Bin* b = find_bin(ctx, src, tag);
    return (b != nullptr && !b->q.empty()) ? b : nullptr;
  }
  // Wildcard: earliest arrival among candidate bin heads.  All messages
  // in a bin share its key, so a bin either fully matches the pattern or
  // not at all, and the earliest match in a matching bin is its front.
  Bin* best = nullptr;
  std::uint64_t best_seq = 0;
  for (const Bin& b : bins_) {
    if (b.q.empty() || b.ctx != ctx) continue;
    if (src != kAnySource && b.src != src) continue;
    if (tag != kAnyTag && b.tag != tag) continue;
    const std::uint64_t s = b.q.front().seq;
    if (best == nullptr || s < best_seq) {
      best = const_cast<Bin*>(&b);
      best_seq = s;
    }
  }
  return best;
}

void Mailbox::collect_candidates(int ctx, int src, int tag,
                                 std::vector<explore::Candidate>& out) const {
  for (const Bin& b : bins_) {
    if (b.q.empty() || b.ctx != ctx) continue;
    if (src != kAnySource && b.src != src) continue;
    if (tag != kAnyTag && b.tag != tag) continue;
    out.push_back(explore::Candidate{b.src, b.tag, b.q.front().seq});
  }
  std::sort(out.begin(), out.end(),
            [](const explore::Candidate& a, const explore::Candidate& b) {
              return a.seq < b.seq;
            });
}

Mailbox::Bin* Mailbox::match_for(int ctx, int src, int tag) {
  if (oracle_ == nullptr || (src != kAnySource && tag != kAnyTag)) {
    return find_match(ctx, src, tag);
  }
  if (const explore::Pin* pin = oracle_->peek_pin(owner_)) {
    const bool compatible = (src == kAnySource || src == pin->src) &&
                            (tag == kAnyTag || tag == pin->tag);
    if (compatible) {
      // Forced choice: wait for the pinned bin even when other candidates
      // are already queued (the recorded run observed this one first).
      Bin* b = find_bin(ctx, pin->src, pin->tag);
      return (b != nullptr && !b->q.empty()) ? b : nullptr;
    }
    // The pin was recorded under a different receive pattern: the prefix
    // has diverged.  Fall back to the default; the stale pin is skipped
    // (and flagged) at the next decision.
    oracle_->mark_divergence();
    return find_match(ctx, src, tag);
  }
  Bin* b = find_match(ctx, src, tag);
  if (b != nullptr && oracle_->randomize()) {
    std::vector<explore::Candidate> cands;
    collect_candidates(ctx, src, tag, cands);
    if (cands.size() > 1) {
      const explore::Candidate& pick =
          cands[oracle_->fuzz_pick(owner_, cands.size())];
      b = find_bin(ctx, pick.src, pick.tag);
    }
  }
  return b;
}

void Mailbox::commit_wildcard_locked(const Bin& bin, int ctx, int src,
                                     int tag) {
  if (oracle_ == nullptr || (src != kAnySource && tag != kAnyTag)) return;
  std::vector<explore::Candidate> cands;
  collect_candidates(ctx, src, tag, cands);
  // A pending pin matching the chosen bin is the one that forced it; an
  // incompatible pin can never coincide with the default choice (any
  // exact pattern field pins the bin's key to the pattern, not the pin).
  const explore::Pin* pin = oracle_->peek_pin(owner_);
  const bool forced =
      pin != nullptr && pin->src == bin.src && pin->tag == bin.tag;
  const bool divergent =
      !cands.empty() &&
      !(cands.front().src == bin.src && cands.front().tag == bin.tag);
  if (counters_ != nullptr) {
    counters_->sched_wildcard_decisions.fetch_add(1,
                                                  std::memory_order_relaxed);
    if (divergent) {
      counters_->sched_forced_divergences.fetch_add(1,
                                                    std::memory_order_relaxed);
    }
  }
  oracle_->record_wildcard(owner_, ctx, bin.src, bin.tag, forced, divergent,
                           std::move(cands));
}

Message Mailbox::take_locked(Bin& bin, bool wildcard) {
  if (counters_ != nullptr) {
    // Classified in receiver program order (see obs/metrics.hpp): an MRU
    // hit is an exact dequeue from the same bin as the previous successful
    // dequeue — deterministic, unlike the mru_ pointer cache, which also
    // moves on sender-side enqueues.
    if (wildcard) {
      counters_->mailbox_wildcard_scans.fetch_add(1, std::memory_order_relaxed);
    } else if (&bin == last_dequeued_) {
      counters_->mailbox_mru_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_->mailbox_exact_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  last_dequeued_ = &bin;
  Message msg = std::move(bin.q.front());
  bin.q.pop_front();
  --queued_;
  if (registry_) registry_->note_progress();
  if (drain_waiters_ > 0) drained_.notify_all();
  return msg;
}

void Mailbox::enqueue(Message&& msg) {
  std::unique_lock<std::mutex> lk(m_);
  std::optional<ft::FailureState::Interrupt> ft_it;
  if (queued_ >= capacity_ && !poison_) {
    // The sender (not the owner) is the one blocked here.  Free capacity
    // wins over an FT interruption: the owner's pre-death drains
    // happen-before its death mark, so the outcome is deterministic.
    fault::ScopedWait wait(
        registry_, msg.src_world,
        fault::WaitInfo{fault::WaitKind::kSendCapacity, msg.context, owner_,
                        msg.tag});
    ++drain_waiters_;
    drained_.wait(lk, [&] {
      if (queued_ < capacity_ || poison_ != nullptr) return true;
      if (fs_ != nullptr) {
        ft_it = fs_->enqueue_interrupt(owner_);
        if (ft_it) return true;
      }
      return false;
    });
    --drain_waiters_;
  }
  if (poison_) throw_poisoned_locked();
  if (queued_ >= capacity_ && ft_it) {
    ft::throw_interrupt(*ft_it, msg.src_world, msg.context);
  }
  msg.seq = next_seq_++;
  obtain_bin(msg.context, msg.src, msg.tag).q.push_back(std::move(msg));
  ++queued_;
  if (registry_) registry_->note_progress();
  if (arrival_waiters_ > 0) arrived_.notify_all();
}

Message Mailbox::dequeue_match(int ctx, int src, int tag) {
  std::unique_lock<std::mutex> lk(m_);
  Bin* bin = match_for(ctx, src, tag);
  std::optional<ft::FailureState::Interrupt> ft_it;
  if (bin == nullptr && !poison_) {
    // A queued match wins over an FT interruption (checked first, both
    // here and in the predicate): the peer's sends happen-before its own
    // death or exit mark, so "drain, then raise" is deterministic.
    if (fs_ != nullptr) ft_it = fs_->wait_interrupt(ctx, src, owner_);
    if (!ft_it) {
      fault::ScopedWait wait(
          registry_, owner_,
          fault::WaitInfo{fault::WaitKind::kRecv, ctx, src, tag});
      ++arrival_waiters_;
      arrived_.wait(lk, [&] {
        bin = match_for(ctx, src, tag);
        if (bin != nullptr || poison_ != nullptr) return true;
        if (fs_ != nullptr) {
          ft_it = fs_->wait_interrupt(ctx, src, owner_);
          if (ft_it) return true;
        }
        return false;
      });
      --arrival_waiters_;
    }
  }
  if (poison_) {
    if (counters_ != nullptr) {
      counters_->poisoned_waits.fetch_add(1, std::memory_order_relaxed);
    }
    throw_poisoned_locked();
  }
  if (bin == nullptr && ft_it) {
    note_ft_interrupt_locked(*ft_it, ctx);
    ft::throw_interrupt(*ft_it, owner_, ctx);
  }
  commit_wildcard_locked(*bin, ctx, src, tag);
  return take_locked(*bin, src == kAnySource || tag == kAnyTag);
}

std::optional<Message> Mailbox::try_dequeue_match(int ctx, int src, int tag) {
  std::unique_lock<std::mutex> lk(m_);
  if (poison_) throw_poisoned_locked();
  Bin* bin = match_for(ctx, src, tag);
  if (bin == nullptr) {
    // Raise (rather than spin forever in a test()/iprobe loop) once the
    // failure is detectable; a queued match always wins.
    if (fs_ != nullptr) {
      if (const auto it = fs_->wait_interrupt(ctx, src, owner_)) {
        note_ft_interrupt_locked(*it, ctx);
        ft::throw_interrupt(*it, owner_, ctx);
      }
    }
    return std::nullopt;
  }
  commit_wildcard_locked(*bin, ctx, src, tag);
  return take_locked(*bin, src == kAnySource || tag == kAnyTag);
}

Status Mailbox::probe(int ctx, int src, int tag) {
  std::unique_lock<std::mutex> lk(m_);
  Bin* bin = match_for(ctx, src, tag);
  std::optional<ft::FailureState::Interrupt> ft_it;
  if (bin == nullptr && !poison_) {
    if (fs_ != nullptr) ft_it = fs_->wait_interrupt(ctx, src, owner_);
    if (!ft_it) {
      fault::ScopedWait wait(
          registry_, owner_,
          fault::WaitInfo{fault::WaitKind::kProbe, ctx, src, tag});
      ++arrival_waiters_;
      arrived_.wait(lk, [&] {
        bin = match_for(ctx, src, tag);
        if (bin != nullptr || poison_ != nullptr) return true;
        if (fs_ != nullptr) {
          ft_it = fs_->wait_interrupt(ctx, src, owner_);
          if (ft_it) return true;
        }
        return false;
      });
      --arrival_waiters_;
    }
  }
  if (poison_) {
    if (counters_ != nullptr) {
      counters_->poisoned_waits.fetch_add(1, std::memory_order_relaxed);
    }
    throw_poisoned_locked();
  }
  if (bin == nullptr && ft_it) {
    note_ft_interrupt_locked(*ft_it, ctx);
    ft::throw_interrupt(*ft_it, owner_, ctx);
  }
  // A successful probe is a wildcard observation like any other: it
  // consumes a decision index, which keeps record and replay symmetric
  // for probe-then-exact-receive idioms (e.g. the RMA progress loop).
  commit_wildcard_locked(*bin, ctx, src, tag);
  const Message& head = bin->q.front();
  return Status{.source = head.src, .tag = head.tag, .bytes = head.bytes};
}

std::optional<Status> Mailbox::try_probe(int ctx, int src, int tag) {
  std::unique_lock<std::mutex> lk(m_);
  if (poison_) throw_poisoned_locked();
  Bin* bin = match_for(ctx, src, tag);
  if (bin == nullptr) {
    if (fs_ != nullptr) {
      if (const auto it = fs_->wait_interrupt(ctx, src, owner_)) {
        note_ft_interrupt_locked(*it, ctx);
        ft::throw_interrupt(*it, owner_, ctx);
      }
    }
    return std::nullopt;
  }
  commit_wildcard_locked(*bin, ctx, src, tag);
  const Message& head = bin->q.front();
  return Status{.source = head.src, .tag = head.tag, .bytes = head.bytes};
}

void Mailbox::note_ft_interrupt_locked(const ft::FailureState::Interrupt& it,
                                       int ctx) {
  if (oracle_ == nullptr || !it.tie) return;
  if (counters_ != nullptr) {
    counters_->sched_ft_wake_ties.fetch_add(1, std::memory_order_relaxed);
  }
  oracle_->record_ft_tie(owner_, ctx);
}

void Mailbox::poison(std::shared_ptr<const fault::AbortInfo> info) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (poison_) return;  // first abort wins
    poison_ = std::move(info);
  }
  arrived_.notify_all();
  drained_.notify_all();
}

void Mailbox::ft_notify() {
  std::lock_guard<std::mutex> lk(m_);
  if (arrival_waiters_ > 0) arrived_.notify_all();
  if (drain_waiters_ > 0) drained_.notify_all();
}

void Mailbox::reset() {
  std::lock_guard<std::mutex> lk(m_);
  poison_.reset();
  // Drain every bin (destroying queued messages returns their pooled
  // payload buffers) and drop the bin directory itself: contexts are
  // allocated fresh each run, so stale keys would only pollute the table.
  bins_.clear();
  table_.assign(kInitialSlots, nullptr);
  mru_ = nullptr;  // points into bins_, which was just cleared
  last_dequeued_ = nullptr;  // likewise
  queued_ = 0;
  next_seq_ = 0;
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return queued_;
}

std::vector<Mailbox::Pending> Mailbox::pending_summary() const {
  std::vector<Pending> out;
  {
    std::lock_guard<std::mutex> lk(m_);
    for (const Bin& b : bins_) {
      if (!b.q.empty()) {
        out.push_back(Pending{b.ctx, b.src, b.tag, b.q.size()});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Pending& a, const Pending& b) {
              return std::tie(a.ctx, a.src, a.tag) <
                     std::tie(b.ctx, b.src, b.tag);
            });
  return out;
}

}  // namespace ombx::mpi
