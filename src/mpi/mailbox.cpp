#include "mpi/mailbox.hpp"

#include <algorithm>
#include <tuple>

#include "explore/explore.hpp"
#include "mpi/error.hpp"

namespace ombx::mpi {

void Mailbox::throw_poisoned_locked() {
  auto info = *poison_;
  throw_aborted(info);
}

std::uint64_t Mailbox::hash_key(int ctx, int src, int tag) noexcept {
  // SplitMix64-style finalizer over the packed triple.  Collisions are
  // resolved by comparing the bin's actual key during probing.
  std::uint64_t k = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                         ctx)) << 32) |
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                        src));
  k ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) *
       0x9e3779b97f4a7c15ULL;
  k ^= k >> 30;
  k *= 0xbf58476d1ce4e5b9ULL;
  k ^= k >> 27;
  k *= 0x94d049bb133111ebULL;
  k ^= k >> 31;
  return k;
}

Mailbox::Bin* Mailbox::find_bin(int ctx, int src, int tag) const noexcept {
  if (mru_ != nullptr && mru_->ctx == ctx && mru_->src == src &&
      mru_->tag == tag) {
    return mru_;
  }
  const std::size_t mask = table_.size() - 1;
  std::size_t i = hash_key(ctx, src, tag) & mask;
  while (Bin* b = table_[i]) {
    if (b->ctx == ctx && b->src == src && b->tag == tag) {
      mru_ = b;
      return b;
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

void Mailbox::rehash(std::size_t new_slots) {
  table_.assign(new_slots, nullptr);
  const std::size_t mask = new_slots - 1;
  for (Bin& b : bins_) {
    std::size_t i = hash_key(b.ctx, b.src, b.tag) & mask;
    while (table_[i] != nullptr) i = (i + 1) & mask;
    table_[i] = &b;
  }
}

Mailbox::Bin& Mailbox::obtain_bin(int ctx, int src, int tag) {
  if (Bin* b = find_bin(ctx, src, tag)) return *b;
  if ((bins_.size() + 1) * 2 > table_.size()) rehash(table_.size() * 2);
  bins_.push_back(Bin{ctx, src, tag, {}});
  Bin& b = bins_.back();
  const std::size_t mask = table_.size() - 1;
  std::size_t i = hash_key(ctx, src, tag) & mask;
  while (table_[i] != nullptr) i = (i + 1) & mask;
  table_[i] = &b;
  mru_ = &b;
  return b;
}

Mailbox::Bin* Mailbox::find_match(int ctx, int src, int tag) const noexcept {
  if (src != kAnySource && tag != kAnyTag) {
    Bin* b = find_bin(ctx, src, tag);
    return (b != nullptr && !b->q.empty()) ? b : nullptr;
  }
  // Wildcard: earliest arrival among candidate bin heads.  All messages
  // in a bin share its key, so a bin either fully matches the pattern or
  // not at all, and the earliest match in a matching bin is its front.
  Bin* best = nullptr;
  std::uint64_t best_seq = 0;
  for (const Bin& b : bins_) {
    if (b.q.empty() || b.ctx != ctx) continue;
    if (src != kAnySource && b.src != src) continue;
    if (tag != kAnyTag && b.tag != tag) continue;
    const std::uint64_t s = b.front_seq;  // head mirror: no deque deref
    if (best == nullptr || s < best_seq) {
      best = const_cast<Bin*>(&b);
      best_seq = s;
    }
  }
  return best;
}

void Mailbox::collect_candidates(int ctx, int src, int tag,
                                 std::vector<explore::Candidate>& out) const {
  for (const Bin& b : bins_) {
    if (b.q.empty() || b.ctx != ctx) continue;
    if (src != kAnySource && b.src != src) continue;
    if (tag != kAnyTag && b.tag != tag) continue;
    out.push_back(explore::Candidate{b.src, b.tag, b.front_seq});
  }
  std::sort(out.begin(), out.end(),
            [](const explore::Candidate& a, const explore::Candidate& b) {
              return a.seq < b.seq;
            });
}

Mailbox::Bin* Mailbox::match_for(int ctx, int src, int tag) {
  if (oracle_ == nullptr || (src != kAnySource && tag != kAnyTag)) {
    return find_match(ctx, src, tag);
  }
  if (const explore::Pin* pin = oracle_->peek_pin(owner_)) {
    const bool compatible = (src == kAnySource || src == pin->src) &&
                            (tag == kAnyTag || tag == pin->tag);
    if (compatible) {
      // Forced choice: wait for the pinned bin even when other candidates
      // are already queued (the recorded run observed this one first).
      Bin* b = find_bin(ctx, pin->src, pin->tag);
      return (b != nullptr && !b->q.empty()) ? b : nullptr;
    }
    // The pin was recorded under a different receive pattern: the prefix
    // has diverged.  Fall back to the default; the stale pin is skipped
    // (and flagged) at the next decision.
    oracle_->mark_divergence();
    return find_match(ctx, src, tag);
  }
  Bin* b = find_match(ctx, src, tag);
  if (b != nullptr && oracle_->randomize()) {
    std::vector<explore::Candidate> cands;
    collect_candidates(ctx, src, tag, cands);
    if (cands.size() > 1) {
      const explore::Candidate& pick =
          cands[oracle_->fuzz_pick(owner_, cands.size())];
      b = find_bin(ctx, pick.src, pick.tag);
    }
  }
  return b;
}

void Mailbox::commit_wildcard_slow_locked(const Bin& bin, int ctx, int src,
                                          int tag) {
  std::vector<explore::Candidate> cands;
  collect_candidates(ctx, src, tag, cands);
  // A pending pin matching the chosen bin is the one that forced it; an
  // incompatible pin can never coincide with the default choice (any
  // exact pattern field pins the bin's key to the pattern, not the pin).
  const explore::Pin* pin = oracle_->peek_pin(owner_);
  const bool forced =
      pin != nullptr && pin->src == bin.src && pin->tag == bin.tag;
  const bool divergent =
      !cands.empty() &&
      !(cands.front().src == bin.src && cands.front().tag == bin.tag);
  if (auto* c = counters_.load(std::memory_order_relaxed)) {
    obs::bump(c->sched_wildcard_decisions);
    if (divergent) obs::bump(c->sched_forced_divergences);
  }
  oracle_->record_wildcard(owner_, ctx, bin.src, bin.tag, forced, divergent,
                           std::move(cands));
}

void Mailbox::note_take(int ctx, int src, int tag, bool wildcard) noexcept {
  auto* c = counters_.load(std::memory_order_relaxed);
  // Without counters the last-take key would never be read, so skip its
  // maintenance too — the hot take path then pays only this null check.
  if (c == nullptr) return;
  // Classified in receiver program order (see obs/metrics.hpp): an MRU
  // hit is an exact dequeue with the same key as the previous successful
  // dequeue — deterministic, and path-independent (a fast pop and a
  // locked take of the same message classify identically).
  if (wildcard) {
    obs::bump(c->mailbox_wildcard_scans);
  } else if (has_last_take_ && ctx == last_take_ctx_ &&
             src == last_take_src_ && tag == last_take_tag_) {
    obs::bump(c->mailbox_mru_hits);
  } else {
    obs::bump(c->mailbox_exact_hits);
  }
  has_last_take_ = true;
  last_take_ctx_ = ctx;
  last_take_src_ = src;
  last_take_tag_ = tag;
}

Message Mailbox::take_locked(Bin& bin, bool wildcard) {
  note_take(bin.ctx, bin.src, bin.tag, wildcard);
  Message msg = std::move(bin.q.front());
  bin.q.pop_front();
  if (!bin.q.empty()) bin.front_seq = bin.q.front().seq;
  // Under m_ (single writer).  A fast pop that reads the decrement late
  // merely takes a spurious fallback — never a wrong order.
  locked_msgs_.store(locked_msgs_.load(std::memory_order_relaxed) - 1,
                     std::memory_order_release);
  if (registry_) registry_->note_progress();
  if (drain_waiters_.load(std::memory_order_relaxed) > 0) {
    drained_.notify_all();
  }
  return msg;
}

void Mailbox::insert_sorted(Bin& bin, Message&& msg) {
  // In-order arrival (the overwhelmingly common case) appends; a drain
  // that moves ring-resident messages into a bin that already received a
  // newer slow-path enqueue inserts by seq, restoring global order.
  if (bin.q.empty() || bin.q.back().seq < msg.seq) {
    if (bin.q.empty()) bin.front_seq = msg.seq;
    bin.q.push_back(std::move(msg));
    return;
  }
  const auto it = std::upper_bound(
      bin.q.begin(), bin.q.end(), msg.seq,
      [](std::uint64_t seq, const Message& m) { return seq < m.seq; });
  const bool at_front = it == bin.q.begin();
  if (at_front) bin.front_seq = msg.seq;
  bin.q.insert(it, std::move(msg));
}

Mailbox::SpscRing* Mailbox::obtain_ring(std::size_t s) {
  std::lock_guard<std::mutex> lk(m_);
  if (SpscRing* r = rings_[s].load(std::memory_order_relaxed)) return r;
  ring_store_.push_back(std::make_unique<SpscRing>());
  SpscRing* r = ring_store_.back().get();
  active_rings_.push_back(static_cast<int>(s));
  rings_[s].store(r, std::memory_order_release);
  recompute_attention_locked();  // a ring now exists: owner must drain
  return r;
}

void Mailbox::drain_rings_slow_locked() {
  // The rings_quiet_ / active_rings_.empty() gates live in the inline
  // drain_rings_locked() wrapper (header): the quiet witness — bypass
  // latched and a later pass saw the rings empty — means no producer can
  // add a ring message (the post-reservation re-check backs out), so a
  // latched (hintless-consumer) mailbox skips this call outright and
  // stays at pre-ring slow-path cost.
  // Empty-gate before the fence (a plain load on x86, vs ~a fetch_add for
  // the fence): sound because a producer *reserves* ring_msgs_ with a
  // seq_cst RMW before its push — if this load misses the reservation,
  // the single total order puts the producer's post-push waiter-count
  // read after our waiter registration, so the producer notifies and the
  // re-run of this drain sees a nonzero count.
  if (ring_msgs_.load(std::memory_order_seq_cst) == 0) {
    // With the latch set, an empty ring count is permanent (transient
    // backed-out reservations aside): any producer whose reservation this
    // load missed is ordered after it in the seq_cst total order, so its
    // post-reservation latch re-check sees the latch and backs out.
    if (ring_bypass_.load(std::memory_order_relaxed)) {
      rings_quiet_ = true;
      recompute_attention_locked();
    }
    return;
  }
  // Pair with the producers' post-push fences: a waiter that registered
  // before a producer's waiter-count read must see that producer's tail.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (const int s : active_rings_) {
    SpscRing* ring =
        rings_[static_cast<std::size_t>(s)].load(std::memory_order_relaxed);
    while (Message* head = ring->peek()) {
      Message msg = std::move(*head);
      ring->pop();
      // Add to the locked count before subtracting from the ring count so
      // the capacity gate never transiently undercounts.  locked_msgs_ is
      // only ever written under m_, so a plain load+store suffices (the
      // release pairs with the fast pop's post-peek gate read — see the
      // header's memory-order contract).
      locked_msgs_.store(
          locked_msgs_.load(std::memory_order_relaxed) + 1,
          std::memory_order_release);
      ring_msgs_.fetch_sub(1, std::memory_order_seq_cst);
      obs::bump(drained_count_);  // single writer: m_ held
      insert_sorted(obtain_bin(msg.context, msg.src, msg.tag),
                    std::move(msg));
      // Rings that only ever feed drains are pure overhead: after enough
      // consecutive drained messages with no fast pop, tell producers to
      // enqueue straight into the locked core (see ring_bypass_).
      if (++drains_since_hit_ >= kRingBypassAfterDrains) {
        // seq_cst so the latch participates in the single total order the
        // slow path's plain-stamp argument is built on.
        ring_bypass_.store(true, std::memory_order_seq_cst);
      }
    }
  }
}

void Mailbox::enqueue(Message&& msg) {
  if (fast_ok_.load(std::memory_order_acquire) &&
      !ring_bypass_.load(std::memory_order_relaxed)) {
    const auto s = static_cast<std::size_t>(
        static_cast<unsigned>(msg.src_world));
    if (s < rings_.size() && total_queued_seq_cst() < capacity_) {
      SpscRing* ring = rings_[s].load(std::memory_order_acquire);
      if (ring == nullptr) ring = obtain_ring(s);
      // Reserve capacity before publishing so the total never undercounts.
      // The post-reserve count doubles as the ring-resident depth sample
      // for the high-water mark (the producer-side ring depth would read a
      // stale head_cache and report up to the full ring size spuriously).
      const std::uint64_t depth =
          ring_msgs_.fetch_add(1, std::memory_order_seq_cst) + 1;
      // Bypass re-check AFTER the reservation: this is what lets the
      // slow path stamp next_seq_ without an RMW.  A slow enqueue that
      // holds m_, sees the bypass latched (it cannot unlatch while m_ is
      // held) and sees ring_msgs_ == 0 knows every fast producer either
      // reserved earlier (contradiction — the count would be nonzero) or
      // will land here, observe the latch, and give the reservation back
      // without ever touching next_seq_.
      if (!ring_bypass_.load(std::memory_order_seq_cst) &&
          (msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed),
           ring->try_push(std::move(msg)))) {
        ring->pushed.store(
            ring->pushed.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);  // single writer: this producer
        if (depth > ring_depth_hwm_.load(std::memory_order_relaxed)) {
          std::uint64_t hwm =
              ring_depth_hwm_.load(std::memory_order_relaxed);
          while (depth > hwm &&
                 !ring_depth_hwm_.compare_exchange_weak(
                     hwm, depth, std::memory_order_relaxed)) {
          }
        }
        if (registry_ != nullptr) registry_->note_progress();
        // Dekker handshake with blocked receivers: publish (tail store),
        // fence, then read the waiter count — the waiter increments the
        // count, fences, then re-scans the rings, so at least one side
        // sees the other and no wakeup is lost.  Skipped entirely when
        // this producer IS the owner context (self-send): the owner
        // cannot simultaneously be parked in a receive, so the waiter
        // count it would read is necessarily zero.  exec_id() is
        // fiber-aware — two ranks sharing a worker thread still compare
        // unequal, so the skip never misfires under the fiber scheduler.
        if (owner_exec_.load(std::memory_order_relaxed) !=
            sched::exec_id()) {
          std::atomic_thread_fence(std::memory_order_seq_cst);
          if (arrival_waiters_.load(std::memory_order_seq_cst) > 0) {
            { std::lock_guard<std::mutex> lk(m_); }
            arrived_.notify_all();
          }
        }
        return;
      }
      // Ring full (or the bypass latched mid-flight): give the
      // reservation back and take the locked path.  A burnt sequence
      // number is harmless — only relative order matters, and the slow
      // path restamps.
      ring_msgs_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  std::unique_lock<std::mutex> lk(m_);
  obs::bump(slow_enqueues_);  // single writer: m_ held
  std::optional<ft::FailureState::Interrupt> ft_it;
  if (total_queued_seq_cst() >= capacity_ && !poison_) {
    // The sender (not the owner) is the one blocked here.  Free capacity
    // wins over an FT interruption: the owner's pre-death drains
    // happen-before its death mark, so the outcome is deterministic.
    // Senders never drain rings — only the owner consumes them — so this
    // wait relies on the owner's pops/takes to free space.
    fault::ScopedWait wait(
        registry_, msg.src_world,
        fault::WaitInfo{fault::WaitKind::kSendCapacity, msg.context, owner_,
                        msg.tag});
    drain_waiters_.fetch_add(1, std::memory_order_seq_cst);
    drained_.wait(lk, [&] {
      if (total_queued_seq_cst() < capacity_ || poison_ != nullptr) {
        return true;
      }
      if (fs_ != nullptr) {
        ft_it = fs_->enqueue_interrupt(owner_);
        if (ft_it) return true;
      }
      return false;
    });
    drain_waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
  if (poison_) throw_poisoned_locked();
  if (total_queued_seq_cst() >= capacity_ && ft_it) {
    ft::throw_interrupt(*ft_it, msg.src_world, msg.context);
  }
  // Stamp.  With the bypass latched (it cannot unlatch while m_ is held)
  // and no ring reservation in flight, no fast producer can touch
  // next_seq_ — any newcomer re-checks the latch after reserving and
  // backs out — so the stamp is a plain load+store, matching the
  // pre-fast-path cost of this (hintless/wildcard-consumer) regime.
  // rings_quiet_ (m_-guarded) caches exactly that state, skipping both
  // seq_cst probes on the steady latched path.
  if (rings_quiet_ ||
      (ring_bypass_.load(std::memory_order_seq_cst) &&
       ring_msgs_.load(std::memory_order_seq_cst) == 0)) {
    msg.seq = next_seq_.load(std::memory_order_relaxed);
    next_seq_.store(msg.seq + 1, std::memory_order_relaxed);
  } else {
    msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  insert_sorted(obtain_bin(msg.context, msg.src, msg.tag), std::move(msg));
  // Written only under m_; the release store is what the fast pop's
  // post-peek gate re-check observes (via the ring push/peek edge when
  // this sender later pushes, or via m_ on any locked-path consumer).
  locked_msgs_.store(locked_msgs_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_release);
  if (registry_) registry_->note_progress();
  if (arrival_waiters_.load(std::memory_order_relaxed) > 0) {
    arrived_.notify_all();
  }
}

void Mailbox::capture_owner_exec() noexcept {
  // Remember the consumer's execution context (fiber or thread) so
  // self-send enqueues can skip the Dekker fence.  Compare-then-store
  // avoids dirtying the line on every receive; under the single-consumer
  // contract only one context ever reaches here, so the plain store is
  // race-free.
  const auto me = sched::exec_id();
  if (owner_exec_.load(std::memory_order_relaxed) != me) {
    owner_exec_.store(me, std::memory_order_relaxed);
  }
}

std::optional<Message> Mailbox::try_fast_pop(int ctx, int src, int tag,
                                             int src_world_hint) {
  // Hintless and wildcard receives can never pop a ring; bail before the
  // owner capture so the latched (slow-path-only) regime pays nothing
  // here but this compare.  Skipping the capture is safe: it only feeds
  // the producer-side Dekker *skip*, so an uncaptured owner merely makes
  // self-send ring pushes take the full (correct) fence + waiter check.
  if (src_world_hint < 0 || src == kAnySource || tag == kAnyTag) {
    return std::nullopt;
  }
  capture_owner_exec();
  if (!fast_ok_.load(std::memory_order_acquire)) return std::nullopt;
  // A hinted exact receive is exactly the consumer the rings exist for —
  // but re-arming costs the next latch episode another 128-message drain
  // detour, so it is hysteretic: only kRearmHintedPops hinted exact
  // receives while latched flip the latch off (each missing once on the
  // slow path).  A stray hinted probe inside hintless traffic stays
  // latched; a genuine traffic-shape change re-arms after a short run.
  // The store MUST happen under m_: a slow enqueue that observes the
  // latch while holding the lock relies on it staying latched for the
  // whole critical section (that is what makes its plain next_seq_ stamp
  // exclusive).  Cold path — once per traffic-shape change.
  if (ring_bypass_.load(std::memory_order_relaxed)) {
    if (++hinted_since_latch_ < kRearmHintedPops) return std::nullopt;
    std::lock_guard<std::mutex> lk(m_);
    drains_since_hit_ = 0;
    hinted_since_latch_ = 0;
    rings_quiet_ = false;
    recompute_attention_locked();
    ring_bypass_.store(false, std::memory_order_seq_cst);
  }
  const auto s = static_cast<std::size_t>(src_world_hint);
  if (s >= rings_.size()) return std::nullopt;
  SpscRing* ring = rings_[s].load(std::memory_order_acquire);
  if (ring == nullptr) return std::nullopt;
  Message* head = ring->peek();
  if (head == nullptr || head->context != ctx || head->src != src ||
      head->tag != tag) {
    return std::nullopt;
  }
  // Gate: the locked core must be empty.  Bin messages with this key are
  // either drained ring prefixes (older than the ring head — must win) or
  // ring-full overflow spills from this same sender, which are *older*
  // than any ring message pushed after them.  The gate is read AFTER the
  // peek, deliberately: the sender's overflow insert (locked_msgs_
  // increment, under m_) is sequenced before its next ring push, the push
  // synchronizes-with our acquire peek, so a head pushed after the spill
  // guarantees this load sees the nonzero count.  Read before the peek
  // the gate could miss the spill (TOCTOU) and pop a newer message first.
  if (locked_msgs_.load(std::memory_order_acquire) != 0) return std::nullopt;
  Message msg = std::move(*head);
  ring->pop();
  // No explicit fence before the Dekker read below: the seq_cst fetch_sub
  // is itself the barrier (see the header's memory-order contract).
  ring_msgs_.fetch_sub(1, std::memory_order_seq_cst);
  obs::bump(fast_hits_);  // single writer: owner thread
  drains_since_hit_ = 0;
  note_take(ctx, src, tag, /*wildcard=*/false);
  if (registry_ != nullptr) registry_->note_progress();
  // Dekker handshake with capacity-blocked senders (mirror of enqueue's).
  if (drain_waiters_.load(std::memory_order_seq_cst) > 0) {
    { std::lock_guard<std::mutex> lk(m_); }
    drained_.notify_all();
  }
  return msg;
}

Message Mailbox::dequeue_match(int ctx, int src, int tag,
                               int src_world_hint) {
  // Gate the fast-pop attempt here (not just inside try_fast_pop): a
  // hintless or wildcard receive would only pay an out-of-line call that
  // returns an empty optional<Message> through a hidden pointer — real
  // cost on the latched slow-path regime this call can never help.
  if (src_world_hint >= 0 && src != kAnySource && tag != kAnyTag) {
    if (auto fast = try_fast_pop(ctx, src, tag, src_world_hint)) {
      return std::move(*fast);
    }
    obs::bump(fast_fallbacks_);  // single writer: owner thread
  }
  std::unique_lock<std::mutex> lk(m_);
  drain_rings_locked();
  Bin* bin = match_for(ctx, src, tag);
  std::optional<ft::FailureState::Interrupt> ft_it;
  if (bin == nullptr && !poison_) {
    // A queued match wins over an FT interruption (checked first, both
    // here and in the predicate): the peer's sends happen-before its own
    // death or exit mark, so "drain, then raise" is deterministic.
    if (fs_ != nullptr) ft_it = fs_->wait_interrupt(ctx, src, owner_);
    if (!ft_it) {
      fault::ScopedWait wait(
          registry_, owner_,
          fault::WaitInfo{fault::WaitKind::kRecv, ctx, src, tag});
      arrival_waiters_.fetch_add(1, std::memory_order_seq_cst);
      arrived_.wait(lk, [&] {
        drain_rings_locked();
        bin = match_for(ctx, src, tag);
        if (bin != nullptr || poison_ != nullptr) return true;
        if (fs_ != nullptr) {
          ft_it = fs_->wait_interrupt(ctx, src, owner_);
          if (ft_it) return true;
        }
        return false;
      });
      arrival_waiters_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }
  if (poison_) {
    if (auto* c = counters_.load(std::memory_order_relaxed)) {
      obs::bump(c->poisoned_waits);
    }
    throw_poisoned_locked();
  }
  if (bin == nullptr && ft_it) {
    note_ft_interrupt_locked(*ft_it, ctx);
    ft::throw_interrupt(*ft_it, owner_, ctx);
  }
  commit_wildcard_locked(*bin, ctx, src, tag);
  return take_locked(*bin, src == kAnySource || tag == kAnyTag);
}

std::optional<Message> Mailbox::try_dequeue_match(int ctx, int src, int tag,
                                                  int src_world_hint) {
  // Same hinted-only gate as dequeue_match (see the comment there).
  if (src_world_hint >= 0 && src != kAnySource && tag != kAnyTag) {
    if (auto fast = try_fast_pop(ctx, src, tag, src_world_hint)) {
      return fast;
    }
  }
  std::unique_lock<std::mutex> lk(m_);
  entry_checks_locked();
  Bin* bin = match_for(ctx, src, tag);
  if (bin == nullptr) {
    // Raise (rather than spin forever in a test()/iprobe loop) once the
    // failure is detectable; a queued match always wins.
    if (fs_ != nullptr) {
      if (const auto it = fs_->wait_interrupt(ctx, src, owner_)) {
        note_ft_interrupt_locked(*it, ctx);
        ft::throw_interrupt(*it, owner_, ctx);
      }
    }
    return std::nullopt;
  }
  commit_wildcard_locked(*bin, ctx, src, tag);
  return take_locked(*bin, src == kAnySource || tag == kAnyTag);
}

Status Mailbox::probe(int ctx, int src, int tag) {
  capture_owner_exec();
  std::unique_lock<std::mutex> lk(m_);
  drain_rings_locked();
  Bin* bin = match_for(ctx, src, tag);
  std::optional<ft::FailureState::Interrupt> ft_it;
  if (bin == nullptr && !poison_) {
    if (fs_ != nullptr) ft_it = fs_->wait_interrupt(ctx, src, owner_);
    if (!ft_it) {
      fault::ScopedWait wait(
          registry_, owner_,
          fault::WaitInfo{fault::WaitKind::kProbe, ctx, src, tag});
      arrival_waiters_.fetch_add(1, std::memory_order_seq_cst);
      arrived_.wait(lk, [&] {
        drain_rings_locked();
        bin = match_for(ctx, src, tag);
        if (bin != nullptr || poison_ != nullptr) return true;
        if (fs_ != nullptr) {
          ft_it = fs_->wait_interrupt(ctx, src, owner_);
          if (ft_it) return true;
        }
        return false;
      });
      arrival_waiters_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }
  if (poison_) {
    if (auto* c = counters_.load(std::memory_order_relaxed)) {
      obs::bump(c->poisoned_waits);
    }
    throw_poisoned_locked();
  }
  if (bin == nullptr && ft_it) {
    note_ft_interrupt_locked(*ft_it, ctx);
    ft::throw_interrupt(*ft_it, owner_, ctx);
  }
  // A successful probe is a wildcard observation like any other: it
  // consumes a decision index, which keeps record and replay symmetric
  // for probe-then-exact-receive idioms (e.g. the RMA progress loop).
  commit_wildcard_locked(*bin, ctx, src, tag);
  const Message& head = bin->q.front();
  return Status{.source = head.src, .tag = head.tag, .bytes = head.bytes};
}

std::optional<Status> Mailbox::try_probe(int ctx, int src, int tag) {
  capture_owner_exec();
  std::unique_lock<std::mutex> lk(m_);
  entry_checks_locked();
  Bin* bin = match_for(ctx, src, tag);
  if (bin == nullptr) {
    if (fs_ != nullptr) {
      if (const auto it = fs_->wait_interrupt(ctx, src, owner_)) {
        note_ft_interrupt_locked(*it, ctx);
        ft::throw_interrupt(*it, owner_, ctx);
      }
    }
    return std::nullopt;
  }
  commit_wildcard_locked(*bin, ctx, src, tag);
  const Message& head = bin->q.front();
  return Status{.source = head.src, .tag = head.tag, .bytes = head.bytes};
}

void Mailbox::note_ft_interrupt_locked(const ft::FailureState::Interrupt& it,
                                       int ctx) {
  if (oracle_ == nullptr || !it.tie) return;
  if (auto* c = counters_.load(std::memory_order_relaxed)) {
    obs::bump(c->sched_ft_wake_ties);
  }
  oracle_->record_ft_tie(owner_, ctx);
}

void Mailbox::poison(std::shared_ptr<const fault::AbortInfo> info) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (poison_) return;  // first abort wins
    poison_ = std::move(info);
    recompute_fast_ok_locked();  // pin the slow path
    recompute_attention_locked();
  }
  arrived_.notify_all();
  drained_.notify_all();
}

void Mailbox::ft_notify() {
  std::lock_guard<std::mutex> lk(m_);
  if (arrival_waiters_.load(std::memory_order_relaxed) > 0) {
    arrived_.notify_all();
  }
  if (drain_waiters_.load(std::memory_order_relaxed) > 0) {
    drained_.notify_all();
  }
}

void Mailbox::reset() {
  std::lock_guard<std::mutex> lk(m_);
  poison_.reset();
  // Destroy every ring-resident message (returning pooled payload buffers
  // to their pool).  The rings themselves stay allocated — they are keyed
  // by src world rank, which does not change across runs.
  for (const int s : active_rings_) {
    SpscRing* ring =
        rings_[static_cast<std::size_t>(s)].load(std::memory_order_relaxed);
    while (Message* head = ring->peek()) {
      Message dead = std::move(*head);
      ring->pop();
    }
  }
  // Drain every bin (destroying queued messages returns their pooled
  // payload buffers) and drop the bin directory itself: contexts are
  // allocated fresh each run, so stale keys would only pollute the table.
  bins_.clear();
  table_.assign(kInitialSlots, nullptr);
  mru_ = nullptr;  // points into bins_, which was just cleared
  has_last_take_ = false;
  ring_msgs_.store(0, std::memory_order_relaxed);
  locked_msgs_.store(0, std::memory_order_relaxed);
  next_seq_.store(0, std::memory_order_relaxed);
  ring_bypass_.store(false, std::memory_order_seq_cst);
  drains_since_hit_ = 0;
  hinted_since_latch_ = 0;
  rings_quiet_ = false;
  recompute_fast_ok_locked();  // un-pins poison; fs_/oracle_ persist
  recompute_attention_locked();
}

std::vector<Mailbox::Pending> Mailbox::pending_summary() {
  std::vector<Pending> out;
  {
    std::lock_guard<std::mutex> lk(m_);
    drain_rings_locked();
    for (const Bin& b : bins_) {
      if (!b.q.empty()) {
        out.push_back(Pending{b.ctx, b.src, b.tag, b.q.size()});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Pending& a, const Pending& b) {
              return std::tie(a.ctx, a.src, a.tag) <
                     std::tie(b.ctx, b.src, b.tag);
            });
  return out;
}

}  // namespace ombx::mpi
