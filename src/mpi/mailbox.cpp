#include "mpi/mailbox.hpp"

#include "mpi/error.hpp"

namespace ombx::mpi {

void Mailbox::throw_poisoned_locked() {
  auto info = *poison_;
  throw_aborted(info);
}

void Mailbox::enqueue(Message&& msg) {
  std::unique_lock<std::mutex> lk(m_);
  if (q_.size() >= capacity_ && !poison_) {
    // The sender (not the owner) is the one blocked here.
    fault::ScopedWait wait(
        registry_, msg.src_world,
        fault::WaitInfo{fault::WaitKind::kSendCapacity, msg.context, owner_,
                        msg.tag});
    drained_.wait(lk, [&] {
      return q_.size() < capacity_ || poison_ != nullptr;
    });
  }
  if (poison_) throw_poisoned_locked();
  q_.push_back(std::move(msg));
  if (registry_) registry_->note_progress();
  arrived_.notify_all();
}

std::deque<Message>::iterator Mailbox::find_locked(int ctx, int src,
                                                   int tag) {
  for (auto it = q_.begin(); it != q_.end(); ++it) {
    if (it->matches(ctx, src, tag)) return it;
  }
  return q_.end();
}

Message Mailbox::dequeue_match(int ctx, int src, int tag) {
  std::unique_lock<std::mutex> lk(m_);
  auto it = find_locked(ctx, src, tag);
  if (it == q_.end() && !poison_) {
    fault::ScopedWait wait(
        registry_, owner_,
        fault::WaitInfo{fault::WaitKind::kRecv, ctx, src, tag});
    arrived_.wait(lk, [&] {
      it = find_locked(ctx, src, tag);
      return it != q_.end() || poison_ != nullptr;
    });
  }
  if (poison_) throw_poisoned_locked();
  Message msg = std::move(*it);
  q_.erase(it);
  if (registry_) registry_->note_progress();
  drained_.notify_all();
  return msg;
}

std::optional<Message> Mailbox::try_dequeue_match(int ctx, int src, int tag) {
  std::unique_lock<std::mutex> lk(m_);
  if (poison_) throw_poisoned_locked();
  auto it = find_locked(ctx, src, tag);
  if (it == q_.end()) return std::nullopt;
  Message msg = std::move(*it);
  q_.erase(it);
  if (registry_) registry_->note_progress();
  drained_.notify_all();
  return msg;
}

Status Mailbox::probe(int ctx, int src, int tag) {
  std::unique_lock<std::mutex> lk(m_);
  auto it = find_locked(ctx, src, tag);
  if (it == q_.end() && !poison_) {
    fault::ScopedWait wait(
        registry_, owner_,
        fault::WaitInfo{fault::WaitKind::kProbe, ctx, src, tag});
    arrived_.wait(lk, [&] {
      it = find_locked(ctx, src, tag);
      return it != q_.end() || poison_ != nullptr;
    });
  }
  if (poison_) throw_poisoned_locked();
  return Status{.source = it->src, .tag = it->tag, .bytes = it->bytes};
}

std::optional<Status> Mailbox::try_probe(int ctx, int src, int tag) {
  std::unique_lock<std::mutex> lk(m_);
  if (poison_) throw_poisoned_locked();
  auto it = find_locked(ctx, src, tag);
  if (it == q_.end()) return std::nullopt;
  return Status{.source = it->src, .tag = it->tag, .bytes = it->bytes};
}

void Mailbox::poison(std::shared_ptr<const fault::AbortInfo> info) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (poison_) return;  // first abort wins
    poison_ = std::move(info);
  }
  arrived_.notify_all();
  drained_.notify_all();
}

void Mailbox::reset() {
  std::lock_guard<std::mutex> lk(m_);
  poison_.reset();
  q_.clear();
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return q_.size();
}

}  // namespace ombx::mpi
