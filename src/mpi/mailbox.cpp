#include "mpi/mailbox.hpp"

namespace ombx::mpi {

void Mailbox::enqueue(Message&& msg) {
  std::unique_lock<std::mutex> lk(m_);
  drained_.wait(lk, [&] { return q_.size() < capacity_; });
  q_.push_back(std::move(msg));
  arrived_.notify_all();
}

std::deque<Message>::iterator Mailbox::find_locked(int ctx, int src,
                                                   int tag) {
  for (auto it = q_.begin(); it != q_.end(); ++it) {
    if (it->matches(ctx, src, tag)) return it;
  }
  return q_.end();
}

Message Mailbox::dequeue_match(int ctx, int src, int tag) {
  std::unique_lock<std::mutex> lk(m_);
  auto it = q_.end();
  arrived_.wait(lk, [&] {
    it = find_locked(ctx, src, tag);
    return it != q_.end();
  });
  Message msg = std::move(*it);
  q_.erase(it);
  drained_.notify_all();
  return msg;
}

std::optional<Message> Mailbox::try_dequeue_match(int ctx, int src, int tag) {
  std::lock_guard<std::mutex> lk(m_);
  auto it = find_locked(ctx, src, tag);
  if (it == q_.end()) return std::nullopt;
  Message msg = std::move(*it);
  q_.erase(it);
  drained_.notify_all();
  return msg;
}

Status Mailbox::probe(int ctx, int src, int tag) {
  std::unique_lock<std::mutex> lk(m_);
  auto it = q_.end();
  arrived_.wait(lk, [&] {
    it = find_locked(ctx, src, tag);
    return it != q_.end();
  });
  return Status{.source = it->src, .tag = it->tag, .bytes = it->bytes};
}

std::optional<Status> Mailbox::try_probe(int ctx, int src, int tag) {
  std::lock_guard<std::mutex> lk(m_);
  auto it = find_locked(ctx, src, tag);
  if (it == q_.end()) return std::nullopt;
  return Status{.source = it->src, .tag = it->tag, .bytes = it->bytes};
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return q_.size();
}

}  // namespace ombx::mpi
