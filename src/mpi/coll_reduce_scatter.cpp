#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"

namespace ombx::mpi {

namespace {

using detail::kTagReduceScatter;
using detail::Scratch;
using detail::slice;

/// Pairwise exchange (any communicator size, commutative op): rank r sends
/// each peer p its contribution to p's block and folds what it receives
/// into its own block.  n-1 steps, each moving one block.
void reduce_scatter_pairwise(Comm& c, ConstView send, MutView recv,
                             Datatype dt, Op op) {
  const int n = c.size();
  const int rank = c.rank();
  const std::size_t b = recv.bytes;
  const bool real = detail::real_payload(c, send);

  detail::copy_bytes(recv, slice(send, static_cast<std::size_t>(rank) * b, b),
                     b);
  Scratch tmp(b, real, send.space);
  for (int s = 1; s < n; ++s) {
    const int dst = (rank + s) % n;
    const int src = (rank - s + n) % n;
    (void)c.sendrecv(slice(send, static_cast<std::size_t>(dst) * b, b), dst,
                     kTagReduceScatter, tmp.mview(), src,
                     kTagReduceScatter);
    detail::combine(c, dt, op, recv, tmp.cview(), b);
  }
}

/// Recursive halving (power-of-two sizes, commutative op): each step
/// exchanges the half of the active window the partner owns, folding the
/// received half locally.  log2(n) steps, bandwidth-optimal.
void reduce_scatter_recursive_halving(Comm& c, ConstView send, MutView recv,
                                      Datatype dt, Op op) {
  const int n = c.size();
  const int rank = c.rank();
  const std::size_t b = recv.bytes;
  const bool real = detail::real_payload(c, send);

  // Working copy of all n blocks.
  Scratch acc(static_cast<std::size_t>(n) * b, real, send.space);
  detail::copy_bytes(acc.mview(), send,
                     static_cast<std::size_t>(n) * b);
  Scratch tmp(static_cast<std::size_t>(n / 2) * b, real, send.space);

  int lo = 0;
  int hi = n;  // active block window [lo, hi)
  for (int mask = n / 2; mask >= 1; mask >>= 1) {
    const int partner = rank ^ mask;
    const int mid = lo + (hi - lo) / 2;
    // The half of the window that the partner's side owns gets sent.
    int keep_lo;
    int keep_hi;
    int send_lo;
    int send_hi;
    if (rank < partner) {
      keep_lo = lo;
      keep_hi = mid;
      send_lo = mid;
      send_hi = hi;
    } else {
      keep_lo = mid;
      keep_hi = hi;
      send_lo = lo;
      send_hi = mid;
    }
    const std::size_t send_off = static_cast<std::size_t>(send_lo) * b;
    const std::size_t send_len =
        static_cast<std::size_t>(send_hi - send_lo) * b;
    const std::size_t keep_off = static_cast<std::size_t>(keep_lo) * b;
    const std::size_t keep_len =
        static_cast<std::size_t>(keep_hi - keep_lo) * b;
    (void)c.sendrecv(acc.cview(send_off, send_len), partner,
                     kTagReduceScatter, tmp.mview(0, keep_len), partner,
                     kTagReduceScatter);
    detail::combine(c, dt, op, acc.mview(keep_off, keep_len),
                    tmp.cview(0, keep_len), keep_len);
    lo = keep_lo;
    hi = keep_hi;
  }
  OMBX_REQUIRE(hi - lo == 1 && lo == rank,
               "recursive halving did not converge on the owner block");
  detail::copy_bytes(recv, acc.cview(static_cast<std::size_t>(lo) * b, b),
                     b);
}

}  // namespace

void reduce_scatter(Comm& c, ConstView send, MutView recv, Datatype dt,
                    Op op, net::ReduceScatterAlgo algo) {
  const std::size_t n = static_cast<std::size_t>(c.size());
  OMBX_REQUIRE(send.bytes >= n * recv.bytes,
               "reduce_scatter send buffer too small");
  if (c.size() == 1) {
    detail::copy_bytes(recv, send, recv.bytes);
    return;
  }
  if (algo == net::ReduceScatterAlgo::kAuto) {
    algo = c.net().tuning().reduce_scatter;
  }
  if (algo == net::ReduceScatterAlgo::kAuto) {
    algo = detail::is_pow2(c.size())
               ? net::ReduceScatterAlgo::kRecursiveHalving
               : net::ReduceScatterAlgo::kPairwise;
  }
  detail::CollSpan span(
      c, "reduce_scatter", net::to_string(algo), send.bytes,
      detail::CollMeta{.bytes = static_cast<long long>(send.bytes),
                       .datatype = static_cast<int>(dt),
                       .op = static_cast<int>(op)});
  switch (algo) {
    case net::ReduceScatterAlgo::kRecursiveHalving:
      OMBX_REQUIRE(detail::is_pow2(c.size()),
                   "recursive halving needs a power-of-two comm");
      reduce_scatter_recursive_halving(c, send, recv, dt, op);
      break;
    case net::ReduceScatterAlgo::kAuto:
    case net::ReduceScatterAlgo::kPairwise:
      reduce_scatter_pairwise(c, send, recv, dt, op);
      break;
  }
}

}  // namespace ombx::mpi
