// Cartesian process topologies (MPI_Cart_create / MPI_Dims_create /
// MPI_Cart_shift analogues) — what stencil codes use to find their halo
// neighbours.  See examples/stencil_halo.cpp for the canonical use.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "mpi/comm.hpp"

namespace ombx::mpi {

/// Factor `nranks` into `ndims` balanced dimensions (MPI_Dims_create).
[[nodiscard]] std::vector<int> dims_create(int nranks, int ndims);

class CartComm {
 public:
  /// Collective over `comm`: lay its size() ranks onto the given grid
  /// (row-major, as MPI does).  The product of dims must equal size().
  CartComm(const Comm& comm, std::vector<int> dims,
           std::vector<bool> periodic);

  [[nodiscard]] int ndims() const noexcept {
    return static_cast<int>(dims_.size());
  }
  [[nodiscard]] const std::vector<int>& dims() const noexcept {
    return dims_;
  }
  [[nodiscard]] const Comm& comm() const noexcept { return *comm_; }
  [[nodiscard]] int rank() const noexcept { return comm_->rank(); }

  /// Grid coordinates of a rank (MPI_Cart_coords).
  [[nodiscard]] std::vector<int> coords(int rank) const;
  /// Rank at grid coordinates (MPI_Cart_rank); periodic dims wrap,
  /// non-periodic out-of-range coordinates return kNull.
  [[nodiscard]] int rank_at(const std::vector<int>& coords) const;

  /// Neighbour pair along `dim` displaced by `disp`
  /// (MPI_Cart_shift): {source, destination}; kNull at open boundaries.
  struct Shift {
    int source = kNull;
    int dest = kNull;
  };
  [[nodiscard]] Shift shift(int dim, int disp) const;

  static constexpr int kNull = -1;  ///< MPI_PROC_NULL

  /// Sendrecv that treats kNull like MPI_PROC_NULL (no-op on that side).
  void neighbor_sendrecv(ConstView send, int dest, MutView recv, int source,
                         int tag) const;

 private:
  std::unique_ptr<Comm> comm_;
  std::vector<int> dims_;
  std::vector<bool> periodic_;
  std::vector<int> strides_;  ///< row-major strides
};

}  // namespace ombx::mpi
