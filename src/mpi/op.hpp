// Reduction operations.
//
// apply() performs the real arithmetic (so tests can validate collective
// results bit-exactly) and returns the number of scalar operations, which
// the caller prices into virtual time via the cluster's ComputeModel.
#pragma once

#include <cstddef>
#include <string>

#include "mpi/datatype.hpp"

namespace ombx::mpi {

enum class Op {
  kSum,
  kProd,
  kMin,
  kMax,
  kLand,  ///< logical and
  kLor,   ///< logical or
  kBand,  ///< bitwise and
  kBor,   ///< bitwise or
};

[[nodiscard]] std::string to_string(Op op);

/// inout[i] = inout[i] OP in[i] for i in [0, count).
/// `inout`/`in` may be null (synthetic payload mode): no arithmetic is done
/// but the returned op count is identical, so virtual time is unaffected.
/// Returns the number of scalar combine operations performed (== count).
std::size_t apply(Op op, Datatype dt, void* inout, const void* in,
                  std::size_t count);

/// True for ops that are defined on floating-point types.
[[nodiscard]] bool valid_for(Op op, Datatype dt) noexcept;

}  // namespace ombx::mpi
