// Vector-variant collectives (Gatherv/Scatterv/Allgatherv/Alltoallv).
//
// OMB's vector benchmarks exercise the v-variants with uniform counts; the
// implementations below support fully general per-rank counts/displs using
// linear (gatherv/scatterv/alltoallv) and ring (allgatherv) algorithms —
// matching what MPICH uses by default for v-collectives, whose irregular
// blocks defeat most clever schedules.
#include <vector>

#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"
#include "mpi/request.hpp"

namespace ombx::mpi {

namespace {
using detail::kTagVector;
using detail::slice;

void check_table(const Comm& c, std::span<const std::size_t> counts,
                 std::span<const std::size_t> displs, std::size_t bufbytes,
                 const char* what) {
  OMBX_REQUIRE(counts.size() == static_cast<std::size_t>(c.size()) &&
                   displs.size() == counts.size(),
               std::string(what) + ": counts/displs size != comm size");
  for (std::size_t r = 0; r < counts.size(); ++r) {
    OMBX_REQUIRE(displs[r] + counts[r] <= bufbytes,
                 std::string(what) + ": block exceeds buffer");
  }
}
}  // namespace

void gatherv(Comm& c, ConstView send, MutView recv,
             std::span<const std::size_t> counts,
             std::span<const std::size_t> displs, int root) {
  OMBX_REQUIRE(root >= 0 && root < c.size(), "gatherv root out of range");
  detail::CollSpan span(c, "gatherv", "linear", send.bytes,
                        detail::CollMeta{.root = root});
  if (c.rank() != root) {
    c.send(send, root, kTagVector);
    return;
  }
  check_table(c, counts, displs, recv.bytes, "gatherv");
  OMBX_REQUIRE(send.bytes == counts[static_cast<std::size_t>(root)],
               "gatherv: root contribution size mismatch");
  detail::copy_bytes(
      slice(recv, displs[static_cast<std::size_t>(root)], send.bytes), send,
      send.bytes);
  for (int r = 0; r < c.size(); ++r) {
    if (r == root) continue;
    const auto ur = static_cast<std::size_t>(r);
    (void)c.recv(slice(recv, displs[ur], counts[ur]), r, kTagVector);
  }
}

void scatterv(Comm& c, ConstView send, std::span<const std::size_t> counts,
              std::span<const std::size_t> displs, MutView recv, int root) {
  OMBX_REQUIRE(root >= 0 && root < c.size(), "scatterv root out of range");
  detail::CollSpan span(c, "scatterv", "linear", recv.bytes,
                        detail::CollMeta{.root = root});
  if (c.rank() != root) {
    (void)c.recv(recv, root, kTagVector);
    return;
  }
  check_table(c, counts, displs, send.bytes, "scatterv");
  for (int r = 0; r < c.size(); ++r) {
    if (r == root) continue;
    const auto ur = static_cast<std::size_t>(r);
    c.send(slice(send, displs[ur], counts[ur]), r, kTagVector);
  }
  const auto uroot = static_cast<std::size_t>(root);
  OMBX_REQUIRE(recv.bytes >= counts[uroot],
               "scatterv: recv buffer too small for own block");
  detail::copy_bytes(recv, slice(send, displs[uroot], counts[uroot]),
                     counts[uroot]);
}

void allgatherv(Comm& c, ConstView send, MutView recv,
                std::span<const std::size_t> counts,
                std::span<const std::size_t> displs) {
  check_table(c, counts, displs, recv.bytes, "allgatherv");
  detail::CollSpan span(c, "allgatherv", "ring", send.bytes);
  const int n = c.size();
  const int rank = c.rank();
  const auto urank = static_cast<std::size_t>(rank);
  OMBX_REQUIRE(send.bytes == counts[urank],
               "allgatherv: contribution size mismatch");
  detail::copy_bytes(slice(recv, displs[urank], counts[urank]), send,
                     send.bytes);
  if (n == 1) return;

  // Ring: circulate each rank's block n-1 steps around the ring.
  const int right = (rank + 1) % n;
  const int left = (rank - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    const auto send_idx = static_cast<std::size_t>((rank - s + n) % n);
    const auto recv_idx = static_cast<std::size_t>((rank - s - 1 + n) % n);
    (void)c.sendrecv(
        slice(detail::as_const(recv), displs[send_idx], counts[send_idx]),
        right, kTagVector, slice(recv, displs[recv_idx], counts[recv_idx]),
        left, kTagVector);
  }
}

void alltoallv(Comm& c, ConstView send,
               std::span<const std::size_t> scounts,
               std::span<const std::size_t> sdispls, MutView recv,
               std::span<const std::size_t> rcounts,
               std::span<const std::size_t> rdispls) {
  check_table(c, scounts, sdispls, send.bytes, "alltoallv(send)");
  check_table(c, rcounts, rdispls, recv.bytes, "alltoallv(recv)");
  detail::CollSpan span(c, "alltoallv", "nonblocking", send.bytes);
  const int n = c.size();
  const int rank = c.rank();
  const auto urank = static_cast<std::size_t>(rank);

  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(2 * (n - 1)));
  for (int i = 1; i < n; ++i) {
    const auto src = static_cast<std::size_t>((rank - i + n) % n);
    reqs.push_back(c.irecv(slice(recv, rdispls[src], rcounts[src]),
                           static_cast<int>(src), kTagVector));
  }
  for (int i = 1; i < n; ++i) {
    const auto dst = static_cast<std::size_t>((rank + i) % n);
    reqs.push_back(c.isend(slice(send, sdispls[dst], scounts[dst]),
                           static_cast<int>(dst), kTagVector));
  }
  OMBX_REQUIRE(scounts[urank] == rcounts[urank],
               "alltoallv: self block size mismatch");
  detail::copy_bytes(slice(recv, rdispls[urank], rcounts[urank]),
                     slice(send, sdispls[urank], scounts[urank]),
                     scounts[urank]);
  (void)Request::wait_all(reqs);
}

}  // namespace ombx::mpi
