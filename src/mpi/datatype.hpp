// Predefined datatypes, mirroring the MPI basic types OMB exercises.
#pragma once

#include <cstddef>
#include <string>

namespace ombx::mpi {

enum class Datatype {
  kByte,
  kChar,
  kInt32,
  kInt64,
  kUint64,
  kFloat,
  kDouble,
};

/// Size in bytes of one element of `dt`.
[[nodiscard]] std::size_t size_of(Datatype dt) noexcept;

[[nodiscard]] std::string to_string(Datatype dt);

}  // namespace ombx::mpi
