#include "mpi/world.hpp"

#include <exception>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "explore/explore.hpp"
#include "fault/watchdog.hpp"
#include "mpi/error.hpp"

namespace ombx::mpi {

namespace {

/// Human-readable cause for the abort reason string.
std::string describe(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

World::World(const WorldConfig& cfg)
    : cfg_(cfg),
      engine_(std::make_unique<Engine>(
          net::NetworkModel(cfg.cluster, cfg.tuning, cfg.ppn), cfg.nranks,
          cfg.payload, cfg.thread_level, cfg.mailbox_capacity)) {
  if (cfg.enable_trace) engine_->enable_tracing();
  if (cfg.enable_metrics) engine_->enable_metrics();
  if (cfg.check.enabled) engine_->enable_checking(cfg.check.mode);
  if (cfg.fault.enabled()) {
    plan_ = std::make_shared<fault::FaultPlan>(cfg.fault, cfg.nranks);
    engine_->set_fault_plan(plan_);
  }
  if (cfg.ft.enabled) engine_->enable_ft(cfg.ft);
  if (cfg.oracle) engine_->set_oracle(cfg.oracle.get());
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& rank_main) {
  engine_->reset_clocks();

  const int n = cfg_.nranks;
  std::vector<int> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), 0);

  // root_error is the first exception that is NOT a propagated abort (the
  // actual cause); abort_error keeps one AbortedError as a fallback for
  // aborts with no surviving root (watchdog deadlocks).
  std::mutex err_mutex;
  std::exception_ptr root_error;
  std::exception_ptr abort_error;

  fault::WaitRegistry& registry = engine_->wait_registry();
  std::unique_ptr<fault::Watchdog> watchdog;
  if (cfg_.enable_watchdog && n > 1) {
    // Schedule/seed identity, captured by value before any rank thread
    // starts (the oracle's identity is a pure function of the schedule it
    // was armed with): a hang found during exploration is attributable
    // from the DeadlockError alone, without re-running.
    const std::string sched_id =
        "fault-seed=" + std::to_string(cfg_.fault.seed) + " " +
        (cfg_.oracle ? cfg_.oracle->identity() : "schedule=default");
    watchdog = std::make_unique<fault::Watchdog>(
        registry, cfg_.watchdog_poll_ms, [this, sched_id](
                                             const std::string& dump) {
          engine_->abort(fault::kWatchdogOrigin,
                         "deadlock detected: no rank can make progress\n" +
                             dump + "\nschedule: " + sched_id,
                         /*deadlock=*/true);
        });
  }

  const auto run_rank = [&](int r) {
    try {
      Comm comm(*engine_, /*context=*/0, identity, r);
      rank_main(comm);
    } catch (const AbortedError&) {
      // A peer's failure propagated here; keep one as a fallback cause.
      std::lock_guard<std::mutex> lk(err_mutex);
      if (!abort_error) abort_error = std::current_exception();
    } catch (const RankKilledError& e) {
      if (cfg_.ft.enabled) {
        // ULFM mode: the failure is scoped, not global.  Dead-mark the
        // rank so peers detect it (ProcFailedError at their call sites)
        // and recover via revoke/shrink; the world keeps running.
        engine_->mark_rank_failed(r, e.at_time_us());
      } else {
        {
          std::lock_guard<std::mutex> lk(err_mutex);
          if (!root_error) root_error = std::current_exception();
        }
        engine_->abort(r, describe(std::current_exception()));
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(err_mutex);
        if (!root_error) root_error = std::current_exception();
      }
      // Wake every blocked peer with AbortedError naming this rank.
      engine_->abort(r, describe(std::current_exception()));
    }
    registry.mark_finished(r);
  };

  // Worlds do not nest onto the fiber pool: a rank body that builds an
  // inner World (none do today) would deadlock waiting for workers it
  // occupies, so a fiber caller falls back to thread-per-rank.
  const bool fibers = sched::resolve(cfg_.sched) == sched::Mode::kFibers &&
                      sched::current_fiber() == nullptr;
  if (fibers) {
    sched::FiberPool::instance().run_world(
        n, run_rank,
        [this](int r) { return engine_->state(r).clock.now(); });
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      threads.emplace_back([&, r] { run_rank(r); });
    }
    for (auto& t : threads) t.join();
  }
  if (watchdog) watchdog->stop();

  {
    std::lock_guard<std::mutex> lk(err_mutex);
    if (root_error) std::rethrow_exception(root_error);
    if (abort_error) std::rethrow_exception(abort_error);
  }

  // Clean join: finalize audit (unmatched sends, incomplete collective
  // epochs, leaked payload buffers).  Strict mode then fails the run on
  // anything collected — including destructor-raised violations (request
  // leaks, open RMA epochs), which can never throw at their source.
  if (check::Checker* chk = engine_->checker()) {
    engine_->run_check_audit();
    if (chk->strict() && !chk->empty()) {
      const auto vs = chk->violations();
      std::string codes;
      for (const auto& v : vs) {
        const char* name = check::code_name(v.code);
        if (codes.find(name) == std::string::npos) {
          if (!codes.empty()) codes += ", ";
          codes += name;
        }
      }
      throw Error("check: " + std::to_string(vs.size()) + " violation(s) [" +
                      codes + "]; first: " + vs.front().to_string(),
                  vs.front().rank, vs.front().context);
    }
  }
}

usec_t World::finish_time(int world_rank) const {
  return engine_->state(world_rank).clock.now();
}

}  // namespace ombx::mpi
