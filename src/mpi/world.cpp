#include "mpi/world.hpp"

#include <exception>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "mpi/error.hpp"

namespace ombx::mpi {

World::World(const WorldConfig& cfg)
    : cfg_(cfg),
      engine_(std::make_unique<Engine>(
          net::NetworkModel(cfg.cluster, cfg.tuning, cfg.ppn), cfg.nranks,
          cfg.payload, cfg.thread_level)) {
  if (cfg.enable_trace) engine_->enable_tracing();
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& rank_main) {
  engine_->reset_clocks();

  const int n = cfg_.nranks;
  std::vector<int> identity(static_cast<std::size_t>(n));
  std::iota(identity.begin(), identity.end(), 0);

  std::mutex err_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(*engine_, /*context=*/0, identity, r);
        rank_main(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

usec_t World::finish_time(int world_rank) const {
  return engine_->state(world_rank).clock.now();
}

}  // namespace ombx::mpi
