#include "mpi/engine.hpp"

#include <algorithm>
#include <cstring>

#include "explore/explore.hpp"
#include "mpi/error.hpp"

namespace ombx::mpi {

Engine::Engine(net::NetworkModel model, int nranks, PayloadMode payload,
               net::ThreadLevel thread_level, std::size_t mailbox_capacity)
    : model_(std::move(model)),
      payload_(payload),
      thread_level_(thread_level),
      registry_(nranks) {
  OMBX_REQUIRE(nranks > 0, "world must contain at least one rank");
  OMBX_REQUIRE(nranks <= model_.mapper().max_ranks(),
               "world does not fit on the cluster at this ppn");
  ranks_.reserve(static_cast<std::size_t>(nranks));
  mail_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_.push_back(std::make_unique<RankState>());
    mail_.push_back(std::make_unique<Mailbox>(mailbox_capacity, &registry_,
                                              r, /*max_src_world=*/nranks));
  }
  oversub_ = model_.oversubscription_factor(thread_level_);
}

double Engine::shm_slowdown(int src_world, int dst_world,
                            net::MemSpace space) const {
  if (oversub_ == 1.0) return 1.0;
  return shm_slowdown(model_.link_class(src_world, dst_world, space));
}

double Engine::shm_slowdown(net::LinkClass link) const {
  if (oversub_ == 1.0) return 1.0;
  switch (link) {
    case net::LinkClass::kSelf:
    case net::LinkClass::kIntraSocket:
    case net::LinkClass::kInterSocket:
      return oversub_;
    default:
      return 1.0;
  }
}

RankState& Engine::state(int world_rank) {
  OMBX_REQUIRE(world_rank >= 0 && world_rank < nranks(),
               "world rank out of range");
  return *ranks_[static_cast<std::size_t>(world_rank)];
}

void Engine::check_failures(int world_rank) {
  if (aborted_.load(std::memory_order_acquire)) {
    std::shared_ptr<const fault::AbortInfo> info;
    {
      std::lock_guard<std::mutex> lk(abort_mutex_);
      info = abort_;
    }
    if (info) throw_aborted(*info);
  }
  if (fault_) {
    if (const auto t = fault_->kill_time(world_rank)) {
      if (state(world_rank).clock.now() >= *t) {
        fault_->counters().kills.fetch_add(1, std::memory_order_relaxed);
        throw RankKilledError(world_rank, *t);
      }
    }
  }
}

std::shared_ptr<SyncCell> Engine::post_send(int src_world, int dst_world,
                                            int ctx, int src_comm_rank,
                                            int tag, ConstView v,
                                            bool force_payload,
                                            SendBuffering buffering) {
  OMBX_REQUIRE_AT(dst_world >= 0 && dst_world < nranks(),
                  "send destination out of range", src_world, ctx);
  check_failures(src_world);
  RankState& st = state(src_world);

  // FT mode: a send to a rank whose scheduled kill time is already past
  // raises ProcFailedError instead of enqueueing into a corpse's mailbox.
  // The check reads only the static plan and the sender's own clock, so
  // it is deterministic; a send that beats the kill in virtual time is
  // enqueued normally (residue excused at the finalize audit).
  if (ft_ && fault_ && src_world != dst_world) {
    if (const auto t_kill = fault_->kill_time(dst_world)) {
      if (st.clock.now() >= *t_kill) {
        ft_observe_interrupt(src_world, *t_kill, /*proc_failed=*/true);
        throw ft::ProcFailedError(dst_world, *t_kill, src_world, ctx);
      }
    }
  }

  Message msg;
  msg.context = ctx;
  msg.src = src_comm_rank;
  msg.src_world = src_world;
  msg.tag = tag;
  msg.bytes = v.bytes;
  msg.space = v.space;

  // Resolve the link class once; every cost query below reuses it.
  const net::LinkClass link = model_.link_class(src_world, dst_world, v.space);

  // Self-sends are always eager (a blocking rendezvous send to self could
  // never complete — same rule real MPI follows for its self channel).
  msg.protocol = (src_world == dst_world)
                     ? net::Protocol::kEager
                     : model_.protocol(link, v.bytes);

  const bool eager = msg.protocol == net::Protocol::kEager;
  if ((payload_ == PayloadMode::kReal || force_payload) &&
      v.data != nullptr && v.bytes > 0) {
    if (eager || buffering == SendBuffering::kBuffered) {
      msg.payload = pool_.acquire_copy(v.data, v.bytes);
    } else {
      // Blocking-send rendezvous: the sender stays parked on the SyncCell
      // for the whole transfer, so the receiver can read `v` in place.
      msg.zero_copy_src = v;
    }
  }

  // Fault injection: decisions are drawn on the sender thread from the
  // plan's seeded per-pair stream, so the schedule is deterministic.
  // Corruption is recorded on the message and applied into the receive
  // buffer at delivery — the flip happens identically whether the bytes
  // travel pooled, zero-copy, or not at all (synthetic mode).
  fault::MessageFaults injected;
  if (fault_ && src_world != dst_world) {
    injected = fault_->draw_message(src_world, dst_world, v.bytes, eager);
    msg.corrupt = injected.corrupt;
    msg.corrupt_offset = injected.corrupt_offset;
    if (injected.lost) {
      // Retry budget exhausted under DropSpec::fail_on_exhaustion: the
      // sender burned the full retransmission window learning the link is
      // dead, then unwinds.  The charge keeps the failure priced (and
      // deterministic) in virtual time; nothing was enqueued, so no
      // receiver-side state needs cleanup.
      st.clock.advance(static_cast<usec_t>(injected.retransmits) *
                       fault_->config().drop.retransmit_timeout_us);
      throw MessageLostError(src_world, dst_world, injected.retransmits,
                             tag);
    }
  }
  const double straggle =
      fault_ ? fault_->straggler_factor(src_world) : 1.0;

  // The THREAD_MULTIPLE memcpy penalty only bites on the segmented copies
  // of large (rendezvous) messages; eager sends are latency-bound and the
  // paper sees full-subscription degradation at large sizes only.
  std::shared_ptr<SyncCell> cell;
  if (eager) {
    auto& memo = st.eager_prices;
    if (!memo.valid || memo.link != link || memo.bytes != v.bytes) {
      memo.link = link;
      memo.bytes = v.bytes;
      memo.transfer = model_.transfer_us(link, v.bytes);
      memo.busy = model_.sender_busy_us(link, v.bytes);
      memo.gap = model_.nic_gap_us(link, v.bytes);
      memo.valid = true;
    }
    const usec_t inject = std::max(st.clock.now(), st.nic_free);
    usec_t transfer = memo.transfer;
    if (fault_) {
      if (fault_->degrades(link, inject)) {
        transfer = model_.perturbed_transfer_us(
            link, v.bytes, fault_->alpha_factor(link, inject),
            fault_->beta_factor(link, inject));
        fault_->counters().degraded_messages.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    msg.send_time = inject;
    // Each dropped attempt costs one retransmit timeout before the copy
    // that finally lands; the NIC stays busy re-injecting, but the CPU
    // moved on after the first injection (eager fire-and-forget, with the
    // library's progress engine doing the retries).
    const int re = injected.retransmits;
    const usec_t retry_delay =
        re > 0 ? static_cast<usec_t>(re) *
                     fault_->config().drop.retransmit_timeout_us
               : 0.0;
    msg.arrival_time = inject + retry_delay + transfer;
    st.nic_free = inject + retry_delay + memo.gap;
    st.clock.advance_to(inject + straggle * memo.busy);
  } else {
    msg.send_time = st.clock.now();
    // Receiver recomputes wire time from the model; stash nothing extra.
    cell = std::make_shared<SyncCell>();
    cell->ctx = ctx;
    cell->peer = dst_world;
    cell->tag = tag;
    msg.sync = cell;
    {
      std::lock_guard<std::mutex> lk(cells_mutex_);
      // Prune completed/abandoned cells opportunistically so the registry
      // stays O(in-flight), then track this one for abort poisoning.
      std::erase_if(pending_cells_,
                    [](const std::weak_ptr<SyncCell>& w) {
                      return w.expired();
                    });
      pending_cells_.push_back(cell);
    }
    // An abort whose poison sweep ran before the registration above would
    // miss this cell; poison it ourselves so the sender's await (which
    // relies solely on cell state, never an early failure check — see
    // await_cell) is guaranteed to wake.
    if (aborted_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lk(abort_mutex_);
      if (abort_) cell->poison(abort_);
    }
    // Same handshake for FT marks: a peer death or exit mark published
    // before the registration above was swept while this cell did not yet
    // exist, so no future sweep will reach it — interrupt it ourselves.
    // Without this, a sender racing a peer's revoke/shrink parks on the
    // cell forever while the survivors wait for it in recovery.
    if (ft_) {
      if (const auto it = ft_->sender_interrupt(ctx, dst_world)) {
        cell->ft_interrupt(it->proc_failed, it->failed_rank, it->at_time_us);
      }
    }
  }

  if (metrics_) {
    obs::RankCounters& c = metrics_->rank(src_world);
    if (src_world == dst_world) {
      obs::bump(c.self_msgs);
      obs::bump(c.self_bytes, v.bytes);
    } else if (eager) {
      obs::bump(c.eager_msgs);
      obs::bump(c.eager_bytes, v.bytes);
    } else {
      obs::bump(c.rendezvous_msgs);
      obs::bump(c.rendezvous_bytes, v.bytes);
    }
    if (!msg.payload.empty()) {
      // Storage tier is a pure function of size (see PayloadPool), so the
      // split is deterministic even though freelist hits are not.
      auto& tier = msg.payload.is_inline()
                       ? c.payload_inline
                       : msg.payload.is_pooled() ? c.payload_pooled
                                                 : c.payload_heap;
      obs::bump(tier);
    }
    if (injected.retransmits > 0) {
      obs::bump(c.retransmits,
                static_cast<std::uint64_t>(injected.retransmits));
    }
  }
  if (tracer_) {
    tracer_->record(TraceEvent{.rank = src_world,
                               .kind = TraceKind::kSend,
                               .t_start = msg.send_time,
                               .t_end = st.clock.now(),
                               .peer = dst_world,
                               .bytes = v.bytes,
                               .tag = tag,
                               .attr = src_world == dst_world
                                           ? "self"
                                           : eager ? "eager" : "rendezvous"});
  }
  mail_[static_cast<std::size_t>(dst_world)]->enqueue(std::move(msg));
  return cell;
}

Status Engine::recv(int self_world, int ctx, int src_comm_rank, int tag,
                    MutView v, int src_world_hint) {
  check_failures(self_world);
  RankState& st = state(self_world);
  const usec_t recv_posted = st.clock.now();
  if (metrics_) {
    obs::bump(metrics_->rank(self_world).recvs_posted);
  }
  Message msg;
  try {
    msg = mail_[static_cast<std::size_t>(self_world)]->dequeue_match(
        ctx, src_comm_rank, tag, src_world_hint);
  } catch (const ft::ProcFailedError& e) {
    ft_observe_interrupt(self_world, e.at_time_us(), /*proc_failed=*/true);
    throw;
  } catch (const ft::RevokedError& e) {
    ft_observe_interrupt(self_world, e.at_time_us(), /*proc_failed=*/false);
    throw;
  }
  OMBX_REQUIRE_AT(msg.bytes <= v.bytes,
                  "receive buffer too small (message truncated)", self_world,
                  ctx);

  usec_t rendezvous_complete = 0.0;
  if (msg.protocol == net::Protocol::kEager) {
    st.clock.advance_to(msg.arrival_time);
  } else {
    // Rendezvous: the transfer cannot start until both sides are ready and
    // the RTS/CTS handshake has completed.
    const net::LinkClass link =
        model_.link_class(msg.src_world, self_world, msg.space);
    const usec_t start = std::max(msg.send_time, st.clock.now()) +
                         model_.tuning().rendezvous_handshake_us;
    usec_t raw_wire = model_.transfer_us(link, msg.bytes);
    if (fault_) {
      if (fault_->degrades(link, start)) {
        raw_wire = model_.perturbed_transfer_us(
            link, msg.bytes, fault_->alpha_factor(link, start),
            fault_->beta_factor(link, start));
        fault_->counters().degraded_messages.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    const usec_t wire = raw_wire * shm_slowdown(link);
    const usec_t complete = start + wire;
    st.clock.advance_to(complete);
    rendezvous_complete = complete;
  }

  // Copy out whatever physically travelled (control-plane messages carry
  // payload even in synthetic mode).  This MUST precede the SyncCell
  // completion below: a zero-copy source buffer is only pinned while its
  // sender is still blocked on the cell.
  if (v.data != nullptr) {
    if (msg.zero_copy_src.data != nullptr) {
      // Claim the transfer so an abort cannot unwind the sender (freeing
      // the buffer) mid-copy; a false claim means the cell is already
      // poisoned and the buffer may be gone — skip the bytes, the abort
      // surfaces at this rank's next substrate call.
      const bool claimed = msg.sync && msg.sync->begin_transfer();
      if (msg.sync && oracle_ != nullptr) {
        oracle_->record_claim(self_world, ctx, claimed);
        if (metrics_) {
          obs::bump(metrics_->rank(self_world).sched_rendezvous_claims);
        }
      }
      if (claimed) {
        std::memcpy(v.data, msg.zero_copy_src.data, msg.bytes);
      } else if (checker_ && !aborted_.load(std::memory_order_acquire)) {
        // A failed claim with no abort pending means the sender's buffer
        // was reclaimed while this receive still expected to read it —
        // an internal transport invariant the checker makes visible.
        checker_->report_noexcept(check::Violation{
            check::Code::kPayloadClaim, self_world, ctx, "recv",
            "zero-copy source buffer from rank " +
                std::to_string(msg.src_world) +
                " was reclaimed before delivery"});
      }
    } else if (!msg.payload.empty()) {
      std::memcpy(v.data, msg.payload.data(), msg.payload.size());
    }
    if (msg.corrupt && msg.carries_data() && msg.bytes > 0) {
      v.data[msg.corrupt_offset % msg.bytes] ^= std::byte{0xff};
    }
  }
  if (msg.sync) msg.sync->complete(rendezvous_complete);

  if (tracer_) {
    tracer_->record(TraceEvent{.rank = self_world,
                               .kind = TraceKind::kRecv,
                               .t_start = recv_posted,
                               .t_end = st.clock.now(),
                               .peer = msg.src_world,
                               .bytes = msg.bytes,
                               .tag = msg.tag,
                               .attr = msg.src_world == self_world
                                           ? "self"
                                           : msg.protocol ==
                                                     net::Protocol::kEager
                                                 ? "eager"
                                                 : "rendezvous"});
  }
  return Status{.source = msg.src, .tag = msg.tag, .bytes = msg.bytes};
}

void Engine::await_cell(int world_rank, SyncCell& cell) {
  // Deliberately no check_failures() here: a zero-copy sender must not
  // unwind (freeing the buffer the receiver reads) on the abort flag alone
  // — only once its cell is poisoned and unclaimed, which post_send's
  // registration handshake guarantees happens on every abort.  Kills are
  // clock-driven and the clock has not moved since the caller's own entry
  // check, so nothing is lost by deferring them to the next operation.
  if (metrics_) {
    obs::bump(metrics_->rank(world_rank).rendezvous_waits);
  }
  usec_t t;
  {
    fault::ScopedWait wait(
        &registry_, world_rank,
        fault::WaitInfo{fault::WaitKind::kRendezvous, cell.ctx, cell.peer,
                        cell.tag});
    try {
      t = cell.await();
    } catch (const AbortedError&) {
      if (metrics_) {
        obs::bump(metrics_->rank(world_rank).poisoned_waits);
      }
      throw;
    } catch (const ft::ProcFailedError& e) {
      ft_observe_interrupt(world_rank, e.at_time_us(), /*proc_failed=*/true);
      throw;
    } catch (const ft::RevokedError& e) {
      ft_observe_interrupt(world_rank, e.at_time_us(), /*proc_failed=*/false);
      throw;
    }
  }
  state(world_rank).clock.advance_to(t);
}

Status Engine::probe(int self_world, int ctx, int src, int tag) {
  check_failures(self_world);
  if (metrics_) {
    obs::bump(metrics_->rank(self_world).probes_posted);
  }
  try {
    return mail_[static_cast<std::size_t>(self_world)]->probe(ctx, src, tag);
  } catch (const ft::ProcFailedError& e) {
    ft_observe_interrupt(self_world, e.at_time_us(), /*proc_failed=*/true);
    throw;
  } catch (const ft::RevokedError& e) {
    ft_observe_interrupt(self_world, e.at_time_us(), /*proc_failed=*/false);
    throw;
  }
}

std::optional<Status> Engine::iprobe(int self_world, int ctx, int src,
                                     int tag) {
  check_failures(self_world);
  try {
    auto st = mail_[static_cast<std::size_t>(self_world)]->try_probe(ctx, src,
                                                                     tag);
    // A miss is the body of a user-level poll loop (`while (!iprobe())`,
    // `while (!req.test())`): on the fiber backend, yield the worker so
    // the peer this rank is polling for can run.  No-op on threads.
    if (!st) sched::maybe_yield();
    return st;
  } catch (const ft::ProcFailedError& e) {
    ft_observe_interrupt(self_world, e.at_time_us(), /*proc_failed=*/true);
    throw;
  } catch (const ft::RevokedError& e) {
    ft_observe_interrupt(self_world, e.at_time_us(), /*proc_failed=*/false);
    throw;
  }
}

void Engine::abort(int origin_rank, const std::string& reason,
                   bool deadlock) {
  std::shared_ptr<const fault::AbortInfo> info;
  {
    std::lock_guard<std::mutex> lk(abort_mutex_);
    if (abort_) return;  // first abort wins
    abort_ = std::make_shared<const fault::AbortInfo>(
        fault::AbortInfo{origin_rank, reason, deadlock});
    info = abort_;
  }
  aborted_.store(true, std::memory_order_release);
  // Requests and CollRequests destroyed while ranks unwind from this
  // abort are casualties of it, not independent leaks.
  if (checker_) checker_->suppress_leaks();
  if (fault_) {
    fault_->counters().aborts.fetch_add(1, std::memory_order_relaxed);
    if (deadlock) {
      fault_->counters().watchdog_fires.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  }
  for (auto& mb : mail_) mb->poison(info);
  // FT recovery barriers participate in the no-hang guarantee too.
  if (ft_) ft_->poison(info);
  std::lock_guard<std::mutex> lk(cells_mutex_);
  for (auto& w : pending_cells_) {
    if (auto cell = w.lock()) cell->poison(info);
  }
  pending_cells_.clear();
}

std::shared_ptr<const fault::AbortInfo> Engine::abort_info() const {
  std::lock_guard<std::mutex> lk(abort_mutex_);
  return abort_;
}

void Engine::set_fault_plan(std::shared_ptr<fault::FaultPlan> plan) {
  fault_ = std::move(plan);
}

void Engine::enable_ft(const ft::FtConfig& cfg) {
  if (ft_) return;
  ft_ = std::make_unique<ft::FailureState>(nranks(), cfg);
  ft_->set_wait_registry(&registry_);
  for (auto& mb : mail_) mb->set_failure_state(ft_.get());
}

void Engine::ft_register_comm(int ctx, const std::vector<int>& members) {
  if (ft_) ft_->register_comm(ctx, members);
}

void Engine::ft_observe_interrupt(int world_rank, usec_t event_time,
                                  bool proc_failed) {
  const ft::FtConfig& cfg = ft_->config();
  state(world_rank).clock.advance_to(
      event_time +
      (proc_failed ? cfg.detect_timeout_us : cfg.revoke_latency_us));
  if (proc_failed) {
    if (fault_) {
      fault_->counters().detections.fetch_add(1, std::memory_order_relaxed);
    }
    if (metrics_) {
      obs::bump(metrics_->rank(world_rank).ft_detections);
    }
  }
}

void Engine::mark_rank_failed(int world_rank, usec_t at_time_us) {
  if (!ft_) return;
  ft_->mark_dead(world_rank, at_time_us);
  // Wake every blocked wait (outside the failure-state mutex) so it can
  // re-evaluate against the new death mark, and interrupt rendezvous
  // senders parked on a cell the corpse will never receive.
  for (auto& mb : mail_) mb->ft_notify();
  std::lock_guard<std::mutex> lk(cells_mutex_);
  for (auto& w : pending_cells_) {
    if (auto cell = w.lock()) {
      if (cell->peer == world_rank) {
        cell->ft_interrupt(/*proc_failed=*/true, world_rank, at_time_us);
      }
    }
  }
}

void Engine::ft_wake_after_exit(int ctx, int world_rank, usec_t at_time_us) {
  for (auto& mb : mail_) mb->ft_notify();
  std::lock_guard<std::mutex> lk(cells_mutex_);
  for (auto& w : pending_cells_) {
    if (auto cell = w.lock()) {
      if (cell->ctx == ctx && cell->peer == world_rank) {
        cell->ft_interrupt(/*proc_failed=*/false, -1, at_time_us);
      }
    }
  }
}

bool Engine::ft_revoke(int ctx, int world_rank, usec_t at_time_us) {
  OMBX_REQUIRE_AT(ft_ != nullptr, "revoke() requires FT mode (WorldConfig::ft)",
                  world_rank, ctx);
  // A rank whose own kill time has passed must die here, not revoke: a
  // zombie that published an exit mark would race its (host-delayed)
  // death mark at every peer's wait predicate, making which error the
  // peer sees — and hence its recovery clock — host-timing dependent.
  check_failures(world_rank);
  const bool first = ft_->revoke(ctx, world_rank, at_time_us);
  if (first && fault_) {
    fault_->counters().revokes.fetch_add(1, std::memory_order_relaxed);
  }
  if (metrics_) {
    obs::bump(metrics_->rank(world_rank).ft_revokes);
  }
  // A revoked context's residue (messages the recovery abandoned) is
  // excused at the finalize audit.
  if (checker_) checker_->excuse_context(ctx);
  ft_wake_after_exit(ctx, world_rank, at_time_us);
  return first;
}

ft::ShrinkResult Engine::ft_shrink(int ctx, int world_rank, usec_t now) {
  OMBX_REQUIRE_AT(ft_ != nullptr, "shrink() requires FT mode (WorldConfig::ft)",
                  world_rank, ctx);
  check_failures(world_rank);
  // Entering shrink abandons the old context: exit-mark so peers still
  // blocked on us there unwind (revocation propagates along the wait-for
  // graph), and excuse the context's residue.
  ft_->mark_exit(ctx, world_rank, now);
  if (checker_) checker_->excuse_context(ctx);
  ft_wake_after_exit(ctx, world_rank, now);
  if (metrics_) {
    obs::bump(metrics_->rank(world_rank).ft_shrinks);
  }
  ft::ShrinkResult res;
  {
    fault::ScopedWait wait(
        &registry_, world_rank,
        fault::WaitInfo{fault::WaitKind::kRecovery, ctx, -1, -1});
    res = ft_->shrink(ctx, world_rank, now,
                      [this] { return allocate_context(); });
  }
  // Count each completed shrink once, deterministically: the lowest
  // survivor reports it.
  if (fault_ && !res.survivors.empty() && world_rank == res.survivors.front()) {
    fault_->counters().shrinks.fetch_add(1, std::memory_order_relaxed);
  }
  return res;
}

ft::AgreeResult Engine::ft_agree(int ctx, int world_rank, usec_t now,
                                 std::uint32_t bits) {
  OMBX_REQUIRE_AT(ft_ != nullptr, "agree() requires FT mode (WorldConfig::ft)",
                  world_rank, ctx);
  check_failures(world_rank);
  if (metrics_) {
    obs::bump(metrics_->rank(world_rank).ft_agreements);
  }
  ft::AgreeResult res;
  {
    fault::ScopedWait wait(
        &registry_, world_rank,
        fault::WaitInfo{fault::WaitKind::kRecovery, ctx, -1, -1});
    res = ft_->agree(ctx, world_rank, now, bits);
  }
  if (fault_ && world_rank == res.coordinator) {
    fault_->counters().agreements.fetch_add(1, std::memory_order_relaxed);
  }
  return res;
}

void Engine::reset_clocks() {
  for (auto& r : ranks_) {
    r->clock.reset();
    r->nic_free = 0.0;
    r->work.reset();
  }
  // Clear failure state so a World can run again after an aborted program.
  {
    std::lock_guard<std::mutex> lk(abort_mutex_);
    abort_.reset();
  }
  aborted_.store(false, std::memory_order_release);
  for (auto& mb : mail_) mb->reset();
  {
    std::lock_guard<std::mutex> lk(cells_mutex_);
    pending_cells_.clear();
  }
  registry_.reset();
  if (ft_) ft_->reset();  // Comm ctors re-register memberships on rerun
  if (tracer_) tracer_->clear();
  if (metrics_) metrics_->reset();
  if (checker_) checker_->reset();
}

void Engine::charge_flops(int world_rank, double flops) {
  check_failures(world_rank);
  RankState& st = state(world_rank);
  st.work.add_flops(flops);
  // The oversubscription penalty is a memory-bandwidth effect: small
  // (cache-resident) reductions are unaffected, long vectors pay it.
  const double penalty = flops > 4096.0 ? oversub_ : 1.0;
  const double straggle =
      fault_ ? fault_->straggler_factor(world_rank) : 1.0;
  const usec_t t0 = st.clock.now();
  st.clock.advance(model_.cluster().compute.flop_time(flops) * penalty *
                   straggle);
  if (tracer_) {
    tracer_->record(TraceEvent{.rank = world_rank,
                               .kind = TraceKind::kCompute,
                               .t_start = t0,
                               .t_end = st.clock.now(),
                               .peer = -1,
                               .bytes = 0,
                               .tag = -1,
                               .attr = {}});
  }
}

void Engine::charge_bytes(int world_rank, double bytes) {
  check_failures(world_rank);
  RankState& st = state(world_rank);
  st.work.add_bytes(bytes);
  const double straggle =
      fault_ ? fault_->straggler_factor(world_rank) : 1.0;
  const usec_t t0 = st.clock.now();
  st.clock.advance(model_.cluster().compute.byte_time(bytes) * oversub_ *
                   straggle);
  if (tracer_) {
    tracer_->record(TraceEvent{.rank = world_rank,
                               .kind = TraceKind::kCompute,
                               .t_start = t0,
                               .t_end = st.clock.now(),
                               .peer = -1,
                               .bytes = static_cast<std::size_t>(bytes),
                               .tag = -1,
                               .attr = {}});
  }
}

void Engine::enable_tracing() {
  if (!tracer_) tracer_ = std::make_unique<Tracer>(nranks());
}

void Engine::set_oracle(explore::ScheduleOracle* oracle) {
  oracle_ = oracle;
  for (auto& mb : mail_) mb->set_oracle(oracle);
}

void Engine::enable_metrics() {
  if (metrics_) return;
  metrics_ = std::make_unique<obs::Metrics>(nranks());
  for (int r = 0; r < nranks(); ++r) {
    mail_[static_cast<std::size_t>(r)]->set_counters(&metrics_->rank(r));
  }
}

Engine::FastPathTotals Engine::fast_path_totals() const noexcept {
  FastPathTotals t;
  for (const auto& mb : mail_) {
    const Mailbox::FastStats s = mb->fast_stats();
    t.fast_enqueues += s.fast_enqueues;
    t.slow_enqueues += s.slow_enqueues;
    t.fast_hits += s.fast_hits;
    t.fast_fallbacks += s.fast_fallbacks;
    t.drained += s.drained;
    t.ring_depth_hwm = std::max(t.ring_depth_hwm, s.ring_depth_hwm);
  }
  return t;
}

void Engine::enable_checking(check::Mode mode) {
  if (!checker_) checker_ = std::make_unique<check::Checker>(nranks(), mode);
}

void Engine::run_check_audit() {
  if (!checker_) return;
  bool residue = false;
  for (int r = 0; r < nranks(); ++r) {
    for (const auto& p :
         mail_[static_cast<std::size_t>(r)]->pending_summary()) {
      residue = true;  // still excuses the pool-outstanding check below
      // ULFM recovery legitimately strands messages: sends onto a revoked
      // or shrink-abandoned context, and anything queued at a dead rank.
      if (checker_->context_excused(p.ctx)) continue;
      if (ft_ && ft_->is_dead(r)) continue;
      checker_->report_noexcept(check::Violation{
          check::Code::kUnmatchedSend, r, p.ctx, "finalize",
          std::to_string(p.count) + " unreceived message(s) from comm rank " +
              std::to_string(p.src) + " with tag " + std::to_string(p.tag)});
    }
  }
  checker_->audit_epochs();
  // Pool-level corroboration: with every mailbox empty, no pooled or heap
  // payload buffer should still be held by a message.  (Residue messages
  // legitimately hold theirs — already reported as unmatched sends.)
  if (const std::uint64_t held = pool_.outstanding();
      held > 0 && !residue) {
    checker_->report_noexcept(check::Violation{
        check::Code::kPayloadClaim, -1, -1, "finalize",
        std::to_string(held) +
            " payload buffer(s) still held outside any mailbox"});
  }
}

}  // namespace ombx::mpi
