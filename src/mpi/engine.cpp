#include "mpi/engine.hpp"

#include <algorithm>
#include <cstring>

#include "mpi/error.hpp"

namespace ombx::mpi {

Engine::Engine(net::NetworkModel model, int nranks, PayloadMode payload,
               net::ThreadLevel thread_level)
    : model_(std::move(model)),
      payload_(payload),
      thread_level_(thread_level) {
  OMBX_REQUIRE(nranks > 0, "world must contain at least one rank");
  OMBX_REQUIRE(nranks <= model_.mapper().max_ranks(),
               "world does not fit on the cluster at this ppn");
  ranks_.reserve(static_cast<std::size_t>(nranks));
  mail_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_.push_back(std::make_unique<RankState>());
    mail_.push_back(std::make_unique<Mailbox>());
  }
  oversub_ = model_.oversubscription_factor(thread_level_);
}

double Engine::shm_slowdown(int src_world, int dst_world,
                            net::MemSpace space) const {
  if (oversub_ == 1.0) return 1.0;
  switch (model_.link_class(src_world, dst_world, space)) {
    case net::LinkClass::kSelf:
    case net::LinkClass::kIntraSocket:
    case net::LinkClass::kInterSocket:
      return oversub_;
    default:
      return 1.0;
  }
}

RankState& Engine::state(int world_rank) {
  OMBX_REQUIRE(world_rank >= 0 && world_rank < nranks(),
               "world rank out of range");
  return *ranks_[static_cast<std::size_t>(world_rank)];
}

std::shared_ptr<SyncCell> Engine::post_send(int src_world, int dst_world,
                                            int ctx, int src_comm_rank,
                                            int tag, ConstView v,
                                            bool force_payload) {
  OMBX_REQUIRE(dst_world >= 0 && dst_world < nranks(),
               "send destination out of range");
  RankState& st = state(src_world);

  Message msg;
  msg.context = ctx;
  msg.src = src_comm_rank;
  msg.src_world = src_world;
  msg.tag = tag;
  msg.bytes = v.bytes;
  msg.space = v.space;

  // Self-sends are always eager (a blocking rendezvous send to self could
  // never complete — same rule real MPI follows for its self channel).
  msg.protocol = (src_world == dst_world)
                     ? net::Protocol::kEager
                     : model_.protocol(src_world, dst_world, v.bytes, v.space);

  if ((payload_ == PayloadMode::kReal || force_payload) &&
      v.data != nullptr && v.bytes > 0) {
    msg.payload.assign(v.data, v.data + v.bytes);
  }

  // The THREAD_MULTIPLE memcpy penalty only bites on the segmented copies
  // of large (rendezvous) messages; eager sends are latency-bound and the
  // paper sees full-subscription degradation at large sizes only.
  std::shared_ptr<SyncCell> cell;
  if (msg.protocol == net::Protocol::kEager) {
    const usec_t inject = std::max(st.clock.now(), st.nic_free);
    msg.send_time = inject;
    msg.arrival_time =
        inject + model_.transfer_us(src_world, dst_world, v.bytes, v.space);
    st.nic_free = inject + model_.nic_gap_us(src_world, dst_world, v.bytes,
                                             v.space);
    st.clock.advance_to(
        inject + model_.sender_busy_us(src_world, dst_world, v.bytes,
                                       v.space));
  } else {
    msg.send_time = st.clock.now();
    // Receiver recomputes wire time from the model; stash nothing extra.
    cell = std::make_shared<SyncCell>();
    msg.sync = cell;
  }

  if (tracer_) {
    tracer_->record(TraceEvent{.rank = src_world,
                               .kind = TraceKind::kSend,
                               .t_start = msg.send_time,
                               .t_end = st.clock.now(),
                               .peer = dst_world,
                               .bytes = v.bytes,
                               .tag = tag});
  }
  mail_[static_cast<std::size_t>(dst_world)]->enqueue(std::move(msg));
  return cell;
}

Status Engine::recv(int self_world, int ctx, int src_comm_rank, int tag,
                    MutView v) {
  RankState& st = state(self_world);
  const usec_t recv_posted = st.clock.now();
  Message msg = mail_[static_cast<std::size_t>(self_world)]->dequeue_match(
      ctx, src_comm_rank, tag);
  OMBX_REQUIRE(msg.bytes <= v.bytes,
               "receive buffer too small (message truncated)");

  if (msg.protocol == net::Protocol::kEager) {
    st.clock.advance_to(msg.arrival_time);
  } else {
    // Rendezvous: the transfer cannot start until both sides are ready and
    // the RTS/CTS handshake has completed.
    const usec_t start = std::max(msg.send_time, st.clock.now()) +
                         model_.tuning().rendezvous_handshake_us;
    const usec_t wire =
        model_.transfer_us(msg.src_world, self_world, msg.bytes, msg.space) *
        shm_slowdown(msg.src_world, self_world, msg.space);
    const usec_t complete = start + wire;
    st.clock.advance_to(complete);
    if (msg.sync) msg.sync->complete(complete);
  }

  // Copy out whatever physically travelled (control-plane messages carry
  // payload even in synthetic mode).
  if (v.data != nullptr && !msg.payload.empty()) {
    std::memcpy(v.data, msg.payload.data(), msg.payload.size());
  }

  if (tracer_) {
    tracer_->record(TraceEvent{.rank = self_world,
                               .kind = TraceKind::kRecv,
                               .t_start = recv_posted,
                               .t_end = st.clock.now(),
                               .peer = msg.src_world,
                               .bytes = msg.bytes,
                               .tag = msg.tag});
  }
  return Status{.source = msg.src, .tag = msg.tag, .bytes = msg.bytes};
}

Status Engine::probe(int self_world, int ctx, int src, int tag) {
  return mail_[static_cast<std::size_t>(self_world)]->probe(ctx, src, tag);
}

std::optional<Status> Engine::iprobe(int self_world, int ctx, int src,
                                     int tag) {
  return mail_[static_cast<std::size_t>(self_world)]->try_probe(ctx, src,
                                                                tag);
}

void Engine::reset_clocks() {
  for (auto& r : ranks_) {
    r->clock.reset();
    r->nic_free = 0.0;
    r->work.reset();
  }
  if (tracer_) tracer_->clear();
}

void Engine::charge_flops(int world_rank, double flops) {
  RankState& st = state(world_rank);
  st.work.add_flops(flops);
  // The oversubscription penalty is a memory-bandwidth effect: small
  // (cache-resident) reductions are unaffected, long vectors pay it.
  const double penalty = flops > 4096.0 ? oversub_ : 1.0;
  const usec_t t0 = st.clock.now();
  st.clock.advance(model_.cluster().compute.flop_time(flops) * penalty);
  if (tracer_) {
    tracer_->record(TraceEvent{.rank = world_rank,
                               .kind = TraceKind::kCompute,
                               .t_start = t0,
                               .t_end = st.clock.now(),
                               .peer = -1,
                               .bytes = 0,
                               .tag = -1});
  }
}

void Engine::charge_bytes(int world_rank, double bytes) {
  RankState& st = state(world_rank);
  st.work.add_bytes(bytes);
  const usec_t t0 = st.clock.now();
  st.clock.advance(model_.cluster().compute.byte_time(bytes) * oversub_);
  if (tracer_) {
    tracer_->record(TraceEvent{.rank = world_rank,
                               .kind = TraceKind::kCompute,
                               .t_start = t0,
                               .t_end = st.clock.now(),
                               .peer = -1,
                               .bytes = static_cast<std::size_t>(bytes),
                               .tag = -1});
  }
}

void Engine::enable_tracing() {
  if (!tracer_) tracer_ = std::make_unique<Tracer>(nranks());
}

}  // namespace ombx::mpi
