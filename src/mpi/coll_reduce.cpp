#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"

namespace ombx::mpi {

namespace {

using detail::kTagReduce;
using detail::Scratch;

void reduce_linear(Comm& c, ConstView send, MutView recv, Datatype dt, Op op,
                   int root) {
  const int n = c.size();
  if (c.rank() != root) {
    c.send(send, root, kTagReduce);
    return;
  }
  const bool real = detail::real_payload(c, send);
  detail::copy_bytes(recv, send, send.bytes);
  Scratch tmp(send.bytes, real, send.space);
  for (int r = 0; r < n; ++r) {
    if (r == root) continue;
    (void)c.recv(tmp.mview(), r, kTagReduce);
    detail::combine(c, dt, op, recv, tmp.cview(), send.bytes);
  }
}

void reduce_binomial(Comm& c, ConstView send, MutView recv, Datatype dt,
                     Op op, int root) {
  const int n = c.size();
  const int vrank = (c.rank() - root + n) % n;
  const bool real = detail::real_payload(c, send);

  // Accumulator: at the root this is the user's recv buffer, elsewhere a
  // scratch of the same size.
  Scratch acc_store(c.rank() == root ? 0 : send.bytes, real, send.space);
  MutView acc = c.rank() == root ? detail::slice(recv, 0, send.bytes)
                                 : acc_store.mview();
  detail::copy_bytes(acc, send, send.bytes);

  Scratch tmp(send.bytes, real, send.space);
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = ((vrank - mask) + root) % n;
      c.send(detail::as_const(acc), parent, kTagReduce);
      break;
    }
    if (vrank + mask < n) {
      const int child = ((vrank + mask) + root) % n;
      (void)c.recv(tmp.mview(), child, kTagReduce);
      detail::combine(c, dt, op, acc, tmp.cview(), send.bytes);
    }
    mask <<= 1;
  }
}

}  // namespace

void reduce(Comm& c, ConstView send, MutView recv, Datatype dt, Op op,
            int root, net::ReduceAlgo algo) {
  OMBX_REQUIRE(root >= 0 && root < c.size(), "reduce root out of range");
  if (c.rank() == root) {
    OMBX_REQUIRE(recv.bytes >= send.bytes,
                 "reduce recv buffer smaller than contribution");
  }
  if (c.size() == 1) {
    detail::copy_bytes(recv, send, send.bytes);
    return;
  }
  if (algo == net::ReduceAlgo::kAuto) algo = c.net().tuning().reduce;
  if (algo == net::ReduceAlgo::kAuto) algo = net::ReduceAlgo::kBinomial;
  detail::CollSpan span(
      c, "reduce", net::to_string(algo), send.bytes,
      detail::CollMeta{.root = root,
                       .bytes = static_cast<long long>(send.bytes),
                       .datatype = static_cast<int>(dt),
                       .op = static_cast<int>(op)});
  switch (algo) {
    case net::ReduceAlgo::kLinear:
      reduce_linear(c, send, recv, dt, op, root);
      break;
    case net::ReduceAlgo::kAuto:
    case net::ReduceAlgo::kBinomial:
      reduce_binomial(c, send, recv, dt, op, root);
      break;
  }
}

}  // namespace ombx::mpi
