#include "mpi/trace.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <tuple>

namespace ombx::mpi {

std::string to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kSend: return "send";
    case TraceKind::kRecv: return "recv";
    case TraceKind::kCompute: return "compute";
    case TraceKind::kSpan: return "span";
  }
  return "unknown";
}

std::size_t Tracer::total_events() const {
  std::size_t n = 0;
  for (const auto& v : per_rank_) n += v.size();
  return n;
}

std::vector<TraceEvent> Tracer::merged() const {
  std::vector<TraceEvent> out;
  out.reserve(total_events());
  for (const auto& v : per_rank_) out.insert(out.end(), v.begin(), v.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t_start != b.t_start) return a.t_start < b.t_start;
                     return a.rank < b.rank;
                   });
  return out;
}

namespace {

/// RFC 4180 field escaping (quote on comma, quote, CR or LF; double
/// embedded quotes).  Attribution strings are the only free-form field.
void csv_field(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (const char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

/// JSON string escaping for attribution labels.
void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void Tracer::write_csv(std::ostream& os) const {
  os << "rank,kind,t_start_us,t_end_us,peer,bytes,tag,attr\n";
  for (const TraceEvent& e : merged()) {
    os << e.rank << ',' << to_string(e.kind) << ',' << e.t_start << ','
       << e.t_end << ',' << e.peer << ',' << e.bytes << ',' << e.tag << ',';
    csv_field(os, e.attr);
    os << '\n';
  }
}

void Tracer::write_chrome_json(std::ostream& os) const {
  // Fixed-point timestamps (nanosecond resolution) keep the output
  // deterministic and locale-independent; virtual us map straight onto the
  // viewer's `ts` axis.
  const auto us = [&os](simtime::usec_t t) {
    os << std::fixed << std::setprecision(3) << t
       << std::defaultfloat << std::setprecision(6);
  };
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : merged()) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":";
    json_string(os, e.attr.empty() ? to_string(e.kind)
                                   : to_string(e.kind) + ":" + e.attr);
    os << ",\"cat\":";
    json_string(os, to_string(e.kind));
    os << ",\"ph\":\"X\",\"ts\":";
    us(e.t_start);
    os << ",\"dur\":";
    us(e.t_end >= e.t_start ? e.t_end - e.t_start : 0.0);
    os << ",\"pid\":0,\"tid\":" << e.rank << ",\"args\":{\"peer\":" << e.peer
       << ",\"bytes\":" << e.bytes << ",\"tag\":" << e.tag << "}}";
  }
  const CriticalPath cp = critical_path();
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"critical_path_us\":";
  us(cp.total_us);
  os << ",\"critical_path_events\":" << cp.chain.size() << "}}\n";
}

Tracer::CriticalPath Tracer::critical_path() const {
  // Primitive events only, kept in per-rank record (program) order.
  struct Node {
    const TraceEvent* ev;
    double cost = -1.0;           ///< -1 = unresolved
    std::ptrdiff_t pred = -1;     ///< global index of predecessor
    std::ptrdiff_t match = -1;    ///< recv: global index of matching send
  };
  std::vector<Node> nodes;
  std::vector<std::vector<std::size_t>> by_rank(per_rank_.size());
  for (std::size_t r = 0; r < per_rank_.size(); ++r) {
    for (const TraceEvent& e : per_rank_[r]) {
      if (e.kind == TraceKind::kSpan) continue;
      by_rank[r].push_back(nodes.size());
      nodes.push_back(Node{&e});
    }
  }

  // Pair sends to recvs: FIFO per (src, dst, tag), in sender record order
  // (MPI non-overtaking order per matching key).
  std::map<std::tuple<int, int, int>, std::deque<std::size_t>> sends;
  for (const auto& idxs : by_rank) {
    for (const std::size_t i : idxs) {
      const TraceEvent& e = *nodes[i].ev;
      if (e.kind == TraceKind::kSend) {
        sends[{e.rank, e.peer, e.tag}].push_back(i);
      }
    }
  }
  for (const auto& idxs : by_rank) {
    for (const std::size_t i : idxs) {
      const TraceEvent& e = *nodes[i].ev;
      if (e.kind != TraceKind::kRecv) continue;
      auto it = sends.find({e.peer, e.rank, e.tag});
      if (it != sends.end() && !it->second.empty()) {
        nodes[i].match = static_cast<std::ptrdiff_t>(it->second.front());
        it->second.pop_front();
      }
    }
  }

  // Longest-chain DP, advancing per-rank frontiers; a recv resolves only
  // once its matching send has (always possible in a deadlock-free trace;
  // an unmatched recv just depends on its rank predecessor).
  std::vector<std::size_t> frontier(by_rank.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t r = 0; r < by_rank.size(); ++r) {
      while (frontier[r] < by_rank[r].size()) {
        const std::size_t i = by_rank[r][frontier[r]];
        Node& n = nodes[i];
        const double dur =
            n.ev->t_end >= n.ev->t_start ? n.ev->t_end - n.ev->t_start : 0.0;
        double best = 0.0;
        std::ptrdiff_t pred = -1;
        if (frontier[r] > 0) {
          const std::size_t p = by_rank[r][frontier[r] - 1];
          best = nodes[p].cost;
          pred = static_cast<std::ptrdiff_t>(p);
        }
        if (n.match >= 0) {
          const Node& m = nodes[static_cast<std::size_t>(n.match)];
          if (m.cost < 0.0) break;  // send not resolved yet
          if (m.cost > best) {
            best = m.cost;
            pred = n.match;
          }
        }
        n.cost = best + dur;
        n.pred = pred;
        ++frontier[r];
        progressed = true;
      }
    }
  }

  CriticalPath out;
  std::ptrdiff_t tail = -1;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].cost > out.total_us) {
      out.total_us = nodes[i].cost;
      tail = static_cast<std::ptrdiff_t>(i);
    }
  }
  std::vector<const TraceEvent*> rev;
  for (std::ptrdiff_t i = tail; i >= 0; i = nodes[static_cast<std::size_t>(i)].pred) {
    rev.push_back(nodes[static_cast<std::size_t>(i)].ev);
  }
  out.chain.reserve(rev.size());
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) out.chain.push_back(**it);
  return out;
}

void Tracer::clear() {
  for (auto& v : per_rank_) v.clear();
}

}  // namespace ombx::mpi
