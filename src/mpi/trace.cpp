#include "mpi/trace.hpp"

#include <algorithm>
#include <ostream>

namespace ombx::mpi {

std::string to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kSend: return "send";
    case TraceKind::kRecv: return "recv";
    case TraceKind::kCompute: return "compute";
  }
  return "unknown";
}

std::size_t Tracer::total_events() const {
  std::size_t n = 0;
  for (const auto& v : per_rank_) n += v.size();
  return n;
}

std::vector<TraceEvent> Tracer::merged() const {
  std::vector<TraceEvent> out;
  out.reserve(total_events());
  for (const auto& v : per_rank_) out.insert(out.end(), v.begin(), v.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t_start != b.t_start) return a.t_start < b.t_start;
                     return a.rank < b.rank;
                   });
  return out;
}

void Tracer::write_csv(std::ostream& os) const {
  os << "rank,kind,t_start_us,t_end_us,peer,bytes,tag\n";
  for (const TraceEvent& e : merged()) {
    os << e.rank << ',' << to_string(e.kind) << ',' << e.t_start << ','
       << e.t_end << ',' << e.peer << ',' << e.bytes << ',' << e.tag
       << '\n';
  }
}

void Tracer::clear() {
  for (auto& v : per_rank_) v.clear();
}

}  // namespace ombx::mpi
