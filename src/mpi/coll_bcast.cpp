#include <algorithm>

#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"
#include "mpi/request.hpp"

namespace ombx::mpi {

namespace {

using detail::kTagBcast;
using detail::slice;

void bcast_linear(Comm& c, MutView buf, int root) {
  if (c.rank() == root) {
    for (int r = 0; r < c.size(); ++r) {
      if (r != root) c.send(detail::as_const(buf), r, kTagBcast);
    }
  } else {
    (void)c.recv(buf, root, kTagBcast);
  }
}

void bcast_binomial(Comm& c, MutView buf, int root) {
  const int n = c.size();
  const int vrank = (c.rank() - root + n) % n;

  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int src = (vrank - mask + root) % n;
      (void)c.recv(buf, src, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  for (; mask > 0; mask >>= 1) {
    if (vrank + mask < n) {
      const int dst = (vrank + mask + root) % n;
      c.send(detail::as_const(buf), dst, kTagBcast);
    }
  }
}

/// Block extent [offset, offset+len) of chunk `i` when `total` bytes are
/// split into `n` chunks with the remainder spread over the first chunks.
struct Chunk {
  std::size_t off;
  std::size_t len;
};

Chunk chunk_of(std::size_t total, int n, int i) {
  const std::size_t base = total / static_cast<std::size_t>(n);
  const std::size_t rem = total % static_cast<std::size_t>(n);
  const auto ui = static_cast<std::size_t>(i);
  const std::size_t off = base * ui + std::min(ui, rem);
  const std::size_t len = base + (ui < rem ? 1 : 0);
  return {off, len};
}

/// Extent covering chunks [first, last).
Chunk chunk_range(std::size_t total, int n, int first, int last) {
  const Chunk a = chunk_of(total, n, first);
  const Chunk b = chunk_of(total, n, last - 1);
  return {a.off, b.off + b.len - a.off};
}

/// Van de Geijn large-message broadcast: binomial scatter of n chunks, then
/// a ring allgather.  Bandwidth-optimal for large payloads.
void bcast_scatter_allgather(Comm& c, MutView buf, int root) {
  const int n = c.size();
  const int r = c.rank();
  const int vrank = (r - root + n) % n;
  const std::size_t total = buf.bytes;

  // --- Binomial scatter: node vrank ends up owning chunk vrank, and during
  // the descent holds the contiguous chunk range [vrank, vrank + held).
  int held;  // number of chunks this node currently holds
  if (vrank == 0) {
    held = n;
  } else {
    int lsb = 1;
    while (!(vrank & lsb)) lsb <<= 1;
    held = std::min(lsb, n - vrank);
    const int parent = ((vrank - lsb) + root) % n;
    const Chunk mine = chunk_range(total, n, vrank, vrank + held);
    (void)c.recv(slice(buf, mine.off, mine.len), parent, kTagBcast);
  }
  {
    int lsb = vrank == 0 ? detail::pow2_below(std::max(n, 1)) * 2 : 0;
    if (vrank != 0) {
      lsb = 1;
      while (!(vrank & lsb)) lsb <<= 1;
    }
    for (int mask = lsb >> 1; mask > 0; mask >>= 1) {
      const int child_v = vrank + mask;
      if (child_v < n) {
        const int child_held = std::min(mask, n - child_v);
        const Chunk theirs = chunk_range(total, n, child_v,
                                         child_v + child_held);
        const int dst = (child_v + root) % n;
        c.send(detail::slice(detail::as_const(buf), theirs.off, theirs.len),
               dst, kTagBcast);
      }
    }
  }

  // --- Ring allgather over the chunks (indexed by vrank).
  const int right = (r + 1) % n;
  const int left = (r - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    const int send_chunk = (vrank - s + n) % n;
    const int recv_chunk = (vrank - s - 1 + n) % n;
    const Chunk sc = chunk_of(total, n, send_chunk);
    const Chunk rc = chunk_of(total, n, recv_chunk);
    (void)c.sendrecv(
        detail::slice(detail::as_const(buf), sc.off, sc.len), right,
        kTagBcast, slice(buf, rc.off, rc.len), left, kTagBcast);
  }
}

}  // namespace

void bcast(Comm& c, MutView buf, int root, net::BcastAlgo algo) {
  OMBX_REQUIRE(root >= 0 && root < c.size(), "bcast root out of range");
  if (c.size() == 1) return;
  if (algo == net::BcastAlgo::kAuto) algo = c.net().tuning().bcast;
  if (algo == net::BcastAlgo::kAuto) {
    // MPICH-like heuristic: binomial for short messages or small comms,
    // scatter-allgather for long messages.
    const bool large = buf.bytes > 12288 && c.size() >= 8;
    algo = large ? net::BcastAlgo::kScatterAllgather
                 : net::BcastAlgo::kBinomial;
  }
  detail::CollSpan span(
      c, "bcast", net::to_string(algo), buf.bytes,
      detail::CollMeta{.root = root,
                       .bytes = static_cast<long long>(buf.bytes)});
  switch (algo) {
    case net::BcastAlgo::kLinear:
      bcast_linear(c, buf, root);
      break;
    case net::BcastAlgo::kScatterAllgather:
      bcast_scatter_allgather(c, buf, root);
      break;
    case net::BcastAlgo::kAuto:
    case net::BcastAlgo::kBinomial:
      bcast_binomial(c, buf, root);
      break;
  }
}

}  // namespace ombx::mpi
