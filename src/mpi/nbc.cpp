#include "mpi/nbc.hpp"

namespace ombx::mpi {

CollRequest ibarrier(Comm& c, net::BarrierAlgo algo) {
  return CollRequest([&c, algo] { barrier(c, algo); });
}

CollRequest ibcast(Comm& c, MutView buf, int root, net::BcastAlgo algo) {
  return CollRequest([&c, buf, root, algo] { bcast(c, buf, root, algo); });
}

CollRequest ireduce(Comm& c, ConstView send, MutView recv, Datatype dt,
                    Op op, int root, net::ReduceAlgo algo) {
  return CollRequest([&c, send, recv, dt, op, root, algo] {
    reduce(c, send, recv, dt, op, root, algo);
  });
}

CollRequest iallreduce(Comm& c, ConstView send, MutView recv, Datatype dt,
                       Op op, net::AllreduceAlgo algo) {
  return CollRequest([&c, send, recv, dt, op, algo] {
    allreduce(c, send, recv, dt, op, algo);
  });
}

CollRequest igather(Comm& c, ConstView send, MutView recv, int root,
                    net::GatherAlgo algo) {
  return CollRequest([&c, send, recv, root, algo] {
    gather(c, send, recv, root, algo);
  });
}

CollRequest iscatter(Comm& c, ConstView send, MutView recv, int root,
                     net::GatherAlgo algo) {
  return CollRequest([&c, send, recv, root, algo] {
    scatter(c, send, recv, root, algo);
  });
}

CollRequest iallgather(Comm& c, ConstView send, MutView recv,
                       net::AllgatherAlgo algo) {
  return CollRequest(
      [&c, send, recv, algo] { allgather(c, send, recv, algo); });
}

CollRequest ialltoall(Comm& c, ConstView send, MutView recv,
                      net::AlltoallAlgo algo) {
  return CollRequest(
      [&c, send, recv, algo] { alltoall(c, send, recv, algo); });
}

CollRequest ireduce_scatter(Comm& c, ConstView send, MutView recv,
                            Datatype dt, Op op,
                            net::ReduceScatterAlgo algo) {
  return CollRequest([&c, send, recv, dt, op, algo] {
    reduce_scatter(c, send, recv, dt, op, algo);
  });
}

}  // namespace ombx::mpi
