#include "mpi/nbc.hpp"

#include <exception>
#include <string>

namespace ombx::mpi {

void CollRequest::diagnose_abandoned() noexcept {
  if (!body_ || comm_ == nullptr) return;
  body_ = nullptr;  // the schedule will never run; don't diagnose twice
  check::Checker* chk = comm_->engine().checker();
  if (chk == nullptr) return;
  // Stack unwinding and post-abort teardown both destroy pending handles
  // legitimately; the root cause is already being reported elsewhere.
  if (std::uncaught_exceptions() > 0 || chk->leaks_suppressed()) return;

  const int world = comm_->world_rank(comm_->rank());
  check::Violation v;
  v.code = check::Code::kCollRequestLeak;
  v.rank = world;
  v.context = comm_->context();
  v.op = std::string("i") + coll_;
  v.detail = std::string("non-blocking collective posted but never "
                         "waited; peers block in ") +
             coll_;
  chk->report_noexcept(v);
  if (chk->strict()) {
    // Wake the peers with the real cause attached to the leaking rank,
    // rather than letting the watchdog report an anonymous deadlock.
    comm_->engine().abort(
        world, std::string("check: ") +
                   check::code_name(check::Code::kCollRequestLeak) +
                   ": i" + coll_ + " abandoned without wait() on rank " +
                   std::to_string(world));
  }
}

CollRequest ibarrier(Comm& c, net::BarrierAlgo algo) {
  return CollRequest(c, "barrier", [&c, algo] { barrier(c, algo); });
}

CollRequest ibcast(Comm& c, MutView buf, int root, net::BcastAlgo algo) {
  return CollRequest(c, "bcast",
                     [&c, buf, root, algo] { bcast(c, buf, root, algo); });
}

CollRequest ireduce(Comm& c, ConstView send, MutView recv, Datatype dt,
                    Op op, int root, net::ReduceAlgo algo) {
  return CollRequest(c, "reduce", [&c, send, recv, dt, op, root, algo] {
    reduce(c, send, recv, dt, op, root, algo);
  });
}

CollRequest iallreduce(Comm& c, ConstView send, MutView recv, Datatype dt,
                       Op op, net::AllreduceAlgo algo) {
  return CollRequest(c, "allreduce", [&c, send, recv, dt, op, algo] {
    allreduce(c, send, recv, dt, op, algo);
  });
}

CollRequest igather(Comm& c, ConstView send, MutView recv, int root,
                    net::GatherAlgo algo) {
  return CollRequest(c, "gather", [&c, send, recv, root, algo] {
    gather(c, send, recv, root, algo);
  });
}

CollRequest iscatter(Comm& c, ConstView send, MutView recv, int root,
                     net::GatherAlgo algo) {
  return CollRequest(c, "scatter", [&c, send, recv, root, algo] {
    scatter(c, send, recv, root, algo);
  });
}

CollRequest iallgather(Comm& c, ConstView send, MutView recv,
                       net::AllgatherAlgo algo) {
  return CollRequest(c, "allgather",
                     [&c, send, recv, algo] { allgather(c, send, recv, algo); });
}

CollRequest ialltoall(Comm& c, ConstView send, MutView recv,
                      net::AlltoallAlgo algo) {
  return CollRequest(c, "alltoall",
                     [&c, send, recv, algo] { alltoall(c, send, recv, algo); });
}

CollRequest ireduce_scatter(Comm& c, ConstView send, MutView recv,
                            Datatype dt, Op op,
                            net::ReduceScatterAlgo algo) {
  return CollRequest(c, "reduce_scatter", [&c, send, recv, dt, op, algo] {
    reduce_scatter(c, send, recv, dt, op, algo);
  });
}

}  // namespace ombx::mpi
