// Non-blocking collectives (MPI_Ibcast / Iallreduce / ... + Wait).
//
// Progress model: LibNBC-without-an-async-thread.  Posting records the
// operation; the communication schedule executes when the caller enters
// wait()/test().  This is a faithful model of MPI implementations that
// only progress non-blocking collectives inside MPI calls — which is why
// the overlap ratio OMB's osu_i<coll> benchmarks report is near zero for
// such libraries, and why OMB-X's nbc benches report the same.
//
// Buffer views must stay valid until wait() returns.  Every rank must
// eventually wait: a posted-but-never-waited collective leaves peers
// stuck, exactly like real MPI.  Under --check, destroying an un-waited
// CollRequest reports a coll-request-leak naming the collective and rank
// (and in strict mode aborts the world) instead of letting the peers'
// watchdog fire with an unattributed deadlock dump.
#pragma once

#include <functional>
#include <utility>

#include "mpi/collectives.hpp"
#include "mpi/comm.hpp"

namespace ombx::mpi {

/// Handle for an in-flight non-blocking collective.  Move-only: the
/// schedule must run exactly once, and leak diagnosis needs a single
/// owner to blame.
class CollRequest {
 public:
  CollRequest() = default;

  CollRequest(const CollRequest&) = delete;
  CollRequest& operator=(const CollRequest&) = delete;
  CollRequest(CollRequest&& o) noexcept
      : body_(std::move(o.body_)), comm_(o.comm_), coll_(o.coll_) {
    o.body_ = nullptr;
    o.comm_ = nullptr;
  }
  CollRequest& operator=(CollRequest&& o) noexcept {
    if (this != &o) {
      diagnose_abandoned();
      body_ = std::move(o.body_);
      comm_ = o.comm_;
      coll_ = o.coll_;
      o.body_ = nullptr;
      o.comm_ = nullptr;
    }
    return *this;
  }

  ~CollRequest() { diagnose_abandoned(); }

  /// Execute the remaining schedule and complete the operation.
  /// Idempotent.
  void wait() {
    if (body_) {
      body_();
      body_ = nullptr;
    }
  }

  /// Without an async progress engine a collective only completes inside
  /// an MPI call, so test() simply runs the schedule (and returns true).
  bool test() {
    wait();
    return true;
  }

  [[nodiscard]] bool done() const noexcept { return body_ == nullptr; }

 private:
  friend CollRequest ibarrier(Comm&, net::BarrierAlgo);
  friend CollRequest ibcast(Comm&, MutView, int, net::BcastAlgo);
  friend CollRequest ireduce(Comm&, ConstView, MutView, Datatype, Op, int,
                             net::ReduceAlgo);
  friend CollRequest iallreduce(Comm&, ConstView, MutView, Datatype, Op,
                                net::AllreduceAlgo);
  friend CollRequest igather(Comm&, ConstView, MutView, int,
                             net::GatherAlgo);
  friend CollRequest iscatter(Comm&, ConstView, MutView, int,
                              net::GatherAlgo);
  friend CollRequest iallgather(Comm&, ConstView, MutView,
                                net::AllgatherAlgo);
  friend CollRequest ialltoall(Comm&, ConstView, MutView,
                               net::AlltoallAlgo);
  friend CollRequest ireduce_scatter(Comm&, ConstView, MutView, Datatype,
                                     Op, net::ReduceScatterAlgo);

  CollRequest(Comm& c, const char* coll, std::function<void()> body)
      : body_(std::move(body)), comm_(&c), coll_(coll) {}

  /// Destructor/assignment seam: a still-pending schedule means the owner
  /// dropped the handle while its peers are (or will be) blocked in the
  /// matching collective.  Reports a coll-request-leak; in strict mode
  /// additionally aborts the world so those peers wake with the real
  /// cause instead of a watchdog deadlock dump.  Defined in nbc.cpp.
  void diagnose_abandoned() noexcept;

  std::function<void()> body_;
  Comm* comm_ = nullptr;
  const char* coll_ = "";
};

[[nodiscard]] CollRequest ibarrier(
    Comm& c, net::BarrierAlgo algo = net::BarrierAlgo::kAuto);
[[nodiscard]] CollRequest ibcast(Comm& c, MutView buf, int root,
                                 net::BcastAlgo algo = net::BcastAlgo::kAuto);
[[nodiscard]] CollRequest ireduce(
    Comm& c, ConstView send, MutView recv, Datatype dt, Op op, int root,
    net::ReduceAlgo algo = net::ReduceAlgo::kAuto);
[[nodiscard]] CollRequest iallreduce(
    Comm& c, ConstView send, MutView recv, Datatype dt, Op op,
    net::AllreduceAlgo algo = net::AllreduceAlgo::kAuto);
[[nodiscard]] CollRequest igather(
    Comm& c, ConstView send, MutView recv, int root,
    net::GatherAlgo algo = net::GatherAlgo::kAuto);
[[nodiscard]] CollRequest iscatter(
    Comm& c, ConstView send, MutView recv, int root,
    net::GatherAlgo algo = net::GatherAlgo::kAuto);
[[nodiscard]] CollRequest iallgather(
    Comm& c, ConstView send, MutView recv,
    net::AllgatherAlgo algo = net::AllgatherAlgo::kAuto);
[[nodiscard]] CollRequest ialltoall(
    Comm& c, ConstView send, MutView recv,
    net::AlltoallAlgo algo = net::AlltoallAlgo::kAuto);
[[nodiscard]] CollRequest ireduce_scatter(
    Comm& c, ConstView send, MutView recv, Datatype dt, Op op,
    net::ReduceScatterAlgo algo = net::ReduceScatterAlgo::kAuto);

}  // namespace ombx::mpi
