// Error type and precondition checks for the MPI substrate.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ombx::mpi {

/// Thrown for all substrate usage errors (bad ranks, mismatched buffers,
/// truncated receives, invalid communicators, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "ombx::mpi check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace ombx::mpi

/// Precondition check that throws ombx::mpi::Error (never compiled out:
/// these guard API misuse, not internal invariants).
#define OMBX_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::ombx::mpi::detail::fail(#cond, __FILE__, __LINE__, (msg));      \
    }                                                                   \
  } while (false)
