// Error types and precondition checks for the MPI substrate.
//
// Every substrate error carries the failing world rank and communicator
// context (when known) so multi-rank failures are attributable from the
// what() string alone.  Failure-propagation errors (AbortedError and its
// DeadlockError refinement, RankKilledError) additionally identify the
// originating rank, mirroring MPI_Abort semantics.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#include "fault/abort.hpp"

namespace ombx::mpi {

namespace detail {
inline std::string locate(const std::string& what, int rank, int context) {
  if (rank < 0 && context < 0) return what;
  std::ostringstream os;
  os << "[";
  if (rank >= 0) os << "rank " << rank;
  if (context >= 0) os << (rank >= 0 ? ", " : "") << "ctx " << context;
  os << "] " << what;
  return os.str();
}
}  // namespace detail

/// Thrown for all substrate usage errors (bad ranks, mismatched buffers,
/// truncated receives, invalid communicators, ...).  `rank()` is the world
/// rank the error was raised on and `context()` the communicator context,
/// each -1 when not applicable.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, int rank = -1, int context = -1)
      : std::runtime_error(detail::locate(what, rank, context)),
        rank_(rank),
        context_(context) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int context() const noexcept { return context_; }

 private:
  int rank_;
  int context_;
};

/// A peer failed and the engine poisoned this rank's blocking operation.
/// `origin_rank()` names the rank whose failure started the abort (or
/// fault::kWatchdogOrigin when the deadlock watchdog raised it).
class AbortedError : public Error {
 public:
  explicit AbortedError(const fault::AbortInfo& info)
      : Error("aborted (origin rank " + std::to_string(info.origin_rank) +
                  "): " + info.reason,
              info.origin_rank),
        info_(info) {}

  [[nodiscard]] int origin_rank() const noexcept {
    return info_.origin_rank;
  }
  [[nodiscard]] const std::string& reason() const noexcept {
    return info_.reason;
  }
  [[nodiscard]] const fault::AbortInfo& info() const noexcept {
    return info_;
  }

 private:
  fault::AbortInfo info_;
};

/// The watchdog observed every live rank blocked with no progress; the
/// what() string carries the per-rank (context, src, tag) wait dump.
class DeadlockError : public AbortedError {
 public:
  explicit DeadlockError(const fault::AbortInfo& info) : AbortedError(info) {}
};

/// A FaultPlan kill fired: this rank's virtual clock reached its scheduled
/// death time.
class RankKilledError : public Error {
 public:
  RankKilledError(int rank, double at_time_us)
      : Error("rank killed by fault plan at t=" +
                  std::to_string(at_time_us) + "us",
              rank),
        at_time_us_(at_time_us) {}

  [[nodiscard]] double at_time_us() const noexcept { return at_time_us_; }

 private:
  double at_time_us_;
};

/// An eager message exhausted its retransmission budget on a lossy link
/// (fault::DropSpec with fail_on_exhaustion set): the payload never
/// arrives and the sender unwinds here.  `rank()` is the sending world
/// rank; dst_rank()/attempts() identify the doomed transfer.
class MessageLostError : public Error {
 public:
  MessageLostError(int src_rank, int dst_rank, int attempts, int tag)
      : Error("message to rank " + std::to_string(dst_rank) + " (tag " +
                  std::to_string(tag) + ") lost after " +
                  std::to_string(attempts) + " retransmission attempts",
              src_rank),
        dst_rank_(dst_rank),
        attempts_(attempts) {}

  [[nodiscard]] int dst_rank() const noexcept { return dst_rank_; }
  [[nodiscard]] int attempts() const noexcept { return attempts_; }

 private:
  int dst_rank_;
  int attempts_;
};

/// Throw the error form matching an AbortInfo (DeadlockError for watchdog
/// aborts, AbortedError otherwise).
[[noreturn]] inline void throw_aborted(const fault::AbortInfo& info) {
  if (info.deadlock) throw DeadlockError(info);
  throw AbortedError(info);
}

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg, int rank = -1,
                              int context = -1) {
  std::ostringstream os;
  os << "ombx::mpi check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str(), rank, context);
}
}  // namespace detail

}  // namespace ombx::mpi

/// Precondition check that throws ombx::mpi::Error (never compiled out:
/// these guard API misuse, not internal invariants).
#define OMBX_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::ombx::mpi::detail::fail(#cond, __FILE__, __LINE__, (msg));      \
    }                                                                   \
  } while (false)

/// Like OMBX_REQUIRE but attributes the failure to a world rank and
/// communicator context.
#define OMBX_REQUIRE_AT(cond, msg, rank, ctx)                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::ombx::mpi::detail::fail(#cond, __FILE__, __LINE__, (msg), (rank),  \
                                (ctx));                                    \
    }                                                                      \
  } while (false)
