#include "mpi/request.hpp"

#include "mpi/error.hpp"
#include "sched/sched.hpp"

namespace ombx::mpi {

Request Request::make_send(const Comm& c, std::shared_ptr<SyncCell> cell) {
  Request r;
  r.kind_ = Kind::kSend;
  r.comm_ = &c;
  r.cell_ = std::move(cell);
  return r;
}

Request Request::make_recv(const Comm& c, MutView v, int src, int tag) {
  Request r;
  r.kind_ = Kind::kRecv;
  r.comm_ = &c;
  r.view_ = v;
  r.src_ = src;
  r.tag_ = tag;
  return r;
}

void Request::settle_ticket() noexcept {
  if (ticket_) {
    ticket_->complete();
    ticket_.reset();
  }
}

Status Request::wait() {
  switch (kind_) {
    case Kind::kDone:
      return status_;
    case Kind::kSend:
      if (cell_) {
        comm_->engine().await_cell(comm_->world_rank(comm_->rank()),
                                   *cell_);
        cell_.reset();
      }
      settle_ticket();
      kind_ = Kind::kDone;
      return status_;
    case Kind::kRecv:
      // Settle before the dequeue so the checker's write pin is gone by
      // the time recv touches the buffer on our own behalf.
      settle_ticket();
      status_ = comm_->recv(view_, src_, tag_);
      kind_ = Kind::kDone;
      return status_;
  }
  throw Error("corrupt request state");
}

bool Request::test() {
  switch (kind_) {
    case Kind::kDone:
      return true;
    case Kind::kSend:
      if (!cell_) {
        settle_ticket();
        kind_ = Kind::kDone;
        return true;
      }
      if (!cell_->ready()) {
        // User-level poll loops (`while (!req.test())`) must not pin a
        // scheduler worker: give other fibers — including the peer this
        // request waits on — a turn.  No-op on the thread backend.
        sched::maybe_yield();
        return false;
      }
      comm_->engine().await_cell(comm_->world_rank(comm_->rank()),
                                 *cell_);
      cell_.reset();
      settle_ticket();
      kind_ = Kind::kDone;
      return true;
    case Kind::kRecv:
      // (Engine::iprobe yields on a miss, so this path is covered.)
      if (!comm_->iprobe(src_, tag_).has_value()) return false;
      settle_ticket();
      status_ = comm_->recv(view_, src_, tag_);
      kind_ = Kind::kDone;
      return true;
  }
  throw Error("corrupt request state");
}

std::vector<Status> Request::wait_all(std::span<Request> reqs) {
  std::vector<Status> out;
  out.reserve(reqs.size());
  for (Request& r : reqs) out.push_back(r.wait());
  return out;
}

}  // namespace ombx::mpi
