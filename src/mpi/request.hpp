// Non-blocking operation handles (MPI_Request analogue).
//
// Semantics: an isend is injected immediately (eager) or left pending on
// its rendezvous SyncCell (completed at wait); an irecv records its
// parameters and performs the matched receive at wait/test time.  Because
// completion *times* are computed from message timestamps, deferring the
// physical dequeue to wait() yields the same virtual time as an eagerly
// progressed receive would.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "check/checker.hpp"
#include "mpi/comm.hpp"
#include "mpi/message.hpp"

namespace ombx::mpi {

class Request {
 public:
  Request() = default;

  /// True once wait() has run (or for default-constructed requests).
  [[nodiscard]] bool done() const noexcept { return kind_ == Kind::kDone; }

  /// Block until the operation completes; returns its Status (empty status
  /// for sends).  Idempotent: a second wait returns the cached status.
  Status wait();

  /// Non-blocking completion check; completes the op when possible.
  bool test();

  /// Wait for every request, in order.  Returns one Status per request.
  static std::vector<Status> wait_all(std::span<Request> reqs);

 private:
  friend class Comm;
  enum class Kind { kDone, kSend, kRecv };

  static Request make_send(const Comm& c, std::shared_ptr<SyncCell> cell);
  static Request make_recv(const Comm& c, MutView v, int src, int tag);

  /// Marks the checker's pin/leak record complete; no-op when done.
  void settle_ticket() noexcept;

  Kind kind_ = Kind::kDone;
  const Comm* comm_ = nullptr;
  std::shared_ptr<SyncCell> cell_;  // send only (rendezvous)
  MutView view_{};                  // recv only
  int src_ = kAnySource;
  int tag_ = kAnyTag;
  Status status_{};
  /// Checker bookkeeping (null unless --check): buffer pin + leak-on-drop
  /// diagnosis.  shared_ptr because Request is copyable; the last copy to
  /// be completed or destroyed settles the ticket.
  std::shared_ptr<check::OpTicket> ticket_;
};

}  // namespace ombx::mpi
