// One-sided communication (RMA): MPI_Win_create / Put / Get / Accumulate
// with active-target fence synchronization — the operations behind OMB's
// osu_put_latency / osu_get_latency / osu_put_bw benchmarks.
//
// Implementation follows the classic MPICH fence scheme over two-sided
// messaging: operations issued during an epoch are buffered as non-blocking
// sends; fence() runs a reduce-scatter of per-target operation counts so
// every rank knows how many incoming operations to drain, services them
// (applying puts/accumulates to its window, answering get requests), then
// barriers.  All virtual-time costs emerge from the same engine the
// two-sided path uses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/comm.hpp"
#include "mpi/request.hpp"

namespace ombx::mpi {

class Win {
 public:
  /// Collective over `comm`: every rank exposes `window` (its size may
  /// differ per rank).  The window's MemSpace is honoured for transfer
  /// pricing (device windows ride the GPU links).
  Win(const Comm& comm, MutView window);

  /// Under --check, destroying a window while an epoch is still open
  /// (operations issued but never fenced) reports an rma-epoch-open
  /// violation attributed to this rank.
  ~Win();

  Win(const Win&) = delete;
  Win& operator=(const Win&) = delete;

  [[nodiscard]] int rank() const noexcept { return comm_->rank(); }
  [[nodiscard]] int size() const noexcept { return comm_->size(); }
  [[nodiscard]] std::size_t window_bytes() const noexcept {
    return window_.bytes;
  }

  /// Write `src` into `target`'s window at byte offset `target_disp`.
  /// Completes (both sides) at the next fence().
  void put(ConstView src, int target, std::size_t target_disp);

  /// Read `dst.bytes` from `target`'s window at `target_disp` into `dst`.
  /// The data is valid after the next fence().
  void get(MutView dst, int target, std::size_t target_disp);

  /// Atomic (per-epoch) inout combine into the target window:
  /// window[disp ...] = window[...] OP src.
  void accumulate(ConstView src, int target, std::size_t target_disp,
                  Datatype dt, Op op);

  /// Close the current epoch and open the next one.  Collective.
  void fence();

 private:
  enum class OpKind : std::uint8_t { kPut = 1, kGet = 2, kAccumulate = 3 };

  struct PendingGet {
    MutView dst;
    int target;
  };

  void issue(OpKind kind, ConstView payload, int target,
             std::size_t target_disp, std::size_t len, Datatype dt, Op op);
  void service_incoming(int incoming_ops);

  // The window gets its own duplicated communicator so RMA traffic can
  // never be confused with user point-to-point messages on `comm`.
  std::unique_ptr<Comm> comm_;
  MutView window_;
  std::vector<std::int64_t> ops_to_target_;  ///< per-target counts, epoch
  std::vector<Request> pending_sends_;
  std::vector<PendingGet> pending_gets_;  ///< responses we still expect
};

}  // namespace ombx::mpi
