// Internal helpers shared by the collective algorithm implementations.
#pragma once

#include <cstring>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "mpi/error.hpp"
#include "mpi/message.hpp"
#include "mpi/op.hpp"

namespace ombx::mpi::detail {

// Reserved tag band for collective traffic (separate per collective kind
// for debuggability; correctness only needs per-(ctx,src,tag) FIFO order).
inline constexpr int kTagBarrier = 0x7e000001;
inline constexpr int kTagBcast = 0x7e000002;
inline constexpr int kTagReduce = 0x7e000003;
inline constexpr int kTagAllreduce = 0x7e000004;
inline constexpr int kTagGather = 0x7e000005;
inline constexpr int kTagScatter = 0x7e000006;
inline constexpr int kTagAllgather = 0x7e000007;
inline constexpr int kTagAlltoall = 0x7e000008;
inline constexpr int kTagReduceScatter = 0x7e000009;
inline constexpr int kTagVector = 0x7e00000a;

/// Largest power of two <= n (n >= 1).
[[nodiscard]] constexpr int pow2_below(int n) noexcept {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

[[nodiscard]] constexpr bool is_pow2(int n) noexcept {
  return n > 0 && (n & (n - 1)) == 0;
}

/// Scratch buffer that respects synthetic payloads: when the parent views
/// carry no data, the scratch carries none either (data() == nullptr) but
/// still reports its logical size.
class Scratch {
 public:
  Scratch(std::size_t bytes, bool real, net::MemSpace space)
      : bytes_(bytes), space_(space) {
    if (real && bytes > 0) storage_.resize(bytes);
  }

  [[nodiscard]] std::byte* data() noexcept {
    return storage_.empty() ? nullptr : storage_.data();
  }
  [[nodiscard]] const std::byte* data() const noexcept {
    return storage_.empty() ? nullptr : storage_.data();
  }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  [[nodiscard]] ConstView cview(std::size_t off, std::size_t len) const {
    OMBX_REQUIRE(off + len <= bytes_, "scratch read out of range");
    return ConstView{data() ? data() + off : nullptr, len, space_};
  }
  [[nodiscard]] MutView mview(std::size_t off, std::size_t len) {
    OMBX_REQUIRE(off + len <= bytes_, "scratch write out of range");
    return MutView{data() ? data() + off : nullptr, len, space_};
  }
  [[nodiscard]] ConstView cview() const { return cview(0, bytes_); }
  [[nodiscard]] MutView mview() { return mview(0, bytes_); }

 private:
  std::vector<std::byte> storage_;
  std::size_t bytes_;
  net::MemSpace space_;
};

/// Sub-views that stay null for synthetic payloads.
[[nodiscard]] inline ConstView slice(ConstView v, std::size_t off,
                                     std::size_t len) {
  OMBX_REQUIRE(off + len <= v.bytes, "const view slice out of range");
  return ConstView{v.data ? v.data + off : nullptr, len, v.space};
}

[[nodiscard]] inline MutView slice(MutView v, std::size_t off,
                                   std::size_t len) {
  OMBX_REQUIRE(off + len <= v.bytes, "mut view slice out of range");
  return MutView{v.data ? v.data + off : nullptr, len, v.space};
}

[[nodiscard]] inline ConstView as_const(MutView v) {
  return ConstView{v.data, v.bytes, v.space};
}

/// memcpy that tolerates synthetic (null) endpoints.
inline void copy_bytes(MutView dst, ConstView src, std::size_t len) {
  OMBX_REQUIRE(len <= dst.bytes && len <= src.bytes,
               "copy length exceeds a view");
  if (dst.data != nullptr && src.data != nullptr && len > 0) {
    std::memcpy(dst.data, src.data, len);
  }
}

/// True when this communicator should physically move payload bytes.
[[nodiscard]] inline bool real_payload(const Comm& c, ConstView v) {
  return c.engine().payload_mode() == PayloadMode::kReal && v.data != nullptr;
}
[[nodiscard]] inline bool real_payload(const Comm& c, MutView v) {
  return c.engine().payload_mode() == PayloadMode::kReal && v.data != nullptr;
}

/// Reduce helper: inout[0..count_bytes) op= in, with flop charging.
inline void combine(Comm& c, Datatype dt, Op op, MutView inout, ConstView in,
                    std::size_t count_bytes) {
  OMBX_REQUIRE(count_bytes <= inout.bytes && count_bytes <= in.bytes,
               "reduction length exceeds a buffer view");
  const std::size_t elems = count_bytes / size_of(dt);
  OMBX_REQUIRE(elems * size_of(dt) == count_bytes,
               "reduction byte count not a multiple of the datatype size");
  const std::size_t flops = apply(
      op, dt, inout.data, in.data, elems);
  c.charge_flops(static_cast<double>(flops));
}

}  // namespace ombx::mpi::detail
