// Internal helpers shared by the collective algorithm implementations.
#pragma once

#include <cstring>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "mpi/engine.hpp"
#include "mpi/error.hpp"
#include "mpi/message.hpp"
#include "mpi/op.hpp"
#include "mpi/trace.hpp"

namespace ombx::mpi::detail {

// Reserved tag band for collective traffic (separate per collective kind
// for debuggability; correctness only needs per-(ctx,src,tag) FIFO order).
inline constexpr int kTagBarrier = 0x7e000001;
inline constexpr int kTagBcast = 0x7e000002;
inline constexpr int kTagReduce = 0x7e000003;
inline constexpr int kTagAllreduce = 0x7e000004;
inline constexpr int kTagGather = 0x7e000005;
inline constexpr int kTagScatter = 0x7e000006;
inline constexpr int kTagAllgather = 0x7e000007;
inline constexpr int kTagAlltoall = 0x7e000008;
inline constexpr int kTagReduceScatter = 0x7e000009;
inline constexpr int kTagVector = 0x7e00000a;
inline constexpr int kTagCkpt = 0x7e00000b;  ///< ckpt buddy/restore traffic

/// Largest power of two <= n (n >= 1).
[[nodiscard]] constexpr int pow2_below(int n) noexcept {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

[[nodiscard]] constexpr bool is_pow2(int n) noexcept {
  return n > 0 && (n & (n - 1)) == 0;
}

/// Scratch buffer that respects synthetic payloads: when the parent views
/// carry no data, the scratch carries none either (data() == nullptr) but
/// still reports its logical size.
class Scratch {
 public:
  Scratch(std::size_t bytes, bool real, net::MemSpace space)
      : bytes_(bytes), space_(space) {
    if (real && bytes > 0) storage_.resize(bytes);
  }

  [[nodiscard]] std::byte* data() noexcept {
    return storage_.empty() ? nullptr : storage_.data();
  }
  [[nodiscard]] const std::byte* data() const noexcept {
    return storage_.empty() ? nullptr : storage_.data();
  }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  // Range checks are phrased as `len <= bytes_ - off` (after bounding off)
  // rather than `off + len <= bytes_`, which wraps for off + len >= 2^64
  // and would accept wildly out-of-range views.
  [[nodiscard]] ConstView cview(std::size_t off, std::size_t len) const {
    OMBX_REQUIRE(off <= bytes_ && len <= bytes_ - off,
                 "scratch read out of range");
    return ConstView{data() ? data() + off : nullptr, len, space_};
  }
  [[nodiscard]] MutView mview(std::size_t off, std::size_t len) {
    OMBX_REQUIRE(off <= bytes_ && len <= bytes_ - off,
                 "scratch write out of range");
    return MutView{data() ? data() + off : nullptr, len, space_};
  }
  [[nodiscard]] ConstView cview() const { return cview(0, bytes_); }
  [[nodiscard]] MutView mview() { return mview(0, bytes_); }

 private:
  std::vector<std::byte> storage_;
  std::size_t bytes_;
  net::MemSpace space_;
};

/// Sub-views that stay null for synthetic payloads.  Same overflow-proof
/// range check as Scratch::cview above.
[[nodiscard]] inline ConstView slice(ConstView v, std::size_t off,
                                     std::size_t len) {
  OMBX_REQUIRE(off <= v.bytes && len <= v.bytes - off,
               "const view slice out of range");
  return ConstView{v.data ? v.data + off : nullptr, len, v.space};
}

[[nodiscard]] inline MutView slice(MutView v, std::size_t off,
                                   std::size_t len) {
  OMBX_REQUIRE(off <= v.bytes && len <= v.bytes - off,
               "mut view slice out of range");
  return MutView{v.data ? v.data + off : nullptr, len, v.space};
}

[[nodiscard]] inline ConstView as_const(MutView v) {
  return ConstView{v.data, v.bytes, v.space};
}

/// memcpy that tolerates synthetic (null) endpoints.
inline void copy_bytes(MutView dst, ConstView src, std::size_t len) {
  OMBX_REQUIRE(len <= dst.bytes && len <= src.bytes,
               "copy length exceeds a view");
  if (dst.data != nullptr && src.data != nullptr && len > 0) {
    std::memcpy(dst.data, src.data, len);
  }
}

/// True when this communicator should physically move payload bytes.
[[nodiscard]] inline bool real_payload(const Comm& c, ConstView v) {
  return c.engine().payload_mode() == PayloadMode::kReal && v.data != nullptr;
}
[[nodiscard]] inline bool real_payload(const Comm& c, MutView v) {
  return c.engine().payload_mode() == PayloadMode::kReal && v.data != nullptr;
}

/// Reduce helper: inout[0..count_bytes) op= in, with flop charging.
inline void combine(Comm& c, Datatype dt, Op op, MutView inout, ConstView in,
                    std::size_t count_bytes) {
  OMBX_REQUIRE(count_bytes <= inout.bytes && count_bytes <= in.bytes,
               "reduction length exceeds a buffer view");
  const std::size_t elems = count_bytes / size_of(dt);
  OMBX_REQUIRE(elems * size_of(dt) == count_bytes,
               "reduction byte count not a multiple of the datatype size");
  const std::size_t flops = apply(
      op, dt, inout.data, in.data, elems);
  c.charge_flops(static_cast<double>(flops));
}

/// Signature fields a collective entry point declares for cross-rank
/// matching under --check.  -1 means "not applicable" and is excluded
/// from comparison (rootless collectives, v-collectives whose byte counts
/// legitimately differ per rank, reduction-free ops).
struct CollMeta {
  int root = -1;
  long long bytes = -1;
  int datatype = -1;
  int op = -1;
};

/// RAII span recorder for collective attribution (see trace.hpp), and —
/// under --check — the collective-matching seam (see check/checker.hpp).
///
/// Constructed at a collective's entry point once the algorithm has been
/// resolved.  With tracing on, the destructor records one kSpan event per
/// calling rank labelled "<coll>/<algo>/<bytes>B" bracketing the virtual
/// time the collective spent on that rank; skipped when unwinding (an
/// aborted collective has no meaningful end time).  With checking on, the
/// constructor logs this rank's (epoch, kind, signature) record with the
/// epoch matcher — which throws here, at the entry point, on a strict
/// mismatch — and brackets the rank's scope stack so point-to-point
/// violations raised inside are attributed "(in <coll>)".  Neither role
/// ever touches the clock, so enabling them cannot perturb results.
class CollSpan {
 public:
  CollSpan(Comm& c, const char* coll, std::string algo, std::size_t bytes,
           CollMeta meta = {})
      : tracer_(c.engine().tracer()) {
    world_ = c.world_rank(c.rank());
    if (tracer_ != nullptr) {
      bytes_ = bytes;
      attr_ = std::string(coll) + "/" + std::move(algo) + "/" +
              std::to_string(bytes) + "B";
      engine_ = &c.engine();
      t_start_ = engine_->state(world_).clock.now();
    }
    if (check::Checker* chk = c.engine().checker()) {
      // Record first: on a strict mismatch this throws before the scope
      // is pushed, and the destructor never runs on a partially
      // constructed object — so no scope leaks.
      chk->on_collective(c.context(), c.rank(), c.size(), world_,
                         check::CollSignature{coll, meta.root, meta.bytes,
                                              meta.datatype, meta.op});
      chk->push_scope(world_, coll);
      chk_ = chk;
    }
  }

  CollSpan(const CollSpan&) = delete;
  CollSpan& operator=(const CollSpan&) = delete;

  ~CollSpan() {
    if (chk_ != nullptr) chk_->pop_scope(world_);
    if (tracer_ == nullptr || std::uncaught_exceptions() > 0) return;
    tracer_->record(TraceEvent{.rank = world_,
                               .kind = TraceKind::kSpan,
                               .t_start = t_start_,
                               .t_end = engine_->state(world_).clock.now(),
                               .peer = -1,
                               .bytes = bytes_,
                               .tag = -1,
                               .attr = std::move(attr_)});
  }

 private:
  Tracer* tracer_;
  check::Checker* chk_ = nullptr;
  Engine* engine_ = nullptr;
  int world_ = 0;
  std::size_t bytes_ = 0;
  simtime::usec_t t_start_ = 0.0;
  std::string attr_;
};

}  // namespace ombx::mpi::detail
