// Blocking collective operations over a Comm.
//
// Conventions (byte-oriented substrate):
//  * All counts and displacements are in BYTES.  A Datatype/Op pair is only
//    required by reducing collectives, where real arithmetic is performed.
//  * `allgather(send, recv)`: send holds this rank's n bytes; recv holds
//    size()*n bytes, block r at offset r*n — exactly MPI's layout.
//  * Synthetic payloads (ConstView/MutView with data == nullptr, or a World
//    in PayloadMode::kSynthetic) run the identical algorithm and charge the
//    identical virtual time, but move no bytes.
//  * Every collective is implemented on top of the same point-to-point
//    layer the p2p benchmarks use (as in MPICH/MVAPICH), so collective
//    latency curves emerge from the algorithms rather than closed forms.
#pragma once

#include <cstddef>
#include <span>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "mpi/op.hpp"
#include "net/tuning.hpp"

namespace ombx::mpi {

void barrier(Comm& c, net::BarrierAlgo algo = net::BarrierAlgo::kAuto);

/// In/out at root; out at every other rank.
void bcast(Comm& c, MutView buf, int root,
           net::BcastAlgo algo = net::BcastAlgo::kAuto);

/// send: n bytes everywhere; recv: n bytes, significant at root only (other
/// ranks may pass an empty view).
void reduce(Comm& c, ConstView send, MutView recv, Datatype dt, Op op,
            int root, net::ReduceAlgo algo = net::ReduceAlgo::kAuto);

void allreduce(Comm& c, ConstView send, MutView recv, Datatype dt, Op op,
               net::AllreduceAlgo algo = net::AllreduceAlgo::kAuto);

/// send: n bytes everywhere; recv: size()*n bytes at root.
void gather(Comm& c, ConstView send, MutView recv, int root,
            net::GatherAlgo algo = net::GatherAlgo::kAuto);

/// send: size()*n bytes at root; recv: n bytes everywhere.
void scatter(Comm& c, ConstView send, MutView recv, int root,
             net::GatherAlgo algo = net::GatherAlgo::kAuto);

/// send: n bytes everywhere; recv: size()*n bytes everywhere.
void allgather(Comm& c, ConstView send, MutView recv,
               net::AllgatherAlgo algo = net::AllgatherAlgo::kAuto);

/// send/recv: size()*n bytes; block j of send goes to rank j.
void alltoall(Comm& c, ConstView send, MutView recv,
              net::AlltoallAlgo algo = net::AlltoallAlgo::kAuto);

/// Equal-block reduce-scatter (MPI_Reduce_scatter_block): send holds
/// size()*n bytes; recv holds the n-byte reduced block this rank owns.
void reduce_scatter(
    Comm& c, ConstView send, MutView recv, Datatype dt, Op op,
    net::ReduceScatterAlgo algo = net::ReduceScatterAlgo::kAuto);

/// Inclusive prefix reduction: recv at rank r = send_0 OP ... OP send_r.
void scan(Comm& c, ConstView send, MutView recv, Datatype dt, Op op);

/// Exclusive prefix reduction: recv at rank r = send_0 OP ... OP
/// send_{r-1}; rank 0's recv is left untouched (as MPI specifies).
void exscan(Comm& c, ConstView send, MutView recv, Datatype dt, Op op);

// ---- Vector variants (per-rank byte counts + displacements) ---------------

/// counts/displs indexed by comm rank, significant at root; recv at root
/// must cover max(displs[r] + counts[r]).
void gatherv(Comm& c, ConstView send, MutView recv,
             std::span<const std::size_t> counts,
             std::span<const std::size_t> displs, int root);

void scatterv(Comm& c, ConstView send, std::span<const std::size_t> counts,
              std::span<const std::size_t> displs, MutView recv, int root);

/// counts/displs significant at every rank (they must agree).
void allgatherv(Comm& c, ConstView send, MutView recv,
                std::span<const std::size_t> counts,
                std::span<const std::size_t> displs);

void alltoallv(Comm& c, ConstView send,
               std::span<const std::size_t> scounts,
               std::span<const std::size_t> sdispls, MutView recv,
               std::span<const std::size_t> rcounts,
               std::span<const std::size_t> rdispls);

}  // namespace ombx::mpi
