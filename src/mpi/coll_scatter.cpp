#include <algorithm>

#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"

namespace ombx::mpi {

namespace {

using detail::kTagScatter;
using detail::Scratch;
using detail::slice;

void scatter_linear(Comm& c, ConstView send, MutView recv, int root) {
  const int n = c.size();
  const std::size_t b = recv.bytes;
  if (c.rank() == root) {
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      c.send(slice(send, static_cast<std::size_t>(r) * b, b), r,
             kTagScatter);
    }
    detail::copy_bytes(recv,
                       slice(send, static_cast<std::size_t>(root) * b, b),
                       b);
  } else {
    (void)c.recv(recv, root, kTagScatter);
  }
}

/// Binomial scatter: the root arranges blocks in vrank order, then each
/// node forwards the halves of its block range down the tree.
void scatter_binomial(Comm& c, ConstView send, MutView recv, int root) {
  const int n = c.size();
  const int rank = c.rank();
  const int vrank = (rank - root + n) % n;
  const std::size_t b = recv.bytes;
  const bool real =
      c.engine().payload_mode() == PayloadMode::kReal && recv.data != nullptr;

  int held;       // blocks this node is responsible for: [vrank, vrank+held)
  int top_mask;   // first mask to forward from
  Scratch store(0, false, recv.space);

  if (vrank == 0) {
    held = n;
    top_mask = detail::pow2_below(n);
    // Re-order the user's rank-ordered send buffer into vrank order.
    store = Scratch(static_cast<std::size_t>(n) * b, real, recv.space);
    for (int v = 0; v < n; ++v) {
      const int r = (v + root) % n;
      detail::copy_bytes(store.mview(static_cast<std::size_t>(v) * b, b),
                         slice(send, static_cast<std::size_t>(r) * b, b), b);
    }
  } else {
    int lsb = 1;
    while (!(vrank & lsb)) lsb <<= 1;
    held = std::min(lsb, n - vrank);
    top_mask = lsb >> 1;
    store = Scratch(static_cast<std::size_t>(held) * b, real, recv.space);
    const int parent = ((vrank - lsb) + root) % n;
    (void)c.recv(store.mview(), parent, kTagScatter);
  }

  for (int mask = top_mask; mask > 0; mask >>= 1) {
    const int child_v = vrank + mask;
    if (child_v < n) {
      const int child_held = std::min(mask, n - child_v);
      const int child = (child_v + root) % n;
      // Child's blocks sit at offset (child_v - vrank) within our range.
      c.send(store.cview(static_cast<std::size_t>(child_v - vrank) * b,
                         static_cast<std::size_t>(child_held) * b),
             child, kTagScatter);
      held -= child_held;
    }
  }
  OMBX_REQUIRE(held == 1, "scatter tree accounting broke");
  detail::copy_bytes(recv, store.cview(0, b), b);
}

}  // namespace

void scatter(Comm& c, ConstView send, MutView recv, int root,
             net::GatherAlgo algo) {
  OMBX_REQUIRE(root >= 0 && root < c.size(), "scatter root out of range");
  if (c.rank() == root) {
    OMBX_REQUIRE(send.bytes >=
                     static_cast<std::size_t>(c.size()) * recv.bytes,
                 "scatter send buffer too small");
  }
  if (c.size() == 1) {
    detail::copy_bytes(recv, send, recv.bytes);
    return;
  }
  if (algo == net::GatherAlgo::kAuto) algo = c.net().tuning().gather;
  if (algo == net::GatherAlgo::kAuto) algo = net::GatherAlgo::kBinomial;
  detail::CollSpan span(
      c, "scatter", net::to_string(algo), recv.bytes,
      detail::CollMeta{.root = root,
                       .bytes = static_cast<long long>(recv.bytes)});
  switch (algo) {
    case net::GatherAlgo::kLinear:
      scatter_linear(c, send, recv, root);
      break;
    case net::GatherAlgo::kAuto:
    case net::GatherAlgo::kBinomial:
      scatter_binomial(c, send, recv, root);
      break;
  }
}

}  // namespace ombx::mpi
