// Deterministic pseudo-random number generation.
//
// Everything in OMB-X that needs randomness (dataset synthesis, buffer fill
// patterns, k-means init) goes through SplitMix64/Xoshiro256** seeded from
// explicit constants, so two runs of any benchmark are bit-identical.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ombx::simtime {

/// SplitMix64: used to expand a single seed into a full xoshiro state.
/// Reference: Sebastiano Vigna, public-domain implementation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, deterministic generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation; the tiny modulo bias
    // of the plain multiply-shift is irrelevant for workload synthesis but
    // we reject anyway to keep property tests exact.
    const std::uint64_t threshold = (-n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      const __uint128_t m = static_cast<__uint128_t>(r) * n;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Standard normal via Marsaglia polar method (deterministic given seed).
  double normal() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  // Cached second deviate from the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ombx::simtime
