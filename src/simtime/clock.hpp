// Virtual-time clock used by every simulated MPI rank.
//
// All of OMB-X runs in *virtual time*: each rank owns a SimClock whose unit
// is microseconds (double).  Communication and compute charge deterministic
// costs to the clock, so a benchmark's reported latency is a pure function
// of the cost models and the algorithm — independent of host scheduling.
#pragma once

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>

namespace ombx::simtime {

/// Canonical time unit across the project: microseconds.
using usec_t = double;

/// Per-rank virtual clock.  Monotone non-decreasing by construction.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(usec_t start) noexcept : now_(start) {}

  /// Current virtual time in microseconds since rank start.
  [[nodiscard]] usec_t now() const noexcept { return now_; }

  /// Charge a non-negative duration to this clock.
  void advance(usec_t delta) noexcept {
    assert(delta >= 0.0);
    now_ += delta;
  }

  /// Move the clock forward to `t` if `t` is in the future; otherwise no-op.
  /// Returns the wait time charged (0 if `t` was already in the past).
  usec_t advance_to(usec_t t) noexcept {
    const usec_t wait = std::max(0.0, t - now_);
    now_ += wait;
    return wait;
  }

  void reset(usec_t t = 0.0) noexcept { now_ = t; }

 private:
  usec_t now_ = 0.0;
};

/// Wall-clock stopwatch (host time).  Used by the ML drivers to report the
/// real execution time of the physically executed (scaled-down) kernels
/// alongside the virtual-time projection, and by tests that exercise the
/// real shared-memory transport path.
class WallTimer {
 public:
  WallTimer() : start_(clock_t::now()) {}

  void restart() { start_ = clock_t::now(); }

  [[nodiscard]] usec_t elapsed_us() const {
    return std::chrono::duration<double, std::micro>(clock_t::now() - start_)
        .count();
  }

 private:
  using clock_t = std::chrono::steady_clock;
  clock_t::time_point start_;
};

/// Convenience conversions for printing.
[[nodiscard]] constexpr double us_to_ms(usec_t us) noexcept { return us / 1e3; }
[[nodiscard]] constexpr double us_to_s(usec_t us) noexcept { return us / 1e6; }

}  // namespace ombx::simtime
