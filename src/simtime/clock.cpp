#include "simtime/clock.hpp"

// Header-only today; the TU anchors the library target and keeps room for
// future out-of-line additions (e.g. tracing hooks) without touching every
// includer.
namespace ombx::simtime {}
