// Deterministic compute-cost accounting.
//
// ML kernels *execute* their arithmetic for correctness, but the virtual
// time they charge comes from analytic work counters (flops, bytes moved,
// comparisons) priced by a per-cluster ComputeModel.  This is what lets a
// 1-core host reproduce a 224-core speedup curve: the partitioning and the
// communication are real, only the per-core throughput is modelled.
#pragma once

#include <cstdint>

#include "simtime/clock.hpp"

namespace ombx::simtime {

/// Prices abstract work units in virtual microseconds.
/// Throughputs are per *core* (one MPI rank pinned per core, as in the
/// paper's experiments).
struct ComputeModel {
  /// Sustained scalar/SIMD floating-point throughput, flops per microsecond.
  double flops_per_us = 4000.0;  // 4 GFLOP/s per core: conservative scalar

  /// Sustained memory-touch throughput for streaming byte operations
  /// (serialization, buffer fills), bytes per microsecond.
  double bytes_per_us = 8000.0;  // 8 GB/s per core

  /// Fixed cost of entering a modelled foreign-runtime call (used by the
  /// pylayer on top of this; kept here so the GPU layer can share it).
  usec_t call_overhead_us = 0.0;

  [[nodiscard]] usec_t flop_time(double flops) const noexcept {
    return flops / flops_per_us;
  }
  [[nodiscard]] usec_t byte_time(double bytes) const noexcept {
    return bytes / bytes_per_us;
  }
};

/// Accumulates work performed by one rank; converted to virtual time by a
/// ComputeModel.  Separating "count" from "price" lets ablation benches
/// re-price identical executions under different machine models.
class WorkCounter {
 public:
  void add_flops(double n) noexcept { flops_ += n; }
  void add_bytes(double n) noexcept { bytes_ += n; }
  void reset() noexcept { flops_ = bytes_ = 0.0; }

  [[nodiscard]] double flops() const noexcept { return flops_; }
  [[nodiscard]] double bytes() const noexcept { return bytes_; }

  [[nodiscard]] usec_t priced(const ComputeModel& m) const noexcept {
    return m.flop_time(flops_) + m.byte_time(bytes_);
  }

 private:
  double flops_ = 0.0;
  double bytes_ = 0.0;
};

}  // namespace ombx::simtime
