#include "simtime/rng.hpp"

#include <cmath>

namespace ombx::simtime {

double Xoshiro256::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double scale = std::sqrt(-2.0 * std::log(s) / s);
      cached_normal_ = v * scale;
      has_cached_normal_ = true;
      return u * scale;
    }
  }
}

}  // namespace ombx::simtime
