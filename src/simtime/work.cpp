#include "simtime/work.hpp"

namespace ombx::simtime {}
