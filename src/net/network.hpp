// NetworkModel: resolves rank pairs to link classes and prices transfers.
//
// This is the single authority the MPI engine consults for "how long does
// an n-byte message from rank a to rank b take".  It folds together the
// cluster's link models, the MPI library tuning (thresholds, deltas) and
// the job geometry (ppn -> contention).
#pragma once

#include <cstddef>
#include <vector>

#include "net/cluster.hpp"
#include "net/topology.hpp"
#include "net/tuning.hpp"

namespace ombx::net {

/// Which address space a communication buffer lives in.
enum class MemSpace { kHost, kDevice };

/// The protocol the engine must use for a given message.
enum class Protocol { kEager, kRendezvous };

class NetworkModel {
 public:
  /// `ppn` is processes-per-node for the job; contention factors derive
  /// from it.  Throws if the geometry does not fit the cluster.
  NetworkModel(const ClusterSpec& spec, const MpiTuning& tuning, int ppn);

  [[nodiscard]] const ClusterSpec& cluster() const noexcept { return spec_; }
  [[nodiscard]] const MpiTuning& tuning() const noexcept { return tuning_; }
  [[nodiscard]] const RankMapper& mapper() const noexcept { return mapper_; }
  [[nodiscard]] int ppn() const noexcept { return mapper_.ppn(); }

  [[nodiscard]] LinkClass link_class(int rank_a, int rank_b,
                                     MemSpace space) const;

  /// Wire time of one n-byte message between two ranks (startup + n/bw),
  /// with library deltas and job contention applied.
  [[nodiscard]] usec_t transfer_us(int src, int dst, std::size_t bytes,
                                   MemSpace space) const;

  // Pricing with a pre-resolved link class.  The engine's per-message hot
  // path resolves (src, dst, space) once and reuses the class across every
  // cost query; each overload computes the exact same arithmetic as its
  // rank-pair counterpart, so virtual-time results are bit-identical.
  [[nodiscard]] usec_t transfer_us(LinkClass c, std::size_t bytes) const;
  [[nodiscard]] usec_t sender_busy_us(LinkClass c, std::size_t bytes) const;
  [[nodiscard]] usec_t nic_gap_us(LinkClass c, std::size_t bytes) const;
  [[nodiscard]] Protocol protocol(LinkClass c, std::size_t bytes) const;
  [[nodiscard]] usec_t perturbed_transfer_us(LinkClass c, std::size_t bytes,
                                             double alpha_factor,
                                             double beta_factor) const;

  /// Startup-only component (used for handshakes and zero-byte probes).
  [[nodiscard]] usec_t alpha_us(int src, int dst, MemSpace space) const;

  /// Wire time with the link's alpha (startup) and beta (per-byte)
  /// components independently scaled — the pricing primitive behind
  /// fault-injected link-degradation windows.  Factors of 1.0 reproduce
  /// transfer_us exactly.
  [[nodiscard]] usec_t perturbed_transfer_us(int src, int dst,
                                             std::size_t bytes,
                                             MemSpace space,
                                             double alpha_factor,
                                             double beta_factor) const;

  /// Time the *sender* is occupied injecting the message (full transfer
  /// for CPU-driven shm copies; injection overhead only when a NIC DMAs).
  [[nodiscard]] usec_t sender_busy_us(int src, int dst, std::size_t bytes,
                                      MemSpace space) const;

  /// NIC serialization time: the gap before the sender's NIC can start the
  /// next message (bytes * beta on fabric links, 0 on CPU-driven links
  /// where sender_busy already covers it).
  [[nodiscard]] usec_t nic_gap_us(int src, int dst, std::size_t bytes,
                                  MemSpace space) const;

  [[nodiscard]] Protocol protocol(int src, int dst, std::size_t bytes,
                                  MemSpace space) const;

  [[nodiscard]] usec_t rendezvous_handshake_us() const noexcept {
    return tuning_.rendezvous_handshake_us;
  }
  [[nodiscard]] usec_t send_overhead_us() const noexcept {
    return tuning_.send_overhead_us;
  }

  /// Full-subscription slowdown on local compute/copy work when the job
  /// runs THREAD_MULTIPLE (mpi4py default) on saturated nodes; 1.0 when
  /// the condition does not apply.
  [[nodiscard]] double oversubscription_factor(ThreadLevel level) const;

  /// Memcpy-style local copy cost on this cluster (pack/unpack, self-send).
  [[nodiscard]] usec_t local_copy_us(std::size_t bytes) const;

 private:
  [[nodiscard]] const LinkModel& model_for(LinkClass c) const;
  [[nodiscard]] double contention_for(LinkClass c) const noexcept;

  ClusterSpec spec_;
  MpiTuning tuning_;
  RankMapper mapper_;
  double nic_contention_ = 1.0;
  double mem_contention_ = 1.0;
  /// Placement of every rank the cluster can host, computed once: rank
  /// placement sits under every per-message cost query, and the divisions
  /// in RankMapper::place dominate the pure-integer part of the hot path.
  std::vector<Placement> placements_;
};

}  // namespace ombx::net
