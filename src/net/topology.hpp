// Cluster topology and rank placement.
//
// Ranks are placed block-wise: ranks [0, ppn) on node 0, [ppn, 2*ppn) on
// node 1, and so on — matching how the paper launches its jobs (mpirun with
// consecutive ranks filling each node).  Within a node, ranks fill socket 0
// first, then socket 1 (compact pinning).
#pragma once

#include <cstddef>
#include <stdexcept>

namespace ombx::net {

/// Static description of a cluster's node layout.
struct Topology {
  int nodes = 1;
  int sockets_per_node = 2;
  int cores_per_socket = 28;
  int gpus_per_node = 0;

  [[nodiscard]] int cores_per_node() const noexcept {
    return sockets_per_node * cores_per_socket;
  }
  [[nodiscard]] int total_cores() const noexcept {
    return nodes * cores_per_node();
  }
};

/// Where one rank lives.
struct Placement {
  int node = 0;
  int socket = 0;
  int core = 0;  ///< core index within the socket
};

/// Maps ranks to placements for a given processes-per-node count.
class RankMapper {
 public:
  RankMapper(const Topology& topo, int ppn) : topo_(topo), ppn_(ppn) {
    if (ppn <= 0) throw std::invalid_argument("ppn must be positive");
    if (ppn > topo.cores_per_node()) {
      throw std::invalid_argument("ppn exceeds cores per node");
    }
  }

  [[nodiscard]] Placement place(int rank) const {
    if (rank < 0) throw std::invalid_argument("negative rank");
    Placement p;
    p.node = rank / ppn_;
    const int local = rank % ppn_;
    p.socket = local / topo_.cores_per_socket;
    p.core = local % topo_.cores_per_socket;
    if (p.node >= topo_.nodes) {
      throw std::invalid_argument("rank does not fit on the cluster");
    }
    return p;
  }

  [[nodiscard]] int ppn() const noexcept { return ppn_; }
  [[nodiscard]] int max_ranks() const noexcept { return topo_.nodes * ppn_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

 private:
  Topology topo_;
  int ppn_;
};

}  // namespace ombx::net
