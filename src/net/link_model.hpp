// Piecewise-linear Hockney link cost models.
//
// A message of n bytes on a link costs alpha + n * beta, where (alpha, beta)
// depend on the size segment n falls in.  Real MPI latency curves are
// piecewise (eager vs rendezvous protocol, cache-size plateaus), which is
// why a single (alpha, beta) pair cannot reproduce the paper's figures; a
// small number of calibrated segments can.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <limits>
#include <string>
#include <vector>

#include "simtime/clock.hpp"

namespace ombx::net {

using simtime::usec_t;

/// One segment of a piecewise Hockney model, valid for message sizes up to
/// and including `limit_bytes`.
struct LinkSegment {
  std::size_t limit_bytes;  ///< inclusive upper bound of this segment
  usec_t alpha_us;          ///< startup latency
  double us_per_byte;       ///< inverse bandwidth (beta)
};

/// Piecewise-linear transfer-time model for one link class.
class LinkModel {
 public:
  LinkModel() = default;
  LinkModel(std::initializer_list<LinkSegment> segs);

  /// Time for a single n-byte message to traverse the link.
  [[nodiscard]] usec_t transfer_us(std::size_t bytes) const noexcept;

  /// Effective bandwidth in MB/s for an n-byte message (OSU convention:
  /// 1 MB = 1e6 bytes).
  [[nodiscard]] double bandwidth_mbps(std::size_t bytes) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }
  [[nodiscard]] const std::vector<LinkSegment>& segments() const noexcept {
    return segments_;
  }

  /// Returns a copy with every beta multiplied by `factor` (contention
  /// scaling under full subscription) and alphas left intact.
  [[nodiscard]] LinkModel scaled_beta(double factor) const;

  /// Returns a copy with every alpha shifted by `delta_us` (library tuning
  /// differences, e.g. Intel MPI vs MVAPICH2).
  [[nodiscard]] LinkModel shifted_alpha(usec_t delta_us) const;

 private:
  std::vector<LinkSegment> segments_;  // sorted ascending by limit_bytes
};

/// Classes of communication channels inside a cluster.
enum class LinkClass {
  kSelf,         ///< rank to itself (memcpy)
  kIntraSocket,  ///< shared memory, same socket
  kInterSocket,  ///< shared memory, across sockets (UPI/QPI hop)
  kInterNode,    ///< network fabric (IB HDR, Omni-Path, ...)
  kGpuIntraNode, ///< GPU-GPU within a node (not exercised: 1 GPU/node)
  kGpuInterNode, ///< GPU-GPU across nodes (GPUDirect RDMA path)
};

[[nodiscard]] std::string to_string(LinkClass c);

}  // namespace ombx::net
