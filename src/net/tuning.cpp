#include "net/tuning.hpp"

namespace ombx::net {

std::string to_string(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kAuto: return "auto";
    case AllreduceAlgo::kRecursiveDoubling: return "recursive_doubling";
    case AllreduceAlgo::kRing: return "ring";
    case AllreduceAlgo::kReduceBcast: return "reduce_bcast";
  }
  return "unknown";
}

std::string to_string(AllgatherAlgo a) {
  switch (a) {
    case AllgatherAlgo::kAuto: return "auto";
    case AllgatherAlgo::kRecursiveDoubling: return "recursive_doubling";
    case AllgatherAlgo::kBruck: return "bruck";
    case AllgatherAlgo::kRing: return "ring";
  }
  return "unknown";
}

std::string to_string(BcastAlgo a) {
  switch (a) {
    case BcastAlgo::kAuto: return "auto";
    case BcastAlgo::kBinomial: return "binomial";
    case BcastAlgo::kScatterAllgather: return "scatter_allgather";
    case BcastAlgo::kLinear: return "linear";
  }
  return "unknown";
}

std::string to_string(ReduceAlgo a) {
  switch (a) {
    case ReduceAlgo::kAuto: return "auto";
    case ReduceAlgo::kBinomial: return "binomial";
    case ReduceAlgo::kLinear: return "linear";
  }
  return "unknown";
}

std::string to_string(GatherAlgo a) {
  switch (a) {
    case GatherAlgo::kAuto: return "auto";
    case GatherAlgo::kBinomial: return "binomial";
    case GatherAlgo::kLinear: return "linear";
  }
  return "unknown";
}

std::string to_string(AlltoallAlgo a) {
  switch (a) {
    case AlltoallAlgo::kAuto: return "auto";
    case AlltoallAlgo::kPairwise: return "pairwise";
    case AlltoallAlgo::kLinear: return "linear";
  }
  return "unknown";
}

std::string to_string(ReduceScatterAlgo a) {
  switch (a) {
    case ReduceScatterAlgo::kAuto: return "auto";
    case ReduceScatterAlgo::kRecursiveHalving: return "recursive_halving";
    case ReduceScatterAlgo::kPairwise: return "pairwise";
  }
  return "unknown";
}

std::string to_string(BarrierAlgo a) {
  switch (a) {
    case BarrierAlgo::kAuto: return "auto";
    case BarrierAlgo::kDissemination: return "dissemination";
    case BarrierAlgo::kBinomial: return "binomial";
  }
  return "unknown";
}

MpiTuning MpiTuning::mvapich2() {
  MpiTuning t;
  t.name = "mvapich2-2.3.6";
  t.eager_threshold_intra = 16 * 1024;
  t.eager_threshold_inter = 64 * 1024;
  t.rendezvous_handshake_us = 1.0;
  t.send_overhead_us = 0.20;
  return t;
}

MpiTuning MpiTuning::intelmpi() {
  MpiTuning t;
  t.name = "intelmpi-19.0.9";
  t.eager_threshold_intra = 16 * 1024;
  t.eager_threshold_inter = 32 * 1024;
  // On this IB fabric Intel MPI's protocol stack carries a small constant
  // penalty and slightly worse pipelining than MVAPICH2 (Figs 28-31 report
  // a 0.36 us mean latency gap and an 856 MB/s mean bandwidth gap).
  t.send_overhead_us = 0.24;
  t.alpha_delta_us = 0.36;
  t.gap_scale = 1.22;
  return t;
}

MpiTuning MpiTuning::mvapich2_gdr() {
  MpiTuning t = mvapich2();
  t.name = "mvapich2-gdr-2.3.6";
  t.eager_threshold_gpu = 8 * 1024;
  return t;
}

}  // namespace ombx::net
