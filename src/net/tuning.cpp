#include "net/tuning.hpp"

namespace ombx::net {

MpiTuning MpiTuning::mvapich2() {
  MpiTuning t;
  t.name = "mvapich2-2.3.6";
  t.eager_threshold_intra = 16 * 1024;
  t.eager_threshold_inter = 64 * 1024;
  t.rendezvous_handshake_us = 1.0;
  t.send_overhead_us = 0.20;
  return t;
}

MpiTuning MpiTuning::intelmpi() {
  MpiTuning t;
  t.name = "intelmpi-19.0.9";
  t.eager_threshold_intra = 16 * 1024;
  t.eager_threshold_inter = 32 * 1024;
  // On this IB fabric Intel MPI's protocol stack carries a small constant
  // penalty and slightly worse pipelining than MVAPICH2 (Figs 28-31 report
  // a 0.36 us mean latency gap and an 856 MB/s mean bandwidth gap).
  t.send_overhead_us = 0.24;
  t.alpha_delta_us = 0.36;
  t.gap_scale = 1.22;
  return t;
}

MpiTuning MpiTuning::mvapich2_gdr() {
  MpiTuning t = mvapich2();
  t.name = "mvapich2-gdr-2.3.6";
  t.eager_threshold_gpu = 8 * 1024;
  return t;
}

}  // namespace ombx::net
