// Calibrated cluster descriptions.
//
// Each preset models one of the paper's testbeds with piecewise Hockney
// links.  The *baseline* (OMB-in-C) curves come from these models; the
// Python-binding overhead is layered on top by ombx::pylayer.  Calibration
// targets are the paper's reported averages (see EXPERIMENTS.md); the
// constants below were tuned against those targets by
// tests/test_calibration.cpp.
#pragma once

#include <optional>
#include <string>

#include "net/link_model.hpp"
#include "net/topology.hpp"
#include "simtime/work.hpp"

namespace ombx::net {

/// GPU-side cost model for clusters with accelerators.
struct GpuModel {
  usec_t kernel_launch_us = 3.0;  ///< CUDA kernel launch latency
  usec_t event_sync_us = 1.5;     ///< stream/event synchronization cost
  LinkModel h2d;                  ///< host-to-device copies over PCIe
  LinkModel d2h;                  ///< device-to-host copies over PCIe
  LinkModel d2d;                  ///< device-to-device within one GPU
  std::size_t device_memory_bytes = 32ULL << 30;  ///< V100: 32 GB
};

/// A complete machine description: topology, link models, compute speed.
struct ClusterSpec {
  std::string name;
  Topology topo;

  LinkModel self_copy;     ///< rank-to-itself memcpy
  LinkModel intra_socket;  ///< shm within a socket
  LinkModel inter_socket;  ///< shm across sockets
  LinkModel inter_node;    ///< the fabric (IB HDR / Omni-Path / EDR)
  LinkModel gpu_inter_node;///< GPUDirect-RDMA path (empty if no GPUs)

  simtime::ComputeModel compute;
  std::optional<GpuModel> gpu;

  /// Per-extra-rank scaling of inter-node beta when several ranks on one
  /// node share the NIC (full-subscription figures).  Sub-linear because
  /// collective schedules rarely put every rank on the wire at once.
  double nic_share_per_rank = 0.15;
  /// Per-extra-rank scaling of shm beta from memory-channel contention.
  double mem_share_per_rank = 0.02;

  /// TACC Frontera: 2 x Xeon Platinum 8280 (28c), IB HDR/HDR-100.
  static ClusterSpec frontera();
  /// Frontera's link models on a 32-node allocation — the paper-scale
  /// preset for np >= 1024 campaign sweeps (16 nodes cap out at 896
  /// ranks full-subscribed).
  static ClusterSpec frontera_large();
  /// TACC Stampede2: 2 x Xeon Platinum 8160 (24c), Omni-Path.
  static ClusterSpec stampede2();
  /// OSU RI2 CPU partition: 2 x Xeon Gold 6132 (14c), IB EDR.
  static ClusterSpec ri2();
  /// OSU RI2 GPU partition: 1 x V100 per node, Xeon E5-2680 v4, IB EDR,
  /// MVAPICH2-GDR-like GPU path.
  static ClusterSpec ri2_gpu();
};

}  // namespace ombx::net
