#include "net/network.hpp"

#include <stdexcept>

namespace ombx::net {

NetworkModel::NetworkModel(const ClusterSpec& spec, const MpiTuning& tuning,
                           int ppn)
    : spec_(spec), tuning_(tuning), mapper_(spec_.topo, ppn) {
  // Several ranks on one node sharing the NIC divide its bandwidth; memory
  // channels degrade more gently.  Both factors are per-extra-rank linear.
  nic_contention_ = 1.0 + spec_.nic_share_per_rank * (ppn - 1);
  mem_contention_ = 1.0 + spec_.mem_share_per_rank * (ppn - 1);
  placements_.reserve(static_cast<std::size_t>(mapper_.max_ranks()));
  for (int r = 0; r < mapper_.max_ranks(); ++r) {
    placements_.push_back(mapper_.place(r));
  }
}

LinkClass NetworkModel::link_class(int rank_a, int rank_b,
                                   MemSpace space) const {
  const bool cached =
      rank_a >= 0 && rank_b >= 0 &&
      static_cast<std::size_t>(rank_a) < placements_.size() &&
      static_cast<std::size_t>(rank_b) < placements_.size();
  // Out-of-range ranks fall through to place(), which throws the same
  // diagnostics it always has.
  const Placement a = cached ? placements_[static_cast<std::size_t>(rank_a)]
                             : mapper_.place(rank_a);
  const Placement b = cached ? placements_[static_cast<std::size_t>(rank_b)]
                             : mapper_.place(rank_b);
  if (space == MemSpace::kDevice) {
    if (!spec_.gpu.has_value()) {
      throw std::logic_error("device buffers on a cluster without GPUs");
    }
    return a.node == b.node ? LinkClass::kGpuIntraNode
                            : LinkClass::kGpuInterNode;
  }
  if (rank_a == rank_b) return LinkClass::kSelf;
  if (a.node != b.node) return LinkClass::kInterNode;
  return a.socket == b.socket ? LinkClass::kIntraSocket
                              : LinkClass::kInterSocket;
}

const LinkModel& NetworkModel::model_for(LinkClass c) const {
  switch (c) {
    case LinkClass::kSelf: return spec_.self_copy;
    case LinkClass::kIntraSocket: return spec_.intra_socket;
    case LinkClass::kInterSocket: return spec_.inter_socket;
    case LinkClass::kInterNode: return spec_.inter_node;
    case LinkClass::kGpuIntraNode:
      if (spec_.gpu.has_value()) return spec_.gpu->d2d;
      break;
    case LinkClass::kGpuInterNode:
      if (!spec_.gpu_inter_node.empty()) return spec_.gpu_inter_node;
      break;
  }
  throw std::logic_error("no link model for class " + to_string(c));
}

double NetworkModel::contention_for(LinkClass c) const noexcept {
  switch (c) {
    case LinkClass::kInterNode:
    case LinkClass::kGpuInterNode:
      return nic_contention_;
    case LinkClass::kIntraSocket:
    case LinkClass::kInterSocket:
      return mem_contention_;
    case LinkClass::kSelf:
    case LinkClass::kGpuIntraNode:
      return 1.0;
  }
  return 1.0;
}

usec_t NetworkModel::transfer_us(int src, int dst, std::size_t bytes,
                                 MemSpace space) const {
  return transfer_us(link_class(src, dst, space), bytes);
}

usec_t NetworkModel::transfer_us(LinkClass c, std::size_t bytes) const {
  const LinkModel& m = model_for(c);
  const usec_t base = m.transfer_us(bytes);
  const usec_t alpha = m.transfer_us(0);
  // Contention and library beta_scale stretch the bandwidth term only;
  // alpha_delta shifts the startup term.
  const usec_t stretched =
      alpha + (base - alpha) * contention_for(c) * tuning_.beta_scale;
  return stretched + tuning_.alpha_delta_us;
}

usec_t NetworkModel::alpha_us(int src, int dst, MemSpace space) const {
  const LinkModel& m = model_for(link_class(src, dst, space));
  return m.transfer_us(0) + tuning_.alpha_delta_us;
}

usec_t NetworkModel::perturbed_transfer_us(int src, int dst,
                                           std::size_t bytes, MemSpace space,
                                           double alpha_factor,
                                           double beta_factor) const {
  return perturbed_transfer_us(link_class(src, dst, space), bytes,
                               alpha_factor, beta_factor);
}

usec_t NetworkModel::perturbed_transfer_us(LinkClass c, std::size_t bytes,
                                           double alpha_factor,
                                           double beta_factor) const {
  const usec_t alpha = model_for(c).transfer_us(0) + tuning_.alpha_delta_us;
  const usec_t full = transfer_us(c, bytes);
  return alpha * alpha_factor + (full - alpha) * beta_factor;
}

usec_t NetworkModel::sender_busy_us(int src, int dst, std::size_t bytes,
                                    MemSpace space) const {
  return sender_busy_us(link_class(src, dst, space), bytes);
}

usec_t NetworkModel::sender_busy_us(LinkClass c, std::size_t bytes) const {
  switch (c) {
    case LinkClass::kSelf:
    case LinkClass::kIntraSocket:
    case LinkClass::kInterSocket:
      // Shared-memory transports are CPU-driven: the sender's core performs
      // the copy, so it is busy for the whole transfer.
      return transfer_us(c, bytes);
    case LinkClass::kInterNode:
    case LinkClass::kGpuIntraNode:
    case LinkClass::kGpuInterNode:
      // DMA engines move the data; the sender only pays injection overhead.
      return tuning_.send_overhead_us;
  }
  return tuning_.send_overhead_us;
}

usec_t NetworkModel::nic_gap_us(int src, int dst, std::size_t bytes,
                                MemSpace space) const {
  return nic_gap_us(link_class(src, dst, space), bytes);
}

usec_t NetworkModel::nic_gap_us(LinkClass c, std::size_t bytes) const {
  switch (c) {
    case LinkClass::kInterNode:
    case LinkClass::kGpuInterNode: {
      const LinkModel& m = model_for(c);
      const usec_t serialization = m.transfer_us(bytes) - m.transfer_us(0);
      return serialization * contention_for(c) * tuning_.beta_scale *
             tuning_.gap_scale;
    }
    default:
      return 0.0;  // covered by sender_busy for CPU-driven links
  }
}

Protocol NetworkModel::protocol(int src, int dst, std::size_t bytes,
                                MemSpace space) const {
  return protocol(link_class(src, dst, space), bytes);
}

Protocol NetworkModel::protocol(LinkClass c, std::size_t bytes) const {
  std::size_t threshold = tuning_.eager_threshold_intra;
  switch (c) {
    case LinkClass::kInterNode:
      threshold = tuning_.eager_threshold_inter;
      break;
    case LinkClass::kGpuIntraNode:
    case LinkClass::kGpuInterNode:
      threshold = tuning_.eager_threshold_gpu;
      break;
    default:
      break;
  }
  return bytes <= threshold ? Protocol::kEager : Protocol::kRendezvous;
}

double NetworkModel::oversubscription_factor(ThreadLevel level) const {
  if (level != ThreadLevel::kMultiple) return 1.0;
  if (mapper_.ppn() < mapper_.topology().cores_per_node()) return 1.0;
  return tuning_.thread_multiple_oversub_factor;
}

usec_t NetworkModel::local_copy_us(std::size_t bytes) const {
  return spec_.self_copy.transfer_us(bytes);
}

}  // namespace ombx::net
