#include "net/cluster.hpp"

namespace ombx::net {

namespace {

// Inverse bandwidths expressed as us/byte for readability: gbps(x) is the
// beta of an x-GB/s channel (1 GB/s == 1000 bytes/us).
constexpr double gbps(double x) { return 1.0 / (x * 1000.0); }

constexpr std::size_t kKiB = 1024;
constexpr std::size_t kMax = ~std::size_t{0};

}  // namespace

ClusterSpec ClusterSpec::frontera() {
  ClusterSpec c;
  c.name = "frontera";
  c.topo = {.nodes = 16, .sockets_per_node = 2, .cores_per_socket = 28,
            .gpus_per_node = 0};
  c.self_copy = LinkModel{{64 * kKiB, 0.05, gbps(40.0)},
                          {kMax, 0.30, gbps(14.0)}};
  // Cascade Lake shared-memory path: sub-us small-message latency,
  // ~10 GB/s sustained copy bandwidth for large messages.
  c.intra_socket = LinkModel{{8 * kKiB, 0.22, gbps(18.0)},
                             {64 * kKiB, 0.80, gbps(14.0)},
                             {kMax, 2.60, gbps(10.0)}};
  c.inter_socket = LinkModel{{8 * kKiB, 0.38, gbps(14.0)},
                             {64 * kKiB, 1.10, gbps(11.0)},
                             {kMax, 3.20, gbps(8.5)}};
  // InfiniBand HDR-100: ~1.9 us small-message latency, ~12 GB/s peak.
  c.inter_node = LinkModel{{8 * kKiB, 1.90, gbps(9.5)},
                           {64 * kKiB, 3.20, gbps(11.0)},
                           {kMax, 5.50, gbps(12.2)}};
  c.compute = {.flops_per_us = 5200.0, .bytes_per_us = 11000.0};
  return c;
}

ClusterSpec ClusterSpec::frontera_large() {
  // Same node/socket/link models as frontera on a 32-node allocation;
  // only the fabric's reach grows, not its per-link costs.
  ClusterSpec c = frontera();
  c.name = "frontera-large";
  c.topo.nodes = 32;
  return c;
}

ClusterSpec ClusterSpec::stampede2() {
  ClusterSpec c;
  c.name = "stampede2";
  c.topo = {.nodes = 16, .sockets_per_node = 2, .cores_per_socket = 24,
            .gpus_per_node = 0};
  c.self_copy = LinkModel{{64 * kKiB, 0.05, gbps(36.0)},
                          {kMax, 0.32, gbps(12.0)}};
  c.intra_socket = LinkModel{{8 * kKiB, 0.26, gbps(16.0)},
                             {64 * kKiB, 0.90, gbps(12.0)},
                             {kMax, 2.90, gbps(8.8)}};
  c.inter_socket = LinkModel{{8 * kKiB, 0.44, gbps(12.0)},
                             {64 * kKiB, 1.30, gbps(9.5)},
                             {kMax, 3.60, gbps(7.6)}};
  // Intel Omni-Path: ~2.3 us small-message latency, ~11 GB/s peak.
  c.inter_node = LinkModel{{8 * kKiB, 2.30, gbps(8.4)},
                           {64 * kKiB, 3.80, gbps(9.8)},
                           {kMax, 6.20, gbps(11.0)}};
  c.compute = {.flops_per_us = 4600.0, .bytes_per_us = 9500.0};
  return c;
}

ClusterSpec ClusterSpec::ri2() {
  ClusterSpec c;
  c.name = "ri2";
  c.topo = {.nodes = 8, .sockets_per_node = 2, .cores_per_socket = 14,
            .gpus_per_node = 0};
  c.self_copy = LinkModel{{64 * kKiB, 0.06, gbps(32.0)},
                          {kMax, 0.36, gbps(11.0)}};
  c.intra_socket = LinkModel{{8 * kKiB, 0.28, gbps(15.0)},
                             {64 * kKiB, 1.00, gbps(11.5)},
                             {kMax, 3.10, gbps(8.2)}};
  c.inter_socket = LinkModel{{8 * kKiB, 0.48, gbps(11.0)},
                             {64 * kKiB, 1.40, gbps(9.0)},
                             {kMax, 3.90, gbps(7.0)}};
  // Mellanox EDR (SB7790/SB7800): ~1.8 us small, ~10.5 GB/s peak.
  c.inter_node = LinkModel{{8 * kKiB, 1.80, gbps(8.8)},
                           {64 * kKiB, 3.10, gbps(9.6)},
                           {kMax, 5.20, gbps(10.5)}};
  c.compute = {.flops_per_us = 3800.0, .bytes_per_us = 8500.0};
  return c;
}

ClusterSpec ClusterSpec::ri2_gpu() {
  ClusterSpec c = ri2();
  c.name = "ri2-gpu";
  c.topo = {.nodes = 8, .sockets_per_node = 2, .cores_per_socket = 14,
            .gpus_per_node = 1};
  // MVAPICH2-GDR GPUDirect path between V100s on different nodes:
  // higher startup than host (GPU doorbell + GDR setup), ~8.5 GB/s peak.
  c.gpu_inter_node = LinkModel{{8 * kKiB, 4.40, gbps(5.2)},
                               {64 * kKiB, 7.00, gbps(7.0)},
                               {kMax, 10.50, gbps(8.5)}};
  GpuModel g;
  g.kernel_launch_us = 3.2;
  g.event_sync_us = 1.4;
  g.h2d = LinkModel{{64 * kKiB, 7.0, gbps(9.0)}, {kMax, 10.0, gbps(11.5)}};
  g.d2h = LinkModel{{64 * kKiB, 6.5, gbps(9.5)}, {kMax, 9.5, gbps(12.0)}};
  g.d2d = LinkModel{{64 * kKiB, 4.0, gbps(250.0)}, {kMax, 5.5, gbps(700.0)}};
  c.gpu = g;
  return c;
}

}  // namespace ombx::net
