// MPI-library tuning presets.
//
// The paper's "generality" experiment (Figs 28-31) runs OMB-Py under two
// MPI libraries (MVAPICH2 2.3.6 and Intel MPI 19.0.9) and observes small
// systematic differences.  We model a library as a set of protocol
// thresholds, collective-algorithm selection policy, and small additive /
// multiplicative deltas on the fabric model (a library cannot change the
// wire, but it changes protocol overheads and pipelining efficiency).
#pragma once

#include <cstddef>
#include <string>

#include "net/link_model.hpp"

namespace ombx::net {

/// Collective algorithm identifiers (subset of what MPICH/MVAPICH expose).
enum class AllreduceAlgo { kAuto, kRecursiveDoubling, kRing, kReduceBcast };
enum class AllgatherAlgo { kAuto, kRecursiveDoubling, kBruck, kRing };
enum class BcastAlgo { kAuto, kBinomial, kScatterAllgather, kLinear };
enum class ReduceAlgo { kAuto, kBinomial, kLinear };
enum class GatherAlgo { kAuto, kBinomial, kLinear };
enum class AlltoallAlgo { kAuto, kPairwise, kLinear };
enum class ReduceScatterAlgo { kAuto, kRecursiveHalving, kPairwise };
enum class BarrierAlgo { kAuto, kDissemination, kBinomial };

// Stable lowercase names for trace attribution and reports ("auto" means
// the MPICH-like heuristic had not been resolved yet; collectives that
// record spans resolve the algorithm first and never emit it).
[[nodiscard]] std::string to_string(AllreduceAlgo a);
[[nodiscard]] std::string to_string(AllgatherAlgo a);
[[nodiscard]] std::string to_string(BcastAlgo a);
[[nodiscard]] std::string to_string(ReduceAlgo a);
[[nodiscard]] std::string to_string(GatherAlgo a);
[[nodiscard]] std::string to_string(AlltoallAlgo a);
[[nodiscard]] std::string to_string(ReduceScatterAlgo a);
[[nodiscard]] std::string to_string(BarrierAlgo a);

/// How the MPI library was initialized; mpi4py defaults to THREAD_MULTIPLE
/// while osu_latency uses THREAD_SINGLE — the paper attributes the 56-ppn
/// Allreduce degradation to exactly this difference.
enum class ThreadLevel { kSingle, kMultiple };

struct MpiTuning {
  std::string name;

  /// Eager -> rendezvous switch per channel kind.
  std::size_t eager_threshold_intra = 16 * 1024;
  std::size_t eager_threshold_inter = 64 * 1024;
  std::size_t eager_threshold_gpu = 8 * 1024;

  /// Extra startup cost of the rendezvous handshake (RTS/CTS round-trip
  /// folded into one constant; charged once per rendezvous message).
  usec_t rendezvous_handshake_us = 1.0;

  /// CPU-side per-message injection overhead (LogP "o"), charged to the
  /// sender for eager inter-node messages.
  usec_t send_overhead_us = 0.20;

  /// Additive latency delta and multiplicative bandwidth factor applied to
  /// the fabric model: models protocol-stack differences across libraries.
  usec_t alpha_delta_us = 0.0;
  double beta_scale = 1.0;
  /// Extra scaling of the NIC serialization gap only: affects windowed
  /// (pipelined) bandwidth without touching single-message latency —
  /// how Intel MPI can trail MVAPICH2 by ~850 MB/s while staying within
  /// ~0.4 us on latency (paper Figs 28-31).
  double gap_scale = 1.0;

  /// Collective algorithm selection (kAuto = MPICH-like heuristics).
  AllreduceAlgo allreduce = AllreduceAlgo::kAuto;
  AllgatherAlgo allgather = AllgatherAlgo::kAuto;
  BcastAlgo bcast = BcastAlgo::kAuto;
  ReduceAlgo reduce = ReduceAlgo::kAuto;
  GatherAlgo gather = GatherAlgo::kAuto;
  AlltoallAlgo alltoall = AlltoallAlgo::kAuto;
  ReduceScatterAlgo reduce_scatter = ReduceScatterAlgo::kAuto;
  BarrierAlgo barrier = BarrierAlgo::kAuto;

  ThreadLevel thread_level = ThreadLevel::kSingle;

  /// Oversubscription slowdown applied to local compute/copy work when the
  /// library runs THREAD_MULTIPLE on a fully subscribed node (the progress
  /// thread steals cycles from every rank on the node).
  double thread_multiple_oversub_factor = 14.0;

  static MpiTuning mvapich2();
  static MpiTuning intelmpi();
  /// MVAPICH2-GDR (GPU-aware) flavour.
  static MpiTuning mvapich2_gdr();
};

}  // namespace ombx::net
