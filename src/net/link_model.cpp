#include "net/link_model.hpp"

#include <algorithm>
#include <cassert>

namespace ombx::net {

LinkModel::LinkModel(std::initializer_list<LinkSegment> segs)
    : segments_(segs) {
  assert(std::is_sorted(segments_.begin(), segments_.end(),
                        [](const LinkSegment& a, const LinkSegment& b) {
                          return a.limit_bytes < b.limit_bytes;
                        }));
  assert(!segments_.empty());
  // The final segment must cover every message size.
  segments_.back().limit_bytes = std::numeric_limits<std::size_t>::max();
}

usec_t LinkModel::transfer_us(std::size_t bytes) const noexcept {
  assert(!segments_.empty());
  for (const LinkSegment& s : segments_) {
    if (bytes <= s.limit_bytes) {
      return s.alpha_us + static_cast<double>(bytes) * s.us_per_byte;
    }
  }
  // Unreachable: constructor forces the last segment to cover SIZE_MAX.
  const LinkSegment& s = segments_.back();
  return s.alpha_us + static_cast<double>(bytes) * s.us_per_byte;
}

double LinkModel::bandwidth_mbps(std::size_t bytes) const noexcept {
  const usec_t t = transfer_us(bytes);
  if (t <= 0.0) return 0.0;
  return static_cast<double>(bytes) / t;  // B/us == MB/s (1 MB = 1e6 B)
}

LinkModel LinkModel::scaled_beta(double factor) const {
  LinkModel out = *this;
  for (LinkSegment& s : out.segments_) s.us_per_byte *= factor;
  return out;
}

LinkModel LinkModel::shifted_alpha(usec_t delta_us) const {
  LinkModel out = *this;
  for (LinkSegment& s : out.segments_) {
    s.alpha_us = std::max(0.0, s.alpha_us + delta_us);
  }
  return out;
}

std::string to_string(LinkClass c) {
  switch (c) {
    case LinkClass::kSelf: return "self";
    case LinkClass::kIntraSocket: return "intra-socket";
    case LinkClass::kInterSocket: return "inter-socket";
    case LinkClass::kInterNode: return "inter-node";
    case LinkClass::kGpuIntraNode: return "gpu-intra-node";
    case LinkClass::kGpuInterNode: return "gpu-inter-node";
  }
  return "unknown";
}

}  // namespace ombx::net
