#include "net/topology.hpp"

namespace ombx::net {}
