#include "ml/knn.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace ombx::ml {

KnnClassifier::KnnClassifier(int k) : k_(k) {
  if (k <= 0) throw std::invalid_argument("k must be positive");
}

void KnnClassifier::fit(const Dataset& train) {
  if (train.n < k_) throw std::invalid_argument("k exceeds training size");
  train_ = train;
}

std::vector<int> KnnClassifier::predict(std::span<const float> x,
                                        int rows) const {
  if (train_.n == 0) throw std::logic_error("predict before fit");
  const int d = train_.d;
  if (static_cast<std::size_t>(rows) * static_cast<std::size_t>(d) !=
      x.size()) {
    throw std::invalid_argument("test matrix shape mismatch");
  }

  std::vector<int> out(static_cast<std::size_t>(rows));
  std::vector<std::pair<float, int>> dist(
      static_cast<std::size_t>(train_.n));

  for (int i = 0; i < rows; ++i) {
    const float* q = x.data() + static_cast<std::size_t>(i) *
                                    static_cast<std::size_t>(d);
    for (int t = 0; t < train_.n; ++t) {
      const float* r = train_.row(t);
      float acc = 0.0F;
      for (int j = 0; j < d; ++j) {
        const float diff = q[j] - r[j];
        acc += diff * diff;
      }
      dist[static_cast<std::size_t>(t)] = {acc, t};
    }
    std::partial_sort(dist.begin(), dist.begin() + k_, dist.end());
    // Majority vote among the k nearest (ties break toward the smaller
    // label, as sklearn's mode does).
    std::map<int, int> votes;
    for (int v = 0; v < k_; ++v) {
      ++votes[train_.y[static_cast<std::size_t>(dist[static_cast<std::size_t>(v)].second)]];
    }
    int best_label = votes.begin()->first;
    int best_count = votes.begin()->second;
    for (const auto& [label, count] : votes) {
      if (count > best_count) {
        best_label = label;
        best_count = count;
      }
    }
    out[static_cast<std::size_t>(i)] = best_label;
  }
  return out;
}

double KnnClassifier::score(const Dataset& test) const {
  const std::vector<int> pred =
      predict(std::span<const float>(test.x.data(), test.x.size()), test.n);
  int correct = 0;
  for (int i = 0; i < test.n; ++i) {
    if (pred[static_cast<std::size_t>(i)] == test.y[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(test.n);
}

}  // namespace ombx::ml
