#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "simtime/rng.hpp"

namespace ombx::ml {

namespace {

double sq_dist(const float* a, const float* b, int d) {
  double acc = 0.0;
  for (int j = 0; j < d; ++j) {
    const double diff = static_cast<double>(a[j]) - static_cast<double>(b[j]);
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

KmeansResult kmeans_fit(const Dataset& ds, int k, int max_iters,
                        std::uint64_t seed) {
  if (k <= 0 || k > ds.n) throw std::invalid_argument("bad k for k-means");
  if (max_iters <= 0) throw std::invalid_argument("max_iters must be > 0");
  const int d = ds.d;
  simtime::Xoshiro256 rng(seed + static_cast<std::uint64_t>(k));

  // k-means++-style seeding: first centroid uniform, the rest biased
  // toward far points (one candidate per step keeps it deterministic and
  // cheap while avoiding degenerate all-same seeds).
  std::vector<float> c(static_cast<std::size_t>(k) *
                       static_cast<std::size_t>(d));
  std::vector<double> min_d(static_cast<std::size_t>(ds.n),
                            std::numeric_limits<double>::max());
  {
    const int first = static_cast<int>(rng.below(static_cast<std::uint64_t>(ds.n)));
    std::copy_n(ds.row(first), d, c.data());
    for (int ki = 1; ki < k; ++ki) {
      // Update distances to the nearest chosen centroid.
      const float* last = c.data() + static_cast<std::size_t>(ki - 1) *
                                         static_cast<std::size_t>(d);
      int far_idx = 0;
      double far_val = -1.0;
      for (int i = 0; i < ds.n; ++i) {
        min_d[static_cast<std::size_t>(i)] =
            std::min(min_d[static_cast<std::size_t>(i)],
                     sq_dist(ds.row(i), last, d));
        // Mix distance with a deterministic jitter so duplicates split.
        const double v =
            min_d[static_cast<std::size_t>(i)] * (0.75 + 0.5 * rng.uniform());
        if (v > far_val) {
          far_val = v;
          far_idx = i;
        }
      }
      std::copy_n(ds.row(far_idx), d,
                  c.data() + static_cast<std::size_t>(ki) *
                                 static_cast<std::size_t>(d));
    }
  }

  std::vector<int> assign(static_cast<std::size_t>(ds.n), -1);
  std::vector<double> sums(static_cast<std::size_t>(k) *
                           static_cast<std::size_t>(d));
  std::vector<int> counts(static_cast<std::size_t>(k));

  KmeansResult res;
  res.inertia = 0.0;
  int iter = 0;
  for (; iter < max_iters; ++iter) {
    bool changed = false;
    res.inertia = 0.0;
    for (int i = 0; i < ds.n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int ki = 0; ki < k; ++ki) {
        const double dist = sq_dist(
            ds.row(i),
            c.data() + static_cast<std::size_t>(ki) *
                           static_cast<std::size_t>(d),
            d);
        if (dist < best_d) {
          best_d = dist;
          best = ki;
        }
      }
      res.inertia += best_d;
      if (assign[static_cast<std::size_t>(i)] != best) {
        assign[static_cast<std::size_t>(i)] = best;
        changed = true;
      }
    }
    if (!changed) break;

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (int i = 0; i < ds.n; ++i) {
      const int a = assign[static_cast<std::size_t>(i)];
      ++counts[static_cast<std::size_t>(a)];
      const float* row = ds.row(i);
      for (int j = 0; j < d; ++j) {
        sums[static_cast<std::size_t>(a) * static_cast<std::size_t>(d) +
             static_cast<std::size_t>(j)] += row[j];
      }
    }
    for (int ki = 0; ki < k; ++ki) {
      if (counts[static_cast<std::size_t>(ki)] == 0) continue;  // keep old
      for (int j = 0; j < d; ++j) {
        c[static_cast<std::size_t>(ki) * static_cast<std::size_t>(d) +
          static_cast<std::size_t>(j)] =
            static_cast<float>(sums[static_cast<std::size_t>(ki) *
                                        static_cast<std::size_t>(d) +
                                    static_cast<std::size_t>(j)] /
                               counts[static_cast<std::size_t>(ki)]);
      }
    }
  }
  res.centroids = std::move(c);
  res.iterations = iter;
  return res;
}

std::vector<double> inertia_sweep(const Dataset& ds, int k_max,
                                  int max_iters, std::uint64_t seed) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(k_max));
  for (int k = 1; k <= k_max; ++k) {
    out.push_back(kmeans_fit(ds, k, max_iters, seed).inertia);
  }
  return out;
}

std::vector<std::vector<int>> balance_k_values(int k_max, int workers) {
  if (k_max <= 0 || workers <= 0) {
    throw std::invalid_argument("k_max and workers must be positive");
  }
  std::vector<std::vector<int>> out(static_cast<std::size_t>(workers));
  std::vector<double> load(static_cast<std::size_t>(workers), 0.0);
  // LPT: place the most expensive k first, always on the least-loaded
  // worker (cost model: fitting k centroids costs ~k units).
  for (int k = k_max; k >= 1; --k) {
    const auto it = std::min_element(load.begin(), load.end());
    const auto w = static_cast<std::size_t>(it - load.begin());
    out[w].push_back(k);
    load[w] += static_cast<double>(k);
  }
  return out;
}

double kmeans_flops(double n, double d, double k, double passes) noexcept {
  // Per pass: n*k distance evaluations at (2d+1) flops plus the centroid
  // update at ~n*d.
  return passes * (n * k * (2.0 * d + 1.0) + n * d);
}

}  // namespace ombx::ml
