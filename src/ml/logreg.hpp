// Logistic regression trained by synchronous data-parallel gradient
// descent — the communication pattern (gradient Allreduce per step) behind
// distributed deep learning, which the paper's introduction motivates.
// An OMB-X extension beyond the paper's three ML benchmarks.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/distributed.hpp"
#include "net/cluster.hpp"
#include "net/tuning.hpp"

namespace ombx::ml {

class LogisticRegression {
 public:
  /// d features + intercept; weights start at zero.
  explicit LogisticRegression(int d);

  [[nodiscard]] int dim() const noexcept { return d_; }
  [[nodiscard]] std::span<const double> weights() const noexcept {
    return w_;
  }

  /// Mean negative-log-likelihood gradient over rows [begin, end) of `ds`
  /// (labels must be 0/1).  Returns a (d+1)-vector (bias last), scaled by
  /// the *local* row count so shards can be summed then normalized.
  [[nodiscard]] std::vector<double> gradient_sum(const Dataset& ds,
                                                 int begin, int end) const;

  /// w -= lr * grad_sum / total_rows.
  void apply(std::span<const double> grad_sum, int total_rows, double lr);

  /// Mean negative log-likelihood.
  [[nodiscard]] double loss(const Dataset& ds) const;
  /// Classification accuracy at threshold 0.5.
  [[nodiscard]] double accuracy(const Dataset& ds) const;

  /// Analytic flop count of gradient_sum over n rows.
  [[nodiscard]] static double gradient_flops(double n, double d) noexcept {
    // dot product + sigmoid + scatter-add per row.
    return n * (4.0 * d + 12.0);
  }

 private:
  [[nodiscard]] double margin(const float* row) const;

  int d_;
  std::vector<double> w_;  ///< d weights + bias
};

/// Configuration of the synchronous-SGD scaling benchmark.
struct SgdBenchConfig {
  // Paper-style scale (synthetic; the pattern is what matters).
  int n = 100000;
  int d = 64;
  int epochs = 50;
  double lr = 0.8;
  // Physically executed miniature.
  int exec_n = 1200;
  int exec_d = 16;
  int exec_epochs = 30;
  std::uint64_t seed = 0x56d5eed;
  /// Effective per-core gradient throughput (GFLOP/s).
  double gflops = 3.0;
};

[[nodiscard]] double sgd_sequential_s(const SgdBenchConfig& cfg);

/// Synchronous data-parallel scaling: each rank computes the gradient of
/// its shard (charged at paper scale, executed in miniature), gradients
/// are combined with a real Allreduce, every rank applies the step.
[[nodiscard]] ScalingCurve sgd_scaling(const net::ClusterSpec& cluster,
                                       const net::MpiTuning& tuning,
                                       const SgdBenchConfig& cfg,
                                       std::span<const int> proc_counts,
                                       int ppn = 28);

}  // namespace ombx::ml
