// Deterministic synthetic datasets.
//
// The paper's k-NN benchmark uses the UCI Dota2 Games Results dataset
// (102,944 instances x 116 sparse categorical features, binary labels);
// its k-means benchmark uses a synthetic 2-D set of 7,000 points.  We
// generate shape-identical data with a planted structure so that (a) the
// compute cost is identical and (b) classifier accuracy is meaningfully
// testable (a k-NN on planted clusters must beat chance by a wide margin).
#pragma once

#include <cstdint>
#include <vector>

namespace ombx::ml {

/// Dense row-major feature matrix with integer labels.
struct Dataset {
  int n = 0;  ///< rows
  int d = 0;  ///< features
  std::vector<float> x;  ///< n*d, row-major
  std::vector<int> y;    ///< n labels

  [[nodiscard]] const float* row(int i) const {
    return x.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
  }
};

/// Dota2-shaped binary classification set: mostly {-1,0,1} categorical
/// features (hero picks) with a planted linear signal so labels are
/// learnable.  Labels are in {0, 1}.
[[nodiscard]] Dataset make_dota2_like(int n, int d, std::uint64_t seed);

/// Isotropic Gaussian blobs around `centers` planted centroids (k-means
/// workload).  Labels hold the generating centroid index.
[[nodiscard]] Dataset make_blobs(int n, int d, int centers, double spread,
                                 std::uint64_t seed);

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Deterministic shuffled split; test_fraction in (0, 1).
[[nodiscard]] TrainTestSplit split(const Dataset& ds, double test_fraction,
                                   std::uint64_t seed);

}  // namespace ombx::ml
