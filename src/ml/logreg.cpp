#include "ml/logreg.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/world.hpp"

namespace ombx::ml {

namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

int share_of(int total, int procs, int rank) {
  const int base = total / procs;
  const int rem = total % procs;
  return base + (rank < rem ? 1 : 0);
}

}  // namespace

LogisticRegression::LogisticRegression(int d)
    : d_(d), w_(static_cast<std::size_t>(d) + 1, 0.0) {
  if (d <= 0) throw std::invalid_argument("dimension must be positive");
}

double LogisticRegression::margin(const float* row) const {
  double z = w_.back();  // bias
  for (int j = 0; j < d_; ++j) {
    z += w_[static_cast<std::size_t>(j)] * row[j];
  }
  return z;
}

std::vector<double> LogisticRegression::gradient_sum(const Dataset& ds,
                                                     int begin,
                                                     int end) const {
  if (ds.d != d_) throw std::invalid_argument("feature dim mismatch");
  if (begin < 0 || end > ds.n || begin > end) {
    throw std::invalid_argument("bad row range");
  }
  std::vector<double> g(static_cast<std::size_t>(d_) + 1, 0.0);
  for (int i = begin; i < end; ++i) {
    const float* row = ds.row(i);
    const double err =
        sigmoid(margin(row)) - ds.y[static_cast<std::size_t>(i)];
    for (int j = 0; j < d_; ++j) {
      g[static_cast<std::size_t>(j)] += err * row[j];
    }
    g.back() += err;
  }
  return g;
}

void LogisticRegression::apply(std::span<const double> grad_sum,
                               int total_rows, double lr) {
  if (grad_sum.size() != w_.size()) {
    throw std::invalid_argument("gradient size mismatch");
  }
  const double scale = lr / static_cast<double>(total_rows);
  for (std::size_t j = 0; j < w_.size(); ++j) {
    w_[j] -= scale * grad_sum[j];
  }
}

double LogisticRegression::loss(const Dataset& ds) const {
  double acc = 0.0;
  for (int i = 0; i < ds.n; ++i) {
    const double p = sigmoid(margin(ds.row(i)));
    const int y = ds.y[static_cast<std::size_t>(i)];
    constexpr double kEps = 1e-12;
    acc -= y * std::log(p + kEps) + (1 - y) * std::log(1.0 - p + kEps);
  }
  return acc / std::max(1, ds.n);
}

double LogisticRegression::accuracy(const Dataset& ds) const {
  int correct = 0;
  for (int i = 0; i < ds.n; ++i) {
    const int pred = margin(ds.row(i)) > 0.0 ? 1 : 0;
    if (pred == ds.y[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / std::max(1, ds.n);
}

double sgd_sequential_s(const SgdBenchConfig& cfg) {
  return cfg.epochs *
         LogisticRegression::gradient_flops(cfg.n, cfg.d) /
         (cfg.gflops * 1e9);
}

ScalingCurve sgd_scaling(const net::ClusterSpec& cluster,
                         const net::MpiTuning& tuning,
                         const SgdBenchConfig& cfg,
                         std::span<const int> proc_counts, int ppn) {
  ScalingCurve curve;
  curve.sequential_s = sgd_sequential_s(cfg);

  const Dataset mini = make_dota2_like(cfg.exec_n, cfg.exec_d, cfg.seed);
  const std::size_t grad_bytes =
      (static_cast<std::size_t>(cfg.d) + 1) * sizeof(double);

  for (const int p : proc_counts) {
    mpi::WorldConfig wc;
    wc.cluster = cluster;
    wc.tuning = tuning;
    wc.nranks = p;
    wc.ppn = std::min(ppn, cluster.topo.cores_per_node());
    wc.payload = mpi::PayloadMode::kReal;  // gradients really ride the wire
    mpi::World world(wc);

    std::atomic<bool> learned{false};
    world.run([&](mpi::Comm& comm) {
      const int rank = comm.rank();
      // The miniature really trains (every rank holds the same replica,
      // shards the batch, and allreduces double-precision gradients).
      LogisticRegression model(mini.d);
      int row0 = 0;
      for (int r = 0; r < rank; ++r) row0 += share_of(mini.n, p, r);
      const int rows = share_of(mini.n, p, rank);

      const double charge_per_epoch =
          LogisticRegression::gradient_flops(
              static_cast<double>(share_of(cfg.n, p, rank)), cfg.d) /
          (cfg.gflops * 1e9) * 1e6;  // us

      for (int e = 0; e < cfg.epochs; ++e) {
        // Paper-scale cost for this epoch's local gradient...
        comm.clock().advance(charge_per_epoch);
        // ...with the miniature really executed on the early epochs.
        std::vector<double> grad(
            static_cast<std::size_t>(mini.d) + 1, 0.0);
        if (e < cfg.exec_epochs) {
          grad = model.gradient_sum(mini, row0, row0 + rows);
        }
        // Pad the wire width to the paper-scale gradient (both are
        // alpha-dominated at these sizes, but keep the bytes honest).
        grad.resize(
            std::max(grad.size(), grad_bytes / sizeof(double)), 0.0);
        std::vector<double> total(grad.size(), 0.0);
        mpi::allreduce(
            comm,
            mpi::ConstView{reinterpret_cast<const std::byte*>(grad.data()),
                           grad.size() * sizeof(double)},
            mpi::MutView{reinterpret_cast<std::byte*>(total.data()),
                         total.size() * sizeof(double)},
            mpi::Datatype::kDouble, mpi::Op::kSum);
        if (e < cfg.exec_epochs) {
          total.resize(static_cast<std::size_t>(mini.d) + 1);
          model.apply(total, mini.n, cfg.lr);
        }
      }
      if (rank == 0 && model.accuracy(mini) > 0.70) {
        learned.store(true, std::memory_order_relaxed);
      }
    });
    OMBX_REQUIRE(learned.load(),
                 "distributed SGD failed to learn the planted structure");

    double t = 0.0;
    for (int r = 0; r < p; ++r) {
      t = std::max(t, world.finish_time(r) / 1e6);
    }
    curve.points.push_back(ScalingPoint{p, t, curve.sequential_s / t});
  }
  return curve;
}

}  // namespace ombx::ml
