// Brute-force k-nearest-neighbours classifier (sklearn
// KNeighborsClassifier(algorithm='brute') equivalent — what the paper's
// benchmark exercises, where nearly all time is spent in predict()).
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace ombx::ml {

class KnnClassifier {
 public:
  explicit KnnClassifier(int k);

  /// Store the training set (sklearn's fit for the brute algorithm).
  void fit(const Dataset& train);

  /// Predict labels for `rows` test rows laid out row-major with the
  /// training dimensionality.
  [[nodiscard]] std::vector<int> predict(std::span<const float> x,
                                         int rows) const;

  /// Fraction of correct predictions on a labelled set.
  [[nodiscard]] double score(const Dataset& test) const;

  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int n_train() const noexcept { return train_.n; }

  /// Analytic flop count of predict(): squared-distance accumulation plus
  /// selection, per test row.
  [[nodiscard]] static double predict_flops(double n_test, double n_train,
                                            double d) noexcept {
    return n_test * n_train * (2.0 * d + 1.0);
  }

 private:
  int k_;
  Dataset train_;
};

}  // namespace ombx::ml
