#include "ml/distributed.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "ml/dataset.hpp"
#include "ml/kmeans.hpp"
#include "ml/knn.hpp"
#include "ml/matmul.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/world.hpp"
#include "simtime/rng.hpp"

namespace ombx::ml {

namespace {

using mpi::ConstView;
using mpi::MutView;

/// Charge `seconds` of modelled compute to this rank's clock.
void charge_s(mpi::Comm& c, double seconds) {
  c.clock().advance(seconds * 1e6);
}

/// Synthetic host view of a given logical size (no backing bytes).
ConstView syn_c(std::size_t bytes) { return ConstView{nullptr, bytes}; }
MutView syn_m(std::size_t bytes) { return MutView{nullptr, bytes}; }

/// Rows assigned to `rank` when `total` rows split as evenly as possible.
int share_of(int total, int procs, int rank) {
  const int base = total / procs;
  const int rem = total % procs;
  return base + (rank < rem ? 1 : 0);
}

mpi::WorldConfig ml_world(const net::ClusterSpec& cluster,
                          const net::MpiTuning& tuning, int procs, int ppn) {
  mpi::WorldConfig wc;
  wc.cluster = cluster;
  wc.tuning = tuning;
  wc.nranks = procs;
  wc.ppn = std::min(ppn, cluster.topo.cores_per_node());
  wc.payload = mpi::PayloadMode::kSynthetic;
  // The ML drivers charge compute directly (the THREAD_MULTIPLE
  // full-subscription penalty applies to MPI-internal work, not user
  // compute, so it is not modelled here).
  wc.thread_level = net::ThreadLevel::kSingle;
  return wc;
}

double max_finish_s(mpi::World& world, int procs) {
  double mx = 0.0;
  for (int r = 0; r < procs; ++r) {
    mx = std::max(mx, world.finish_time(r) / 1e6);
  }
  return mx;
}

}  // namespace

std::vector<int> paper_proc_counts() {
  return {1, 2, 4, 8, 14, 28, 56, 112, 224};
}

// ---- k-NN --------------------------------------------------------------------

double knn_sequential_s(const KnnBenchConfig& cfg, const MlTimingModel& m) {
  const int n_test = static_cast<int>(std::lround(cfg.test_fraction * cfg.n));
  const int n_train = cfg.n - n_test;
  const double flops = KnnClassifier::predict_flops(n_test, n_train, cfg.d);
  return m.knn_fit_seconds + flops / (m.knn_predict_gflops * 1e9);
}

ScalingCurve knn_scaling(const net::ClusterSpec& cluster,
                         const net::MpiTuning& tuning,
                         const KnnBenchConfig& cfg, const MlTimingModel& m,
                         std::span<const int> proc_counts, int ppn) {
  ScalingCurve curve;
  curve.sequential_s = knn_sequential_s(cfg, m);

  const int n_test = static_cast<int>(std::lround(cfg.test_fraction * cfg.n));
  const int n_train = cfg.n - n_test;
  const std::size_t train_bytes =
      static_cast<std::size_t>(n_train) * static_cast<std::size_t>(cfg.d) * 4;

  // Miniature dataset shared by every rank (deterministic).
  const Dataset mini = make_dota2_like(cfg.exec_n, cfg.exec_d, cfg.seed);
  const TrainTestSplit mini_split = split(mini, cfg.test_fraction, cfg.seed);

  for (const int p : proc_counts) {
    mpi::World world(ml_world(cluster, tuning, p, ppn));
    // Host-side accumulator for the really-executed miniature accuracy.
    // Validated after the run: throwing inside a rank while peers sit in a
    // collective would deadlock the world.
    std::atomic<int> mini_correct{0};
    std::atomic<int> mini_total{0};
    world.run([&](mpi::Comm& comm) {
      const int rank = comm.rank();

      // 1. Training data is replicated: root broadcasts it (paper Fig. 2).
      mpi::bcast(comm, syn_m(train_bytes), /*root=*/0);

      // 2. Test data is scattered in (almost) equal shares.
      std::vector<std::size_t> counts(static_cast<std::size_t>(p));
      std::vector<std::size_t> displs(static_cast<std::size_t>(p));
      std::size_t off = 0;
      for (int r = 0; r < p; ++r) {
        counts[static_cast<std::size_t>(r)] =
            static_cast<std::size_t>(share_of(n_test, p, r)) *
            static_cast<std::size_t>(cfg.d) * 4;
        displs[static_cast<std::size_t>(r)] = off;
        off += counts[static_cast<std::size_t>(r)];
      }
      mpi::scatterv(comm, syn_c(off), counts, displs,
                    syn_m(counts[static_cast<std::size_t>(rank)]),
                    /*root=*/0);

      // 3. Every rank fits the full training set (replicated fit).
      charge_s(comm, m.knn_fit_seconds);

      // 4. Predict the local share; charge paper-scale cost, execute the
      //    miniature shard for real.
      const int my_rows = share_of(n_test, p, rank);
      charge_s(comm, KnnClassifier::predict_flops(my_rows, n_train, cfg.d) /
                         (m.knn_predict_gflops * 1e9));
      {
        KnnClassifier knn(cfg.k);
        knn.fit(mini_split.train);
        const int mini_rows = share_of(mini_split.test.n, p, rank);
        int mini_off = 0;
        for (int r = 0; r < rank; ++r) {
          mini_off += share_of(mini_split.test.n, p, r);
        }
        if (mini_rows > 0) {
          const std::span<const float> rows(
              mini_split.test.row(mini_off),
              static_cast<std::size_t>(mini_rows) *
                  static_cast<std::size_t>(mini.d));
          const std::vector<int> pred = knn.predict(rows, mini_rows);
          int correct = 0;
          for (int i = 0; i < mini_rows; ++i) {
            if (pred[static_cast<std::size_t>(i)] ==
                mini_split.test.y[static_cast<std::size_t>(mini_off + i)]) {
              ++correct;
            }
          }
          mini_correct.fetch_add(correct, std::memory_order_relaxed);
          mini_total.fetch_add(mini_rows, std::memory_order_relaxed);
        }
      }

      // 5. Accuracies are reduced (averaged) at the root (paper Fig. 2).
      mpi::reduce(comm, syn_c(sizeof(double)), syn_m(sizeof(double)),
                  mpi::Datatype::kDouble, mpi::Op::kSum, /*root=*/0);
    });

    // The planted structure must be learnable far beyond chance; checked
    // globally so tiny per-rank shards cannot fire spurious failures.
    OMBX_REQUIRE(mini_total.load() == mini_split.test.n,
                 "distributed k-NN lost test rows");
    OMBX_REQUIRE(mini_correct.load() * 10 >= mini_total.load() * 6,
                 "distributed k-NN miniature accuracy collapsed");

    const double t = max_finish_s(world, p);
    curve.points.push_back(ScalingPoint{p, t, curve.sequential_s / t});
  }
  return curve;
}

// ---- k-means hyper-parameter sweep -------------------------------------------

double kmeans_sequential_s(const KmeansBenchConfig& cfg,
                           const MlTimingModel& m) {
  double flops = 0.0;
  for (int k = 1; k <= cfg.k_max; ++k) {
    flops += kmeans_flops(cfg.n, cfg.d, k, m.kmeans_passes);
  }
  return flops / (m.kmeans_gflops * 1e9);
}

ScalingCurve kmeans_scaling(const net::ClusterSpec& cluster,
                            const net::MpiTuning& tuning,
                            const KmeansBenchConfig& cfg,
                            const MlTimingModel& m,
                            std::span<const int> proc_counts, int ppn) {
  ScalingCurve curve;
  curve.sequential_s = kmeans_sequential_s(cfg, m);

  const Dataset mini = make_blobs(cfg.exec_n, cfg.d, cfg.exec_k,
                                  /*spread=*/0.6, cfg.seed);

  for (const int p : proc_counts) {
    const auto assignment = balance_k_values(cfg.k_max, p);
    mpi::World world(ml_world(cluster, tuning, p, ppn));
    world.run([&](mpi::Comm& comm) {
      const int rank = comm.rank();
      const std::vector<int>& my_ks =
          assignment[static_cast<std::size_t>(rank)];

      // 1. Root broadcasts the dataset (n*d doubles in the paper's NumPy
      //    pipeline).
      mpi::bcast(comm,
                 syn_m(static_cast<std::size_t>(cfg.n) *
                       static_cast<std::size_t>(cfg.d) * 8),
                 /*root=*/0);

      // 2. Fit every assigned k: charge the paper-scale cost...
      double flops = 0.0;
      for (const int k : my_ks) {
        flops += kmeans_flops(cfg.n, cfg.d, k, m.kmeans_passes);
      }
      charge_s(comm, flops / (m.kmeans_gflops * 1e9));

      // ...and really fit the miniature once (numerics validated here; the
      //    full sweep is covered by unit tests).
      if (!my_ks.empty()) {
        const int k = std::min(cfg.exec_k, my_ks.front());
        const KmeansResult r =
            kmeans_fit(mini, k, cfg.exec_iters, cfg.seed);
        OMBX_REQUIRE(r.inertia >= 0.0 && r.iterations >= 1,
                     "k-means fit degenerated");
      }

      // 3. Gather the inertia list at the root (paper Fig. 3).
      std::vector<std::size_t> counts(static_cast<std::size_t>(p));
      std::vector<std::size_t> displs(static_cast<std::size_t>(p));
      std::size_t off = 0;
      for (int r = 0; r < p; ++r) {
        counts[static_cast<std::size_t>(r)] =
            assignment[static_cast<std::size_t>(r)].size() * sizeof(double);
        displs[static_cast<std::size_t>(r)] = off;
        off += counts[static_cast<std::size_t>(r)];
      }
      mpi::gatherv(comm, syn_c(counts[static_cast<std::size_t>(rank)]),
                   syn_m(off), counts, displs, /*root=*/0);
    });

    const double t = max_finish_s(world, p);
    curve.points.push_back(ScalingPoint{p, t, curve.sequential_s / t});
  }
  return curve;
}

// ---- Matrix multiplication ----------------------------------------------------

double matmul_sequential_s(const MatmulBenchConfig& cfg,
                           const MlTimingModel& m) {
  return matmul_flops(cfg.n, cfg.n, cfg.n) / (m.matmul_gflops * 1e9);
}

ScalingCurve matmul_scaling(const net::ClusterSpec& cluster,
                            const net::MpiTuning& tuning,
                            const MatmulBenchConfig& cfg,
                            const MlTimingModel& m,
                            std::span<const int> proc_counts, int ppn) {
  ScalingCurve curve;
  curve.sequential_s = matmul_sequential_s(cfg, m);

  // Deterministic miniature operands shared by every rank.
  const int en = cfg.exec_n;
  std::vector<double> mini_a(static_cast<std::size_t>(en) *
                             static_cast<std::size_t>(en));
  std::vector<double> mini_b(mini_a.size());
  {
    simtime::Xoshiro256 rng(cfg.seed);
    for (auto& v : mini_a) v = rng.uniform(-1.0, 1.0);
    for (auto& v : mini_b) v = rng.uniform(-1.0, 1.0);
  }

  for (const int p : proc_counts) {
    mpi::World world(ml_world(cluster, tuning, p, ppn));
    std::atomic<bool> blocks_ok{true};  // validated after the run
    world.run([&](mpi::Comm& comm) {
      const int rank = comm.rank();
      const auto nn = static_cast<std::size_t>(cfg.n);

      // 1. B is broadcast to every rank.
      mpi::bcast(comm, syn_m(nn * nn * 8), /*root=*/0);

      // 2. Rows of A are scattered.
      std::vector<std::size_t> counts(static_cast<std::size_t>(p));
      std::vector<std::size_t> displs(static_cast<std::size_t>(p));
      std::size_t off = 0;
      for (int r = 0; r < p; ++r) {
        counts[static_cast<std::size_t>(r)] =
            static_cast<std::size_t>(share_of(cfg.n, p, r)) * nn * 8;
        displs[static_cast<std::size_t>(r)] = off;
        off += counts[static_cast<std::size_t>(r)];
      }
      mpi::scatterv(comm, syn_c(off), counts, displs,
                    syn_m(counts[static_cast<std::size_t>(rank)]),
                    /*root=*/0);

      // 3. Local dgemm on the row block: charge paper scale, execute the
      //    miniature block and spot-check it against a reference row.
      const int my_rows = share_of(cfg.n, p, rank);
      charge_s(comm, matmul_flops(my_rows, cfg.n, cfg.n) /
                         (m.matmul_gflops * 1e9));
      {
        const int mini_rows = share_of(en, p, rank);
        int row0 = 0;
        for (int r = 0; r < rank; ++r) row0 += share_of(en, p, r);
        if (mini_rows > 0) {
          std::vector<double> block(static_cast<std::size_t>(mini_rows) *
                                    static_cast<std::size_t>(en));
          matmul(std::span<const double>(
                     mini_a.data() + static_cast<std::size_t>(row0) *
                                         static_cast<std::size_t>(en),
                     block.size()),
                 mini_b, block, mini_rows, en, en);
          // Reference check of the block's first row.
          for (int j = 0; j < en; ++j) {
            double ref = 0.0;
            for (int kk = 0; kk < en; ++kk) {
              ref += mini_a[static_cast<std::size_t>(row0) *
                                static_cast<std::size_t>(en) +
                            static_cast<std::size_t>(kk)] *
                     mini_b[static_cast<std::size_t>(kk) *
                                static_cast<std::size_t>(en) +
                            static_cast<std::size_t>(j)];
            }
            if (std::abs(ref - block[static_cast<std::size_t>(j)]) >=
                1e-9 * std::max(1.0, std::abs(ref))) {
              blocks_ok.store(false, std::memory_order_relaxed);
            }
          }
        }
      }

      // 4. The product's row blocks are gathered at the root.
      mpi::gatherv(comm, syn_c(counts[static_cast<std::size_t>(rank)]),
                   syn_m(off), counts, displs, /*root=*/0);
    });
    OMBX_REQUIRE(blocks_ok.load(), "distributed matmul block mismatch");

    const double t = max_finish_s(world, p);
    curve.points.push_back(ScalingPoint{p, t, curve.sequential_s / t});
  }
  return curve;
}

}  // namespace ombx::ml
