#include "ml/matmul.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ombx::ml {

void matmul(std::span<const double> a, std::span<const double> b,
            std::span<double> c, int m, int k, int n) {
  if (a.size() != static_cast<std::size_t>(m) * static_cast<std::size_t>(k) ||
      b.size() != static_cast<std::size_t>(k) * static_cast<std::size_t>(n) ||
      c.size() != static_cast<std::size_t>(m) * static_cast<std::size_t>(n)) {
    throw std::invalid_argument("matmul shape mismatch");
  }
  std::fill(c.begin(), c.end(), 0.0);

  // i-k-j loop order with modest blocking: streams B rows, keeps C rows
  // hot, vectorizes the inner j loop.
  constexpr int kBlock = 64;
  for (int i0 = 0; i0 < m; i0 += kBlock) {
    const int i1 = std::min(m, i0 + kBlock);
    for (int k0 = 0; k0 < k; k0 += kBlock) {
      const int k1 = std::min(k, k0 + kBlock);
      for (int i = i0; i < i1; ++i) {
        double* crow = c.data() + static_cast<std::size_t>(i) *
                                      static_cast<std::size_t>(n);
        for (int kk = k0; kk < k1; ++kk) {
          const double aik = a[static_cast<std::size_t>(i) *
                                   static_cast<std::size_t>(k) +
                               static_cast<std::size_t>(kk)];
          const double* brow = b.data() + static_cast<std::size_t>(kk) *
                                              static_cast<std::size_t>(n);
          for (int j = 0; j < n; ++j) {
            crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace ombx::ml
