// Lloyd's k-means with k-means++-style seeding, plus the hyper-parameter
// ("elbow") sweep machinery the paper's second ML benchmark distributes.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"

namespace ombx::ml {

struct KmeansResult {
  std::vector<float> centroids;  ///< k*d, row-major
  double inertia = 0.0;          ///< sum of squared distances to centroids
  int iterations = 0;            ///< Lloyd iterations actually run
};

/// Fit k-means on `ds` (labels ignored).  Deterministic given `seed`.
[[nodiscard]] KmeansResult kmeans_fit(const Dataset& ds, int k,
                                      int max_iters, std::uint64_t seed);

/// Inertia for each k in [1, k_max]: the sequential elbow sweep.
[[nodiscard]] std::vector<double> inertia_sweep(const Dataset& ds, int k_max,
                                                int max_iters,
                                                std::uint64_t seed);

/// The paper's "intelligent" work partition: the cost of fitting k
/// centroids grows with k, so a block split of [1, K] over p workers would
/// leave the high-k worker dominating.  This LPT (longest-processing-time)
/// assignment gives every worker a mix of small and large k so all finish
/// at roughly the same time.  Returns one k-list per worker.
[[nodiscard]] std::vector<std::vector<int>> balance_k_values(int k_max,
                                                             int workers);

/// Analytic flop count of one full fit at a given k (distances + updates,
/// times the effective number of Lloyd passes).
[[nodiscard]] double kmeans_flops(double n, double d, double k,
                                  double passes) noexcept;

}  // namespace ombx::ml
