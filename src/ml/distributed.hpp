// Distributed ML benchmarks (paper Sec. IV-G / V-J): k-NN classification,
// hyper-parameter optimization for k-means, and matrix multiplication —
// sequential baselines plus MPI-distributed versions.
//
// Execution model: the algorithms run *for real* on a miniature problem on
// every rank (validating partitioning, voting, and numerics), while the
// virtual clock is charged the analytic cost of the paper-scale problem
// through a calibrated per-benchmark throughput.  Communication (bcast of
// the model/matrix, scatter of the work, gather/reduce of the results)
// goes through the same simulated MPI the micro-benchmarks use, with
// synthetic payloads at paper scale.
#pragma once

#include <span>
#include <vector>

#include "net/cluster.hpp"
#include "net/tuning.hpp"

namespace ombx::ml {

/// Effective per-core throughputs, calibrated so the *sequential* times
/// match the paper's RI2 measurements (112.9 s / 1059.45 s / 79.63 s).
struct MlTimingModel {
  double knn_predict_gflops = 3.52;  ///< sklearn brute k-NN distance rate
  double knn_fit_seconds = 0.50;     ///< sklearn fit+validation (replicated
                                     ///< on every rank, per the paper's design)
  double kmeans_passes = 5700.0;     ///< effective Lloyd passes (n_init x
                                     ///< iterations, sklearn defaults)
  double kmeans_gflops = 3.8;
  double matmul_gflops = 2.615;      ///< single-threaded BLAS dgemm rate
};

struct KnnBenchConfig {
  // Paper scale: the Dota2 dataset.
  int n = 102944;
  int d = 116;
  int k = 5;
  double test_fraction = 0.2;
  // Physically executed miniature (validates the distributed pipeline).
  int exec_n = 1200;
  int exec_d = 16;
  std::uint64_t seed = 0x00d07a2;
};

struct KmeansBenchConfig {
  // Paper scale: 7,000 2-D points, elbow sweep over k = 1..k_max.
  int n = 7000;
  int d = 2;
  int k_max = 200;
  // Miniature really executed per rank.
  int exec_n = 500;
  int exec_k = 4;
  int exec_iters = 25;
  std::uint64_t seed = 0x0736b1;
};

struct MatmulBenchConfig {
  int n = 4704;      ///< paper-scale square size
  int exec_n = 96;   ///< really-multiplied square size
  std::uint64_t seed = 0x3a7b11;
};

struct ScalingPoint {
  int procs = 1;
  double time_s = 0.0;
  double speedup = 1.0;
};

struct ScalingCurve {
  double sequential_s = 0.0;
  std::vector<ScalingPoint> points;
};

/// Sequential-baseline projections (what Figs 36-38 plot at p = 1).
[[nodiscard]] double knn_sequential_s(const KnnBenchConfig& cfg,
                                      const MlTimingModel& m);
[[nodiscard]] double kmeans_sequential_s(const KmeansBenchConfig& cfg,
                                         const MlTimingModel& m);
[[nodiscard]] double matmul_sequential_s(const MatmulBenchConfig& cfg,
                                         const MlTimingModel& m);

/// Distributed scaling sweeps.  `proc_counts` mirrors the paper's x-axis
/// (1..28 on one node, then 56/112/224); ppn caps ranks per node.
[[nodiscard]] ScalingCurve knn_scaling(const net::ClusterSpec& cluster,
                                       const net::MpiTuning& tuning,
                                       const KnnBenchConfig& cfg,
                                       const MlTimingModel& m,
                                       std::span<const int> proc_counts,
                                       int ppn = 28);

[[nodiscard]] ScalingCurve kmeans_scaling(const net::ClusterSpec& cluster,
                                          const net::MpiTuning& tuning,
                                          const KmeansBenchConfig& cfg,
                                          const MlTimingModel& m,
                                          std::span<const int> proc_counts,
                                          int ppn = 28);

[[nodiscard]] ScalingCurve matmul_scaling(const net::ClusterSpec& cluster,
                                          const net::MpiTuning& tuning,
                                          const MatmulBenchConfig& cfg,
                                          const MlTimingModel& m,
                                          std::span<const int> proc_counts,
                                          int ppn = 28);

/// The paper's standard x-axis: 1..28 on one node, then 2/4/8 nodes full.
[[nodiscard]] std::vector<int> paper_proc_counts();

}  // namespace ombx::ml
