#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "simtime/rng.hpp"

namespace ombx::ml {

Dataset make_dota2_like(int n, int d, std::uint64_t seed) {
  if (n <= 0 || d <= 0) throw std::invalid_argument("dataset must be non-empty");
  simtime::Xoshiro256 rng(seed);
  Dataset ds;
  ds.n = n;
  ds.d = d;
  ds.x.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  ds.y.resize(static_cast<std::size_t>(n));

  // A fixed random hyperplane provides the planted signal.
  std::vector<double> w(static_cast<std::size_t>(d));
  for (auto& wi : w) wi = rng.normal();

  for (int i = 0; i < n; ++i) {
    double score = 0.0;
    for (int j = 0; j < d; ++j) {
      // Sparse categorical features: most are 0, some are +/-1 (hero
      // picked by team 1 / team 2), like the Dota2 encoding.
      const double u = rng.uniform();
      float v = 0.0F;
      if (u < 0.045) {
        v = 1.0F;
      } else if (u < 0.09) {
        v = -1.0F;
      }
      ds.x[static_cast<std::size_t>(i) * static_cast<std::size_t>(d) +
           static_cast<std::size_t>(j)] = v;
      score += v * w[static_cast<std::size_t>(j)];
    }
    // Noisy threshold keeps the task non-trivial but learnable.
    ds.y[static_cast<std::size_t>(i)] =
        (score + 0.25 * rng.normal()) > 0.0 ? 1 : 0;
  }
  return ds;
}

Dataset make_blobs(int n, int d, int centers, double spread,
                   std::uint64_t seed) {
  if (n <= 0 || d <= 0 || centers <= 0) {
    throw std::invalid_argument("blobs must be non-empty");
  }
  simtime::Xoshiro256 rng(seed);
  Dataset ds;
  ds.n = n;
  ds.d = d;
  ds.x.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  ds.y.resize(static_cast<std::size_t>(n));

  std::vector<double> centroids(static_cast<std::size_t>(centers) *
                                static_cast<std::size_t>(d));
  for (auto& c : centroids) c = rng.uniform(-10.0, 10.0);

  for (int i = 0; i < n; ++i) {
    const int c = static_cast<int>(rng.below(static_cast<std::uint64_t>(centers)));
    ds.y[static_cast<std::size_t>(i)] = c;
    for (int j = 0; j < d; ++j) {
      const double mu = centroids[static_cast<std::size_t>(c) *
                                      static_cast<std::size_t>(d) +
                                  static_cast<std::size_t>(j)];
      ds.x[static_cast<std::size_t>(i) * static_cast<std::size_t>(d) +
           static_cast<std::size_t>(j)] =
          static_cast<float>(mu + spread * rng.normal());
    }
  }
  return ds;
}

TrainTestSplit split(const Dataset& ds, double test_fraction,
                     std::uint64_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("test_fraction must be in (0, 1)");
  }
  simtime::Xoshiro256 rng(seed);
  std::vector<int> order(static_cast<std::size_t>(ds.n));
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates with the deterministic generator.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  const int n_test = std::max(1, static_cast<int>(std::lround(
                                     test_fraction * ds.n)));
  const int n_train = ds.n - n_test;

  const auto take = [&](int from, int count) {
    Dataset out;
    out.n = count;
    out.d = ds.d;
    out.x.resize(static_cast<std::size_t>(count) *
                 static_cast<std::size_t>(ds.d));
    out.y.resize(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      const int src = order[static_cast<std::size_t>(from + i)];
      std::copy_n(ds.row(src), ds.d,
                  out.x.data() + static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(ds.d));
      out.y[static_cast<std::size_t>(i)] = ds.y[static_cast<std::size_t>(src)];
    }
    return out;
  };

  return TrainTestSplit{take(0, n_train), take(n_train, n_test)};
}

}  // namespace ombx::ml
