// Dense row-major matrix multiplication (numpy.dot equivalent), cache
// blocked — the primitive the paper's third ML benchmark distributes by
// row blocks.
#pragma once

#include <cstddef>
#include <span>

namespace ombx::ml {

/// C(m x n) = A(m x k) * B(k x n), all row-major.  C is overwritten.
void matmul(std::span<const double> a, std::span<const double> b,
            std::span<double> c, int m, int k, int n);

[[nodiscard]] constexpr double matmul_flops(double m, double k,
                                            double n) noexcept {
  return 2.0 * m * k * n;
}

}  // namespace ombx::ml
