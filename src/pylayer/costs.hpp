// Calibrated mpi4py binding-layer cost model.
//
// mpi4py's overhead over native MPI decomposes into:
//   * per-call dispatch (CPython frame + argument parsing + Cython glue),
//   * per-buffer export (buffer protocol on host arrays; the CUDA Array
//     Interface on device arrays — Numba's export is ~2x CuPy/PyCUDA's),
//   * a small per-byte cost visible when the transport is memory-bound
//     (mostly hidden behind fabric DMA on inter-node rendezvous — the
//     `inter_overlap` factor),
//   * per-collective fixed costs (two buffer exports, type/extent checks),
//   * and, on the lowercase (pickle) API, real serialize/deserialize passes
//     over the payload, which OMB-X executes for real (see pickle.hpp) and
//     prices through the cluster's streaming-byte throughput.
//
// The constants are calibrated against the averages the paper reports for
// each figure (see EXPERIMENTS.md); the *structure* is what makes the
// curves come out right.
#pragma once

#include <string>

#include "buffers/buffer.hpp"
#include "net/link_model.hpp"
#include "simtime/clock.hpp"

namespace ombx::pylayer {

using simtime::usec_t;

/// Which collective a charge applies to (GPU libs have per-kind fixed costs
/// in the paper's measurements).
enum class CollKind {
  kAllreduce,
  kAllgather,
  kAlltoall,
  kBarrier,
  kBcast,
  kGather,
  kReduce,
  kReduceScatter,
  kScatter,
  kVector,
};

struct PyCosts {
  // ---- direct-buffer point-to-point ---------------------------------------
  usec_t dispatch_us = 0.15;  ///< per call crossing the binding
  usec_t export_us = 0.07;    ///< per host-buffer export
  double per_byte_us = 2.0e-6;   ///< binding-side per-byte touch (host)
  double inter_overlap = 0.107;  ///< fraction of per-byte cost visible on
                                 ///< fabric links (DMA hides the rest)

  // ---- GPU buffer libraries ------------------------------------------------
  usec_t gpu_dispatch_us = 0.30;
  usec_t cupy_export_us = 1.47;
  usec_t pycuda_export_us = 1.42;
  usec_t numba_export_us = 2.625;  ///< ~2x CuPy, as the paper measures
  double cupy_per_byte_us = 5.17e-6;
  double pycuda_per_byte_us = 4.82e-6;
  double numba_per_byte_us = 5.97e-6;

  // ---- collectives (charged once per call per rank) -----------------------
  struct CollCost {
    usec_t fixed_us = 0.9;
    double per_byte_us = 2.0e-5;  ///< applied to the per-rank message size
  };
  CollCost cpu_allreduce{0.93, 4.44e-5};
  CollCost cpu_allgather{0.92, 1.338e-4};
  CollCost cpu_other{0.90, 2.0e-5};
  CollCost cpu_barrier{0.60, 0.0};

  /// GPU collective totals per library (include the buffer exports).
  CollCost gpu_allreduce_cupy{18.64, 6.8e-6};
  CollCost gpu_allreduce_pycuda{17.63, 1.38e-5};
  CollCost gpu_allreduce_numba{23.10, 6.4e-6};
  CollCost gpu_allgather_cupy{12.139, 1.06e-5};
  CollCost gpu_allgather_pycuda{11.94, 1.55e-5};
  CollCost gpu_allgather_numba{17.24, 8.3e-6};
  CollCost gpu_other{14.0, 1.0e-5};

  /// Slowdown on the *binding-layer* charges when the job runs
  /// THREAD_MULTIPLE on fully subscribed nodes (milder than the engine's
  /// memcpy oversubscription factor: the dispatch path is short and mostly
  /// stays in cache).  Calibrated from the paper's 56-ppn Allreduce
  /// small-message overhead (4.21 us vs 0.93 us at 1 ppn).
  double tm_dispatch_factor = 4.5;

  // ---- pickle path ----------------------------------------------------------
  usec_t pickle_fixed_us = 0.355;    ///< dumps/loads setup beyond direct
  double pickle_send_passes = 2.5;   ///< payload passes on the sender
  double pickle_recv_passes = 1.5;   ///< payload passes on the receiver

  /// Per-buffer export cost for a given buffer kind.
  [[nodiscard]] usec_t export_cost(buffers::BufferKind k) const noexcept;
  /// Per-call dispatch cost for a given buffer kind.
  [[nodiscard]] usec_t dispatch_cost(buffers::BufferKind k) const noexcept;
  /// Binding-side per-byte cost for a given buffer kind.
  [[nodiscard]] double per_byte_cost(buffers::BufferKind k) const noexcept;
  /// Collective total (fixed + per-rank-size * per_byte) for a kind/buffer.
  [[nodiscard]] usec_t coll_cost(CollKind coll, buffers::BufferKind k,
                                 std::size_t msg_bytes) const noexcept;

  /// Per-cluster presets (named after the paper's testbeds).
  static PyCosts frontera();
  static PyCosts stampede2();
  static PyCosts ri2();
  static PyCosts ri2_gpu();
  /// Lookup by ClusterSpec name.
  static PyCosts for_cluster(const std::string& cluster_name);
};

}  // namespace ombx::pylayer
