#include "pylayer/pycomm.hpp"

#include <cstdint>
#include <cstring>
#include <vector>

#include "mpi/error.hpp"
#include "pylayer/pickle.hpp"

namespace ombx::pylayer {

void PyComm::charge(simtime::usec_t us) const {
  if (!enabled_ || us <= 0.0) return;
  const double factor =
      comm_->engine().oversub() > 1.0 ? costs_.tm_dispatch_factor : 1.0;
  comm_->clock().advance(us * factor);
}

simtime::usec_t PyComm::byte_cost(const buffers::Buffer& b,
                                  std::size_t nbytes, int dst) const {
  const double pb = costs_.per_byte_cost(b.kind());
  double overlap = 1.0;
  if (b.space() == net::MemSpace::kHost) {
    const net::LinkClass lc = comm_->net().link_class(
        comm_->world_rank(comm_->rank()), comm_->world_rank(dst),
        b.space());
    if (lc == net::LinkClass::kInterNode) overlap = costs_.inter_overlap;
  }
  return static_cast<double>(nbytes) * pb * overlap;
}

void PyComm::charge_coll(CollKind kind, buffers::BufferKind k,
                         std::size_t msg_bytes) const {
  charge(costs_.coll_cost(kind, k, msg_bytes));
}

mpi::ConstView PyComm::chead(const buffers::Buffer& b,
                             std::size_t nbytes) const {
  OMBX_REQUIRE(nbytes <= b.bytes(), "count exceeds buffer size");
  return mpi::ConstView{b.data(), nbytes, b.space()};
}

mpi::MutView PyComm::mhead(buffers::Buffer& b, std::size_t nbytes) const {
  OMBX_REQUIRE(nbytes <= b.bytes(), "count exceeds buffer size");
  return mpi::MutView{b.data(), nbytes, b.space()};
}

// ---- Uppercase API ----------------------------------------------------------

void PyComm::Send(const buffers::Buffer& b, std::size_t nbytes, int dst,
                  int tag) const {
  charge(costs_.dispatch_cost(b.kind()) + costs_.export_cost(b.kind()) +
         byte_cost(b, nbytes, dst));
  comm_->send(chead(b, nbytes), dst, tag);
}

mpi::Status PyComm::Recv(buffers::Buffer& b, std::size_t nbytes, int src,
                         int tag) const {
  // The receive-side binding work (status construction, buffer release,
  // refcounting) happens after the message has arrived, so it sits on the
  // critical path rather than overlapping the wait.
  const mpi::Status st = comm_->recv(mhead(b, nbytes), src, tag);
  charge(costs_.dispatch_cost(b.kind()) + costs_.export_cost(b.kind()));
  return st;
}

mpi::Request PyComm::Isend(const buffers::Buffer& b, std::size_t nbytes,
                           int dst, int tag) const {
  charge(costs_.dispatch_cost(b.kind()) + costs_.export_cost(b.kind()) +
         byte_cost(b, nbytes, dst));
  return comm_->isend(chead(b, nbytes), dst, tag);
}

mpi::Request PyComm::Irecv(buffers::Buffer& b, std::size_t nbytes, int src,
                           int tag) const {
  charge(costs_.dispatch_cost(b.kind()) + costs_.export_cost(b.kind()));
  return comm_->irecv(mhead(b, nbytes), src, tag);
}

void PyComm::Barrier() const {
  charge_coll(CollKind::kBarrier, buffers::BufferKind::kByteArray, 0);
  mpi::barrier(*comm_);
}

void PyComm::Bcast(buffers::Buffer& b, std::size_t nbytes, int root) const {
  charge_coll(CollKind::kBcast, b.kind(), nbytes);
  mpi::bcast(*comm_, mhead(b, nbytes), root);
}

void PyComm::Reduce(const buffers::Buffer& send, buffers::Buffer* recv,
                    std::size_t nbytes, mpi::Datatype dt, mpi::Op op,
                    int root) const {
  charge_coll(CollKind::kReduce, send.kind(), nbytes);
  mpi::MutView rv =
      recv != nullptr ? mhead(*recv, nbytes) : mpi::MutView{};
  mpi::reduce(*comm_, chead(send, nbytes), rv, dt, op, root);
}

void PyComm::Allreduce(const buffers::Buffer& send, buffers::Buffer& recv,
                       std::size_t nbytes, mpi::Datatype dt,
                       mpi::Op op) const {
  charge_coll(CollKind::kAllreduce, send.kind(), nbytes);
  mpi::allreduce(*comm_, chead(send, nbytes), mhead(recv, nbytes), dt, op);
}

void PyComm::Gather(const buffers::Buffer& send, buffers::Buffer* recv,
                    std::size_t nbytes, int root) const {
  charge_coll(CollKind::kGather, send.kind(), nbytes);
  const std::size_t total = nbytes * static_cast<std::size_t>(size());
  mpi::MutView rv = recv != nullptr ? mhead(*recv, total) : mpi::MutView{};
  mpi::gather(*comm_, chead(send, nbytes), rv, root);
}

void PyComm::Scatter(const buffers::Buffer* send, buffers::Buffer& recv,
                     std::size_t nbytes, int root) const {
  charge_coll(CollKind::kScatter, recv.kind(), nbytes);
  const std::size_t total = nbytes * static_cast<std::size_t>(size());
  mpi::ConstView sv =
      send != nullptr ? chead(*send, total) : mpi::ConstView{};
  mpi::scatter(*comm_, sv, mhead(recv, nbytes), root);
}

void PyComm::Allgather(const buffers::Buffer& send, buffers::Buffer& recv,
                       std::size_t nbytes) const {
  charge_coll(CollKind::kAllgather, send.kind(), nbytes);
  const std::size_t total = nbytes * static_cast<std::size_t>(size());
  mpi::allgather(*comm_, chead(send, nbytes), mhead(recv, total));
}

void PyComm::Alltoall(const buffers::Buffer& send, buffers::Buffer& recv,
                      std::size_t nbytes) const {
  charge_coll(CollKind::kAlltoall, send.kind(), nbytes);
  const std::size_t total = nbytes * static_cast<std::size_t>(size());
  mpi::alltoall(*comm_, chead(send, total), mhead(recv, total));
}

void PyComm::ReduceScatter(const buffers::Buffer& send,
                           buffers::Buffer& recv, std::size_t nbytes,
                           mpi::Datatype dt, mpi::Op op) const {
  charge_coll(CollKind::kReduceScatter, recv.kind(), nbytes);
  const std::size_t total = nbytes * static_cast<std::size_t>(size());
  mpi::reduce_scatter(*comm_, chead(send, total), mhead(recv, nbytes), dt,
                      op);
}

void PyComm::Allgatherv(const buffers::Buffer& send, buffers::Buffer& recv,
                        std::span<const std::size_t> counts,
                        std::span<const std::size_t> displs) const {
  const std::size_t mine =
      counts[static_cast<std::size_t>(comm_->rank())];
  charge_coll(CollKind::kVector, send.kind(), mine);
  mpi::allgatherv(*comm_, chead(send, mine), recv.mview(), counts, displs);
}

void PyComm::Gatherv(const buffers::Buffer& send, std::size_t nbytes,
                     buffers::Buffer* recv,
                     std::span<const std::size_t> counts,
                     std::span<const std::size_t> displs, int root) const {
  charge_coll(CollKind::kVector, send.kind(), nbytes);
  mpi::MutView rv = recv != nullptr ? recv->mview() : mpi::MutView{};
  mpi::gatherv(*comm_, chead(send, nbytes), rv, counts, displs, root);
}

void PyComm::Scatterv(const buffers::Buffer* send,
                      std::span<const std::size_t> counts,
                      std::span<const std::size_t> displs,
                      buffers::Buffer& recv, std::size_t nbytes,
                      int root) const {
  charge_coll(CollKind::kVector, recv.kind(), nbytes);
  mpi::ConstView sv = send != nullptr ? send->cview() : mpi::ConstView{};
  mpi::scatterv(*comm_, sv, counts, displs, mhead(recv, nbytes), root);
}

void PyComm::Alltoallv(const buffers::Buffer& send,
                       std::span<const std::size_t> scounts,
                       std::span<const std::size_t> sdispls,
                       buffers::Buffer& recv,
                       std::span<const std::size_t> rcounts,
                       std::span<const std::size_t> rdispls) const {
  charge_coll(CollKind::kVector, send.kind(),
              send.bytes() / static_cast<std::size_t>(comm_->size()));
  mpi::alltoallv(*comm_, send.cview(), scounts, sdispls, recv.mview(),
                 rcounts, rdispls);
}

// ---- lowercase (pickle) API -------------------------------------------------

void PyComm::send_pickled(const buffers::Buffer& b, std::size_t nbytes,
                          int dst, int tag) const {
  charge(costs_.dispatch_cost(b.kind()) + costs_.pickle_fixed_us);

  const PickleStream stream = encode(chead(b, nbytes), b.dtype());
  // Serialization really happened above; its time is priced through the
  // cluster's streaming throughput (dumps + stream assembly passes).
  if (enabled_) {
    comm_->charge_bytes(static_cast<double>(stream.logical_bytes) *
                        costs_.pickle_send_passes);
  }

  const mpi::ConstView sv{
      stream.bytes.empty() ? nullptr : stream.bytes.data(),
      stream.logical_bytes, net::MemSpace::kHost};
  comm_->send(sv, dst, tag);
}

mpi::Status PyComm::recv_pickled(buffers::Buffer& b, int src,
                                 int tag) const {
  const mpi::Status probed = comm_->probe(src, tag);
  std::vector<std::byte> stream;
  const bool real =
      comm_->engine().payload_mode() == mpi::PayloadMode::kReal &&
      b.data() != nullptr;
  if (real) stream.resize(probed.bytes);
  mpi::MutView rv{real ? stream.data() : nullptr, probed.bytes,
                  net::MemSpace::kHost};
  mpi::Status st = comm_->recv(rv, probed.source, probed.tag);

  // Unpickling (loads + object construction) runs after arrival.
  charge(costs_.dispatch_cost(b.kind()) + costs_.pickle_fixed_us);
  if (enabled_) {
    comm_->charge_bytes(static_cast<double>(st.bytes) *
                        costs_.pickle_recv_passes);
  }
  const std::size_t payload =
      decode(std::span<const std::byte>(stream.data(), stream.size()),
             st.bytes, b.mview(), b.dtype());
  st.bytes = payload;
  return st;
}

// ---- lowercase (pickle) collectives ------------------------------------------

void PyComm::bcast_pickled(buffers::Buffer& b, std::size_t nbytes,
                           int root) const {
  OMBX_REQUIRE(comm_->engine().payload_mode() == mpi::PayloadMode::kReal,
               "pickled collectives require real payloads");
  charge(costs_.dispatch_cost(b.kind()) + costs_.pickle_fixed_us);

  // Root serializes once; the stream length travels first (mpi4py sends
  // the pickled object as an opaque byte message of unknown size).
  std::vector<std::byte> stream;
  std::uint64_t len = 0;
  if (rank() == root) {
    PickleStream s = encode(chead(b, nbytes), b.dtype());
    if (enabled_) {
      comm_->charge_bytes(static_cast<double>(s.logical_bytes) *
                          costs_.pickle_send_passes);
    }
    stream = std::move(s.bytes);
    len = stream.size();
  }
  mpi::bcast(*comm_,
             mpi::MutView{reinterpret_cast<std::byte*>(&len), sizeof(len)},
             root);
  if (rank() != root) stream.resize(len);
  mpi::bcast(*comm_, mpi::MutView{stream.data(), stream.size()}, root);

  if (rank() != root) {
    if (enabled_) {
      comm_->charge_bytes(static_cast<double>(len) *
                          costs_.pickle_recv_passes);
    }
    (void)decode(stream, stream.size(), mhead(b, nbytes), b.dtype());
  }
}

std::vector<std::vector<std::byte>> PyComm::gather_pickled(
    const buffers::Buffer& b, std::size_t nbytes, int root) const {
  OMBX_REQUIRE(comm_->engine().payload_mode() == mpi::PayloadMode::kReal,
               "pickled collectives require real payloads");
  charge(costs_.dispatch_cost(b.kind()) + costs_.pickle_fixed_us);

  const PickleStream mine = encode(chead(b, nbytes), b.dtype());
  if (enabled_) {
    comm_->charge_bytes(static_cast<double>(mine.logical_bytes) *
                        costs_.pickle_send_passes);
  }

  // Phase 1: fixed-size gather of stream lengths.
  const int n = size();
  const std::uint64_t my_len = mine.bytes.size();
  std::vector<std::uint64_t> lens(static_cast<std::size_t>(n), 0);
  mpi::gather(
      *comm_,
      mpi::ConstView{reinterpret_cast<const std::byte*>(&my_len),
                     sizeof(my_len)},
      rank() == root
          ? mpi::MutView{reinterpret_cast<std::byte*>(lens.data()),
                         lens.size() * sizeof(std::uint64_t)}
          : mpi::MutView{},
      root);

  // Phase 2: ragged gather of the streams themselves.
  std::vector<std::size_t> counts(static_cast<std::size_t>(n), 0);
  std::vector<std::size_t> displs(static_cast<std::size_t>(n), 0);
  std::vector<std::byte> flat;
  if (rank() == root) {
    std::size_t off = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(lens[static_cast<std::size_t>(r)]);
      displs[static_cast<std::size_t>(r)] = off;
      off += counts[static_cast<std::size_t>(r)];
    }
    flat.resize(off);
  }
  mpi::gatherv(*comm_,
               mpi::ConstView{mine.bytes.data(), mine.bytes.size()},
               mpi::MutView{flat.data(), flat.size()}, counts, displs,
               root);

  // Phase 3: the root unpickles every contribution.
  std::vector<std::vector<std::byte>> out;
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      if (enabled_) {
        comm_->charge_bytes(static_cast<double>(counts[ur]) *
                            costs_.pickle_recv_passes);
      }
      std::vector<std::byte>& payload = out[ur];
      payload.resize(nbytes);
      const std::size_t got = decode(
          std::span<const std::byte>(flat.data() + displs[ur], counts[ur]),
          counts[ur], mpi::MutView{payload.data(), payload.size()},
          b.dtype());
      payload.resize(got);
    }
  }
  return out;
}

void PyComm::allreduce_pickled(const buffers::Buffer& send,
                               buffers::Buffer& recv, std::size_t nbytes,
                               mpi::Datatype dt, mpi::Op op) const {
  // mpi4py's lowercase allreduce combines the *objects* in the interpreter
  // rather than letting MPI reduce raw buffers: gather at the root,
  // fold in Python, broadcast the pickled result.
  const auto contributions = gather_pickled(send, nbytes, /*root=*/0);

  OMBX_REQUIRE(nbytes <= recv.bytes(), "count exceeds buffer size");
  if (rank() == 0) {
    detail_copy_into(recv, contributions.front());
    const std::size_t elems = nbytes / mpi::size_of(dt);
    for (int r = 1; r < size(); ++r) {
      const auto& c = contributions[static_cast<std::size_t>(r)];
      OMBX_REQUIRE(c.size() == nbytes,
                   "pickled allreduce contribution size mismatch");
      const std::size_t flops =
          mpi::apply(op, dt, recv.data(), c.data(), elems);
      // Interpreter-rate arithmetic: Python folds are byte-bound, not
      // vectorized — price the touched bytes, not just the flops.
      if (enabled_) {
        comm_->charge_bytes(static_cast<double>(2 * nbytes));
      }
      comm_->charge_flops(static_cast<double>(flops));
    }
  }
  bcast_pickled(recv, nbytes, /*root=*/0);
}

void PyComm::detail_copy_into(buffers::Buffer& dst,
                              const std::vector<std::byte>& src) {
  OMBX_REQUIRE(src.size() <= dst.bytes(),
               "pickled payload larger than the destination buffer");
  if (dst.data() != nullptr && !src.empty()) {
    std::memcpy(dst.data(), src.data(), src.size());
  }
}

}  // namespace ombx::pylayer
