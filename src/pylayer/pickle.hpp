// A real serialization codec modelled on CPython pickle protocol 2.
//
// mpi4py's lowercase API (send/recv/reduce/...) pickles the Python object
// into a byte stream, ships the stream, and unpickles on the receiver.
// OMB-X executes that code path for real: encode() produces an opcode
// stream (PROTO, SHORT_BINBYTES/BINBYTES framing, STOP) wrapping the
// payload, and decode() parses and copies it back out.  The extra memory
// passes this costs are what make the paper's pickle-vs-direct curves
// diverge past the rendezvous threshold.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpi/datatype.hpp"
#include "mpi/message.hpp"

namespace ombx::pylayer {

/// Pickle opcodes we emit (subset of protocol 2).
enum : std::uint8_t {
  kOpProto = 0x80,
  kOpShortBinBytes = 0x43,  ///< 'C' + 1-byte length
  kOpBinBytes = 0x42,       ///< 'B' + 4-byte little-endian length
  kOpBinBytes8 = 0x8e,      ///< 8-byte length (protocol 4; for >4 GiB)
  kOpTupleMeta = 0x85,      ///< stand-in for the dtype/shape tuple
  kOpStop = 0x2e,           ///< '.'
};

/// Encoded stream plus bookkeeping for cost accounting.
struct PickleStream {
  std::vector<std::byte> bytes;   ///< empty when the source was synthetic
  std::size_t logical_bytes = 0;  ///< stream length even when synthetic
  std::size_t payload_bytes = 0;  ///< raw payload portion
};

/// Serialize a buffer view (the ndarray payload plus a small dtype/shape
/// header).  Synthetic views produce a header-only stream with the correct
/// logical length.
[[nodiscard]] PickleStream encode(mpi::ConstView v, mpi::Datatype dt);

/// Size in bytes the encoded stream will have for an n-byte payload.
[[nodiscard]] std::size_t encoded_size(std::size_t payload_bytes,
                                       mpi::Datatype dt) noexcept;

/// Deserialize into `out`; returns the payload byte count.  Throws
/// mpi::Error on a malformed stream.  A synthetic (empty-data) stream with
/// a logical length only validates the length arithmetic.
std::size_t decode(std::span<const std::byte> stream,
                   std::size_t logical_bytes, mpi::MutView out,
                   mpi::Datatype dt);

}  // namespace ombx::pylayer
