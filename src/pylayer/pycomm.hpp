// PyComm: an mpi4py-shaped facade over the MPI substrate.
//
// mpi4py exposes two API families:
//   * Uppercase (Send/Recv/Allreduce/...): direct buffer-protocol path —
//     near-native speed plus binding overhead.
//   * lowercase (send/recv/...): pickle path — the object is serialized to
//     a byte stream first (see pickle.hpp).
//
// A PyComm wraps a Comm and charges the calibrated binding costs to the
// rank's virtual clock before forwarding each call.  Constructing it with
// `overhead_enabled = false` turns it into a transparent passthrough — that
// is the "OMB in C" baseline mode every figure compares against.
//
// Like MPI itself, every operation takes an explicit byte count `nbytes`
// (the benchmark sweeps message sizes over one max-size buffer); the count
// must not exceed the buffer (checked).
#pragma once

#include <optional>
#include <span>

#include "buffers/buffer.hpp"
#include "mpi/collectives.hpp"
#include "mpi/comm.hpp"
#include "mpi/request.hpp"
#include "pylayer/costs.hpp"

namespace ombx::pylayer {

class PyComm {
 public:
  PyComm(mpi::Comm& comm, PyCosts costs, bool overhead_enabled = true)
      : comm_(&comm), costs_(costs), enabled_(overhead_enabled) {}

  [[nodiscard]] int rank() const noexcept { return comm_->rank(); }
  [[nodiscard]] int size() const noexcept { return comm_->size(); }
  [[nodiscard]] mpi::Comm& raw() const noexcept { return *comm_; }
  [[nodiscard]] bool overhead_enabled() const noexcept { return enabled_; }
  [[nodiscard]] const PyCosts& costs() const noexcept { return costs_; }
  [[nodiscard]] simtime::usec_t now() const { return comm_->now(); }

  // ---- Uppercase API: direct buffers --------------------------------------

  void Send(const buffers::Buffer& b, std::size_t nbytes, int dst,
            int tag) const;
  mpi::Status Recv(buffers::Buffer& b, std::size_t nbytes, int src,
                   int tag) const;
  [[nodiscard]] mpi::Request Isend(const buffers::Buffer& b,
                                   std::size_t nbytes, int dst,
                                   int tag) const;
  [[nodiscard]] mpi::Request Irecv(buffers::Buffer& b, std::size_t nbytes,
                                   int src, int tag) const;

  void Barrier() const;
  /// nbytes at every rank.
  void Bcast(buffers::Buffer& b, std::size_t nbytes, int root) const;
  /// nbytes contributed per rank; recv significant at root.
  void Reduce(const buffers::Buffer& send, buffers::Buffer* recv,
              std::size_t nbytes, mpi::Datatype dt, mpi::Op op,
              int root) const;
  void Allreduce(const buffers::Buffer& send, buffers::Buffer& recv,
                 std::size_t nbytes, mpi::Datatype dt, mpi::Op op) const;
  /// nbytes per rank; recv (root) must hold size()*nbytes.
  void Gather(const buffers::Buffer& send, buffers::Buffer* recv,
              std::size_t nbytes, int root) const;
  /// nbytes per rank; send (root) must hold size()*nbytes.
  void Scatter(const buffers::Buffer* send, buffers::Buffer& recv,
               std::size_t nbytes, int root) const;
  void Allgather(const buffers::Buffer& send, buffers::Buffer& recv,
                 std::size_t nbytes) const;
  /// send/recv hold size()*nbytes (nbytes per destination).
  void Alltoall(const buffers::Buffer& send, buffers::Buffer& recv,
                std::size_t nbytes) const;
  /// send holds size()*nbytes; recv gets the reduced nbytes block.
  void ReduceScatter(const buffers::Buffer& send, buffers::Buffer& recv,
                     std::size_t nbytes, mpi::Datatype dt, mpi::Op op) const;

  void Allgatherv(const buffers::Buffer& send, buffers::Buffer& recv,
                  std::span<const std::size_t> counts,
                  std::span<const std::size_t> displs) const;
  void Gatherv(const buffers::Buffer& send, std::size_t nbytes,
               buffers::Buffer* recv, std::span<const std::size_t> counts,
               std::span<const std::size_t> displs, int root) const;
  void Scatterv(const buffers::Buffer* send,
                std::span<const std::size_t> counts,
                std::span<const std::size_t> displs, buffers::Buffer& recv,
                std::size_t nbytes, int root) const;
  void Alltoallv(const buffers::Buffer& send,
                 std::span<const std::size_t> scounts,
                 std::span<const std::size_t> sdispls,
                 buffers::Buffer& recv,
                 std::span<const std::size_t> rcounts,
                 std::span<const std::size_t> rdispls) const;

  // ---- lowercase API: pickle path ------------------------------------------

  /// Pickle the first nbytes of `b` and ship the stream (mpi4py comm.send).
  void send_pickled(const buffers::Buffer& b, std::size_t nbytes, int dst,
                    int tag) const;
  /// Probe for the stream, unpickle into `b` (mpi4py comm.recv).
  mpi::Status recv_pickled(buffers::Buffer& b, int src, int tag) const;

  /// mpi4py comm.bcast: root pickles `b[0:nbytes]`, everyone unpickles the
  /// stream into `b`.  Requires real payloads (the stream rides the wire).
  void bcast_pickled(buffers::Buffer& b, std::size_t nbytes, int root) const;

  /// mpi4py comm.gather: every rank contributes its pickled object; the
  /// root returns one decoded payload per rank (empty elsewhere).
  [[nodiscard]] std::vector<std::vector<std::byte>> gather_pickled(
      const buffers::Buffer& b, std::size_t nbytes, int root) const;

  /// mpi4py comm.allreduce: objects are pickled, combined element-wise in
  /// the interpreter (charged at interpreter rates), and redistributed.
  void allreduce_pickled(const buffers::Buffer& send, buffers::Buffer& recv,
                         std::size_t nbytes, mpi::Datatype dt,
                         mpi::Op op) const;

 private:
  static void detail_copy_into(buffers::Buffer& dst,
                               const std::vector<std::byte>& src);
  void charge(simtime::usec_t us) const;
  [[nodiscard]] simtime::usec_t byte_cost(const buffers::Buffer& b,
                                          std::size_t nbytes, int dst) const;
  void charge_coll(CollKind kind, buffers::BufferKind k,
                   std::size_t msg_bytes) const;
  [[nodiscard]] mpi::ConstView chead(const buffers::Buffer& b,
                                     std::size_t nbytes) const;
  [[nodiscard]] mpi::MutView mhead(buffers::Buffer& b,
                                   std::size_t nbytes) const;

  mpi::Comm* comm_;
  PyCosts costs_;
  bool enabled_;
};

}  // namespace ombx::pylayer
