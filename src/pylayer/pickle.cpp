#include "pylayer/pickle.hpp"

#include <cstring>

#include "mpi/error.hpp"

namespace ombx::pylayer {

namespace {

// Header: PROTO 2, dtype tag byte, shape tuple stand-in, then the payload
// frame opcode + length field, then payload, then STOP.
constexpr std::size_t kFixedHeader = 2 /*PROTO,ver*/ + 1 /*dtype*/ +
                                     1 /*tuple meta*/;

std::size_t length_field_size(std::size_t n) noexcept {
  if (n < 256) return 1 + 1;        // SHORT_BINBYTES + u8
  if (n < (1ULL << 32)) return 1 + 4;  // BINBYTES + u32
  return 1 + 8;                     // BINBYTES8 + u64
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffU));
  }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffU));
  }
}

}  // namespace

std::size_t encoded_size(std::size_t payload_bytes,
                         mpi::Datatype /*dt*/) noexcept {
  return kFixedHeader + length_field_size(payload_bytes) + payload_bytes +
         1 /*STOP*/;
}

PickleStream encode(mpi::ConstView v, mpi::Datatype dt) {
  PickleStream s;
  s.payload_bytes = v.bytes;
  s.logical_bytes = encoded_size(v.bytes, dt);
  if (v.data == nullptr) return s;  // synthetic: header math only

  s.bytes.reserve(s.logical_bytes);
  s.bytes.push_back(static_cast<std::byte>(kOpProto));
  s.bytes.push_back(static_cast<std::byte>(2));  // protocol version
  s.bytes.push_back(static_cast<std::byte>(static_cast<int>(dt)));
  s.bytes.push_back(static_cast<std::byte>(kOpTupleMeta));

  if (v.bytes < 256) {
    s.bytes.push_back(static_cast<std::byte>(kOpShortBinBytes));
    s.bytes.push_back(static_cast<std::byte>(v.bytes));
  } else if (v.bytes < (1ULL << 32)) {
    s.bytes.push_back(static_cast<std::byte>(kOpBinBytes));
    put_u32(s.bytes, static_cast<std::uint32_t>(v.bytes));
  } else {
    s.bytes.push_back(static_cast<std::byte>(kOpBinBytes8));
    put_u64(s.bytes, static_cast<std::uint64_t>(v.bytes));
  }
  s.bytes.insert(s.bytes.end(), v.data, v.data + v.bytes);
  s.bytes.push_back(static_cast<std::byte>(kOpStop));
  OMBX_REQUIRE(s.bytes.size() == s.logical_bytes,
               "pickle encoder produced a mis-sized stream");
  return s;
}

std::size_t decode(std::span<const std::byte> stream,
                   std::size_t logical_bytes, mpi::MutView out,
                   mpi::Datatype dt) {
  if (stream.empty()) {
    // Synthetic stream: check the length arithmetic is consistent with the
    // receiver's expectation and return the implied payload size.
    OMBX_REQUIRE(logical_bytes >= kFixedHeader + 2,
                 "synthetic pickle stream too short");
    // Invert encoded_size(): try each length-field width.
    for (const std::size_t lf : {2UL, 5UL, 9UL}) {
      if (logical_bytes < kFixedHeader + lf + 1) continue;
      const std::size_t payload = logical_bytes - kFixedHeader - lf - 1;
      if (encoded_size(payload, dt) == logical_bytes) return payload;
    }
    throw mpi::Error("synthetic pickle stream length is inconsistent");
  }

  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    OMBX_REQUIRE(pos + n <= stream.size(), "truncated pickle stream");
  };
  const auto u8 = [&]() -> std::uint8_t {
    need(1);
    return static_cast<std::uint8_t>(stream[pos++]);
  };

  OMBX_REQUIRE(u8() == kOpProto, "pickle: missing PROTO opcode");
  OMBX_REQUIRE(u8() == 2, "pickle: unsupported protocol version");
  const auto dt_tag = static_cast<mpi::Datatype>(u8());
  OMBX_REQUIRE(dt_tag == dt, "pickle: datatype mismatch");
  OMBX_REQUIRE(u8() == kOpTupleMeta, "pickle: missing shape tuple");

  const std::uint8_t frame = u8();
  std::size_t payload = 0;
  if (frame == kOpShortBinBytes) {
    payload = u8();
  } else if (frame == kOpBinBytes) {
    need(4);
    for (int i = 0; i < 4; ++i) {
      payload |= static_cast<std::size_t>(
                     static_cast<std::uint8_t>(stream[pos + static_cast<std::size_t>(i)]))
                 << (8 * i);
    }
    pos += 4;
  } else if (frame == kOpBinBytes8) {
    need(8);
    for (int i = 0; i < 8; ++i) {
      payload |= static_cast<std::size_t>(
                     static_cast<std::uint8_t>(stream[pos + static_cast<std::size_t>(i)]))
                 << (8 * i);
    }
    pos += 8;
  } else {
    throw mpi::Error("pickle: unknown frame opcode");
  }

  need(payload);
  OMBX_REQUIRE(payload <= out.bytes,
               "pickle: decoded payload larger than the output buffer");
  if (out.data != nullptr && payload > 0) {
    std::memcpy(out.data, stream.data() + pos, payload);
  }
  pos += payload;
  OMBX_REQUIRE(u8() == kOpStop, "pickle: missing STOP opcode");
  OMBX_REQUIRE(pos == stream.size(), "pickle: trailing bytes in stream");
  return payload;
}

}  // namespace ombx::pylayer
