#include "pylayer/costs.hpp"

#include <stdexcept>

namespace ombx::pylayer {

usec_t PyCosts::export_cost(buffers::BufferKind k) const noexcept {
  switch (k) {
    case buffers::BufferKind::kCupy: return cupy_export_us;
    case buffers::BufferKind::kPycuda: return pycuda_export_us;
    case buffers::BufferKind::kNumba: return numba_export_us;
    case buffers::BufferKind::kByteArray:
    case buffers::BufferKind::kNumpy:
      return export_us;
  }
  return export_us;
}

usec_t PyCosts::dispatch_cost(buffers::BufferKind k) const noexcept {
  return buffers::is_gpu(k) ? gpu_dispatch_us : dispatch_us;
}

double PyCosts::per_byte_cost(buffers::BufferKind k) const noexcept {
  switch (k) {
    case buffers::BufferKind::kCupy: return cupy_per_byte_us;
    case buffers::BufferKind::kPycuda: return pycuda_per_byte_us;
    case buffers::BufferKind::kNumba: return numba_per_byte_us;
    case buffers::BufferKind::kByteArray:
    case buffers::BufferKind::kNumpy:
      return per_byte_us;
  }
  return per_byte_us;
}

usec_t PyCosts::coll_cost(CollKind coll, buffers::BufferKind k,
                          std::size_t msg_bytes) const noexcept {
  const bool gpu = buffers::is_gpu(k);
  CollCost c = gpu ? gpu_other : cpu_other;
  if (!gpu) {
    switch (coll) {
      case CollKind::kAllreduce: c = cpu_allreduce; break;
      case CollKind::kAllgather: c = cpu_allgather; break;
      case CollKind::kBarrier: c = cpu_barrier; break;
      default: c = cpu_other; break;
    }
  } else {
    switch (coll) {
      case CollKind::kAllreduce:
        c = k == buffers::BufferKind::kCupy     ? gpu_allreduce_cupy
            : k == buffers::BufferKind::kPycuda ? gpu_allreduce_pycuda
                                                : gpu_allreduce_numba;
        break;
      case CollKind::kAllgather:
        c = k == buffers::BufferKind::kCupy     ? gpu_allgather_cupy
            : k == buffers::BufferKind::kPycuda ? gpu_allgather_pycuda
                                                : gpu_allgather_numba;
        break;
      default:
        c = gpu_other;
        break;
    }
  }
  return c.fixed_us + static_cast<double>(msg_bytes) * c.per_byte_us;
}

PyCosts PyCosts::frontera() {
  PyCosts p;
  p.dispatch_us = 0.15;
  p.export_us = 0.07;
  p.per_byte_us = 2.06e-6;
  return p;
}

PyCosts PyCosts::stampede2() {
  PyCosts p;
  p.dispatch_us = 0.135;
  p.export_us = 0.07;
  p.per_byte_us = 4.10e-6;
  return p;
}

PyCosts PyCosts::ri2() {
  PyCosts p;
  p.dispatch_us = 0.135;
  p.export_us = 0.07;
  p.per_byte_us = 1.49e-6;
  return p;
}

PyCosts PyCosts::ri2_gpu() {
  PyCosts p = ri2();
  return p;
}

PyCosts PyCosts::for_cluster(const std::string& cluster_name) {
  // frontera-large is frontera on a bigger allocation: same CPUs, same
  // Python binding costs.
  if (cluster_name == "frontera" || cluster_name == "frontera-large")
    return frontera();
  if (cluster_name == "stampede2") return stampede2();
  if (cluster_name == "ri2") return ri2();
  if (cluster_name == "ri2-gpu") return ri2_gpu();
  throw std::invalid_argument("no PyCosts preset for cluster '" +
                              cluster_name + "'");
}

}  // namespace ombx::pylayer
