// Reserved for future buffer registries (pooling, pinned-memory variants).
// make_buffer lives in buffer.cpp; this TU anchors the library target.
#include "buffers/buffer.hpp"

namespace ombx::buffers {}
