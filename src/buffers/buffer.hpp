// Unified communication-buffer abstraction over the five buffer types
// OMB-Py supports: Python bytearray, NumPy ndarray (host), and CuPy /
// PyCUDA / Numba device arrays (GPU).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gpu/libs.hpp"
#include "mpi/datatype.hpp"
#include "mpi/message.hpp"
#include "net/network.hpp"

namespace ombx::buffers {

enum class BufferKind { kByteArray, kNumpy, kCupy, kPycuda, kNumba };

[[nodiscard]] std::string to_string(BufferKind k);
[[nodiscard]] bool is_gpu(BufferKind k) noexcept;
[[nodiscard]] std::optional<gpu::GpuLib> gpu_lib_of(BufferKind k) noexcept;

/// Abstract communication buffer.  data() may be nullptr for synthetic
/// buffers (logical size without backing store); all views propagate that.
class Buffer {
 public:
  virtual ~Buffer() = default;

  [[nodiscard]] virtual BufferKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::byte* data() noexcept = 0;
  [[nodiscard]] virtual const std::byte* data() const noexcept = 0;
  [[nodiscard]] virtual std::size_t bytes() const noexcept = 0;

  /// Element type carried by the buffer (kByte for raw bytearrays).
  [[nodiscard]] virtual mpi::Datatype dtype() const noexcept {
    return mpi::Datatype::kByte;
  }

  [[nodiscard]] net::MemSpace space() const noexcept {
    return is_gpu(kind()) ? net::MemSpace::kDevice : net::MemSpace::kHost;
  }

  [[nodiscard]] mpi::ConstView cview() const noexcept {
    return mpi::ConstView{data(), bytes(), space()};
  }
  [[nodiscard]] mpi::MutView mview() noexcept {
    return mpi::MutView{data(), bytes(), space()};
  }

  /// Deterministic fill pattern (no-op on synthetic buffers).
  void fill(std::uint8_t seed) noexcept;
  /// Verify the first `nbytes` of the pattern written by fill(seed)
  /// (clamped to the buffer size); synthetic buffers verify trivially.
  [[nodiscard]] bool verify(std::uint8_t seed,
                            std::size_t nbytes = SIZE_MAX) const noexcept;
};

/// Python built-in bytearray.
class ByteArrayBuffer final : public Buffer {
 public:
  ByteArrayBuffer(std::size_t bytes, bool synthetic);

  [[nodiscard]] BufferKind kind() const noexcept override {
    return BufferKind::kByteArray;
  }
  [[nodiscard]] std::byte* data() noexcept override {
    return storage_.empty() ? nullptr : storage_.data();
  }
  [[nodiscard]] const std::byte* data() const noexcept override {
    return storage_.empty() ? nullptr : storage_.data();
  }
  [[nodiscard]] std::size_t bytes() const noexcept override { return bytes_; }

 private:
  std::vector<std::byte> storage_;
  std::size_t bytes_;
};

/// NumPy ndarray (1-D, contiguous).  Carries a dtype so reducing
/// collectives can do real arithmetic on it.
class NumpyBuffer final : public Buffer {
 public:
  NumpyBuffer(std::size_t bytes, bool synthetic,
              mpi::Datatype dtype = mpi::Datatype::kByte);

  [[nodiscard]] BufferKind kind() const noexcept override {
    return BufferKind::kNumpy;
  }
  [[nodiscard]] std::byte* data() noexcept override {
    return storage_.empty() ? nullptr : storage_.data();
  }
  [[nodiscard]] const std::byte* data() const noexcept override {
    return storage_.empty() ? nullptr : storage_.data();
  }
  [[nodiscard]] std::size_t bytes() const noexcept override { return bytes_; }
  [[nodiscard]] mpi::Datatype dtype() const noexcept override {
    return dtype_;
  }

 private:
  std::vector<std::byte> storage_;
  std::size_t bytes_;
  mpi::Datatype dtype_;
};

/// A device array owned by one of the simulated GPU libraries.
class GpuLibBuffer final : public Buffer {
 public:
  GpuLibBuffer(BufferKind kind, gpu::Device& dev, std::size_t bytes,
               bool synthetic);

  [[nodiscard]] BufferKind kind() const noexcept override { return kind_; }
  [[nodiscard]] std::byte* data() noexcept override { return arr_.data(); }
  [[nodiscard]] const std::byte* data() const noexcept override {
    return arr_.data();
  }
  [[nodiscard]] std::size_t bytes() const noexcept override {
    return arr_.bytes();
  }

  [[nodiscard]] const gpu::GpuArray& array() const noexcept { return arr_; }

 private:
  BufferKind kind_;
  gpu::GpuArray arr_;
};

/// Create a buffer of the given kind.  GPU kinds require `dev`.
/// `synthetic` buffers report `bytes` but own no storage.
[[nodiscard]] std::unique_ptr<Buffer> make_buffer(BufferKind kind,
                                                  std::size_t bytes,
                                                  gpu::Device* dev = nullptr,
                                                  bool synthetic = false);

}  // namespace ombx::buffers
