#include "buffers/buffer.hpp"

#include <algorithm>

namespace ombx::buffers {

std::string to_string(BufferKind k) {
  switch (k) {
    case BufferKind::kByteArray: return "bytearray";
    case BufferKind::kNumpy: return "numpy";
    case BufferKind::kCupy: return "cupy";
    case BufferKind::kPycuda: return "pycuda";
    case BufferKind::kNumba: return "numba";
  }
  return "unknown";
}

bool is_gpu(BufferKind k) noexcept {
  switch (k) {
    case BufferKind::kCupy:
    case BufferKind::kPycuda:
    case BufferKind::kNumba:
      return true;
    case BufferKind::kByteArray:
    case BufferKind::kNumpy:
      return false;
  }
  return false;
}

std::optional<gpu::GpuLib> gpu_lib_of(BufferKind k) noexcept {
  switch (k) {
    case BufferKind::kCupy: return gpu::GpuLib::kCupy;
    case BufferKind::kPycuda: return gpu::GpuLib::kPycuda;
    case BufferKind::kNumba: return gpu::GpuLib::kNumba;
    default: return std::nullopt;
  }
}

void Buffer::fill(std::uint8_t seed) noexcept {
  std::byte* p = data();
  if (p == nullptr) return;
  const std::size_t n = bytes();
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::byte>((seed + i) & 0xffU);
  }
}

bool Buffer::verify(std::uint8_t seed, std::size_t nbytes) const noexcept {
  const std::byte* p = data();
  if (p == nullptr) return true;  // synthetic: nothing to check
  const std::size_t n = std::min(nbytes, bytes());
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] != static_cast<std::byte>((seed + i) & 0xffU)) return false;
  }
  return true;
}

ByteArrayBuffer::ByteArrayBuffer(std::size_t bytes, bool synthetic)
    : bytes_(bytes) {
  if (!synthetic && bytes > 0) storage_.resize(bytes);
}

NumpyBuffer::NumpyBuffer(std::size_t bytes, bool synthetic,
                         mpi::Datatype dtype)
    : bytes_(bytes), dtype_(dtype) {
  if (!synthetic && bytes > 0) storage_.resize(bytes);
}

namespace {
gpu::GpuArray make_array(BufferKind kind, gpu::Device& dev,
                         std::size_t bytes, bool synthetic) {
  switch (kind) {
    case BufferKind::kCupy: return gpu::cupy_empty(dev, bytes, synthetic);
    case BufferKind::kPycuda: return gpu::pycuda_empty(dev, bytes, synthetic);
    case BufferKind::kNumba:
      return gpu::numba_device_array(dev, bytes, synthetic);
    default:
      throw std::logic_error("GpuLibBuffer with a host buffer kind");
  }
}
}  // namespace

GpuLibBuffer::GpuLibBuffer(BufferKind kind, gpu::Device& dev,
                           std::size_t bytes, bool synthetic)
    : kind_(kind), arr_(make_array(kind, dev, bytes, synthetic)) {}

std::unique_ptr<Buffer> make_buffer(BufferKind kind, std::size_t bytes,
                                    gpu::Device* dev, bool synthetic) {
  switch (kind) {
    case BufferKind::kByteArray:
      return std::make_unique<ByteArrayBuffer>(bytes, synthetic);
    case BufferKind::kNumpy:
      return std::make_unique<NumpyBuffer>(bytes, synthetic);
    case BufferKind::kCupy:
    case BufferKind::kPycuda:
    case BufferKind::kNumba:
      if (dev == nullptr) {
        throw std::invalid_argument(
            "GPU buffer kinds require a gpu::Device");
      }
      return std::make_unique<GpuLibBuffer>(kind, *dev, bytes, synthetic);
  }
  throw std::invalid_argument("unknown buffer kind");
}

}  // namespace ombx::buffers
