// Rank scheduler: stackful fibers multiplexed onto a small worker pool,
// or the classic thread-per-rank backend, selected per World.
//
// Why fibers: the engine's determinism contract prices everything in
// virtual microseconds, so a rank is just a deterministic state machine
// between blocking points — it does not need an OS thread of its own.
// Mapping each rank onto a ucontext fiber bounds host threads by the
// worker-pool size instead of np, which is what makes paper-scale worlds
// (np = 224 ML figures, np >= 1024 collective sweeps) and campaign
// concurrency (cells x np) tractable on a laptop-class host.
//
// Scheduling: a process-wide FiberPool owns the workers and a run queue
// ordered by next virtual event — entries are keyed by the rank's virtual
// clock at enqueue time, ties broken FIFO.  The ordering is a liveness /
// cache nicety, not a correctness requirement: benchmark output depends
// only on virtual-time arithmetic, which host scheduling cannot touch
// (docs/execution-model.md spells out the argument).
//
// Blocking: every substrate wait (mailbox receive/probe, capacity-blocked
// enqueue, rendezvous SyncCell, FT recovery barrier) goes through a
// WaitQueue, which is a drop-in for std::condition_variable: thread-mode
// waiters block on an internal cv exactly as before; fiber waiters park —
// the fiber registers itself while still holding the caller's mutex
// (mirroring the cv's atomic release-and-block, so the existing Dekker
// wake handshakes carry over unchanged), unlocks, and yields its worker
// back to the scheduler.  notify_all wakes both kinds.
//
// The park/notify race is resolved by a per-fiber state machine
// (kParking -> kParked / kNotified): a notifier that lands while the
// fiber is still swapping out merely flips the state, and the worker
// requeues the fiber itself after the swap completes — so a fiber can
// never be resumed before its context is fully saved, and no wakeup is
// ever lost.
//
// Mode selection: Mode::kAuto resolves to fibers; the OMBX_SCHED
// environment variable (threads|fibers) overrides.  ThreadSanitizer /
// AddressSanitizer builds force threads no matter what was requested —
// the sanitizers do not understand swapcontext stack switches.
// Tunables: OMBX_SCHED_WORKERS (pool size, default hardware
// concurrency), OMBX_FIBER_STACK_KB (per-fiber stack, default 512).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace ombx::sched {

/// Rank execution backend.  kAuto resolves at World::run time (see
/// resolve); kThreads is the pre-fiber thread-per-rank engine, kept for
/// sanitizer builds and as a differential-testing baseline.
enum class Mode { kAuto, kThreads, kFibers };

/// Resolve kAuto: OMBX_SCHED env override, else fibers.  Explicit modes
/// pass through — except under TSan/ASan builds, where every request
/// (even explicit kFibers) degrades to threads: the sanitizers cannot
/// follow swapcontext, and determinism makes the swap unobservable.
[[nodiscard]] Mode resolve(Mode m) noexcept;

/// Parse "auto" / "threads" / "fibers"; throws std::invalid_argument.
[[nodiscard]] Mode mode_by_name(const std::string& s);
[[nodiscard]] const char* to_string(Mode m) noexcept;

/// True when this binary was built with TSan or ASan instrumentation.
[[nodiscard]] bool sanitizers_active() noexcept;

class Fiber;
class FiberPool;

/// The fiber currently executing on this OS thread (null outside fibers).
[[nodiscard]] Fiber* current_fiber() noexcept;

/// Identity of the current execution context: the fiber's address when on
/// a fiber, else a per-thread marker address.  Replaces thread-id
/// comparisons (e.g. the mailbox's self-send Dekker skip): under fibers
/// two different ranks can share one OS thread, so a thread id no longer
/// proves "the producer IS the consumer".  Addresses of live objects are
/// distinct, so equality is exact.
[[nodiscard]] std::uintptr_t exec_id() noexcept;

/// Cooperative yield: on a fiber, requeue behind every currently runnable
/// fiber and give the worker back (lets np > workers survive user-level
/// poll loops like `while (!req.test())`); on a plain thread, a no-op.
/// Yielded fibers are queued behind all virtual-time-ordered entries —
/// a poller has no "next virtual event" to sort by.
void maybe_yield() noexcept;

/// Backend-aware host-time sleep for retry backoff.  On a plain thread
/// this is std::this_thread::sleep_for; on a fiber it yields in a loop
/// until the deadline, so the worker keeps serving other fibers instead
/// of being host-slept out from under them (which would starve every
/// concurrent world sharing the pool — e.g. parallel campaign cells).
void backoff_sleep(double ms);

/// Process-wide fiber scheduler.  One instance serves every World in
/// fiber mode, so concurrent campaign cells share the worker pool instead
/// of multiplying host threads by np.
class FiberPool {
 public:
  /// The shared pool (workers are spawned lazily on first use).
  [[nodiscard]] static FiberPool& instance();

  /// Run `body(rank)` for ranks 0..nranks-1 as fibers; blocks the calling
  /// thread until every fiber finishes.  `vtime(rank)` samples the rank's
  /// virtual clock for run-queue ordering (called only while the rank is
  /// parked or before it starts, so a plain read is race-free).
  /// `stack_bytes` == 0 selects the default (OMBX_FIBER_STACK_KB).
  /// Must not be called from inside a fiber (worlds do not nest onto the
  /// pool; World::run falls back to threads in that case).
  void run_world(int nranks, const std::function<void(int)>& body,
                 const std::function<double(int)>& vtime,
                 std::size_t stack_bytes = 0);

  /// Worker-pool size (resolves OMBX_SCHED_WORKERS on first call).
  [[nodiscard]] int workers();

  /// Fibers currently runnable (queued) or executing, across every world
  /// sharing the pool.  Deadlock detectors consult this: a world whose
  /// ranks all look blocked may simply be waiting for a notified fiber to
  /// reach the front of a busy run queue, so "deadlock" additionally
  /// requires an idle pool — in a true deadlock every fiber is parked and
  /// this returns 0.  Always 0 on the thread backend.
  [[nodiscard]] int active();

  ~FiberPool();
  FiberPool(const FiberPool&) = delete;
  FiberPool& operator=(const FiberPool&) = delete;

 private:
  FiberPool();
  struct Impl;
  std::unique_ptr<Impl> impl_;
  friend class Fiber;      ///< fibers hold their pool's Impl
  friend class WaitQueue;  ///< unparks via the fiber's pool Impl
};

/// Drop-in replacement for std::condition_variable at the substrate's
/// blocking points, aware of both backends.  The caller-side contract is
/// identical to a cv: wait() atomically releases the caller's lock and
/// blocks (parks), re-acquiring before return; spurious wakeups are
/// possible, so every wait sits in a predicate loop.  notify_all() must
/// be called either holding the associated mutex or after acquiring and
/// releasing it (the mailbox's empty lock_guard idiom) — exactly the
/// discipline the cv sites already follow.
class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  void wait(std::unique_lock<std::mutex>& lk);

  template <typename Pred>
  void wait(std::unique_lock<std::mutex>& lk, Pred pred) {
    while (!pred()) wait(lk);
  }

  void notify_all();

 private:
  std::condition_variable cv_;      ///< thread-mode waiters
  std::mutex wm_;                   ///< guards fiber_waiters_
  std::vector<Fiber*> fiber_waiters_;
  /// Lock-free "any fiber waiting?" gate for notify_all.  Incremented
  /// under both wm_ and the caller's mutex before that mutex is released,
  /// so a notifier that has acquired (or empty-acquired) the caller's
  /// mutex is guaranteed to observe the registration — the same
  /// visibility argument the cv relied on.
  std::atomic<int> nfibers_{0};
};

}  // namespace ombx::sched
