#include "sched/sched.hpp"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>

namespace ombx::sched {

namespace {

/// The fiber running on this OS thread (null on plain threads, including
/// pool workers between fibers).
thread_local Fiber* tls_fiber = nullptr;

/// Per-thread marker for exec_id(): the address of a live thread_local is
/// unique among live threads and can never equal a live Fiber's address.
thread_local char tls_exec_marker = 0;

std::size_t page_size() noexcept {
  static const std::size_t p = [] {
    const long v = ::sysconf(_SC_PAGESIZE);
    return v > 0 ? static_cast<std::size_t>(v) : std::size_t{4096};
  }();
  return p;
}

std::size_t default_stack_bytes() noexcept {
  static const std::size_t bytes = [] {
    std::size_t kb = 512;
    if (const char* e = std::getenv("OMBX_FIBER_STACK_KB")) {
      const long v = std::atol(e);
      if (v >= 64 && v <= 64 * 1024) kb = static_cast<std::size_t>(v);
    }
    return kb * 1024;
  }();
  return bytes;
}

}  // namespace

bool sanitizers_active() noexcept {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

Mode resolve(Mode m) noexcept {
  // The sanitizers' happens-before and shadow-stack machinery does not
  // follow swapcontext, so instrumented builds run thread-per-rank even
  // when fibers were requested explicitly — degrading beats reporting
  // false races from every stack switch.  Determinism makes the swap
  // unobservable in benchmark output.
  if (sanitizers_active()) return Mode::kThreads;
  if (m != Mode::kAuto) return m;
  if (const char* e = std::getenv("OMBX_SCHED")) {
    if (std::strcmp(e, "threads") == 0) return Mode::kThreads;
    if (std::strcmp(e, "fibers") == 0) return Mode::kFibers;
  }
  return Mode::kFibers;
}

Mode mode_by_name(const std::string& s) {
  if (s == "auto") return Mode::kAuto;
  if (s == "threads") return Mode::kThreads;
  if (s == "fibers") return Mode::kFibers;
  throw std::invalid_argument("unknown scheduler mode '" + s +
                              "' (want auto|threads|fibers)");
}

const char* to_string(Mode m) noexcept {
  switch (m) {
    case Mode::kAuto:
      return "auto";
    case Mode::kThreads:
      return "threads";
    case Mode::kFibers:
      return "fibers";
  }
  return "?";
}

Fiber* current_fiber() noexcept { return tls_fiber; }

std::uintptr_t exec_id() noexcept {
  if (Fiber* f = tls_fiber) return reinterpret_cast<std::uintptr_t>(f);
  return reinterpret_cast<std::uintptr_t>(&tls_exec_marker);
}

// ---- Fiber ------------------------------------------------------------------

/// One world being executed on the pool (stack-local in run_world).
struct WorldRun {
  const std::function<void(int)>* body = nullptr;
  std::function<double(int)> vtime;
  std::mutex m;
  std::condition_variable done_cv;
  int remaining = 0;
  std::exception_ptr first_error;  ///< first exception escaping a body
};

/// A stackful (ucontext) fiber running one rank's body.
class Fiber {
 public:
  /// Park/notify handshake states.  The fiber stores kParking before it
  /// registers in a WaitQueue and swaps out; the worker CASes kParking ->
  /// kParked once the swap has completed; a notifier exchanges to
  /// kNotified and requeues only when it displaced kParked (otherwise the
  /// worker's failed CAS does the requeue).  This is what makes a wakeup
  /// that races the swap-out safe: the fiber cannot reach a worker's run
  /// slot until its context save is complete.
  enum State : int { kRunning, kParking, kParked, kNotified };

  Fiber(FiberPool::Impl* pool, WorldRun* world, int rank,
        std::size_t stack_bytes)
      : pool_(pool), world_(world), rank_(rank) {
    const std::size_t guard = page_size();
    const std::size_t stack =
        ((stack_bytes + page_size() - 1) / page_size()) * page_size();
    map_bytes_ = guard + stack;
    map_ = ::mmap(nullptr, map_bytes_, PROT_NONE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (map_ == MAP_FAILED) {
      throw std::runtime_error("sched: fiber stack mmap failed");
    }
    // Low guard page stays PROT_NONE: stack overflow faults instead of
    // silently corrupting the neighbouring fiber's pages.
    if (::mprotect(static_cast<char*>(map_) + guard, stack,
                   PROT_READ | PROT_WRITE) != 0) {
      ::munmap(map_, map_bytes_);
      throw std::runtime_error("sched: fiber stack mprotect failed");
    }
    if (::getcontext(&ctx_) != 0) {
      ::munmap(map_, map_bytes_);
      throw std::runtime_error("sched: getcontext failed");
    }
    ctx_.uc_stack.ss_sp = static_cast<char*>(map_) + guard;
    ctx_.uc_stack.ss_size = stack;
    ctx_.uc_link = nullptr;  // fibers exit via an explicit final swap
    // makecontext passes ints only; split the pointer into two words.
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                  static_cast<unsigned>(self >> 32),
                  static_cast<unsigned>(self & 0xffffffffu));
  }

  ~Fiber() {
    if (map_ != MAP_FAILED) ::munmap(map_, map_bytes_);
  }

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] WorldRun* world() const noexcept { return world_; }
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Fiber side: swap back to the worker.  Used by both parking (state
  /// already kParking, registered in a WaitQueue) and yielding
  /// (yield_ set); returns when a worker resumes this fiber.
  void switch_out() { ::swapcontext(&ctx_, ret_); }

  FiberPool::Impl* pool_;
  WorldRun* world_;
  int rank_;
  std::atomic<int> state_{kRunning};
  bool yield_ = false;  ///< fiber-side request; worker-side consumed
  bool done_ = false;
  ucontext_t ctx_{};
  ucontext_t* ret_ = nullptr;  ///< current worker's scheduler context
  void* map_ = MAP_FAILED;
  std::size_t map_bytes_ = 0;

 private:
  static void trampoline(unsigned hi, unsigned lo);
};

// ---- FiberPool --------------------------------------------------------------

struct FiberPool::Impl {
  struct Entry {
    double vt = 0.0;       ///< virtual clock at enqueue (+inf for yields)
    std::uint64_t seq = 0;  ///< FIFO tiebreak
    Fiber* f = nullptr;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.vt != b.vt ? a.vt > b.vt : a.seq > b.seq;
    }
  };

  std::mutex qm_;
  std::condition_variable qcv_;
  std::vector<Entry> ready_;  ///< min-heap (Later), earliest event first
  std::atomic<int> running_{0};  ///< fibers currently swapped in on a worker
  std::uint64_t next_entry_seq_ = 0;
  bool stop_ = false;
  bool workers_started_ = false;
  int nworkers_ = 0;
  std::vector<std::thread> workers_;

  int resolve_workers() {
    int n = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* e = std::getenv("OMBX_SCHED_WORKERS")) {
      const long v = std::atol(e);
      if (v >= 1 && v <= 256) n = static_cast<int>(v);
    }
    return std::clamp(n, 1, 64);
  }

  void ensure_workers() {
    std::lock_guard<std::mutex> lk(qm_);
    if (workers_started_) return;
    workers_started_ = true;
    nworkers_ = resolve_workers();
    workers_.reserve(static_cast<std::size_t>(nworkers_));
    for (int i = 0; i < nworkers_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void push_locked(Fiber* f, double vt) {
    ready_.push_back(Entry{vt, next_entry_seq_++, f});
    std::push_heap(ready_.begin(), ready_.end(), Later{});
  }

  /// Requeue a runnable fiber.  `yield` entries sort behind every
  /// virtual-time-keyed entry: a poller has no next virtual event, and
  /// ordering it first by its (stale) clock could starve the very rank
  /// it is polling for.
  void requeue(Fiber* f, bool yield) {
    const double vt = yield ? std::numeric_limits<double>::infinity()
                            : f->world_->vtime(f->rank_);
    {
      std::lock_guard<std::mutex> lk(qm_);
      push_locked(f, vt);
    }
    qcv_.notify_one();
  }

  void worker_loop() {
    ucontext_t worker_ctx;
    for (;;) {
      Fiber* f = nullptr;
      {
        std::unique_lock<std::mutex> lk(qm_);
        qcv_.wait(lk, [&] { return stop_ || !ready_.empty(); });
        if (stop_) return;
        std::pop_heap(ready_.begin(), ready_.end(), Later{});
        f = ready_.back().f;
        ready_.pop_back();
        // Claimed while still holding qm_, so active() (queued + running)
        // never dips to zero with a runnable fiber in flight.
        running_.fetch_add(1, std::memory_order_relaxed);
      }
      f->ret_ = &worker_ctx;
      f->state_.store(Fiber::kRunning, std::memory_order_seq_cst);
      tls_fiber = f;
      ::swapcontext(&worker_ctx, &f->ctx_);
      tls_fiber = nullptr;
      // The fiber's context is fully saved from here on — only now may it
      // become resumable again.
      if (f->done_) {
        finish(f);
      } else if (f->yield_) {
        f->yield_ = false;
        requeue(f, /*yield=*/true);
      } else {
        int expected = Fiber::kParking;
        if (!f->state_.compare_exchange_strong(expected, Fiber::kParked,
                                               std::memory_order_seq_cst)) {
          // A notify landed during the swap-out (kNotified): the wakeup is
          // ours to deliver.
          requeue(f, /*yield=*/false);
        }
      }
      // After any requeue above, so a parked-then-woken fiber is back in
      // the queue before the running count drops.
      running_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void finish(Fiber* f) {
    WorldRun* w = f->world_;
    std::lock_guard<std::mutex> lk(w->m);
    if (--w->remaining == 0) w->done_cv.notify_all();
    // `f` is dead after the world lock releases: run_world owns the
    // fibers and destroys them once remaining hits zero.
  }

  void unpark(Fiber* f) {
    const int prev =
        f->state_.exchange(Fiber::kNotified, std::memory_order_seq_cst);
    if (prev == Fiber::kParked) {
      requeue(f, /*yield=*/false);
    }
    // kParking: the worker's CAS fails and requeues; kNotified: a wakeup
    // is already pending.  kRunning is impossible — a fiber is only ever
    // in one WaitQueue registration at a time, and it stores kParking
    // before registering.
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lk(qm_);
      stop_ = true;
    }
    qcv_.notify_all();
    for (auto& t : workers_) t.join();
    workers_.clear();
  }
};

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* f = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  try {
    (*f->world_->body)(f->rank_);
  } catch (...) {
    // Rank bodies normally handle their own failures (World::run's
    // per-rank catch blocks); anything escaping is surfaced to the
    // run_world caller instead of terminating.
    std::lock_guard<std::mutex> lk(f->world_->m);
    if (!f->world_->first_error) {
      f->world_->first_error = std::current_exception();
    }
  }
  f->done_ = true;
  f->switch_out();
  // Unreachable: a done fiber is never resumed.
}

FiberPool::FiberPool() : impl_(std::make_unique<Impl>()) {}

FiberPool::~FiberPool() { impl_->stop_workers(); }

FiberPool& FiberPool::instance() {
  static FiberPool pool;
  return pool;
}

int FiberPool::workers() {
  impl_->ensure_workers();
  return impl_->nworkers_;
}

int FiberPool::active() {
  std::lock_guard<std::mutex> lk(impl_->qm_);
  return static_cast<int>(impl_->ready_.size()) +
         impl_->running_.load(std::memory_order_relaxed);
}

void FiberPool::run_world(int nranks, const std::function<void(int)>& body,
                          const std::function<double(int)>& vtime,
                          std::size_t stack_bytes) {
  if (tls_fiber != nullptr) {
    throw std::logic_error("sched: run_world called from inside a fiber");
  }
  if (nranks <= 0) return;
  impl_->ensure_workers();
  const std::size_t stack =
      stack_bytes != 0 ? stack_bytes : default_stack_bytes();

  WorldRun world;
  world.body = &body;
  world.vtime = vtime;
  world.remaining = nranks;

  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    fibers.push_back(
        std::make_unique<Fiber>(impl_.get(), &world, r, stack));
  }
  {
    std::lock_guard<std::mutex> lk(impl_->qm_);
    for (auto& f : fibers) {
      impl_->push_locked(f.get(), world.vtime(f->rank()));
    }
  }
  impl_->qcv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(world.m);
    world.done_cv.wait(lk, [&] { return world.remaining == 0; });
  }
  fibers.clear();
  if (world.first_error) std::rethrow_exception(world.first_error);
}

void maybe_yield() noexcept {
  Fiber* f = tls_fiber;
  if (f == nullptr) return;
  f->yield_ = true;
  f->switch_out();
}

void backoff_sleep(double ms) {
  if (ms <= 0.0) return;
  if (tls_fiber == nullptr) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    return;
  }
  // On a fiber, host-sleeping would take the pool worker down with us and
  // starve every other fiber queued on it.  Yield-loop instead: each pass
  // requeues this fiber behind all runnable work, so the pool stays busy
  // while we wait out the backoff.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(ms));
  while (std::chrono::steady_clock::now() < deadline) maybe_yield();
}

// ---- WaitQueue --------------------------------------------------------------

void WaitQueue::wait(std::unique_lock<std::mutex>& lk) {
  Fiber* f = tls_fiber;
  if (f == nullptr) {
    cv_.wait(lk);
    return;
  }
  // Order matters: kParking must be stored before the fiber is visible to
  // notifiers, or an unpark's kNotified could be overwritten (lost).
  f->state_.store(Fiber::kParking, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> ql(wm_);
    fiber_waiters_.push_back(f);
    nfibers_.fetch_add(1, std::memory_order_seq_cst);
  }
  // Registration happened while still holding the caller's mutex, so any
  // notifier that acquires (or empty-acquires) that mutex afterwards is
  // guaranteed to find this fiber in the queue — the cv's no-lost-wakeup
  // guarantee, reconstructed.
  lk.unlock();
  f->switch_out();
  lk.lock();
}

void WaitQueue::notify_all() {
  cv_.notify_all();
  if (nfibers_.load(std::memory_order_seq_cst) == 0) return;
  std::vector<Fiber*> wake;
  {
    std::lock_guard<std::mutex> ql(wm_);
    wake.swap(fiber_waiters_);
    nfibers_.store(0, std::memory_order_seq_cst);
  }
  for (Fiber* f : wake) f->pool_->unpark(f);
}

}  // namespace ombx::sched
