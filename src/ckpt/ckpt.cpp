#include "ckpt/ckpt.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "check/checker.hpp"
#include "mpi/coll_util.hpp"
#include "mpi/collectives.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace ombx::ckpt {

namespace {

/// Buddy partner as a uniform shift: with block placement ([0, ppn) on
/// node 0, ...) a shift of ppn lands each snapshot on another node
/// whenever the job spans more than one; on a single node fall back to
/// the ring neighbour.  A uniform shift keeps the exchange a symmetric
/// sendrecv pattern — rank r sends to r+s while receiving from r-s, so
/// the pattern is deadlock-free for every n and s.
int buddy_shift(const mpi::Comm& comm) {
  const int n = comm.size();
  const int ppn = comm.net().ppn();
  return (ppn > 0 && ppn < n) ? ppn : 1;
}

}  // namespace

// ---- Store -----------------------------------------------------------------

Store::Store(int nranks) : nranks_(nranks) {
  OMBX_REQUIRE(nranks >= 2, "checkpoint store needs at least 2 ranks");
}

std::size_t Store::RankSnap::total_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& r : regions) total += r.size();
  return total;
}

void Store::commit(int gen, int rank, RankSnap snap) {
  std::lock_guard<std::mutex> lk(m_);
  OMBX_REQUIRE(rank >= 0 && rank < nranks_,
               "checkpoint commit from an out-of-range rank");
  auto& slots = gens_[gen];
  if (slots.empty()) slots.resize(static_cast<std::size_t>(nranks_));
  auto& slot = slots[static_cast<std::size_t>(rank)];
  OMBX_REQUIRE(!slot.has_value(), "duplicate checkpoint commit");
  slot.emplace(std::move(snap));
}

int Store::last_complete_generation() const {
  std::lock_guard<std::mutex> lk(m_);
  int best = -1;
  for (const auto& [gen, slots] : gens_) {
    const bool complete = std::all_of(
        slots.begin(), slots.end(),
        [](const std::optional<RankSnap>& s) { return s.has_value(); });
    if (complete) best = std::max(best, gen);
  }
  return best;
}

const Store::RankSnap* Store::find(int gen, int rank) const {
  std::lock_guard<std::mutex> lk(m_);
  auto it = gens_.find(gen);
  if (it == gens_.end()) return nullptr;
  if (rank < 0 || rank >= static_cast<int>(it->second.size())) return nullptr;
  const auto& slot = it->second[static_cast<std::size_t>(rank)];
  return slot.has_value() ? &*slot : nullptr;
}

// ---- Checkpointer ----------------------------------------------------------

Checkpointer::Checkpointer(mpi::Comm& comm, Store& store,
                           const CkptConfig& cfg)
    : comm_(&comm), store_(&store), cfg_(cfg) {
  OMBX_REQUIRE(comm.size() == store.nranks(),
               "checkpoint store sized for a different world");
  const int n = comm.size();
  const int s = buddy_shift(comm);
  const int me = comm.rank();
  buddy_ = comm.world_rank((me + s) % n);
  buddy_src_ = comm.world_rank((me - s + n) % n);
}

void Checkpointer::register_region(std::string name, void* data,
                                   std::size_t bytes) {
  OMBX_REQUIRE(data != nullptr || bytes == 0,
               "checkpoint region must point at real state");
  regions_.push_back(
      Region{std::move(name), static_cast<std::byte*>(data), bytes});
}

int Checkpointer::checkpoint() {
  mpi::Comm& c = *comm_;
  const int me_world = c.world_rank(c.rank());
  const usec_t t_enter = c.now();

  // Align the epoch: every rank snapshots from the same collective cut,
  // so a restored generation is globally consistent.
  mpi::barrier(c);

  // Local snapshot: a priced memory copy of every registered region.
  Store::RankSnap snap;
  snap.taken_at = c.now();
  snap.buddy = buddy_;
  std::size_t total = 0;
  snap.regions.reserve(regions_.size());
  for (const Region& r : regions_) {
    std::vector<std::byte> copy(r.bytes);
    if (r.bytes > 0) std::memcpy(copy.data(), r.data, r.bytes);
    total += r.bytes;
    snap.regions.push_back(std::move(copy));
  }
  c.charge_bytes(static_cast<double>(total));

  // Buddy replication: a symmetric shift exchange over the substrate so
  // the copy is priced by the network model.  Internal traffic — the
  // strict checker must not pin these transient buffers, and the payload
  // itself is snapshot metadata, not application communication.
  {
    check::InternalOp internal(c.engine().checker(), me_world);
    std::uint64_t my_bytes = total;
    std::uint64_t buddy_bytes = 0;
    const int dst = (c.rank() + buddy_shift(c)) % c.size();
    const int src = (c.rank() - buddy_shift(c) + c.size()) % c.size();
    (void)c.sendrecv(
        mpi::ConstView{reinterpret_cast<const std::byte*>(&my_bytes),
                       sizeof(my_bytes)},
        dst, mpi::detail::kTagCkpt,
        mpi::MutView{reinterpret_cast<std::byte*>(&buddy_bytes),
                     sizeof(buddy_bytes)},
        src, mpi::detail::kTagCkpt);
    // The payload exchange is synthetic-friendly: the snapshot already
    // lives in the Store, so the wire carries a null view of the right
    // size — full virtual-time cost, no second host copy.
    (void)c.sendrecv(
        mpi::ConstView{nullptr, static_cast<std::size_t>(my_bytes)}, dst,
        mpi::detail::kTagCkpt,
        mpi::MutView{nullptr, static_cast<std::size_t>(buddy_bytes)}, src,
        mpi::detail::kTagCkpt);
  }
  snap.replicated = true;

  const int gen = next_gen_++;
  store_->commit(gen, me_world, std::move(snap));
  gen_ = gen;
  ++count_;
  last_cost_ = c.now() - t_enter;
  total_cost_ += last_cost_;
  bump_counters(/*checkpoints=*/1, /*bytes=*/total, /*restores=*/0,
                /*rolled_back_us=*/0);
  return gen;
}

double Checkpointer::mtbf_us() const {
  if (cfg_.mtbf_us > 0.0) return cfg_.mtbf_us;
  // Derive from the fault plan: the earliest scheduled kill is the one
  // failure this run will actually see.
  double earliest = 0.0;
  if (const fault::FaultPlan* plan = comm_->engine().fault_plan()) {
    for (int r = 0; r < store_->nranks(); ++r) {
      if (auto t = plan->kill_time(r)) {
        earliest = (earliest == 0.0) ? *t : std::min(earliest, *t);
      }
    }
  }
  return earliest > 0.0 ? earliest : 1e6;
}

bool Checkpointer::maybe_checkpoint() {
  mpi::Comm& c = *comm_;
  // First call: take the baseline generation and start calibrating.
  if (count_ == 0) {
    (void)checkpoint();
    calib_t1_ = c.now();
    calls_since_ckpt_ = 0;
    return true;
  }
  // Second call: one small max-allreduce agrees on the per-iteration cost
  // and the checkpoint cost, from which every rank derives the identical
  // stride.  (A local-clock trigger would make ranks disagree about
  // whether an interval boundary was crossed — a collective mismatch.)
  if (stride_ == 0) {
    double in[2] = {c.now() - calib_t1_, last_cost_};
    double out[2] = {0.0, 0.0};
    {
      check::InternalOp internal(c.engine().checker(),
                                 c.world_rank(c.rank()));
      mpi::allreduce(c,
                     mpi::ConstView{reinterpret_cast<const std::byte*>(in),
                                    sizeof(in)},
                     mpi::MutView{reinterpret_cast<std::byte*>(out),
                                  sizeof(out)},
                     mpi::Datatype::kDouble, mpi::Op::kMax);
    }
    const double t_iter = std::max(out[0], 1e-9);
    const double delta = std::max(out[1], 1e-9);
    resolved_interval_ =
        cfg_.daly ? std::sqrt(2.0 * delta * mtbf_us()) : cfg_.interval_us;
    stride_ = std::max(
        1, static_cast<int>(std::lround(resolved_interval_ / t_iter)));
    calls_since_ckpt_ = 1;  // the calibration iteration itself
    return false;
  }
  if (++calls_since_ckpt_ < stride_) return false;
  (void)checkpoint();
  calls_since_ckpt_ = 0;
  return true;
}

Checkpointer::RestoreResult Checkpointer::restore(
    mpi::Comm& alive, const std::vector<int>& failed) {
  const int me_world = alive.world_rank(alive.rank());
  const usec_t t_enter = alive.now();
  RestoreResult res;

  // Entry barrier on the survivors: nobody rewinds state while a peer may
  // still be pushing pre-failure traffic at it.
  mpi::barrier(alive);

  // Agree on the rollback target.  last_complete_generation() is already
  // a pure function of the committed set, but real survivors would have
  // to agree over the wire — a min-allreduce models (and prices) that.
  double g_local = static_cast<double>(store_->last_complete_generation());
  double g_agreed = 0.0;
  {
    check::InternalOp internal(alive.engine().checker(), me_world);
    mpi::allreduce(alive,
                   mpi::ConstView{reinterpret_cast<const std::byte*>(&g_local),
                                  sizeof(g_local)},
                   mpi::MutView{reinterpret_cast<std::byte*>(&g_agreed),
                                sizeof(g_agreed)},
                   mpi::Datatype::kDouble, mpi::Op::kMin);
  }
  res.generation = static_cast<int>(g_agreed);
  if (res.generation < 0) {
    mpi::barrier(alive);  // exit barrier still aligns the cold restart
    return res;
  }

  // Rewind this rank's own regions from its primary snapshot (a priced
  // local copy, mirroring the snapshot cost).
  const Store::RankSnap* mine = store_->find(res.generation, me_world);
  OMBX_REQUIRE_AT(mine != nullptr,
                  "agreed checkpoint generation missing own snapshot",
                  me_world, alive.context());
  OMBX_REQUIRE_AT(mine->regions.size() == regions_.size(),
                  "checkpoint region registration changed since snapshot",
                  me_world, alive.context());
  std::size_t total = 0;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const auto& saved = mine->regions[i];
    OMBX_REQUIRE_AT(saved.size() == regions_[i].bytes,
                    "checkpoint region size changed since snapshot",
                    me_world, alive.context());
    if (!saved.empty()) {
      std::memcpy(regions_[i].data, saved.data(), saved.size());
    }
    total += saved.size();
  }
  alive.charge_bytes(static_cast<double>(total));
  res.rolled_back_us = std::max(0.0, t_enter - mine->taken_at);

  // Adopt the dead ranks' state from their buddy copies.  Survivor list
  // and failed list are identical on every rank (both derive from the
  // shrunken communicator), so adopter selection is deterministic:
  // a dead rank is adopted by its closest surviving successor.
  std::vector<int> survivors(static_cast<std::size_t>(alive.size()));
  for (int r = 0; r < alive.size(); ++r) {
    survivors[static_cast<std::size_t>(r)] = alive.world_rank(r);
  }
  const int world_n = store_->nranks();
  for (int dead : failed) {
    const Store::RankSnap* snap = store_->find(res.generation, dead);
    OMBX_REQUIRE_AT(snap != nullptr,
                    "agreed checkpoint generation missing a dead rank",
                    me_world, alive.context());
    const bool host_alive =
        snap->replicated &&
        std::binary_search(survivors.begin(), survivors.end(), snap->buddy);
    if (!host_alive) {
      throw SnapshotUnavailableError(dead, snap->buddy, res.generation);
    }
    // Closest surviving world rank after `dead`, wrapping.
    int adopter = -1;
    for (int off = 1; off < world_n && adopter < 0; ++off) {
      const int cand = (dead + off) % world_n;
      if (std::binary_search(survivors.begin(), survivors.end(), cand)) {
        adopter = cand;
      }
    }
    OMBX_REQUIRE_AT(adopter >= 0, "restore found no surviving adopter",
                    me_world, alive.context());
    if (snap->buddy != adopter) {
      // Price the buddy -> adopter transfer as real internal traffic.
      const auto host_it =
          std::find(survivors.begin(), survivors.end(), snap->buddy);
      const auto adopt_it =
          std::find(survivors.begin(), survivors.end(), adopter);
      const int host_cr =
          static_cast<int>(host_it - survivors.begin());
      const int adopt_cr =
          static_cast<int>(adopt_it - survivors.begin());
      const std::size_t bytes = snap->total_bytes();
      check::InternalOp internal(alive.engine().checker(), me_world);
      if (alive.rank() == host_cr) {
        alive.send(mpi::ConstView{nullptr, bytes}, adopt_cr,
                   mpi::detail::kTagCkpt);
      } else if (alive.rank() == adopt_cr) {
        (void)alive.recv(mpi::MutView{nullptr, bytes}, host_cr,
                         mpi::detail::kTagCkpt);
      }
    }
    if (me_world == adopter) {
      adopted_[dead] = snap;
      res.adopted.push_back(dead);
    }
  }

  // Exit barrier: restored state is visible everywhere before anyone
  // resumes application traffic.
  mpi::barrier(alive);
  gen_ = res.generation;
  bump_counters(/*checkpoints=*/0, /*bytes=*/0, /*restores=*/1,
                static_cast<std::uint64_t>(res.rolled_back_us));
  return res;
}

const std::vector<std::byte>* Checkpointer::adopted_region(
    int dead_rank, std::size_t index) const {
  auto it = adopted_.find(dead_rank);
  if (it == adopted_.end()) return nullptr;
  if (index >= it->second->regions.size()) return nullptr;
  return &it->second->regions[index];
}

void Checkpointer::bump_counters(std::uint64_t checkpoints,
                                 std::uint64_t bytes, std::uint64_t restores,
                                 std::uint64_t rolled_back_us) {
  obs::Metrics* m = comm_->engine().metrics();
  if (m == nullptr) return;
  obs::RankCounters& c = m->rank(comm_->world_rank(comm_->rank()));
  if (checkpoints > 0) obs::bump(c.ckpt_checkpoints, checkpoints);
  if (bytes > 0) obs::bump(c.ckpt_bytes_replicated, bytes);
  if (restores > 0) obs::bump(c.ckpt_restores, restores);
  if (rolled_back_us > 0) obs::bump(c.ckpt_rolled_back_us, rolled_back_us);
}

}  // namespace ombx::ckpt
