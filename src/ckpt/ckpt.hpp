// Application-level coordinated checkpoint/restart with buddy
// replication, layered on the FT substrate (ft/ft.hpp).
//
// Ranks register named state regions with a Checkpointer; checkpoint()
// runs as a collective epoch: a barrier aligns the ranks, each rank
// snapshots its regions into the shared Store (a priced local copy), and
// buddy-replicates the snapshot to a partner rank over the real substrate
// (a sendrecv priced through net::NetworkModel, so checkpoint cost is
// visible in virtual time).  The partner is topology-aware: ranks shift by
// ppn so the copy lands on the next node when the job spans several nodes
// (block placement, see net/topology.hpp), falling back to the ring
// neighbour on a single node.
//
// Recovery composes with ULFM: after revoke/agree/shrink, survivors call
// restore() on the shrunken communicator.  The world rolls back to the
// last *complete* generation (every rank committed), each survivor
// rewinds its own regions from its primary snapshot, and every dead
// rank's state is fetched from its buddy copy by a deterministic adopter
// (the dead rank's closest surviving successor) — a real priced transfer
// when the adopter is not the buddy host itself.  A dead rank's primary
// snapshot died with it; if its buddy is also dead the state is genuinely
// unrecoverable and restore() raises SnapshotUnavailableError naming both.
//
// Interval policy: coordinated checkpoints must be entered by every rank,
// so the trigger cannot be each rank's (slightly divergent) local clock.
// maybe_checkpoint() is called once per application iteration; on its
// second call the ranks agree — one small max-allreduce — on the measured
// per-iteration virtual cost and the gen-0 checkpoint cost, and convert
// the requested interval into an iteration stride every rank computes
// identically.  Daly mode derives the interval as the Young/Daly optimum
// tau = sqrt(2 * delta * MTBF), with delta the agreed checkpoint cost and
// the MTBF taken from the config or (by default) the fault plan's
// earliest kill time.
//
// Contracts inherited from the rest of the codebase:
//   - determinism: every decision is a pure function of virtual time and
//     the seeded plan, so double runs are byte-identical (threads and
//     fibers alike);
//   - no-hang: every blocking point is ordinary substrate traffic, so the
//     restore barriers are watchdog-backstopped and park fiber-aware via
//     sched::WaitQueue like any other wait;
//   - zero perturbation: nothing here is constructed unless
//     CkptConfig::enabled is set, and a disabled config leaves every
//     benchmark output byte-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/error.hpp"
#include "simtime/clock.hpp"

namespace ombx::ckpt {

using simtime::usec_t;

/// Checkpoint/restart knobs (--ckpt-interval / --ckpt-mtbf).  The
/// all-defaults config disables the subsystem entirely.
struct CkptConfig {
  bool enabled = false;
  /// Target virtual-time spacing between checkpoints, converted to an
  /// iteration stride at calibration (see header comment).  Ignored when
  /// `daly` is set.
  double interval_us = 0.0;
  /// Young/Daly optimal-interval mode (--ckpt-interval daly).
  bool daly = false;
  /// Mean time between failures for the Daly formula; 0 derives it from
  /// the fault plan's earliest kill time (default 1e6 us with no kills).
  double mtbf_us = 0.0;
};

/// A dead rank's state could not be recovered: its primary snapshot died
/// with it and its buddy copy is on another dead rank.
class SnapshotUnavailableError : public mpi::Error {
 public:
  SnapshotUnavailableError(int dead_rank, int buddy_rank, int generation)
      : mpi::Error("checkpoint generation " + std::to_string(generation) +
                       " for dead rank " + std::to_string(dead_rank) +
                       " is unrecoverable: buddy rank " +
                       std::to_string(buddy_rank) + " also failed",
                   dead_rank),
        buddy_(buddy_rank),
        generation_(generation) {}

  [[nodiscard]] int buddy_rank() const noexcept { return buddy_; }
  [[nodiscard]] int generation() const noexcept { return generation_; }

 private:
  int buddy_;
  int generation_;
};

/// Shared snapshot store for one world: (generation, rank) -> committed
/// region bytes plus replication metadata.  Thread-safe; committed
/// snapshots are immutable, so pointers returned by find() stay valid for
/// the Store's lifetime.  One Store is shared by every rank of a world
/// (construct it outside World::run), mirroring the simulated reality
/// that each rank's primary snapshot lives in its own memory and the
/// buddy copy in its partner's.
class Store {
 public:
  explicit Store(int nranks);

  [[nodiscard]] int nranks() const noexcept { return nranks_; }

  /// One rank's committed snapshot of one generation.
  struct RankSnap {
    usec_t taken_at = 0.0;  ///< virtual time of the snapshot copy
    std::vector<std::vector<std::byte>> regions;  ///< registration order
    bool replicated = false;  ///< buddy exchange completed
    int buddy = -1;           ///< world rank holding the buddy copy
    [[nodiscard]] std::size_t total_bytes() const noexcept;
  };

  /// Commit `rank`'s snapshot of generation `gen` (exactly once per
  /// (gen, rank); a rank that dies mid-checkpoint simply never commits,
  /// leaving the generation incomplete).
  void commit(int gen, int rank, RankSnap snap);

  /// Largest generation every rank committed, -1 when none.  A pure
  /// function of the committed set, so all survivors compute the same
  /// value.
  [[nodiscard]] int last_complete_generation() const;

  /// Committed snapshot for (gen, rank), null when absent.
  [[nodiscard]] const RankSnap* find(int gen, int rank) const;

 private:
  mutable std::mutex m_;
  int nranks_;
  /// gen -> per-rank slot (engaged once committed).
  std::map<int, std::vector<std::optional<RankSnap>>> gens_;
};

/// Per-rank checkpoint/restart driver.  Construct one per rank inside the
/// rank program, register the state regions, then either call
/// checkpoint() at chosen points or maybe_checkpoint() once per
/// application iteration for interval-driven operation.
class Checkpointer {
 public:
  /// `comm` is the communicator checkpoints run on (usually the world
  /// communicator); `store` is the world-shared Store.
  Checkpointer(mpi::Comm& comm, Store& store, const CkptConfig& cfg);

  /// Register a named state region (captured by pointer; must outlive the
  /// Checkpointer).  Registration order defines the region index used by
  /// adopted_region().  Not collective, but every rank must register
  /// byte-wise compatible regions in the same order.
  void register_region(std::string name, void* data, std::size_t bytes);

  /// Collective checkpoint epoch: barrier, priced local snapshot, priced
  /// buddy exchange, commit.  Returns the committed generation.
  int checkpoint();

  /// Interval-driven trigger; call once per application iteration on
  /// every rank.  Returns true when a checkpoint was taken.  See the
  /// header comment for the calibration protocol.
  [[nodiscard]] bool maybe_checkpoint();

  struct RestoreResult {
    int generation = -1;       ///< generation restored (-1: none complete)
    std::vector<int> adopted;  ///< dead world ranks this rank adopted
    usec_t rolled_back_us = 0.0;  ///< work discarded: entry - snapshot time
  };

  /// Collective over the survivors (call on the shrunken communicator
  /// with the failed world ranks from get_failed()): agree on the last
  /// complete generation, rewind own regions, fetch dead ranks' buddy
  /// copies.  Throws SnapshotUnavailableError when a dead rank's buddy
  /// also died.  generation == -1 means no complete checkpoint exists and
  /// nothing was restored (cold restart is the caller's policy).
  RestoreResult restore(mpi::Comm& alive, const std::vector<int>& failed);

  /// After restore(): region `index` of an adopted dead rank (null when
  /// this rank is not its adopter).
  [[nodiscard]] const std::vector<std::byte>* adopted_region(
      int dead_rank, std::size_t index) const;

  [[nodiscard]] int buddy() const noexcept { return buddy_; }
  [[nodiscard]] int generation() const noexcept { return gen_; }
  [[nodiscard]] int checkpoints() const noexcept { return count_; }
  [[nodiscard]] double last_cost_us() const noexcept { return last_cost_; }
  [[nodiscard]] double mean_cost_us() const noexcept {
    return count_ > 0 ? total_cost_ / count_ : 0.0;
  }
  /// Interval after calibration (daly resolves tau here); 0 before.
  [[nodiscard]] double resolved_interval_us() const noexcept {
    return resolved_interval_;
  }
  /// Iteration stride after calibration; 0 before.
  [[nodiscard]] int stride() const noexcept { return stride_; }

 private:
  struct Region {
    std::string name;
    std::byte* data;
    std::size_t bytes;
  };

  [[nodiscard]] double mtbf_us() const;
  void bump_counters(std::uint64_t checkpoints, std::uint64_t bytes,
                     std::uint64_t restores, std::uint64_t rolled_back_us);

  mpi::Comm* comm_;
  Store* store_;
  CkptConfig cfg_;
  std::vector<Region> regions_;
  int buddy_ = -1;      ///< world rank my snapshot replicates to
  int buddy_src_ = -1;  ///< world rank whose snapshot replicates to me
  int next_gen_ = 0;
  int gen_ = -1;  ///< last generation this rank committed
  int count_ = 0;
  double last_cost_ = 0.0;
  double total_cost_ = 0.0;
  // maybe_checkpoint calibration state.
  int calls_since_ckpt_ = 0;
  int stride_ = 0;
  double resolved_interval_ = 0.0;
  usec_t calib_t1_ = -1.0;
  // Adopted snapshots, keyed by dead world rank.
  std::map<int, const Store::RankSnap*> adopted_;
};

}  // namespace ombx::ckpt
