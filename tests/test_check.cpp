// ombx::check tests: every checker family has at least one triggering
// program with rank/op attribution, clean runs collect zero violations
// across the bench suite, and checking never perturbs benchmark output
// (byte-identical Rows with the checker off vs on).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "check/checker.hpp"
#include "core/runner.hpp"
#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/nbc.hpp"
#include "mpi/request.hpp"
#include "mpi/rma.hpp"
#include "mpi/world.hpp"

using namespace ombx;
using mpi::Comm;
using mpi::ConstView;
using mpi::MutView;

namespace {

mpi::WorldConfig checked_world(int nranks, check::Mode mode) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = 2;
  wc.check.enabled = true;
  wc.check.mode = mode;
  return wc;
}

ConstView cv(const std::vector<std::byte>& v) {
  return ConstView{v.data(), v.size()};
}
MutView mv(std::vector<std::byte>& v) { return MutView{v.data(), v.size()}; }

std::vector<check::Violation> violations_of(mpi::World& w) {
  check::Checker* chk = w.engine().checker();
  EXPECT_NE(chk, nullptr);
  return chk == nullptr ? std::vector<check::Violation>{}
                        : chk->violations();
}

bool has_code(const std::vector<check::Violation>& vs, check::Code c) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const check::Violation& v) { return v.code == c; });
}

// ---- Family 1: collective matching ----------------------------------------

TEST(CheckCollective, StrictOrderMismatchThrowsWithAttribution) {
  mpi::World w(checked_world(2, check::Mode::kStrict));
  try {
    w.run([](Comm& c) {
      std::vector<std::byte> buf(8);
      if (c.rank() == 0) {
        mpi::barrier(c);
      } else {
        mpi::bcast(c, mv(buf), 1);
      }
    });
    FAIL() << "expected a strict violation";
  } catch (const mpi::AbortedError& e) {
    // The non-throwing rank is woken with the propagated abort; World::run
    // rethrows the root Error, so landing here would be a bug.
    FAIL() << "root cause was not rethrown: " << e.what();
  } catch (const mpi::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("collective-order-mismatch"), std::string::npos)
        << what;
    // The mismatching rank (not the reference) is named.
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  }
}

TEST(CheckCollective, ReportModeRecordsRootMismatch) {
  mpi::World w(checked_world(2, check::Mode::kReport));
  // Both ranks bcast 8 eager bytes but disagree on the root: each
  // "root" sends, nobody receives, and both calls complete locally.
  w.run([](Comm& c) {
    std::vector<std::byte> buf(8);
    mpi::bcast(c, mv(buf), c.rank());
  });
  const auto vs = violations_of(w);
  ASSERT_TRUE(has_code(vs, check::Code::kCollectiveSignatureMismatch));
  const auto it =
      std::find_if(vs.begin(), vs.end(), [](const check::Violation& v) {
        return v.code == check::Code::kCollectiveSignatureMismatch;
      });
  EXPECT_EQ(it->op, "bcast");
  EXPECT_EQ(it->rank, 1);  // rank 1 diverges from the rank-0 reference
  EXPECT_NE(it->detail.find("root 1 vs 0"), std::string::npos) << it->detail;
  // The unreceived binomial-tree sends also surface in the audit.
  EXPECT_TRUE(has_code(vs, check::Code::kUnmatchedSend));
}

TEST(CheckCollective, DivergentAllreduceCountIsASignatureMismatch) {
  mpi::World w(checked_world(2, check::Mode::kReport));
  // Rank 1 contributes half the bytes: recursive doubling truncates on
  // one side (a substrate Error) and the signature mismatch explains why.
  try {
    w.run([](Comm& c) {
      const std::size_t bytes = c.rank() == 0 ? 64 : 32;
      std::vector<std::byte> s(bytes), r(bytes);
      mpi::allreduce(c, cv(s), mv(r), mpi::Datatype::kByte, mpi::Op::kSum);
    });
  } catch (const std::exception&) {
    // The substrate may fail the run; the record must survive it.
  }
  EXPECT_TRUE(has_code(violations_of(w),
                       check::Code::kCollectiveSignatureMismatch));
}

TEST(CheckCollective, IncompleteEpochIsAuditedOnFinalize) {
  mpi::World w(checked_world(2, check::Mode::kReport));
  w.run([](Comm& c) {
    std::vector<std::byte> buf(8);
    // Only rank 0 bcasts (as self-root with eager bytes it completes
    // locally); rank 1 never enters the epoch.
    if (c.rank() == 0) mpi::bcast(c, mv(buf), 0);
  });
  const auto vs = violations_of(w);
  ASSERT_TRUE(has_code(vs, check::Code::kCollectiveIncomplete));
  const auto it =
      std::find_if(vs.begin(), vs.end(), [](const check::Violation& v) {
        return v.code == check::Code::kCollectiveIncomplete;
      });
  EXPECT_NE(it->detail.find("comm rank 1 never entered bcast"),
            std::string::npos)
      << it->detail;
}

// ---- Family 2: request hygiene ---------------------------------------------

TEST(CheckRequests, LeakedIrecvIsReportedWithCreationSite) {
  mpi::World w(checked_world(2, check::Mode::kReport));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> buf(64);
      mpi::Request r = c.irecv(mv(buf), 1, 7);
      (void)r;  // dropped without wait()
    }
  });
  const auto vs = violations_of(w);
  ASSERT_TRUE(has_code(vs, check::Code::kRequestLeak));
  const auto it =
      std::find_if(vs.begin(), vs.end(), [](const check::Violation& v) {
        return v.code == check::Code::kRequestLeak;
      });
  EXPECT_EQ(it->rank, 0);
  EXPECT_NE(it->op.find("irecv 64B from comm rank 1 tag 7"),
            std::string::npos)
      << it->op;
}

TEST(CheckRequests, CopiedRequestLeaksOnceAndWaitSettlesAll) {
  mpi::World w(checked_world(2, check::Mode::kReport));
  w.run([](Comm& c) {
    std::vector<std::byte> buf(16);
    if (c.rank() == 0) {
      mpi::Request a = c.isend(cv(buf), 1, 3);
      mpi::Request b = a;  // shared ticket
      (void)b.wait();      // settles the op for every copy
    } else {
      (void)c.recv(mv(buf), 0, 3);
    }
  });
  EXPECT_TRUE(violations_of(w).empty());
}

TEST(CheckRequests, AbandonedCollRequestAbortsPeersWithAttribution) {
  mpi::World w(checked_world(2, check::Mode::kStrict));
  try {
    w.run([](Comm& c) {
      if (c.rank() == 0) {
        mpi::CollRequest r = mpi::ibarrier(c);
        (void)r;  // dropped: rank 1 is stuck in barrier
      } else {
        mpi::barrier(c);
      }
    });
    FAIL() << "expected the run to fail";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("coll-request-leak"), std::string::npos) << what;
    EXPECT_NE(what.find("ibarrier"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  }
  EXPECT_TRUE(has_code(violations_of(w), check::Code::kCollRequestLeak));
}

// ---- Family 3: buffer lifetime / overlap -----------------------------------

TEST(CheckBuffers, SendFromPendingIrecvBufferIsFlagged) {
  mpi::World w(checked_world(2, check::Mode::kReport));
  w.run([](Comm& c) {
    std::vector<std::byte> buf(64);
    if (c.rank() == 0) {
      mpi::Request r = c.irecv(mv(buf), 1, 3);
      c.send(cv(buf), 1, 4);  // reads bytes the irecv may rewrite
      (void)r.wait();
    } else {
      std::vector<std::byte> tmp(64);
      (void)c.recv(mv(tmp), 0, 4);
      c.send(cv(tmp), 0, 3);
    }
  });
  const auto vs = violations_of(w);
  ASSERT_TRUE(has_code(vs, check::Code::kBufferOverlap));
  const auto it =
      std::find_if(vs.begin(), vs.end(), [](const check::Violation& v) {
        return v.code == check::Code::kBufferOverlap;
      });
  EXPECT_EQ(it->rank, 0);
  EXPECT_NE(it->detail.find("irecv"), std::string::npos) << it->detail;
}

TEST(CheckBuffers, StrictOverlapThrowsAtTheTouchSite) {
  mpi::World w(checked_world(2, check::Mode::kStrict));
  EXPECT_THROW(
      w.run([](Comm& c) {
        std::vector<std::byte> buf(64);
        if (c.rank() == 0) {
          mpi::Request r = c.irecv(mv(buf), 1, 3);
          c.send(cv(buf), 1, 4);
          (void)r.wait();
        } else {
          std::vector<std::byte> tmp(64);
          (void)c.recv(mv(tmp), 0, 4);
          c.send(cv(tmp), 0, 3);
        }
      }),
      mpi::Error);
}

TEST(CheckBuffers, OsuWindowIdiomIsClean) {
  // The OSU bandwidth pattern: a window of irecvs posted into one buffer.
  // Write-write overlap is deliberately tolerated (FIFO matching keeps it
  // deterministic here), so this must produce zero violations.
  mpi::World w(checked_world(2, check::Mode::kStrict));
  w.run([](Comm& c) {
    constexpr int kWindow = 16;
    std::vector<std::byte> buf(256);
    std::vector<mpi::Request> reqs;
    if (c.rank() == 0) {
      for (int i = 0; i < kWindow; ++i) {
        reqs.push_back(c.irecv(mv(buf), 1, 5));
      }
    } else {
      for (int i = 0; i < kWindow; ++i) {
        reqs.push_back(c.isend(cv(buf), 0, 5));
      }
    }
    (void)mpi::Request::wait_all(reqs);
  });
  EXPECT_TRUE(violations_of(w).empty());
}

// ---- Family 4: finalize audit ----------------------------------------------

TEST(CheckAudit, UnmatchedSendNamesSourceAndTag) {
  mpi::World w(checked_world(2, check::Mode::kReport));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> buf(16);
      mpi::Request r = c.isend(cv(buf), 1, 99);
      (void)r.wait();
    }
  });
  const auto vs = violations_of(w);
  ASSERT_TRUE(has_code(vs, check::Code::kUnmatchedSend));
  const auto it =
      std::find_if(vs.begin(), vs.end(), [](const check::Violation& v) {
        return v.code == check::Code::kUnmatchedSend;
      });
  EXPECT_EQ(it->rank, 1);  // attributed to the mailbox owner
  EXPECT_NE(it->detail.find("from comm rank 0 with tag 99"),
            std::string::npos)
      << it->detail;
}

TEST(CheckAudit, StrictModeFailsTheRunOnAuditFindings) {
  mpi::World w(checked_world(2, check::Mode::kStrict));
  try {
    w.run([](Comm& c) {
      if (c.rank() == 0) {
        std::vector<std::byte> buf(16);
        mpi::Request r = c.isend(cv(buf), 1, 99);
        (void)r.wait();
      }
    });
    FAIL() << "expected the end-of-run audit to fail the run";
  } catch (const mpi::Error& e) {
    EXPECT_NE(std::string(e.what()).find("unmatched-send"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckAudit, OpenRmaEpochIsReportedWhenTheWindowDies) {
  mpi::World w(checked_world(2, check::Mode::kReport));
  w.run([](Comm& c) {
    std::vector<std::byte> window(64);
    std::vector<std::byte> src(8);
    mpi::Win win(c, mv(window));
    win.put(cv(src), 1 - c.rank(), 0);
    // no fence before ~Win
  });
  const auto vs = violations_of(w);
  ASSERT_TRUE(has_code(vs, check::Code::kRmaEpochOpen));
}

TEST(CheckAudit, FencedRmaIsClean) {
  mpi::World w(checked_world(2, check::Mode::kStrict));
  w.run([](Comm& c) {
    std::vector<std::byte> window(64, std::byte{0});
    std::vector<std::byte> src(8, std::byte{0x7f});
    mpi::Win win(c, mv(window));
    win.fence();
    win.put(cv(src), 1 - c.rank(), 0);
    win.fence();
    std::vector<std::byte> dst(8);
    win.get(mv(dst), 1 - c.rank(), 0);
    win.fence();
    if (window.front() != std::byte{0x7f} || dst.front() != std::byte{0x7f}) {
      throw std::runtime_error("RMA payload mismatch");
    }
  });
  EXPECT_TRUE(violations_of(w).empty());
}

// ---- Clean runs and zero perturbation --------------------------------------

core::SuiteConfig quick_suite() {
  core::SuiteConfig cfg;
  cfg.nranks = 2;  // the p2p benches require exactly 2 ranks
  cfg.ppn = 2;
  cfg.opts.min_size = 1;
  cfg.opts.max_size = 4096;
  cfg.opts.iterations = 3;
  cfg.opts.warmup = 1;
  return cfg;
}

TEST(CheckClean, BenchSuiteRunsStrictWithZeroViolations) {
  core::SuiteConfig cfg = quick_suite();
  cfg.check.enabled = true;
  cfg.check.strict = true;
  // A strict violation (or false positive) anywhere in these would throw.
  EXPECT_NO_THROW({
    (void)bench_suite::run_latency(cfg);
    (void)bench_suite::run_bandwidth(cfg);
    (void)bench_suite::run_collective(cfg, bench_suite::CollBench::kAllreduce);
    (void)bench_suite::run_collective(cfg, bench_suite::CollBench::kAlltoall);
    (void)bench_suite::run_nbc(cfg, bench_suite::NbcBench::kIallreduce);
    (void)bench_suite::run_rma(cfg, bench_suite::RmaBench::kPutLatency);
  });
}

TEST(CheckClean, CheckedRowsAreByteIdenticalToUnchecked) {
  core::SuiteConfig off = quick_suite();
  core::SuiteConfig on = quick_suite();
  on.check.enabled = true;
  on.check.strict = true;
  const auto run_both = [&](auto&& fn) {
    const auto a = fn(off);
    const auto b = fn(on);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].size, b[i].size);
      // Exact equality, not tolerance: the checker must never touch
      // virtual time.
      EXPECT_EQ(a[i].stats.avg, b[i].stats.avg);
      EXPECT_EQ(a[i].stats.min, b[i].stats.min);
      EXPECT_EQ(a[i].stats.max, b[i].stats.max);
    }
  };
  run_both([](const core::SuiteConfig& c) {
    return bench_suite::run_latency(c);
  });
  run_both([](const core::SuiteConfig& c) {
    return bench_suite::run_collective(c,
                                       bench_suite::CollBench::kAllreduce);
  });
}

TEST(CheckClean, RepeatedMisuseYieldsTheSameSortedReport) {
  const auto run_once = [] {
    mpi::World w(checked_world(2, check::Mode::kReport));
    w.run([](Comm& c) {
      std::vector<std::byte> buf(8);
      mpi::bcast(c, mv(buf), c.rank());
    });
    std::vector<std::string> lines;
    for (const auto& v : violations_of(w)) lines.push_back(v.to_string());
    return lines;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(CheckClean, CheckerResetsBetweenRuns) {
  mpi::World w(checked_world(2, check::Mode::kReport));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> buf(16);
      mpi::Request r = c.isend(cv(buf), 1, 99);
      (void)r.wait();
    }
  });
  EXPECT_FALSE(violations_of(w).empty());
  // A clean second run on the same world starts from a clean slate.
  w.run([](Comm& c) { mpi::barrier(c); });
  EXPECT_TRUE(violations_of(w).empty());
}

}  // namespace
