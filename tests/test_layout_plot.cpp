// Tests for derived-datatype layouts (pack/unpack, strided transfers) and
// the ASCII plot renderer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>

#include "core/plot.hpp"
#include "mpi/error.hpp"
#include "mpi/layout.hpp"
#include "mpi/world.hpp"

using namespace ombx;
using mpi::ConstView;
using mpi::MutView;

namespace {
mpi::WorldConfig pair_world() {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 2;
  wc.ppn = 2;
  return wc;
}
}  // namespace

// ---- VectorLayout ---------------------------------------------------------------

TEST(VectorLayout, GeometryArithmetic) {
  const mpi::VectorLayout l{.count = 4, .block_bytes = 8,
                            .stride_bytes = 20};
  EXPECT_EQ(l.packed_bytes(), 32U);
  EXPECT_EQ(l.extent_bytes(), 3U * 20U + 8U);
  EXPECT_FALSE(l.contiguous());
  const mpi::VectorLayout c{.count = 4, .block_bytes = 8,
                            .stride_bytes = 8};
  EXPECT_TRUE(c.contiguous());
}

TEST(VectorLayout, PackUnpackRoundTrip) {
  const mpi::VectorLayout l{.count = 5, .block_bytes = 3,
                            .stride_bytes = 7};
  std::vector<std::byte> src(l.extent_bytes());
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i);
  }
  std::vector<std::byte> packed(l.packed_bytes());
  EXPECT_EQ(mpi::pack(l, ConstView{src.data(), src.size()},
                      MutView{packed.data(), packed.size()}),
            15U);
  // Block b starts at 7b in src and 3b in packed.
  for (std::size_t b = 0; b < 5; ++b) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(packed[b * 3 + j], src[b * 7 + j]);
    }
  }
  std::vector<std::byte> restored(l.extent_bytes(), std::byte{0xEE});
  (void)mpi::unpack(l, ConstView{packed.data(), packed.size()},
                    MutView{restored.data(), restored.size()});
  for (std::size_t b = 0; b < 5; ++b) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(restored[b * 7 + j], src[b * 7 + j]);
    }
  }
  // Gaps keep the sentinel (unpack writes only the blocks).
  EXPECT_EQ(restored[3], std::byte{0xEE});
}

TEST(VectorLayout, RejectsBadGeometry) {
  const mpi::VectorLayout bad{.count = 2, .block_bytes = 8,
                              .stride_bytes = 4};
  std::vector<std::byte> a(64);
  std::vector<std::byte> b(64);
  EXPECT_THROW((void)mpi::pack(bad, ConstView{a.data(), a.size()},
                               MutView{b.data(), b.size()}),
               mpi::Error);
  const mpi::VectorLayout l{.count = 4, .block_bytes = 8,
                            .stride_bytes = 16};
  std::vector<std::byte> tiny(8);
  EXPECT_THROW((void)mpi::pack(l, ConstView{tiny.data(), tiny.size()},
                               MutView{b.data(), b.size()}),
               mpi::Error);
}

// ---- IndexedLayout ---------------------------------------------------------------

TEST(IndexedLayout, PackUnpackRoundTrip) {
  mpi::IndexedLayout l;
  l.offsets = {10, 0, 30};
  l.lengths = {4, 2, 6};
  EXPECT_EQ(l.packed_bytes(), 12U);
  EXPECT_EQ(l.extent_bytes(), 36U);

  std::vector<std::byte> src(40);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(100 + i);
  }
  std::vector<std::byte> packed(12);
  (void)mpi::pack(l, ConstView{src.data(), src.size()},
                  MutView{packed.data(), packed.size()});
  EXPECT_EQ(packed[0], src[10]);
  EXPECT_EQ(packed[4], src[0]);
  EXPECT_EQ(packed[6], src[30]);

  std::vector<std::byte> restored(40, std::byte{0});
  (void)mpi::unpack(l, ConstView{packed.data(), packed.size()},
                    MutView{restored.data(), restored.size()});
  EXPECT_EQ(restored[10], src[10]);
  EXPECT_EQ(restored[0], src[0]);
  EXPECT_EQ(restored[35], src[35]);
  EXPECT_EQ(restored[20], std::byte{0});  // gap untouched
}

TEST(IndexedLayout, MismatchedTablesThrow) {
  mpi::IndexedLayout l;
  l.offsets = {0, 8};
  l.lengths = {4};
  std::vector<std::byte> a(16);
  std::vector<std::byte> b(16);
  EXPECT_THROW((void)mpi::pack(l, ConstView{a.data(), a.size()},
                               MutView{b.data(), b.size()}),
               mpi::Error);
}

// ---- Strided transfers over the wire -----------------------------------------------

TEST(StridedTransfer, PayloadSurvives) {
  mpi::World w(pair_world());
  w.run([](mpi::Comm& c) {
    const mpi::VectorLayout l{.count = 16, .block_bytes = 4,
                              .stride_bytes = 12};
    std::vector<std::byte> buf(l.extent_bytes(), std::byte{0});
    if (c.rank() == 0) {
      for (std::size_t b = 0; b < l.count; ++b) {
        for (std::size_t j = 0; j < l.block_bytes; ++j) {
          buf[b * l.stride_bytes + j] =
              static_cast<std::byte>(b * 16 + j);
        }
      }
      mpi::send_strided(c, l, ConstView{buf.data(), buf.size()}, 1, 5);
    } else {
      (void)mpi::recv_strided(c, l, MutView{buf.data(), buf.size()}, 0, 5);
      for (std::size_t b = 0; b < l.count; ++b) {
        for (std::size_t j = 0; j < l.block_bytes; ++j) {
          ASSERT_EQ(buf[b * l.stride_bytes + j],
                    static_cast<std::byte>(b * 16 + j));
        }
      }
    }
  });
}

TEST(StridedTransfer, CostsMoreThanContiguous) {
  const auto pingpong_us = [](std::size_t block, std::size_t stride) {
    mpi::World w(pair_world());
    double lat = 0.0;
    w.run([&](mpi::Comm& c) {
      const mpi::VectorLayout l{.count = 4096, .block_bytes = block,
                                .stride_bytes = stride};
      std::vector<std::byte> buf(l.extent_bytes());
      const int peer = 1 - c.rank();
      const double t0 = c.now();
      if (c.rank() == 0) {
        mpi::send_strided(c, l, ConstView{buf.data(), buf.size()}, peer, 1);
        (void)mpi::recv_strided(c, l, MutView{buf.data(), buf.size()},
                                peer, 1);
        lat = (c.now() - t0) / 2.0;
      } else {
        (void)mpi::recv_strided(c, l, MutView{buf.data(), buf.size()},
                                peer, 1);
        mpi::send_strided(c, l, ConstView{buf.data(), buf.size()}, peer, 1);
      }
    });
    return lat;
  };
  const double contiguous = pingpong_us(16, 16);
  const double strided = pingpong_us(16, 64);
  EXPECT_GT(strided, contiguous);
}

TEST(StridedTransfer, PackCostGrowsForTinyBlocks) {
  mpi::World w(pair_world());
  w.run([](mpi::Comm& c) {
    if (c.rank() != 0) return;
    const double tiny = mpi::pack_cost_us(c, 1 << 16, 8, 64);
    const double chunky = mpi::pack_cost_us(c, 1 << 16, 8192, 16384);
    EXPECT_GT(tiny, chunky);
  });
}

// ---- AsciiPlot --------------------------------------------------------------------

TEST(AsciiPlot, RendersTitleAxesAndGlyphs) {
  core::AsciiPlot plot("Latency comparison", "us");
  core::PlotSeries a;
  a.label = "OMB";
  a.glyph = '*';
  core::PlotSeries b;
  b.label = "OMB-Py";
  b.glyph = 'o';
  for (int i = 0; i < 10; ++i) {
    const double x = std::pow(2.0, i);
    a.points.emplace_back(x, 1.0 + 0.01 * x);
    b.points.emplace_back(x, 1.5 + 0.01 * x);
  }
  plot.add(a);
  plot.add(b);
  const std::string s = plot.to_string();
  EXPECT_NE(s.find("# Latency comparison"), std::string::npos);
  EXPECT_NE(s.find("'*' OMB"), std::string::npos);
  EXPECT_NE(s.find("'o' OMB-Py"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('o'), std::string::npos);
  EXPECT_NE(s.find("message size"), std::string::npos);
}

TEST(AsciiPlot, HandlesEmptyAndDegenerateInput) {
  core::AsciiPlot empty("nothing", "us");
  EXPECT_NE(empty.to_string().find("(no data)"), std::string::npos);

  core::AsciiPlot flat("flat", "us");
  core::PlotSeries s;
  s.label = "one point";
  s.points.emplace_back(1.0, 5.0);
  flat.add(s);
  EXPECT_NO_THROW((void)flat.to_string());
}

TEST(AsciiPlot, HigherSeriesRendersAboveLowerSeries) {
  core::AsciiPlot plot("order", "us", 40, 10);
  core::PlotSeries low;
  low.label = "low";
  low.glyph = 'L';
  core::PlotSeries high;
  high.label = "high";
  high.glyph = 'H';
  for (int i = 1; i <= 8; ++i) {
    low.points.emplace_back(i, 1.0);
    high.points.emplace_back(i, 10.0);
  }
  plot.add(low);
  plot.add(high);
  const std::string s = plot.to_string();
  EXPECT_LT(s.find('H'), s.find('L'));  // top of the grid prints first
}
