// Integration & calibration tests: end-to-end benchmark runs whose
// *averages* must land inside bands around the numbers the paper reports
// (see EXPERIMENTS.md for the full table).  These are the tests that keep
// the reproduction honest when cost constants are touched.
#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "ml/distributed.hpp"

using namespace ombx;
using core::Mode;
using core::SuiteConfig;

namespace {

SuiteConfig base_cfg(net::ClusterSpec cluster, int nranks, int ppn) {
  SuiteConfig cfg;
  cfg.cluster = std::move(cluster);
  cfg.tuning = net::MpiTuning::mvapich2();
  cfg.nranks = nranks;
  cfg.ppn = ppn;
  cfg.opts.iterations = 5;
  cfg.opts.warmup = 1;
  cfg.opts.iterations_large = 2;
  cfg.opts.warmup_large = 1;
  return cfg;
}

/// Mean OMB-Py minus OMB-C latency over a size range, one value per size.
double mean_overhead(SuiteConfig cfg, std::size_t min_size,
                     std::size_t max_size) {
  cfg.opts.min_size = min_size;
  cfg.opts.max_size = max_size;
  cfg.mode = Mode::kNativeC;
  const auto c_rows = bench_suite::run_latency(cfg);
  cfg.mode = Mode::kPythonDirect;
  const auto py_rows = bench_suite::run_latency(cfg);
  double acc = 0.0;
  for (std::size_t i = 0; i < c_rows.size(); ++i) {
    acc += py_rows[i].stats.avg - c_rows[i].stats.avg;
  }
  return acc / static_cast<double>(c_rows.size());
}

constexpr std::size_t kSmallMin = 1;
constexpr std::size_t kSmallMax = 8 * 1024;
constexpr std::size_t kLargeMin = 16 * 1024;
constexpr std::size_t kLargeMax = 4 * 1024 * 1024;

}  // namespace

// ---- Paper calibration bands (Figs 4-11, Table III) ---------------------------

TEST(Calibration, FronteraIntraNodeOverheads) {
  SuiteConfig cfg = base_cfg(net::ClusterSpec::frontera(), 2, 2);
  // Paper: +0.44 us (small), +2.31 us (large).
  EXPECT_NEAR(mean_overhead(cfg, kSmallMin, kSmallMax), 0.44, 0.15);
  EXPECT_NEAR(mean_overhead(cfg, kLargeMin, kLargeMax), 2.31, 0.9);
}

TEST(Calibration, Stampede2IntraNodeOverheads) {
  SuiteConfig cfg = base_cfg(net::ClusterSpec::stampede2(), 2, 2);
  // Paper: +0.41 us (small), +4.13 us (large).
  EXPECT_NEAR(mean_overhead(cfg, kSmallMin, kSmallMax), 0.41, 0.15);
  EXPECT_NEAR(mean_overhead(cfg, kLargeMin, kLargeMax), 4.13, 1.5);
}

TEST(Calibration, Ri2IntraNodeOverheads) {
  SuiteConfig cfg = base_cfg(net::ClusterSpec::ri2(), 2, 2);
  // Paper: +0.41 us (small), +1.76 us (large).
  EXPECT_NEAR(mean_overhead(cfg, kSmallMin, kSmallMax), 0.41, 0.15);
  EXPECT_NEAR(mean_overhead(cfg, kLargeMin, kLargeMax), 1.76, 0.8);
}

TEST(Calibration, FronteraInterNodeOverheads) {
  SuiteConfig cfg = base_cfg(net::ClusterSpec::frontera(), 2, 1);
  // Paper: +0.43 us (small), +0.63 us (large — DMA hides the per-byte cost).
  EXPECT_NEAR(mean_overhead(cfg, kSmallMin, kSmallMax), 0.43, 0.15);
  EXPECT_NEAR(mean_overhead(cfg, kLargeMin, kLargeMax), 0.63, 0.35);
}

TEST(Calibration, GpuPointToPointOverheadOrdering) {
  SuiteConfig cfg = base_cfg(net::ClusterSpec::ri2_gpu(), 2, 1);
  cfg.tuning = net::MpiTuning::mvapich2_gdr();
  cfg.opts.min_size = 1;
  cfg.opts.max_size = 8 * 1024;

  const auto overhead_for = [&](buffers::BufferKind k) {
    SuiteConfig c = cfg;
    c.buffer = k;
    c.mode = Mode::kNativeC;
    const auto base = bench_suite::run_latency(c);
    c.mode = Mode::kPythonDirect;
    const auto py = bench_suite::run_latency(c);
    double acc = 0.0;
    for (std::size_t i = 0; i < base.size(); ++i) {
      acc += py[i].stats.avg - base[i].stats.avg;
    }
    return acc / static_cast<double>(base.size());
  };
  // Paper: +3.54 / +3.44 / +5.85 us for CuPy / PyCUDA / Numba.
  EXPECT_NEAR(overhead_for(buffers::BufferKind::kCupy), 3.54, 0.6);
  EXPECT_NEAR(overhead_for(buffers::BufferKind::kPycuda), 3.44, 0.6);
  EXPECT_NEAR(overhead_for(buffers::BufferKind::kNumba), 5.85, 1.0);
}

TEST(Calibration, MlSequentialTimes) {
  const ml::MlTimingModel m;
  EXPECT_NEAR(ml::knn_sequential_s(ml::KnnBenchConfig{}, m), 112.9, 6.0);
  EXPECT_NEAR(ml::kmeans_sequential_s(ml::KmeansBenchConfig{}, m), 1059.45,
              60.0);
  EXPECT_NEAR(ml::matmul_sequential_s(ml::MatmulBenchConfig{}, m), 79.63,
              4.0);
}

// ---- Cross-cluster trend invariants (paper insight #2) -------------------------

TEST(Trends, OverheadTrendHoldsOnAllThreeClusters) {
  for (auto cluster : {net::ClusterSpec::frontera(),
                       net::ClusterSpec::stampede2(),
                       net::ClusterSpec::ri2()}) {
    SuiteConfig cfg = base_cfg(cluster, 2, 2);
    const double small = mean_overhead(cfg, 1, 1024);
    EXPECT_GT(small, 0.0) << cluster.name;
    EXPECT_LT(small, 1.5) << cluster.name;
  }
}

// ---- Generality (MVAPICH2 vs Intel MPI, Figs 28-31) ----------------------------

TEST(Generality, LibrariesDifferButAgreeOnShape) {
  SuiteConfig cfg = base_cfg(net::ClusterSpec::frontera(), 2, 1);
  cfg.mode = Mode::kPythonDirect;
  cfg.opts.min_size = 1;
  cfg.opts.max_size = 1 << 20;

  cfg.tuning = net::MpiTuning::mvapich2();
  const auto mv = bench_suite::run_latency(cfg);
  cfg.tuning = net::MpiTuning::intelmpi();
  const auto im = bench_suite::run_latency(cfg);

  double diff = 0.0;
  for (std::size_t i = 0; i < mv.size(); ++i) {
    EXPECT_GT(im[i].stats.avg, mv[i].stats.avg);  // Intel slightly slower
    diff += im[i].stats.avg - mv[i].stats.avg;
  }
  diff /= static_cast<double>(mv.size());
  EXPECT_NEAR(diff, 0.36, 1.2);  // paper: 0.36 us average gap
}

// ---- Full-subscription behaviour (Figs 16-17) ----------------------------------

TEST(FullSubscription, ThreadMultiplePenaltyOnlyInPythonMode) {
  SuiteConfig cfg = base_cfg(net::ClusterSpec::frontera(), 112, 56);
  cfg.payload = mpi::PayloadMode::kSynthetic;
  cfg.opts.min_size = 64 * 1024;
  cfg.opts.max_size = 64 * 1024;
  cfg.opts.iterations = 2;
  cfg.opts.warmup = 1;

  cfg.mode = Mode::kNativeC;
  const double c_lat =
      bench_suite::run_collective(cfg, bench_suite::CollBench::kAllreduce)
          .front()
          .stats.avg;
  cfg.mode = Mode::kPythonDirect;
  const double py_lat =
      bench_suite::run_collective(cfg, bench_suite::CollBench::kAllreduce)
          .front()
          .stats.avg;
  // The paper attributes a large degradation to THREAD_MULTIPLE
  // oversubscription at full subscription; expect a big multiplicative gap.
  EXPECT_GT(py_lat, 1.5 * c_lat);
}

// ---- Determinism across modules -------------------------------------------------

TEST(Determinism, MlScalingCurvesAreBitStable) {
  const std::vector<int> procs{1, 8};
  const auto a =
      ml::matmul_scaling(net::ClusterSpec::ri2(), net::MpiTuning::mvapich2(),
                         ml::MatmulBenchConfig{}, ml::MlTimingModel{}, procs);
  const auto b =
      ml::matmul_scaling(net::ClusterSpec::ri2(), net::MpiTuning::mvapich2(),
                         ml::MatmulBenchConfig{}, ml::MlTimingModel{}, procs);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].time_s, b.points[i].time_s);
  }
}
