// Property-based tests: randomized (seeded, deterministic) payloads and
// geometries checked against straightforward host-side reference results,
// across every collective algorithm.  Plus flow-control and failure
// injection on the mailbox.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/mailbox.hpp"
#include "mpi/world.hpp"
#include "simtime/rng.hpp"

using namespace ombx;
using mpi::Comm;
using mpi::ConstView;
using mpi::MutView;

namespace {

mpi::WorldConfig world_cfg(int nranks) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = std::min(nranks, wc.cluster.topo.cores_per_node());
  return wc;
}

/// Deterministic random block contributed by `rank` for a given seed.
std::vector<std::int32_t> contribution(std::uint64_t seed, int rank,
                                       std::size_t elems) {
  simtime::Xoshiro256 rng(seed * 1000003ULL + static_cast<std::uint64_t>(rank));
  std::vector<std::int32_t> out(elems);
  for (auto& v : out) {
    v = static_cast<std::int32_t>(rng.below(1U << 20)) - (1 << 19);
  }
  return out;
}

template <typename T>
ConstView cv(const std::vector<T>& v) {
  return ConstView{reinterpret_cast<const std::byte*>(v.data()),
                   v.size() * sizeof(T)};
}
template <typename T>
MutView mv(std::vector<T>& v) {
  return MutView{reinterpret_cast<std::byte*>(v.data()),
                 v.size() * sizeof(T)};
}

struct PropertyCase {
  std::uint64_t seed;
  int nranks;
  std::size_t elems;
};

class CollectiveProperty : public ::testing::TestWithParam<PropertyCase> {};

}  // namespace

TEST_P(CollectiveProperty, AllreduceMatchesReferenceUnderEveryAlgorithm) {
  const auto [seed, n, elems] = GetParam();
  // Host-side reference.
  std::vector<std::int64_t> expected(elems, 0);
  for (int r = 0; r < n; ++r) {
    const auto c = contribution(seed, r, elems);
    for (std::size_t i = 0; i < elems; ++i) expected[i] += c[i];
  }

  for (const auto algo : {net::AllreduceAlgo::kRecursiveDoubling,
                          net::AllreduceAlgo::kRing,
                          net::AllreduceAlgo::kReduceBcast}) {
    mpi::World w(world_cfg(n));
    w.run([&, algo](Comm& c) {
      const auto mine32 = contribution(seed, c.rank(), elems);
      std::vector<std::int64_t> mine(mine32.begin(), mine32.end());
      std::vector<std::int64_t> out(elems, 0);
      mpi::allreduce(c, cv(mine), mv(out), mpi::Datatype::kInt64,
                     mpi::Op::kSum, algo);
      ASSERT_EQ(out, expected) << "algo " << static_cast<int>(algo);
    });
  }
}

TEST_P(CollectiveProperty, AllgatherMatchesReferenceUnderEveryAlgorithm) {
  const auto [seed, n, elems] = GetParam();
  std::vector<std::int32_t> expected;
  for (int r = 0; r < n; ++r) {
    const auto c = contribution(seed, r, elems);
    expected.insert(expected.end(), c.begin(), c.end());
  }

  for (const auto algo : {net::AllgatherAlgo::kRing,
                          net::AllgatherAlgo::kBruck,
                          net::AllgatherAlgo::kRecursiveDoubling}) {
    if (algo == net::AllgatherAlgo::kRecursiveDoubling &&
        (n & (n - 1)) != 0) {
      continue;
    }
    mpi::World w(world_cfg(n));
    w.run([&, algo](Comm& c) {
      const auto mine = contribution(seed, c.rank(), elems);
      std::vector<std::int32_t> out(elems * static_cast<std::size_t>(n), 0);
      mpi::allgather(c, cv(mine), mv(out), algo);
      ASSERT_EQ(out, expected) << "algo " << static_cast<int>(algo);
    });
  }
}

TEST_P(CollectiveProperty, GatherScatterRoundTripIsIdentity) {
  const auto [seed, n, elems] = GetParam();
  mpi::World w(world_cfg(n));
  w.run([&, n = n, elems = elems](Comm& c) {
    const auto mine = contribution(seed, c.rank(), elems);
    // Gather everything at root, scatter it back: every rank must see its
    // own contribution again (round-trip identity).
    std::vector<std::int32_t> all(elems * static_cast<std::size_t>(n));
    mpi::gather(c, cv(mine), c.rank() == 0 ? mv(all) : MutView{}, 0);
    std::vector<std::int32_t> back(elems, 0);
    mpi::scatter(c, c.rank() == 0 ? cv(all) : ConstView{}, mv(back), 0);
    ASSERT_EQ(back, mine);
  });
}

TEST_P(CollectiveProperty, AlltoallIsAnInvolutionOnSymmetricData) {
  const auto [seed, n, elems] = GetParam();
  mpi::World w(world_cfg(n));
  w.run([&, n = n, elems = elems](Comm& c) {
    // Block (r -> d) is a deterministic function of the unordered pair, so
    // applying alltoall twice returns the original buffer.
    std::vector<std::int32_t> send(elems * static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      const auto block =
          contribution(seed + static_cast<std::uint64_t>(d), c.rank(), elems);
      std::copy(block.begin(), block.end(),
                send.begin() + static_cast<std::ptrdiff_t>(
                                   elems * static_cast<std::size_t>(d)));
    }
    std::vector<std::int32_t> once(send.size(), 0);
    std::vector<std::int32_t> twice(send.size(), 0);
    mpi::alltoall(c, cv(send), mv(once));
    mpi::alltoall(c, cv(once), mv(twice));
    // After two transposes every block is back home.
    ASSERT_EQ(twice, send);
  });
}

TEST_P(CollectiveProperty, ReduceScatterEqualsReduceThenScatter) {
  const auto [seed, n, elems] = GetParam();
  mpi::World w(world_cfg(n));
  w.run([&, n = n, elems = elems](Comm& c) {
    std::vector<std::int64_t> send(elems * static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < send.size(); ++i) {
      const auto block = i / elems;
      send[i] = contribution(seed + block, c.rank(),
                             elems)[i % elems];
    }
    // Path A: reduce_scatter.
    std::vector<std::int64_t> a(elems, 0);
    mpi::reduce_scatter(c, cv(send), mv(a), mpi::Datatype::kInt64,
                        mpi::Op::kSum);
    // Path B: reduce at root, then scatter.
    std::vector<std::int64_t> full(send.size(), 0);
    mpi::reduce(c, cv(send), c.rank() == 0 ? mv(full) : MutView{},
                mpi::Datatype::kInt64, mpi::Op::kSum, 0);
    std::vector<std::int64_t> b(elems, 0);
    mpi::scatter(c, c.rank() == 0 ? cv(full) : ConstView{}, mv(b), 0);
    ASSERT_EQ(a, b);
  });
}

TEST_P(CollectiveProperty, BcastAgreesForEveryRoot) {
  const auto [seed, n, elems] = GetParam();
  mpi::World w(world_cfg(n));
  w.run([&, n = n, elems = elems](Comm& c) {
    for (int root = 0; root < n; ++root) {
      auto data = contribution(seed, root, elems);
      std::vector<std::int32_t> buf =
          c.rank() == root ? data : std::vector<std::int32_t>(elems, 0);
      mpi::bcast(c, mv(buf), root);
      ASSERT_EQ(buf, data) << "root " << root;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CollectiveProperty,
    ::testing::Values(PropertyCase{1, 2, 5}, PropertyCase{2, 3, 64},
                      PropertyCase{3, 4, 33}, PropertyCase{4, 7, 17},
                      PropertyCase{5, 8, 128}, PropertyCase{6, 13, 9},
                      PropertyCase{7, 16, 256}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nranks) + "_e" +
             std::to_string(info.param.elems);
    });

// ---- Flow control / failure injection -----------------------------------------

TEST(MailboxFlowControl, EnqueueBlocksAtCapacityUntilDrained) {
  mpi::Mailbox box(/*capacity=*/4);
  std::atomic<int> enqueued{0};
  std::thread producer([&] {
    for (int i = 0; i < 8; ++i) {
      mpi::Message m;
      m.context = 0;
      m.src = 0;
      m.tag = i;
      box.enqueue(std::move(m));
      enqueued.fetch_add(1);
    }
  });
  // Give the producer a chance to hit the cap.
  while (enqueued.load() < 4) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(enqueued.load(), 4);  // blocked at capacity
  for (int i = 0; i < 8; ++i) {
    (void)box.dequeue_match(0, 0, i);
  }
  producer.join();
  EXPECT_EQ(enqueued.load(), 8);
  EXPECT_EQ(box.size(), 0U);
}

TEST(MailboxFlowControl, TryDequeueOnEmptyReturnsNothing) {
  mpi::Mailbox box;
  EXPECT_FALSE(box.try_dequeue_match(0, 0, 0).has_value());
  EXPECT_FALSE(box.try_probe(0, mpi::kAnySource, mpi::kAnyTag).has_value());
}

TEST(FailureInjection, MismatchedCollectiveSizesThrowEverywhere) {
  mpi::World w(world_cfg(2));
  EXPECT_THROW(w.run([](Comm& c) {
                 std::vector<std::int32_t> small(2);
                 std::vector<std::int32_t> alsosmall(2);
                 // recv buffer smaller than size()*send on every rank.
                 mpi::allgather(c, cv(small), mv(alsosmall));
               }),
               mpi::Error);
}

TEST(FailureInjection, WildcardRecvWithNoSenderWouldHang_SoWeProbeInstead) {
  // A non-blocking probe on silence must return empty rather than hang.
  mpi::World w(world_cfg(2));
  w.run([](Comm& c) {
    EXPECT_FALSE(c.iprobe(mpi::kAnySource, mpi::kAnyTag).has_value());
  });
}
