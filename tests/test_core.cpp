// Tests for the benchmark framework: options, stats, report tables,
// runner environment and the registry (the paper's Table II inventory).
#include <gtest/gtest.h>

#include <cmath>

#include "bench_suite/suite.hpp"
#include "core/options.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "core/stats.hpp"
#include "mpi/world.hpp"

using namespace ombx;

TEST(Options, PowerOfTwoSweep) {
  core::Options o;
  o.min_size = 1;
  o.max_size = 16;
  const auto s = o.sizes();
  EXPECT_EQ(s, (std::vector<std::size_t>{1, 2, 4, 8, 16}));
}

TEST(Options, SweepRespectsMinimum) {
  core::Options o;
  o.min_size = 1024;
  o.max_size = 4096;
  EXPECT_EQ(o.sizes(), (std::vector<std::size_t>{1024, 2048, 4096}));
}

TEST(Options, IterationScheduleSwitchesAtThreshold) {
  core::Options o;
  o.iterations = 100;
  o.iterations_large = 10;
  o.large_threshold = 8192;
  EXPECT_EQ(o.iters_for(8192), 100);
  EXPECT_EQ(o.iters_for(8193), 10);
}

TEST(Options, ModeNames) {
  EXPECT_EQ(core::to_string(core::Mode::kNativeC), "omb-c");
  EXPECT_EQ(core::to_string(core::Mode::kPythonDirect), "omb-py");
  EXPECT_EQ(core::to_string(core::Mode::kPythonPickle), "omb-py-pickle");
}

TEST(Stats, ReduceAcrossRanks) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 4;
  wc.ppn = 4;
  mpi::World w(wc);
  w.run([](mpi::Comm& c) {
    const double local = 10.0 * (c.rank() + 1);  // 10, 20, 30, 40
    const core::Stats st = core::reduce_stats(c, local, 0);
    if (c.rank() == 0) {
      EXPECT_DOUBLE_EQ(st.avg, 25.0);
      EXPECT_DOUBLE_EQ(st.min, 10.0);
      EXPECT_DOUBLE_EQ(st.max, 40.0);
    } else {
      // Non-root ranks get an explicit "not computed here" marker, not a
      // fake zero that renders as a plausible row.
      EXPECT_TRUE(std::isnan(st.avg));
      EXPECT_FALSE(core::stats_valid(st));
    }
  });
}

TEST(Stats, EmptyBoardComputesNaNNotFakeZeros) {
  core::StatsBoard board(4);
  EXPECT_EQ(board.deposited(), 0);
  const core::Stats st = board.compute();
  EXPECT_TRUE(std::isnan(st.avg));
  EXPECT_TRUE(std::isnan(st.min));
  EXPECT_TRUE(std::isnan(st.max));
  EXPECT_FALSE(core::stats_valid(st));
}

TEST(Stats, BoardCountsDistinctDepositorsOnly) {
  core::StatsBoard board(4);
  board.deposit(2, 5.0);
  board.deposit(2, 7.0);  // same rank again: still one depositor
  EXPECT_EQ(board.deposited(), 1);
  const core::Stats st = board.compute();
  EXPECT_TRUE(core::stats_valid(st));
}

TEST(Stats, SummarizeEmptyIsAllNaN) {
  const core::Summary s = core::summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_TRUE(std::isnan(s.mean));
  EXPECT_TRUE(std::isnan(s.median));
  EXPECT_TRUE(std::isnan(s.variance));
  EXPECT_TRUE(std::isnan(s.ci_low));
  EXPECT_TRUE(std::isnan(s.ci_high));
  EXPECT_TRUE(std::isnan(s.min));
  EXPECT_TRUE(std::isnan(s.max));
}

TEST(Stats, SummarizeSingleSampleHasNoDispersion) {
  const core::Summary s = core::summarize({3.5});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  // One sample has no variance estimate and hence no CI.
  EXPECT_TRUE(std::isnan(s.variance));
  EXPECT_TRUE(std::isnan(s.ci_low));
  EXPECT_TRUE(std::isnan(s.ci_high));
}

TEST(Stats, SummarizeMatchesHandComputedTInterval) {
  // n = 4, mean 2.5, unbiased variance 5/3, t_0.975(3) = 3.182.
  const core::Summary s = core::summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
  const double half = core::t_critical_95(3) * std::sqrt(s.variance / 4.0);
  EXPECT_NEAR(s.ci_low, 2.5 - half, 1e-12);
  EXPECT_NEAR(s.ci_high, 2.5 + half, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Stats, RelativeCIZeroMeanConventions) {
  // Zero mean with dispersion: +inf ("never converged"), not NaN
  // ("undefined") — the campaign stopping rule relies on the distinction.
  EXPECT_TRUE(std::isinf(core::summarize({-1.0, 1.0}).ci_rel()));
  // Identically zero samples: converged, relative width 0.
  EXPECT_DOUBLE_EQ(core::summarize({0.0, 0.0, 0.0}).ci_rel(), 0.0);
  // A single sample has no CI at all: still NaN.
  EXPECT_TRUE(std::isnan(core::summarize({5.0}).ci_rel()));
}

TEST(Report, TableRendersOsuBanner) {
  core::Table t("OMB-X Latency Test", {"Size", "Latency (us)"});
  t.add_row(8, {0.25});
  t.add_row(1024, {1.5});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("# OMB-X Latency Test"), std::string::npos);
  EXPECT_NE(s.find("Size"), std::string::npos);
  EXPECT_NE(s.find("1024"), std::string::npos);
  EXPECT_NE(s.find("0.25"), std::string::npos);
  EXPECT_EQ(t.rows(), 2U);
}

TEST(Report, Mean) {
  EXPECT_DOUBLE_EQ(core::mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(core::mean({}), 0.0);
}

TEST(Runner, WorldConfigReflectsMode) {
  core::SuiteConfig cfg;
  cfg.mode = core::Mode::kNativeC;
  EXPECT_EQ(core::make_world_config(cfg).thread_level,
            net::ThreadLevel::kSingle);
  cfg.mode = core::Mode::kPythonDirect;
  EXPECT_EQ(core::make_world_config(cfg).thread_level,
            net::ThreadLevel::kMultiple);
}

TEST(Runner, DevicePoolMapsRanksToNodeDevices) {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::ri2_gpu();
  cfg.nranks = 4;
  cfg.ppn = 2;
  core::DevicePool pool(cfg);
  EXPECT_FALSE(pool.empty());
  EXPECT_EQ(pool.for_rank(0), pool.for_rank(1));   // same node
  EXPECT_NE(pool.for_rank(0), pool.for_rank(2));   // next node
}

TEST(Runner, DevicePoolEmptyOnCpuCluster) {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  core::DevicePool pool(cfg);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.for_rank(0), nullptr);
}

TEST(Registry, SuiteMatchesPaperTableII) {
  core::register_suite();
  core::Registry& r = core::Registry::instance();

  // Paper Table II: 4 point-to-point + 9 blocking collectives + 4 vector
  // variants.  OMB-X adds mbw_mr (p2p) and three one-sided tests.
  EXPECT_EQ(r.by_category(core::Category::kPointToPoint).size(), 5U);
  EXPECT_EQ(r.by_category(core::Category::kBlockingCollective).size(), 9U);
  EXPECT_EQ(r.by_category(core::Category::kVectorCollective).size(), 4U);
  EXPECT_EQ(r.by_category(core::Category::kOneSided).size(), 3U);
  EXPECT_EQ(r.count(), 21U);

  for (const char* name :
       {"latency", "bw", "bibw", "multi_lat", "allgather", "allreduce",
        "alltoall", "barrier", "bcast", "gather", "reduce",
        "reduce_scatter", "scatter", "allgatherv", "alltoallv", "gatherv",
        "scatterv", "mbw_mr", "put_latency", "get_latency", "put_bw"}) {
    EXPECT_NE(r.find(name), nullptr) << name;
  }
  EXPECT_EQ(r.find("nonexistent"), nullptr);
}

TEST(Registry, RegistrationIsIdempotent) {
  core::register_suite();
  const std::size_t before = core::Registry::instance().count();
  core::register_suite();
  EXPECT_EQ(core::Registry::instance().count(), before);
}

TEST(Registry, EntriesAreRunnable) {
  core::register_suite();
  const core::BenchmarkInfo* info =
      core::Registry::instance().find("latency");
  ASSERT_NE(info, nullptr);
  core::SuiteConfig cfg;
  cfg.opts.max_size = 64;
  cfg.opts.iterations = 2;
  cfg.opts.warmup = 1;
  const auto rows = info->fn(cfg);
  EXPECT_EQ(rows.size(), cfg.opts.sizes().size());
  for (const auto& row : rows) {
    EXPECT_GT(row.stats.avg, 0.0);
  }
}
