// sched::backoff_sleep tests: the retry backoff must be fiber-aware.  On
// a plain thread it is an ordinary host sleep; on a fiber it must yield
// the worker so peer fibers keep making progress — a blocking sleep on a
// one-worker pool would starve every other rank for the whole backoff.
//
// This is its own binary so OMBX_SCHED_WORKERS=1 can be pinned before the
// process-wide FiberPool spins up its workers (the pool reads the
// variable exactly once).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/runner.hpp"
#include "mpi/world.hpp"
#include "sched/sched.hpp"

using namespace ombx;
using mpi::Comm;

namespace {

#define OMBX_SKIP_IF_SANITIZED()                                        \
  if (sched::sanitizers_active())                                       \
  GTEST_SKIP() << "fibers degrade to threads on sanitized builds"

/// Pin the shared pool to a single worker.  Must run before anything
/// touches FiberPool::instance(); gtest_discover_tests runs each test in
/// its own process, so calling this first thing in a test is sufficient.
void pin_one_worker() { setenv("OMBX_SCHED_WORKERS", "1", 1); }

}  // namespace

TEST(BackoffSleep, OffFiberItIsAnOrdinaryHostSleep) {
  const auto t0 = std::chrono::steady_clock::now();
  sched::backoff_sleep(20.0);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed_ms, 19.0);
}

TEST(BackoffSleep, ZeroAndNegativeAreFree) {
  const auto t0 = std::chrono::steady_clock::now();
  sched::backoff_sleep(0.0);
  sched::backoff_sleep(-5.0);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed_ms, 10.0);
}

TEST(BackoffSleep, FiberBackoffYieldsTheOnlyWorkerToPeers) {
  // Regression shape: rank 0 wakes rank 1 (eager send), then backs off
  // for 150 ms on the pool's ONLY worker.  A fiber-aware backoff yields,
  // so rank 1 runs during the window and sets `peer_ran`; the historical
  // std::this_thread::sleep_for pinned the worker and rank 1 could not
  // have run by the time rank 0 resumes.
  OMBX_SKIP_IF_SANITIZED();
  pin_one_worker();

  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.nranks = 2;
  wc.ppn = 2;
  wc.sched = sched::Mode::kFibers;
  mpi::World w(wc);
  std::atomic<bool> peer_ran{false};

  w.run([&](Comm& c) {
    std::vector<std::byte> buf(16, std::byte{0x7});
    if (c.rank() == 0) {
      c.send(mpi::ConstView{buf.data(), buf.size(), net::MemSpace::kHost}, 1,
             3);
      sched::backoff_sleep(150.0);
      EXPECT_TRUE(peer_ran.load())
          << "backoff pinned the only worker; peer fiber starved";
    } else {
      (void)c.recv(mpi::MutView{buf.data(), buf.size(), net::MemSpace::kHost},
                   0, 3);
      peer_ran.store(true);
    }
  });
}

TEST(BackoffSleep, RetryWithBackoffCompletesOnTheOneWorkerPool) {
  // End-to-end satellite check: run_with_retry's backoff path must not
  // wedge a fiber world that shares the single worker.  The first attempt
  // fails, the runner backs off, and the retry succeeds — all while both
  // ranks multiplex on one OS thread.
  OMBX_SKIP_IF_SANITIZED();
  pin_one_worker();

  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.nranks = 2;
  wc.ppn = 2;
  wc.sched = sched::Mode::kFibers;
  mpi::World w(wc);
  std::atomic<int> attempt{0};

  const core::RunOutcome out = core::run_with_retry(
      w,
      [&](Comm& c) {
        if (c.rank() == 0 && attempt.fetch_add(1) == 0) {
          throw std::runtime_error("transient");
        }
        std::vector<std::byte> buf(8, std::byte{1});
        if (c.rank() == 0) {
          c.send(mpi::ConstView{buf.data(), buf.size(), net::MemSpace::kHost},
                 1, 1);
        } else {
          (void)c.recv(
              mpi::MutView{buf.data(), buf.size(), net::MemSpace::kHost}, 0,
              1);
        }
      },
      core::RetryPolicy{.max_attempts = 3, .backoff_ms = 10.0});
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.attempts, 2);
}
