// Edge-case and property coverage across modules: protocol crossovers,
// placement properties, cost-table sanity, request/status corner cases.
#include <gtest/gtest.h>

#include <cstdint>

#include "bench_suite/suite.hpp"
#include "core/runner.hpp"
#include "mpi/error.hpp"
#include "mpi/request.hpp"
#include "mpi/world.hpp"
#include "pylayer/costs.hpp"

using namespace ombx;
using mpi::Comm;
using mpi::ConstView;
using mpi::MutView;

// ---- Placement property sweep ----------------------------------------------------

class PlacementProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PlacementProperty, EveryRankLandsInsideTheMachine) {
  const auto [nodes, sockets, cores, ppn] = GetParam();
  const net::Topology topo{.nodes = nodes, .sockets_per_node = sockets,
                           .cores_per_socket = cores, .gpus_per_node = 0};
  if (ppn > topo.cores_per_node()) GTEST_SKIP();
  const net::RankMapper m(topo, ppn);
  for (int r = 0; r < m.max_ranks(); ++r) {
    const net::Placement p = m.place(r);
    EXPECT_GE(p.node, 0);
    EXPECT_LT(p.node, nodes);
    EXPECT_GE(p.socket, 0);
    EXPECT_LT(p.socket, sockets);
    EXPECT_GE(p.core, 0);
    EXPECT_LT(p.core, cores);
  }
  // Consecutive ranks fill a node before spilling to the next.
  for (int r = 1; r < m.max_ranks(); ++r) {
    EXPECT_GE(m.place(r).node, m.place(r - 1).node);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PlacementProperty,
    ::testing::Combine(::testing::Values(1, 2, 16),
                       ::testing::Values(1, 2),
                       ::testing::Values(4, 14, 28),
                       ::testing::Values(1, 3, 8, 28)));

// ---- Protocol crossover ----------------------------------------------------------

TEST(ProtocolCrossover, LatencyJumpsAtTheRendezvousThreshold) {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.nranks = 2;
  cfg.ppn = 1;  // inter-node: 64 KB threshold
  cfg.mode = core::Mode::kNativeC;
  cfg.opts.min_size = 64 * 1024;
  cfg.opts.max_size = 128 * 1024;
  cfg.opts.iterations = 2;
  cfg.opts.warmup = 1;
  const auto rows = bench_suite::run_latency(cfg);
  ASSERT_EQ(rows.size(), 2U);
  // Crossing eager -> rendezvous more than doubles the step you'd expect
  // from bandwidth alone (handshake + synchronization appear).
  const double jump = rows[1].stats.avg / rows[0].stats.avg;
  EXPECT_GT(jump, 1.6);
}

TEST(ProtocolCrossover, EagerThresholdIsTunable) {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.nranks = 2;
  cfg.ppn = 1;
  cfg.mode = core::Mode::kNativeC;
  cfg.opts.min_size = 32 * 1024;
  cfg.opts.max_size = 32 * 1024;
  cfg.opts.iterations = 2;
  cfg.opts.warmup = 1;
  const double eager = bench_suite::run_latency(cfg).front().stats.avg;
  cfg.tuning.eager_threshold_inter = 16 * 1024;  // force rendezvous
  const double rendezvous = bench_suite::run_latency(cfg).front().stats.avg;
  EXPECT_GT(rendezvous, eager);
}

// ---- PyCosts table sanity ---------------------------------------------------------

TEST(PyCostsTable, EveryCollKindIsPricedPositively) {
  const pylayer::PyCosts p = pylayer::PyCosts::frontera();
  using pylayer::CollKind;
  for (const auto coll :
       {CollKind::kAllreduce, CollKind::kAllgather, CollKind::kAlltoall,
        CollKind::kBarrier, CollKind::kBcast, CollKind::kGather,
        CollKind::kReduce, CollKind::kReduceScatter, CollKind::kScatter,
        CollKind::kVector}) {
    for (const auto kind :
         {buffers::BufferKind::kByteArray, buffers::BufferKind::kNumpy,
          buffers::BufferKind::kCupy, buffers::BufferKind::kPycuda,
          buffers::BufferKind::kNumba}) {
      EXPECT_GT(p.coll_cost(coll, kind, 1024), 0.0);
    }
  }
}

TEST(PyCostsTable, PerByteCostsOrderedByCluster) {
  // Stampede2 shows the largest large-message overhead in the paper,
  // RI2 the smallest; the calibrated per-byte costs must reflect that.
  EXPECT_GT(pylayer::PyCosts::stampede2().per_byte_us,
            pylayer::PyCosts::frontera().per_byte_us);
  EXPECT_GT(pylayer::PyCosts::frontera().per_byte_us,
            pylayer::PyCosts::ri2().per_byte_us);
}

// ---- Requests and statuses ---------------------------------------------------------

TEST(RequestEdge, DefaultConstructedRequestIsDone) {
  mpi::Request r;
  EXPECT_TRUE(r.done());
  EXPECT_TRUE(r.test());
  EXPECT_NO_THROW((void)r.wait());
}

TEST(RequestEdge, WaitAllReturnsStatusesInPostOrder) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 2;
  wc.ppn = 2;
  mpi::World w(wc);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> a(10);
      std::vector<std::byte> b(20);
      c.send(ConstView{a.data(), a.size()}, 1, 1);
      c.send(ConstView{b.data(), b.size()}, 1, 2);
    } else {
      std::vector<std::byte> a(32);
      std::vector<std::byte> b(32);
      std::vector<mpi::Request> reqs;
      reqs.push_back(c.irecv(MutView{a.data(), a.size()}, 0, 2));
      reqs.push_back(c.irecv(MutView{b.data(), b.size()}, 0, 1));
      const auto st = mpi::Request::wait_all(reqs);
      ASSERT_EQ(st.size(), 2U);
      EXPECT_EQ(st[0].bytes, 20U);  // tag 2 first, as posted
      EXPECT_EQ(st[1].bytes, 10U);
    }
  });
}

TEST(RequestEdge, SendrecvToSelf) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 2;
  wc.ppn = 2;
  mpi::World w(wc);
  w.run([](Comm& c) {
    std::vector<std::uint8_t> out{static_cast<std::uint8_t>(c.rank() + 40)};
    std::vector<std::uint8_t> in{0};
    (void)c.sendrecv(
        ConstView{reinterpret_cast<std::byte*>(out.data()), 1}, c.rank(),
        6, MutView{reinterpret_cast<std::byte*>(in.data()), 1}, c.rank(),
        6);
    EXPECT_EQ(in[0], out[0]);
  });
}

// ---- Buffer/env edge cases -----------------------------------------------------------

TEST(EnvEdge, GpuBufferOnCpuClusterFailsFast) {
  core::SuiteConfig cfg;
  cfg.cluster = net::ClusterSpec::frontera();
  cfg.buffer = buffers::BufferKind::kCupy;
  cfg.nranks = 2;
  cfg.ppn = 2;
  EXPECT_THROW((void)bench_suite::run_latency(cfg), mpi::Error);
}

TEST(EnvEdge, ZeroByteMessagesCarryOnlyLatency) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = 2;
  wc.ppn = 1;
  mpi::World w(wc);
  w.run([](Comm& c) {
    const double t0 = c.now();
    if (c.rank() == 0) {
      c.send(ConstView{}, 1, 1);
      (void)c.recv(MutView{}, 1, 1);
      const double rtt = c.now() - t0;
      const double alpha = c.net().alpha_us(0, 1, net::MemSpace::kHost);
      EXPECT_NEAR(rtt / 2.0, alpha, 1e-9);
    } else {
      (void)c.recv(MutView{}, 0, 1);
      c.send(ConstView{}, 0, 1);
    }
  });
}
