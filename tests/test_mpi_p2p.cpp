// Point-to-point tests for the MPI substrate: matching, ordering, eager vs
// rendezvous timing, requests, probes, communicator management.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/error.hpp"
#include "mpi/request.hpp"
#include "mpi/world.hpp"

using namespace ombx;
using mpi::Comm;
using mpi::ConstView;
using mpi::MutView;

namespace {

mpi::WorldConfig small_world(int nranks, int ppn = 2) {
  mpi::WorldConfig wc;
  wc.cluster = net::ClusterSpec::frontera();
  wc.tuning = net::MpiTuning::mvapich2();
  wc.nranks = nranks;
  wc.ppn = ppn;
  return wc;
}

ConstView cv(const std::vector<std::byte>& v) {
  return ConstView{v.data(), v.size()};
}
MutView mv(std::vector<std::byte>& v) { return MutView{v.data(), v.size()}; }

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed + static_cast<int>(i)) & 0xff);
  }
  return out;
}

}  // namespace

TEST(P2P, PayloadRoundTrip) {
  mpi::World w(small_world(2));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      const auto data = pattern(1024, 7);
      c.send(cv(data), 1, 42);
    } else {
      std::vector<std::byte> buf(1024);
      const mpi::Status st = c.recv(mv(buf), 0, 42);
      EXPECT_EQ(st.bytes, 1024U);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 42);
      EXPECT_EQ(buf, pattern(1024, 7));
    }
  });
}

TEST(P2P, FifoOrderingPerTag) {
  mpi::World w(small_world(2));
  w.run([](Comm& c) {
    constexpr int kMsgs = 50;
    if (c.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        std::vector<std::byte> one{static_cast<std::byte>(i)};
        c.send(cv(one), 1, 5);
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        std::vector<std::byte> one(1);
        (void)c.recv(mv(one), 0, 5);
        EXPECT_EQ(static_cast<int>(one[0]), i);
      }
    }
  });
}

TEST(P2P, TagSelectivity) {
  mpi::World w(small_world(2));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> a{std::byte{1}};
      std::vector<std::byte> b{std::byte{2}};
      c.send(cv(a), 1, 100);
      c.send(cv(b), 1, 200);
    } else {
      std::vector<std::byte> buf(1);
      // Receive the later tag first: matching must skip tag 100.
      (void)c.recv(mv(buf), 0, 200);
      EXPECT_EQ(static_cast<int>(buf[0]), 2);
      (void)c.recv(mv(buf), 0, 100);
      EXPECT_EQ(static_cast<int>(buf[0]), 1);
    }
  });
}

TEST(P2P, AnySourceAndAnyTag) {
  mpi::World w(small_world(3, 3));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> buf(8);
      const mpi::Status st = c.recv(mv(buf), mpi::kAnySource, mpi::kAnyTag);
      EXPECT_TRUE(st.source == 1 || st.source == 2);
      const mpi::Status st2 = c.recv(mv(buf), mpi::kAnySource, mpi::kAnyTag);
      EXPECT_NE(st.source, st2.source);
    } else {
      const auto data = pattern(8, c.rank());
      c.send(cv(data), 0, 10 + c.rank());
    }
  });
}

TEST(P2P, TruncationThrows) {
  mpi::World w(small_world(2));
  EXPECT_THROW(
      w.run([](Comm& c) {
        if (c.rank() == 0) {
          const auto data = pattern(64, 1);
          c.send(cv(data), 1, 1);
        } else {
          std::vector<std::byte> tiny(8);
          (void)c.recv(mv(tiny), 0, 1);
        }
      }),
      mpi::Error);
}

TEST(P2P, PingPongLatencyMatchesLinkModel) {
  const auto cfg = small_world(2);
  mpi::World w(cfg);
  const net::NetworkModel nm(cfg.cluster, cfg.tuning, cfg.ppn);
  const std::size_t n = 256;
  const double expected = nm.transfer_us(0, 1, n, net::MemSpace::kHost);
  w.run([&](Comm& c) {
    std::vector<std::byte> buf(n);
    const double t0 = c.now();
    if (c.rank() == 0) {
      c.send(cv(buf), 1, 1);
      (void)c.recv(mv(buf), 1, 1);
      const double rtt = c.now() - t0;
      EXPECT_NEAR(rtt / 2.0, expected, 1e-9);
    } else {
      (void)c.recv(mv(buf), 0, 1);
      c.send(cv(buf), 0, 1);
    }
  });
}

TEST(P2P, RendezvousSynchronizesSender) {
  // A rendezvous-sized send must block the sender until the receiver
  // arrives: sender finish time ~ receiver post time + transfer.
  auto cfg = small_world(2, /*ppn=*/1);  // inter-node
  mpi::World w(cfg);
  const std::size_t big = 1 << 20;  // >> eager threshold
  w.run([&](Comm& c) {
    std::vector<std::byte> buf(big);
    if (c.rank() == 0) {
      c.send(cv(buf), 1, 9);
      EXPECT_GT(c.now(), 500.0);  // sender waited for the late receiver
    } else {
      c.clock().advance(500.0);  // receiver arrives late
      (void)c.recv(mv(buf), 0, 9);
    }
  });
}

TEST(P2P, EagerSenderDoesNotBlockOnLateReceiver) {
  auto cfg = small_world(2, /*ppn=*/1);
  mpi::World w(cfg);
  w.run([](Comm& c) {
    std::vector<std::byte> buf(64);  // well under the eager threshold
    if (c.rank() == 0) {
      c.send(cv(buf), 1, 9);
      EXPECT_LT(c.now(), 100.0);  // sender returned immediately
    } else {
      c.clock().advance(500.0);
      (void)c.recv(mv(buf), 0, 9);
      EXPECT_GE(c.now(), 500.0);
    }
  });
}

TEST(P2P, SendrecvDoesNotDeadlock) {
  mpi::World w(small_world(2, 1));
  const std::size_t big = 1 << 20;  // rendezvous in both directions
  w.run([&](Comm& c) {
    std::vector<std::byte> sb(big);
    std::vector<std::byte> rb(big);
    const int peer = 1 - c.rank();
    (void)c.sendrecv(cv(sb), peer, 3, mv(rb), peer, 3);
    EXPECT_GT(c.now(), 0.0);
  });
}

TEST(P2P, SelfSendIsAlwaysEager) {
  mpi::World w(small_world(2));
  w.run([](Comm& c) {
    if (c.rank() != 0) return;
    std::vector<std::byte> buf(1 << 20);  // rendezvous-sized
    c.send(cv(buf), 0, 11);  // must not deadlock
    std::vector<std::byte> out(1 << 20);
    (void)c.recv(mv(out), 0, 11);
  });
}

TEST(P2P, IsendIrecvWindow) {
  mpi::World w(small_world(2));
  w.run([](Comm& c) {
    constexpr int kWindow = 16;
    std::vector<std::vector<std::byte>> bufs(kWindow);
    std::vector<mpi::Request> reqs;
    if (c.rank() == 0) {
      for (int i = 0; i < kWindow; ++i) {
        bufs[static_cast<std::size_t>(i)] = pattern(128, i);
        reqs.push_back(
            c.isend(cv(bufs[static_cast<std::size_t>(i)]), 1, 20 + i));
      }
    } else {
      for (int i = 0; i < kWindow; ++i) {
        bufs[static_cast<std::size_t>(i)].resize(128);
        reqs.push_back(
            c.irecv(mv(bufs[static_cast<std::size_t>(i)]), 0, 20 + i));
      }
    }
    const auto stats = mpi::Request::wait_all(reqs);
    EXPECT_EQ(stats.size(), static_cast<std::size_t>(kWindow));
    if (c.rank() == 1) {
      for (int i = 0; i < kWindow; ++i) {
        EXPECT_EQ(bufs[static_cast<std::size_t>(i)], pattern(128, i));
      }
    }
  });
}

TEST(P2P, RequestTestCompletesEventually) {
  mpi::World w(small_world(2));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      const auto data = pattern(32, 3);
      c.send(cv(data), 1, 7);
    } else {
      std::vector<std::byte> buf(32);
      mpi::Request r = c.irecv(mv(buf), 0, 7);
      while (!r.test()) {
      }
      EXPECT_TRUE(r.done());
      EXPECT_EQ(buf, pattern(32, 3));
    }
  });
}

TEST(P2P, ProbeReportsEnvelopeWithoutConsuming) {
  mpi::World w(small_world(2));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      const auto data = pattern(96, 4);
      c.send(cv(data), 1, 33);
    } else {
      const mpi::Status st = c.probe(0, 33);
      EXPECT_EQ(st.bytes, 96U);
      std::vector<std::byte> buf(st.bytes);
      (void)c.recv(mv(buf), 0, 33);
      EXPECT_EQ(buf, pattern(96, 4));
      EXPECT_FALSE(c.iprobe(0, 33).has_value());
    }
  });
}

TEST(Comm, SplitByParity) {
  mpi::World w(small_world(4, 4));
  w.run([](Comm& c) {
    auto sub = c.split(c.rank() % 2, c.rank());
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->size(), 2);
    EXPECT_EQ(sub->rank(), c.rank() / 2);
    // Communicate within the sub-communicator.
    std::vector<std::byte> buf(4);
    if (sub->rank() == 0) {
      const auto data = pattern(4, c.rank() % 2);
      sub->send(cv(data), 1, 1);
    } else {
      (void)sub->recv(mv(buf), 0, 1);
      EXPECT_EQ(buf, pattern(4, c.rank() % 2));
    }
  });
}

TEST(Comm, SplitWithNegativeColorOptsOut) {
  mpi::World w(small_world(4, 4));
  w.run([](Comm& c) {
    const int color = c.rank() == 3 ? -1 : 0;
    auto sub = c.split(color, c.rank());
    if (c.rank() == 3) {
      EXPECT_FALSE(sub.has_value());
    } else {
      ASSERT_TRUE(sub.has_value());
      EXPECT_EQ(sub->size(), 3);
    }
  });
}

TEST(Comm, SplitKeyControlsOrdering) {
  mpi::World w(small_world(4, 4));
  w.run([](Comm& c) {
    // Reverse the ordering with descending keys.
    auto sub = c.split(0, -c.rank());
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->rank(), c.size() - 1 - c.rank());
  });
}

TEST(Comm, DupIsIsolatedFromParent) {
  mpi::World w(small_world(2));
  w.run([](Comm& c) {
    Comm dup = c.dup();
    EXPECT_EQ(dup.size(), c.size());
    EXPECT_EQ(dup.rank(), c.rank());
    EXPECT_NE(dup.context(), c.context());
    // A message on the parent must not match a receive on the dup.
    if (c.rank() == 0) {
      const auto data = pattern(8, 1);
      c.send(cv(data), 1, 77);
      const auto data2 = pattern(8, 2);
      dup.send(cv(data2), 1, 77);
    } else {
      std::vector<std::byte> buf(8);
      (void)dup.recv(mv(buf), 0, 77);
      EXPECT_EQ(buf, pattern(8, 2));  // the dup message, not the parent one
      (void)c.recv(mv(buf), 0, 77);
      EXPECT_EQ(buf, pattern(8, 1));
    }
  });
}

TEST(World, RethrowsRankExceptions) {
  mpi::World w(small_world(2));
  EXPECT_THROW(w.run([](Comm& c) {
                 if (c.rank() == 1) throw mpi::Error("rank 1 exploded");
               }),
               mpi::Error);
}

TEST(World, ClocksResetBetweenRuns) {
  mpi::World w(small_world(2));
  w.run([](Comm& c) { c.clock().advance(100.0); });
  EXPECT_DOUBLE_EQ(w.finish_time(0), 100.0);
  w.run([](Comm&) {});
  EXPECT_DOUBLE_EQ(w.finish_time(0), 0.0);
}

TEST(World, SyntheticPayloadMovesNoBytes) {
  auto cfg = small_world(2);
  cfg.payload = mpi::PayloadMode::kSynthetic;
  mpi::World w(cfg);
  w.run([](Comm& c) {
    std::vector<std::byte> buf(64, std::byte{0xAB});
    if (c.rank() == 0) {
      c.send(cv(buf), 1, 1);
    } else {
      std::vector<std::byte> out(64, std::byte{0xCD});
      const mpi::Status st = c.recv(mv(out), 0, 1);
      EXPECT_EQ(st.bytes, 64U);  // envelope is intact...
      EXPECT_EQ(out[0], std::byte{0xCD});  // ...but no bytes moved
    }
  });
}

TEST(World, SyntheticTimingEqualsRealTiming) {
  auto real_cfg = small_world(2);
  auto syn_cfg = small_world(2);
  syn_cfg.payload = mpi::PayloadMode::kSynthetic;

  const auto pingpong = [](Comm& c) {
    std::vector<std::byte> buf(4096);
    for (int i = 0; i < 10; ++i) {
      if (c.rank() == 0) {
        c.send(ConstView{buf.data(), buf.size()}, 1, 1);
        (void)c.recv(MutView{buf.data(), buf.size()}, 1, 1);
      } else {
        (void)c.recv(MutView{buf.data(), buf.size()}, 0, 1);
        c.send(ConstView{buf.data(), buf.size()}, 0, 1);
      }
    }
  };
  mpi::World wr(real_cfg);
  wr.run(pingpong);
  mpi::World ws(syn_cfg);
  ws.run(pingpong);
  EXPECT_DOUBLE_EQ(wr.finish_time(0), ws.finish_time(0));
  EXPECT_DOUBLE_EQ(wr.finish_time(1), ws.finish_time(1));
}

TEST(Engine, ChargeHelpersAdvanceClock) {
  auto cfg = small_world(2);
  mpi::World w(cfg);
  const double per_flop = 1.0 / cfg.cluster.compute.flops_per_us;
  w.run([&](Comm& c) {
    if (c.rank() != 0) return;
    const double t0 = c.now();
    c.charge_flops(1000.0);
    EXPECT_NEAR(c.now() - t0, 1000.0 * per_flop, 1e-12);
  });
}
